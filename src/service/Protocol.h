//===- service/Protocol.h - spld wire protocol ------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol spoken between the spld plan-serving daemon and its
/// clients (service::Client, `splrun --connect`). Everything travels over a
/// Unix-domain stream socket as length-prefixed binary frames:
///
///   +--------+---------+--------+-----------+---------+=========+
///   | magic  | version | type   | requestId | bodyLen | body    |
///   | u32    | u16     | u16    | u32       | u32     | bytes   |
///   +--------+---------+--------+-----------+---------+=========+
///
/// All integers are little-endian fixed width; doubles are IEEE-754 bit
/// patterns carried as u64; strings are u32 length + raw bytes. The 16-byte
/// header is validated before the body is read: a bad magic or an
/// unsupported version kills the connection (there is no way to resync a
/// corrupt stream), while an oversized bodyLen is rejected with a typed
/// TOO_LARGE error so a greedy client learns its request was dropped.
///
/// Requests carry a client-chosen requestId that the matching response
/// echoes, so clients may pipeline. Status codes extend tools/ExitCodes.h:
/// the shared failure stages (usage/parse/compile/exec) keep their CLI
/// values, and service-only conditions (BUSY, TOO_LARGE, SHUTTING_DOWN,
/// PROTOCOL) follow after them. See docs/SERVICE.md for the full catalogue.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SERVICE_PROTOCOL_H
#define SPL_SERVICE_PROTOCOL_H

#include "runtime/Plan.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace spl {
namespace service {

/// Frame magic: "SPLD" read as a little-endian u32.
constexpr std::uint32_t kMagic = 0x444C5053u;

/// Protocol revision. Bump on any incompatible frame or body change; the
/// server refuses versions outside [kMinProtocolVersion, kProtocolVersion]
/// with a PROTOCOL error before dropping the connection. v2 added
/// WireSpec::Codegen (the --codegen variant token). v3 prefixes plan and
/// execute request bodies with a u32 deadline field: the client's remaining
/// budget in milliseconds (0 = unbounded), measured from the moment the
/// server decodes the frame. The server answers DEADLINE_EXCEEDED without
/// touching the worker pool when a request's budget is already spent.
/// v4 appends a shape block to WireSpec (u32 rank + rank i64 dims) so
/// clients can request N-D row-column plans; the deadline stays the FIRST
/// u32 of v>=3 request bodies (peekDeadlineMs depends on that), which is
/// why new spec fields append rather than prepend.
constexpr std::uint16_t kProtocolVersion = 4;

/// Oldest revision the server still speaks. v2 requests carry no deadline
/// (treated as unbounded); v2/v3 requests carry no shape (1-D) — both get
/// responses stamped with the request's version. Response bodies are
/// layout-identical across v2..v4.
constexpr std::uint16_t kMinProtocolVersion = 2;

/// Fixed serialized header size in bytes.
constexpr std::size_t kHeaderBytes = 16;

/// Default cap on one frame's body (requests and responses). The server
/// can lower it (ServerOptions::MaxFrameBytes); execute payloads above the
/// cap come back as TOO_LARGE.
constexpr std::uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Frame type tags. Requests are < 100, responses >= 100.
enum class MsgType : std::uint16_t {
  PlanReq = 1,     ///< PlanRequest: materialize (or memo-hit) a plan.
  ExecuteReq = 2,  ///< ExecuteRequest: run a batch through a plan.
  StatsReq = 3,    ///< Scrape the telemetry registry as JSON.
  PingReq = 4,     ///< Liveness/latency probe, no body.
  ShutdownReq = 5, ///< Ask the daemon to drain and exit.

  PlanResp = 101,
  ExecuteResp = 102,
  StatsResp = 103,
  PingResp = 104,
  ShutdownResp = 105,
  ErrorResp = 199, ///< ErrorBody: any request can fail with this.
};

/// Typed failure codes. Values 0..5 are tools/ExitCodes.h verbatim so a CLI
/// relaying a server error can exit with the same stage code users already
/// script against; 6+ are service-only.
enum class Status : std::uint32_t {
  Ok = 0,
  BadRequest = 2,   ///< Malformed/invalid request fields (ExitUsage).
  BadSpec = 3,      ///< PlanSpec validation rejected it (ExitParse).
  PlanFailed = 4,   ///< Search/compile failed server-side (ExitCompile).
  ExecFailed = 5,   ///< Execution failed server-side (ExitExec).
  Busy = 6,         ///< Admission control: queue or quota full; retry.
  TooLarge = 7,     ///< Frame or transform exceeds the server's caps.
  ShuttingDown = 8, ///< Server is draining; no new work accepted.
  Protocol = 9,     ///< Framing violation; the connection is dropped.
  DeadlineExceeded = 10, ///< The request's deadline expired (v3).
};

/// Stable lowercase token for a status ("ok", "busy", ...).
const char *statusName(Status S);

/// Maps a status onto the tools/ExitCodes.h stage a CLI should exit with.
/// Service-only codes (Busy/TooLarge/ShuttingDown/Protocol) map to the
/// execution-failure stage; DeadlineExceeded gets its own scriptable stage
/// (ExitDeadline = 6) so callers can tell "too slow" from "failed".
int statusToExitCode(Status S);

//===----------------------------------------------------------------------===//
// Primitive serialization
//===----------------------------------------------------------------------===//

/// Appends little-endian primitives to a byte buffer.
class WireWriter {
public:
  explicit WireWriter(std::vector<std::uint8_t> &Buf) : Buf(Buf) {}

  void u8(std::uint8_t V) { Buf.push_back(V); }
  void u16(std::uint16_t V) {
    Buf.push_back(static_cast<std::uint8_t>(V));
    Buf.push_back(static_cast<std::uint8_t>(V >> 8));
  }
  void u32(std::uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  }
  void u64(std::uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  }
  void i64(std::int64_t V) { u64(static_cast<std::uint64_t>(V)); }
  void f64(double V) {
    std::uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<std::uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  /// Raw doubles, bit-exact (used for execute payloads).
  void doubles(const double *D, std::size_t N) {
    std::size_t Off = Buf.size();
    Buf.resize(Off + N * 8);
    std::memcpy(Buf.data() + Off, D, N * 8);
  }

private:
  std::vector<std::uint8_t> &Buf;
};

/// Bounds-checked little-endian reads over a byte buffer. Every accessor
/// returns a value and flips ok() to false on underrun; callers check once
/// at the end (the project builds without exceptions).
class WireReader {
public:
  WireReader(const std::uint8_t *Data, std::size_t Len)
      : Data(Data), Len(Len) {}

  bool ok() const { return OK; }
  std::size_t remaining() const { return Len - Pos; }

  std::uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[Pos++];
  }
  std::uint16_t u16() {
    if (!need(2))
      return 0;
    std::uint16_t V = static_cast<std::uint16_t>(Data[Pos]) |
                      static_cast<std::uint16_t>(Data[Pos + 1]) << 8;
    Pos += 2;
    return V;
  }
  std::uint32_t u32() {
    if (!need(4))
      return 0;
    std::uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<std::uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }
  std::uint64_t u64() {
    if (!need(8))
      return 0;
    std::uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<std::uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    std::uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, 8);
    return V;
  }
  std::string str() {
    std::uint32_t N = u32();
    if (!need(N))
      return {};
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }
  /// Reads \p N doubles; false (and ok() false) on underrun.
  bool doubles(double *Out, std::size_t N) {
    if (!need(N * 8))
      return false;
    std::memcpy(Out, Data + Pos, N * 8);
    Pos += N * 8;
    return true;
  }

private:
  bool need(std::size_t N) {
    if (!OK || Len - Pos < N) {
      OK = false;
      return false;
    }
    return true;
  }

  const std::uint8_t *Data;
  std::size_t Len;
  std::size_t Pos = 0;
  bool OK = true;
};

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

/// Parsed frame header.
struct FrameHeader {
  std::uint32_t Magic = kMagic;
  std::uint16_t Version = kProtocolVersion;
  MsgType Type = MsgType::PingReq;
  std::uint32_t RequestId = 0;
  std::uint32_t BodyLen = 0;

  /// Serializes into exactly kHeaderBytes.
  void encode(std::uint8_t Out[kHeaderBytes]) const;

  /// Parses; false when the bytes cannot be a header of this protocol
  /// (wrong magic, or a version outside [kMinProtocolVersion,
  /// kProtocolVersion]) — the stream is unrecoverable then.
  static bool decode(const std::uint8_t In[kHeaderBytes], FrameHeader &H);
};

/// The PlanSpec fields a request carries (shared by plan and execute).
/// Mirrors runtime::PlanSpec; toSpec()/fromSpec() convert.
struct WireSpec {
  std::string Transform = "fft";
  std::int64_t Size = 0;
  std::string Datatype;
  std::int64_t UnrollThreshold = 16;
  std::int64_t MaxLeaf = 16;
  std::string Backend = "auto"; ///< backendName() token.
  std::string Codegen = "auto"; ///< codegenModeName() token.
  /// Row-major N-D shape (v4+; empty = 1-D of Size). When non-empty the
  /// server plans the row-column transform and Size is ignored in favour of
  /// the shape product. Rank is capped at kMaxShapeRank on decode.
  std::vector<std::int64_t> Shape;

  runtime::PlanSpec toSpec(bool &OK) const;
  static WireSpec fromSpec(const runtime::PlanSpec &Spec);

  /// v2/v3 omit the shape block; v4 appends it after Codegen.
  void encode(WireWriter &W, std::uint16_t Version = kProtocolVersion) const;
  static bool decode(WireReader &R, WireSpec &Out,
                     std::uint16_t Version = kProtocolVersion);
};

/// Decode-side cap on WireSpec::Shape rank; the planner's own limit is
/// lower, so hitting this means a hostile frame, not a real workload.
constexpr std::uint32_t kMaxShapeRank = 16;

/// PlanReq body. v3 prefixes the body with DeadlineMs; v2 bodies carry the
/// spec alone (DeadlineMs decodes as 0 = unbounded).
struct PlanRequest {
  /// Remaining client budget in milliseconds (0 = unbounded). The clock
  /// starts when the server decodes the frame; queue time counts against
  /// it, so a request that aged out in the queue is rejected unexecuted.
  std::uint32_t DeadlineMs = 0;
  WireSpec Spec;

  std::vector<std::uint8_t> encode(std::uint16_t Version =
                                       kProtocolVersion) const;
  static bool decode(const std::uint8_t *Data, std::size_t Len,
                     PlanRequest &Out,
                     std::uint16_t Version = kProtocolVersion);
};

/// PlanResp body: the server-side plan's identity and placement.
struct PlanResponse {
  std::string Key;         ///< PlanSpec::key() of the served plan.
  std::string Backend;     ///< Tier the degradation chain landed on.
  std::int64_t VectorLen = 0;
  double Cost = 0;
  bool Fallback = false;
  std::string FallbackReason;
  std::string FormulaText;

  std::vector<std::uint8_t> encode() const;
  static bool decode(const std::uint8_t *Data, std::size_t Len,
                     PlanResponse &Out);
};

/// ExecuteReq body: a spec plus Count packed vectors of Count*VectorLen
/// doubles. The spec rides along (rather than a plan handle) so the request
/// is stateless: the registry turns repeats into memo hits.
struct ExecuteRequest {
  /// Remaining client budget in milliseconds (0 = unbounded); see
  /// PlanRequest::DeadlineMs. v3-only field, encoded first.
  std::uint32_t DeadlineMs = 0;
  WireSpec Spec;
  std::int64_t Count = 1;
  std::int32_t Threads = 1; ///< Requested batch workers (server-capped).
  std::vector<double> Data; ///< Count * vectorLen doubles.

  std::vector<std::uint8_t> encode(std::uint16_t Version =
                                       kProtocolVersion) const;
  static bool decode(const std::uint8_t *Data, std::size_t Len,
                     ExecuteRequest &Out,
                     std::uint16_t Version = kProtocolVersion);
};

/// ExecuteResp body: the transformed vectors, same layout as the request.
struct ExecuteResponse {
  std::int64_t Count = 0;
  std::int64_t VectorLen = 0;
  std::vector<double> Data;

  std::vector<std::uint8_t> encode() const;
  static bool decode(const std::uint8_t *Data, std::size_t Len,
                     ExecuteResponse &Out);
};

/// StatsResp body: the telemetry registry rendered by metricsJson(), plus
/// the daemon's own identity line.
struct StatsResponse {
  std::string Json;

  std::vector<std::uint8_t> encode() const;
  static bool decode(const std::uint8_t *Data, std::size_t Len,
                     StatsResponse &Out);
};

/// ErrorResp body.
struct ErrorBody {
  Status Code = Status::Ok;
  std::string Message;

  std::vector<std::uint8_t> encode() const;
  static bool decode(const std::uint8_t *Data, std::size_t Len,
                     ErrorBody &Out);
};

} // namespace service
} // namespace spl

#endif // SPL_SERVICE_PROTOCOL_H
