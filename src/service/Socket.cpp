//===- service/Socket.cpp - Unix-domain stream transport ----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Socket.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace spl;
using namespace spl::service;

namespace {

/// Fills a sockaddr_un for \p Path; false when the path does not fit (the
/// classic 108-byte sun_path limit).
bool makeAddr(const std::string &Path, sockaddr_un &Addr, std::string &Err) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path '" + Path + "' is empty or longer than " +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

int spl::service::listenUnix(const std::string &Path, int Backlog,
                             std::string &Err) {
  sockaddr_un Addr;
  if (!makeAddr(Path, Addr, Err))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  // A dead daemon's leftover socket file would make bind fail with
  // EADDRINUSE, but unlinking unconditionally would silently hijack the
  // path from a *live* daemon. Probe first: a successful connect() means
  // somebody is serving this path, so refuse; only a stale socket
  // (ECONNREFUSED: file exists, nobody listening) is removed. On any other
  // probe outcome leave the path alone and let bind() report the conflict.
  int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Probe >= 0) {
    if (::connect(Probe, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0) {
      ::close(Probe);
      ::close(Fd);
      Err = "'" + Path +
            "' already has a live daemon listening; refusing to replace it";
      return -1;
    }
    int ProbeErrno = errno;
    ::close(Probe);
    if (ProbeErrno == ECONNREFUSED)
      ::unlink(Path.c_str());
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "bind '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, Backlog) != 0) {
    Err = "listen '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    ::unlink(Path.c_str());
    return -1;
  }
  return Fd;
}

int spl::service::connectUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  if (!makeAddr(Path, Addr, Err))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "connect '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool spl::service::sendAll(int Fd, const void *Data, std::size_t Len) {
  const std::uint8_t *P = static_cast<const std::uint8_t *>(Data);
  while (Len) {
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<std::size_t>(N);
  }
  return true;
}

IoStatus spl::service::recvAll(int Fd, void *Data, std::size_t Len) {
  std::uint8_t *P = static_cast<std::uint8_t *>(Data);
  std::size_t Got = 0;
  while (Got != Len) {
    ssize_t N = ::recv(Fd, P + Got, Len - Got, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return IoStatus::Error;
    }
    if (N == 0)
      return Got == 0 ? IoStatus::Closed : IoStatus::Error;
    Got += static_cast<std::size_t>(N);
  }
  return IoStatus::Ok;
}

bool spl::service::writeFrame(int Fd, MsgType Type, std::uint32_t RequestId,
                              const std::vector<std::uint8_t> &Body,
                              std::uint16_t Version) {
  FrameHeader H;
  H.Version = Version;
  H.Type = Type;
  H.RequestId = RequestId;
  H.BodyLen = static_cast<std::uint32_t>(Body.size());
  std::uint8_t Hdr[kHeaderBytes];
  H.encode(Hdr);
  // One send per part is fine: Unix sockets are streams and the frames are
  // small next to the kernel buffer; coalescing would only copy.
  if (!sendAll(Fd, Hdr, kHeaderBytes))
    return false;
  return Body.empty() || sendAll(Fd, Body.data(), Body.size());
}

IoStatus spl::service::readFrame(int Fd, std::uint32_t MaxBodyBytes,
                                 Frame &Out) {
  std::uint8_t Hdr[kHeaderBytes];
  IoStatus St = recvAll(Fd, Hdr, kHeaderBytes);
  if (St != IoStatus::Ok)
    return St;
  FrameHeader H;
  if (!FrameHeader::decode(Hdr, H))
    return IoStatus::BadFrame;
  Out.Type = H.Type;
  Out.RequestId = H.RequestId;
  Out.Version = H.Version;
  if (H.BodyLen > MaxBodyBytes) {
    // Drain and discard so the connection stays usable for the TOO_LARGE
    // reply and whatever the client sends next.
    std::vector<std::uint8_t> Sink(64 << 10);
    std::uint64_t Left = H.BodyLen;
    while (Left) {
      std::size_t Chunk =
          static_cast<std::size_t>(std::min<std::uint64_t>(Left, Sink.size()));
      if (recvAll(Fd, Sink.data(), Chunk) != IoStatus::Ok)
        return IoStatus::Error;
      Left -= Chunk;
    }
    Out.Body.clear();
    return IoStatus::TooBig;
  }
  Out.Body.resize(H.BodyLen);
  if (H.BodyLen == 0)
    return IoStatus::Ok;
  St = recvAll(Fd, Out.Body.data(), Out.Body.size());
  return St == IoStatus::Ok ? IoStatus::Ok : IoStatus::Error;
}
