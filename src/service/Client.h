//===- service/Client.h - spld client library -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchronous client for the spld plan-serving daemon: one connection, one
/// request in flight at a time (the protocol allows pipelining; this client
/// keeps the common case simple — `splrun --connect` and the many-client
/// bench each run one Client per thread). Every call returns false/nullopt
/// on failure and records a typed Status plus a message, so callers can
/// distinguish a BUSY worth retrying from a hard protocol error. Not
/// thread-safe; use one Client per thread.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SERVICE_CLIENT_H
#define SPL_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "service/Socket.h"

#include <optional>
#include <string>
#include <vector>

namespace spl {
namespace service {

/// A connected spld client.
class Client {
public:
  Client() = default;
  ~Client() { disconnect(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon socket. False (with lastError set) on failure.
  bool connect(const std::string &SocketPath);

  /// Closes the connection (idempotent).
  void disconnect();

  bool connected() const { return Fd >= 0; }

  /// Round-trips a plan request.
  std::optional<PlanResponse> plan(const runtime::PlanSpec &Spec);

  /// Round-trips an execute request: \p Count vectors of \p VectorLen
  /// doubles from \p X into \p Y (caller-sized). VectorLen must match the
  /// plan's (a plan() call reports it).
  bool execute(const runtime::PlanSpec &Spec, double *Y, const double *X,
               std::int64_t Count, std::int64_t VectorLen, int Threads = 1);

  /// Like plan()/execute() but retrying typed BUSY rejections up to
  /// \p Retries times with linear backoff. Any other failure is final.
  std::optional<PlanResponse> planRetryBusy(const runtime::PlanSpec &Spec,
                                            int Retries = 64);
  bool executeRetryBusy(const runtime::PlanSpec &Spec, double *Y,
                        const double *X, std::int64_t Count,
                        std::int64_t VectorLen, int Threads = 1,
                        int Retries = 64);

  /// Fetches the daemon's stats JSON (server identity + telemetry
  /// registry).
  std::optional<std::string> stats();

  /// Liveness probe.
  bool ping();

  /// Asks the daemon to drain and exit. The connection is useless after a
  /// true return.
  bool shutdownServer();

  /// The status/message of the most recent failure (Status::Ok after a
  /// success).
  Status lastStatus() const { return LastStatus; }
  const std::string &lastError() const { return LastError; }

private:
  /// Sends \p Body as \p Type and reads the matching response frame.
  /// Returns nullopt on transport failure or a typed ErrorResp (recorded).
  std::optional<Frame> roundTrip(MsgType Type,
                                 const std::vector<std::uint8_t> &Body,
                                 MsgType ExpectedResp);

  void fail(Status S, std::string Message);

  int Fd = -1;
  std::uint32_t NextId = 1;
  Status LastStatus = Status::Ok;
  std::string LastError;
};

} // namespace service
} // namespace spl

#endif // SPL_SERVICE_CLIENT_H
