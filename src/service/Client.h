//===- service/Client.h - spld client library -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchronous client for the spld plan-serving daemon: one connection, one
/// request in flight at a time (the protocol allows pipelining; this client
/// keeps the common case simple — `splrun --connect` and the many-client
/// bench each run one Client per thread). Every call returns false/nullopt
/// on failure and records a typed Status plus a message, so callers can
/// distinguish a BUSY worth retrying from a hard protocol error. Not
/// thread-safe; use one Client per thread.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SERVICE_CLIENT_H
#define SPL_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "service/Socket.h"
#include "support/Deadline.h"

#include <optional>
#include <string>
#include <vector>

namespace spl {
namespace service {

/// A connected spld client.
class Client {
public:
  Client() = default;
  ~Client() { disconnect(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon socket. False (with lastError set) on failure.
  bool connect(const std::string &SocketPath);

  /// Closes the connection (idempotent).
  void disconnect();

  bool connected() const { return Fd >= 0; }

  /// Sets the end-to-end deadline subsequent requests run under. Each
  /// request carries the budget still remaining when it is sent (the v3
  /// DeadlineMs field), so the server stops working for this client the
  /// moment the budget is gone — including time the request spent queued.
  /// The retry helpers also stop retrying once the budget is spent. The
  /// default (unbounded) sends DeadlineMs = 0.
  void setDeadline(support::Deadline D) { DL = std::move(D); }
  const support::Deadline &deadline() const { return DL; }

  /// Round-trips a plan request.
  std::optional<PlanResponse> plan(const runtime::PlanSpec &Spec);

  /// Round-trips an execute request: \p Count vectors of \p VectorLen
  /// doubles from \p X into \p Y (caller-sized). VectorLen must match the
  /// plan's (a plan() call reports it).
  bool execute(const runtime::PlanSpec &Spec, double *Y, const double *X,
               std::int64_t Count, std::int64_t VectorLen, int Threads = 1);

  /// Like plan()/execute() but retrying typed BUSY rejections up to
  /// \p Retries times with exponential backoff plus jitter (1 ms doubling
  /// to a 64 ms cap, each sleep scattered over [half, full] so a rejected
  /// thundering herd does not re-arrive in lockstep). Retrying stops early
  /// — with the final failure recorded — when the client deadline is
  /// spent; sleeps never overshoot the remaining budget. Any non-BUSY
  /// failure is final.
  std::optional<PlanResponse> planRetryBusy(const runtime::PlanSpec &Spec,
                                            int Retries = 64);
  bool executeRetryBusy(const runtime::PlanSpec &Spec, double *Y,
                        const double *X, std::int64_t Count,
                        std::int64_t VectorLen, int Threads = 1,
                        int Retries = 64);

  /// Fetches the daemon's stats JSON (server identity + telemetry
  /// registry).
  std::optional<std::string> stats();

  /// Liveness probe.
  bool ping();

  /// Asks the daemon to drain and exit. The connection is useless after a
  /// true return.
  bool shutdownServer();

  /// The status/message of the most recent failure (Status::Ok after a
  /// success).
  Status lastStatus() const { return LastStatus; }
  const std::string &lastError() const { return LastError; }

private:
  /// Sends \p Body as \p Type and reads the matching response frame.
  /// Returns nullopt on transport failure or a typed ErrorResp (recorded).
  std::optional<Frame> roundTrip(MsgType Type,
                                 const std::vector<std::uint8_t> &Body,
                                 MsgType ExpectedResp);

  void fail(Status S, std::string Message);

  /// Sleeps one backoff step for retry \p Attempt, bounded by the
  /// remaining deadline budget. False when the budget is already spent.
  bool backoff(int Attempt);

  /// The v3 deadline field for a request sent right now: the remaining
  /// budget in whole milliseconds (at least 1 while any budget remains),
  /// or 0 (unbounded) when no deadline is set.
  std::uint32_t wireDeadlineMs() const;

  int Fd = -1;
  std::uint32_t NextId = 1;
  Status LastStatus = Status::Ok;
  std::string LastError;
  support::Deadline DL;
};

} // namespace service
} // namespace spl

#endif // SPL_SERVICE_CLIENT_H
