//===- service/Server.h - Multi-tenant plan-serving daemon core -*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spld daemon core: one long-lived process that serves plan and
/// execute traffic from many clients over a Unix-domain socket, amortizing
/// search, compiled kernels, and wisdom across all of them — the FFTW
/// plan/execute split turned into a service (see docs/SERVICE.md).
///
/// Ownership: the Server holds the single Planner (and through it the
/// wisdom store), the single-flight PlanRegistry, and a support::ThreadPool
/// the planning/execution work runs on. Each accepted connection gets a
/// reader thread; parsed requests are admitted onto the pool under two
/// bounds — a server-wide in-flight cap and a per-client quota — and
/// rejected with typed BUSY instead of queueing without bound. Oversized
/// frames and transforms come back TOO_LARGE. Stats requests are answered
/// inline (never queued) so the telemetry registry stays scrapeable even
/// when the pool is saturated.
///
/// Degradation: the planner's native -> VM -> oracle chain (SPL_FAULT
/// drivable) runs unchanged inside the daemon, so a broken compiler or a
/// crashing kernel demotes plans instead of killing the process.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SERVICE_SERVER_H
#define SPL_SERVICE_SERVER_H

#include "runtime/PlanRegistry.h"
#include "runtime/Planner.h"
#include "service/Protocol.h"
#include "service/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace spl {
namespace service {

/// Daemon configuration.
struct ServerOptions {
  std::string SocketPath; ///< Required: where to listen.

  /// Worker threads for planning/execution (0: ThreadPool default).
  int Workers = 0;

  /// Server-wide cap on admitted-but-unfinished plan/execute requests.
  /// Admission past this answers BUSY.
  int MaxInflight = 64;

  /// Per-connection cap on in-flight requests (pipelining quota).
  int PerClientInflight = 4;

  /// Largest accepted frame body; bigger requests answer TOO_LARGE.
  std::uint32_t MaxFrameBytes = kDefaultMaxFrameBytes;

  /// Largest accepted transform size (oracle memory is O(N^2); a million-
  /// point plan request from one tenant must not OOM the daemon).
  std::int64_t MaxTransformSize = 1 << 16;

  /// Cap on the per-request batch worker count a client may ask for.
  int MaxExecThreads = 4;

  /// Server-wide codegen policy (--codegen): Auto honors each request's
  /// own mode; Scalar/Vector override every incoming spec.
  runtime::CodegenMode Codegen = runtime::CodegenMode::Auto;

  /// Deadline applied to requests that carry none of their own (v2 clients
  /// and v3 requests with DeadlineMs = 0). 0 keeps them unbounded. The
  /// clock starts when the request frame is read, so queue time counts:
  /// a request that ages out waiting for a worker is answered
  /// DEADLINE_EXCEEDED without consuming pool time.
  std::int64_t DefaultDeadlineMs = 0;

  /// Consecutive native-compile failures before the process-wide compile
  /// circuit breaker opens (plans degrade straight to the VM tier for the
  /// cooldown). 0 leaves the breaker disabled; spld's CLI defaults to 5.
  int BreakerThreshold = 0;

  /// How long an open breaker stays open before admitting a probe compile.
  std::int64_t BreakerCooldownMs = 5000;

  /// Planner configuration (evaluator, wisdom path, search threads...).
  runtime::PlannerOptions Planner;
};

/// The daemon core. start() spawns the accept loop and returns; stop()
/// drains and joins everything and saves wisdom. Thread-safe throughout.
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and starts serving. False (with a diagnostic on the
  /// engine) when the socket cannot be created.
  bool start();

  /// Stops accepting, drains in-flight work, joins all threads, saves
  /// wisdom, removes the socket file. Idempotent.
  void stop();

  /// True after a client's SHUTDOWN request or an explicit call; spld's
  /// main loop polls this to know when to stop().
  bool shutdownRequested() const { return ShutdownFlag.load(); }

  /// Marks the daemon as draining: new plan/execute admissions answer
  /// SHUTTING_DOWN, shutdownRequested() flips true, and any
  /// waitForShutdownRequest() caller wakes up.
  void requestShutdown();

  /// Blocks until shutdownRequested() (used by tests; spld polls so it can
  /// also react to signals).
  void waitForShutdownRequest();

  const ServerOptions &options() const { return Opts; }
  runtime::Planner &planner() { return ThePlanner; }
  runtime::PlanRegistry &registry() { return Registry; }
  Diagnostics &diagnostics() { return Diags; }

  /// Live served-request counters (also exported as spld.* telemetry).
  struct Stats {
    std::uint64_t Connections = 0;
    std::uint64_t Requests = 0;
    std::uint64_t Plans = 0;
    std::uint64_t Executes = 0;
    std::uint64_t RejectedBusy = 0;
    std::uint64_t RejectedTooLarge = 0;
    std::uint64_t RejectedDeadline = 0; ///< Deadline spent (often in queue).
    std::uint64_t Errors = 0;
  };
  Stats stats() const;

private:
  struct Conn {
    int Fd = -1;
    std::uint64_t Id = 0;
    std::thread Reader;
    std::mutex WriteM;           ///< Serializes response frames.
    std::atomic<int> Inflight{0}; ///< Admitted jobs not yet answered.
    std::atomic<bool> Done{false};
  };

  void acceptLoop();
  void connLoop(std::shared_ptr<Conn> C);
  void reapFinishedConns();

  /// True when the request was admitted (quota + global bounds); on false
  /// the typed rejection was already sent (stamped with \p Version).
  bool admit(Conn &C, std::uint32_t RequestId, std::uint16_t Version);

  /// \p DL is the request's end-to-end deadline, started when the frame
  /// was read off the socket (so pool queue time counts against it).
  void handlePlan(std::shared_ptr<Conn> C, Frame F, support::Deadline DL);
  void handleExecute(std::shared_ptr<Conn> C, Frame F, support::Deadline DL);
  void handleStats(Conn &C, std::uint32_t RequestId, std::uint16_t Version);

  /// \p Version stamps the response header — always the request frame's
  /// version, so a v2 client can validate what comes back.
  bool sendFrame(Conn &C, MsgType Type, std::uint32_t RequestId,
                 const std::vector<std::uint8_t> &Body,
                 std::uint16_t Version = kProtocolVersion);
  void sendError(Conn &C, std::uint32_t RequestId, Status Code,
                 const std::string &Message,
                 std::uint16_t Version = kProtocolVersion);

  /// Validates and acquires the plan for a wire spec; on failure sends the
  /// typed error itself and returns null. \p DL bounds both the wait on
  /// another thread's in-flight pass and this caller's own planning.
  std::shared_ptr<runtime::Plan> acquirePlan(Conn &C, std::uint32_t RequestId,
                                             const WireSpec &WS,
                                             const support::Deadline &DL,
                                             std::uint16_t Version);

  ServerOptions Opts;
  Diagnostics Diags;
  runtime::Planner ThePlanner;
  runtime::PlanRegistry Registry;
  std::unique_ptr<ThreadPool> Pool;

  int ListenFd = -1;
  std::thread Acceptor;
  std::atomic<bool> Running{false};
  std::atomic<bool> ShutdownFlag{false};
  std::atomic<int> GlobalInflight{0};

  mutable std::mutex ConnsM;
  std::vector<std::shared_ptr<Conn>> Conns;
  std::uint64_t NextConnId = 1;

  std::mutex ShutdownM;
  std::condition_variable ShutdownCv;

  mutable std::mutex StatsM;
  Stats S;
};

} // namespace service
} // namespace spl

#endif // SPL_SERVICE_SERVER_H
