//===- service/Server.cpp - Multi-tenant plan-serving daemon core -------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "service/Socket.h"
#include "support/CircuitBreaker.h"
#include "telemetry/Metrics.h"
#include "telemetry/Trace.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

using namespace spl;
using namespace spl::service;

namespace {

/// Minimal JSON string escaping (paths and diagnostics in stats output).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// The deadline field of a v3 plan/execute request without decoding the
/// whole body: DeadlineMs is by design the first u32, so the reader thread
/// can start the deadline clock at frame-read time (queue time must count
/// against the budget). v2 frames and truncated bodies read as 0
/// (unbounded here; a truncated v3 body still fails full decode later).
std::uint32_t peekDeadlineMs(const Frame &F) {
  if (F.Version < 3 || F.Body.size() < 4)
    return 0;
  return static_cast<std::uint32_t>(F.Body[0]) |
         static_cast<std::uint32_t>(F.Body[1]) << 8 |
         static_cast<std::uint32_t>(F.Body[2]) << 16 |
         static_cast<std::uint32_t>(F.Body[3]) << 24;
}

/// Decrements the admission counters however a handler exits.
struct AdmissionGuard {
  std::atomic<int> &Global;
  std::atomic<int> &PerConn;
  telemetry::Gauge &InflightGauge;
  ~AdmissionGuard() {
    Global.fetch_sub(1, std::memory_order_relaxed);
    PerConn.fetch_sub(1, std::memory_order_relaxed);
    InflightGauge.add(-1);
  }
};

} // namespace

Server::Server(ServerOptions OptsIn)
    : Opts(std::move(OptsIn)), ThePlanner(Diags, Opts.Planner),
      Registry(ThePlanner) {
  // Pre-register the spld instrument set so a stats scrape of an idle
  // daemon still shows the full catalogue as zeros.
  telemetry::counter("spld.connections");
  telemetry::counter("spld.requests");
  telemetry::counter("spld.plan_requests");
  telemetry::counter("spld.execute_requests");
  telemetry::counter("spld.stats_requests");
  telemetry::counter("spld.rejected.busy");
  telemetry::counter("spld.rejected.too_large");
  telemetry::counter("spld.deadline_exceeded");
  telemetry::counter("spld.errors");
  telemetry::gauge("spld.inflight");
  telemetry::gauge("spld.active_connections");
  telemetry::histogram("spld.plan_ns");
  telemetry::histogram("spld.execute_ns");
  // The compile breaker is process-wide (one compiler, one breaker); the
  // daemon is the one deployment where overload protection should be on by
  // default, so spld's CLI passes a non-zero threshold here.
  if (Opts.BreakerThreshold > 0)
    support::compileBreaker().configure(Opts.BreakerThreshold,
                                        Opts.BreakerCooldownMs);
}

Server::~Server() { stop(); }

bool Server::start() {
  std::string Err;
  ListenFd = listenUnix(Opts.SocketPath, /*Backlog=*/128, Err);
  if (ListenFd < 0) {
    Diags.error(SourceLoc(), "spld: " + Err);
    return false;
  }
  Pool = std::make_unique<ThreadPool>(
      Opts.Workers > 0 ? static_cast<unsigned>(Opts.Workers)
                       : ThreadPool::defaultThreads());
  Running.store(true);
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::waitForShutdownRequest() {
  std::unique_lock<std::mutex> Lock(ShutdownM);
  ShutdownCv.wait(Lock, [this] { return ShutdownFlag.load(); });
}

void Server::requestShutdown() {
  // Store and notify under ShutdownM so waitForShutdownRequest() cannot
  // evaluate its predicate, miss the store, and then sleep through the
  // notification (lost wakeup).
  std::lock_guard<std::mutex> Lock(ShutdownM);
  ShutdownFlag.store(true);
  ShutdownCv.notify_all();
}

void Server::stop() {
  if (!Running.exchange(false)) {
    if (ListenFd >= 0) { // start() failed after a partial setup.
      ::close(ListenFd);
      ListenFd = -1;
    }
    return;
  }
  requestShutdown();
  // Unblock accept(); readers stop at their next frame boundary.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  ::close(ListenFd);
  ListenFd = -1;

  std::vector<std::shared_ptr<Conn>> Remaining;
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    Remaining.swap(Conns);
  }
  for (auto &C : Remaining)
    ::shutdown(C->Fd, SHUT_RD); // In-flight responses still go out.
  for (auto &C : Remaining) {
    if (C->Reader.joinable())
      C->Reader.join();
    ::close(C->Fd);
  }
  if (Pool)
    Pool->wait();
  ThePlanner.saveWisdom();
  ::unlink(Opts.SocketPath.c_str());
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return S;
}

void Server::reapFinishedConns() {
  std::vector<std::shared_ptr<Conn>> Dead;
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    for (auto It = Conns.begin(); It != Conns.end();) {
      if ((*It)->Done.load()) {
        Dead.push_back(*It);
        It = Conns.erase(It);
      } else {
        ++It;
      }
    }
  }
  for (auto &C : Dead) {
    if (C->Reader.joinable())
      C->Reader.join();
    ::close(C->Fd);
  }
}

void Server::acceptLoop() {
  static telemetry::Counter &ConnsTotal =
      telemetry::counter("spld.connections");
  static telemetry::Gauge &Active =
      telemetry::gauge("spld.active_connections");
  bool AcceptErrorLogged = false;
  while (Running.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (!Running.load())
        break;
      if (errno == EINTR)
        continue;
      // Persistent failures (EMFILE/ENFILE under fd exhaustion) would
      // otherwise busy-spin this thread at 100% while still unable to
      // accept: back off briefly and log the first occurrence.
      if (!AcceptErrorLogged) {
        AcceptErrorLogged = true;
        Diags.error(SourceLoc(), std::string("spld: accept: ") +
                                     std::strerror(errno) +
                                     " (backing off; will keep retrying)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    AcceptErrorLogged = false;
    reapFinishedConns();
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(ConnsM);
      C->Id = NextConnId++;
      Conns.push_back(C);
    }
    ConnsTotal.add();
    Active.add(1);
    {
      std::lock_guard<std::mutex> Lock(StatsM);
      ++S.Connections;
    }
    C->Reader = std::thread([this, C] { connLoop(C); });
  }
}

bool Server::sendFrame(Conn &C, MsgType Type, std::uint32_t RequestId,
                       const std::vector<std::uint8_t> &Body,
                       std::uint16_t Version) {
  std::lock_guard<std::mutex> Lock(C.WriteM);
  return writeFrame(C.Fd, Type, RequestId, Body, Version);
}

void Server::sendError(Conn &C, std::uint32_t RequestId, Status Code,
                       const std::string &Message, std::uint16_t Version) {
  static telemetry::Counter &Errors = telemetry::counter("spld.errors");
  static telemetry::Counter &Busy = telemetry::counter("spld.rejected.busy");
  static telemetry::Counter &TooLarge =
      telemetry::counter("spld.rejected.too_large");
  static telemetry::Counter &DeadlineHit =
      telemetry::counter("spld.deadline_exceeded");
  if (Code == Status::Busy)
    Busy.add();
  else if (Code == Status::TooLarge)
    TooLarge.add();
  else if (Code == Status::DeadlineExceeded)
    DeadlineHit.add();
  else
    Errors.add();
  {
    std::lock_guard<std::mutex> Lock(StatsM);
    if (Code == Status::Busy)
      ++S.RejectedBusy;
    else if (Code == Status::TooLarge)
      ++S.RejectedTooLarge;
    else if (Code == Status::DeadlineExceeded)
      ++S.RejectedDeadline;
    else
      ++S.Errors;
  }
  ErrorBody E;
  E.Code = Code;
  E.Message = Message;
  sendFrame(C, MsgType::ErrorResp, RequestId, E.encode(), Version);
}

bool Server::admit(Conn &C, std::uint32_t RequestId, std::uint16_t Version) {
  static telemetry::Gauge &Inflight = telemetry::gauge("spld.inflight");
  if (ShutdownFlag.load()) {
    sendError(C, RequestId, Status::ShuttingDown,
              "daemon is draining; no new work accepted", Version);
    return false;
  }
  if (GlobalInflight.fetch_add(1, std::memory_order_relaxed) >=
      Opts.MaxInflight) {
    GlobalInflight.fetch_sub(1, std::memory_order_relaxed);
    sendError(C, RequestId, Status::Busy,
              "server queue is full (" + std::to_string(Opts.MaxInflight) +
                  " in flight); retry",
              Version);
    return false;
  }
  if (C.Inflight.fetch_add(1, std::memory_order_relaxed) >=
      Opts.PerClientInflight) {
    C.Inflight.fetch_sub(1, std::memory_order_relaxed);
    GlobalInflight.fetch_sub(1, std::memory_order_relaxed);
    sendError(C, RequestId, Status::Busy,
              "per-client quota exceeded (" +
                  std::to_string(Opts.PerClientInflight) + " in flight)",
              Version);
    return false;
  }
  Inflight.add(1);
  return true;
}

std::shared_ptr<runtime::Plan>
Server::acquirePlan(Conn &C, std::uint32_t RequestId, const WireSpec &WS,
                    const support::Deadline &DL, std::uint16_t Version) {
  // The admission cap applies to the total transform size: the shape
  // product for N-D requests (v4), WS.Size otherwise. The product is
  // clamped rather than wrapped so a hostile shape cannot sneak under the
  // cap via overflow.
  std::int64_t Total = WS.Size;
  if (!WS.Shape.empty()) {
    Total = 1;
    for (std::int64_t D : WS.Shape) {
      if (D < 1 || Total > Opts.MaxTransformSize) {
        Total = Opts.MaxTransformSize + 1;
        break;
      }
      Total *= D;
    }
  }
  if (Total > Opts.MaxTransformSize) {
    sendError(C, RequestId, Status::TooLarge,
              "transform size " + std::to_string(Total) +
                  " exceeds the server cap of " +
                  std::to_string(Opts.MaxTransformSize),
              Version);
    return nullptr;
  }
  bool SpecOK = false;
  runtime::PlanSpec Spec = WS.toSpec(SpecOK);
  if (!SpecOK) {
    runtime::Backend B;
    sendError(C, RequestId, Status::BadRequest,
              !runtime::parseBackend(WS.Backend, B)
                  ? "unknown backend '" + WS.Backend + "'"
                  : "unknown codegen mode '" + WS.Codegen + "'",
              Version);
    return nullptr;
  }
  if (Opts.Codegen != runtime::CodegenMode::Auto)
    Spec.Codegen = Opts.Codegen; // Server policy overrides the request.
  // Validate with a request-local engine so the reason travels back to the
  // requesting client instead of piling up in the daemon-wide log.
  Diagnostics Local;
  if (!runtime::Planner::validateSpec(Spec, Local)) {
    sendError(C, RequestId, Status::BadSpec, Local.dump(), Version);
    return nullptr;
  }
  runtime::PlanError PErr = runtime::PlanError::None;
  auto P = Registry.acquire(Spec, DL, &PErr);
  if (!P) {
    if (PErr == runtime::PlanError::DeadlineExceeded) {
      sendError(C, RequestId, Status::DeadlineExceeded,
                "deadline expired while planning '" + Spec.key() + "'",
                Version);
    } else {
      sendError(C, RequestId, Status::PlanFailed,
                "planning failed server-side for '" + Spec.key() +
                    "' (daemon log has diagnostics)",
                Version);
    }
    return nullptr;
  }
  return P;
}

void Server::handlePlan(std::shared_ptr<Conn> C, Frame F,
                        support::Deadline DL) {
  static telemetry::Gauge &Inflight = telemetry::gauge("spld.inflight");
  static telemetry::Histogram &PlanNs = telemetry::histogram("spld.plan_ns");
  AdmissionGuard Guard{GlobalInflight, C->Inflight, Inflight};

  // Aged out in the pool queue: answer typed without starting the stage
  // timer — an expired request must not consume (or be counted as) plan
  // time.
  if (DL.expired()) {
    sendError(*C, F.RequestId, Status::DeadlineExceeded,
              "deadline expired while queued for a worker", F.Version);
    return;
  }
  telemetry::StageTimer T("spld.plan", &PlanNs);

  PlanRequest Req;
  if (!PlanRequest::decode(F.Body.data(), F.Body.size(), Req, F.Version)) {
    sendError(*C, F.RequestId, Status::BadRequest,
              "malformed plan request body", F.Version);
    return;
  }
  auto P = acquirePlan(*C, F.RequestId, Req.Spec, DL, F.Version);
  if (!P)
    return;
  {
    std::lock_guard<std::mutex> Lock(StatsM);
    ++S.Plans;
  }
  PlanResponse Resp;
  Resp.Key = P->spec().key();
  Resp.Backend = runtime::backendName(P->backend());
  Resp.VectorLen = P->vectorLen();
  Resp.Cost = P->searchCost();
  Resp.Fallback = P->usedFallback();
  Resp.FallbackReason = P->fallbackReason();
  Resp.FormulaText = P->formulaText();
  sendFrame(*C, MsgType::PlanResp, F.RequestId, Resp.encode(), F.Version);
}

void Server::handleExecute(std::shared_ptr<Conn> C, Frame F,
                           support::Deadline DL) {
  static telemetry::Gauge &Inflight = telemetry::gauge("spld.inflight");
  static telemetry::Histogram &ExecNs =
      telemetry::histogram("spld.execute_ns");
  AdmissionGuard Guard{GlobalInflight, C->Inflight, Inflight};

  // Aged out in the pool queue: reject before the stage timer so expired
  // requests never show up as execute time (the overload bench asserts
  // the spld.execute_ns sample count stays flat during a deadline storm).
  if (DL.expired()) {
    sendError(*C, F.RequestId, Status::DeadlineExceeded,
              "deadline expired while queued for a worker", F.Version);
    return;
  }
  telemetry::StageTimer T("spld.execute", &ExecNs);

  ExecuteRequest Req;
  if (!ExecuteRequest::decode(F.Body.data(), F.Body.size(), Req, F.Version)) {
    sendError(*C, F.RequestId, Status::BadRequest,
              "malformed execute request body", F.Version);
    return;
  }
  if (Req.Count < 1) {
    sendError(*C, F.RequestId, Status::BadRequest,
              "execute count must be >= 1", F.Version);
    return;
  }
  auto P = acquirePlan(*C, F.RequestId, Req.Spec, DL, F.Version);
  if (!P)
    return;
  // Count is untrusted wire input: `Count * Len` can overflow int64 and
  // wrap to match a short payload, so derive the batch count from the
  // actual payload size instead and require the client's Count to agree.
  const std::int64_t Len = P->vectorLen();
  if (Len <= 0 || Req.Data.size() % static_cast<std::size_t>(Len) != 0 ||
      Req.Count !=
          static_cast<std::int64_t>(Req.Data.size() /
                                    static_cast<std::size_t>(Len))) {
    sendError(*C, F.RequestId, Status::BadRequest,
              "execute payload holds " + std::to_string(Req.Data.size()) +
                  " doubles; " + std::to_string(Req.Count) + " x " +
                  std::to_string(Len) + " expected",
              F.Version);
    return;
  }
  int Threads = Req.Threads < 1 ? 1
                : Req.Threads > Opts.MaxExecThreads ? Opts.MaxExecThreads
                                                    : Req.Threads;
  ExecuteResponse Resp;
  Resp.Count = Req.Count;
  Resp.VectorLen = Len;
  Resp.Data.resize(Req.Data.size());
  if (P->executeBatch(Resp.Data.data(), Req.Data.data(), Req.Count, DL,
                      Threads) == runtime::ExecStatus::DeadlineExceeded) {
    // Partial batches are never shipped: the client asked for Count
    // results and gets a typed error instead of silently truncated data.
    sendError(*C, F.RequestId, Status::DeadlineExceeded,
              "deadline expired mid-batch after planning '" +
                  P->spec().key() + "'",
              F.Version);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(StatsM);
    ++S.Executes;
  }
  sendFrame(*C, MsgType::ExecuteResp, F.RequestId, Resp.encode(), F.Version);
}

void Server::handleStats(Conn &C, std::uint32_t RequestId,
                         std::uint16_t Version) {
  static telemetry::Counter &StatsReqs =
      telemetry::counter("spld.stats_requests");
  StatsReqs.add();
  Stats Snap = stats();
  auto RS = Registry.stats();
  std::ostringstream SS;
  SS << "{\"server\":{"
     << "\"socket\":\"" << jsonEscape(Opts.SocketPath) << "\","
     << "\"connections\":" << Snap.Connections << ","
     << "\"requests\":" << Snap.Requests << ","
     << "\"plans\":" << Snap.Plans << ","
     << "\"executes\":" << Snap.Executes << ","
     << "\"rejected_busy\":" << Snap.RejectedBusy << ","
     << "\"rejected_too_large\":" << Snap.RejectedTooLarge << ","
     << "\"rejected_deadline\":" << Snap.RejectedDeadline << ","
     << "\"errors\":" << Snap.Errors << ","
     << "\"breaker\":\"" << support::compileBreaker().stateName() << "\","
     << "\"registry\":{\"plans\":" << Registry.size()
     << ",\"hits\":" << RS.Hits << ",\"misses\":" << RS.Misses
     << ",\"waits\":" << RS.Waits << "},"
     << "\"wisdom\":\"" << jsonEscape(ThePlanner.wisdom().summary()) << "\""
     << "},\"metrics\":" << telemetry::metricsJson() << "}";
  StatsResponse Resp;
  Resp.Json = SS.str();
  sendFrame(C, MsgType::StatsResp, RequestId, Resp.encode(), Version);
}

void Server::connLoop(std::shared_ptr<Conn> C) {
  static telemetry::Counter &Requests = telemetry::counter("spld.requests");
  static telemetry::Gauge &Active =
      telemetry::gauge("spld.active_connections");
  while (true) {
    Frame F;
    IoStatus St = readFrame(C->Fd, Opts.MaxFrameBytes, F);
    if (St == IoStatus::Closed || St == IoStatus::Error)
      break;
    if (St == IoStatus::BadFrame) {
      // Unsynchronizable stream: answer (best effort) and hang up.
      sendError(*C, 0, Status::Protocol,
                "bad frame header (magic/version mismatch)");
      break;
    }
    Requests.add();
    {
      std::lock_guard<std::mutex> Lock(StatsM);
      ++S.Requests;
    }
    if (St == IoStatus::TooBig) {
      sendError(*C, F.RequestId, Status::TooLarge,
                "frame body exceeds the server cap of " +
                    std::to_string(Opts.MaxFrameBytes) + " bytes");
      continue;
    }
    switch (F.Type) {
    case MsgType::PingReq:
      sendFrame(*C, MsgType::PingResp, F.RequestId, {}, F.Version);
      break;
    case MsgType::StatsReq:
      // Answered inline on the reader thread: a scrape must succeed even
      // when every pool worker is busy planning.
      handleStats(*C, F.RequestId, F.Version);
      break;
    case MsgType::ShutdownReq:
      sendFrame(*C, MsgType::ShutdownResp, F.RequestId, {}, F.Version);
      requestShutdown();
      break;
    case MsgType::PlanReq:
      if (admit(*C, F.RequestId, F.Version)) {
        static telemetry::Counter &PlanReqs =
            telemetry::counter("spld.plan_requests");
        PlanReqs.add();
        // The deadline clock starts here, on the reader thread, so time
        // spent queued for a pool worker counts against the budget.
        support::Deadline DL = support::Deadline::afterMs(
            peekDeadlineMs(F) ? peekDeadlineMs(F) : Opts.DefaultDeadlineMs);
        Pool->run([this, C, F = std::move(F), DL]() mutable {
          handlePlan(C, std::move(F), DL);
        });
      }
      break;
    case MsgType::ExecuteReq:
      if (admit(*C, F.RequestId, F.Version)) {
        static telemetry::Counter &ExecReqs =
            telemetry::counter("spld.execute_requests");
        ExecReqs.add();
        support::Deadline DL = support::Deadline::afterMs(
            peekDeadlineMs(F) ? peekDeadlineMs(F) : Opts.DefaultDeadlineMs);
        Pool->run([this, C, F = std::move(F), DL]() mutable {
          handleExecute(C, std::move(F), DL);
        });
      }
      break;
    default:
      sendError(*C, F.RequestId, Status::BadRequest,
                "unexpected frame type " +
                    std::to_string(static_cast<unsigned>(F.Type)),
                F.Version);
      break;
    }
  }
  // Let admitted jobs finish writing before the fd can be closed by the
  // reaper; they hold the Conn alive via shared_ptr but not the fd's
  // usability past Done.
  while (C->Inflight.load(std::memory_order_relaxed) != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Signal EOF to the peer now; the reaper may not run until the next
  // accept, and close() must stay with whoever joins this thread (fd-reuse
  // safety). shutdown() keeps the fd number allocated.
  ::shutdown(C->Fd, SHUT_RDWR);
  Active.add(-1);
  C->Done.store(true);
}
