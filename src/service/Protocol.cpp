//===- service/Protocol.cpp - spld wire protocol ------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

using namespace spl;
using namespace spl::service;

const char *spl::service::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::BadRequest:
    return "bad-request";
  case Status::BadSpec:
    return "bad-spec";
  case Status::PlanFailed:
    return "plan-failed";
  case Status::ExecFailed:
    return "exec-failed";
  case Status::Busy:
    return "busy";
  case Status::TooLarge:
    return "too-large";
  case Status::ShuttingDown:
    return "shutting-down";
  case Status::Protocol:
    return "protocol-error";
  case Status::DeadlineExceeded:
    return "deadline-exceeded";
  }
  return "unknown";
}

// Status values 0..5 are tools/ExitCodes.h by construction (the library
// cannot include tools/ headers without inverting the layering; spld
// static_asserts the correspondence). Service-only codes collapse onto the
// execution-failure stage, except DeadlineExceeded, which owns the
// ExitDeadline stage (6) so scripts can branch on "too slow".
int spl::service::statusToExitCode(Status S) {
  if (S == Status::DeadlineExceeded)
    return 6;
  std::uint32_t V = static_cast<std::uint32_t>(S);
  return V <= 5 ? static_cast<int>(V) : 5;
}

//===----------------------------------------------------------------------===//
// FrameHeader
//===----------------------------------------------------------------------===//

void FrameHeader::encode(std::uint8_t Out[kHeaderBytes]) const {
  std::vector<std::uint8_t> Buf;
  Buf.reserve(kHeaderBytes);
  WireWriter W(Buf);
  W.u32(Magic);
  W.u16(Version);
  W.u16(static_cast<std::uint16_t>(Type));
  W.u32(RequestId);
  W.u32(BodyLen);
  std::memcpy(Out, Buf.data(), kHeaderBytes);
}

bool FrameHeader::decode(const std::uint8_t In[kHeaderBytes], FrameHeader &H) {
  WireReader R(In, kHeaderBytes);
  H.Magic = R.u32();
  H.Version = R.u16();
  H.Type = static_cast<MsgType>(R.u16());
  H.RequestId = R.u32();
  H.BodyLen = R.u32();
  return R.ok() && H.Magic == kMagic && H.Version >= kMinProtocolVersion &&
         H.Version <= kProtocolVersion;
}

//===----------------------------------------------------------------------===//
// WireSpec
//===----------------------------------------------------------------------===//

runtime::PlanSpec WireSpec::toSpec(bool &OK) const {
  runtime::PlanSpec S;
  S.Transform = Transform;
  S.Size = Size;
  S.Datatype = Datatype;
  S.UnrollThreshold = UnrollThreshold;
  S.MaxLeaf = MaxLeaf;
  S.Shape = Shape;
  OK = runtime::parseBackend(Backend, S.Want) &&
       runtime::parseCodegenMode(Codegen, S.Codegen);
  return S;
}

WireSpec WireSpec::fromSpec(const runtime::PlanSpec &Spec) {
  WireSpec W;
  W.Transform = Spec.Transform;
  W.Size = Spec.Size;
  W.Datatype = Spec.Datatype;
  W.UnrollThreshold = Spec.UnrollThreshold;
  W.MaxLeaf = Spec.MaxLeaf;
  W.Backend = runtime::backendName(Spec.Want);
  W.Codegen = runtime::codegenModeName(Spec.Codegen);
  W.Shape = Spec.Shape;
  return W;
}

void WireSpec::encode(WireWriter &W, std::uint16_t Version) const {
  W.str(Transform);
  W.i64(Size);
  W.str(Datatype);
  W.i64(UnrollThreshold);
  W.i64(MaxLeaf);
  W.str(Backend);
  W.str(Codegen);
  if (Version >= 4) {
    W.u32(static_cast<std::uint32_t>(Shape.size()));
    for (std::int64_t D : Shape)
      W.i64(D);
  }
}

bool WireSpec::decode(WireReader &R, WireSpec &Out, std::uint16_t Version) {
  Out.Transform = R.str();
  Out.Size = R.i64();
  Out.Datatype = R.str();
  Out.UnrollThreshold = R.i64();
  Out.MaxLeaf = R.i64();
  Out.Backend = R.str();
  Out.Codegen = R.str();
  Out.Shape.clear();
  if (Version >= 4) {
    std::uint32_t Rank = R.u32();
    if (!R.ok() || Rank > kMaxShapeRank)
      return false;
    Out.Shape.reserve(Rank);
    for (std::uint32_t I = 0; I != Rank; ++I)
      Out.Shape.push_back(R.i64());
  }
  return R.ok();
}

//===----------------------------------------------------------------------===//
// Bodies
//===----------------------------------------------------------------------===//

std::vector<std::uint8_t> PlanRequest::encode(std::uint16_t Version) const {
  std::vector<std::uint8_t> Buf;
  WireWriter W(Buf);
  if (Version >= 3)
    W.u32(DeadlineMs);
  Spec.encode(W, Version);
  return Buf;
}

bool PlanRequest::decode(const std::uint8_t *Data, std::size_t Len,
                         PlanRequest &Out, std::uint16_t Version) {
  WireReader R(Data, Len);
  Out.DeadlineMs = Version >= 3 ? R.u32() : 0;
  return R.ok() && WireSpec::decode(R, Out.Spec, Version) &&
         R.remaining() == 0;
}

std::vector<std::uint8_t> PlanResponse::encode() const {
  std::vector<std::uint8_t> Buf;
  WireWriter W(Buf);
  W.str(Key);
  W.str(Backend);
  W.i64(VectorLen);
  W.f64(Cost);
  W.u8(Fallback ? 1 : 0);
  W.str(FallbackReason);
  W.str(FormulaText);
  return Buf;
}

bool PlanResponse::decode(const std::uint8_t *Data, std::size_t Len,
                          PlanResponse &Out) {
  WireReader R(Data, Len);
  Out.Key = R.str();
  Out.Backend = R.str();
  Out.VectorLen = R.i64();
  Out.Cost = R.f64();
  Out.Fallback = R.u8() != 0;
  Out.FallbackReason = R.str();
  Out.FormulaText = R.str();
  return R.ok() && R.remaining() == 0;
}

std::vector<std::uint8_t> ExecuteRequest::encode(std::uint16_t Version) const {
  std::vector<std::uint8_t> Buf;
  WireWriter W(Buf);
  if (Version >= 3)
    W.u32(DeadlineMs);
  Spec.encode(W, Version);
  W.i64(Count);
  W.u32(static_cast<std::uint32_t>(Threads));
  W.u64(Data.size());
  W.doubles(Data.data(), Data.size());
  return Buf;
}

bool ExecuteRequest::decode(const std::uint8_t *Data, std::size_t Len,
                            ExecuteRequest &Out, std::uint16_t Version) {
  WireReader R(Data, Len);
  Out.DeadlineMs = Version >= 3 ? R.u32() : 0;
  if (!R.ok() || !WireSpec::decode(R, Out.Spec, Version))
    return false;
  Out.Count = R.i64();
  Out.Threads = static_cast<std::int32_t>(R.u32());
  std::uint64_t N = R.u64();
  if (!R.ok() || N != R.remaining() / 8 || N * 8 != R.remaining())
    return false;
  Out.Data.resize(N);
  return R.doubles(Out.Data.data(), N) && R.remaining() == 0;
}

std::vector<std::uint8_t> ExecuteResponse::encode() const {
  std::vector<std::uint8_t> Buf;
  WireWriter W(Buf);
  W.i64(Count);
  W.i64(VectorLen);
  W.u64(Data.size());
  W.doubles(Data.data(), Data.size());
  return Buf;
}

bool ExecuteResponse::decode(const std::uint8_t *Data, std::size_t Len,
                             ExecuteResponse &Out) {
  WireReader R(Data, Len);
  Out.Count = R.i64();
  Out.VectorLen = R.i64();
  std::uint64_t N = R.u64();
  if (!R.ok() || N != R.remaining() / 8 || N * 8 != R.remaining())
    return false;
  Out.Data.resize(N);
  return R.doubles(Out.Data.data(), N) && R.remaining() == 0;
}

std::vector<std::uint8_t> StatsResponse::encode() const {
  std::vector<std::uint8_t> Buf;
  WireWriter W(Buf);
  W.str(Json);
  return Buf;
}

bool StatsResponse::decode(const std::uint8_t *Data, std::size_t Len,
                           StatsResponse &Out) {
  WireReader R(Data, Len);
  Out.Json = R.str();
  return R.ok() && R.remaining() == 0;
}

std::vector<std::uint8_t> ErrorBody::encode() const {
  std::vector<std::uint8_t> Buf;
  WireWriter W(Buf);
  W.u32(static_cast<std::uint32_t>(Code));
  W.str(Message);
  return Buf;
}

bool ErrorBody::decode(const std::uint8_t *Data, std::size_t Len,
                       ErrorBody &Out) {
  WireReader R(Data, Len);
  Out.Code = static_cast<Status>(R.u32());
  Out.Message = R.str();
  return R.ok() && R.remaining() == 0;
}
