//===- service/Client.cpp - spld client library -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "service/Socket.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <random>
#include <thread>

#include <unistd.h>

using namespace spl;
using namespace spl::service;

bool Client::connect(const std::string &SocketPath) {
  disconnect();
  std::string Err;
  Fd = connectUnix(SocketPath, Err);
  if (Fd < 0) {
    fail(Status::Protocol, Err);
    return false;
  }
  LastStatus = Status::Ok;
  LastError.clear();
  return true;
}

void Client::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Client::fail(Status S, std::string Message) {
  LastStatus = S;
  LastError = std::move(Message);
}

std::uint32_t Client::wireDeadlineMs() const {
  if (DL.unbounded())
    return 0;
  // Round up to at least 1 ms while any budget remains: a 0 on the wire
  // would mean "unbounded", the opposite of a nearly spent deadline.
  std::int64_t Ms = DL.remainingMs();
  if (Ms < 1)
    Ms = 1;
  constexpr std::int64_t Cap = std::numeric_limits<std::uint32_t>::max();
  return static_cast<std::uint32_t>(std::min(Ms, Cap));
}

bool Client::backoff(int Attempt) {
  // Exponential with full doubling capped at 64 ms, then jittered into
  // [half, full] so simultaneously rejected clients spread out instead of
  // re-arriving as the same thundering herd that got them rejected.
  static thread_local std::minstd_rand Rng(
      std::random_device{}());
  const double CapMs = static_cast<double>(1 << std::min(Attempt, 6));
  std::uniform_real_distribution<double> Dist(CapMs * 0.5, CapMs);
  double SleepMs = Dist(Rng);
  const double RemainingMs = DL.remainingSeconds() * 1000.0;
  if (RemainingMs <= 0)
    return false; // Budget spent; the caller reports the last failure.
  SleepMs = std::min(SleepMs, RemainingMs);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      SleepMs));
  return !DL.expired();
}

std::optional<Frame> Client::roundTrip(MsgType Type,
                                       const std::vector<std::uint8_t> &Body,
                                       MsgType ExpectedResp) {
  if (Fd < 0) {
    fail(Status::Protocol, "not connected");
    return std::nullopt;
  }
  std::uint32_t Id = NextId++;
  if (!writeFrame(Fd, Type, Id, Body)) {
    fail(Status::Protocol, "send failed (daemon gone?)");
    disconnect();
    return std::nullopt;
  }
  Frame F;
  IoStatus St = readFrame(Fd, kDefaultMaxFrameBytes, F);
  if (St != IoStatus::Ok) {
    fail(Status::Protocol, St == IoStatus::Closed
                               ? "connection closed by daemon"
                               : "response read failed");
    disconnect();
    return std::nullopt;
  }
  if (F.RequestId != Id) {
    fail(Status::Protocol, "response id mismatch (pipelining misuse?)");
    disconnect();
    return std::nullopt;
  }
  if (F.Type == MsgType::ErrorResp) {
    ErrorBody E;
    if (!ErrorBody::decode(F.Body.data(), F.Body.size(), E)) {
      fail(Status::Protocol, "undecodable error response");
      disconnect();
      return std::nullopt;
    }
    fail(E.Code, E.Message);
    return std::nullopt;
  }
  if (F.Type != ExpectedResp) {
    fail(Status::Protocol, "unexpected response type");
    disconnect();
    return std::nullopt;
  }
  LastStatus = Status::Ok;
  LastError.clear();
  return F;
}

std::optional<PlanResponse> Client::plan(const runtime::PlanSpec &Spec) {
  PlanRequest Req;
  Req.DeadlineMs = wireDeadlineMs();
  Req.Spec = WireSpec::fromSpec(Spec);
  auto F = roundTrip(MsgType::PlanReq, Req.encode(), MsgType::PlanResp);
  if (!F)
    return std::nullopt;
  PlanResponse Resp;
  if (!PlanResponse::decode(F->Body.data(), F->Body.size(), Resp)) {
    fail(Status::Protocol, "undecodable plan response");
    return std::nullopt;
  }
  return Resp;
}

bool Client::execute(const runtime::PlanSpec &Spec, double *Y, const double *X,
                     std::int64_t Count, std::int64_t VectorLen, int Threads) {
  ExecuteRequest Req;
  Req.DeadlineMs = wireDeadlineMs();
  Req.Spec = WireSpec::fromSpec(Spec);
  Req.Count = Count;
  Req.Threads = Threads;
  Req.Data.assign(X, X + Count * VectorLen);
  auto F = roundTrip(MsgType::ExecuteReq, Req.encode(), MsgType::ExecuteResp);
  if (!F)
    return false;
  ExecuteResponse Resp;
  if (!ExecuteResponse::decode(F->Body.data(), F->Body.size(), Resp)) {
    fail(Status::Protocol, "undecodable execute response");
    return false;
  }
  if (Resp.Count != Count || Resp.VectorLen != VectorLen ||
      Resp.Data.size() != static_cast<std::size_t>(Count * VectorLen)) {
    fail(Status::Protocol, "execute response shape mismatch");
    return false;
  }
  std::memcpy(Y, Resp.Data.data(), Resp.Data.size() * sizeof(double));
  return true;
}

std::optional<PlanResponse>
Client::planRetryBusy(const runtime::PlanSpec &Spec, int Retries) {
  for (int Attempt = 0;; ++Attempt) {
    if (auto R = plan(Spec))
      return R;
    if (LastStatus != Status::Busy || Attempt >= Retries)
      return std::nullopt;
    if (!backoff(Attempt))
      return std::nullopt; // Deadline spent; LastStatus still says Busy.
  }
}

bool Client::executeRetryBusy(const runtime::PlanSpec &Spec, double *Y,
                              const double *X, std::int64_t Count,
                              std::int64_t VectorLen, int Threads,
                              int Retries) {
  for (int Attempt = 0;; ++Attempt) {
    if (execute(Spec, Y, X, Count, VectorLen, Threads))
      return true;
    if (LastStatus != Status::Busy || Attempt >= Retries)
      return false;
    if (!backoff(Attempt))
      return false;
  }
}

std::optional<std::string> Client::stats() {
  auto F = roundTrip(MsgType::StatsReq, {}, MsgType::StatsResp);
  if (!F)
    return std::nullopt;
  StatsResponse Resp;
  if (!StatsResponse::decode(F->Body.data(), F->Body.size(), Resp)) {
    fail(Status::Protocol, "undecodable stats response");
    return std::nullopt;
  }
  return Resp.Json;
}

bool Client::ping() {
  return roundTrip(MsgType::PingReq, {}, MsgType::PingResp).has_value();
}

bool Client::shutdownServer() {
  return roundTrip(MsgType::ShutdownReq, {}, MsgType::ShutdownResp)
      .has_value();
}
