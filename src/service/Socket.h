//===- service/Socket.h - Unix-domain stream transport ----------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX wrappers the service layer builds on: listen/connect on a
/// Unix-domain stream socket, EINTR-safe full reads/writes, and framed
/// message I/O (header validation + body-size caps) in terms of
/// service/Protocol.h. Every failure mode is a returned status — no
/// exceptions, no errno spelunking for callers. SIGPIPE is never raised
/// (MSG_NOSIGNAL); a peer hangup surfaces as Closed.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SERVICE_SOCKET_H
#define SPL_SERVICE_SOCKET_H

#include "service/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spl {
namespace service {

/// Outcome of one framed read/write.
enum class IoStatus {
  Ok,
  Closed,   ///< Orderly EOF (peer closed between frames) or EPIPE.
  Error,    ///< Syscall failure or a truncated frame mid-message.
  BadFrame, ///< Header failed validation (magic/version) — unrecoverable.
  TooBig,   ///< Body length exceeds the caller's cap; body was not read.
};

/// One received frame.
struct Frame {
  MsgType Type = MsgType::PingReq;
  std::uint32_t RequestId = 0;
  /// The protocol revision the peer stamped on the header. The server
  /// decodes the body per this version and echoes it on the response so a
  /// v2 client never sees a version it cannot validate.
  std::uint16_t Version = kProtocolVersion;
  std::vector<std::uint8_t> Body;
};

/// Creates, binds and listens on a Unix-domain stream socket at \p Path,
/// replacing any stale socket file. Returns the listening fd, or -1 with
/// \p Err describing the failing step.
int listenUnix(const std::string &Path, int Backlog, std::string &Err);

/// Connects to the daemon socket at \p Path. Returns the fd, or -1 with
/// \p Err set.
int connectUnix(const std::string &Path, std::string &Err);

/// Writes all \p Len bytes (EINTR-safe, MSG_NOSIGNAL). False on any error.
bool sendAll(int Fd, const void *Data, std::size_t Len);

/// Reads exactly \p Len bytes. Returns Ok, Closed (clean EOF at offset 0),
/// or Error (mid-buffer EOF or syscall failure).
IoStatus recvAll(int Fd, void *Data, std::size_t Len);

/// Sends one frame: header + body. \p Version stamps the header — servers
/// pass the request frame's version so old clients can decode the reply.
bool writeFrame(int Fd, MsgType Type, std::uint32_t RequestId,
                const std::vector<std::uint8_t> &Body,
                std::uint16_t Version = kProtocolVersion);

/// Reads one frame, validating the header and capping the body at
/// \p MaxBodyBytes. On TooBig the offending body is consumed (so the
/// caller can answer with a typed error and keep the connection); on
/// BadFrame the stream cannot be resynchronized and must be closed.
IoStatus readFrame(int Fd, std::uint32_t MaxBodyBytes, Frame &Out);

} // namespace service
} // namespace spl

#endif // SPL_SERVICE_SOCKET_H
