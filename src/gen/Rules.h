//===- gen/Rules.h - Breakdown rules ----------------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The formula generator's breakdown rules (paper Section 2.1): the
/// Cooley-Tukey factorization (Equation 5) with its decimation-in-frequency
/// (7), parallel (8) and vector (9) variants, the general multi-factor
/// factorization (Equation 10), the Walsh-Hadamard rule, and the recursive
/// DCT-II / DCT-IV rules. Each rule returns an SPL formula that denotes
/// exactly the transform it factors; tests verify every rule against the
/// dense definitions.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_GEN_RULES_H
#define SPL_GEN_RULES_H

#include "ir/Formula.h"

#include <cstdint>
#include <vector>

namespace spl {
namespace gen {

/// Equation 5, decimation in time:
/// F_rs = (F_r (x) I_s) T^{rs}_s (I_r (x) F_s) L^{rs}_r.
/// \p FR and \p FS are formulas computing F_r and F_s (pass makeDFT for the
/// unexpanded transform, or previously searched factorizations).
FormulaRef ruleCooleyTukeyDIT(std::int64_t R, std::int64_t S, FormulaRef FR,
                              FormulaRef FS);

/// Equation 7, decimation in frequency:
/// F_rs = L^{rs}_s (I_r (x) F_s) T^{rs}_s (F_r (x) I_s).
FormulaRef ruleCooleyTukeyDIF(std::int64_t R, std::int64_t S, FormulaRef FR,
                              FormulaRef FS);

/// Equation 8, the parallel form (every compute stage is I (x) A):
/// F_rs = L^{rs}_r (I_s (x) F_r) L^{rs}_s T^{rs}_s (I_r (x) F_s) L^{rs}_r.
FormulaRef ruleCooleyTukeyParallel(std::int64_t R, std::int64_t S,
                                   FormulaRef FR, FormulaRef FS);

/// Equation 9, the vector form (every compute stage is A (x) I):
/// F_rs = (F_r (x) I_s) T^{rs}_s L^{rs}_r (F_s (x) I_r).
FormulaRef ruleCooleyTukeyVector(std::int64_t R, std::int64_t S,
                                 FormulaRef FR, FormulaRef FS);

/// Section 5's vectorization wrapper: A -> A (x) I_m, applying \p F to
/// \p M interleaved vectors at once so the m columns ride one SIMD lane
/// group (the rewrite the vector codegen backend realizes at the
/// instruction level). M = 1 returns \p F unchanged.
FormulaRef ruleVectorize(FormulaRef F, std::int64_t M);

/// Equation 10, the general multi-factor factorization for
/// n = n_1 * ... * n_t (t >= 2). \p Factors supplies each n_i together with
/// a formula computing F_{n_i}:
///   F_n = prod_{i=1..t} (I_{n(i-)} (x) F_{n_i} (x) I_{n(i+)})
///                       (I_{n(i-)} (x) T^{n_i * n(i+)}_{n(i+)})
///         * prod_{i=t..1} (I_{n(i-)} (x) L^{n_i * n(i+)}_{n_i}),
/// where n(i-) = n_1...n_{i-1} and n(i+) = n_{i+1}...n_t. With t = 2 this
/// reduces to Equation 5; with all n_i = 2 it is the iterative radix-2 FFT.
FormulaRef ruleEq10(const std::vector<std::pair<std::int64_t, FormulaRef>>
                        &Factors);

/// The WHT factorization of Section 2.1 for 2^k = prod 2^{k_i}:
/// WHT_{2^k} = prod_i (I_{2^{k_1+..+k_{i-1}}} (x) WHT_{2^{k_i}} (x)
///                     I_{2^{k_{i+1}+..+k_t}}).
FormulaRef ruleWHT(const std::vector<std::pair<std::int64_t, FormulaRef>>
                       &Factors);

/// DCT-II base case: DCTII_2 = diag(1, 1/sqrt(2)) F_2.
FormulaRef ruleDCT2Base2();

/// Recursive DCT-II rule for even n:
/// DCTII_n = L^n_{n/2} (DCTII_{n/2} (+) DCTIV_{n/2}) L^n_2
///           (I_{n/2} (x) F_2) Q_n,
/// where Q_n pairs each x_j with its mirror x_{n-1-j}.
FormulaRef ruleDCT2EvenOdd(std::int64_t N, FormulaRef Dct2Half,
                           FormulaRef Dct4Half);

/// DCT-IV via DCT-II: DCTIV_n = S_n DCTII_n D_n, with
/// D_n = diag(1 / (2 cos((2j+1) pi / 4n))) and S_n the upper-bidiagonal
/// all-ones band matrix (the paper's "DCTIV_n = S . DCTII_n . D").
FormulaRef ruleDCT4ViaDCT2(std::int64_t N, FormulaRef Dct2N);

/// DCT-III base case: DCTIII_2 = F_2 diag(1, 1/sqrt(2)) (the transpose of
/// the DCT-II base case; DCT-III is the transpose of DCT-II throughout).
FormulaRef ruleDCT3Base2();

/// Recursive DCT-III rule for even n — the transpose of ruleDCT2EvenOdd
/// (F_2, DCT-IV and the direct sum are symmetric; L^n_2 and L^n_{n/2}
/// transpose into each other):
/// DCTIII_n = Q_n^T (I_{n/2} (x) F_2) L^n_{n/2}
///            (DCTIII_{n/2} (+) DCTIV_{n/2}) L^n_2.
FormulaRef ruleDCT3EvenOdd(std::int64_t N, FormulaRef Dct3Half,
                           FormulaRef Dct4Half);

/// The real-input DFT in halfcomplex layout, via the complex FFT:
/// RDFT_n = X_n F_n, where X_n extracts (Re Y_0, Re Y_1, ..., Re Y_{n/2},
/// Im Y_{n/2-1}, ..., Im Y_1) from the complex spectrum using conjugate
/// pairs: row k <= n/2 is (Y_k + Y_{n-k}) / 2 and row n-k is
/// (Y_{n-k} - Y_k) / (2i). The product is an entrywise-real matrix equal to
/// rdftMatrix(n) — no "input must be real" side condition is needed.
/// \p FftN computes F_n (pass makeDFT or a searched factorization).
FormulaRef ruleRDFTViaComplexFFT(std::int64_t N, FormulaRef FftN);

/// Fully recursive FFT formula of size n = 2^k built with rule \p Variant
/// at every level, splitting as r=2 ("right-most"), down to (F 2) leaves.
/// Variant: 0 DIT, 1 DIF, 2 parallel, 3 vector.
FormulaRef recursiveFFT(std::int64_t N, int Variant = 0);

/// Fully recursive DCT-II of size n = 2^k via the even-odd rule.
FormulaRef recursiveDCT2(std::int64_t N);

/// Fully recursive DCT-III of size n = 2^k via the transposed even-odd rule.
FormulaRef recursiveDCT3(std::int64_t N);

/// Fully recursive DCT-IV of size n = 2^k (via DCT-II).
FormulaRef recursiveDCT4(std::int64_t N);

/// RDFT of size n = 2^k: ruleRDFTViaComplexFFT over a recursive FFT.
FormulaRef recursiveRDFT(std::int64_t N);

} // namespace gen
} // namespace spl

#endif // SPL_GEN_RULES_H
