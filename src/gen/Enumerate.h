//===- gen/Enumerate.h - Formula space enumeration --------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates the algorithm space the SPIRAL formula generator explores:
/// all factor compositions of a size (Equation 10) and all binary
/// rule-application trees (recursive Cooley-Tukey with a variant choice per
/// node). The experiments draw their formula sets from here — e.g. the 45
/// SPL formulas for FFT N=32 of Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_GEN_ENUMERATE_H
#define SPL_GEN_ENUMERATE_H

#include "ir/Formula.h"

#include <cstdint>
#include <vector>

namespace spl {
namespace gen {

/// All ordered factorizations of \p N into factors >= 2, including the
/// trivial one-factor [N] (callers drop it for Equation 10, which needs
/// t >= 2). N=8 yields [8], [2,4], [4,2], [2,2,2].
std::vector<std::vector<std::int64_t>> factorCompositions(std::int64_t N);

/// Enumeration options.
struct EnumOptions {
  /// Stop after this many formulas (0: unlimited).
  size_t MaxCount = 0;
  /// Include flat Equation-10 factorizations (leaves recursively split
  /// right-most down to F_2).
  bool Eq10Compositions = true;
  /// Include binary rule-application trees.
  bool BinaryTrees = true;
  /// Rule variants allowed at tree nodes.
  bool UseDIT = true;
  bool UseDIF = true;
  bool UseParallel = false;
  bool UseVector = false;
  /// Cap on distinct sub-formulas kept per size while building trees
  /// (bounds the combinatorial explosion).
  size_t PerSizeCap = 64;
};

/// Enumerates distinct FFT formulas for F_N (N a power of two >= 2), fully
/// expanded to (F 2) leaves, deterministically ordered and deduplicated.
std::vector<FormulaRef> enumerateFFT(std::int64_t N,
                                     const EnumOptions &Opts = EnumOptions());

/// Enumerates WHT factorizations for N a power of two (the algorithm space
/// of Johnson & Pueschel's WHT package, Section 2.1's WHT rule): every
/// factor composition, leaves split recursively down to WHT_2. Capped by
/// \p MaxCount (0: unlimited).
std::vector<FormulaRef> enumerateWHT(std::int64_t N, size_t MaxCount = 0);

} // namespace gen
} // namespace spl

#endif // SPL_GEN_ENUMERATE_H
