//===- gen/Enumerate.cpp - Formula space enumeration -------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Enumerate.h"

#include "gen/Rules.h"
#include "ir/Builder.h"

#include <cassert>
#include <map>
#include <set>

using namespace spl;
using namespace spl::gen;

std::vector<std::vector<std::int64_t>>
spl::gen::factorCompositions(std::int64_t N) {
  assert(N >= 2 && "need a composite size");
  std::vector<std::vector<std::int64_t>> Out;
  Out.push_back({N});
  for (std::int64_t D = 2; D * 2 <= N; ++D) {
    if (N % D != 0)
      continue;
    for (auto Rest : factorCompositions(N / D)) {
      Rest.insert(Rest.begin(), D);
      Out.push_back(std::move(Rest));
    }
  }
  return Out;
}

namespace {

/// Builds binary rule-application trees for F_N with per-node variant
/// choice, memoized per size and capped.
class TreeEnum {
public:
  explicit TreeEnum(const EnumOptions &Opts) : Opts(Opts) {}

  const std::vector<FormulaRef> &treesOf(std::int64_t N) {
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    std::vector<FormulaRef> Out;
    if (N == 2) {
      Out.push_back(makeDFT(2));
    } else {
      std::vector<int> Variants;
      if (Opts.UseDIT)
        Variants.push_back(0);
      if (Opts.UseDIF)
        Variants.push_back(1);
      if (Opts.UseParallel)
        Variants.push_back(2);
      if (Opts.UseVector)
        Variants.push_back(3);
      for (std::int64_t R = 2; R * 2 <= N && Out.size() < Opts.PerSizeCap;
           R *= 2) {
        std::int64_t S = N / R;
        for (const FormulaRef &FR : treesOf(R)) {
          for (const FormulaRef &FS : treesOf(S)) {
            for (int V : Variants) {
              if (Out.size() >= Opts.PerSizeCap)
                break;
              switch (V) {
              case 1:
                Out.push_back(ruleCooleyTukeyDIF(R, S, FR, FS));
                break;
              case 2:
                Out.push_back(ruleCooleyTukeyParallel(R, S, FR, FS));
                break;
              case 3:
                Out.push_back(ruleCooleyTukeyVector(R, S, FR, FS));
                break;
              default:
                Out.push_back(ruleCooleyTukeyDIT(R, S, FR, FS));
                break;
              }
            }
          }
        }
      }
    }
    return Memo.emplace(N, std::move(Out)).first->second;
  }

private:
  const EnumOptions &Opts;
  std::map<std::int64_t, std::vector<FormulaRef>> Memo;
};

} // namespace

std::vector<FormulaRef> spl::gen::enumerateFFT(std::int64_t N,
                                               const EnumOptions &Opts) {
  assert(N >= 2 && (N & (N - 1)) == 0 && "size must be a power of two");
  std::vector<FormulaRef> Out;
  std::set<std::string> Seen;
  auto Push = [&](FormulaRef F) {
    if (Opts.MaxCount && Out.size() >= Opts.MaxCount)
      return;
    std::string Key = F->print();
    if (Seen.insert(std::move(Key)).second)
      Out.push_back(std::move(F));
  };

  if (Opts.Eq10Compositions && N > 2) {
    for (const auto &Comp : factorCompositions(N)) {
      if (Comp.size() < 2)
        continue;
      std::vector<std::pair<std::int64_t, FormulaRef>> Factors;
      for (std::int64_t Ni : Comp)
        Factors.push_back({Ni, Ni == 2 ? makeDFT(2) : recursiveFFT(Ni)});
      Push(ruleEq10(Factors));
    }
  }

  if (Opts.BinaryTrees) {
    TreeEnum Trees(Opts);
    for (const FormulaRef &F : Trees.treesOf(N))
      Push(F);
  }

  return Out;
}

namespace {

/// WHT_N fully split down to WHT_2 leaves with a fixed right-most strategy
/// (used for the leaves of enumerated compositions).
FormulaRef whtRightmost(std::int64_t N) {
  if (N <= 2)
    return makeWHT(2);
  std::vector<std::pair<std::int64_t, FormulaRef>> Factors = {
      {2, makeWHT(2)}, {N / 2, whtRightmost(N / 2)}};
  return ruleWHT(Factors);
}

} // namespace

std::vector<FormulaRef> spl::gen::enumerateWHT(std::int64_t N,
                                               size_t MaxCount) {
  assert(N >= 2 && (N & (N - 1)) == 0 && "WHT size must be a power of two");
  std::vector<FormulaRef> Out;
  std::set<std::string> Seen;
  if (N == 2)
    return {makeWHT(2)};
  for (const auto &Comp : factorCompositions(N)) {
    if (Comp.size() < 2)
      continue;
    if (MaxCount && Out.size() >= MaxCount)
      break;
    std::vector<std::pair<std::int64_t, FormulaRef>> Factors;
    for (std::int64_t Ni : Comp)
      Factors.push_back({Ni, whtRightmost(Ni)});
    FormulaRef F = ruleWHT(Factors);
    if (Seen.insert(F->print()).second)
      Out.push_back(std::move(F));
  }
  return Out;
}
