//===- gen/Rules.cpp - Breakdown rules -----------------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Rules.h"

#include "ir/Builder.h"

#include <cassert>
#include <cmath>

using namespace spl;
using namespace spl::gen;

namespace {

constexpr double Pi = 3.14159265358979323846264338327950288;

/// I_a (x) F (x) I_b with the identity factors omitted when trivial.
FormulaRef tensor3(std::int64_t A, FormulaRef F, std::int64_t B) {
  FormulaRef Out = std::move(F);
  if (B > 1)
    Out = makeTensor(Out, makeIdentity(B));
  if (A > 1)
    Out = makeTensor(makeIdentity(A), Out);
  return Out;
}

} // namespace

FormulaRef gen::ruleCooleyTukeyDIT(std::int64_t R, std::int64_t S,
                                   FormulaRef FR, FormulaRef FS) {
  assert(R > 1 && S > 1 && "factors must be nontrivial");
  std::int64_t N = R * S;
  // Associate the four factors as ((F_r (x) I_s) T) ((I_r (x) F_s) L): both
  // pairs then match the fused built-in templates (the twiddle folds into
  // the gather of the left stage, the stride permutation into the input
  // addressing of the right stage), halving the number of passes over the
  // data. An n-ary (right-associated) spelling denotes the same matrix and
  // still compiles, just through the generic compose template.
  return makeCompose(
      makeCompose(makeTensor(std::move(FR), makeIdentity(S)),
                  makeTwiddle(N, S)),
      makeCompose(makeTensor(makeIdentity(R), std::move(FS)),
                  makeStride(N, R)));
}

FormulaRef gen::ruleCooleyTukeyDIF(std::int64_t R, std::int64_t S,
                                   FormulaRef FR, FormulaRef FS) {
  assert(R > 1 && S > 1 && "factors must be nontrivial");
  std::int64_t N = R * S;
  return makeCompose({makeStride(N, S),
                      makeTensor(makeIdentity(R), std::move(FS)),
                      makeTwiddle(N, S),
                      makeTensor(std::move(FR), makeIdentity(S))});
}

FormulaRef gen::ruleCooleyTukeyParallel(std::int64_t R, std::int64_t S,
                                        FormulaRef FR, FormulaRef FS) {
  assert(R > 1 && S > 1 && "factors must be nontrivial");
  std::int64_t N = R * S;
  return makeCompose({makeStride(N, R),
                      makeTensor(makeIdentity(S), std::move(FR)),
                      makeStride(N, S), makeTwiddle(N, S),
                      makeTensor(makeIdentity(R), std::move(FS)),
                      makeStride(N, R)});
}

FormulaRef gen::ruleCooleyTukeyVector(std::int64_t R, std::int64_t S,
                                      FormulaRef FR, FormulaRef FS) {
  assert(R > 1 && S > 1 && "factors must be nontrivial");
  std::int64_t N = R * S;
  return makeCompose({makeTensor(std::move(FR), makeIdentity(S)),
                      makeTwiddle(N, S), makeStride(N, R),
                      makeTensor(std::move(FS), makeIdentity(R))});
}

FormulaRef gen::ruleVectorize(FormulaRef F, std::int64_t M) {
  assert(M >= 1 && "lane count must be positive");
  if (M == 1)
    return F;
  return makeTensor(std::move(F), makeIdentity(M));
}

FormulaRef
gen::ruleEq10(const std::vector<std::pair<std::int64_t, FormulaRef>>
                  &Factors) {
  assert(Factors.size() >= 2 && "Equation 10 needs at least two factors");
  std::int64_t N = 1;
  for (const auto &[Ni, F] : Factors) {
    (void)F;
    assert(Ni > 1 && "factors must be nontrivial");
    N *= Ni;
  }

  std::vector<FormulaRef> Stages;
  // Compute stages, i = 1..t.
  std::int64_t Before = 1;
  for (size_t I = 0; I != Factors.size(); ++I) {
    std::int64_t Ni = Factors[I].first;
    std::int64_t After = N / (Before * Ni);
    Stages.push_back(tensor3(Before, Factors[I].second, After));
    if (After > 1) {
      FormulaRef Tw = makeTwiddle(Ni * After, After);
      Stages.push_back(Before > 1 ? makeTensor(makeIdentity(Before), Tw)
                                  : Tw);
    }
    Before *= Ni;
  }
  // Permutation stages, i = t..1. L^{Ni*After}_{Ni} with After == 1 is the
  // identity and is skipped.
  for (size_t I = Factors.size(); I-- > 0;) {
    std::int64_t Ni = Factors[I].first;
    std::int64_t BeforeI = 1;
    for (size_t J = 0; J != I; ++J)
      BeforeI *= Factors[J].first;
    std::int64_t After = N / (BeforeI * Ni);
    if (After <= 1)
      continue;
    FormulaRef L = makeStride(Ni * After, Ni);
    Stages.push_back(BeforeI > 1 ? makeTensor(makeIdentity(BeforeI), L) : L);
  }
  return makeCompose(std::move(Stages));
}

FormulaRef
gen::ruleWHT(const std::vector<std::pair<std::int64_t, FormulaRef>>
                 &Factors) {
  assert(!Factors.empty() && "WHT rule needs at least one factor");
  std::int64_t N = 1;
  for (const auto &[Ni, F] : Factors) {
    (void)F;
    N *= Ni;
  }
  std::vector<FormulaRef> Stages;
  std::int64_t Before = 1;
  for (const auto &[Ni, F] : Factors) {
    std::int64_t After = N / (Before * Ni);
    Stages.push_back(tensor3(Before, F, After));
    Before *= Ni;
  }
  if (Stages.size() == 1)
    return Stages[0];
  return makeCompose(std::move(Stages));
}

FormulaRef gen::ruleDCT2Base2() {
  return makeCompose(makeDiagonal({Cplx(1, 0), Cplx(1 / std::sqrt(2.0), 0)}),
                     makeDFT(2));
}

FormulaRef gen::ruleDCT2EvenOdd(std::int64_t N, FormulaRef Dct2Half,
                                FormulaRef Dct4Half) {
  assert(N >= 4 && N % 2 == 0 && "even-odd rule needs even n >= 4");
  std::int64_t H = N / 2;
  // Q_n: z_{2j} = x_j, z_{2j+1} = x_{n-1-j} (1-based targets).
  std::vector<std::int64_t> Q(N);
  for (std::int64_t J = 0; J != H; ++J) {
    Q[2 * J] = J + 1;
    Q[2 * J + 1] = N - J;
  }
  return makeCompose({makeStride(N, H),
                      makeDirectSum(std::move(Dct2Half), std::move(Dct4Half)),
                      makeStride(N, 2),
                      makeTensor(makeIdentity(H), makeDFT(2)),
                      makePermutation(std::move(Q))});
}

FormulaRef gen::ruleDCT4ViaDCT2(std::int64_t N, FormulaRef Dct2N) {
  assert(N >= 1 && "bad DCT-IV size");
  // D_n = diag(1 / (2 cos((2j+1) pi / 4n))).
  std::vector<Cplx> D(N);
  for (std::int64_t J = 0; J != N; ++J)
    D[J] = Cplx(1.0 / (2.0 * std::cos((2.0 * J + 1) * Pi / (4.0 * N))), 0);
  // S_n: ones on the diagonal and superdiagonal.
  std::vector<std::vector<Cplx>> S(N, std::vector<Cplx>(N, Cplx(0, 0)));
  for (std::int64_t K = 0; K != N; ++K) {
    S[K][K] = Cplx(1, 0);
    if (K + 1 < N)
      S[K][K + 1] = Cplx(1, 0);
  }
  return makeCompose(
      {makeGenMatrix(std::move(S)), std::move(Dct2N), makeDiagonal(std::move(D))});
}

FormulaRef gen::ruleDCT3Base2() {
  return makeCompose(makeDFT(2),
                     makeDiagonal({Cplx(1, 0), Cplx(1 / std::sqrt(2.0), 0)}));
}

FormulaRef gen::ruleDCT3EvenOdd(std::int64_t N, FormulaRef Dct3Half,
                                FormulaRef Dct4Half) {
  assert(N >= 4 && N % 2 == 0 && "even-odd rule needs even n >= 4");
  std::int64_t H = N / 2;
  // Q_n^T: the inverse of the DCT-II mirror pairing. Row j reads z_{2j}
  // and row n-1-j reads z_{2j+1} (1-based targets).
  std::vector<std::int64_t> Qt(N);
  for (std::int64_t J = 0; J != H; ++J) {
    Qt[J] = 2 * J + 1;
    Qt[N - 1 - J] = 2 * J + 2;
  }
  return makeCompose({makePermutation(std::move(Qt)),
                      makeTensor(makeIdentity(H), makeDFT(2)),
                      makeStride(N, H),
                      makeDirectSum(std::move(Dct3Half), std::move(Dct4Half)),
                      makeStride(N, 2)});
}

FormulaRef gen::ruleRDFTViaComplexFFT(std::int64_t N, FormulaRef FftN) {
  assert(N >= 2 && N % 2 == 0 && "halfcomplex extraction needs even n");
  // X_n: row k <= n/2 takes (Y_k + Y_{n-k}) / 2 = Re Y_k (rows 0 and n/2
  // collapse to a single 1), row n-k takes (Y_k - Y_{n-k}) / (2i) = Im Y_k
  // (Y_{n-k} = conj Y_k on real input; as a matrix identity the pairing
  // cancels the imaginary parts without that assumption). Every row
  // combines a conjugate pair, so X_n F_n is entrywise real and equals
  // rdftMatrix(n).
  std::vector<std::vector<Cplx>> X(N, std::vector<Cplx>(N, Cplx(0, 0)));
  X[0][0] = Cplx(1, 0);
  X[N / 2][N / 2] = Cplx(1, 0);
  for (std::int64_t K = 1; K != N / 2; ++K) {
    X[K][K] = Cplx(0.5, 0);
    X[K][N - K] = Cplx(0.5, 0);
    X[N - K][K] = Cplx(0, -0.5);
    X[N - K][N - K] = Cplx(0, 0.5);
  }
  return makeCompose(makeGenMatrix(std::move(X)), std::move(FftN));
}

FormulaRef gen::recursiveFFT(std::int64_t N, int Variant) {
  assert(N >= 2 && (N & (N - 1)) == 0 && "size must be a power of two");
  if (N == 2)
    return makeDFT(2);
  FormulaRef FS = recursiveFFT(N / 2, Variant);
  FormulaRef FR = makeDFT(2);
  switch (Variant) {
  case 1:
    return ruleCooleyTukeyDIF(2, N / 2, FR, FS);
  case 2:
    return ruleCooleyTukeyParallel(2, N / 2, FR, FS);
  case 3:
    return ruleCooleyTukeyVector(2, N / 2, FR, FS);
  default:
    return ruleCooleyTukeyDIT(2, N / 2, FR, FS);
  }
}

FormulaRef gen::recursiveDCT2(std::int64_t N) {
  assert(N >= 2 && (N & (N - 1)) == 0 && "size must be a power of two");
  if (N == 2)
    return ruleDCT2Base2();
  return ruleDCT2EvenOdd(N, recursiveDCT2(N / 2), recursiveDCT4(N / 2));
}

FormulaRef gen::recursiveDCT3(std::int64_t N) {
  assert(N >= 2 && (N & (N - 1)) == 0 && "size must be a power of two");
  if (N == 2)
    return ruleDCT3Base2();
  return ruleDCT3EvenOdd(N, recursiveDCT3(N / 2), recursiveDCT4(N / 2));
}

FormulaRef gen::recursiveDCT4(std::int64_t N) {
  assert(N >= 1 && (N & (N - 1)) == 0 && "size must be a power of two");
  if (N == 1) {
    // DCTIV_1 = [cos(pi/4)].
    return makeDiagonal({Cplx(std::cos(Pi / 4), 0)});
  }
  return ruleDCT4ViaDCT2(N, recursiveDCT2(N));
}

FormulaRef gen::recursiveRDFT(std::int64_t N) {
  assert(N >= 2 && (N & (N - 1)) == 0 && "size must be a power of two");
  return ruleRDFTViaComplexFFT(N, recursiveFFT(N));
}
