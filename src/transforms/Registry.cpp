//===- transforms/Registry.cpp - Transform catalog ----------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Registry.h"

#include "gen/Rules.h"
#include "ir/Transforms.h"

#include <cassert>

using namespace spl;
using namespace spl::transforms;

namespace {

bool isPow2(std::int64_t N) { return N >= 2 && (N & (N - 1)) == 0; }

bool fftSize(std::int64_t N, std::int64_t MaxLeaf) {
  // Non-powers-of-two still plan: they become one dense leaf, so they must
  // fit under the search-leaf bound.
  return N >= 2 && (isPow2(N) || N <= MaxLeaf);
}

bool pow2Size(std::int64_t N, std::int64_t) { return isPow2(N); }

const std::vector<TransformInfo> &table() {
  static const std::vector<TransformInfo> T = {
      {"fft", "complex", "complex", "complex", Family::SearchedFFT,
       Layout::Interleaved, /*SupportsND=*/true,
       "a power of two (or any size within the search leaf)", fftSize,
       dftMatrix, nullptr},
      {"wht", "real", "real", "real, complex", Family::EnumeratedWHT,
       Layout::Real, /*SupportsND=*/true, "a power of two", pow2Size,
       whtMatrix, nullptr},
      {"rdft", "real", "complex", "real", Family::SearchedFFT,
       Layout::HalfComplex, /*SupportsND=*/false, "a power of two", pow2Size,
       rdftMatrix, gen::recursiveRDFT},
      {"dct2", "real", "real", "real", Family::Recursive, Layout::Real,
       /*SupportsND=*/true, "a power of two", pow2Size, dct2Matrix,
       gen::recursiveDCT2},
      {"dct3", "real", "real", "real", Family::Recursive, Layout::Real,
       /*SupportsND=*/true, "a power of two", pow2Size, dct3Matrix,
       gen::recursiveDCT3},
      {"dct4", "real", "real", "real", Family::Recursive, Layout::Real,
       /*SupportsND=*/true, "a power of two", pow2Size, dct4Matrix,
       gen::recursiveDCT4},
  };
  return T;
}

} // namespace

const std::vector<TransformInfo> &transforms::all() { return table(); }

const TransformInfo *transforms::lookup(const std::string &Name) {
  for (const TransformInfo &TI : table())
    if (Name == TI.Name)
      return &TI;
  return nullptr;
}

std::string transforms::supportedNames() {
  std::string Out;
  for (const TransformInfo &TI : table()) {
    if (!Out.empty())
      Out += ", ";
    Out += TI.Name;
  }
  return Out;
}

std::string transforms::supportedDatatypes() { return "complex, real"; }

bool transforms::allowsDatatype(const TransformInfo &TI,
                                const std::string &Datatype) {
  std::string List = TI.AllowedDatatypes;
  size_t Pos = 0;
  while (Pos < List.size()) {
    size_t End = List.find(',', Pos);
    if (End == std::string::npos)
      End = List.size();
    size_t Lo = Pos, Hi = End;
    while (Lo < Hi && List[Lo] == ' ')
      ++Lo;
    while (Hi > Lo && List[Hi - 1] == ' ')
      --Hi;
    if (List.compare(Lo, Hi - Lo, Datatype) == 0)
      return true;
    Pos = End + 1;
  }
  return false;
}

Matrix transforms::oracleMatrix(const TransformInfo &TI,
                                const std::vector<std::int64_t> &Shape) {
  assert(!Shape.empty() && "oracle needs at least one dimension");
  Matrix M = TI.Oracle(Shape.front());
  for (size_t I = 1; I != Shape.size(); ++I)
    M = M.kron(TI.Oracle(Shape[I]));
  return M;
}
