//===- transforms/Registry.h - Transform catalog ----------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transform registry: one catalog entry per servable transform kind
/// (fft, wht, rdft, dct2, dct3, dct4), each registering its dense-matrix
/// oracle, its generator-rule entry point, its natural and kernel
/// datatypes, its I/O layout, and its size rule. runtime::Planner, the
/// tools, and the service layer dispatch through this table instead of
/// hard-coding "fft" | "wht", so adding a transform here extends wisdom
/// keys, kernel-cache keys, the degradation chain, validateSpec
/// diagnostics, and the CLI flags in one place (see docs/WORKLOADS.md).
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TRANSFORMS_REGISTRY_H
#define SPL_TRANSFORMS_REGISTRY_H

#include "ir/Formula.h"
#include "ir/Matrix.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spl {
namespace transforms {

/// How the planner obtains a formula for a transform of this kind.
enum class Family {
  SearchedFFT,   ///< DP-searched Cooley-Tukey factorization.
  EnumeratedWHT, ///< Flat enumeration of WHT split trees.
  Recursive,     ///< Deterministic recursive rule (Rule builds the formula).
};

/// User-facing layout of one logical I/O vector of transform size N.
enum class Layout {
  Interleaved, ///< N complex points as 2N interleaved (re,im) doubles.
  Real,        ///< N real doubles in, N real doubles out.
  HalfComplex, ///< N real doubles in, N halfcomplex doubles out (FFTW
               ///< "r2hc": r_0, r_1, ..., r_{n/2}, i_{n/2-1}, ..., i_1).
};

/// One catalog entry. All strings are static; the table is immutable after
/// process start, so lookups need no locking.
struct TransformInfo {
  const char *Name;            ///< Spec token ("fft", "dct2", ...).
  const char *NaturalDatatype; ///< Datatype an empty spec field resolves to.
  const char *KernelDatatype;  ///< Datatype the compiled kernel runs in
                               ///< (complex for rdft; else == natural).
  const char *AllowedDatatypes; ///< Comma-joined accepted spec datatypes
                                ///< (wht kernels compile either way).
  Family PlanFamily;           ///< Planning strategy.
  Layout IOLayout;             ///< User-facing vector layout.
  bool SupportsND;             ///< Row-column N-D shapes allowed.
  const char *SizeRule;        ///< Human-readable size constraint.

  /// Valid size for one dimension. \p MaxLeaf is the search-leaf bound
  /// (only the fft consults it: non-powers-of-two plan as one dense leaf).
  bool (*ValidSize)(std::int64_t N, std::int64_t MaxLeaf);

  /// Dense user-facing oracle matrix for one dimension. Entrywise real for
  /// Real/HalfComplex layouts.
  Matrix (*Oracle)(std::int64_t N);

  /// Formula entry point for Family::Recursive (also provided for rdft so
  /// the rule is testable/emittable); null for searched/enumerated kinds
  /// with no closed-form rule (none currently).
  FormulaRef (*Rule)(std::int64_t N);
};

/// The full catalog in registration order.
const std::vector<TransformInfo> &all();

/// Entry for \p Name, or null when no such transform exists.
const TransformInfo *lookup(const std::string &Name);

/// Comma-joined catalog names for diagnostics: "fft, wht, rdft, ...".
std::string supportedNames();

/// Comma-joined supported datatypes: "complex, real".
std::string supportedDatatypes();

/// True when \p TI accepts \p Datatype (a member of AllowedDatatypes).
bool allowsDatatype(const TransformInfo &TI, const std::string &Datatype);

/// Dense oracle for a (possibly multi-dimensional) shape: the Kronecker
/// product of the per-dimension oracles, i.e. the row-major row-column
/// transform. An empty shape is invalid; a one-element shape is the 1-D
/// oracle.
Matrix oracleMatrix(const TransformInfo &TI,
                    const std::vector<std::int64_t> &Shape);

} // namespace transforms
} // namespace spl

#endif // SPL_TRANSFORMS_REGISTRY_H
