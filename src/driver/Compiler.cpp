//===- driver/Compiler.cpp - The SPL compiler driver -------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "codegen/CEmitter.h"
#include "codegen/FortranEmitter.h"
#include "lower/Expander.h"
#include "telemetry/Trace.h"

using namespace spl;
using namespace spl::driver;

std::optional<CompiledUnit>
Compiler::compileFormula(const FormulaRef &F, const DirectiveState &Dirs,
                         const CompilerOptions &Opts) {
  if (!F) {
    // A failed builder call upstream already produced the real diagnostic.
    Diags.error(SourceLoc(), "cannot compile a null formula");
    return std::nullopt;
  }
  CompiledUnit Unit;
  Unit.Formula = F;
  Unit.SubName = Dirs.SubName.empty() ? "sub" : Dirs.SubName;
  Unit.Language =
      Opts.LanguageOverride.empty() ? Dirs.Language : Opts.LanguageOverride;

  lower::Expander Exp(Registry, Diags, Intrinsics);
  lower::ExpandOptions EOpts;
  EOpts.SubName = Unit.SubName;
  EOpts.Datatype = Dirs.Datatype == "real" ? icode::DataType::Real
                                           : icode::DataType::Complex;
  EOpts.UnrollThreshold = Opts.UnrollThreshold;
  std::optional<icode::Program> Expanded;
  {
    static telemetry::Histogram &ExpandNs =
        telemetry::histogram("compile.expand_ns");
    telemetry::StageTimer T("expand", &ExpandNs);
    Expanded = Exp.expand(F, EOpts);
  }
  if (!Expanded)
    return std::nullopt;
  Unit.Expanded = *Expanded;

  opt::PipelineOptions POpts;
  POpts.Level = Opts.Level;
  POpts.PartialUnrollFactor = Opts.PartialUnrollFactor;
  POpts.SparcPeephole = Opts.SparcPeephole;
  POpts.VN = Opts.VN;
  POpts.RunDCE = Opts.RunDCE;
  // C has no complex type; Fortran keeps complex only under
  // "#codetype complex".
  bool WantComplexCode = Unit.Language == "fortran" &&
                         Dirs.CodeType == "complex";
  POpts.LowerToReal = EOpts.Datatype == icode::DataType::Complex &&
                      !WantComplexCode;
  {
    static telemetry::Histogram &OptNs =
        telemetry::histogram("compile.optimize_ns");
    telemetry::StageTimer T("optimize", &OptNs);
    Unit.Final = opt::runPipeline(*Expanded, POpts, Intrinsics);
  }

  // #datatype real promises real arithmetic; intrinsics evaluated during
  // the pipeline (e.g. twiddle tables) may disprove it only now.
  if (EOpts.Datatype == icode::DataType::Real) {
    bool HasComplex = false;
    for (const auto &T : Unit.Final.Tables)
      for (Cplx V : T)
        HasComplex |= V.imag() != 0;
    for (const auto &I : Unit.Final.Body) {
      if (I.A.is(icode::OpndKind::FltConst))
        HasComplex |= I.A.FConst.imag() != 0;
      if (I.B.is(icode::OpndKind::FltConst))
        HasComplex |= I.B.FConst.imag() != 0;
    }
    if (HasComplex) {
      Diags.error(F->loc(),
                  "formula " + F->print() +
                      " produces complex constants under #datatype real");
      return std::nullopt;
    }
  }

  if (Opts.EmitCode) {
    static telemetry::Histogram &CodegenNs =
        telemetry::histogram("compile.codegen_ns");
    telemetry::StageTimer T("codegen", &CodegenNs);
    if (Unit.Language == "fortran") {
      codegen::FortranEmitOptions FOpts;
      FOpts.AutomaticTemps = Opts.SparcPeephole;
      Unit.Code = codegen::emitFortran(Unit.Final, FOpts);
    } else {
      codegen::CEmitOptions COpts;
      COpts.HeaderComment = "formula: " + F->print();
      Unit.Code = codegen::emitC(Unit.Final, COpts);
    }
  }
  return Unit;
}

std::optional<std::vector<CompiledUnit>>
Compiler::compileSource(const std::string &Source,
                        const CompilerOptions &Opts) {
  std::optional<SplProgram> Prog;
  {
    static telemetry::Histogram &ParseNs =
        telemetry::histogram("compile.parse_ns");
    telemetry::StageTimer T("parse", &ParseNs);
    Parser P(Source, Diags);
    Prog = P.parseProgram();
  }
  if (!Prog)
    return std::nullopt;
  Registry.addAll(std::move(Prog->Templates));

  std::vector<CompiledUnit> Units;
  for (size_t I = 0; I != Prog->Items.size(); ++I) {
    DirectiveState Dirs = Prog->Items[I].Dirs;
    if (Dirs.SubName.empty())
      Dirs.SubName = "sub" + std::to_string(I);
    auto Unit = compileFormula(Prog->Items[I].Formula, Dirs, Opts);
    if (!Unit)
      return std::nullopt;
    Units.push_back(std::move(*Unit));
  }
  return Units;
}
