//===- driver/Compiler.h - The SPL compiler driver --------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level public API: ties the frontend, template expansion, the
/// restructuring/optimization pipeline and the code generators into one
/// compiler. This is what the splc tool, the examples, the search engine
/// and the benchmark harnesses drive.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_DRIVER_COMPILER_H
#define SPL_DRIVER_COMPILER_H

#include "frontend/Parser.h"
#include "icode/ICode.h"
#include "icode/Intrinsics.h"
#include "opt/Pipeline.h"
#include "support/Diagnostics.h"
#include "templates/Registry.h"

#include <optional>
#include <string>
#include <vector>

namespace spl {
namespace driver {

/// Global compiler options (the command-line knobs of the paper's splc).
struct CompilerOptions {
  /// The -B option: fully unroll loops in sub-formulas whose input is at
  /// most this long (0 disables threshold-driven unrolling; per-formula
  /// #unroll hints still apply).
  std::int64_t UnrollThreshold = 0;

  /// Partially unroll the surviving loops by this factor (0/1: off).
  int PartialUnrollFactor = 0;

  /// Optimization level (Figure 2's three versions).
  opt::OptLevel Level = opt::OptLevel::Default;

  /// Apply the SPARC-style peepholes.
  bool SparcPeephole = false;

  /// Override the program's #language directive ("" keeps it).
  std::string LanguageOverride;

  /// Pass-level toggles forwarded to the pipeline (ablations).
  opt::VNOptions VN;
  bool RunDCE = true;

  /// Render target code text into CompiledUnit::Code. Turn off when only
  /// the i-code is wanted (e.g. cost evaluation of many candidates) —
  /// emitting megabytes of twiddle-table text is wasted work there.
  bool EmitCode = true;

  // --- Search-engine knobs (consumed by search::DPSearch via the tools;
  // --- the pure compile path ignores them). ---

  /// Consult / update the persistent plan cache ("wisdom") during searches
  /// (splc --no-wisdom clears it).
  bool UseWisdom = true;

  /// Wisdom file path; empty means search::PlanCache::defaultPath()
  /// ($SPL_WISDOM or ~/.spl_wisdom).
  std::string WisdomPath;

  /// Worker threads for candidate evaluation in searches (splc
  /// --search-threads; 1: serial).
  int SearchThreads = 1;
};

/// Everything produced for one top-level formula.
struct CompiledUnit {
  std::string SubName;
  FormulaRef Formula;
  icode::Program Expanded; ///< Raw i-code straight out of the templates.
  icode::Program Final;    ///< After the full pipeline; what Code renders.
  std::string Code;        ///< Target C or Fortran text.
  std::string Language;    ///< "c" or "fortran".
};

/// The compiler.
class Compiler {
public:
  explicit Compiler(Diagnostics &Diags)
      : Diags(Diags), Registry(tpl::TemplateRegistry::withBuiltins()) {}

  /// The template registry; callers may append user templates.
  tpl::TemplateRegistry &templates() { return Registry; }

  /// The intrinsic registry used at expansion/evaluation time.
  icode::IntrinsicRegistry &intrinsics() { return Intrinsics; }

  /// Compiles a whole SPL source program: every top-level formula becomes a
  /// CompiledUnit; templates in the program are registered first.
  std::optional<std::vector<CompiledUnit>>
  compileSource(const std::string &Source, const CompilerOptions &Opts);

  /// Compiles a single formula under explicit directives.
  std::optional<CompiledUnit> compileFormula(const FormulaRef &F,
                                             const DirectiveState &Dirs,
                                             const CompilerOptions &Opts);

private:
  Diagnostics &Diags;
  tpl::TemplateRegistry Registry;
  icode::IntrinsicRegistry Intrinsics;
};

} // namespace driver
} // namespace spl

#endif // SPL_DRIVER_COMPILER_H
