//===- frontend/Parser.cpp - SPL parser ------------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/ScalarExpr.h"
#include "ir/Builder.h"
#include "support/StrUtil.h"

#include <cctype>
#include <sstream>

using namespace spl;

namespace {

bool isPatternVarName(const std::string &S) {
  return S.size() >= 2 && S.back() == '_';
}

bool isIntVarName(const std::string &S) {
  return isPatternVarName(S) &&
         std::islower(static_cast<unsigned char>(S.front()));
}

bool isFormulaVarName(const std::string &S) {
  return isPatternVarName(S) &&
         std::isupper(static_cast<unsigned char>(S.front()));
}

/// Splits a directive line into whitespace-separated words.
std::vector<std::string> splitWords(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream SS(S);
  std::string W;
  while (SS >> W)
    Out.push_back(W);
  return Out;
}

} // namespace

Parser::Parser(const std::string &Source, Diagnostics &Diags)
    : Diags(Diags), Toks(lex(Source, Diags)) {}

//===----------------------------------------------------------------------===//
// Token helpers
//===----------------------------------------------------------------------===//

const Token &Parser::peek(size_t Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Toks.size())
    I = Toks.size() - 1; // Eof sentinel.
  return Toks[I];
}

Token Parser::take() {
  Token T = cur();
  if (Pos + 1 < Toks.size())
    ++Pos;
  return T;
}

bool Parser::consumeIf(Tok K) {
  if (!cur().is(K))
    return false;
  take();
  return true;
}

bool Parser::expect(Tok K, const char *What) {
  if (consumeIf(K))
    return true;
  Diags.error(cur().Loc, std::string("expected ") + What + ", found '" +
                             (cur().is(Tok::Eof) ? "<eof>" : cur().Text) +
                             "'");
  return false;
}

void Parser::error(const char *Message) { Diags.error(cur().Loc, Message); }

void Parser::skipToCloseParen() {
  int Depth = 0;
  while (!cur().is(Tok::Eof)) {
    if (cur().is(Tok::LParen))
      ++Depth;
    if (cur().is(Tok::RParen)) {
      if (Depth == 0) {
        take();
        return;
      }
      --Depth;
    }
    take();
  }
}

//===----------------------------------------------------------------------===//
// Program structure
//===----------------------------------------------------------------------===//

void Parser::handleDirective(const Token &T) {
  std::vector<std::string> Words = splitWords(T.Text);
  if (Words.empty()) {
    Diags.warning(T.Loc, "empty compiler directive");
    return;
  }
  std::string Key = toLower(Words[0]);
  std::string Arg = Words.size() > 1 ? toLower(Words[1]) : "";
  if (Key == "subname") {
    if (Words.size() != 2) {
      Diags.error(T.Loc, "#subname takes exactly one argument");
      return;
    }
    Dirs.SubName = Words[1];
    return;
  }
  if (Key == "datatype") {
    if (Arg != "real" && Arg != "complex") {
      Diags.error(T.Loc, "#datatype must be 'real' or 'complex'");
      return;
    }
    Dirs.Datatype = Arg;
    return;
  }
  if (Key == "codetype") {
    if (Arg != "real" && Arg != "complex") {
      Diags.error(T.Loc, "#codetype must be 'real' or 'complex'");
      return;
    }
    Dirs.CodeType = Arg;
    return;
  }
  if (Key == "language") {
    if (Arg != "c" && Arg != "fortran") {
      Diags.error(T.Loc, "#language must be 'c' or 'fortran'");
      return;
    }
    Dirs.Language = Arg;
    return;
  }
  if (Key == "unroll") {
    if (Arg == "on")
      Dirs.Unroll = true;
    else if (Arg == "off")
      Dirs.Unroll = false;
    else
      Diags.error(T.Loc, "#unroll must be 'on' or 'off'");
    return;
  }
  Diags.warning(T.Loc, "unknown compiler directive '" + Words[0] + "'");
}

std::optional<SplProgram> Parser::parseProgram() {
  SplProgram Prog;
  while (!cur().is(Tok::Eof)) {
    if (cur().is(Tok::Directive)) {
      handleDirective(take());
      continue;
    }
    if (!cur().is(Tok::LParen)) {
      error("expected '(' or a compiler directive at top level");
      take();
      continue;
    }

    const Token &Head = peek(1);
    if (Head.isSymbol("define")) {
      SourceLoc Loc = cur().Loc;
      take(); // (
      take(); // define
      if (!cur().is(Tok::Symbol)) {
        error("expected a name after 'define'");
        skipToCloseParen();
        continue;
      }
      std::string Name = take().Text;
      FormulaRef F = parseFormula(/*PatternMode=*/false);
      if (!F || !expect(Tok::RParen, "')' closing define")) {
        if (!F)
          skipToCloseParen();
        continue;
      }
      if (Dirs.Unroll)
        F = withUnrollHint(F, *Dirs.Unroll);
      if (Prog.Defines.count(Name))
        Diags.warning(Loc, "redefinition of '" + Name + "'");
      Prog.Defines[Name] = F;
      Defines[Name] = F;
      continue;
    }

    if (Head.isSymbol("template")) {
      SourceLoc Loc = cur().Loc;
      take(); // (
      take(); // template
      auto Def = parseTemplate(Loc);
      if (!Def) {
        skipToCloseParen();
        continue;
      }
      Prog.Templates.push_back(std::move(*Def));
      continue;
    }

    FormulaRef F = parseFormula(/*PatternMode=*/false);
    if (!F) {
      skipToCloseParen();
      continue;
    }
    if (Dirs.Unroll)
      F = withUnrollHint(F, *Dirs.Unroll);
    Prog.Items.push_back({F, Dirs});
  }
  if (Diags.hasErrors())
    return std::nullopt;
  return Prog;
}

FormulaRef Parser::parseSingleFormula(bool PatternMode) {
  FormulaRef F = parseFormula(PatternMode);
  if (Diags.hasErrors())
    return nullptr;
  return F;
}

//===----------------------------------------------------------------------===//
// Formulas
//===----------------------------------------------------------------------===//

FormulaRef Parser::parseFormula(bool PatternMode) {
  if (cur().is(Tok::LParen))
    return parseParenFormula(PatternMode);

  if (cur().is(Tok::Symbol)) {
    Token T = take();
    if (PatternMode && isFormulaVarName(T.Text))
      return makePatFormula(T.Text, T.Loc, &Diags);
    auto It = Defines.find(T.Text);
    if (It != Defines.end())
      return It->second;
    Diags.error(T.Loc, "undefined symbol '" + T.Text + "'" +
                           (PatternMode ? " (formula pattern variables must "
                                          "start with an upper-case letter "
                                          "and end with '_')"
                                        : ""));
    return nullptr;
  }

  error("expected a formula");
  return nullptr;
}

std::optional<IntArg> Parser::parseIntArg(bool PatternMode) {
  if (cur().is(Tok::Number) && cur().IsInt) {
    Token T = take();
    return IntArg(T.Int);
  }
  if (cur().is(Tok::Symbol) && isIntVarName(cur().Text)) {
    if (!PatternMode) {
      error("pattern variables are only allowed inside template patterns");
      return std::nullopt;
    }
    Token T = take();
    return IntArg(T.Text);
  }
  error("expected an integer parameter");
  return std::nullopt;
}

bool Parser::parseFormulaList(bool PatternMode, std::vector<FormulaRef> &Out) {
  while (!cur().is(Tok::RParen) && !cur().is(Tok::Eof)) {
    FormulaRef F = parseFormula(PatternMode);
    if (!F)
      return false;
    Out.push_back(std::move(F));
  }
  return true;
}

FormulaRef Parser::parseParenFormula(bool PatternMode) {
  SourceLoc Loc = cur().Loc;
  take(); // (
  if (!cur().is(Tok::Symbol)) {
    error("expected an operator or matrix name after '('");
    skipToCloseParen();
    return nullptr;
  }
  Token Head = take();
  const std::string &Name = Head.Text;

  auto CloseParen = [this]() -> bool {
    return expect(Tok::RParen, "')'");
  };

  // One-parameter square matrices.
  if (Name == "I" || Name == "F" || Name == "WHT" || Name == "DCT2" ||
      Name == "DCT4") {
    auto N = parseIntArg(PatternMode);
    if (!N || !CloseParen())
      return nullptr;
    if (!N->isVar() && N->Value <= 0) {
      Diags.error(Loc, "matrix size must be positive");
      return nullptr;
    }
    if (Name == "I")
      return makeIdentity(*N, Loc, &Diags);
    if (Name == "F")
      return makeDFT(*N, Loc, &Diags);
    if (Name == "WHT") {
      if (!N->isVar() && (N->Value & (N->Value - 1)) != 0) {
        Diags.error(Loc, "WHT size must be a power of two");
        return nullptr;
      }
      return makeWHT(*N, Loc, &Diags);
    }
    if (Name == "DCT2")
      return makeDCT2(*N, Loc, &Diags);
    return makeDCT4(*N, Loc, &Diags);
  }

  // Two-parameter matrices: (L mn n) and (T mn n).
  if (Name == "L" || Name == "T") {
    auto MN = parseIntArg(PatternMode);
    if (!MN)
      return nullptr;
    auto N = parseIntArg(PatternMode);
    if (!N || !CloseParen())
      return nullptr;
    if (!MN->isVar() && !N->isVar()) {
      if (MN->Value <= 0 || N->Value <= 0 || MN->Value % N->Value != 0) {
        Diags.error(Loc, std::string("(") + Name +
                             " mn n) requires positive parameters with "
                             "n dividing mn");
        return nullptr;
      }
    }
    return Name == "L" ? makeStride(*MN, *N, Loc, &Diags)
                       : makeTwiddle(*MN, *N, Loc, &Diags);
  }

  // Operators.
  if (Name == "compose" || Name == "tensor" || Name == "direct-sum") {
    std::vector<FormulaRef> Fs;
    if (!parseFormulaList(PatternMode, Fs))
      return nullptr;
    if (!CloseParen())
      return nullptr;
    if (Fs.size() < 2) {
      Diags.error(Loc, std::string("'") + Name +
                           "' needs at least two operands");
      return nullptr;
    }
    if (Name == "compose") {
      // Validate neighbouring sizes (right-to-left association).
      for (size_t I = 0; I + 1 != Fs.size(); ++I) {
        std::int64_t In = Fs[I]->inSize(), Out = Fs[I + 1]->outSize();
        if (In >= 0 && Out >= 0 && In != Out) {
          Diags.error(Loc, "compose size mismatch: operand " +
                               std::to_string(I + 1) + " has in_size " +
                               std::to_string(In) + " but operand " +
                               std::to_string(I + 2) + " has out_size " +
                               std::to_string(Out));
          return nullptr;
        }
      }
      return makeCompose(std::move(Fs), Loc, &Diags);
    }
    if (Name == "tensor")
      return makeTensor(std::move(Fs), Loc, &Diags);
    return makeDirectSum(std::move(Fs), Loc, &Diags);
  }

  if (Name == "matrix")
    return parseMatrixForm(Loc);
  if (Name == "diagonal")
    return parseDiagonalForm(Loc);
  if (Name == "permutation")
    return parsePermutationForm(Loc);

  if (Name == "define" || Name == "template") {
    Diags.error(Loc, std::string("'") + Name + "' is only allowed at the "
                                               "top level of a program");
    skipToCloseParen();
    return nullptr;
  }

  // Anything else is a user-defined parameterized matrix (its semantics must
  // come from a template); it takes integer parameters only.
  std::vector<IntArg> Params;
  while (!cur().is(Tok::RParen) && !cur().is(Tok::Eof)) {
    auto P = parseIntArg(PatternMode);
    if (!P)
      return nullptr;
    Params.push_back(*P);
  }
  if (!CloseParen())
    return nullptr;
  return makeUserParam(Name, std::move(Params), Loc, &Diags);
}

FormulaRef Parser::parseMatrixForm(SourceLoc Loc) {
  if (!expect(Tok::LParen, "'(' starting the matrix row list"))
    return nullptr;
  std::vector<std::vector<Cplx>> Rows;
  while (!cur().is(Tok::RParen) && !cur().is(Tok::Eof)) {
    if (!expect(Tok::LParen, "'(' starting a matrix row"))
      return nullptr;
    std::vector<Cplx> Row;
    while (!cur().is(Tok::RParen) && !cur().is(Tok::Eof)) {
      auto E = parseElement();
      if (!E)
        return nullptr;
      Row.push_back(*E);
    }
    if (!expect(Tok::RParen, "')' closing a matrix row"))
      return nullptr;
    if (Row.empty()) {
      Diags.error(Loc, "matrix rows must be nonempty");
      return nullptr;
    }
    Rows.push_back(std::move(Row));
  }
  if (!expect(Tok::RParen, "')' closing the matrix row list") ||
      !expect(Tok::RParen, "')' closing (matrix ...)"))
    return nullptr;
  if (Rows.empty()) {
    Diags.error(Loc, "matrix must have at least one row");
    return nullptr;
  }
  for (const auto &Row : Rows)
    if (Row.size() != Rows[0].size()) {
      Diags.error(Loc, "matrix rows must all have the same length");
      return nullptr;
    }
  return makeGenMatrix(std::move(Rows), Loc, &Diags);
}

FormulaRef Parser::parseDiagonalForm(SourceLoc Loc) {
  if (!expect(Tok::LParen, "'(' starting the diagonal element list"))
    return nullptr;
  std::vector<Cplx> Elems;
  while (!cur().is(Tok::RParen) && !cur().is(Tok::Eof)) {
    auto E = parseElement();
    if (!E)
      return nullptr;
    Elems.push_back(*E);
  }
  if (!expect(Tok::RParen, "')' closing the element list") ||
      !expect(Tok::RParen, "')' closing (diagonal ...)"))
    return nullptr;
  if (Elems.empty()) {
    Diags.error(Loc, "diagonal must be nonempty");
    return nullptr;
  }
  return makeDiagonal(std::move(Elems), Loc, &Diags);
}

FormulaRef Parser::parsePermutationForm(SourceLoc Loc) {
  if (!expect(Tok::LParen, "'(' starting the permutation list"))
    return nullptr;
  std::vector<std::int64_t> Targets;
  while (cur().is(Tok::Number) && cur().IsInt)
    Targets.push_back(take().Int);
  if (!expect(Tok::RParen, "')' closing the permutation list") ||
      !expect(Tok::RParen, "')' closing (permutation ...)"))
    return nullptr;
  if (Targets.empty()) {
    Diags.error(Loc, "permutation must be nonempty");
    return nullptr;
  }
  std::vector<bool> Seen(Targets.size(), false);
  for (std::int64_t T : Targets) {
    if (T < 1 || T > static_cast<std::int64_t>(Targets.size()) ||
        Seen[T - 1]) {
      Diags.error(Loc, "permutation entries must be a permutation of 1..n");
      return nullptr;
    }
    Seen[T - 1] = true;
  }
  return makePermutation(std::move(Targets), Loc, &Diags);
}

//===----------------------------------------------------------------------===//
// Constant scalar expressions
//===----------------------------------------------------------------------===//

std::optional<Cplx> Parser::parseElement() {
  // Elements in lists are atomic: a number, a named constant, a function
  // call, a unary minus applied to an element, or a parenthesized
  // expression / complex pair. Infix arithmetic requires parentheses so
  // that whitespace keeps separating elements unambiguously.
  if (cur().is(Tok::Minus)) {
    take();
    auto V = parseElement();
    if (!V)
      return std::nullopt;
    return -*V;
  }
  if (cur().is(Tok::Number)) {
    Token T = take();
    return Cplx(T.Num, 0);
  }
  if (cur().is(Tok::Symbol)) {
    return parseScalarPrimary();
  }
  if (cur().is(Tok::LParen))
    return parseScalarPrimary();
  error("expected a scalar constant");
  return std::nullopt;
}

std::optional<Cplx> Parser::parseScalarExpr() {
  auto L = parseScalarTerm();
  if (!L)
    return std::nullopt;
  while (cur().is(Tok::Plus) || cur().is(Tok::Minus)) {
    bool IsAdd = take().is(Tok::Plus);
    auto R = parseScalarTerm();
    if (!R)
      return std::nullopt;
    L = IsAdd ? *L + *R : *L - *R;
  }
  return L;
}

std::optional<Cplx> Parser::parseScalarTerm() {
  auto L = parseScalarUnary();
  if (!L)
    return std::nullopt;
  while (cur().is(Tok::Star) || cur().is(Tok::Slash)) {
    bool IsMul = take().is(Tok::Star);
    auto R = parseScalarUnary();
    if (!R)
      return std::nullopt;
    if (!IsMul && *R == Cplx(0, 0)) {
      error("division by zero in constant expression");
      return std::nullopt;
    }
    L = IsMul ? *L * *R : *L / *R;
  }
  return L;
}

std::optional<Cplx> Parser::parseScalarUnary() {
  if (cur().is(Tok::Minus)) {
    take();
    auto V = parseScalarUnary();
    if (!V)
      return std::nullopt;
    return -*V;
  }
  return parseScalarPrimary();
}

std::optional<Cplx> Parser::parseScalarPrimary() {
  if (cur().is(Tok::Number)) {
    Token T = take();
    return Cplx(T.Num, 0);
  }
  if (cur().is(Tok::Symbol)) {
    Token T = take();
    if (cur().is(Tok::LParen) && cur().Adjacent) {
      take(); // (
      std::vector<Cplx> Args;
      while (!cur().is(Tok::RParen) && !cur().is(Tok::Eof)) {
        auto A = parseScalarExpr();
        if (!A)
          return std::nullopt;
        Args.push_back(*A);
        consumeIf(Tok::Comma);
      }
      if (!expect(Tok::RParen, "')' closing the argument list"))
        return std::nullopt;
      auto V = applyScalarFn(T.Text, Args);
      if (!V) {
        Diags.error(T.Loc, "unknown scalar function '" + T.Text +
                               "' or wrong number of arguments");
        return std::nullopt;
      }
      return V;
    }
    auto V = scalarConstant(T.Text);
    if (!V) {
      Diags.error(T.Loc, "unknown scalar constant '" + T.Text + "'");
      return std::nullopt;
    }
    return V;
  }
  if (cur().is(Tok::LParen)) {
    take();
    auto A = parseScalarExpr();
    if (!A)
      return std::nullopt;
    if (consumeIf(Tok::Comma)) {
      auto B = parseScalarExpr();
      if (!B)
        return std::nullopt;
      if (!expect(Tok::RParen, "')' closing a complex constant"))
        return std::nullopt;
      if (A->imag() != 0 || B->imag() != 0) {
        error("components of a complex constant must be real");
        return std::nullopt;
      }
      return Cplx(A->real(), B->real());
    }
    if (!expect(Tok::RParen, "')' closing a parenthesized constant"))
      return std::nullopt;
    return A;
  }
  error("expected a scalar constant");
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Templates
//===----------------------------------------------------------------------===//

std::optional<tpl::TemplateDef> Parser::parseTemplate(SourceLoc Loc) {
  tpl::TemplateDef Def;
  Def.Loc = Loc;
  Def.Pattern = parseFormula(/*PatternMode=*/true);
  if (!Def.Pattern)
    return std::nullopt;

  if (cur().is(Tok::LBracket)) {
    take();
    Def.Condition = parseCondition();
    if (!Def.Condition)
      return std::nullopt;
    if (!expect(Tok::RBracket, "']' closing the template condition"))
      return std::nullopt;
  }

  if (!expect(Tok::LParen, "'(' starting the template i-code"))
    return std::nullopt;
  if (!parseTStmtList(Def.Body))
    return std::nullopt;
  if (!expect(Tok::RParen, "')' closing the template i-code") ||
      !expect(Tok::RParen, "')' closing (template ...)"))
    return std::nullopt;

  // Check loop balance up front so the expander can assume it.
  int Depth = 0;
  for (const tpl::TStmt &S : Def.Body) {
    if (S.K == tpl::TStmt::Do)
      ++Depth;
    else if (S.K == tpl::TStmt::EndDo && --Depth < 0) {
      Diags.error(S.Loc, "'end' without matching 'do' in template body");
      return std::nullopt;
    }
  }
  if (Depth != 0) {
    Diags.error(Loc, "unclosed 'do' loop in template body");
    return std::nullopt;
  }
  return Def;
}

//===----------------------------------------------------------------------===//
// Conditions
//===----------------------------------------------------------------------===//

cond::ExprRef Parser::parseCondition() { return parseCondOr(); }

cond::ExprRef Parser::parseCondOr() {
  auto L = parseCondAnd();
  while (L && cur().is(Tok::PipePipe)) {
    take();
    auto R = parseCondAnd();
    if (!R)
      return nullptr;
    L = cond::Expr::bin(cond::Expr::Or, L, R);
  }
  return L;
}

cond::ExprRef Parser::parseCondAnd() {
  auto L = parseCondCmp();
  while (L && cur().is(Tok::AmpAmp)) {
    take();
    auto R = parseCondCmp();
    if (!R)
      return nullptr;
    L = cond::Expr::bin(cond::Expr::And, L, R);
  }
  return L;
}

cond::ExprRef Parser::parseCondCmp() {
  auto L = parseCondAdd();
  if (!L)
    return nullptr;
  cond::Expr::Kind K;
  switch (cur().Kind) {
  case Tok::EqEq:
    K = cond::Expr::EQ;
    break;
  case Tok::NotEq:
    K = cond::Expr::NE;
    break;
  case Tok::Lt:
    K = cond::Expr::LT;
    break;
  case Tok::Le:
    K = cond::Expr::LE;
    break;
  case Tok::Gt:
    K = cond::Expr::GT;
    break;
  case Tok::Ge:
    K = cond::Expr::GE;
    break;
  default:
    return L;
  }
  take();
  auto R = parseCondAdd();
  if (!R)
    return nullptr;
  return cond::Expr::bin(K, L, R);
}

cond::ExprRef Parser::parseCondAdd() {
  auto L = parseCondMul();
  while (L && (cur().is(Tok::Plus) || cur().is(Tok::Minus))) {
    bool IsAdd = take().is(Tok::Plus);
    auto R = parseCondMul();
    if (!R)
      return nullptr;
    L = cond::Expr::bin(IsAdd ? cond::Expr::Add : cond::Expr::Sub, L, R);
  }
  return L;
}

cond::ExprRef Parser::parseCondMul() {
  auto L = parseCondUnary();
  while (L && (cur().is(Tok::Star) || cur().is(Tok::Slash) ||
               cur().is(Tok::Percent))) {
    Tok Op = take().Kind;
    auto R = parseCondUnary();
    if (!R)
      return nullptr;
    cond::Expr::Kind K = Op == Tok::Star    ? cond::Expr::Mul
                         : Op == Tok::Slash ? cond::Expr::Div
                                            : cond::Expr::Mod;
    L = cond::Expr::bin(K, L, R);
  }
  return L;
}

cond::ExprRef Parser::parseCondUnary() {
  if (cur().is(Tok::Minus)) {
    take();
    auto E = parseCondUnary();
    return E ? cond::Expr::unary(cond::Expr::Neg, E) : nullptr;
  }
  if (cur().is(Tok::Bang)) {
    take();
    auto E = parseCondUnary();
    return E ? cond::Expr::unary(cond::Expr::Not, E) : nullptr;
  }
  return parseCondPrimary();
}

std::string Parser::parsePropertyName(std::string Base) {
  if (cur().is(Tok::Dot) && cur().Adjacent && peek(1).is(Tok::Symbol) &&
      peek(1).Adjacent) {
    take();
    Base += "." + take().Text;
  }
  return Base;
}

cond::ExprRef Parser::parseCondPrimary() {
  if (cur().is(Tok::Number) && cur().IsInt)
    return cond::Expr::num(take().Int);
  if (cur().is(Tok::Symbol)) {
    Token T = take();
    return cond::Expr::sym(parsePropertyName(T.Text));
  }
  if (cur().is(Tok::LParen)) {
    take();
    auto E = parseCondOr();
    if (!E || !expect(Tok::RParen, "')' in condition"))
      return nullptr;
    return E;
  }
  error("expected an integer, a pattern variable, or '(' in condition");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Template i-code bodies
//===----------------------------------------------------------------------===//

bool Parser::parseTStmtList(std::vector<tpl::TStmt> &Out) {
  while (!cur().is(Tok::RParen) && !cur().is(Tok::Eof)) {
    auto S = parseTStmt();
    if (!S)
      return false;
    Out.push_back(std::move(*S));
  }
  return true;
}

std::optional<tpl::TStmt> Parser::parseTStmt() {
  tpl::TStmt S;
  S.Loc = cur().Loc;

  if (cur().isSymbol("do")) {
    take();
    S.K = tpl::TStmt::Do;
    if (!cur().is(Tok::Symbol) || !startsWith(cur().Text, "$i")) {
      error("expected a loop variable ($i0, $i1, ...) after 'do'");
      return std::nullopt;
    }
    S.LoopVar = take().Text;
    if (!expect(Tok::Equals, "'=' in do statement"))
      return std::nullopt;
    S.Lo = parseTExpr();
    if (!S.Lo || !expect(Tok::Comma, "',' between loop bounds"))
      return std::nullopt;
    S.Hi = parseTExpr();
    if (!S.Hi)
      return std::nullopt;
    return S;
  }

  if (cur().isSymbol("end")) {
    take();
    // Accept the Fortran-style "end do" spelling: consume a trailing "do"
    // unless it begins a new loop ("do $iK = ...").
    if (cur().isSymbol("do") &&
        !(peek(1).is(Tok::Symbol) && startsWith(peek(1).Text, "$")))
      take();
    S.K = tpl::TStmt::EndDo;
    return S;
  }

  if (cur().is(Tok::Symbol) && isFormulaVarName(cur().Text) &&
      peek(1).is(Tok::LParen)) {
    S.K = tpl::TStmt::CallFormula;
    S.Callee = take().Text;
    take(); // (
    while (!cur().is(Tok::RParen) && !cur().is(Tok::Eof)) {
      auto E = parseTExpr();
      if (!E)
        return std::nullopt;
      S.CallArgs.push_back(E);
      consumeIf(Tok::Comma);
    }
    if (!expect(Tok::RParen, "')' closing the formula call"))
      return std::nullopt;
    if (S.CallArgs.size() != 6) {
      Diags.error(S.Loc, "formula calls take exactly six arguments: "
                         "in, out, in_offset, out_offset, in_stride, "
                         "out_stride");
      return std::nullopt;
    }
    return S;
  }

  // Assignment.
  if (!cur().is(Tok::Symbol) || !startsWith(cur().Text, "$")) {
    error("expected a statement (do / end / assignment / formula call)");
    return std::nullopt;
  }
  S.K = tpl::TStmt::Assign;
  Token Lhs = take();
  if (cur().is(Tok::LParen) && cur().Adjacent) {
    take();
    tpl::TExprRef Sub = parseTExpr();
    if (!Sub || !expect(Tok::RParen, "')' closing the subscript"))
      return std::nullopt;
    S.Lhs = tpl::TExpr::vecRef(Lhs.Text, Sub, Lhs.Loc);
  } else {
    S.Lhs = tpl::TExpr::sym(Lhs.Text, Lhs.Loc);
  }
  if (!expect(Tok::Equals, "'=' in assignment"))
    return std::nullopt;
  S.Rhs = parseTExpr();
  if (!S.Rhs)
    return std::nullopt;
  return S;
}

tpl::TExprRef Parser::parseTExpr() { return parseTAdd(); }

tpl::TExprRef Parser::parseTAdd() {
  auto L = parseTMul();
  while (L && (cur().is(Tok::Plus) || cur().is(Tok::Minus))) {
    SourceLoc Loc = cur().Loc;
    bool IsAdd = take().is(Tok::Plus);
    auto R = parseTMul();
    if (!R)
      return nullptr;
    L = tpl::TExpr::bin(IsAdd ? tpl::TExpr::Add : tpl::TExpr::Sub, L, R, Loc);
  }
  return L;
}

tpl::TExprRef Parser::parseTMul() {
  auto L = parseTUnary();
  while (L && (cur().is(Tok::Star) || cur().is(Tok::Slash) ||
               cur().is(Tok::Percent))) {
    SourceLoc Loc = cur().Loc;
    Tok Op = take().Kind;
    auto R = parseTUnary();
    if (!R)
      return nullptr;
    tpl::TExpr::Kind K = Op == Tok::Star    ? tpl::TExpr::Mul
                         : Op == Tok::Slash ? tpl::TExpr::Div
                                            : tpl::TExpr::Mod;
    L = tpl::TExpr::bin(K, L, R, Loc);
  }
  return L;
}

tpl::TExprRef Parser::parseTUnary() {
  if (cur().is(Tok::Minus)) {
    SourceLoc Loc = take().Loc;
    auto E = parseTUnary();
    return E ? tpl::TExpr::neg(E, Loc) : nullptr;
  }
  return parseTPrimary();
}

tpl::TExprRef Parser::parseTPrimary() {
  if (cur().is(Tok::Number)) {
    Token T = take();
    return tpl::TExpr::num(Cplx(T.Num, 0), T.Loc);
  }

  if (cur().is(Tok::Symbol)) {
    Token T = take();
    if (cur().is(Tok::LParen) && cur().Adjacent) {
      take(); // (
      if (startsWith(T.Text, "$")) {
        // Vector reference with one subscript.
        auto Sub = parseTExpr();
        if (!Sub || !expect(Tok::RParen, "')' closing the subscript"))
          return nullptr;
        return tpl::TExpr::vecRef(T.Text, Sub, T.Loc);
      }
      // Intrinsic call; arguments are space- (or comma-) separated.
      std::vector<tpl::TExprRef> Args;
      while (!cur().is(Tok::RParen) && !cur().is(Tok::Eof)) {
        auto A = parseTExpr();
        if (!A)
          return nullptr;
        Args.push_back(A);
        consumeIf(Tok::Comma);
      }
      if (!expect(Tok::RParen, "')' closing the intrinsic call"))
        return nullptr;
      return tpl::TExpr::call(T.Text, std::move(Args), T.Loc);
    }
    return tpl::TExpr::sym(parsePropertyName(T.Text), T.Loc);
  }

  if (cur().is(Tok::LParen)) {
    SourceLoc Loc = take().Loc;
    auto A = parseTExpr();
    if (!A)
      return nullptr;
    if (consumeIf(Tok::Comma)) {
      auto B = parseTExpr();
      if (!B || !expect(Tok::RParen, "')' closing a complex constant"))
        return nullptr;
      // Components may be literals or negated literals ("(0.7,-0.7)").
      auto FoldNum = [](const tpl::TExprRef &E) -> std::optional<double> {
        if (E->K == tpl::TExpr::Num)
          return E->NumVal.real();
        if (E->K == tpl::TExpr::Neg && E->Args[0]->K == tpl::TExpr::Num)
          return -E->Args[0]->NumVal.real();
        return std::nullopt;
      };
      auto Re = FoldNum(A), Im = FoldNum(B);
      if (!Re || !Im) {
        Diags.error(Loc, "complex constants must have constant components");
        return nullptr;
      }
      return tpl::TExpr::num(Cplx(*Re, *Im), Loc);
    }
    if (!expect(Tok::RParen, "')' closing a parenthesized expression"))
      return nullptr;
    return A;
  }

  error("expected an expression");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Convenience entry points
//===----------------------------------------------------------------------===//

FormulaRef spl::parseFormulaString(const std::string &Source,
                                   Diagnostics &Diags, bool PatternMode) {
  Parser P(Source, Diags);
  return P.parseSingleFormula(PatternMode);
}

std::vector<tpl::TemplateDef>
spl::parseTemplateString(const std::string &Source, Diagnostics &Diags) {
  Parser P(Source, Diags);
  auto Prog = P.parseProgram();
  if (!Prog)
    return {};
  return std::move(Prog->Templates);
}
