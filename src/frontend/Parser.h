//===- frontend/Parser.h - SPL parser ---------------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for SPL programs: formulas, (define ...) name
/// assignments, (template ...) definitions with i-code bodies and bracketed
/// conditions, and compiler directives (#subname, #datatype, #codetype,
/// #language, #unroll). Defined names are resolved during parsing by
/// substitution, so downstream phases only ever see closed formula trees
/// (this is why pattern variables "cannot match undefined symbols").
///
//===----------------------------------------------------------------------===//

#ifndef SPL_FRONTEND_PARSER_H
#define SPL_FRONTEND_PARSER_H

#include "frontend/Lexer.h"
#include "ir/Formula.h"
#include "templates/TemplateDef.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace spl {

/// Directive state in effect for a compile item.
struct DirectiveState {
  std::string SubName;              ///< #subname (empty: derive from index).
  std::string Datatype = "complex"; ///< #datatype real|complex.
  std::string CodeType = "real";    ///< #codetype real|complex.
  std::string Language = "c";       ///< #language c|fortran.
  std::optional<bool> Unroll;       ///< #unroll on|off currently in effect.
};

/// One top-level formula together with the directives that govern it.
struct CompileItem {
  FormulaRef Formula;
  DirectiveState Dirs;
};

/// A parsed SPL program.
struct SplProgram {
  std::vector<CompileItem> Items;
  std::vector<tpl::TemplateDef> Templates; ///< In definition order.
  std::map<std::string, FormulaRef> Defines;
};

/// The SPL parser. Errors are reported to the Diagnostics engine; parse
/// functions return nullopt / null on failure.
class Parser {
public:
  Parser(const std::string &Source, Diagnostics &Diags);

  /// Parses a complete program.
  std::optional<SplProgram> parseProgram();

  /// Parses a single formula (no directives/defines); used by tests, tools
  /// and the built-in template loader.
  FormulaRef parseSingleFormula(bool PatternMode = false);

private:
  Diagnostics &Diags;
  std::vector<Token> Toks;
  size_t Pos = 0;
  DirectiveState Dirs;
  std::map<std::string, FormulaRef> Defines;

  // Token helpers.
  const Token &peek(size_t Ahead = 0) const;
  const Token &cur() const { return peek(0); }
  Token take();
  bool consumeIf(Tok K);
  bool expect(Tok K, const char *What);
  void error(const char *Message);
  void skipToCloseParen();

  // Directives and top-level items.
  void handleDirective(const Token &T);

  // Formulas.
  FormulaRef parseFormula(bool PatternMode);
  FormulaRef parseParenFormula(bool PatternMode);
  std::optional<IntArg> parseIntArg(bool PatternMode);
  FormulaRef parseMatrixForm(SourceLoc Loc);
  FormulaRef parseDiagonalForm(SourceLoc Loc);
  FormulaRef parsePermutationForm(SourceLoc Loc);
  bool parseFormulaList(bool PatternMode, std::vector<FormulaRef> &Out);

  // Constant scalar expressions (matrix / diagonal elements).
  std::optional<Cplx> parseElement();
  std::optional<Cplx> parseScalarExpr();
  std::optional<Cplx> parseScalarTerm();
  std::optional<Cplx> parseScalarUnary();
  std::optional<Cplx> parseScalarPrimary();

  // Templates.
  std::optional<tpl::TemplateDef> parseTemplate(SourceLoc Loc);
  cond::ExprRef parseCondition();
  cond::ExprRef parseCondOr();
  cond::ExprRef parseCondAnd();
  cond::ExprRef parseCondCmp();
  cond::ExprRef parseCondAdd();
  cond::ExprRef parseCondMul();
  cond::ExprRef parseCondUnary();
  cond::ExprRef parseCondPrimary();
  std::string parsePropertyName(std::string Base);

  // Template i-code bodies.
  bool parseTStmtList(std::vector<tpl::TStmt> &Out);
  std::optional<tpl::TStmt> parseTStmt();
  tpl::TExprRef parseTExpr();
  tpl::TExprRef parseTAdd();
  tpl::TExprRef parseTMul();
  tpl::TExprRef parseTUnary();
  tpl::TExprRef parseTPrimary();
};

/// Convenience: parses one formula from \p Source.
FormulaRef parseFormulaString(const std::string &Source, Diagnostics &Diags,
                              bool PatternMode = false);

/// Convenience: parses a program and returns just its templates (used for
/// the built-in template text and for user template files).
std::vector<tpl::TemplateDef> parseTemplateString(const std::string &Source,
                                                  Diagnostics &Diags);

} // namespace spl

#endif // SPL_FRONTEND_PARSER_H
