//===- frontend/Lexer.cpp - SPL lexer --------------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>

using namespace spl;

namespace {

bool isSymbolStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}

bool isSymbolChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

class LexerImpl {
public:
  LexerImpl(const std::string &Source, Diagnostics &Diags)
      : Src(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    bool SawSpace = true;
    for (;;) {
      // Skip whitespace and comments.
      for (;;) {
        if (Pos < Src.size() &&
            std::isspace(static_cast<unsigned char>(Src[Pos]))) {
          advance();
          SawSpace = true;
          continue;
        }
        if (Pos < Src.size() && Src[Pos] == ';') {
          while (Pos < Src.size() && Src[Pos] != '\n')
            advance();
          SawSpace = true;
          continue;
        }
        break;
      }
      if (Pos >= Src.size()) {
        Token T;
        T.Kind = Tok::Eof;
        T.Loc = loc();
        Out.push_back(T);
        return Out;
      }
      Token T = lexOne();
      T.Adjacent = !SawSpace;
      SawSpace = false;
      if (T.Kind != Tok::Eof)
        Out.push_back(T);
    }
  }

private:
  const std::string &Src;
  Diagnostics &Diags;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;

  SourceLoc loc() const { return SourceLoc(Line, Col); }

  void advance() {
    if (Src[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  Token make(Tok Kind, std::string Text, SourceLoc Loc) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Loc = Loc;
    return T;
  }

  Token lexOne() {
    SourceLoc L = loc();
    char C = Src[Pos];

    if (C == '#') {
      advance();
      std::string Text;
      while (Pos < Src.size() && Src[Pos] != '\n') {
        Text += Src[Pos];
        advance();
      }
      // Trim surrounding spaces.
      while (!Text.empty() && std::isspace(static_cast<unsigned char>(Text.back())))
        Text.pop_back();
      size_t Start = 0;
      while (Start < Text.size() &&
             std::isspace(static_cast<unsigned char>(Text[Start])))
        ++Start;
      return make(Tok::Directive, Text.substr(Start), L);
    }

    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(L);

    if (isSymbolStart(C))
      return lexSymbol(L);

    advance();
    switch (C) {
    case '(':
      return make(Tok::LParen, "(", L);
    case ')':
      return make(Tok::RParen, ")", L);
    case '[':
      return make(Tok::LBracket, "[", L);
    case ']':
      return make(Tok::RBracket, "]", L);
    case ',':
      return make(Tok::Comma, ",", L);
    case '+':
      return make(Tok::Plus, "+", L);
    case '-':
      return make(Tok::Minus, "-", L);
    case '*':
      return make(Tok::Star, "*", L);
    case '/':
      return make(Tok::Slash, "/", L);
    case '%':
      return make(Tok::Percent, "%", L);
    case '.':
      return make(Tok::Dot, ".", L);
    case '=':
      if (peek() == '=') {
        advance();
        return make(Tok::EqEq, "==", L);
      }
      return make(Tok::Equals, "=", L);
    case '!':
      if (peek() == '=') {
        advance();
        return make(Tok::NotEq, "!=", L);
      }
      return make(Tok::Bang, "!", L);
    case '<':
      if (peek() == '=') {
        advance();
        return make(Tok::Le, "<=", L);
      }
      return make(Tok::Lt, "<", L);
    case '>':
      if (peek() == '=') {
        advance();
        return make(Tok::Ge, ">=", L);
      }
      return make(Tok::Gt, ">", L);
    case '&':
      if (peek() == '&') {
        advance();
        return make(Tok::AmpAmp, "&&", L);
      }
      Diags.error(L, "stray '&' (did you mean '&&'?)");
      return make(Tok::Eof, "", L);
    case '|':
      if (peek() == '|') {
        advance();
        return make(Tok::PipePipe, "||", L);
      }
      Diags.error(L, "stray '|' (did you mean '||'?)");
      return make(Tok::Eof, "", L);
    default:
      Diags.error(L, std::string("unexpected character '") + C + "'");
      return make(Tok::Eof, "", L);
    }
  }

  Token lexNumber(SourceLoc L) {
    std::string Text;
    bool IsInt = true;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      Text += peek();
      advance();
    }
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsInt = false;
      Text += peek();
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        Text += peek();
        advance();
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      size_t Save = 1;
      if (peek(1) == '+' || peek(1) == '-')
        Save = 2;
      if (std::isdigit(static_cast<unsigned char>(peek(Save)))) {
        IsInt = false;
        Text += peek();
        advance();
        if (peek() == '+' || peek() == '-') {
          Text += peek();
          advance();
        }
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          Text += peek();
          advance();
        }
      }
    }
    Token T = make(Tok::Number, Text, L);
    T.Num = std::strtod(Text.c_str(), nullptr);
    T.IsInt = IsInt;
    if (IsInt)
      T.Int = std::strtoll(Text.c_str(), nullptr, 10);
    return T;
  }

  Token lexSymbol(SourceLoc L) {
    std::string Text;
    Text += peek();
    advance();
    for (;;) {
      if (isSymbolChar(peek())) {
        Text += peek();
        advance();
        continue;
      }
      // A '-' continues the symbol only between two letters; this keeps
      // "direct-sum" one token while "n_-1" and "m_-n_" lex as
      // subtractions (pattern variables always end in '_').
      if (peek() == '-' && !Text.empty() &&
          std::isalpha(static_cast<unsigned char>(Text.back())) &&
          std::isalpha(static_cast<unsigned char>(peek(1)))) {
        Text += peek();
        advance();
        continue;
      }
      break;
    }
    return make(Tok::Symbol, Text, L);
  }
};

} // namespace

std::vector<Token> spl::lex(const std::string &Source, Diagnostics &Diags) {
  return LexerImpl(Source, Diags).run();
}
