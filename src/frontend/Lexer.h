//===- frontend/Lexer.h - SPL lexer -----------------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for SPL source: S-expression punctuation, symbols (including
/// $-prefixed i-code names and hyphenated operator names like direct-sum),
/// numbers, compiler directives (# to end of line), comments (; to end of
/// line), and the operator tokens used by template bodies and conditions.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_FRONTEND_LEXER_H
#define SPL_FRONTEND_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spl {

/// Token kinds.
enum class Tok {
  LParen,
  RParen,
  LBracket,
  RBracket,
  Symbol,    ///< Identifiers, $names, hyphenated names.
  Number,    ///< Integer or floating literal.
  Directive, ///< '#' line; Text holds everything after '#'.
  Comma,
  Equals,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Dot,
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  AmpAmp,
  PipePipe,
  Bang,
  Eof,
};

/// One lexed token.
struct Token {
  Tok Kind = Tok::Eof;
  std::string Text;     ///< Symbol/directive text; literal spelling otherwise.
  double Num = 0;       ///< Numeric value (Number).
  std::int64_t Int = 0; ///< Integer value when IsInt.
  bool IsInt = false;   ///< Number had no '.' or exponent.
  bool Adjacent = false; ///< No whitespace between this and previous token.
  SourceLoc Loc;

  bool is(Tok K) const { return Kind == K; }
  bool isSymbol(const char *S) const {
    return Kind == Tok::Symbol && Text == S;
  }
};

/// Lexes a whole buffer up front. Lexing never fails fatally: unknown
/// characters produce a diagnostic and are skipped.
std::vector<Token> lex(const std::string &Source, Diagnostics &Diags);

} // namespace spl

#endif // SPL_FRONTEND_LEXER_H
