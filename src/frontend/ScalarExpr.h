//===- frontend/ScalarExpr.h - Constant scalar functions --------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named constants and functions usable inside SPL constant scalar
/// expressions such as sqrt(2) or (cos(2*pi/3.0),sin(2*pi/3.0)). All are
/// evaluated at compile time (paper Section 2.2).
///
//===----------------------------------------------------------------------===//

#ifndef SPL_FRONTEND_SCALAREXPR_H
#define SPL_FRONTEND_SCALAREXPR_H

#include "ir/Matrix.h"

#include <optional>
#include <string>
#include <vector>

namespace spl {

/// Value of a named scalar constant ("pi"); nullopt when unknown.
std::optional<Cplx> scalarConstant(const std::string &Name);

/// Applies a scalar function ("sqrt", "cos", "sin", "tan", "exp", "log",
/// "w") to \p Args. w(n,k) is the DFT root of unity w_n^k. Returns nullopt
/// for an unknown function or wrong arity.
std::optional<Cplx> applyScalarFn(const std::string &Name,
                                  const std::vector<Cplx> &Args);

} // namespace spl

#endif // SPL_FRONTEND_SCALAREXPR_H
