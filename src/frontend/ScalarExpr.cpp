//===- frontend/ScalarExpr.cpp - Constant scalar functions -----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/ScalarExpr.h"

#include "ir/Transforms.h"
#include "support/StrUtil.h"

#include <cmath>

using namespace spl;

std::optional<Cplx> spl::scalarConstant(const std::string &Name) {
  std::string N = toLower(Name);
  if (N == "pi")
    return Cplx(3.14159265358979323846264338327950288, 0);
  return std::nullopt;
}

std::optional<Cplx> spl::applyScalarFn(const std::string &Name,
                                       const std::vector<Cplx> &Args) {
  std::string N = toLower(Name);
  if (N == "w") {
    if (Args.size() != 2)
      return std::nullopt;
    // Arguments must be (near-)integers.
    auto Order = static_cast<std::int64_t>(std::llround(Args[0].real()));
    auto Power = static_cast<std::int64_t>(std::llround(Args[1].real()));
    if (Order <= 0)
      return std::nullopt;
    return wRoot(Order, Power);
  }

  if (Args.size() != 1)
    return std::nullopt;
  Cplx X = Args[0];
  bool IsReal = X.imag() == 0;
  if (N == "sqrt")
    return IsReal && X.real() >= 0 ? Cplx(std::sqrt(X.real()), 0)
                                   : std::sqrt(X);
  if (N == "cos")
    return IsReal ? Cplx(std::cos(X.real()), 0) : std::cos(X);
  if (N == "sin")
    return IsReal ? Cplx(std::sin(X.real()), 0) : std::sin(X);
  if (N == "tan")
    return IsReal ? Cplx(std::tan(X.real()), 0) : std::tan(X);
  if (N == "exp")
    return IsReal ? Cplx(std::exp(X.real()), 0) : std::exp(X);
  if (N == "log")
    return IsReal && X.real() > 0 ? Cplx(std::log(X.real()), 0) : std::log(X);
  return std::nullopt;
}
