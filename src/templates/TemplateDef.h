//===- templates/TemplateDef.h - Template definitions -----------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parsed form of SPL templates (paper Section 3.2): a pattern (a formula
/// containing pattern variables), an optional C-style boolean condition, and
/// an i-code body. The body is kept symbolic (TExpr/TStmt); the expander
/// instantiates it once pattern variables are bound to concrete values.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TEMPLATES_TEMPLATEDEF_H
#define SPL_TEMPLATES_TEMPLATEDEF_H

#include "ir/Formula.h"
#include "templates/Condition.h"

#include <memory>
#include <string>
#include <vector>

namespace spl {
namespace tpl {

struct TExpr;
using TExprRef = std::shared_ptr<const TExpr>;

/// A symbolic expression in a template body. Scalar names keep their source
/// spelling: "$i0" (loop index), "$r0" (integer temp), "$f0" (float temp),
/// "n_" (integer pattern variable), "A_.in_size" (property of a bound
/// formula variable).
struct TExpr {
  enum Kind {
    Num,    ///< Numeric literal (possibly complex).
    Sym,    ///< Named scalar; see above.
    VecRef, ///< $in(e), $out(e), $tK(e).
    Call,   ///< Intrinsic call name(e1 e2 ...).
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
  } K = Num;

  Cplx NumVal;                ///< For Num.
  std::string Name;           ///< For Sym / VecRef / Call.
  std::vector<TExprRef> Args; ///< Subscript, call args, or operands.
  SourceLoc Loc;

  static TExprRef num(Cplx V, SourceLoc Loc = SourceLoc()) {
    auto E = std::make_shared<TExpr>();
    E->K = Num;
    E->NumVal = V;
    E->Loc = Loc;
    return E;
  }
  static TExprRef sym(std::string Name, SourceLoc Loc = SourceLoc()) {
    auto E = std::make_shared<TExpr>();
    E->K = Sym;
    E->Name = std::move(Name);
    E->Loc = Loc;
    return E;
  }
  static TExprRef vecRef(std::string Name, TExprRef Subscript,
                         SourceLoc Loc = SourceLoc()) {
    auto E = std::make_shared<TExpr>();
    E->K = VecRef;
    E->Name = std::move(Name);
    E->Args.push_back(std::move(Subscript));
    E->Loc = Loc;
    return E;
  }
  static TExprRef call(std::string Name, std::vector<TExprRef> CallArgs,
                       SourceLoc Loc = SourceLoc()) {
    auto E = std::make_shared<TExpr>();
    E->K = Call;
    E->Name = std::move(Name);
    E->Args = std::move(CallArgs);
    E->Loc = Loc;
    return E;
  }
  static TExprRef bin(Kind K, TExprRef L, TExprRef R,
                      SourceLoc Loc = SourceLoc()) {
    auto E = std::make_shared<TExpr>();
    E->K = K;
    E->Args.push_back(std::move(L));
    E->Args.push_back(std::move(R));
    E->Loc = Loc;
    return E;
  }
  static TExprRef neg(TExprRef Sub, SourceLoc Loc = SourceLoc()) {
    auto E = std::make_shared<TExpr>();
    E->K = Neg;
    E->Args.push_back(std::move(Sub));
    E->Loc = Loc;
    return E;
  }
};

/// A statement in a template body.
struct TStmt {
  enum Kind {
    Do,          ///< do <LoopVar> = <Lo>, <Hi>
    EndDo,       ///< end
    Assign,      ///< <Lhs> = <Rhs>
    CallFormula, ///< A_($in, $out, in_off, out_off, in_stride, out_stride)
  } K = Assign;

  // Do.
  std::string LoopVar;
  TExprRef Lo, Hi;
  // Assign.
  TExprRef Lhs, Rhs;
  // CallFormula. Args are exactly the six implicit parameters, in order:
  // in, out, in_offset, out_offset, in_stride, out_stride.
  std::string Callee;
  std::vector<TExprRef> CallArgs;

  SourceLoc Loc;
};

/// One template definition.
struct TemplateDef {
  FormulaRef Pattern;
  cond::ExprRef Condition; ///< Null when the template has no condition.
  std::vector<TStmt> Body;
  SourceLoc Loc;
};

} // namespace tpl
} // namespace spl

#endif // SPL_TEMPLATES_TEMPLATEDEF_H
