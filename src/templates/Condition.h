//===- templates/Condition.h - Template conditions --------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C-style boolean expressions attached to templates in brackets, e.g.
/// [ mn_ == 2*n_ ] or [ A_.in_size == B_.out_size ]. Leaves are integer
/// constants, integer pattern variables, and size properties of formula
/// pattern variables; evaluation receives a name-lookup callback supplied by
/// the expander (which knows the current bindings and can infer sizes).
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TEMPLATES_CONDITION_H
#define SPL_TEMPLATES_CONDITION_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace spl {
namespace cond {

struct Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// A node of a condition expression.
struct Expr {
  enum Kind {
    Num, ///< Integer literal.
    Sym, ///< "n_" or "A_.in_size" / "A_.out_size".
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    EQ,
    NE,
    LT,
    LE,
    GT,
    GE,
    And,
    Or,
    Not,
  } K = Num;

  std::int64_t NumVal = 0;
  std::string Name;
  ExprRef L, R;

  static ExprRef num(std::int64_t V);
  static ExprRef sym(std::string Name);
  static ExprRef unary(Kind K, ExprRef E);
  static ExprRef bin(Kind K, ExprRef L, ExprRef R);
};

/// Resolves a leaf name to its integer value; returns nullopt when the name
/// is unbound or (for size properties) the size cannot be determined.
using Lookup = std::function<std::optional<std::int64_t>(const std::string &)>;

/// Evaluates a condition. Returns nullopt when any leaf is unresolvable or
/// a division/modulo by zero occurs; callers treat that as "does not match".
/// Boolean results use C semantics (nonzero is true); comparisons yield 0/1.
std::optional<std::int64_t> eval(const ExprRef &E, const Lookup &L);

/// Convenience wrapper: true iff eval() succeeds with a nonzero value. A
/// null expression (template without condition) is trivially true.
bool holds(const ExprRef &E, const Lookup &L);

} // namespace cond
} // namespace spl

#endif // SPL_TEMPLATES_CONDITION_H
