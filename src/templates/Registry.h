//===- templates/Registry.h - Template registry -----------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ordered collection of template definitions. Built-in templates are loaded
/// first (as if defined at the beginning of the program); matching proceeds
/// in reverse definition order so later (user) templates override earlier
/// ones, exactly as Section 3.2 of the paper specifies.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TEMPLATES_REGISTRY_H
#define SPL_TEMPLATES_REGISTRY_H

#include "support/Diagnostics.h"
#include "templates/TemplateDef.h"

#include <vector>

namespace spl {
namespace tpl {

/// Returns the SPL source text of the built-in templates (the start-up file
/// of the paper's compiler). Exposed so tools can print it and tests can
/// parse it independently.
const char *builtinTemplatesText();

/// The template registry.
class TemplateRegistry {
public:
  /// An empty registry (no semantics at all; for tests).
  TemplateRegistry() = default;

  /// A registry pre-loaded with the built-in templates. Parsing the built-in
  /// text must succeed; this asserts on failure.
  static TemplateRegistry withBuiltins();

  /// Appends a template; later templates take precedence.
  void add(TemplateDef Def) { Defs.push_back(std::move(Def)); }

  /// Appends several templates in definition order.
  void addAll(std::vector<TemplateDef> NewDefs);

  /// All templates in definition order. Callers match in reverse.
  const std::vector<TemplateDef> &defs() const { return Defs; }

private:
  std::vector<TemplateDef> Defs;
};

} // namespace tpl
} // namespace spl

#endif // SPL_TEMPLATES_REGISTRY_H
