//===- templates/Matcher.h - Pattern matching -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Matching of SPL formulas against template patterns (paper Section 3.2):
/// integer pattern variables ("n_") bind integer parameters, formula pattern
/// variables ("A_") bind whole sub-formulas, and literal structure must
/// agree exactly. Repeated variables must bind consistently.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TEMPLATES_MATCHER_H
#define SPL_TEMPLATES_MATCHER_H

#include "ir/Formula.h"

#include <cstdint>
#include <map>
#include <string>

namespace spl {
namespace tpl {

/// Variable bindings produced by a successful match.
struct Bindings {
  std::map<std::string, std::int64_t> Ints;
  std::map<std::string, FormulaRef> Formulas;
};

/// Matches \p Subject (a concrete formula) against \p Pattern. On success
/// returns true and fills \p B; on failure \p B may hold partial bindings
/// and must be discarded.
bool matchPattern(const FormulaRef &Pattern, const FormulaRef &Subject,
                  Bindings &B);

} // namespace tpl
} // namespace spl

#endif // SPL_TEMPLATES_MATCHER_H
