//===- templates/Registry.cpp - Template registry ---------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "templates/Registry.h"

#include "frontend/Parser.h"

#include <cassert>

using namespace spl;
using namespace spl::tpl;

TemplateRegistry TemplateRegistry::withBuiltins() {
  Diagnostics Diags;
  std::vector<TemplateDef> Builtin =
      parseTemplateString(builtinTemplatesText(), Diags);
  assert(!Diags.hasErrors() && "built-in templates failed to parse");
  (void)Diags;
  TemplateRegistry R;
  R.addAll(std::move(Builtin));
  return R;
}

void TemplateRegistry::addAll(std::vector<TemplateDef> NewDefs) {
  for (TemplateDef &D : NewDefs)
    Defs.push_back(std::move(D));
}
