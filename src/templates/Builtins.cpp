//===- templates/Builtins.cpp - Built-in templates ---------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The start-up template file: SPL-source definitions of every built-in
/// parameterized matrix and matrix operation, processed as if defined at the
/// beginning of each program (paper Section 3.2). Later definitions override
/// earlier ones, so specialized templates (e.g. (F 2)) follow the general
/// case they refine. Explicit matrices (matrix/diagonal/permutation) and the
/// general tensor-product split are native expansion rules in the expander,
/// since their semantics depend on element data rather than integer
/// parameters; a user template matching the same shape still overrides them.
///
//===----------------------------------------------------------------------===//

#include "templates/Registry.h"

using namespace spl;

const char *tpl::builtinTemplatesText() {
  return R"SPL(
; ---------------------------------------------------------------------------
; Parameterized matrices
; ---------------------------------------------------------------------------

; (I n): the identity, a copy loop.
(template (I n_) [n_ >= 1]
  (do $i0 = 0, n_-1
     $out($i0) = $in($i0)
   end))

; (F n): the DFT by definition (the paper's example template).
(template (F n_) [n_ >= 1]
  (do $i0 = 0, n_-1
     $out($i0) = 0
     do $i1 = 0, n_-1
        $r0 = $i0 * $i1
        $f0 = W(n_ $r0) * $in($i1)
        $out($i0) = $out($i0) + $f0
     end
   end))

; (F 1) and (F 2): straight-line special cases (defined after the general
; template so they take precedence).
(template (F 1)
  ($out(0) = $in(0)))

(template (F 2)
  ($f0 = $in(0)
   $f1 = $in(1)
   $out(0) = $f0 + $f1
   $out(1) = $f0 - $f1))

; (L mn n): the stride permutation; with m = mn/n,
; y[p*m + q] = x[q*n + p] for p < n, q < m.
(template (L mn_ n_) [mn_ >= 1 && n_ >= 1 && mn_ % n_ == 0]
  (do $i0 = 0, n_-1
     do $i1 = 0, mn_/n_-1
        $out($i0 * (mn_/n_) + $i1) = $in($i1 * n_ + $i0)
     end
   end))

; (T mn n): the twiddle matrix of Equation 4, a diagonal scaling.
(template (T mn_ n_) [mn_ >= 1 && n_ >= 1 && mn_ % n_ == 0]
  (do $i0 = 0, mn_-1
     $f0 = TW(mn_ n_ $i0) * $in($i0)
     $out($i0) = $f0
   end))

; (WHT n): the Walsh-Hadamard transform by definition.
(template (WHT n_) [n_ >= 1]
  (do $i0 = 0, n_-1
     $out($i0) = 0
     do $i1 = 0, n_-1
        $f0 = WHTE(n_ $i0 $i1) * $in($i1)
        $out($i0) = $out($i0) + $f0
     end
   end))

; (DCT2 n) and (DCT4 n): unnormalized DCTs by definition.
(template (DCT2 n_) [n_ >= 1]
  (do $i0 = 0, n_-1
     $out($i0) = 0
     do $i1 = 0, n_-1
        $f0 = DCT2E(n_ $i0 $i1) * $in($i1)
        $out($i0) = $out($i0) + $f0
     end
   end))

(template (DCT4 n_) [n_ >= 1]
  (do $i0 = 0, n_-1
     $out($i0) = 0
     do $i1 = 0, n_-1
        $f0 = DCT4E(n_ $i0 $i1) * $in($i1)
        $out($i0) = $out($i0) + $f0
     end
   end))

; ---------------------------------------------------------------------------
; Matrix operations
; ---------------------------------------------------------------------------

; (compose A B): y = A (B x) through a temporary vector (the paper's
; compose template).
(template (compose A_ B_) [A_.in_size == B_.out_size]
  (B_($in, $t0, 0, 0, 1, 1)
   A_($t0, $out, 0, 0, 1, 1)))

; (tensor (I n) A): n independent applications of A to consecutive
; sub-vectors (the "parallel" interpretation of Section 2.1).
(template (tensor (I n_) A_) [n_ >= 1]
  (do $i0 = 0, n_-1
     A_($in, $out, $i0 * A_.in_size, $i0 * A_.out_size, 1, 1)
   end))

; (tensor A (I n)): A applied to strided sub-vectors (the "vector"
; interpretation of Section 2.1).
(template (tensor A_ (I n_)) [n_ >= 1]
  (do $i0 = 0, n_-1
     A_($in, $out, $i0, $i0, n_, n_)
   end))

; (direct-sum A B): A on the leading block, B on the trailing block.
(template (direct-sum A_ B_)
  (A_($in, $out, 0, 0, 1, 1)
   B_($in, $out, A_.in_size, A_.out_size, 1, 1)))

; ---------------------------------------------------------------------------
; Fused stages ("the effect of loop fusion", Section 3.2). Defined last, so
; they take precedence over the generic compose template wherever their
; patterns apply. Both avoid a full-size pass and a full-size temporary.
; ---------------------------------------------------------------------------

; (A (x) I_n) . T^{mn}_n: scale each strided group into a small buffer while
; gathering, then apply A to it.
(template (compose (tensor A_ (I n_)) (T mn_ n_))
          [mn_ == A_.in_size * n_ && A_.in_size >= 1]
  (do $i0 = 0, n_-1
     do $i1 = 0, A_.in_size-1
        $t0($i1) = TW(mn_ n_ $i1 * n_ + $i0) * $in($i1 * n_ + $i0)
     end
     A_($t0, $out, 0, $i0, 1, n_)
   end))

; (I_r (x) B) . L^{mn}_r: the stride permutation disappears into the input
; addressing of each B application.
(template (compose (tensor (I r_) B_) (L mn_ r_))
          [mn_ == r_ * B_.in_size]
  (do $i0 = 0, r_-1
     B_($in, $out, $i0, $i0 * B_.out_size, r_, 1)
   end))
)SPL";
}
