//===- templates/Matcher.cpp - Pattern matching -----------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "templates/Matcher.h"

using namespace spl;
using namespace spl::tpl;

namespace {

bool bindInt(Bindings &B, const std::string &Name, std::int64_t Value) {
  auto [It, Inserted] = B.Ints.insert({Name, Value});
  return Inserted || It->second == Value;
}

bool bindFormula(Bindings &B, const std::string &Name,
                 const FormulaRef &Value) {
  auto [It, Inserted] = B.Formulas.insert({Name, Value});
  return Inserted || formulaEqual(It->second, Value);
}

} // namespace

bool tpl::matchPattern(const FormulaRef &Pattern, const FormulaRef &Subject,
                       Bindings &B) {
  assert(Pattern && Subject && "null formula in match");
  assert(!Subject->isPattern() && "subjects must be concrete formulas");

  if (Pattern->kind() == FKind::PatFormula)
    return bindFormula(B, Pattern->varName(), Subject);

  if (Pattern->kind() != Subject->kind())
    return false;

  switch (Pattern->kind()) {
  case FKind::UserParam:
    if (Pattern->varName() != Subject->varName())
      return false;
    break;
  case FKind::GenMatrix:
    if (Pattern->matrixRows() != Subject->matrixRows())
      return false;
    break;
  case FKind::Diagonal:
    if (Pattern->diagElems() != Subject->diagElems())
      return false;
    break;
  case FKind::Permutation:
    if (Pattern->permTargets() != Subject->permTargets())
      return false;
    break;
  default:
    break;
  }

  if (Pattern->params().size() != Subject->params().size())
    return false;
  for (size_t I = 0; I != Pattern->params().size(); ++I) {
    const IntArg &P = Pattern->params()[I];
    std::int64_t V = Subject->param(I);
    if (P.isVar()) {
      if (!bindInt(B, P.Var, V))
        return false;
    } else if (P.Value != V) {
      return false;
    }
  }

  if (Pattern->children().size() != Subject->children().size())
    return false;
  for (size_t I = 0; I != Pattern->children().size(); ++I)
    if (!matchPattern(Pattern->child(I), Subject->child(I), B))
      return false;
  return true;
}
