//===- templates/Condition.cpp - Template conditions -----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "templates/Condition.h"

#include <cassert>

using namespace spl;
using namespace spl::cond;

ExprRef Expr::num(std::int64_t V) {
  auto E = std::make_shared<Expr>();
  E->K = Num;
  E->NumVal = V;
  return E;
}

ExprRef Expr::sym(std::string Name) {
  auto E = std::make_shared<Expr>();
  E->K = Sym;
  E->Name = std::move(Name);
  return E;
}

ExprRef Expr::unary(Kind K, ExprRef Sub) {
  assert((K == Neg || K == Not) && "not a unary operator");
  auto E = std::make_shared<Expr>();
  E->K = K;
  E->L = std::move(Sub);
  return E;
}

ExprRef Expr::bin(Kind K, ExprRef L, ExprRef R) {
  auto E = std::make_shared<Expr>();
  E->K = K;
  E->L = std::move(L);
  E->R = std::move(R);
  return E;
}

std::optional<std::int64_t> cond::eval(const ExprRef &E, const Lookup &L) {
  if (!E)
    return std::nullopt;
  switch (E->K) {
  case Expr::Num:
    return E->NumVal;
  case Expr::Sym:
    return L(E->Name);
  case Expr::Neg: {
    auto V = eval(E->L, L);
    if (!V)
      return std::nullopt;
    return -*V;
  }
  case Expr::Not: {
    auto V = eval(E->L, L);
    if (!V)
      return std::nullopt;
    return *V == 0 ? 1 : 0;
  }
  case Expr::And: {
    // Short-circuit, but an unresolvable left side poisons the result.
    auto A = eval(E->L, L);
    if (!A)
      return std::nullopt;
    if (*A == 0)
      return 0;
    auto B = eval(E->R, L);
    if (!B)
      return std::nullopt;
    return *B != 0 ? 1 : 0;
  }
  case Expr::Or: {
    auto A = eval(E->L, L);
    if (!A)
      return std::nullopt;
    if (*A != 0)
      return 1;
    auto B = eval(E->R, L);
    if (!B)
      return std::nullopt;
    return *B != 0 ? 1 : 0;
  }
  default:
    break;
  }

  auto A = eval(E->L, L), B = eval(E->R, L);
  if (!A || !B)
    return std::nullopt;
  switch (E->K) {
  case Expr::Add:
    return *A + *B;
  case Expr::Sub:
    return *A - *B;
  case Expr::Mul:
    return *A * *B;
  case Expr::Div:
    if (*B == 0)
      return std::nullopt;
    return *A / *B;
  case Expr::Mod:
    if (*B == 0)
      return std::nullopt;
    return *A % *B;
  case Expr::EQ:
    return *A == *B ? 1 : 0;
  case Expr::NE:
    return *A != *B ? 1 : 0;
  case Expr::LT:
    return *A < *B ? 1 : 0;
  case Expr::LE:
    return *A <= *B ? 1 : 0;
  case Expr::GT:
    return *A > *B ? 1 : 0;
  case Expr::GE:
    return *A >= *B ? 1 : 0;
  default:
    assert(false && "unhandled condition kind");
    return std::nullopt;
  }
}

bool cond::holds(const ExprRef &E, const Lookup &L) {
  if (!E)
    return true;
  auto V = eval(E, L);
  return V && *V != 0;
}
