//===- search/PlanCache.h - Persistent plan cache ("wisdom") ----*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent cache of search results, in the spirit of FFTW's "wisdom":
/// the dynamic-programming search times every candidate factorization on the
/// target machine (Section 4), which dominates the cost of producing a
/// library. Recording the winners keyed by everything that influences them —
/// transform, size, datatype, unroll threshold, cost evaluator, and a host
/// fingerprint — lets later runs skip both enumeration and timing entirely.
///
/// The on-disk format is a line-oriented versioned text file
/// (~/.spl_wisdom by default). Each plan line carries an FNV-1a checksum of
/// its payload right after the tag:
///
///   spl-wisdom v3
///   plan 0011223344556677 fft 16 complex B16 vmtime a1b2c3d4 0 1.2e-06 scalar | F
///
/// (v3 added the codegen-variant token — scalar|vector — before the '|';
/// v2 files still load, reading back as scalar.)
///
/// Robustness rules: an unknown version header invalidates the whole file;
/// malformed or checksum-failing plan lines (bit flips, truncation) are
/// skipped with a warning and dropped for good by the next save(); entries
/// whose host fingerprint differs from the running machine are carried
/// along (so a wisdom file can roam between machines) but never served as
/// hits. save() merges with the file already on disk, in-memory entries
/// winning, so concurrent tools lose nothing but a race's duplicates.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SEARCH_PLANCACHE_H
#define SPL_SEARCH_PLANCACHE_H

#include "codegen/VectorISA.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace spl {
namespace search {

/// Everything that determines whether a recorded plan is reusable.
struct PlanKey {
  std::string Transform;            ///< "fft", "wht", ...
  std::int64_t Size = 0;            ///< Transform size N.
  std::string Datatype = "complex"; ///< The #datatype candidates compile as.
  std::int64_t UnrollThreshold = 0; ///< The -B value in effect.
  std::string Evaluator;            ///< "opcount" | "vmtime" | "nativetime".
  std::string Host;                 ///< PlanCache::hostFingerprint().

  /// Canonical single-token-per-field key text, e.g.
  /// "fft 16 complex B16 vmtime a1b2c3d4e5f60708".
  std::string str() const;
};

/// One recorded plan: the winning formula (Cambridge Polish text, parse it
/// back with parseFormulaString), its measured cost, and the codegen
/// variant that achieved it (v3; v2 files read back as Scalar). A Vector
/// entry loaded on a host whose ISA probe reports scalar-only is still
/// valid — consumers demote it to Scalar instead of re-searching.
struct PlanEntry {
  std::string FormulaText;
  double Cost = 0;
  codegen::CodegenVariant Variant = codegen::CodegenVariant::Scalar;
};

/// The persistent plan store. Thread-safe: the parallel search queries and
/// records plans from worker threads.
class PlanCache {
public:
  explicit PlanCache(Diagnostics &Diags) : Diags(Diags) {}

  /// Fingerprint of the running machine (FNV-1a over CPU model, OS and
  /// compiler), hex text. Computed once and cached.
  static const std::string &hostFingerprint();

  /// $SPL_WISDOM if set, else $HOME/.spl_wisdom, else ".spl_wisdom".
  static std::string defaultPath();

  /// Merges the entries of \p Path into memory. A missing file is not an
  /// error (returns true, loads nothing); unreadable or wrong-version files
  /// warn and return false; malformed lines warn and are skipped.
  bool load(const std::string &Path);

  /// Writes every entry to \p Path, first merging with whatever the file
  /// currently holds (disk entries survive unless memory has the same key).
  /// Returns false (with a warning) when the file cannot be written.
  bool save(const std::string &Path) const;

  /// The recorded keep-best list for \p K, best first; nullopt on miss.
  /// Hits and misses are counted for the summary.
  std::optional<std::vector<PlanEntry>> lookup(const PlanKey &K) const;

  /// Records (replaces) the keep-best list for \p K.
  void insert(const PlanKey &K, std::vector<PlanEntry> Entries);

  /// Number of distinct keys currently held.
  size_t size() const;

  /// Lookup / persistence counters for the end-of-run summary.
  struct Stats {
    size_t Hits = 0;     ///< lookup() returned a plan list.
    size_t Misses = 0;   ///< lookup() found nothing.
    size_t Inserts = 0;  ///< insert() calls.
    size_t Loaded = 0;   ///< Plan lines accepted by load().
    size_t Skipped = 0;  ///< Malformed plan lines skipped by load().
  };
  Stats stats() const;

  /// One-line human summary, e.g. "wisdom: 7 hits, 3 misses, 12 plans held".
  std::string summary() const;

  /// Emits summary() as a note through the diagnostics engine.
  void reportSummary() const;

private:
  bool loadLocked(const std::string &Path,
                  std::map<std::string, std::vector<PlanEntry>> &Into,
                  bool CountStats) const;

  Diagnostics &Diags;
  mutable std::mutex M;
  std::map<std::string, std::vector<PlanEntry>> Plans;
  mutable Stats S;
};

} // namespace search
} // namespace spl

#endif // SPL_SEARCH_PLANCACHE_H
