//===- search/DPSearch.h - Dynamic-programming search -----------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search engine of Section 4: dynamic programming over FFT
/// factorizations. Small sizes (2..MaxLeaf) are searched exhaustively over
/// Equation-10 factorizations with fully unrolled straight-line code; large
/// sizes use the right-most binary Cooley-Tukey factorization with r <=
/// MaxLeaf, keeping the best k (k=3 in the paper) formulas per size because
/// the best formula for one size is not necessarily the best sub-formula
/// for a larger one.
///
/// Two scalability additions over the paper's engine:
///  * candidate evaluation fans out over a worker pool (SearchOptions::
///    Threads) — candidates of one size are independent, and the winner is
///    picked by a deterministic first-minimum scan, so any thread count
///    returns exactly the serial result for deterministic evaluators;
///  * results can be recorded in / served from a persistent PlanCache
///    ("wisdom"), letting warm runs skip enumeration and timing entirely.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SEARCH_DPSEARCH_H
#define SPL_SEARCH_DPSEARCH_H

#include "search/Evaluator.h"
#include "search/PlanCache.h"
#include "support/ThreadPool.h"

#include <map>
#include <memory>
#include <vector>

namespace spl {
namespace search {

/// Search configuration.
struct SearchOptions {
  /// Largest straight-line sub-transform (the paper uses 64).
  std::int64_t MaxLeaf = 64;

  /// How many best formulas to keep per large size (paper: 3).
  int KeepBest = 3;

  /// Include rule variants (DIF / parallel / vector splits) among the
  /// small-size candidates in addition to Equation 10.
  bool UseVariants = false;

  /// Worker threads for candidate evaluation (1: serial). Timed evaluators
  /// still serialize the measurement itself; with them, extra threads
  /// overlap candidate compilation with timing.
  int Threads = 1;

  /// Transform family name used in wisdom cache keys.
  std::string Transform = "fft";

  /// Wall-clock budget for the whole search (default: unbounded). When it
  /// expires mid-search the engine stops evaluating, scores the remaining
  /// candidates as infinite cost, and returns the best formula found so far
  /// — it never returns "no formula" merely because time ran out. The first
  /// expiry observed bumps `search.deadline_exceeded`, and truncated result
  /// sets are not recorded into wisdom.
  support::Deadline Deadline;
};

/// One search result.
struct Candidate {
  FormulaRef Formula;
  double Cost = 0;

  /// The codegen variant the cost was measured with (Scalar unless the
  /// evaluator ran a variant search and the vector kernel won). Recorded
  /// in wisdom (v3) and honored by the runtime planner's backend choice.
  codegen::CodegenVariant Variant = codegen::CodegenVariant::Scalar;
};

/// The dynamic-programming search engine.
class DPSearch {
public:
  DPSearch(Evaluator &Eval, Diagnostics &Diags,
           SearchOptions Opts = SearchOptions(), PlanCache *Wisdom = nullptr)
      : Eval(Eval), Diags(Diags), Opts(Opts), Wisdom(Wisdom) {}

  /// Attaches (or detaches, with null) a persistent plan cache.
  void setWisdom(PlanCache *W) { Wisdom = W; }

  /// Exhaustively searches sizes 2,4,...,MaxN (powers of two, MaxN <=
  /// MaxLeaf) and returns the winner per size. Results are cached for use
  /// by searchLarge.
  std::map<std::int64_t, Candidate> searchSmall(std::int64_t MaxN);

  /// Searches size N > MaxLeaf with the right-most binary strategy; returns
  /// up to KeepBest candidates, best first. Small sizes must have been
  /// searched first (searchSmall(MaxLeaf)); missing entries are filled in
  /// on demand.
  std::vector<Candidate> searchLarge(std::int64_t N);

  /// The best known formula for any size (small winner or large keep-best
  /// head). Runs searches on demand. Sizes up to MaxLeaf may be any
  /// integer >= 2 (mixed radix included); larger sizes must be powers of
  /// two (the right-most binary strategy).
  std::optional<Candidate> best(std::int64_t N);

  /// The wisdom key this search uses for size \p N (exposed for tests and
  /// tools that want to inspect or pre-seed the cache).
  PlanKey wisdomKey(std::int64_t N) const;

private:
  Evaluator &Eval;
  Diagnostics &Diags;
  SearchOptions Opts;
  PlanCache *Wisdom = nullptr;
  std::unique_ptr<ThreadPool> Pool; ///< Created on first parallel batch.

  std::map<std::int64_t, Candidate> SmallBest;
  std::map<std::int64_t, std::vector<Candidate>> LargeBest;

  std::optional<Candidate> searchSmallOne(std::int64_t N);
  const std::vector<Candidate> &largeEntries(std::int64_t N);

  /// Records (once per search) that the deadline cut evaluation short.
  void noteDeadlineOnce();
  bool DeadlineNoted = false;

  /// Costs every candidate, fanning out over the pool when configured.
  /// Result i corresponds to Cands[i]; nullopt where evaluation failed.
  std::vector<std::optional<VariantCost>>
  costAll(const std::vector<FormulaRef> &Cands);

  /// Parses a wisdom entry back into a candidate; warns and returns nullopt
  /// when the recorded text does not round-trip to a size-N formula.
  std::optional<Candidate> parseWisdomEntry(const PlanEntry &E, std::int64_t N);

  /// Cached keep-best list for size \p N, if wisdom holds a usable one.
  std::optional<std::vector<Candidate>> entriesFromWisdom(std::int64_t N);

  void recordWisdom(std::int64_t N, const std::vector<Candidate> &Entries);
};

} // namespace search
} // namespace spl

#endif // SPL_SEARCH_DPSEARCH_H
