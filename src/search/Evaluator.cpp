//===- search/Evaluator.cpp - Candidate cost evaluation -----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/Evaluator.h"

#include "perf/KernelRunner.h"
#include "perf/NativeCompile.h"
#include "support/FaultInjection.h"
#include "support/Subprocess.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"
#include "vm/Executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <random>
#include <thread>

using namespace spl;
using namespace spl::search;

Evaluator::Evaluator(Diagnostics &Diags, driver::CompilerOptions CompOpts)
    : Diags(Diags), CompOpts(std::move(CompOpts)),
      TimingTimeoutSeconds(envTimeoutSeconds("SPL_EVAL_TIMEOUT_MS", 10.0)) {}

std::optional<Compiled> Evaluator::compile(const FormulaRef &F) {
  driver::Compiler Comp(Diags);
  DirectiveState Dirs;
  Dirs.SubName = "cand";
  Dirs.Datatype = Datatype;
  Dirs.CodeType = "real";
  Dirs.Language = "c";
  driver::CompilerOptions Opts = CompOpts;
  // Candidates are costed from i-code (or native-compiled with run-time
  // tables); rendering inline-table C text here would dominate the search.
  Opts.EmitCode = false;
  auto Unit = Comp.compileFormula(F, Dirs, Opts);
  if (!Unit)
    return std::nullopt;
  return Compiled{std::move(Unit->Final), std::move(Unit->Code)};
}

std::optional<double> Evaluator::cost(const FormulaRef &F) {
  if (DL.expired())
    return std::numeric_limits<double>::infinity();
  NumEvals.fetch_add(1, std::memory_order_relaxed);
  static telemetry::Counter &Evals =
      telemetry::counter("search.candidates_evaluated");
  Evals.add();
  auto C = compile(F);
  if (!C)
    return std::nullopt;
  if (!isTimed())
    return costCompiled(*C);
  // Native compilation inside NativeTimeEvaluator::costCompiled is also
  // serialized here; that is deliberate — cc processes competing for cores
  // would perturb the measurement of whoever is currently timing.
  std::lock_guard<std::mutex> Lock(TimingMutex);
  return costCompiled(*C);
}

std::optional<VariantCost> Evaluator::costWithVariant(const FormulaRef &F) {
  if (DL.expired())
    return VariantCost{std::numeric_limits<double>::infinity(),
                       codegen::CodegenVariant::Scalar};
  NumEvals.fetch_add(1, std::memory_order_relaxed);
  static telemetry::Counter &Evals =
      telemetry::counter("search.candidates_evaluated");
  Evals.add();
  auto C = compile(F);
  if (!C)
    return std::nullopt;
  if (!isTimed())
    return costVariantsCompiled(*C);
  std::lock_guard<std::mutex> Lock(TimingMutex);
  return costVariantsCompiled(*C);
}

std::optional<VariantCost> Evaluator::costVariantsCompiled(const Compiled &C) {
  auto V = costCompiled(C);
  if (!V)
    return std::nullopt;
  return VariantCost{*V, codegen::CodegenVariant::Scalar};
}

namespace {

/// Runs \p Fn on a watchdog thread with a wall-clock deadline. On timeout
/// the thread is detached (it finishes — or not — on its own; Fn must own
/// its captures) and nullopt is returned. A non-positive deadline runs
/// \p Fn inline.
std::optional<double> runWithDeadline(const std::function<double()> &Fn,
                                      double Seconds) {
  if (Seconds <= 0)
    return Fn();
  struct Shared {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    double Value = 0;
  };
  auto S = std::make_shared<Shared>();
  std::thread T([S, Fn] {
    double V = Fn();
    std::lock_guard<std::mutex> Lock(S->M);
    S->Value = V;
    S->Done = true;
    S->CV.notify_all();
  });
  std::unique_lock<std::mutex> Lock(S->M);
  bool Finished = S->CV.wait_for(Lock, std::chrono::duration<double>(Seconds),
                                 [&] { return S->Done; });
  Lock.unlock();
  if (Finished) {
    T.join();
    return S->Value;
  }
  T.detach();
  return std::nullopt;
}

} // namespace

std::optional<double> Evaluator::timedCost(std::function<double()> Fn,
                                           const char *What) {
  for (int Attempt = 0; Attempt <= TimingRetries; ++Attempt) {
    // Each attempt is capped by the *remaining* caller budget, not just the
    // fixed SPL_EVAL_TIMEOUT_MS — otherwise a retry could double the
    // worst-case candidate time for a caller that is already out of time.
    const double Remaining = DL.remainingSeconds();
    if (Remaining <= 0) {
      Diags.warning(SourceLoc(),
                    std::string(What) + " skipped: the search deadline is "
                                        "spent; scoring the candidate as "
                                        "infinite cost");
      return std::numeric_limits<double>::infinity();
    }
    double Budget = TimingTimeoutSeconds;
    if (std::isfinite(Remaining))
      Budget = Budget > 0 ? std::min(Budget, Remaining) : Remaining;
    std::function<double()> Run = Fn;
    if (fault::at("eval-hang")) {
      // Sleep past the deadline, then fall through to the real measurement
      // so the abandoned thread terminates on its own.
      Run = [Fn, Budget]() -> double {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(Budget > 0 ? Budget + 1.0 : 1.0));
        return Fn();
      };
    }
    auto V = runWithDeadline(Run, Budget);
    if (V)
      return V;
    Diags.warning(SourceLoc(),
                  std::string(What) + " run exceeded the timing budget (" +
                      std::to_string(Budget) +
                      " s, SPL_EVAL_TIMEOUT_MS); attempt " +
                      std::to_string(Attempt + 1) + " of " +
                      std::to_string(TimingRetries + 1));
  }
  Diags.warning(SourceLoc(), std::string(What) +
                                 " timing budget exhausted; scoring the "
                                 "candidate as infinite cost");
  return std::numeric_limits<double>::infinity();
}

std::optional<double> OpCountEvaluator::costCompiled(const Compiled &C) {
  return static_cast<double>(C.Final.dynamicOpCount());
}

namespace {

std::vector<double> randomRealBuffer(size_t N) {
  std::mt19937 Gen(7);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<double> V(N);
  for (double &X : V)
    X = Dist(Gen);
  return V;
}

} // namespace

std::optional<double> VMTimeEvaluator::costCompiled(const Compiled &C) {
  // The closure owns a copy of the program: if it is abandoned on timeout,
  // it must not reference this call's stack.
  auto Prog = std::make_shared<icode::Program>(C.Final);
  const int Reps = Repeats;
  return timedCost(
      [Prog, Reps]() -> double {
        vm::Executor VM(*Prog);
        std::vector<double> In =
            randomRealBuffer(static_cast<size_t>(VM.inputLen()));
        std::vector<double> Out(static_cast<size_t>(VM.outputLen()), 0.0);
        return timeBestOf([&] { VM.runReal(In.data(), Out.data()); }, Reps);
      },
      "vm timing");
}

bool NativeTimeEvaluator::available() {
  return perf::NativeModule::available();
}

std::optional<double>
NativeTimeEvaluator::timeVariant(const Compiled &C,
                                 codegen::CodegenVariant Variant) {
  perf::KernelError Err;
  perf::KernelBuildOptions BO;
  BO.Variant = Variant;
  // The compiler subprocess is bounded by the remaining search budget, not
  // just the fixed SPL_CC_TIMEOUT_MS.
  BO.Deadline = DL;
  auto Built = perf::CompiledKernel::create(C.Final, &Err, BO);
  if (!Built) {
    if (Variant == codegen::CodegenVariant::Vector) {
      // A vector build that fails is a lost race, not a search failure:
      // the scalar variant still stands.
      Diags.warning(SourceLoc(),
                    "vector native compilation failed (" + Err.str() +
                        "); candidate scored scalar-only");
      return std::nullopt;
    }
    Diags.error(SourceLoc(), "native compilation failed: " + Err.str());
    return std::nullopt;
  }
  // Shared ownership keeps the module loaded for a timing thread abandoned
  // by the watchdog. A vector call computes lanes() transforms, so its
  // per-call time is divided down to per-transform cost — the unit the DP
  // compares across variants.
  std::shared_ptr<perf::CompiledKernel> K(std::move(Built));
  const int Reps = Repeats;
  const double Lanes = K->lanes();
  return timedCost(
      [K, Reps, Lanes]() -> double { return K->time(Reps) / Lanes; },
      "native timing");
}

std::optional<double> NativeTimeEvaluator::costCompiled(const Compiled &C) {
  return timeVariant(C, codegen::CodegenVariant::Scalar);
}

std::optional<VariantCost>
NativeTimeEvaluator::costVariantsCompiled(const Compiled &C) {
  auto Scalar = timeVariant(C, codegen::CodegenVariant::Scalar);
  if (!Scalar)
    return std::nullopt;
  if (!variantSearch() || !codegen::vectorBackendAvailable())
    return VariantCost{*Scalar, codegen::CodegenVariant::Scalar};

  static telemetry::Counter &ScalarWins =
      telemetry::counter("search.scalar_wins");
  static telemetry::Counter &VectorWins =
      telemetry::counter("search.vector_wins");
  auto Vector = timeVariant(C, codegen::CodegenVariant::Vector);
  if (!Vector) {
    ScalarWins.add();
    return VariantCost{*Scalar, codegen::CodegenVariant::Scalar};
  }
  if (*Vector < *Scalar) {
    VectorWins.add();
    return VariantCost{*Vector, codegen::CodegenVariant::Vector};
  }
  ScalarWins.add();
  return VariantCost{*Scalar, codegen::CodegenVariant::Scalar};
}
