//===- search/Evaluator.cpp - Candidate cost evaluation -----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/Evaluator.h"

#include "perf/KernelRunner.h"
#include "perf/NativeCompile.h"
#include "support/Timer.h"
#include "vm/Executor.h"

#include <random>

using namespace spl;
using namespace spl::search;

std::optional<Compiled> Evaluator::compile(const FormulaRef &F) {
  driver::Compiler Comp(Diags);
  DirectiveState Dirs;
  Dirs.SubName = "cand";
  Dirs.Datatype = Datatype;
  Dirs.CodeType = "real";
  Dirs.Language = "c";
  driver::CompilerOptions Opts = CompOpts;
  // Candidates are costed from i-code (or native-compiled with run-time
  // tables); rendering inline-table C text here would dominate the search.
  Opts.EmitCode = false;
  auto Unit = Comp.compileFormula(F, Dirs, Opts);
  if (!Unit)
    return std::nullopt;
  return Compiled{std::move(Unit->Final), std::move(Unit->Code)};
}

std::optional<double> Evaluator::cost(const FormulaRef &F) {
  NumEvals.fetch_add(1, std::memory_order_relaxed);
  auto C = compile(F);
  if (!C)
    return std::nullopt;
  if (!isTimed())
    return costCompiled(*C);
  // Native compilation inside NativeTimeEvaluator::costCompiled is also
  // serialized here; that is deliberate — cc processes competing for cores
  // would perturb the measurement of whoever is currently timing.
  std::lock_guard<std::mutex> Lock(TimingMutex);
  return costCompiled(*C);
}

std::optional<double> OpCountEvaluator::costCompiled(const Compiled &C) {
  return static_cast<double>(C.Final.dynamicOpCount());
}

namespace {

std::vector<double> randomRealBuffer(size_t N) {
  std::mt19937 Gen(7);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<double> V(N);
  for (double &X : V)
    X = Dist(Gen);
  return V;
}

} // namespace

std::optional<double> VMTimeEvaluator::costCompiled(const Compiled &C) {
  vm::Executor VM(C.Final);
  std::vector<double> In = randomRealBuffer(VM.inputLen());
  std::vector<double> Out(VM.outputLen(), 0.0);
  return timeBestOf([&] { VM.runReal(In.data(), Out.data()); }, Repeats);
}

bool NativeTimeEvaluator::available() {
  return perf::NativeModule::available();
}

std::optional<double> NativeTimeEvaluator::costCompiled(const Compiled &C) {
  std::string Err;
  auto Kernel = perf::CompiledKernel::create(C.Final, &Err);
  if (!Kernel) {
    Diags.error(SourceLoc(), "native compilation failed: " + Err);
    return std::nullopt;
  }
  return Kernel->time(Repeats);
}
