//===- search/PlanCache.cpp - Persistent plan cache ("wisdom") ----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/PlanCache.h"

#include "support/FaultInjection.h"
#include "support/FileLock.h"
#include "support/HostInfo.h"
#include "support/StrUtil.h"
#include "telemetry/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace spl;
using namespace spl::search;

namespace {

// v2 added a per-line FNV-1a checksum between the "plan" tag and the
// payload; v1 files (no checksums) are ignored with a warning — wisdom is
// a cache, so dropping an old file only costs a re-search. v3 added the
// codegen-variant token between the cost and the '|' separator; v2 files
// (no variant token) still load, reading back as scalar.
constexpr const char *VersionHeader = "spl-wisdom v3";
constexpr const char *V2VersionHeader = "spl-wisdom v2";

std::string formatCost(double Cost) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Cost);
  return Buf;
}

} // namespace

std::string PlanKey::str() const {
  std::ostringstream SS;
  SS << Transform << ' ' << Size << ' ' << Datatype << " B" << UnrollThreshold
     << ' ' << Evaluator << ' ' << Host;
  return SS.str();
}

const std::string &PlanCache::hostFingerprint() {
  // Shared recipe (support::HostInfo::fingerprint), so wisdom and the
  // kernel cache invalidate together when the host changes.
  return HostInfo::fingerprint();
}

std::string PlanCache::defaultPath() {
  if (const char *Env = std::getenv("SPL_WISDOM"))
    if (*Env)
      return Env;
  if (const char *Home = std::getenv("HOME"))
    if (*Home)
      return std::string(Home) + "/.spl_wisdom";
  return ".spl_wisdom";
}

bool PlanCache::loadLocked(
    const std::string &Path,
    std::map<std::string, std::vector<PlanEntry>> &Into,
    bool CountStats) const {
  std::ifstream In(Path);
  if (!In)
    return true; // Missing wisdom is a cold start, not an error.

  std::string Line;
  if (!std::getline(In, Line) ||
      (Line != VersionHeader && Line != V2VersionHeader)) {
    Diags.warning(SourceLoc(), "wisdom file '" + Path +
                                   "' has an unrecognized version header; "
                                   "ignoring it");
    return false;
  }

  unsigned LineNo = 1;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;

    auto Reject = [&](const char *Why) {
      if (CountStats) {
        ++S.Skipped;
        static telemetry::Counter &Corrupt =
            telemetry::counter("wisdom.corrupt_lines");
        Corrupt.add();
      }
      Diags.warning(SourceLoc(), "wisdom file '" + Path + "' line " +
                                     std::to_string(LineNo) + ": " + Why +
                                     "; skipping entry");
    };

    std::istringstream SS(Line);
    std::string Tag, Checksum, Transform, Datatype, Unroll, Evaluator, Host,
        Sep;
    std::int64_t Size = 0;
    int Index = 0;
    double Cost = 0;
    if (!(SS >> Tag) || Tag != "plan") {
      Reject("expected a 'plan' record");
      continue;
    }
    if (!(SS >> Checksum)) {
      Reject("missing line checksum");
      continue;
    }
    // Everything after "plan <checksum> " is the checksummed payload.
    std::string Payload;
    std::getline(SS, Payload);
    if (!Payload.empty() && Payload.front() == ' ')
      Payload.erase(0, 1);
    if (fnv1aHex(Payload) != Checksum) {
      Reject("line checksum mismatch (corrupt or truncated entry)");
      continue;
    }
    SS.clear();
    SS.str(Payload);
    if (!(SS >> Transform >> Size >> Datatype >> Unroll >> Evaluator >> Host >>
          Index >> Cost >> Sep)) {
      Reject("malformed plan fields");
      continue;
    }
    // v3 carries a variant token before the '|'; v2 goes straight to it.
    codegen::CodegenVariant Variant = codegen::CodegenVariant::Scalar;
    if (Sep != "|") {
      if (!codegen::parseVariant(Sep, Variant) || !(SS >> Sep) || Sep != "|") {
        Reject("malformed plan fields");
        continue;
      }
    }
    if (Size < 2 || Unroll.size() < 2 || Unroll[0] != 'B' || Index < 0 ||
        Index >= 64 || !(Cost >= 0)) {
      Reject("plan fields out of range");
      continue;
    }
    std::string Formula;
    std::getline(SS, Formula);
    if (!Formula.empty() && Formula.front() == ' ')
      Formula.erase(0, 1);
    if (Formula.empty()) {
      Reject("empty formula text");
      continue;
    }

    std::string Key = Transform + ' ' + std::to_string(Size) + ' ' + Datatype +
                      ' ' + Unroll + ' ' + Evaluator + ' ' + Host;
    auto &Entries = Into[Key];
    if (Entries.size() <= static_cast<size_t>(Index))
      Entries.resize(Index + 1);
    Entries[static_cast<size_t>(Index)] = {Formula, Cost, Variant};
    if (CountStats) {
      ++S.Loaded;
      static telemetry::Counter &Loaded = telemetry::counter("wisdom.loaded");
      Loaded.add();
    }
  }
  return true;
}

bool PlanCache::load(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(M);
  if (fault::at("wisdom-load")) {
    Diags.warning(SourceLoc(), "cannot read wisdom file '" + Path + "' (" +
                                   fault::describe("wisdom-load") + ")");
    return false;
  }
  std::map<std::string, std::vector<PlanEntry>> Incoming;
  // Shared lock: don't read a file mid-merge-rename from another process.
  FileLock FL(Path + ".lock", LOCK_SH);
  if (!loadLocked(Path, Incoming, /*CountStats=*/true))
    return false;
  // Incoming entries fill gaps; entries already in memory win.
  for (auto &[Key, Entries] : Incoming)
    Plans.emplace(Key, std::move(Entries));
  return true;
}

bool PlanCache::save(const std::string &Path) const {
  std::lock_guard<std::mutex> Lock(M);
  if (fault::at("wisdom-save")) {
    Diags.warning(SourceLoc(), "cannot write wisdom file '" + Path + "' (" +
                                   fault::describe("wisdom-save") + ")");
    return false;
  }

  // Exclusive lock on <wisdom>.lock across the whole read-merge-write-rename
  // window: without it two processes saving concurrently can both merge
  // against the same on-disk state and the second rename silently drops the
  // first writer's new entries (spld, splrun, and tests all cooperate
  // through the same lock file).
  FileLock FL(Path + ".lock", LOCK_EX);

  // Merge-on-save: what is on disk survives unless we hold the same key.
  std::map<std::string, std::vector<PlanEntry>> Merged;
  // Corrupt/alien files simply contribute nothing; their lines were already
  // counted (if at all) by an explicit load(), so keep stats untouched here.
  loadLocked(Path, Merged, /*CountStats=*/false);
  for (const auto &[Key, Entries] : Plans)
    Merged[Key] = Entries;

  std::string TmpPath = Path + ".tmp";
  {
    std::ofstream Out(TmpPath, std::ios::trunc);
    if (!Out) {
      Diags.warning(SourceLoc(), "cannot write wisdom file '" + Path + "'");
      return false;
    }
    Out << VersionHeader << '\n';
    for (const auto &[Key, Entries] : Merged)
      for (size_t I = 0; I != Entries.size(); ++I) {
        if (Entries[I].FormulaText.empty())
          continue; // A gap left by a sparse/duplicated index on load.
        std::string Payload = Key + ' ' + std::to_string(I) + ' ' +
                              formatCost(Entries[I].Cost) + ' ' +
                              codegen::variantName(Entries[I].Variant) +
                              " | " + Entries[I].FormulaText;
        Out << "plan " << fnv1aHex(Payload) << ' ' << Payload << '\n';
      }
    if (!Out.good()) {
      Diags.warning(SourceLoc(), "error writing wisdom file '" + Path + "'");
      return false;
    }
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    Diags.warning(SourceLoc(), "cannot replace wisdom file '" + Path + "'");
    std::remove(TmpPath.c_str());
    return false;
  }
  return true;
}

std::optional<std::vector<PlanEntry>> PlanCache::lookup(const PlanKey &K) const {
  std::lock_guard<std::mutex> Lock(M);
  static telemetry::Counter &Hits = telemetry::counter("wisdom.hits");
  static telemetry::Counter &Misses = telemetry::counter("wisdom.misses");
  auto Hit = Plans.find(K.str());
  if (Hit == Plans.end() || Hit->second.empty()) {
    ++S.Misses;
    Misses.add();
    return std::nullopt;
  }
  ++S.Hits;
  Hits.add();
  return Hit->second;
}

void PlanCache::insert(const PlanKey &K, std::vector<PlanEntry> Entries) {
  std::lock_guard<std::mutex> Lock(M);
  ++S.Inserts;
  static telemetry::Counter &Inserts = telemetry::counter("wisdom.inserts");
  Inserts.add();
  Plans[K.str()] = std::move(Entries);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Plans.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

std::string PlanCache::summary() const {
  std::lock_guard<std::mutex> Lock(M);
  std::ostringstream SS;
  SS << "wisdom: " << S.Hits << " hit" << (S.Hits == 1 ? "" : "s") << ", "
     << S.Misses << " miss" << (S.Misses == 1 ? "" : "es") << ", "
     << Plans.size() << " plan key" << (Plans.size() == 1 ? "" : "s")
     << " held";
  if (S.Skipped)
    SS << ", " << S.Skipped << " corrupt line"
       << (S.Skipped == 1 ? "" : "s") << " skipped";
  return SS.str();
}

void PlanCache::reportSummary() const {
  Diags.note(SourceLoc(), summary());
}
