//===- search/DPSearch.cpp - Dynamic-programming search -----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/DPSearch.h"

#include "gen/Enumerate.h"
#include "gen/Rules.h"
#include "ir/Builder.h"

#include <algorithm>

using namespace spl;
using namespace spl::search;

std::optional<Candidate> DPSearch::searchSmallOne(std::int64_t N) {
  auto Hit = SmallBest.find(N);
  if (Hit != SmallBest.end())
    return Hit->second;

  std::vector<FormulaRef> Cands;
  if (N == 2) {
    Cands.push_back(makeDFT(2));
  } else {
    // All Equation-10 factorizations with the DP winners as leaves.
    for (const auto &Comp : gen::factorCompositions(N)) {
      if (Comp.size() < 2)
        continue;
      std::vector<std::pair<std::int64_t, FormulaRef>> Factors;
      bool Ok = true;
      for (std::int64_t Ni : Comp) {
        auto Sub = searchSmallOne(Ni);
        if (!Sub) {
          Ok = false;
          break;
        }
        Factors.push_back({Ni, Sub->Formula});
      }
      if (Ok)
        Cands.push_back(gen::ruleEq10(Factors));
    }
    if (Opts.UseVariants) {
      for (std::int64_t R = 2; R * 2 <= N; R *= 2) {
        std::int64_t S = N / R;
        auto FR = searchSmallOne(R), FS = searchSmallOne(S);
        if (!FR || !FS)
          continue;
        Cands.push_back(
            gen::ruleCooleyTukeyDIF(R, S, FR->Formula, FS->Formula));
        Cands.push_back(
            gen::ruleCooleyTukeyVector(R, S, FR->Formula, FS->Formula));
        Cands.push_back(
            gen::ruleCooleyTukeyParallel(R, S, FR->Formula, FS->Formula));
      }
    }
    // The DFT by definition is also a legal (slow) candidate for tiny
    // sizes, and the only one for primes (this makes mixed-radix sizes like
    // 12 = 3*4 searchable: factorCompositions handles any composite).
    if (N <= 4 || Cands.empty())
      Cands.push_back(makeDFT(N));
  }

  std::optional<Candidate> Best;
  for (const FormulaRef &F : Cands) {
    auto Cost = Eval.cost(F);
    if (!Cost)
      continue;
    if (!Best || *Cost < Best->Cost)
      Best = Candidate{F, *Cost};
  }
  if (!Best) {
    Diags.error(SourceLoc(), "search found no viable formula for size " +
                                 std::to_string(N));
    return std::nullopt;
  }
  SmallBest[N] = *Best;
  return Best;
}

std::map<std::int64_t, Candidate> DPSearch::searchSmall(std::int64_t MaxN) {
  assert(MaxN >= 2 && (MaxN & (MaxN - 1)) == 0 && MaxN <= Opts.MaxLeaf &&
         "small search covers power-of-two sizes up to MaxLeaf");
  std::map<std::int64_t, Candidate> Out;
  for (std::int64_t N = 2; N <= MaxN; N *= 2) {
    auto Best = searchSmallOne(N);
    if (Best)
      Out[N] = *Best;
  }
  return Out;
}

const std::vector<Candidate> &DPSearch::largeEntries(std::int64_t N) {
  auto Hit = LargeBest.find(N);
  if (Hit != LargeBest.end())
    return Hit->second;

  std::vector<Candidate> Entries;
  if (N <= Opts.MaxLeaf) {
    if (auto Small = searchSmallOne(N))
      Entries.push_back(*Small);
  } else {
    // Right-most binary factorization: F_N = (F_r (x) I_s) T (I_r (x) F_s)
    // L with r <= MaxLeaf a straight-line module and s factored further.
    std::vector<Candidate> Cands;
    for (std::int64_t R = 2; R <= Opts.MaxLeaf && R * 2 <= N; R *= 2) {
      std::int64_t S = N / R;
      auto FR = searchSmallOne(R);
      if (!FR)
        continue;
      for (const Candidate &FS : largeEntries(S)) {
        FormulaRef F =
            gen::ruleCooleyTukeyDIT(R, S, FR->Formula, FS.Formula);
        auto Cost = Eval.cost(F);
        if (Cost)
          Cands.push_back({F, *Cost});
      }
    }
    std::sort(Cands.begin(), Cands.end(),
              [](const Candidate &A, const Candidate &B) {
                return A.Cost < B.Cost;
              });
    if (Cands.size() > static_cast<size_t>(Opts.KeepBest))
      Cands.resize(Opts.KeepBest);
    Entries = std::move(Cands);
  }

  if (Entries.empty())
    Diags.error(SourceLoc(), "search found no viable formula for size " +
                                 std::to_string(N));
  return LargeBest.emplace(N, std::move(Entries)).first->second;
}

std::vector<Candidate> DPSearch::searchLarge(std::int64_t N) {
  assert(N >= 2 && (N & (N - 1)) == 0 && "size must be a power of two");
  return largeEntries(N);
}

std::optional<Candidate> DPSearch::best(std::int64_t N) {
  if (N <= Opts.MaxLeaf)
    return searchSmallOne(N);
  const auto &Entries = largeEntries(N);
  if (Entries.empty())
    return std::nullopt;
  return Entries.front();
}
