//===- search/DPSearch.cpp - Dynamic-programming search -----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/DPSearch.h"

#include "frontend/Parser.h"
#include "gen/Enumerate.h"
#include "gen/Rules.h"
#include "ir/Builder.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <limits>

using namespace spl;
using namespace spl::search;

PlanKey DPSearch::wisdomKey(std::int64_t N) const {
  PlanKey K;
  // The search-space shape (leaf bound, keep-k, variant rules) changes what
  // the winner can be, so it is folded into the transform token.
  K.Transform = Opts.Transform + "-L" + std::to_string(Opts.MaxLeaf) + "-k" +
                std::to_string(Opts.KeepBest) + (Opts.UseVariants ? "-v" : "");
  K.Size = N;
  K.Datatype = Eval.datatype();
  K.UnrollThreshold = Eval.options().UnrollThreshold;
  K.Evaluator = Eval.kindName();
  K.Host = PlanCache::hostFingerprint();
  return K;
}

void DPSearch::noteDeadlineOnce() {
  if (DeadlineNoted)
    return;
  DeadlineNoted = true;
  static telemetry::Counter &Exceeded =
      telemetry::counter("search.deadline_exceeded");
  Exceeded.add();
  Diags.warning(SourceLoc(), "search deadline exceeded; remaining candidates "
                             "are scored as infinite cost and the best "
                             "formula found so far wins");
}

std::vector<std::optional<VariantCost>>
DPSearch::costAll(const std::vector<FormulaRef> &Cands) {
  std::vector<std::optional<VariantCost>> Costs(Cands.size());
  constexpr double Inf = std::numeric_limits<double>::infinity();
  if (Opts.Threads > 1 && Cands.size() > 1) {
    if (!Pool)
      Pool = std::make_unique<ThreadPool>(static_cast<unsigned>(Opts.Threads));
    // Workers observe the deadline through the evaluator, which scores
    // expired candidates as infinite cost without compiling them.
    parallelFor(*Pool, Cands.size(),
                [&](size_t I) { Costs[I] = Eval.costWithVariant(Cands[I]); });
    if (Opts.Deadline.expired())
      noteDeadlineOnce();
  } else {
    for (size_t I = 0; I != Cands.size(); ++I) {
      if (Opts.Deadline.expired()) {
        // Budget spent: skip even candidate compilation, score the rest as
        // losers, and let the first-minimum scan return best-so-far.
        noteDeadlineOnce();
        Costs[I] = VariantCost{Inf, codegen::CodegenVariant::Scalar};
        continue;
      }
      Costs[I] = Eval.costWithVariant(Cands[I]);
    }
  }
  return Costs;
}

std::optional<Candidate> DPSearch::parseWisdomEntry(const PlanEntry &E,
                                                    std::int64_t N) {
  // Parse with a private engine: a stale entry must degrade to a cache miss,
  // not poison the caller's diagnostics with errors.
  Diagnostics ParseDiags;
  FormulaRef F = parseFormulaString(E.FormulaText, ParseDiags);
  if (!F || ParseDiags.hasErrors() || F->isPattern() || F->inSize() != N ||
      F->outSize() != N) {
    Diags.warning(SourceLoc(),
                  "wisdom entry for size " + std::to_string(N) +
                      " does not parse back to a size-" + std::to_string(N) +
                      " formula; ignoring it");
    return std::nullopt;
  }
  // A vector-winner entry on a host whose ISA probe reports scalar-only
  // (or a wisdom file that roamed from a SIMD machine) degrades to the
  // scalar variant of the same formula instead of invalidating the entry.
  codegen::CodegenVariant V = E.Variant;
  if (V == codegen::CodegenVariant::Vector &&
      !codegen::vectorBackendAvailable())
    V = codegen::CodegenVariant::Scalar;
  return Candidate{F, E.Cost, V};
}

std::optional<std::vector<Candidate>>
DPSearch::entriesFromWisdom(std::int64_t N) {
  if (!Wisdom)
    return std::nullopt;
  auto Cached = Wisdom->lookup(wisdomKey(N));
  if (!Cached)
    return std::nullopt;
  std::vector<Candidate> Out;
  for (const PlanEntry &E : *Cached) {
    auto C = parseWisdomEntry(E, N);
    if (!C)
      return std::nullopt; // One bad entry invalidates the whole list.
    Out.push_back(std::move(*C));
  }
  if (Out.empty())
    return std::nullopt;
  return Out;
}

void DPSearch::recordWisdom(std::int64_t N,
                            const std::vector<Candidate> &Entries) {
  if (!Wisdom || Entries.empty())
    return;
  // A deadline-truncated result set is best-effort, not the search's real
  // answer; persisting it would poison warm runs with partial winners.
  if (DeadlineNoted || Opts.Deadline.expired())
    return;
  std::vector<PlanEntry> Out;
  Out.reserve(Entries.size());
  for (const Candidate &C : Entries)
    Out.push_back({C.Formula->print(), C.Cost, C.Variant});
  Wisdom->insert(wisdomKey(N), std::move(Out));
}

std::optional<Candidate> DPSearch::searchSmallOne(std::int64_t N) {
  auto Hit = SmallBest.find(N);
  if (Hit != SmallBest.end()) {
    static telemetry::Counter &DpHits = telemetry::counter("search.dp_hits");
    DpHits.add();
    return Hit->second;
  }

  if (auto Cached = entriesFromWisdom(N)) {
    SmallBest[N] = Cached->front();
    return Cached->front();
  }

  std::vector<FormulaRef> Cands;
  if (N == 2) {
    Cands.push_back(makeDFT(2));
  } else {
    // All Equation-10 factorizations with the DP winners as leaves.
    for (const auto &Comp : gen::factorCompositions(N)) {
      if (Comp.size() < 2)
        continue;
      std::vector<std::pair<std::int64_t, FormulaRef>> Factors;
      bool Ok = true;
      for (std::int64_t Ni : Comp) {
        auto Sub = searchSmallOne(Ni);
        if (!Sub) {
          Ok = false;
          break;
        }
        Factors.push_back({Ni, Sub->Formula});
      }
      if (Ok)
        Cands.push_back(gen::ruleEq10(Factors));
    }
    if (Opts.UseVariants) {
      for (std::int64_t R = 2; R * 2 <= N; R *= 2) {
        std::int64_t S = N / R;
        auto FR = searchSmallOne(R), FS = searchSmallOne(S);
        if (!FR || !FS)
          continue;
        Cands.push_back(
            gen::ruleCooleyTukeyDIF(R, S, FR->Formula, FS->Formula));
        Cands.push_back(
            gen::ruleCooleyTukeyVector(R, S, FR->Formula, FS->Formula));
        Cands.push_back(
            gen::ruleCooleyTukeyParallel(R, S, FR->Formula, FS->Formula));
      }
    }
    // The DFT by definition is also a legal (slow) candidate for tiny
    // sizes, and the only one for primes (this makes mixed-radix sizes like
    // 12 = 3*4 searchable: factorCompositions handles any composite).
    if (N <= 4 || Cands.empty())
      Cands.push_back(makeDFT(N));
  }

  // Cost every candidate (in parallel when configured), then pick the
  // winner with a first-minimum scan — identical to the serial loop's
  // choice for any thread count.
  auto Costs = costAll(Cands);
  std::optional<Candidate> Best;
  for (size_t I = 0; I != Cands.size(); ++I) {
    if (!Costs[I])
      continue;
    if (!Best || Costs[I]->Cost < Best->Cost)
      Best = Candidate{Cands[I], Costs[I]->Cost, Costs[I]->Variant};
  }
  if (!Best) {
    Diags.error(SourceLoc(), "search found no viable formula for size " +
                                 std::to_string(N));
    return std::nullopt;
  }
  SmallBest[N] = *Best;
  recordWisdom(N, {*Best});
  return Best;
}

std::map<std::int64_t, Candidate> DPSearch::searchSmall(std::int64_t MaxN) {
  assert(MaxN >= 2 && (MaxN & (MaxN - 1)) == 0 && MaxN <= Opts.MaxLeaf &&
         "small search covers power-of-two sizes up to MaxLeaf");
  std::map<std::int64_t, Candidate> Out;
  for (std::int64_t N = 2; N <= MaxN; N *= 2) {
    auto Best = searchSmallOne(N);
    if (Best)
      Out[N] = *Best;
  }
  return Out;
}

const std::vector<Candidate> &DPSearch::largeEntries(std::int64_t N) {
  auto Hit = LargeBest.find(N);
  if (Hit != LargeBest.end()) {
    static telemetry::Counter &DpHits = telemetry::counter("search.dp_hits");
    DpHits.add();
    return Hit->second;
  }

  std::vector<Candidate> Entries;
  if (N <= Opts.MaxLeaf) {
    if (auto Small = searchSmallOne(N))
      Entries.push_back(*Small);
  } else if (auto Cached = entriesFromWisdom(N)) {
    Entries = std::move(*Cached);
  } else {
    // Right-most binary factorization: F_N = (F_r (x) I_s) T (I_r (x) F_s)
    // L with r <= MaxLeaf a straight-line module and s factored further.
    // Building the candidate set first (recursing into sub-sizes) and
    // costing it as one batch keeps the recursion serial while the
    // expensive evaluations fan out over the pool.
    std::vector<FormulaRef> Cands;
    for (std::int64_t R = 2; R <= Opts.MaxLeaf && R * 2 <= N; R *= 2) {
      // Out of budget: stop widening the candidate set, but only once at
      // least one factorization exists — the search must still return a
      // formula, just not the best one.
      if (!Cands.empty() && Opts.Deadline.expired()) {
        noteDeadlineOnce();
        break;
      }
      std::int64_t S = N / R;
      auto FR = searchSmallOne(R);
      if (!FR)
        continue;
      for (const Candidate &FS : largeEntries(S))
        Cands.push_back(gen::ruleCooleyTukeyDIT(R, S, FR->Formula, FS.Formula));
    }
    auto Costs = costAll(Cands);
    std::vector<Candidate> Costed;
    for (size_t I = 0; I != Cands.size(); ++I)
      if (Costs[I])
        Costed.push_back({Cands[I], Costs[I]->Cost, Costs[I]->Variant});
    // stable_sort: candidates with equal costs keep construction order, so
    // the kept set is identical for every thread count.
    std::stable_sort(Costed.begin(), Costed.end(),
                     [](const Candidate &A, const Candidate &B) {
                       return A.Cost < B.Cost;
                     });
    if (Costed.size() > static_cast<size_t>(Opts.KeepBest))
      Costed.resize(Opts.KeepBest);
    Entries = std::move(Costed);
    recordWisdom(N, Entries);
  }

  if (Entries.empty())
    Diags.error(SourceLoc(), "search found no viable formula for size " +
                                 std::to_string(N));
  return LargeBest.emplace(N, std::move(Entries)).first->second;
}

std::vector<Candidate> DPSearch::searchLarge(std::int64_t N) {
  assert(N >= 2 && (N & (N - 1)) == 0 && "size must be a power of two");
  return largeEntries(N);
}

std::optional<Candidate> DPSearch::best(std::int64_t N) {
  if (N <= Opts.MaxLeaf)
    return searchSmallOne(N);
  const auto &Entries = largeEntries(N);
  if (Entries.empty())
    return std::nullopt;
  return Entries.front();
}
