//===- search/Evaluator.h - Candidate cost evaluation -----------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost evaluators for the search engine (the "performance evaluation"
/// component of the SPIRAL framework, Figure 1). A formula is compiled
/// through the full pipeline and costed by operation count, by timing the
/// VM, or by timing natively compiled C — the paper's "run times and other
/// performance metrics obtained by executing the code in the target machine
/// or estimated using models".
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SEARCH_EVALUATOR_H
#define SPL_SEARCH_EVALUATOR_H

#include "codegen/VectorISA.h"
#include "driver/Compiler.h"
#include "support/Deadline.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

namespace spl {
namespace search {

/// A compiled candidate ready for costing.
struct Compiled {
  icode::Program Final;
  std::string CCode;
};

/// A cost together with the codegen variant that achieved it (the
/// searchable scalar-vs-vector dimension of ROADMAP item 2).
struct VariantCost {
  double Cost = 0;
  codegen::CodegenVariant Variant = codegen::CodegenVariant::Scalar;
};

/// Base class: compiles candidates and assigns costs (lower is better).
///
/// cost() is safe to call from several search workers at once: candidate
/// compilation runs fully concurrently, while timed evaluators serialize
/// their measurements behind a mutex so concurrent workers never distort
/// each other's wall-clock readings.
///
/// Timed evaluations run under a watchdog: a candidate whose measurement
/// exceeds the timing budget (SPL_EVAL_TIMEOUT_MS, default 10 s) is retried
/// once and then scored as infinite cost, so one pathological kernel slows
/// the DP search by a bounded amount instead of hanging it.
class Evaluator {
public:
  Evaluator(Diagnostics &Diags, driver::CompilerOptions CompOpts);
  virtual ~Evaluator() = default;

  /// Cost of \p F; nullopt after reporting diagnostics on failure.
  std::optional<double> cost(const FormulaRef &F);

  /// Like cost(), but additionally reports which codegen variant won.
  /// With variant search enabled (setVariantSearch) a timed native
  /// evaluator builds and times both the scalar and the vector kernel of
  /// \p F and returns the cheaper one (vector cost is per transform, i.e.
  /// the per-call time divided by the lane count); otherwise the scalar
  /// cost is returned unchanged. search.scalar_wins / search.vector_wins
  /// count the outcomes of genuinely two-sided comparisons.
  std::optional<VariantCost> costWithVariant(const FormulaRef &F);

  /// Enables timing the vector variant next to the scalar one. Off by
  /// default: it adds a native compile per candidate, and only the timed
  /// native evaluator can honor it. A host whose ISA probe reports
  /// scalar-only ignores it (every comparison degenerates to scalar).
  void setVariantSearch(bool On) { VariantSearch = On; }
  bool variantSearch() const { return VariantSearch; }

  /// Compiles \p F through the shared pipeline. Defaults to complex data /
  /// real code (the FFT experiments); override via setDatatype for real
  /// transforms such as the WHT and DCTs.
  std::optional<Compiled> compile(const FormulaRef &F);

  /// Sets the #datatype used for candidate compilation ("complex"|"real").
  void setDatatype(std::string D) { Datatype = std::move(D); }
  const std::string &datatype() const { return Datatype; }

  /// Short cost-model name used as a wisdom cache key component
  /// ("opcount" | "vmtime" | "nativetime").
  virtual const char *kindName() const = 0;

  /// True when costs come from wall-clock measurement. Timed evaluations
  /// are serialized so parallel searches keep clean measurements.
  virtual bool isTimed() const { return false; }

  /// Number of candidate evaluations performed (compilation + costing).
  /// A warm wisdom run reports 0 for cached sizes.
  std::uint64_t evaluations() const { return NumEvals.load(); }

  driver::CompilerOptions &options() { return CompOpts; }

  /// Overrides the per-measurement wall-clock budget and retry count.
  /// A budget <= 0 disables the watchdog.
  void setTimingBudget(double TimeoutSeconds, int Retries) {
    TimingTimeoutSeconds = TimeoutSeconds;
    TimingRetries = Retries < 0 ? 0 : Retries;
  }
  double timingTimeoutSeconds() const { return TimingTimeoutSeconds; }

  /// Caps all remaining evaluation work by \p D. Each watchdog attempt is
  /// bounded by min(SPL_EVAL_TIMEOUT_MS, remaining budget), retries are
  /// skipped once the budget is spent, and an expired deadline scores
  /// candidates as infinite cost without measuring — so a caller that ran
  /// out of budget never pays the watchdog-retry worst case.
  void setDeadline(support::Deadline D) { DL = std::move(D); }
  const support::Deadline &deadline() const { return DL; }

protected:
  /// Costs an already-compiled candidate.
  virtual std::optional<double> costCompiled(const Compiled &C) = 0;

  /// Costs an already-compiled candidate across codegen variants. The
  /// default is the scalar cost; the native evaluator overrides this to
  /// race the two variants when variant search is on.
  virtual std::optional<VariantCost> costVariantsCompiled(const Compiled &C);

  /// Runs one measurement closure under the watchdog with the retry
  /// budget; \p Fn must own everything it touches (shared_ptr captures),
  /// because on timeout its thread is abandoned and may still be running.
  /// Returns infinity (with a warning) when every attempt times out.
  std::optional<double> timedCost(std::function<double()> Fn,
                                  const char *What);

  Diagnostics &Diags;
  driver::CompilerOptions CompOpts;
  std::string Datatype = "complex";
  support::Deadline DL;

private:
  double TimingTimeoutSeconds;
  int TimingRetries = 1;
  bool VariantSearch = false;
  std::mutex TimingMutex;
  std::atomic<std::uint64_t> NumEvals{0};
};

/// Cost = dynamic floating-point operation count (a machine model).
class OpCountEvaluator : public Evaluator {
public:
  using Evaluator::Evaluator;

  const char *kindName() const override { return "opcount"; }

protected:
  std::optional<double> costCompiled(const Compiled &C) override;
};

/// Cost = best-of-k VM execution time (portable measurement).
class VMTimeEvaluator : public Evaluator {
public:
  VMTimeEvaluator(Diagnostics &Diags, driver::CompilerOptions CompOpts,
                  int Repeats = 3)
      : Evaluator(Diags, std::move(CompOpts)), Repeats(Repeats) {}

  const char *kindName() const override { return "vmtime"; }
  bool isTimed() const override { return true; }

protected:
  std::optional<double> costCompiled(const Compiled &C) override;

private:
  int Repeats;
};

/// Cost = best-of-k execution time of natively compiled C (the honest
/// measurement; requires a system C compiler — check available()).
class NativeTimeEvaluator : public Evaluator {
public:
  NativeTimeEvaluator(Diagnostics &Diags, driver::CompilerOptions CompOpts,
                      int Repeats = 3)
      : Evaluator(Diags, std::move(CompOpts)), Repeats(Repeats) {}

  /// True when native compilation works on this machine.
  static bool available();

  const char *kindName() const override { return "nativetime"; }
  bool isTimed() const override { return true; }

protected:
  std::optional<double> costCompiled(const Compiled &C) override;
  std::optional<VariantCost> costVariantsCompiled(const Compiled &C) override;

private:
  /// Builds one variant of \p C and returns its per-transform time.
  std::optional<double> timeVariant(const Compiled &C,
                                    codegen::CodegenVariant Variant);

  int Repeats;
};

} // namespace search
} // namespace spl

#endif // SPL_SEARCH_EVALUATOR_H
