//===- baseline/Codelets.cpp - Straight-line FFT codelets ---------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/Codelets.h"

#include <cassert>
#include <cmath>

using namespace spl;
using namespace spl::baseline;

namespace {

constexpr double Sqrt1_2 = 0.70710678118654752440084436210485;

/// Multiplication by -i.
inline C mulNegI(C V) { return C(V.imag(), -V.real()); }

inline void fft2(const C *X, std::int64_t IS, C *Y) {
  C A = X[0], B = X[IS];
  Y[0] = A + B;
  Y[1] = A - B;
}

inline void fft4(const C *X, std::int64_t IS, C *Y) {
  C E0 = X[0] + X[2 * IS];
  C E1 = X[0] - X[2 * IS];
  C O0 = X[IS] + X[3 * IS];
  C O1 = X[IS] - X[3 * IS];
  C T = mulNegI(O1);
  Y[0] = E0 + O0;
  Y[2] = E0 - O0;
  Y[1] = E1 + T;
  Y[3] = E1 - T;
}

inline void fft8(const C *X, std::int64_t IS, C *Y) {
  C E[4], O[4];
  fft4(X, 2 * IS, E);
  fft4(X + IS, 2 * IS, O);
  // Twiddles w8^k, k = 0..3: 1, (1-i)/sqrt2, -i, -(1+i)/sqrt2.
  C T0 = O[0];
  C T1 = C(Sqrt1_2 * (O[1].real() + O[1].imag()),
           Sqrt1_2 * (O[1].imag() - O[1].real()));
  C T2 = mulNegI(O[2]);
  C T3 = C(Sqrt1_2 * (O[3].imag() - O[3].real()),
           -Sqrt1_2 * (O[3].real() + O[3].imag()));
  Y[0] = E[0] + T0;
  Y[4] = E[0] - T0;
  Y[1] = E[1] + T1;
  Y[5] = E[1] - T1;
  Y[2] = E[2] + T2;
  Y[6] = E[2] - T2;
  Y[3] = E[3] + T3;
  Y[7] = E[3] - T3;
}

/// Twiddle table w_N^k for the fixed sizes 16 and 32.
template <int N> const C *twiddles() {
  static C Table[N / 2];
  static bool Init = false;
  if (!Init) {
    for (int K = 0; K != N / 2; ++K) {
      double Ang = -2.0 * 3.14159265358979323846264338327950288 * K / N;
      Table[K] = C(std::cos(Ang), std::sin(Ang));
    }
    Init = true;
  }
  return Table;
}

template <int N, void (*Half)(const C *, std::int64_t, C *)>
inline void fftCombine(const C *X, std::int64_t IS, C *Y) {
  C E[N / 2], O[N / 2];
  Half(X, 2 * IS, E);
  Half(X + IS, 2 * IS, O);
  const C *W = twiddles<N>();
  for (int K = 0; K != N / 2; ++K) {
    C T = W[K] * O[K];
    Y[K] = E[K] + T;
    Y[K + N / 2] = E[K] - T;
  }
}

inline void fft16(const C *X, std::int64_t IS, C *Y) {
  fftCombine<16, fft8>(X, IS, Y);
}

inline void fft32(const C *X, std::int64_t IS, C *Y) {
  fftCombine<32, fft16>(X, IS, Y);
}

inline void fft64(const C *X, std::int64_t IS, C *Y) {
  fftCombine<64, fft32>(X, IS, Y);
}

} // namespace

bool baseline::hasCodelet(std::int64_t N) {
  return N == 1 || N == 2 || N == 4 || N == 8 || N == 16 || N == 32 ||
         N == 64;
}

void baseline::codelet(std::int64_t N, const C *X, std::int64_t IS, C *Y) {
  switch (N) {
  case 1:
    Y[0] = X[0];
    return;
  case 2:
    fft2(X, IS, Y);
    return;
  case 4:
    fft4(X, IS, Y);
    return;
  case 8:
    fft8(X, IS, Y);
    return;
  case 16:
    fft16(X, IS, Y);
    return;
  case 32:
    fft32(X, IS, Y);
    return;
  case 64:
    fft64(X, IS, Y);
    return;
  default:
    assert(false && "no codelet for this size");
  }
}
