//===- baseline/Planner.cpp - Run-time FFT planner ------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/Planner.h"

#include "support/Timer.h"

#include <cmath>
#include <random>

using namespace spl;
using namespace spl::baseline;

namespace {

/// The estimate-mode model: nominal operation count scaled by a
/// per-strategy pass factor. Deliberately cache-blind, like a pure op-count
/// model; this is what makes "estimate" plans equal-or-worse than measured
/// ones on large sizes.
double estimateScore(const Transform &T) {
  double N = static_cast<double>(T.size());
  double LogN = N > 1 ? std::log2(N) : 1;
  std::string Name = T.name();
  if (Name == "direct")
    return N * N;
  if (Name == "radix2-iter")
    return 5.0 * N * LogN + N; // Extra pass for the bit reversal.
  if (Name == "stockham2")
    return 5.0 * N * LogN;
  if (Name == "stockham4")
    return 4.25 * N * LogN; // Radix 4 saves ~15% of the arithmetic.
  // Recursive plans: same arithmetic as radix-2 plus per-call overhead that
  // the model charges against them (it cannot see their cache behaviour).
  return 5.0 * N * LogN + 64.0 * (N / 8.0);
}

} // namespace

PlanResult baseline::plan(std::int64_t N, PlanMode Mode) {
  PlanResult Result;
  auto Strategies = allStrategies(N);
  if (Strategies.empty())
    return Result;

  if (Mode == PlanMode::Estimate) {
    size_t BestIdx = 0;
    double BestScore = 0;
    for (size_t I = 0; I != Strategies.size(); ++I) {
      PlanChoice Choice;
      Choice.Name = Strategies[I]->name();
      Choice.Score = estimateScore(*Strategies[I]);
      Choice.Bytes = Strategies[I]->memoryBytes();
      Result.Candidates.push_back(Choice);
      if (I == 0 || Choice.Score < BestScore) {
        BestScore = Choice.Score;
        BestIdx = I;
      }
    }
    Result.PlannerPeakBytes = 0; // Nothing instantiated beyond the winner.
    Result.Best = std::move(Strategies[BestIdx]);
    return Result;
  }

  // Measure mode: all candidates and the timing buffers coexist.
  std::mt19937 Gen(1234);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<C> In(N), Out(N);
  for (auto &V : In)
    V = C(Dist(Gen), Dist(Gen));

  std::size_t Peak = 2 * N * sizeof(C);
  for (const auto &S : Strategies)
    Peak += S->memoryBytes();
  Result.PlannerPeakBytes = Peak;

  size_t BestIdx = 0;
  double BestTime = 0;
  for (size_t I = 0; I != Strategies.size(); ++I) {
    Transform *T = Strategies[I].get();
    double Seconds =
        timeBestOf([&] { T->run(In.data(), Out.data()); }, /*Repeats=*/2);
    PlanChoice Choice;
    Choice.Name = T->name();
    Choice.Seconds = Seconds;
    Choice.Bytes = T->memoryBytes();
    Result.Candidates.push_back(Choice);
    if (I == 0 || Seconds < BestTime) {
      BestTime = Seconds;
      BestIdx = I;
    }
  }
  Result.Best = std::move(Strategies[BestIdx]);
  return Result;
}
