//===- baseline/Codelets.h - Straight-line FFT codelets ---------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written straight-line complex FFTs for small sizes, with an input
/// stride parameter — the "codelets" of the FFTW-substitute baseline the
/// figures compare against (see DESIGN.md: FFTW itself is not available in
/// this environment, so the baseline reproduces its architecture:
/// planner + executor + codelets).
///
//===----------------------------------------------------------------------===//

#ifndef SPL_BASELINE_CODELETS_H
#define SPL_BASELINE_CODELETS_H

#include <complex>
#include <cstdint>

namespace spl {
namespace baseline {

using C = std::complex<double>;

/// y[k] = DFT_n(x[0], x[is], x[2*is], ...)[k], y contiguous. Supported n:
/// 1, 2, 4, 8, 16, 32, 64.
void codelet(std::int64_t N, const C *X, std::int64_t IS, C *Y);

/// Largest size codelet() supports.
constexpr std::int64_t MaxCodeletSize = 64;

/// True when codelet() supports \p N.
bool hasCodelet(std::int64_t N);

} // namespace baseline
} // namespace spl

#endif // SPL_BASELINE_CODELETS_H
