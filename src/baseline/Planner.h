//===- baseline/Planner.h - Run-time FFT planner ----------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline's planner (FFTW's architecture, Section 4.2 of the paper):
/// in Measure mode every applicable strategy is instantiated and timed on
/// the target machine and the fastest wins — this costs planning time and
/// memory. In Estimate mode a closed-form operation-count model picks the
/// plan without running anything, like FFTW's FFTW_ESTIMATE.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_BASELINE_PLANNER_H
#define SPL_BASELINE_PLANNER_H

#include "baseline/Kernels.h"

#include <optional>

namespace spl {
namespace baseline {

/// Planning strategy.
enum class PlanMode { Measure, Estimate };

/// One candidate's planning record.
struct PlanChoice {
  std::string Name;
  double Seconds = 0;    ///< Measured seconds/transform (Measure mode).
  double Score = 0;      ///< Model score (Estimate mode).
  std::size_t Bytes = 0; ///< The candidate's table+scratch memory.
};

/// A complete plan.
struct PlanResult {
  std::unique_ptr<Transform> Best;
  std::vector<PlanChoice> Candidates;

  /// Peak extra memory the planner itself used: in Measure mode all
  /// candidates coexist plus the timing buffers; in Estimate mode nothing
  /// beyond the winner.
  std::size_t PlannerPeakBytes = 0;
};

/// Plans an N-point complex DFT.
PlanResult plan(std::int64_t N, PlanMode Mode);

} // namespace baseline
} // namespace spl

#endif // SPL_BASELINE_PLANNER_H
