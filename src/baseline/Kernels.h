//===- baseline/Kernels.h - Baseline FFT strategies -------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executor strategies of the FFTW-substitute baseline: direct DFT,
/// iterative radix-2 with bit reversal, Stockham autosort (radix 2 and 4),
/// and the recursive Cooley-Tukey executor calling straight-line codelets at
/// the leaves (FFTW's architecture). Every strategy is an out-of-place
/// complex transform with precomputed twiddles and explicit memory
/// accounting.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_BASELINE_KERNELS_H
#define SPL_BASELINE_KERNELS_H

#include "baseline/Codelets.h"

#include <memory>
#include <string>
#include <vector>

namespace spl {
namespace baseline {

/// An executable N-point complex DFT.
class Transform {
public:
  explicit Transform(std::int64_t N) : N(N) {}
  virtual ~Transform() = default;

  std::int64_t size() const { return N; }

  /// Computes Out = DFT_N(In); both buffers hold N elements and must not
  /// alias.
  virtual void run(const C *In, C *Out) = 0;

  /// Bytes of twiddle tables and scratch this transform owns.
  virtual std::size_t memoryBytes() const = 0;

  virtual std::string name() const = 0;

protected:
  std::int64_t N;
};

/// The O(N^2) DFT by definition (any N; baseline of last resort).
class DirectDFT : public Transform {
public:
  explicit DirectDFT(std::int64_t N);
  void run(const C *In, C *Out) override;
  std::size_t memoryBytes() const override;
  std::string name() const override { return "direct"; }

private:
  std::vector<C> Roots; ///< w_N^k, k < N.
};

/// Iterative radix-2 with an initial bit-reversal permutation (N a power of
/// two).
class Radix2Iterative : public Transform {
public:
  explicit Radix2Iterative(std::int64_t N);
  void run(const C *In, C *Out) override;
  std::size_t memoryBytes() const override;
  std::string name() const override { return "radix2-iter"; }

private:
  std::vector<std::int32_t> BitRev;
  std::vector<C> Twiddles; ///< w_N^k, k < N/2.
};

/// Stockham autosort, radix 2 (N a power of two): no bit reversal, ping-pong
/// scratch buffer, unit-stride passes.
class StockhamRadix2 : public Transform {
public:
  explicit StockhamRadix2(std::int64_t N);
  void run(const C *In, C *Out) override;
  std::size_t memoryBytes() const override;
  std::string name() const override { return "stockham2"; }

private:
  std::vector<C> Twiddles;
  std::vector<C> Scratch;
};

/// Stockham autosort, radix 4, with one radix-2 pass when log2(N) is odd.
class StockhamRadix4 : public Transform {
public:
  explicit StockhamRadix4(std::int64_t N);
  void run(const C *In, C *Out) override;
  std::size_t memoryBytes() const override;
  std::string name() const override { return "stockham4"; }

private:
  std::vector<C> Twiddles;
  std::vector<C> Scratch;
};

/// Recursive decimation-in-time executor with straight-line codelet leaves
/// (FFTW's plan shape). Leaf must be a codelet size.
class RecursiveCT : public Transform {
public:
  RecursiveCT(std::int64_t N, std::int64_t Leaf);
  void run(const C *In, C *Out) override;
  std::size_t memoryBytes() const override;
  std::string name() const override {
    return "recursive-leaf" + std::to_string(Leaf);
  }

private:
  std::int64_t Leaf;
  /// Twiddle tables per combine level: for size M, w_M^k for k < M/2.
  std::vector<std::vector<C>> Levels;
  std::vector<std::int64_t> LevelSizes;

  void rec(const C *In, C *Out, std::int64_t M, std::int64_t Stride);
  const C *levelTable(std::int64_t M) const;
};

/// All strategies applicable to size N, in a deterministic order.
std::vector<std::unique_ptr<Transform>> allStrategies(std::int64_t N);

} // namespace baseline
} // namespace spl

#endif // SPL_BASELINE_KERNELS_H
