//===- baseline/Kernels.cpp - Baseline FFT strategies -------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/Kernels.h"

#include <cassert>
#include <cmath>

using namespace spl;
using namespace spl::baseline;

namespace {

constexpr double Pi = 3.14159265358979323846264338327950288;

bool isPow2(std::int64_t N) { return N >= 1 && (N & (N - 1)) == 0; }

int log2Of(std::int64_t N) {
  int L = 0;
  while ((std::int64_t(1) << L) < N)
    ++L;
  return L;
}

C rootOf(std::int64_t N, std::int64_t K) {
  double Ang = -2.0 * Pi * static_cast<double>(K) / static_cast<double>(N);
  return C(std::cos(Ang), std::sin(Ang));
}

} // namespace

//===----------------------------------------------------------------------===//
// DirectDFT
//===----------------------------------------------------------------------===//

DirectDFT::DirectDFT(std::int64_t N) : Transform(N) {
  Roots.resize(N);
  for (std::int64_t K = 0; K != N; ++K)
    Roots[K] = rootOf(N, K);
}

void DirectDFT::run(const C *In, C *Out) {
  for (std::int64_t K = 0; K != N; ++K) {
    C Acc(0, 0);
    std::int64_t Idx = 0;
    for (std::int64_t J = 0; J != N; ++J) {
      Acc += Roots[Idx] * In[J];
      Idx += K;
      if (Idx >= N)
        Idx -= N;
    }
    Out[K] = Acc;
  }
}

std::size_t DirectDFT::memoryBytes() const {
  return Roots.size() * sizeof(C);
}

//===----------------------------------------------------------------------===//
// Radix2Iterative
//===----------------------------------------------------------------------===//

Radix2Iterative::Radix2Iterative(std::int64_t N) : Transform(N) {
  assert(isPow2(N) && "radix-2 needs a power of two");
  int Lg = log2Of(N);
  BitRev.resize(N);
  for (std::int64_t I = 0; I != N; ++I) {
    std::int64_t R = 0;
    for (int B = 0; B != Lg; ++B)
      if (I & (std::int64_t(1) << B))
        R |= std::int64_t(1) << (Lg - 1 - B);
    BitRev[I] = static_cast<std::int32_t>(R);
  }
  Twiddles.resize(N / 2 > 0 ? N / 2 : 1);
  for (std::int64_t K = 0; K != N / 2; ++K)
    Twiddles[K] = rootOf(N, K);
}

void Radix2Iterative::run(const C *In, C *Out) {
  for (std::int64_t I = 0; I != N; ++I)
    Out[I] = In[BitRev[I]];
  for (std::int64_t Len = 2; Len <= N; Len <<= 1) {
    std::int64_t Half = Len >> 1;
    std::int64_t Step = N / Len; // Twiddle stride into w_N table.
    for (std::int64_t Base = 0; Base != N; Base += Len) {
      std::int64_t TIdx = 0;
      for (std::int64_t K = 0; K != Half; ++K) {
        C T = Twiddles[TIdx] * Out[Base + Half + K];
        Out[Base + Half + K] = Out[Base + K] - T;
        Out[Base + K] += T;
        TIdx += Step;
      }
    }
  }
}

std::size_t Radix2Iterative::memoryBytes() const {
  return BitRev.size() * sizeof(std::int32_t) + Twiddles.size() * sizeof(C);
}

//===----------------------------------------------------------------------===//
// StockhamRadix2
//===----------------------------------------------------------------------===//

StockhamRadix2::StockhamRadix2(std::int64_t N) : Transform(N) {
  assert(isPow2(N) && "Stockham needs a power of two");
  Twiddles.resize(N / 2 > 0 ? N / 2 : 1);
  for (std::int64_t K = 0; K != N / 2; ++K)
    Twiddles[K] = rootOf(N, K);
  Scratch.resize(N);
}

void StockhamRadix2::run(const C *In, C *Out) {
  if (N == 1) {
    Out[0] = In[0];
    return;
  }
  // Self-sorting DIT: each pass transforms L blocks of size M into L/2
  // blocks of size 2M, alternating between Out and Scratch.
  const C *Src = In;
  C *DstA = Out, *DstB = Scratch.data();
  std::int64_t L = N / 2, M = 1;
  while (L >= 1) {
    C *Dst = DstA;
    for (std::int64_t J = 0; J != L; ++J) {
      for (std::int64_t K = 0; K != M; ++K) {
        C A = Src[J * M + K];
        C B = Src[(J + L) * M + K];
        C T = Twiddles[K * L] * B;
        Dst[2 * J * M + K] = A + T;
        Dst[(2 * J + 1) * M + K] = A - T;
      }
    }
    Src = Dst;
    std::swap(DstA, DstB);
    L >>= 1;
    M <<= 1;
  }
  // Result lives where the last pass wrote: Src. Copy if it is not Out.
  if (Src != Out) {
    for (std::int64_t I = 0; I != N; ++I)
      Out[I] = Src[I];
  }
}

std::size_t StockhamRadix2::memoryBytes() const {
  return Twiddles.size() * sizeof(C) + Scratch.size() * sizeof(C);
}

//===----------------------------------------------------------------------===//
// StockhamRadix4
//===----------------------------------------------------------------------===//

StockhamRadix4::StockhamRadix4(std::int64_t N) : Transform(N) {
  assert(isPow2(N) && "Stockham needs a power of two");
  Twiddles.resize(N > 1 ? N : 1);
  for (std::int64_t K = 0; K != N; ++K)
    Twiddles[K] = rootOf(N, K);
  Scratch.resize(N);
}

void StockhamRadix4::run(const C *In, C *Out) {
  if (N == 1) {
    Out[0] = In[0];
    return;
  }
  const C *Src = In;
  C *DstA = Out, *DstB = Scratch.data();
  std::int64_t M = 1;

  // One radix-2 pass when log2(N) is odd (its twiddles are all 1).
  if (log2Of(N) % 2 == 1) {
    std::int64_t L = N / 2;
    C *Dst = DstA;
    for (std::int64_t J = 0; J != L; ++J) {
      C A = Src[J], B = Src[J + L];
      Dst[2 * J] = A + B;
      Dst[2 * J + 1] = A - B;
    }
    Src = Dst;
    std::swap(DstA, DstB);
    M = 2;
  }

  for (std::int64_t L = N / (4 * M); L >= 1; L /= 4) {
    C *Dst = DstA;
    for (std::int64_t J = 0; J != L; ++J) {
      for (std::int64_t K = 0; K != M; ++K) {
        C A0 = Src[(J + 0 * L) * M + K];
        C A1 = Twiddles[1 * K * L] * Src[(J + 1 * L) * M + K];
        C A2 = Twiddles[2 * K * L] * Src[(J + 2 * L) * M + K];
        C A3 = Twiddles[3 * K * L] * Src[(J + 3 * L) * M + K];
        C S02 = A0 + A2, D02 = A0 - A2;
        C S13 = A1 + A3, D13 = A1 - A3;
        C JD13 = C(D13.imag(), -D13.real()); // -i * D13.
        Dst[(4 * J + 0) * M + K] = S02 + S13;
        Dst[(4 * J + 1) * M + K] = D02 + JD13;
        Dst[(4 * J + 2) * M + K] = S02 - S13;
        Dst[(4 * J + 3) * M + K] = D02 - JD13;
      }
    }
    Src = Dst;
    std::swap(DstA, DstB);
    M *= 4;
  }
  if (Src != Out) {
    for (std::int64_t I = 0; I != N; ++I)
      Out[I] = Src[I];
  }
}

std::size_t StockhamRadix4::memoryBytes() const {
  return Twiddles.size() * sizeof(C) + Scratch.size() * sizeof(C);
}

//===----------------------------------------------------------------------===//
// RecursiveCT
//===----------------------------------------------------------------------===//

RecursiveCT::RecursiveCT(std::int64_t N, std::int64_t LeafSize)
    : Transform(N), Leaf(LeafSize) {
  assert(isPow2(N) && hasCodelet(Leaf) && N >= Leaf &&
         "bad recursive plan parameters");
  for (std::int64_t M = N; M > Leaf; M /= 2) {
    LevelSizes.push_back(M);
    std::vector<C> Table(M / 2);
    for (std::int64_t K = 0; K != M / 2; ++K)
      Table[K] = rootOf(M, K);
    Levels.push_back(std::move(Table));
  }
}

const C *RecursiveCT::levelTable(std::int64_t M) const {
  for (size_t I = 0; I != LevelSizes.size(); ++I)
    if (LevelSizes[I] == M)
      return Levels[I].data();
  assert(false && "missing twiddle level");
  return nullptr;
}

void RecursiveCT::rec(const C *In, C *Out, std::int64_t M,
                      std::int64_t Stride) {
  if (M <= Leaf) {
    codelet(M, In, Stride, Out);
    return;
  }
  rec(In, Out, M / 2, 2 * Stride);
  rec(In + Stride, Out + M / 2, M / 2, 2 * Stride);
  const C *W = levelTable(M);
  for (std::int64_t K = 0; K != M / 2; ++K) {
    C T = W[K] * Out[M / 2 + K];
    Out[M / 2 + K] = Out[K] - T;
    Out[K] += T;
  }
}

void RecursiveCT::run(const C *In, C *Out) { rec(In, Out, N, 1); }

std::size_t RecursiveCT::memoryBytes() const {
  std::size_t Bytes = 0;
  for (const auto &L : Levels)
    Bytes += L.size() * sizeof(C);
  return Bytes;
}

//===----------------------------------------------------------------------===//
// Strategy enumeration
//===----------------------------------------------------------------------===//

std::vector<std::unique_ptr<Transform>>
baseline::allStrategies(std::int64_t N) {
  std::vector<std::unique_ptr<Transform>> Out;
  if (N <= 64)
    Out.push_back(std::make_unique<DirectDFT>(N));
  if (!isPow2(N))
    return Out;
  if (N >= 2) {
    Out.push_back(std::make_unique<Radix2Iterative>(N));
    Out.push_back(std::make_unique<StockhamRadix2>(N));
    Out.push_back(std::make_unique<StockhamRadix4>(N));
  }
  // N == Leaf would just be the codelet; require at least one combine
  // level so every recursive plan is distinct from a plain codelet call.
  for (std::int64_t Leaf : {std::int64_t(8), std::int64_t(16),
                            std::int64_t(32)})
    if (N > Leaf)
      Out.push_back(std::make_unique<RecursiveCT>(N, Leaf));
  return Out;
}
