//===- telemetry/Trace.h - Scoped-span tracer -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free scoped-span tracer for the compile/search/execute pipeline.
/// Spans land in a fixed-capacity ring buffer (a relaxed fetch_add claims a
/// slot; old events are overwritten once the ring wraps) and export as a
/// chrome://tracing "complete event" array:
///
///   [{"name":"plan","ph":"X","ts":12.3,"dur":4.5,"pid":1,"tid":2}, ...]
///
/// Arming follows telemetry/Metrics.h: SPL_TRACE=1 records, SPL_TRACE=path
/// records and dumps to `path` at exit, `splrun --trace-json` arms
/// programmatically. A disarmed Span costs one relaxed atomic load.
///
/// Span names are captured as `const char *` without copying, so they must
/// be string literals (or otherwise outlive the tracer) — fine for the
/// fixed set of pipeline stages this instruments.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TELEMETRY_TRACE_H
#define SPL_TELEMETRY_TRACE_H

#include "telemetry/Metrics.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace spl::telemetry {

/// One completed span in the ring.
struct TraceEvent {
  const char *Name = nullptr; ///< Static string; nullptr = empty slot.
  std::uint64_t StartNs = 0;  ///< Relative to process trace epoch.
  std::uint64_t DurNs = 0;
  std::uint32_t Tid = 0; ///< Small per-process thread ordinal.
};

/// Fixed-ring span collector. All methods are safe from any thread.
class Tracer {
public:
  /// Ring capacity (power of two so slot = index & (Capacity-1)).
  static constexpr std::size_t Capacity = 1u << 16;

  static Tracer &instance();

  /// Records a completed span when tracing is armed (callers on hot paths
  /// gate on tracingEnabled() themselves to also skip the clock reads).
  void record(const char *Name, std::uint64_t StartNs, std::uint64_t DurNs);

  /// Number of spans recorded since the last reset (may exceed Capacity;
  /// only the newest Capacity survive in the ring).
  std::uint64_t recorded() const;

  /// Drops all recorded spans.
  void reset();

  /// chrome://tracing JSON array of the surviving spans, oldest first.
  std::string toJson() const;

private:
  Tracer();
  struct Impl;
  Impl &impl() const;
};

/// Nanoseconds since the process trace epoch (steady clock).
std::uint64_t traceNowNs();

/// RAII span: measures construction-to-destruction and records it into the
/// Tracer. One relaxed atomic load when tracing is disarmed.
class Span {
public:
  explicit Span(const char *Name) {
    if (tracingEnabled()) {
      this->Name = Name;
      StartNs = traceNowNs();
    }
  }
  ~Span() {
    if (Name)
      Tracer::instance().record(Name, StartNs, traceNowNs() - StartNs);
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name = nullptr; ///< nullptr = disarmed at construction.
  std::uint64_t StartNs = 0;
};

/// RAII stage instrument combining a Span with a latency Histogram record —
/// the standard way pipeline stages report themselves. One armed-mask load
/// when fully disarmed.
class StageTimer {
public:
  /// \p Name is the span name; \p Hist (nullable) receives the duration in
  /// nanoseconds when metrics are armed.
  StageTimer(const char *Name, Histogram *Hist) {
    unsigned M = armedMask();
    if (M == 0)
      return;
    if (M & kTrace)
      this->Name = Name;
    if (M & kMetrics)
      this->Hist = Hist;
    StartNs = traceNowNs();
  }
  ~StageTimer() {
    if (!Name && !Hist)
      return;
    std::uint64_t Dur = traceNowNs() - StartNs;
    if (Hist)
      Hist->recordAlways(Dur);
    if (Name)
      Tracer::instance().record(Name, StartNs, Dur);
  }
  StageTimer(const StageTimer &) = delete;
  StageTimer &operator=(const StageTimer &) = delete;

private:
  const char *Name = nullptr;
  Histogram *Hist = nullptr;
  std::uint64_t StartNs = 0;
};

/// Tracer::instance().toJson() / reset() shorthands.
std::string traceJson();
void resetTrace();

/// If SPL_TRACE was set to a path, writes traceJson() there now (also runs
/// from the shared atexit hook). Returns false on write failure.
bool dumpTraceIfConfigured();

} // namespace spl::telemetry

#endif // SPL_TELEMETRY_TRACE_H
