//===- telemetry/Metrics.cpp - Process-wide metrics registry ------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"

#include "telemetry/Trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace spl::telemetry {

//===----------------------------------------------------------------------===//
// Armed mask and env configuration
//===----------------------------------------------------------------------===//

namespace detail {
// Top bit set = "environment not parsed yet". armedMask() treats any value
// with that bit as a miss and takes the slow path exactly once per process.
std::atomic<unsigned> ArmedMask{0x80000000u};
} // namespace detail

namespace {

struct EnvConfig {
  std::mutex M;
  bool Parsed = false;
  std::string MetricsDumpPath; ///< SPL_METRICS=path target ("" = none).
  std::string TraceDumpPath;   ///< SPL_TRACE=path target ("" = none).
};

EnvConfig &envConfig() {
  static EnvConfig C;
  return C;
}

/// Interprets one telemetry env var: unset/""/"0" -> off; "1" -> on;
/// anything else -> on, and the value is a dump path.
bool parseVar(const char *Name, std::string &DumpPath) {
  const char *V = std::getenv(Name);
  if (!V || !*V || std::string(V) == "0")
    return false;
  if (std::string(V) != "1")
    DumpPath = V;
  return true;
}

void atexitDump() {
  dumpMetricsIfConfigured();
  dumpTraceIfConfigured();
}

} // namespace

unsigned detail::parseEnvOnce() {
  EnvConfig &C = envConfig();
  std::lock_guard<std::mutex> Lock(C.M);
  unsigned M = ArmedMask.load(std::memory_order_relaxed);
  if (C.Parsed)
    return M & ~0x80000000u;
  C.Parsed = true;
  unsigned Mask = 0;
  if (parseVar("SPL_METRICS", C.MetricsDumpPath))
    Mask |= kMetrics;
  if (parseVar("SPL_TRACE", C.TraceDumpPath))
    Mask |= kTrace;
  if (!C.MetricsDumpPath.empty() || !C.TraceDumpPath.empty())
    std::atexit(atexitDump);
  ArmedMask.store(Mask, std::memory_order_relaxed);
  return Mask;
}

void setMetricsEnabled(bool On) {
  unsigned M = armedMask(); // Forces the env parse so we don't lose SPL_TRACE.
  detail::ArmedMask.store(On ? (M | kMetrics) : (M & ~kMetrics),
                          std::memory_order_relaxed);
}

void setTracingEnabled(bool On) {
  unsigned M = armedMask();
  detail::ArmedMask.store(On ? (M | kTrace) : (M & ~kTrace),
                          std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

int Histogram::bucketIndex(std::uint64_t Sample) {
  if (Sample == 0)
    return 0;
  int W = std::bit_width(Sample); // 1..64 for nonzero samples.
  return std::min(W, NumBuckets - 1);
}

void Histogram::recordAlways(std::uint64_t Sample) {
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  Buckets[static_cast<size_t>(bucketIndex(Sample))].fetch_add(
      1, std::memory_order_relaxed);
  std::uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Min.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  S.Count = Count.load(std::memory_order_relaxed);
  if (S.Count == 0)
    return S; // Min stays 0 in the snapshot, not the UINT64_MAX sentinel.
  S.Sum = Sum.load(std::memory_order_relaxed);
  S.Min = Min.load(std::memory_order_relaxed);
  S.Max = Max.load(std::memory_order_relaxed);
  for (int I = 0; I != NumBuckets; ++I)
    S.Buckets[static_cast<size_t>(I)] =
        Buckets[static_cast<size_t>(I)].load(std::memory_order_relaxed);
  return S;
}

void Histogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(UINT64_MAX, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::bucketUpperBound(int I) {
  if (I <= 0)
    return 0;
  if (I >= NumBuckets - 1)
    return UINT64_MAX;
  return (std::uint64_t(1) << I) - 1;
}

std::uint64_t HistogramSnapshot::bucketLowerBound(int I) {
  if (I <= 0)
    return 0;
  return std::uint64_t(1) << (I - 1);
}

std::uint64_t HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0;
  Q = std::clamp(Q, 0.0, 1.0);
  // Rank of the requested sample, 1-based.
  std::uint64_t Rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(Q * Count + 0.5));
  Rank = std::min(Rank, Count);
  std::uint64_t Seen = 0;
  for (int I = 0; I != NumBuckets; ++I) {
    Seen += Buckets[static_cast<size_t>(I)];
    if (Seen >= Rank)
      return std::min(bucketUpperBound(I), Max);
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

struct MetricsRegistry::Impl {
  mutable std::mutex M;
  // unique_ptr values give instruments stable addresses across rehash-free
  // map growth; std::map keeps JSON/table output deterministically sorted.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry R;
  return R;
}

MetricsRegistry::Impl &MetricsRegistry::impl() const {
  static Impl I;
  return I;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  auto &Slot = I.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  auto &Slot = I.Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  auto &Slot = I.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

void MetricsRegistry::resetAll() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  for (auto &[_, C] : I.Counters)
    C->reset();
  for (auto &[_, G] : I.Gauges)
    G->reset();
  for (auto &[_, H] : I.Histograms)
    H->reset();
}

namespace {

/// Minimal JSON string escape; metric names are identifier-like but a dump
/// path or future label must not break the document.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void appendHistogramJson(std::ostringstream &OS, const HistogramSnapshot &S) {
  OS << "{\"count\":" << S.Count << ",\"sum\":" << S.Sum
     << ",\"min\":" << S.Min << ",\"max\":" << S.Max << ",\"p50\":" << S.p50()
     << ",\"p95\":" << S.p95() << ",\"p99\":" << S.p99() << ",\"buckets\":[";
  bool First = true;
  for (int I = 0; I != HistogramSnapshot::NumBuckets; ++I) {
    std::uint64_t N = S.Buckets[static_cast<size_t>(I)];
    if (N == 0)
      continue;
    if (!First)
      OS << ",";
    First = false;
    OS << "[" << HistogramSnapshot::bucketLowerBound(I) << "," << N << "]";
  }
  OS << "]}";
}

/// 123456789 -> "123.5ms"-style human duration for the profile table.
std::string humanNs(double Ns) {
  char Buf[32];
  if (Ns < 1e3)
    std::snprintf(Buf, sizeof(Buf), "%.0fns", Ns);
  else if (Ns < 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.1fus", Ns / 1e3);
  else if (Ns < 1e9)
    std::snprintf(Buf, sizeof(Buf), "%.1fms", Ns / 1e6);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2fs", Ns / 1e9);
  return Buf;
}

} // namespace

std::string MetricsRegistry::toJson() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  std::ostringstream OS;
  OS << "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : I.Counters) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << jsonEscape(Name) << "\":" << C->value();
  }
  OS << "},\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : I.Gauges) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << jsonEscape(Name) << "\":" << G->value();
  }
  OS << "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : I.Histograms) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << jsonEscape(Name) << "\":";
    appendHistogramJson(OS, H->snapshot());
  }
  OS << "}}";
  return OS.str();
}

std::string MetricsRegistry::profileTable() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  std::ostringstream OS;
  char Line[256];
  std::snprintf(Line, sizeof(Line), "%-26s %8s %10s %10s %10s %10s\n", "stage",
                "count", "total", "p50", "p95", "p99");
  OS << Line;
  for (const auto &[Name, H] : I.Histograms) {
    HistogramSnapshot S = H->snapshot();
    if (S.Count == 0)
      continue;
    std::snprintf(Line, sizeof(Line), "%-26s %8llu %10s %10s %10s %10s\n",
                  Name.c_str(), static_cast<unsigned long long>(S.Count),
                  humanNs(static_cast<double>(S.Sum)).c_str(),
                  humanNs(static_cast<double>(S.p50())).c_str(),
                  humanNs(static_cast<double>(S.p95())).c_str(),
                  humanNs(static_cast<double>(S.p99())).c_str());
    OS << Line;
  }
  bool Header = false;
  for (const auto &[Name, C] : I.Counters) {
    if (C->value() == 0)
      continue;
    if (!Header) {
      OS << "\ncounters\n";
      Header = true;
    }
    std::snprintf(Line, sizeof(Line), "  %-28s %llu\n", Name.c_str(),
                  static_cast<unsigned long long>(C->value()));
    OS << Line;
  }
  Header = false;
  for (const auto &[Name, G] : I.Gauges) {
    if (G->value() == 0)
      continue;
    if (!Header) {
      OS << "\ngauges\n";
      Header = true;
    }
    std::snprintf(Line, sizeof(Line), "  %-28s %lld\n", Name.c_str(),
                  static_cast<long long>(G->value()));
    OS << Line;
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Free-function shorthands
//===----------------------------------------------------------------------===//

Counter &counter(const std::string &Name) {
  return MetricsRegistry::instance().counter(Name);
}

Gauge &gauge(const std::string &Name) {
  return MetricsRegistry::instance().gauge(Name);
}

Histogram &histogram(const std::string &Name) {
  return MetricsRegistry::instance().histogram(Name);
}

std::string metricsJson() { return MetricsRegistry::instance().toJson(); }

std::string profileTable() {
  return MetricsRegistry::instance().profileTable();
}

void resetAllMetrics() { MetricsRegistry::instance().resetAll(); }

bool dumpMetricsIfConfigured() {
  EnvConfig &C = envConfig();
  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(C.M);
    Path = C.MetricsDumpPath;
  }
  if (Path.empty())
    return true;
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << metricsJson() << "\n";
  return static_cast<bool>(OS);
}

/// Used by Trace.cpp's dumpTraceIfConfigured to learn the SPL_TRACE path
/// without re-parsing the environment.
std::string configuredTraceDumpPath() {
  armedMask(); // Ensure the env was parsed.
  EnvConfig &C = envConfig();
  std::lock_guard<std::mutex> Lock(C.M);
  return C.TraceDumpPath;
}

} // namespace spl::telemetry
