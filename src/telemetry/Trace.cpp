//===- telemetry/Trace.cpp - Scoped-span tracer -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Trace.h"

#include <array>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unistd.h>
#include <vector>

namespace spl::telemetry {

namespace {

/// Process-wide trace epoch: the first call to traceNowNs() pins it.
std::chrono::steady_clock::time_point traceEpoch() {
  static const auto Epoch = std::chrono::steady_clock::now();
  return Epoch;
}

/// Small dense thread ordinals (chrome://tracing renders one row per tid;
/// raw pthread ids are unreadable 64-bit values).
std::uint32_t currentTid() {
  static std::atomic<std::uint32_t> NextTid{1};
  thread_local std::uint32_t Tid =
      NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

} // namespace

std::uint64_t traceNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - traceEpoch())
          .count());
}

struct Tracer::Impl {
  // Each slot is written completely before the next claim of the same slot
  // can happen in practice (a wrap-around race needs a thread stalled
  // across 64K records); toJson() additionally skips never-written slots
  // via the Name null check.
  std::array<TraceEvent, Capacity> Ring{};
  std::atomic<std::uint64_t> Next{0};
};

Tracer::Tracer() = default;

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

Tracer::Impl &Tracer::impl() const {
  static Impl I;
  return I;
}

void Tracer::record(const char *Name, std::uint64_t StartNs,
                    std::uint64_t DurNs) {
  if (!tracingEnabled())
    return;
  Impl &I = impl();
  std::uint64_t Idx = I.Next.fetch_add(1, std::memory_order_relaxed);
  TraceEvent &E = I.Ring[Idx & (Capacity - 1)];
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  E.Tid = currentTid();
  E.Name = Name; // Written last: toJson treats null Name as an empty slot.
}

std::uint64_t Tracer::recorded() const {
  return impl().Next.load(std::memory_order_relaxed);
}

void Tracer::reset() {
  Impl &I = impl();
  I.Next.store(0, std::memory_order_relaxed);
  for (auto &E : I.Ring)
    E = TraceEvent{};
}

std::string Tracer::toJson() const {
  Impl &I = impl();
  std::uint64_t N = I.Next.load(std::memory_order_relaxed);
  std::uint64_t First = N > Capacity ? N - Capacity : 0;
  std::ostringstream OS;
  OS << "[";
  int Pid = static_cast<int>(::getpid());
  bool Wrote = false;
  for (std::uint64_t Idx = First; Idx != N; ++Idx) {
    const TraceEvent &E = I.Ring[Idx & (Capacity - 1)];
    if (!E.Name)
      continue;
    if (Wrote)
      OS << ",\n";
    Wrote = true;
    // chrome://tracing wants microsecond floats; keep ns precision.
    OS << "{\"name\":\"" << E.Name << "\",\"ph\":\"X\",\"ts\":"
       << static_cast<double>(E.StartNs) / 1e3
       << ",\"dur\":" << static_cast<double>(E.DurNs) / 1e3
       << ",\"pid\":" << Pid << ",\"tid\":" << E.Tid << "}";
  }
  OS << "]\n";
  return OS.str();
}

std::string traceJson() { return Tracer::instance().toJson(); }

void resetTrace() { Tracer::instance().reset(); }

// Defined in Metrics.cpp, which owns the parsed env configuration.
std::string configuredTraceDumpPath();

bool dumpTraceIfConfigured() {
  std::string Path = configuredTraceDumpPath();
  if (Path.empty())
    return true;
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << traceJson();
  return static_cast<bool>(OS);
}

} // namespace spl::telemetry
