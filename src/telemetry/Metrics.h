//===- telemetry/Metrics.h - Process-wide metrics registry ------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-layer metrics for the compile/search/execute pipeline: counters,
/// gauges, and fixed-bucket latency histograms, collected in a process-wide
/// registry and exportable as JSON (`splrun --stats-json`) or a per-stage
/// profile table (`splc --profile`).
///
/// The discipline mirrors support::FaultInjection: when telemetry is
/// disarmed (the default), every instrumentation site costs exactly one
/// relaxed atomic load of a shared armed mask — no locks, no allocation, no
/// branches beyond the single test. Arming happens either programmatically
/// (the tools arm on `--profile`/`--stats-json`) or through the environment:
///
///   SPL_METRICS=1        collect metrics (query via API / tool flags)
///   SPL_METRICS=path     collect and dump registry JSON to `path` at exit
///   SPL_TRACE=1 / path   same for spans (see telemetry/Trace.h)
///
/// Instrumentation sites bind their instrument once and reuse it:
///
/// \code
///   static telemetry::Counter &Hits = telemetry::counter("wisdom.hits");
///   Hits.add();                       // one relaxed load when disarmed
/// \endcode
///
/// Registered instruments live for the life of the process (stable
/// addresses), so the `static` reference is safe from any thread.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TELEMETRY_METRICS_H
#define SPL_TELEMETRY_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace spl::telemetry {

//===----------------------------------------------------------------------===//
// Armed mask
//===----------------------------------------------------------------------===//

/// Bits of the process-wide armed mask.
enum ArmedBits : unsigned {
  kMetrics = 1u << 0, ///< Counters/gauges/histograms record.
  kTrace = 1u << 1,   ///< The span tracer records.
};

namespace detail {
/// The shared armed mask. Zero means fully disarmed; the env configuration
/// is parsed lazily on first query (same pattern as FaultInjection::Armed).
extern std::atomic<unsigned> ArmedMask;

/// Parses SPL_METRICS / SPL_TRACE once and stores the result in ArmedMask.
/// Returns the parsed mask.
unsigned parseEnvOnce();
} // namespace detail

/// Current armed mask; one relaxed load after the first (lazy) env parse.
inline unsigned armedMask() {
  unsigned M = detail::ArmedMask.load(std::memory_order_relaxed);
  if (M & 0x80000000u) // Unparsed sentinel — first call only.
    return detail::parseEnvOnce();
  return M;
}

/// True when any telemetry (metrics or tracing) is armed. This is the single
/// relaxed load hot paths pay when disarmed.
inline bool active() { return armedMask() != 0; }

/// True when metric recording is armed.
inline bool metricsEnabled() { return (armedMask() & kMetrics) != 0; }

/// True when span tracing is armed.
inline bool tracingEnabled() { return (armedMask() & kTrace) != 0; }

/// Programmatic arm/disarm, overriding the environment (used by the tools
/// for --profile/--stats-json and by tests).
void setMetricsEnabled(bool On);
void setTracingEnabled(bool On);

//===----------------------------------------------------------------------===//
// Instruments
//===----------------------------------------------------------------------===//

/// Monotonic event counter.
class Counter {
public:
  /// Adds \p N when metrics are armed; a single relaxed load otherwise.
  void add(std::uint64_t N = 1) {
    if (metricsEnabled())
      Value.fetch_add(N, std::memory_order_relaxed);
  }

  std::uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> Value{0};
};

/// Last-value gauge (e.g. live plan count).
class Gauge {
public:
  void set(std::int64_t V) {
    if (metricsEnabled())
      Value.store(V, std::memory_order_relaxed);
  }
  void add(std::int64_t N) {
    if (metricsEnabled())
      Value.fetch_add(N, std::memory_order_relaxed);
  }

  std::int64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> Value{0};
};

/// Point-in-time view of a Histogram; quantiles resolve to the upper bound
/// of the bucket containing the requested rank (empty snapshot -> all 0).
struct HistogramSnapshot {
  static constexpr int NumBuckets = 64;

  std::uint64_t Count = 0;
  std::uint64_t Sum = 0;
  std::uint64_t Min = 0;
  std::uint64_t Max = 0;
  std::array<std::uint64_t, NumBuckets> Buckets{};

  /// Value at quantile \p Q in [0,1]: the upper bound of the bucket holding
  /// the ceil(Q*Count)-th sample, clamped to the observed Max.
  std::uint64_t quantile(double Q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p95() const { return quantile(0.95); }
  std::uint64_t p99() const { return quantile(0.99); }

  /// Inclusive upper bound of bucket \p I: 0 for bucket 0, 2^I - 1 for
  /// 0 < I < NumBuckets-1. The final bucket saturates (holds every larger
  /// sample) and reports UINT64_MAX.
  static std::uint64_t bucketUpperBound(int I);
  /// Inclusive lower bound of bucket \p I: 0 for bucket 0, else 2^(I-1).
  static std::uint64_t bucketLowerBound(int I);
};

/// Fixed-bucket latency histogram over uint64 samples (nanoseconds by
/// convention). 64 power-of-two buckets keyed by bit width: bucket 0 holds
/// the value 0, bucket i holds [2^(i-1), 2^i - 1]; samples wider than the
/// last bucket saturate into it. record() is lock-free (relaxed atomics
/// plus CAS loops for min/max) and safe from any number of threads.
class Histogram {
public:
  static constexpr int NumBuckets = HistogramSnapshot::NumBuckets;

  /// Records \p Sample when metrics are armed; one relaxed load otherwise.
  void record(std::uint64_t Sample) {
    if (metricsEnabled())
      recordAlways(Sample);
  }

  /// Records unconditionally (for per-plan stats the caller gates itself).
  void recordAlways(std::uint64_t Sample);

  HistogramSnapshot snapshot() const;
  void reset();

  /// Bucket index for \p Sample: 0 for 0, else bit_width(Sample) clamped to
  /// the last bucket.
  static int bucketIndex(std::uint64_t Sample);

private:
  std::atomic<std::uint64_t> Count{0};
  std::atomic<std::uint64_t> Sum{0};
  std::atomic<std::uint64_t> Min{UINT64_MAX};
  std::atomic<std::uint64_t> Max{0};
  std::array<std::atomic<std::uint64_t>, NumBuckets> Buckets{};
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Named-instrument registry. Lookup is mutex-guarded (sites bind once into
/// a static reference, so the lock is off every hot path); instruments are
/// never deleted, so returned references stay valid for the process life.
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Zeroes every registered instrument (tests; tool reruns).
  void resetAll();

  /// Full registry as a JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,p50,p95,p99,buckets:[[lo,n]..]}}}.
  /// Zero-valued counters are included — absence means "never registered".
  std::string toJson() const;

  /// Human-readable per-stage table for `splc --profile`: histograms first
  /// (count/total/p50/p95/p99), then nonzero counters and gauges.
  std::string profileTable() const;

private:
  MetricsRegistry() = default;
  struct Impl;
  Impl &impl() const;
};

/// Convenience lookups against the process registry.
Counter &counter(const std::string &Name);
Gauge &gauge(const std::string &Name);
Histogram &histogram(const std::string &Name);

/// instance().toJson() / profileTable() / resetAll() shorthands.
std::string metricsJson();
std::string profileTable();
void resetAllMetrics();

/// If SPL_METRICS was set to a path, writes metricsJson() there now (also
/// installed as an atexit hook on first env parse). Returns false on write
/// failure.
bool dumpMetricsIfConfigured();

} // namespace spl::telemetry

#endif // SPL_TELEMETRY_METRICS_H
