//===- perf/MemoryModel.cpp - Memory accounting --------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "perf/MemoryModel.h"

using namespace spl;
using namespace spl::perf;
using namespace spl::icode;

MemoryUsage perf::accountProgram(const Program &P,
                                 std::uint64_t BytesPerInstr) {
  MemoryUsage U;
  std::uint64_t ElemBytes =
      P.Type == DataType::Real ? sizeof(double) : 2 * sizeof(double);
  for (std::int64_t S : P.TempVecSizes)
    U.TempBytes += static_cast<std::uint64_t>(S) * ElemBytes;
  for (const auto &T : P.Tables)
    U.TableBytes += T.size() * (P.Type == DataType::Real
                                    ? sizeof(double)
                                    : 2 * sizeof(double));
  // Loops cost a few control instructions; arithmetic dominates.
  U.CodeBytes = P.staticSize() * BytesPerInstr;
  return U;
}
