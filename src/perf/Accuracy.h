//===- perf/Accuracy.h - Accuracy measurement -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchfft-style accuracy metric of Figure 6: the relative L2 error of
/// a computed DFT against a higher-precision reference transform on random
/// input. (The paper used Frigo's benchfft package; this reimplements its
/// metric with a long-double split-radix reference.)
///
//===----------------------------------------------------------------------===//

#ifndef SPL_PERF_ACCURACY_H
#define SPL_PERF_ACCURACY_H

#include "ir/Matrix.h"

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

namespace spl {
namespace perf {

using CplxL = std::complex<long double>;

/// Computes the N-point DFT in long-double precision (recursive radix-2 for
/// powers of two, direct evaluation otherwise). Used as the accuracy
/// reference.
std::vector<CplxL> referenceDFT(const std::vector<CplxL> &X);

/// A transform under test: fills Out (size N) from In (size N).
using TransformFn =
    std::function<void(const std::vector<Cplx> &In, std::vector<Cplx> &Out)>;

/// Relative L2 error ||y - y_ref|| / ||y_ref|| of \p Fn on \p Trials random
/// N-point inputs (the benchfft metric); returns the mean over trials.
double relativeError(std::int64_t N, const TransformFn &Fn, int Trials = 4,
                     unsigned Seed = 99);

} // namespace perf
} // namespace spl

#endif // SPL_PERF_ACCURACY_H
