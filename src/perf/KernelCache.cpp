//===- perf/KernelCache.cpp - Persistent compiled-kernel cache ----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "perf/KernelCache.h"

#include "perf/NativeCompile.h"
#include "support/FileLock.h"
#include "support/HostInfo.h"
#include "support/StrUtil.h"
#include "telemetry/Metrics.h"
#include "telemetry/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#define SPL_KC_POSIX 1
#endif

using namespace spl;
using namespace spl::perf;

namespace fs = std::filesystem;

namespace {

// v1: "kernel <line-checksum> <key> <so-checksum> <so-bytes>" records. An
// unknown version header invalidates the whole index; the artifacts it
// described become orphans and are reclaimed by the next insert's sweep.
// The cache only ever degrades to recompilation, so dropping it is cheap.
constexpr const char *IndexVersionHeader = "spl-kernelcache v1";

std::mutex ConfigM;
KernelCache::Config GConfig;
bool GResolved = false;

/// Parses SPL_KERNEL_CACHE / SPL_KERNEL_CACHE_MB once (call under ConfigM).
void resolveEnvLocked() {
  if (GResolved)
    return;
  GResolved = true;
  if (const char *Env = std::getenv("SPL_KERNEL_CACHE")) {
    std::string V = toLower(Env);
    if (!V.empty() && V != "0" && V != "off" && V != "none") {
      GConfig.Enabled = true;
      GConfig.Dir = Env;
    }
  }
  if (const char *MB = std::getenv("SPL_KERNEL_CACHE_MB")) {
    long long N = std::atoll(MB);
    if (N > 0)
      GConfig.MaxBytes = static_cast<std::uint64_t>(N) << 20;
  }
}

/// One index record: what the artifact must hash to, and its size.
struct IndexEntry {
  std::string SoCksum;
  std::uint64_t SoBytes = 0;
};

std::string indexPath(const std::string &Dir) { return Dir + "/index"; }
std::string lockPath(const std::string &Dir) { return Dir + "/index.lock"; }
std::string soPath(const std::string &Dir, const std::string &Key) {
  return Dir + "/" + Key + ".so";
}

/// Reads \p Path fully into \p Out (binary). False when unreadable.
bool readFileBytes(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad())
    return false;
  Out = SS.str();
  return true;
}

/// Parses the index into \p Into. Corrupt or checksum-failing lines are
/// skipped and counted into \p CorruptLines (when non-null); a missing
/// index is an empty cache; a wrong version header invalidates everything.
void loadIndex(const std::string &Dir,
               std::map<std::string, IndexEntry> &Into,
               std::size_t *CorruptLines) {
  std::ifstream In(indexPath(Dir));
  if (!In)
    return;
  std::string Line;
  if (!std::getline(In, Line) || Line != IndexVersionHeader)
    return;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    auto Reject = [&] {
      if (CorruptLines)
        ++*CorruptLines;
    };
    std::istringstream SS(Line);
    std::string Tag, Checksum;
    if (!(SS >> Tag >> Checksum) || Tag != "kernel") {
      Reject();
      continue;
    }
    std::string Payload;
    std::getline(SS, Payload);
    if (!Payload.empty() && Payload.front() == ' ')
      Payload.erase(0, 1);
    if (fnv1aHex(Payload) != Checksum) {
      Reject();
      continue;
    }
    std::istringstream PS(Payload);
    std::string Key, SoCksum;
    long long Bytes = 0;
    if (!(PS >> Key >> SoCksum >> Bytes) || Key.empty() ||
        SoCksum.size() != 16 || Bytes <= 0) {
      Reject();
      continue;
    }
    Into[Key] = IndexEntry{SoCksum, static_cast<std::uint64_t>(Bytes)};
  }
}

/// Rewrites the index (temp file + rename). False on write failure.
bool writeIndex(const std::string &Dir,
                const std::map<std::string, IndexEntry> &Index) {
  std::string Tmp = indexPath(Dir) + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return false;
    Out << IndexVersionHeader << '\n';
    for (const auto &[Key, E] : Index) {
      std::string Payload =
          Key + ' ' + E.SoCksum + ' ' + std::to_string(E.SoBytes);
      Out << "kernel " << fnv1aHex(Payload) << ' ' << Payload << '\n';
    }
    if (!Out.good())
      return false;
  }
  if (std::rename(Tmp.c_str(), indexPath(Dir).c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

/// Refreshes the artifact's mtime so LRU eviction sees the hit (best
/// effort; a failed touch only ages the entry).
void touchArtifact(const std::string &Path) {
#if defined(SPL_KC_POSIX)
  ::utimensat(AT_FDCWD, Path.c_str(), nullptr, 0);
#else
  (void)Path;
#endif
}

} // namespace

KernelCache::Config KernelCache::config() {
  std::lock_guard<std::mutex> Lock(ConfigM);
  resolveEnvLocked();
  Config C = GConfig;
  if (C.Enabled && C.Dir.empty())
    C.Dir = defaultDir();
  return C;
}

void KernelCache::configure(const Config &C) {
  std::lock_guard<std::mutex> Lock(ConfigM);
  GResolved = true;
  GConfig = C;
}

void KernelCache::setDirectory(const std::string &Dir) {
  std::lock_guard<std::mutex> Lock(ConfigM);
  resolveEnvLocked();
  GConfig.Enabled = true;
  GConfig.Dir = Dir;
}

void KernelCache::setEnabled(bool On) {
  std::lock_guard<std::mutex> Lock(ConfigM);
  resolveEnvLocked();
  GConfig.Enabled = On;
}

std::string KernelCache::defaultDir() {
  if (const char *Home = std::getenv("HOME"))
    if (*Home)
      return std::string(Home) + "/.spl_kernel_cache";
  return ".spl_kernel_cache";
}

std::string KernelCache::directory() {
  Config C = config();
  return C.Enabled ? C.Dir : std::string();
}

std::string KernelCache::key(const std::string &CSource,
                             const std::string &FnName,
                             const std::string &ExtraFlags,
                             const std::string &VariantTag) {
  // Everything that can change the produced machine code, one line each.
  // The source text is folded to its own hash first so the payload stays
  // small; the outer hash is the cache key (docs/KERNEL_CACHE.md). v2
  // added the codegen-variant line (scalar vs vector:<isa>).
  std::string Payload;
  Payload += "spl-kernelcache-key v2\n";
  Payload += "host " + HostInfo::fingerprint() + "\n";
  Payload += "cc " + NativeModule::compilerIdentity() + "\n";
  Payload += "flags " + ExtraFlags + "\n";
  Payload += "variant " + (VariantTag.empty() ? "scalar" : VariantTag) + "\n";
  Payload += "fn " + FnName + "\n";
  Payload += "src " + fnv1aHex(CSource) + "\n";
  return fnv1aHex(Payload);
}

std::optional<std::string> KernelCache::probe(const std::string &Key) {
  Config C = config();
  if (!C.Enabled)
    return std::nullopt;
  static telemetry::Counter &Hits = telemetry::counter("kernelcache.hits");
  static telemetry::Counter &Misses =
      telemetry::counter("kernelcache.misses");
  static telemetry::Counter &Corrupt =
      telemetry::counter("kernelcache.corrupt_entries");
  static telemetry::Histogram &ProbeNs =
      telemetry::histogram("kernelcache.probe_ns");
  telemetry::StageTimer T("kernelcache-probe", &ProbeNs);

  std::string Artifact = soPath(C.Dir, Key);
  bool CorruptArtifact = false;
  {
    // Shared lock: never read the index or an artifact mid-replacement.
    FileLock FL(lockPath(C.Dir), LOCK_SH);
    std::map<std::string, IndexEntry> Index;
    loadIndex(C.Dir, Index, nullptr);
    auto It = Index.find(Key);
    if (It == Index.end()) {
      Misses.add();
      return std::nullopt;
    }
    std::string Bytes;
    if (!readFileBytes(Artifact, Bytes) ||
        Bytes.size() != It->second.SoBytes ||
        fnv1aHex(Bytes) != It->second.SoCksum)
      CorruptArtifact = true;
  }
  if (CorruptArtifact) {
    // A flipped or truncated artifact degrades to a recompile: drop the
    // entry so the caller's (lock-serialized) rebuild repopulates it.
    Corrupt.add();
    Misses.add();
    remove(Key);
    return std::nullopt;
  }
  Hits.add();
  touchArtifact(Artifact);
  return Artifact;
}

std::optional<std::string> KernelCache::insert(const std::string &Key,
                                               const std::string &SoPath) {
  Config C = config();
  if (!C.Enabled)
    return std::nullopt;
  static telemetry::Counter &Inserts =
      telemetry::counter("kernelcache.inserts");
  static telemetry::Counter &Evictions =
      telemetry::counter("kernelcache.evictions");
  static telemetry::Counter &Corrupt =
      telemetry::counter("kernelcache.corrupt_entries");

  std::error_code EC;
  fs::create_directories(C.Dir, EC);
  std::string Bytes;
  if (!readFileBytes(SoPath, Bytes) || Bytes.empty())
    return std::nullopt;

  // Exclusive lock across read-rewrite-rename: inserts, evictions, and the
  // orphan sweep all serialize here.
  FileLock FL(lockPath(C.Dir), LOCK_EX);

  std::map<std::string, IndexEntry> Index;
  std::size_t CorruptLines = 0;
  loadIndex(C.Dir, Index, &CorruptLines);
  if (CorruptLines)
    Corrupt.add(CorruptLines);

  // Artifact first (temp + rename, same filesystem), then the index that
  // vouches for it: a crash between the two leaves an orphan, never an
  // index entry pointing at garbage.
  std::string Dest = soPath(C.Dir, Key);
  std::string Tmp = Dest + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (Out)
      Out << Bytes;
    if (!Out) {
      std::remove(Tmp.c_str());
      return std::nullopt;
    }
  }
  if (std::rename(Tmp.c_str(), Dest.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return std::nullopt;
  }
  Index[Key] = IndexEntry{fnv1aHex(Bytes), Bytes.size()};

  // Drop entries whose artifact has vanished underneath the index.
  for (auto It = Index.begin(); It != Index.end();) {
    if (It->first != Key && !fs::exists(soPath(C.Dir, It->first), EC))
      It = Index.erase(It);
    else
      ++It;
  }

  // LRU eviction past the byte budget: oldest artifact mtime goes first
  // (probes refresh mtime on every hit). The just-inserted key always
  // survives, so one oversized kernel degrades the bound rather than
  // thrashing forever.
  std::uint64_t Total = 0;
  for (const auto &[K, E] : Index)
    Total += E.SoBytes;
  if (Total > C.MaxBytes) {
    struct Victim {
      fs::file_time_type MTime;
      std::string Key;
      std::uint64_t Bytes;
    };
    std::vector<Victim> Victims;
    for (const auto &[K, E] : Index) {
      if (K == Key)
        continue;
      fs::file_time_type M = fs::last_write_time(soPath(C.Dir, K), EC);
      Victims.push_back({EC ? fs::file_time_type::min() : M, K, E.SoBytes});
    }
    std::sort(Victims.begin(), Victims.end(),
              [](const Victim &A, const Victim &B) {
                return A.MTime != B.MTime ? A.MTime < B.MTime
                                          : A.Key < B.Key;
              });
    for (const Victim &V : Victims) {
      if (Total <= C.MaxBytes)
        break;
      std::remove(soPath(C.Dir, V.Key).c_str());
      std::remove((C.Dir + "/" + V.Key + ".lock").c_str());
      Index.erase(V.Key);
      Total -= V.Bytes;
      Evictions.add();
    }
  }

  // Orphan sweep: artifacts the index no longer vouches for (crash
  // leftovers, alien files, artifacts described by a discarded corrupt
  // index) and stale temp files are reclaimed. All writers hold the
  // exclusive lock, so anything unreferenced here is garbage.
  for (const auto &Entry : fs::directory_iterator(C.Dir, EC)) {
    std::string Name = Entry.path().filename().string();
    if (Name.size() > 3 && Name.compare(Name.size() - 3, 3, ".so") == 0) {
      std::string K = Name.substr(0, Name.size() - 3);
      if (!Index.count(K))
        std::remove(Entry.path().c_str());
    } else if (Name.find(".so.tmp") != std::string::npos) {
      std::remove(Entry.path().c_str());
    }
  }

  if (!writeIndex(C.Dir, Index))
    return std::nullopt;
  Inserts.add();
  return Dest;
}

void KernelCache::remove(const std::string &Key) {
  Config C = config();
  if (!C.Enabled)
    return;
  FileLock FL(lockPath(C.Dir), LOCK_EX);
  std::map<std::string, IndexEntry> Index;
  loadIndex(C.Dir, Index, nullptr);
  if (Index.erase(Key))
    writeIndex(C.Dir, Index);
  std::remove(soPath(C.Dir, Key).c_str());
}

KernelCache::PopulationLock::PopulationLock(const std::string &Key) {
#if defined(SPL_KC_POSIX)
  Config C = config();
  if (!C.Enabled)
    return;
  std::error_code EC;
  fs::create_directories(C.Dir, EC);
  Fd = ::open((C.Dir + "/" + Key + ".lock").c_str(),
              O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (Fd >= 0 && ::flock(Fd, LOCK_EX) != 0) {
    ::close(Fd);
    Fd = -1;
  }
#else
  (void)Key;
#endif
}

KernelCache::PopulationLock::~PopulationLock() {
#if defined(SPL_KC_POSIX)
  if (Fd >= 0) {
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
  }
#endif
}
