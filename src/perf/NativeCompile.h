//===- perf/NativeCompile.h - Compile-and-load evaluation -------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles emitted C code with the system C compiler and loads it with
/// dlopen. This is the honest timing path for the benchmark harnesses: the
/// generated code runs as native machine code, exactly as the paper's
/// back-end Fortran/C compilers produced it. Falls back gracefully (callers
/// check available()) when no compiler is installed.
///
/// Compiler invocations run through support/Subprocess: wall-clock bounded
/// (SPL_CC_TIMEOUT_MS, default 60 s), output captured into the error
/// message, one bounded retry on transient failure (compiler crash or
/// timeout), and SPL_FAULT sites on every failure path — see
/// docs/RELIABILITY.md.
///
/// When the persistent kernel cache is enabled (perf/KernelCache.h,
/// docs/KERNEL_CACHE.md) compile() probes it before forking the compiler
/// and maps a verified cached artifact directly; fresh compiles populate
/// the cache under a per-key flock so concurrent processes build each
/// kernel at most once. native.compiles counts only real compiler
/// invocations, so a fully warm run shows native.compiles == 0.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_PERF_NATIVECOMPILE_H
#define SPL_PERF_NATIVECOMPILE_H

#include "support/Deadline.h"

#include <memory>
#include <optional>
#include <string>

namespace spl {
namespace perf {

/// A loaded shared object holding one generated kernel.
class NativeModule {
public:
  /// Signature of generated kernels without stride parameters.
  using KernelFn = void (*)(double *Y, const double *X);

  /// Compiles \p CSource and loads symbol \p FnName. On failure returns
  /// nullptr and, when \p Error is non-null, stores the compiler output.
  /// \p TimedOut (when non-null) reports whether the failure was the
  /// compile deadline expiring rather than a compiler diagnostic.
  /// \p KeyTag extends the kernel-cache key with the codegen variant that
  /// produced the source ("" scalar, "vector:<isa>" for the vector
  /// backend) — see KernelCache::key.
  /// \p Deadline caps the invocation by the caller's remaining budget: the
  /// effective subprocess timeout is min(SPL_CC_TIMEOUT_MS, remaining), and
  /// an already-expired deadline fails fast (reported through \p TimedOut)
  /// without forking at all. Kernel-cache hits ignore the deadline — a map
  /// is effectively free. Fresh compiles are additionally gated by the
  /// process-wide support::compileBreaker(): while it is open they fail
  /// fast with the breaker's describe() message, and every real compiler
  /// outcome (success / failure / timeout) feeds the breaker's state.
  static std::unique_ptr<NativeModule>
  compile(const std::string &CSource, const std::string &FnName,
          std::string *Error = nullptr,
          const std::string &ExtraFlags = "-O2", bool *TimedOut = nullptr,
          const std::string &KeyTag = "",
          const support::Deadline &Deadline = support::Deadline());

  /// True when a working C compiler was found on this machine (cached).
  static bool available();

  /// The compiler's identity string: the SPL_CC command plus the first
  /// line of its --version output (captured by the same probe as
  /// available(), so the warm path never forks). Part of the kernel-cache
  /// key — a compiler upgrade invalidates every cached artifact.
  static const std::string &compilerIdentity();

  /// The per-invocation compile deadline (SPL_CC_TIMEOUT_MS, default 60 s).
  static double compileTimeoutSeconds();

  KernelFn fn() const { return Fn; }

  /// Looks up an additional symbol (e.g. the <name>_set_tables hook emitted
  /// with CEmitOptions::ExternalTables). Null when absent.
  void *symbol(const char *Name) const;

  ~NativeModule();
  NativeModule(const NativeModule &) = delete;
  NativeModule &operator=(const NativeModule &) = delete;

private:
  NativeModule() = default;

  /// dlopens \p SoPath and resolves \p FnName. \p OwnsSo decides whether
  /// the module deletes the .so in its destructor: true for freshly
  /// compiled temp artifacts, false for files owned by the kernel cache.
  static std::unique_ptr<NativeModule> loadModule(const std::string &SoPath,
                                                  const std::string &FnName,
                                                  bool OwnsSo,
                                                  std::string *Error);

  /// The uncached compile path: write source, fork the compiler, load.
  static std::unique_ptr<NativeModule>
  compileFresh(const std::string &CSource, const std::string &FnName,
               std::string *Error, const std::string &ExtraFlags,
               bool *TimedOut, const support::Deadline &Deadline);

  void *Handle = nullptr;
  KernelFn Fn = nullptr;
  std::string SoPath;
  bool OwnsSo = true;
};

} // namespace perf
} // namespace spl

#endif // SPL_PERF_NATIVECOMPILE_H
