//===- perf/KernelRunner.h - Run generated kernels natively -----*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience wrapper that takes a final i-code program, emits C with
/// run-time table binding, compiles it with the system compiler, loads it,
/// feeds it the twiddle tables, and offers buffers and timing — one call
/// from "searched formula" to "native numbers", used by the benchmark
/// harnesses and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_PERF_KERNELRUNNER_H
#define SPL_PERF_KERNELRUNNER_H

#include "codegen/VectorISA.h"
#include "icode/ICode.h"
#include "perf/NativeCompile.h"

#include <memory>
#include <string>
#include <vector>

namespace spl {
namespace perf {

/// Why building a native kernel failed. Every failure mode reports through
/// this type instead of aborting, so callers (the runtime planner in
/// particular) can distinguish "no compiler on this machine" from "this
/// program cannot be a native kernel" and fall back accordingly.
enum class KernelErrorKind {
  None,           ///< Success.
  NoCompiler,     ///< No working system C compiler (see SPL_CC).
  NotRealTyped,   ///< Program is complex-typed; the C backend needs real.
  CompileFailed,  ///< The C compiler or dlopen rejected the generated code.
  CompileTimeout, ///< The C compile exceeded SPL_CC_TIMEOUT_MS and was killed.
  MissingSymbol,  ///< Generated module lacks an expected symbol.
  TrialFailed,    ///< The kernel crashed or hung during trial execution.
};

/// A typed kernel-build error: machine-readable kind plus human detail.
struct KernelError {
  KernelErrorKind Kind = KernelErrorKind::None;
  std::string Message;

  explicit operator bool() const { return Kind != KernelErrorKind::None; }

  /// Stable lowercase token for the kind ("no-compiler", ...).
  const char *kindName() const;

  /// "<kind>: <message>" (or just the kind when there is no detail).
  std::string str() const;
};

/// Knobs for building a native kernel.
struct KernelBuildOptions {
  /// Emit reentrant code (no mutable static storage) so one kernel can run
  /// on many threads at once. Used by the runtime layer's batch dispatch.
  bool ThreadSafe = false;

  /// Flags handed to the system C compiler. The vector variant appends the
  /// ISA's own flags (codegen::isaCompilerFlags) on top.
  std::string ExtraFlags = "-O2";

  /// Which emitter to use: Scalar renders plain C (codegen::emitC, one
  /// transform per call); Vector renders SIMD intrinsics
  /// (codegen::emitVectorC, lanes() transform columns per call in the
  /// slot-major layout). The two variants get distinct kernel-cache keys.
  codegen::CodegenVariant Variant = codegen::CodegenVariant::Scalar;

  /// Instruction set for the Vector variant (ignored for Scalar).
  /// Defaults to the host probe; forcing an ISA the hardware lacks is the
  /// trial execution's problem (SIGILL in the forked guard).
  codegen::VectorISA ISA = codegen::detectISA();

  /// Remaining caller budget for the build: the compiler subprocess runs
  /// under min(SPL_CC_TIMEOUT_MS, remaining), and an expired deadline
  /// fails fast with KernelErrorKind::CompileTimeout before forking.
  /// Default: unbounded.
  support::Deadline Deadline;
};

/// A natively compiled, loaded and table-bound generated kernel.
class CompiledKernel {
public:
  /// Emits, compiles and loads \p Final. Returns null with \p Err filled
  /// (when non-null) on any failure: no C compiler, a complex-typed
  /// program, compilation/load trouble. Never aborts.
  static std::unique_ptr<CompiledKernel>
  create(const icode::Program &Final, KernelError *Err,
         const KernelBuildOptions &BuildOpts = KernelBuildOptions());

  /// Convenience overload keeping the historical string-error interface.
  static std::unique_ptr<CompiledKernel> create(const icode::Program &Final,
                                                std::string *Error = nullptr);

  /// Buffer lengths in doubles (2x the logical size for lowered-complex
  /// programs, additionally scaled by lanes() for vector kernels).
  std::int64_t inLen() const { return InLen; }
  std::int64_t outLen() const { return OutLen; }

  /// Transform columns computed per call: 1 for scalar kernels,
  /// laneCount(ISA) for vector kernels (slot-major layout, see
  /// codegen/VectorEmitter.h).
  int lanes() const { return Lanes; }

  /// The variant this kernel was built with.
  codegen::CodegenVariant variant() const { return Variant; }

  /// Runs the kernel once (one call computes lanes() transforms).
  void run(double *Y, const double *X) const { Fn(Y, X); }

  /// Best-of-\p Repeats seconds per kernel call on random data (divide by
  /// lanes() for seconds per transform).
  double time(int Repeats = 3) const;

  /// Outcome of a guarded trial execution.
  struct TrialResult {
    bool Ok = false;
    std::string Reason; ///< "died on signal 11", "timed out", ... when !Ok.
  };

  /// Proves the kernel once in a forked guard process bounded by
  /// \p TimeoutSeconds: runs it on deterministic random data and checks
  /// every output is finite. A kernel that crashes, hangs, or emits
  /// NaN/Inf fails the trial without harming this process. On platforms
  /// without fork the kernel runs inline (unguarded).
  TrialResult trial(double TimeoutSeconds) const;

private:
  CompiledKernel() = default;

  std::unique_ptr<NativeModule> Mod;
  NativeModule::KernelFn Fn = nullptr;
  std::vector<std::vector<double>> Tables; ///< Must outlive the module use.
  std::int64_t InLen = 0, OutLen = 0;
  int Lanes = 1;
  codegen::CodegenVariant Variant = codegen::CodegenVariant::Scalar;
};

} // namespace perf
} // namespace spl

#endif // SPL_PERF_KERNELRUNNER_H
