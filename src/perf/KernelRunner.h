//===- perf/KernelRunner.h - Run generated kernels natively -----*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience wrapper that takes a final i-code program, emits C with
/// run-time table binding, compiles it with the system compiler, loads it,
/// feeds it the twiddle tables, and offers buffers and timing — one call
/// from "searched formula" to "native numbers", used by the benchmark
/// harnesses and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_PERF_KERNELRUNNER_H
#define SPL_PERF_KERNELRUNNER_H

#include "icode/ICode.h"
#include "perf/NativeCompile.h"

#include <memory>
#include <string>
#include <vector>

namespace spl {
namespace perf {

/// A natively compiled, loaded and table-bound generated kernel.
class CompiledKernel {
public:
  /// Emits, compiles and loads \p Final. Returns null (with \p Error
  /// filled when non-null) if no C compiler is available or compilation
  /// fails. The program must be real-typed (C backend requirement).
  static std::unique_ptr<CompiledKernel> create(const icode::Program &Final,
                                                std::string *Error = nullptr);

  /// Buffer lengths in doubles (2x the logical size for lowered-complex
  /// programs).
  std::int64_t inLen() const { return InLen; }
  std::int64_t outLen() const { return OutLen; }

  /// Runs the kernel once.
  void run(double *Y, const double *X) const { Fn(Y, X); }

  /// Best-of-\p Repeats seconds per transform on random data.
  double time(int Repeats = 3) const;

private:
  CompiledKernel() = default;

  std::unique_ptr<NativeModule> Mod;
  NativeModule::KernelFn Fn = nullptr;
  std::vector<std::vector<double>> Tables; ///< Must outlive the module use.
  std::int64_t InLen = 0, OutLen = 0;
};

} // namespace perf
} // namespace spl

#endif // SPL_PERF_KERNELRUNNER_H
