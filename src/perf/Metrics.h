//===- perf/Metrics.h - Performance metrics ---------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's performance metric: "pseudo MFlops" = 5 N log2(N) / t, with t
/// in microseconds (Section 4.1) — the standard FFT metric that charges
/// every algorithm the radix-2 operation count.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_PERF_METRICS_H
#define SPL_PERF_METRICS_H

#include <cstdint>

namespace spl {
namespace perf {

/// Pseudo MFlops for an N-point FFT taking \p Seconds per transform.
double pseudoMFlops(std::int64_t N, double Seconds);

/// The nominal FFT operation count 5 N log2 N.
double nominalFlops(std::int64_t N);

} // namespace perf
} // namespace spl

#endif // SPL_PERF_METRICS_H
