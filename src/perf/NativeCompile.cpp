//===- perf/NativeCompile.cpp - Compile-and-load evaluation -----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "perf/NativeCompile.h"

#include "perf/KernelCache.h"
#include "support/CircuitBreaker.h"
#include "support/FaultInjection.h"
#include "support/Subprocess.h"
#include "telemetry/Trace.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <unistd.h>
#define SPL_HAVE_DLOPEN 1
#endif

using namespace spl;
using namespace spl::perf;

namespace {

/// Compiler command; overridable with the SPL_CC environment variable. May
/// contain extra tokens ("gcc -pipe"), so it is split into argv form.
std::vector<std::string> ccArgv() {
  if (const char *Env = std::getenv("SPL_CC"))
    return splitCommandArgs(Env);
  return {"cc"};
}

/// Temp artifacts go under TMPDIR when set (tests point it at a private
/// directory to assert nothing leaks), else /tmp.
std::string uniqueStem() {
  static std::atomic<unsigned> Counter{0};
  std::string Dir = "/tmp";
  if (const char *Env = std::getenv("TMPDIR"))
    if (*Env) {
      Dir = Env;
      while (Dir.size() > 1 && Dir.back() == '/')
        Dir.pop_back();
    }
  std::ostringstream SS;
  SS << Dir << "/spl-native-" << getpid() << "-" << Counter++;
  return SS.str();
}

/// One probe answers both "is there a compiler?" and "which one, exactly?"
/// so the warm (cache-hit) path never pays an extra fork for identity.
struct CcProbe {
  bool Available = false;
  std::string Identity;
};

const CcProbe &ccProbe() {
  // Initialized exactly once even when parallel search workers race here.
  static const CcProbe Cached = [] {
    CcProbe P;
    std::vector<std::string> Argv = ccArgv();
    std::ostringstream Cmd;
    for (size_t I = 0; I != Argv.size(); ++I)
      Cmd << (I ? " " : "") << Argv[I];
    Argv.push_back("--version");
    SubprocessOptions Opts;
    Opts.TimeoutSeconds = 10.0;
    SubprocessResult R = runSubprocess(Argv, Opts);
    P.Available = R.ok();
    std::string FirstLine = R.Output.substr(0, R.Output.find('\n'));
    P.Identity = Cmd.str() + (FirstLine.empty() ? "" : " | " + FirstLine);
    return P;
  }();
  return Cached;
}

/// One compiler invocation, with every fault-injection site that can afflict
/// it. The hang site swaps in a sleeping child so the real kill-on-expiry
/// path is exercised; the crash and plain-failure sites synthesize results.
SubprocessResult invokeCompiler(const std::vector<std::string> &Argv,
                                double TimeoutSeconds) {
  if (fault::at("native-compile")) {
    SubprocessResult R;
    R.ExitCode = 1;
    R.Output = fault::describe("native-compile");
    return R;
  }
  if (fault::at("native-compile-crash")) {
    SubprocessResult R;
    R.Signal = SIGSEGV;
    R.Output = fault::describe("native-compile-crash");
    return R;
  }
  SubprocessOptions Opts;
  Opts.TimeoutSeconds = TimeoutSeconds;
  if (fault::at("native-compile-hang"))
    return runSubprocess({"sh", "-c", "sleep 600"}, Opts);
  return runSubprocess(Argv, Opts);
}

} // namespace

double NativeModule::compileTimeoutSeconds() {
  return envTimeoutSeconds("SPL_CC_TIMEOUT_MS", 60.0);
}

bool NativeModule::available() {
#if !defined(SPL_HAVE_DLOPEN)
  return false;
#else
  return ccProbe().Available;
#endif
}

const std::string &NativeModule::compilerIdentity() {
  return ccProbe().Identity;
}

std::unique_ptr<NativeModule>
NativeModule::loadModule(const std::string &SoPath, const std::string &FnName,
                         bool OwnsSo, std::string *Error) {
#if !defined(SPL_HAVE_DLOPEN)
  (void)SoPath;
  (void)FnName;
  (void)OwnsSo;
  if (Error)
    *Error = "dlopen is not available on this platform";
  return nullptr;
#else
  void *Handle = nullptr;
  if (!fault::at("dlopen"))
    Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    if (Error) {
      const char *DLErr = dlerror();
      *Error = std::string("dlopen failed: ") +
               (DLErr ? DLErr : fault::describe("dlopen").c_str());
    }
    if (OwnsSo)
      std::remove(SoPath.c_str());
    return nullptr;
  }
  void *Sym = fault::at("dlsym") ? nullptr : dlsym(Handle, FnName.c_str());
  if (!Sym) {
    if (Error)
      *Error = "symbol '" + FnName + "' not found in generated module";
    dlclose(Handle);
    if (OwnsSo)
      std::remove(SoPath.c_str());
    return nullptr;
  }

  auto M = std::unique_ptr<NativeModule>(new NativeModule());
  M->Handle = Handle;
  M->Fn = reinterpret_cast<KernelFn>(Sym);
  M->SoPath = SoPath;
  M->OwnsSo = OwnsSo;
  return M;
#endif
}

std::unique_ptr<NativeModule>
NativeModule::compileFresh(const std::string &CSource,
                           const std::string &FnName, std::string *Error,
                           const std::string &ExtraFlags, bool *TimedOut,
                           const support::Deadline &Deadline) {
#if !defined(SPL_HAVE_DLOPEN)
  (void)CSource;
  (void)FnName;
  (void)ExtraFlags;
  (void)TimedOut;
  (void)Deadline;
  if (Error)
    *Error = "dlopen is not available on this platform";
  return nullptr;
#else
  // An exhausted caller budget fails fast before the source is even
  // written; this is the caller's deadline, not compiler sickness, so the
  // breaker does not hear about it.
  if (Deadline.expired()) {
    if (TimedOut)
      *TimedOut = true;
    if (Error)
      *Error = "compilation skipped: the caller's deadline is already "
               "spent (see --deadline-ms)";
    return nullptr;
  }
  // While the breaker is open the compiler is presumed sick: fail fast and
  // let the planner degrade to the VM tier instead of forking.
  support::CircuitBreaker &Breaker = support::compileBreaker();
  if (!Breaker.allow()) {
    if (TimedOut)
      *TimedOut = false;
    if (Error)
      *Error = Breaker.describe();
    return nullptr;
  }
  // Every admitted attempt MUST report back, or a half-open probe would
  // stay in flight forever and wedge the breaker open. Success is flipped
  // once the compiler invocation itself succeeds; failures on the way
  // (unwritable temp dir included) count against the dependency.
  struct BreakerOutcome {
    support::CircuitBreaker &B;
    bool Success = false;
    ~BreakerOutcome() { Success ? B.recordSuccess() : B.recordFailure(); }
  } Outcome{Breaker};
  std::string Stem = uniqueStem();
  std::string CPath = Stem + ".c";
  std::string SoPath = Stem + ".so";
  // Every early exit removes the source; the .so is owned by the module (or
  // removed on its own failure paths below).
  struct SourceGuard {
    const std::string &Path;
    ~SourceGuard() { std::remove(Path.c_str()); }
  } Guard{CPath};

  {
    std::ofstream Out(CPath);
    if (!Out) {
      if (Error)
        *Error = "cannot write " + CPath;
      return nullptr;
    }
    Out << CSource;
    if (!Out.good()) {
      if (Error)
        *Error = "error writing " + CPath;
      return nullptr;
    }
  }

  std::vector<std::string> Argv = ccArgv();
  for (std::string &F : splitCommandArgs(ExtraFlags))
    Argv.push_back(std::move(F));
  Argv.push_back("-shared");
  Argv.push_back("-fPIC");
  Argv.push_back("-o");
  Argv.push_back(SoPath);
  Argv.push_back(CPath);

  // The compiler's leash is the smaller of the fixed env knob and the
  // caller's remaining budget — a request with 2 s left never waits 60 s
  // for a wedged cc.
  double Timeout = compileTimeoutSeconds();
  const double Remaining = Deadline.remainingSeconds();
  if (std::isfinite(Remaining))
    Timeout = Timeout > 0 ? std::min(Timeout, Remaining) : Remaining;
  static telemetry::Counter &Compiles = telemetry::counter("native.compiles");
  static telemetry::Counter &Retries =
      telemetry::counter("native.compile_retries");
  static telemetry::Counter &Failures =
      telemetry::counter("native.compile_failures");
  static telemetry::Counter &Timeouts =
      telemetry::counter("native.compile_timeouts");
  static telemetry::Histogram &CompileNs =
      telemetry::histogram("native.compile_ns");
  Compiles.add();
  // One bounded retry, and only for transient failures (a crashed or
  // timed-out compiler); a deterministic nonzero exit is a real diagnostic
  // and retrying it would just double the latency of every bad kernel.
  SubprocessResult R;
  {
    telemetry::StageTimer T("native-compile", &CompileNs);
    for (int Attempt = 0;; ++Attempt) {
      R = invokeCompiler(Argv, Timeout);
      if (R.ok() || !R.transient() || Attempt >= 1)
        break;
      // The retry must fit the remaining budget too.
      if (Deadline.expired())
        break;
      Retries.add();
    }
  }
  Outcome.Success = R.ok();
  if (!R.ok()) {
    Failures.add();
    if (R.TimedOut)
      Timeouts.add();
    if (TimedOut)
      *TimedOut = R.TimedOut;
    if (Error) {
      std::ostringstream SS;
      SS << "compilation " << (R.TimedOut ? "timed out" : "failed") << " ("
         << R.describe();
      if (R.TimedOut)
        SS << " after " << Timeout << " s; see SPL_CC_TIMEOUT_MS";
      SS << ")";
      if (!R.Output.empty())
        SS << ":\n" << R.Output;
      *Error = SS.str();
    }
    std::remove(SoPath.c_str());
    return nullptr;
  }

  return loadModule(SoPath, FnName, /*OwnsSo=*/true, Error);
#endif
}

std::unique_ptr<NativeModule>
NativeModule::compile(const std::string &CSource, const std::string &FnName,
                      std::string *Error, const std::string &ExtraFlags,
                      bool *TimedOut, const std::string &KeyTag,
                      const support::Deadline &Deadline) {
  if (TimedOut)
    *TimedOut = false;
#if !defined(SPL_HAVE_DLOPEN)
  (void)CSource;
  (void)FnName;
  (void)ExtraFlags;
  (void)KeyTag;
  (void)Deadline;
  if (Error)
    *Error = "dlopen is not available on this platform";
  return nullptr;
#else
  if (!KernelCache::enabled())
    return compileFresh(CSource, FnName, Error, ExtraFlags, TimedOut,
                        Deadline);

  std::string Key = KernelCache::key(CSource, FnName, ExtraFlags, KeyTag);
  if (auto Hit = KernelCache::probe(Key)) {
    if (auto M = loadModule(*Hit, FnName, /*OwnsSo=*/false, Error))
      return M;
    // Checksum-valid but unloadable (e.g. an alien file of the right
    // bytes): drop the entry and recompile below.
    KernelCache::remove(Key);
  }

  // Per-key population lock across re-probe + compile + insert: concurrent
  // planners (threads or processes) racing on a cold key block here and
  // all but one load the winner's artifact instead of recompiling.
  KernelCache::PopulationLock PL(Key);
  if (auto Hit = KernelCache::probe(Key))
    if (auto M = loadModule(*Hit, FnName, /*OwnsSo=*/false, Error))
      return M;

  auto M = compileFresh(CSource, FnName, Error, ExtraFlags, TimedOut,
                        Deadline);
  // The module keeps (and owns) its temp copy; the cache gets its own.
  // A failed insert just means the next process compiles cold again.
  if (M)
    KernelCache::insert(Key, M->SoPath);
  return M;
#endif
}

void *NativeModule::symbol(const char *Name) const {
#if defined(SPL_HAVE_DLOPEN)
  return Handle ? dlsym(Handle, Name) : nullptr;
#else
  (void)Name;
  return nullptr;
#endif
}

NativeModule::~NativeModule() {
#if defined(SPL_HAVE_DLOPEN)
  if (Handle)
    dlclose(Handle);
  if (OwnsSo && !SoPath.empty())
    std::remove(SoPath.c_str());
#endif
}
