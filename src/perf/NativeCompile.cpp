//===- perf/NativeCompile.cpp - Compile-and-load evaluation -----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "perf/NativeCompile.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <unistd.h>
#define SPL_HAVE_DLOPEN 1
#endif

using namespace spl;
using namespace spl::perf;

namespace {

/// Compiler command; overridable with the SPL_CC environment variable.
std::string ccCommand() {
  if (const char *Env = std::getenv("SPL_CC"))
    return Env;
  return "cc";
}

std::string uniqueStem() {
  static std::atomic<unsigned> Counter{0};
  std::ostringstream SS;
  SS << "/tmp/spl-native-" << getpid() << "-" << Counter++;
  return SS.str();
}

} // namespace

bool NativeModule::available() {
#if !defined(SPL_HAVE_DLOPEN)
  return false;
#else
  // Initialized exactly once even when parallel search workers race here.
  static const bool Cached = [] {
    std::string Cmd = ccCommand() + " --version > /dev/null 2>&1";
    return std::system(Cmd.c_str()) == 0;
  }();
  return Cached;
#endif
}

std::unique_ptr<NativeModule>
NativeModule::compile(const std::string &CSource, const std::string &FnName,
                      std::string *Error, const std::string &ExtraFlags) {
#if !defined(SPL_HAVE_DLOPEN)
  if (Error)
    *Error = "dlopen is not available on this platform";
  return nullptr;
#else
  std::string Stem = uniqueStem();
  std::string CPath = Stem + ".c";
  std::string SoPath = Stem + ".so";
  std::string LogPath = Stem + ".log";

  {
    std::ofstream Out(CPath);
    if (!Out) {
      if (Error)
        *Error = "cannot write " + CPath;
      return nullptr;
    }
    Out << CSource;
  }

  std::string Cmd = ccCommand() + " " + ExtraFlags +
                    " -shared -fPIC -o " + SoPath + " " + CPath + " > " +
                    LogPath + " 2>&1";
  int RC = std::system(Cmd.c_str());
  if (RC != 0) {
    if (Error) {
      std::ifstream Log(LogPath);
      std::ostringstream SS;
      SS << "compilation failed (exit " << RC << "):\n" << Log.rdbuf();
      *Error = SS.str();
    }
    std::remove(CPath.c_str());
    std::remove(LogPath.c_str());
    return nullptr;
  }

  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    if (Error)
      *Error = std::string("dlopen failed: ") + dlerror();
    std::remove(CPath.c_str());
    std::remove(SoPath.c_str());
    std::remove(LogPath.c_str());
    return nullptr;
  }
  void *Sym = dlsym(Handle, FnName.c_str());
  if (!Sym) {
    if (Error)
      *Error = "symbol '" + FnName + "' not found in generated module";
    dlclose(Handle);
    std::remove(CPath.c_str());
    std::remove(SoPath.c_str());
    std::remove(LogPath.c_str());
    return nullptr;
  }

  auto M = std::unique_ptr<NativeModule>(new NativeModule());
  M->Handle = Handle;
  M->Fn = reinterpret_cast<KernelFn>(Sym);
  M->SoPath = SoPath;
  std::remove(CPath.c_str());
  std::remove(LogPath.c_str());
  return M;
#endif
}

void *NativeModule::symbol(const char *Name) const {
#if defined(SPL_HAVE_DLOPEN)
  return Handle ? dlsym(Handle, Name) : nullptr;
#else
  (void)Name;
  return nullptr;
#endif
}

NativeModule::~NativeModule() {
#if defined(SPL_HAVE_DLOPEN)
  if (Handle)
    dlclose(Handle);
  if (!SoPath.empty())
    std::remove(SoPath.c_str());
#endif
}
