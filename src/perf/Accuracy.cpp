//===- perf/Accuracy.cpp - Accuracy measurement -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "perf/Accuracy.h"

#include <cassert>
#include <cmath>
#include <random>

using namespace spl;
using namespace spl::perf;

namespace {

constexpr long double PiL = 3.14159265358979323846264338327950288L;

/// Recursive radix-2 DIT on long doubles; X.size() a power of two.
void fftRec(const CplxL *In, CplxL *Out, std::size_t N, std::size_t Stride) {
  if (N == 1) {
    Out[0] = In[0];
    return;
  }
  fftRec(In, Out, N / 2, Stride * 2);
  fftRec(In + Stride, Out + N / 2, N / 2, Stride * 2);
  for (std::size_t K = 0; K != N / 2; ++K) {
    long double Ang = -2.0L * PiL * static_cast<long double>(K) /
                      static_cast<long double>(N);
    CplxL W(std::cos(Ang), std::sin(Ang));
    CplxL T = W * Out[N / 2 + K];
    Out[N / 2 + K] = Out[K] - T;
    Out[K] += T;
  }
}

} // namespace

std::vector<CplxL> perf::referenceDFT(const std::vector<CplxL> &X) {
  std::size_t N = X.size();
  assert(N >= 1 && "empty input");
  std::vector<CplxL> Y(N);
  if ((N & (N - 1)) == 0) {
    fftRec(X.data(), Y.data(), N, 1);
    return Y;
  }
  for (std::size_t K = 0; K != N; ++K) {
    CplxL Acc(0, 0);
    for (std::size_t J = 0; J != N; ++J) {
      long double Ang = -2.0L * PiL *
                        static_cast<long double>((K * J) % N) /
                        static_cast<long double>(N);
      Acc += X[J] * CplxL(std::cos(Ang), std::sin(Ang));
    }
    Y[K] = Acc;
  }
  return Y;
}

double perf::relativeError(std::int64_t N, const TransformFn &Fn, int Trials,
                           unsigned Seed) {
  assert(N >= 1 && Trials >= 1 && "bad accuracy parameters");
  std::mt19937 Gen(Seed);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);

  double Sum = 0;
  for (int T = 0; T != Trials; ++T) {
    std::vector<Cplx> X(N), Y;
    std::vector<CplxL> XL(N);
    for (std::int64_t I = 0; I != N; ++I) {
      double Re = Dist(Gen), Im = Dist(Gen);
      X[I] = Cplx(Re, Im);
      XL[I] = CplxL(Re, Im);
    }
    Fn(X, Y);
    std::vector<CplxL> Ref = referenceDFT(XL);
    assert(Y.size() == Ref.size() && "transform changed the size");

    long double ErrSq = 0, RefSq = 0;
    for (std::int64_t I = 0; I != N; ++I) {
      CplxL D = CplxL(Y[I].real(), Y[I].imag()) - Ref[I];
      ErrSq += D.real() * D.real() + D.imag() * D.imag();
      RefSq += Ref[I].real() * Ref[I].real() + Ref[I].imag() * Ref[I].imag();
    }
    Sum += static_cast<double>(std::sqrt(ErrSq / RefSq));
  }
  return Sum / Trials;
}
