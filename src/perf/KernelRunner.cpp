//===- perf/KernelRunner.cpp - Run generated kernels natively -----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "perf/KernelRunner.h"

#include "codegen/CEmitter.h"
#include "support/Timer.h"

#include <random>

using namespace spl;
using namespace spl::perf;

const char *KernelError::kindName() const {
  switch (Kind) {
  case KernelErrorKind::None:
    return "ok";
  case KernelErrorKind::NoCompiler:
    return "no-compiler";
  case KernelErrorKind::NotRealTyped:
    return "not-real-typed";
  case KernelErrorKind::CompileFailed:
    return "compile-failed";
  case KernelErrorKind::MissingSymbol:
    return "missing-symbol";
  }
  return "unknown";
}

std::string KernelError::str() const {
  return Message.empty() ? std::string(kindName())
                         : std::string(kindName()) + ": " + Message;
}

std::unique_ptr<CompiledKernel>
CompiledKernel::create(const icode::Program &Final, KernelError *Err,
                       const KernelBuildOptions &BuildOpts) {
  auto Fail = [&](KernelErrorKind Kind, std::string Message) {
    if (Err)
      *Err = KernelError{Kind, std::move(Message)};
    return nullptr;
  };
  if (Err)
    *Err = KernelError();

  if (Final.Type != icode::DataType::Real)
    return Fail(KernelErrorKind::NotRealTyped,
                "program '" + Final.SubName +
                    "' is complex-typed; lower it to real first");
  if (!NativeModule::available())
    return Fail(KernelErrorKind::NoCompiler,
                "no system C compiler available (set SPL_CC to override)");

  codegen::CEmitOptions CO;
  CO.ExternalTables = true;
  CO.ThreadSafe = BuildOpts.ThreadSafe;
  std::string Code = codegen::emitC(Final, CO);

  std::string CompileError;
  auto Mod = NativeModule::compile(Code, Final.SubName, &CompileError,
                                   BuildOpts.ExtraFlags);
  if (!Mod)
    return Fail(KernelErrorKind::CompileFailed, CompileError);

  auto K = std::unique_ptr<CompiledKernel>(new CompiledKernel());
  K->Fn = Mod->fn();
  K->InLen = Final.LoweredToReal ? Final.InSize * 2 : Final.InSize;
  K->OutLen = Final.LoweredToReal ? Final.OutSize * 2 : Final.OutSize;

  if (!Final.Tables.empty()) {
    for (const auto &T : Final.Tables) {
      std::vector<double> Flat(T.size());
      for (size_t I = 0; I != T.size(); ++I)
        Flat[I] = T[I].real();
      K->Tables.push_back(std::move(Flat));
    }
    using SetFn = void (*)(const double *const *);
    std::string SetName = Final.SubName + "_set_tables";
    auto Set = reinterpret_cast<SetFn>(Mod->symbol(SetName.c_str()));
    if (!Set)
      return Fail(KernelErrorKind::MissingSymbol,
                  "generated module lacks " + SetName);
    std::vector<const double *> Ptrs;
    for (const auto &T : K->Tables)
      Ptrs.push_back(T.data());
    Set(Ptrs.data());
  }
  K->Mod = std::move(Mod);
  return K;
}

std::unique_ptr<CompiledKernel>
CompiledKernel::create(const icode::Program &Final, std::string *Error) {
  KernelError Err;
  auto K = create(Final, &Err, KernelBuildOptions());
  if (!K && Error)
    *Error = Err.str();
  return K;
}

double CompiledKernel::time(int Repeats) const {
  std::mt19937 Gen(11);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<double> X(InLen), Y(OutLen, 0.0);
  for (double &V : X)
    V = Dist(Gen);
  return timeBestOf([&] { Fn(Y.data(), X.data()); }, Repeats);
}
