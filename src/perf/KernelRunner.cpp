//===- perf/KernelRunner.cpp - Run generated kernels natively -----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "perf/KernelRunner.h"

#include "codegen/CEmitter.h"
#include "codegen/VectorEmitter.h"
#include "support/FaultInjection.h"
#include "support/Subprocess.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"

#include <chrono>
#include <cmath>
#include <csignal>
#include <random>
#include <thread>

using namespace spl;
using namespace spl::perf;

const char *KernelError::kindName() const {
  switch (Kind) {
  case KernelErrorKind::None:
    return "ok";
  case KernelErrorKind::NoCompiler:
    return "no-compiler";
  case KernelErrorKind::NotRealTyped:
    return "not-real-typed";
  case KernelErrorKind::CompileFailed:
    return "compile-failed";
  case KernelErrorKind::CompileTimeout:
    return "compile-timeout";
  case KernelErrorKind::MissingSymbol:
    return "missing-symbol";
  case KernelErrorKind::TrialFailed:
    return "trial-failed";
  }
  return "unknown";
}

std::string KernelError::str() const {
  return Message.empty() ? std::string(kindName())
                         : std::string(kindName()) + ": " + Message;
}

std::unique_ptr<CompiledKernel>
CompiledKernel::create(const icode::Program &Final, KernelError *Err,
                       const KernelBuildOptions &BuildOpts) {
  auto Fail = [&](KernelErrorKind Kind, std::string Message) {
    if (Err)
      *Err = KernelError{Kind, std::move(Message)};
    return nullptr;
  };
  if (Err)
    *Err = KernelError();

  if (Final.Type != icode::DataType::Real)
    return Fail(KernelErrorKind::NotRealTyped,
                "program '" + Final.SubName +
                    "' is complex-typed; lower it to real first");
  if (!NativeModule::available())
    return Fail(KernelErrorKind::NoCompiler,
                "no system C compiler available (set SPL_CC to override)");

  const bool Vector = BuildOpts.Variant == codegen::CodegenVariant::Vector;
  std::string Code;
  std::string Flags = BuildOpts.ExtraFlags;
  std::string KeyTag;
  int Lanes = 1;
  if (Vector) {
    if (fault::at("vector-compile"))
      return Fail(KernelErrorKind::CompileFailed,
                  fault::describe("vector-compile"));
    Lanes = codegen::laneCount(BuildOpts.ISA);
    static telemetry::Counter &VectorKernels =
        telemetry::counter("codegen.vector_kernels");
    static telemetry::Histogram &VectorNs =
        telemetry::histogram("codegen.vector_ns");
    codegen::VectorEmitOptions VO;
    VO.ISA = BuildOpts.ISA;
    VO.ExternalTables = true;
    VO.ThreadSafe = BuildOpts.ThreadSafe;
    auto Start = std::chrono::steady_clock::now();
    Code = codegen::emitVectorC(Final, VO);
    VectorNs.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count()));
    VectorKernels.add();
    std::string ISAFlags = codegen::isaCompilerFlags(BuildOpts.ISA);
    if (!ISAFlags.empty())
      Flags += " " + ISAFlags;
    KeyTag = std::string("vector:") + codegen::isaName(BuildOpts.ISA);
  } else {
    codegen::CEmitOptions CO;
    CO.ExternalTables = true;
    CO.ThreadSafe = BuildOpts.ThreadSafe;
    Code = codegen::emitC(Final, CO);
  }

  std::string CompileError;
  bool TimedOut = false;
  auto Mod = NativeModule::compile(Code, Final.SubName, &CompileError, Flags,
                                   &TimedOut, KeyTag, BuildOpts.Deadline);
  if (!Mod)
    return Fail(TimedOut ? KernelErrorKind::CompileTimeout
                         : KernelErrorKind::CompileFailed,
                CompileError);

  auto K = std::unique_ptr<CompiledKernel>(new CompiledKernel());
  K->Fn = Mod->fn();
  K->Lanes = Lanes;
  K->Variant = BuildOpts.Variant;
  K->InLen = (Final.LoweredToReal ? Final.InSize * 2 : Final.InSize) * Lanes;
  K->OutLen =
      (Final.LoweredToReal ? Final.OutSize * 2 : Final.OutSize) * Lanes;

  if (!Final.Tables.empty()) {
    for (const auto &T : Final.Tables) {
      std::vector<double> Flat(T.size());
      for (size_t I = 0; I != T.size(); ++I)
        Flat[I] = T[I].real();
      K->Tables.push_back(std::move(Flat));
    }
    using SetFn = void (*)(const double *const *);
    std::string SetName = Final.SubName + "_set_tables";
    auto Set = reinterpret_cast<SetFn>(Mod->symbol(SetName.c_str()));
    if (!Set)
      return Fail(KernelErrorKind::MissingSymbol,
                  "generated module lacks " + SetName);
    std::vector<const double *> Ptrs;
    for (const auto &T : K->Tables)
      Ptrs.push_back(T.data());
    Set(Ptrs.data());
  }
  K->Mod = std::move(Mod);
  return K;
}

std::unique_ptr<CompiledKernel>
CompiledKernel::create(const icode::Program &Final, std::string *Error) {
  KernelError Err;
  auto K = create(Final, &Err, KernelBuildOptions());
  if (!K && Error)
    *Error = Err.str();
  return K;
}

CompiledKernel::TrialResult
CompiledKernel::trial(double TimeoutSeconds) const {
  // Consume the fault budgets in the parent: the forked child's memory is a
  // throwaway copy, so decrements inside it would not stick.
  const bool InjectCrash = fault::at("trial-crash");
  const bool InjectHang = fault::at("trial-hang");

  auto Run = [&]() -> int {
    if (InjectCrash)
      ::raise(SIGSEGV);
    if (InjectHang)
      std::this_thread::sleep_for(std::chrono::seconds(600));
    std::mt19937 Gen(17);
    std::uniform_real_distribution<double> Dist(-1.0, 1.0);
    std::vector<double> X(static_cast<size_t>(InLen));
    std::vector<double> Y(static_cast<size_t>(OutLen), 0.0);
    for (double &V : X)
      V = Dist(Gen);
    Fn(Y.data(), X.data());
    for (double V : Y)
      if (!std::isfinite(V))
        return 2;
    return 0;
  };

  GuardedResult G = runGuarded(Run, TimeoutSeconds);
  TrialResult T;
  if (G.ok()) {
    T.Ok = true;
    return T;
  }
  if (G.TimedOut)
    T.Reason = "trial execution timed out after " +
               std::to_string(TimeoutSeconds) +
               " s (see SPL_TRIAL_TIMEOUT_MS)";
  else if (G.Signal != 0)
    T.Reason = "trial execution died on signal " + std::to_string(G.Signal);
  else if (G.ExitCode == 2)
    T.Reason = "trial execution produced non-finite output";
  else
    T.Reason = "trial execution failed (" + G.describe() + ")";
  return T;
}

double CompiledKernel::time(int Repeats) const {
  std::mt19937 Gen(11);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<double> X(InLen), Y(OutLen, 0.0);
  for (double &V : X)
    V = Dist(Gen);
  return timeBestOf([&] { Fn(Y.data(), X.data()); }, Repeats);
}
