//===- perf/KernelRunner.cpp - Run generated kernels natively -----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "perf/KernelRunner.h"

#include "codegen/CEmitter.h"
#include "support/Timer.h"

#include <cassert>
#include <random>

using namespace spl;
using namespace spl::perf;

std::unique_ptr<CompiledKernel>
CompiledKernel::create(const icode::Program &Final, std::string *Error) {
  assert(Final.Type == icode::DataType::Real &&
         "native kernels require real-typed programs");
  if (!NativeModule::available()) {
    if (Error)
      *Error = "no system C compiler available";
    return nullptr;
  }

  codegen::CEmitOptions CO;
  CO.ExternalTables = true;
  std::string Code = codegen::emitC(Final, CO);

  auto Mod = NativeModule::compile(Code, Final.SubName, Error);
  if (!Mod)
    return nullptr;

  auto K = std::unique_ptr<CompiledKernel>(new CompiledKernel());
  K->Fn = Mod->fn();
  K->InLen = Final.LoweredToReal ? Final.InSize * 2 : Final.InSize;
  K->OutLen = Final.LoweredToReal ? Final.OutSize * 2 : Final.OutSize;

  if (!Final.Tables.empty()) {
    for (const auto &T : Final.Tables) {
      std::vector<double> Flat(T.size());
      for (size_t I = 0; I != T.size(); ++I)
        Flat[I] = T[I].real();
      K->Tables.push_back(std::move(Flat));
    }
    using SetFn = void (*)(const double *const *);
    std::string SetName = Final.SubName + "_set_tables";
    auto Set = reinterpret_cast<SetFn>(Mod->symbol(SetName.c_str()));
    if (!Set) {
      if (Error)
        *Error = "generated module lacks " + SetName;
      return nullptr;
    }
    std::vector<const double *> Ptrs;
    for (const auto &T : K->Tables)
      Ptrs.push_back(T.data());
    Set(Ptrs.data());
  }
  K->Mod = std::move(Mod);
  return K;
}

double CompiledKernel::time(int Repeats) const {
  std::mt19937 Gen(11);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<double> X(InLen), Y(OutLen, 0.0);
  for (double &V : X)
    V = Dist(Gen);
  return timeBestOf([&] { Fn(Y.data(), X.data()); }, Repeats);
}
