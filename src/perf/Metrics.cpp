//===- perf/Metrics.cpp - Performance metrics ----------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "perf/Metrics.h"

#include <cassert>
#include <cmath>

using namespace spl;

double perf::nominalFlops(std::int64_t N) {
  assert(N >= 1 && "bad transform size");
  return 5.0 * static_cast<double>(N) * std::log2(static_cast<double>(N));
}

double perf::pseudoMFlops(std::int64_t N, double Seconds) {
  assert(Seconds > 0 && "time must be positive");
  return nominalFlops(N) / (Seconds * 1e6);
}
