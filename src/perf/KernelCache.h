//===- perf/KernelCache.h - Persistent compiled-kernel cache ----*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed on-disk cache of compiled kernel shared
/// objects. Every native plan otherwise pays a fork/exec of the system C
/// compiler plus dlopen; FFTW-style systems amortize exactly that cost by
/// keeping compiled artifacts around. A warm process (or a restarted spld
/// daemon) maps a previously compiled kernel in microseconds with zero
/// compiler invocations.
///
/// The cache key is an FNV-1a hash over everything that can change the
/// produced machine code: a host fingerprint, the compiler identity
/// (SPL_CC command plus its --version line), the extra compiler flags, the
/// kernel entry-point name, and the hash of the emitted C source. The
/// on-disk layout is one directory holding `<key>.so` artifacts plus a
/// versioned, per-line-checksummed `index` (wisdom-v2 style: corrupt lines
/// are skipped, counted, and rewritten clean; artifacts that fail their
/// recorded checksum are dropped and recompiled — corruption degrades to a
/// recompile, never to a wrong kernel). Population is serialized per key
/// through a `<key>.lock` flock (mirroring the `<wisdom>.lock` protocol),
/// so concurrent planners — or a busy spld — never double-compile the same
/// kernel. Eviction is LRU by artifact mtime (refreshed on every hit),
/// bounded by a configurable byte budget.
///
/// The full contract — key derivation, layout, invalidation, locking, the
/// flag/env reference, and a worked cold-vs-warm example — is documented in
/// docs/KERNEL_CACHE.md. Telemetry: kernelcache.hits / misses / inserts /
/// evictions / corrupt_entries counters and a kernelcache.probe_ns
/// histogram (docs/OBSERVABILITY.md).
///
/// The cache is disabled unless configured: set SPL_KERNEL_CACHE=<dir> in
/// the environment, pass --kernel-cache <dir> to splc/splrun/spld, or call
/// configure(). Configuration is process-wide (one compiler, one cache).
///
//===----------------------------------------------------------------------===//

#ifndef SPL_PERF_KERNELCACHE_H
#define SPL_PERF_KERNELCACHE_H

#include <cstdint>
#include <optional>
#include <string>

namespace spl {
namespace perf {

/// Process-wide access to the persistent kernel cache. All methods are
/// thread-safe; cross-process coordination is flock-based.
class KernelCache {
public:
  struct Config {
    bool Enabled = false;    ///< Off unless configured (env or flags).
    std::string Dir;         ///< Cache directory; empty -> defaultDir().
    std::uint64_t MaxBytes = 256ull << 20; ///< LRU eviction bound.
  };

  /// The current configuration. First call resolves the environment:
  /// SPL_KERNEL_CACHE=<dir> enables the cache there ("", "0", "off",
  /// "none" keep it disabled); SPL_KERNEL_CACHE_MB overrides the byte
  /// budget.
  static Config config();

  /// Replaces the process-wide configuration (tools and tests).
  static void configure(const Config &C);

  /// Enables the cache at \p Dir (empty: defaultDir()).
  static void setDirectory(const std::string &Dir);

  /// Force-disables (or re-enables at the configured directory).
  static void setEnabled(bool On);

  static bool enabled() { return config().Enabled; }

  /// $HOME/.spl_kernel_cache, else ".spl_kernel_cache" (mirrors the wisdom
  /// default-path rule).
  static std::string defaultDir();

  /// The resolved cache directory ("" when disabled).
  static std::string directory();

  /// Derives the content-addressed key (16 hex digits) for one compile
  /// request. Deterministic across processes on the same host+compiler.
  /// \p VariantTag names the codegen variant that produced the source
  /// ("" is scalar; the vector backend passes "vector:<isa>"), so scalar
  /// and vector kernels of the same formula can never collide even if
  /// their flags and source happened to coincide.
  static std::string key(const std::string &CSource,
                         const std::string &FnName,
                         const std::string &ExtraFlags,
                         const std::string &VariantTag = "");

  /// Looks up \p Key. On a hit the artifact's checksum has been verified
  /// against the index and its recency refreshed; the returned path is
  /// ready to dlopen. Misses, hits, and corrupt artifacts are counted.
  /// Returns nullopt when disabled, missing, or corrupt (corrupt entries
  /// are dropped so the caller's recompile can repopulate them).
  static std::optional<std::string> probe(const std::string &Key);

  /// Copies the compiled object at \p SoPath into the cache under \p Key,
  /// rewrites the index (dropping corrupt lines and orphaned artifacts),
  /// and evicts least-recently-used entries past the byte budget. Returns
  /// the cached artifact path, or nullopt when disabled or the cache
  /// directory is unusable (the caller keeps using its own copy — an
  /// unusable cache degrades to cold compiles, never to failure).
  static std::optional<std::string> insert(const std::string &Key,
                                           const std::string &SoPath);

  /// Drops \p Key's index entry and artifact (used when a checksum-valid
  /// artifact still fails to dlopen — e.g. an alien or truncated file).
  static void remove(const std::string &Key);

  /// Blocking inter-process (and inter-thread) population lock for one
  /// key: `<dir>/<key>.lock`, exclusive flock. Holding it across the
  /// re-probe + compile + insert window guarantees concurrent planners
  /// compile each kernel at most once. Best-effort: if the lock file
  /// cannot be created the caller proceeds unlocked (worst case a
  /// duplicate compile, exactly the uncached behavior).
  class PopulationLock {
  public:
    explicit PopulationLock(const std::string &Key);
    ~PopulationLock();
    PopulationLock(const PopulationLock &) = delete;
    PopulationLock &operator=(const PopulationLock &) = delete;

  private:
    int Fd = -1;
  };
};

} // namespace perf
} // namespace spl

#endif // SPL_PERF_KERNELCACHE_H
