//===- perf/MemoryModel.h - Memory accounting -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory accounting for Figure 5 (memory consumption of large FFTs). The
/// paper measured process segments; this model counts the same
/// constituents explicitly: data (temporary vectors + twiddle tables) and
/// text (an estimate from the instruction count), per generated program.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_PERF_MEMORYMODEL_H
#define SPL_PERF_MEMORYMODEL_H

#include "icode/ICode.h"

#include <cstdint>

namespace spl {
namespace perf {

/// Byte breakdown for one compiled program.
struct MemoryUsage {
  std::uint64_t TempBytes = 0;  ///< Temporary vectors (the data segment).
  std::uint64_t TableBytes = 0; ///< Constant twiddle/element tables.
  std::uint64_t CodeBytes = 0;  ///< Text-segment estimate.

  std::uint64_t total() const { return TempBytes + TableBytes + CodeBytes; }
};

/// Accounts the memory a generated program needs at run time. CodeBytes
/// uses BytesPerInstr per straight-line instruction (a typical x86-64
/// scalar FP instruction plus addressing averages ~8-16 bytes; the default
/// is deliberately round and documented in EXPERIMENTS.md).
MemoryUsage accountProgram(const icode::Program &P,
                           std::uint64_t BytesPerInstr = 12);

} // namespace perf
} // namespace spl

#endif // SPL_PERF_MEMORYMODEL_H
