//===- icode/Printer.cpp - I-code pretty printer ---------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "icode/ICode.h"

#include <sstream>

using namespace spl;
using namespace spl::icode;

namespace {

const char *opSymbol(Op O) {
  switch (O) {
  case Op::Add:
    return "+";
  case Op::Sub:
    return "-";
  case Op::Mul:
    return "*";
  case Op::Div:
    return "/";
  default:
    return "?";
  }
}

} // namespace

std::string Program::print() const {
  std::ostringstream SS;
  SS << "; subroutine " << SubName << "  in=" << InSize << " out=" << OutSize
     << " type=" << (Type == DataType::Complex ? "complex" : "real");
  if (LoweredToReal)
    SS << " (lowered)";
  SS << "\n";
  for (size_t T = 0; T != TempVecSizes.size(); ++T)
    SS << "; temp $t" << T << " size " << TempVecSizes[T] << "\n";
  for (size_t T = 0; T != Tables.size(); ++T)
    SS << "; table $tab" << T << " size " << Tables[T].size() << "\n";

  int Indent = 0;
  auto Pad = [&SS](int N) {
    for (int I = 0; I < N; ++I)
      SS << "  ";
  };
  for (const Instr &I : Body) {
    switch (I.Opcode) {
    case Op::Loop:
      Pad(Indent++);
      SS << "do $i" << I.LoopVar << " = " << I.Lo << ", " << I.Hi << "\n";
      break;
    case Op::End:
      Pad(--Indent);
      SS << "end\n";
      break;
    case Op::Copy:
      Pad(Indent);
      SS << I.Dst.str() << " = " << I.A.str() << "\n";
      break;
    case Op::Neg:
      Pad(Indent);
      SS << I.Dst.str() << " = -" << I.A.str() << "\n";
      break;
    default:
      Pad(Indent);
      SS << I.Dst.str() << " = " << I.A.str() << " " << opSymbol(I.Opcode)
         << " " << I.B.str() << "\n";
      break;
    }
  }
  return SS.str();
}
