//===- icode/Intrinsics.cpp - Intrinsic function registry ------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "icode/Intrinsics.h"

#include "ir/Transforms.h"

using namespace spl;
using namespace spl::icode;

IntrinsicRegistry::IntrinsicRegistry() {
  add("W", 2, [](const std::vector<std::int64_t> &A) {
    return wRoot(A[0], A[1]);
  });
  add("TW", 3, [](const std::vector<std::int64_t> &A) {
    return twiddleEntry(A[0], A[1], A[2]);
  });
  add("DCT2E", 3, [](const std::vector<std::int64_t> &A) {
    return Cplx(dct2Entry(A[0], A[1], A[2]), 0);
  });
  add("DCT4E", 3, [](const std::vector<std::int64_t> &A) {
    return Cplx(dct4Entry(A[0], A[1], A[2]), 0);
  });
  add("WHTE", 3, [](const std::vector<std::int64_t> &A) {
    return Cplx(whtEntry(A[0], A[1], A[2]), 0);
  });
}

const IntrinsicRegistry &IntrinsicRegistry::builtins() {
  static const IntrinsicRegistry Registry;
  return Registry;
}

void IntrinsicRegistry::add(std::string Name, unsigned Arity, IntrinsicFn Fn) {
  for (auto &[N, E] : Entries) {
    if (N == Name) {
      E = {Arity, std::move(Fn)};
      return;
    }
  }
  Entries.push_back({std::move(Name), {Arity, std::move(Fn)}});
}

const IntrinsicRegistry::Entry *
IntrinsicRegistry::find(const std::string &Name) const {
  for (const auto &[N, E] : Entries)
    if (N == Name)
      return &E;
  return nullptr;
}

bool IntrinsicRegistry::contains(const std::string &Name) const {
  return find(Name) != nullptr;
}

unsigned IntrinsicRegistry::arity(const std::string &Name) const {
  const Entry *E = find(Name);
  assert(E && "unknown intrinsic");
  return E->Arity;
}

Cplx IntrinsicRegistry::eval(const std::string &Name,
                             const std::vector<std::int64_t> &Args) const {
  const Entry *E = find(Name);
  assert(E && "unknown intrinsic");
  assert(Args.size() == E->Arity && "intrinsic arity mismatch");
  return E->Fn(Args);
}
