//===- icode/ICode.cpp - The SPL intermediate code -------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "icode/ICode.h"

#include "support/StrUtil.h"

#include <algorithm>

using namespace spl;
using namespace spl::icode;

//===----------------------------------------------------------------------===//
// IntExpr
//===----------------------------------------------------------------------===//

IntExprRef IntExpr::mkConst(std::int64_t C) {
  auto E = std::make_shared<IntExpr>();
  E->K = Const;
  E->C = C;
  return E;
}

IntExprRef IntExpr::mkVar(int V) {
  auto E = std::make_shared<IntExpr>();
  E->K = Var;
  E->V = V;
  return E;
}

IntExprRef IntExpr::mkBin(Kind K, IntExprRef L, IntExprRef R) {
  assert(L && R && "binary integer expression needs two operands");
  // Constant-fold eagerly; intrinsic arguments are often fully constant.
  if (L->K == Const && R->K == Const) {
    std::int64_t A = L->C, B = R->C;
    switch (K) {
    case Add:
      return mkConst(A + B);
    case Sub:
      return mkConst(A - B);
    case Mul:
      return mkConst(A * B);
    case Div:
      assert(B != 0 && "division by zero in integer expression");
      return mkConst(A / B);
    case Mod:
      assert(B != 0 && "modulo by zero in integer expression");
      return mkConst(A % B);
    default:
      break;
    }
  }
  auto E = std::make_shared<IntExpr>();
  E->K = K;
  E->L = std::move(L);
  E->R = std::move(R);
  return E;
}

std::int64_t IntExpr::eval(const std::vector<std::int64_t> &Vars) const {
  switch (K) {
  case Const:
    return C;
  case Var:
    assert(static_cast<size_t>(V) < Vars.size() && "loop var out of range");
    return Vars[V];
  case Add:
    return L->eval(Vars) + R->eval(Vars);
  case Sub:
    return L->eval(Vars) - R->eval(Vars);
  case Mul:
    return L->eval(Vars) * R->eval(Vars);
  case Div: {
    std::int64_t D = R->eval(Vars);
    assert(D != 0 && "division by zero in integer expression");
    return L->eval(Vars) / D;
  }
  case Mod: {
    std::int64_t D = R->eval(Vars);
    assert(D != 0 && "modulo by zero in integer expression");
    return L->eval(Vars) % D;
  }
  }
  return 0;
}

void IntExpr::collectVars(std::vector<int> &Out) const {
  switch (K) {
  case Const:
    return;
  case Var:
    Out.push_back(V);
    return;
  default:
    L->collectVars(Out);
    R->collectVars(Out);
    return;
  }
}

IntExprRef IntExpr::substVar(int Target, const IntExprRef &E) const {
  switch (K) {
  case Const:
    return mkConst(C);
  case Var:
    return V == Target ? E : mkVar(V);
  default:
    return mkBin(K, L->substVar(Target, E), R->substVar(Target, E));
  }
}

std::string IntExpr::str() const {
  switch (K) {
  case Const:
    return std::to_string(C);
  case Var:
    return "$i" + std::to_string(V);
  default: {
    const char *Sym = K == Add   ? "+"
                      : K == Sub ? "-"
                      : K == Mul ? "*"
                      : K == Div ? "/"
                                 : "%";
    std::string Out = "(";
    Out += L->str();
    Out += Sym;
    Out += R->str();
    Out += ")";
    return Out;
  }
  }
}

//===----------------------------------------------------------------------===//
// Affine
//===----------------------------------------------------------------------===//

Affine Affine::var(int V, std::int64_t Coef) {
  Affine A;
  if (Coef != 0)
    A.Terms.push_back({V, Coef});
  return A;
}

Affine Affine::plus(const Affine &O) const {
  Affine Out = *this;
  Out.Base += O.Base;
  Out.Terms.insert(Out.Terms.end(), O.Terms.begin(), O.Terms.end());
  Out.normalize();
  return Out;
}

Affine Affine::plusConst(std::int64_t C) const {
  Affine Out = *this;
  Out.Base += C;
  return Out;
}

Affine Affine::scaled(std::int64_t C) const {
  Affine Out;
  Out.Base = Base * C;
  if (C != 0)
    for (const auto &[V, Coef] : Terms)
      Out.Terms.push_back({V, Coef * C});
  return Out;
}

Affine Affine::substVar(int V, const Affine &E) const {
  Affine Out;
  Out.Base = Base;
  for (const auto &[TV, Coef] : Terms) {
    if (TV == V) {
      Out = Out.plus(E.scaled(Coef));
    } else {
      Out.Terms.push_back({TV, Coef});
    }
  }
  Out.normalize();
  return Out;
}

std::int64_t Affine::eval(const std::vector<std::int64_t> &Vars) const {
  std::int64_t Acc = Base;
  for (const auto &[V, Coef] : Terms) {
    assert(static_cast<size_t>(V) < Vars.size() && "loop var out of range");
    Acc += Coef * Vars[V];
  }
  return Acc;
}

std::int64_t Affine::coefOf(int V) const {
  for (const auto &[TV, Coef] : Terms)
    if (TV == V)
      return Coef;
  return 0;
}

bool Affine::usesVar(int V) const { return coefOf(V) != 0; }

void Affine::normalize() {
  std::sort(Terms.begin(), Terms.end());
  std::vector<std::pair<int, std::int64_t>> Merged;
  for (const auto &[V, Coef] : Terms) {
    if (!Merged.empty() && Merged.back().first == V)
      Merged.back().second += Coef;
    else
      Merged.push_back({V, Coef});
  }
  Merged.erase(std::remove_if(Merged.begin(), Merged.end(),
                              [](const auto &T) { return T.second == 0; }),
               Merged.end());
  Terms = std::move(Merged);
}

std::string Affine::str() const {
  std::string Out;
  for (const auto &[V, Coef] : Terms) {
    if (!Out.empty())
      Out += Coef < 0 ? "-" : "+";
    else if (Coef < 0)
      Out += "-";
    std::int64_t A = Coef < 0 ? -Coef : Coef;
    if (A != 1)
      Out += std::to_string(A) + "*";
    Out += "$i" + std::to_string(V);
  }
  if (Out.empty())
    return std::to_string(Base);
  if (Base > 0)
    Out += "+" + std::to_string(Base);
  else if (Base < 0)
    Out += std::to_string(Base);
  return Out;
}

//===----------------------------------------------------------------------===//
// Operand
//===----------------------------------------------------------------------===//

Operand Operand::fltConst(Cplx V) {
  Operand O;
  O.Kind = OpndKind::FltConst;
  O.FConst = V;
  return O;
}

Operand Operand::fltTemp(int Id) {
  Operand O;
  O.Kind = OpndKind::FltTemp;
  O.Id = Id;
  return O;
}

Operand Operand::vecElem(int VecId, Affine Subs) {
  Operand O;
  O.Kind = OpndKind::VecElem;
  O.Id = VecId;
  O.Subs = std::move(Subs);
  return O;
}

Operand Operand::tableElem(int TableId, Affine Subs) {
  Operand O;
  O.Kind = OpndKind::TableElem;
  O.Id = TableId;
  O.Subs = std::move(Subs);
  return O;
}

Operand Operand::intrinsic(std::string Name, std::vector<IntExprRef> Args) {
  Operand O;
  O.Kind = OpndKind::Intrinsic;
  O.Name = std::move(Name);
  O.Args = std::move(Args);
  return O;
}

bool icode::operator==(const Operand &A, const Operand &B) {
  if (A.Kind != B.Kind)
    return false;
  switch (A.Kind) {
  case OpndKind::None:
    return true;
  case OpndKind::FltConst:
    return A.FConst == B.FConst;
  case OpndKind::FltTemp:
    return A.Id == B.Id;
  case OpndKind::VecElem:
  case OpndKind::TableElem:
    return A.Id == B.Id && A.Subs == B.Subs;
  case OpndKind::Intrinsic:
    // Intrinsic operands are never compared structurally (they are folded
    // before optimization); treat distinct calls as unequal.
    return false;
  }
  return false;
}

std::string Operand::str() const {
  switch (Kind) {
  case OpndKind::None:
    return "<none>";
  case OpndKind::FltConst:
    return formatComplex(FConst);
  case OpndKind::FltTemp:
    return "$f" + std::to_string(Id);
  case OpndKind::VecElem: {
    std::string Base = Id == VecIn    ? "$in"
                       : Id == VecOut ? "$out"
                                      : "$t" + std::to_string(Id - FirstTempVec);
    return Base + "(" + Subs.str() + ")";
  }
  case OpndKind::TableElem:
    return "$tab" + std::to_string(Id) + "(" + Subs.str() + ")";
  case OpndKind::Intrinsic: {
    std::string Out = Name + "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Out += " ";
      Out += Args[I]->str();
    }
    return Out + ")";
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Instr
//===----------------------------------------------------------------------===//

bool icode::isBinary(Op O) {
  return O == Op::Add || O == Op::Sub || O == Op::Mul || O == Op::Div;
}

Instr Instr::copy(Operand Dst, Operand A) {
  Instr I;
  I.Opcode = Op::Copy;
  I.Dst = std::move(Dst);
  I.A = std::move(A);
  return I;
}

Instr Instr::bin(Op Opcode, Operand Dst, Operand A, Operand B) {
  assert(isBinary(Opcode) && "expected a binary opcode");
  Instr I;
  I.Opcode = Opcode;
  I.Dst = std::move(Dst);
  I.A = std::move(A);
  I.B = std::move(B);
  return I;
}

Instr Instr::neg(Operand Dst, Operand A) {
  Instr I;
  I.Opcode = Op::Neg;
  I.Dst = std::move(Dst);
  I.A = std::move(A);
  return I;
}

Instr Instr::loop(int LoopVar, std::int64_t Lo, std::int64_t Hi,
                  bool UnrollFlag) {
  Instr I;
  I.Opcode = Op::Loop;
  I.LoopVar = LoopVar;
  I.Lo = Lo;
  I.Hi = Hi;
  I.UnrollFlag = UnrollFlag;
  return I;
}

Instr Instr::end() {
  Instr I;
  I.Opcode = Op::End;
  return I;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

std::uint64_t Program::dynamicOpCount() const {
  std::uint64_t Count = 0;
  std::vector<std::uint64_t> TripStack = {1};
  for (const Instr &I : Body) {
    switch (I.Opcode) {
    case Op::Loop: {
      std::uint64_t Trip =
          I.Hi >= I.Lo ? static_cast<std::uint64_t>(I.Hi - I.Lo + 1) : 0;
      TripStack.push_back(TripStack.back() * Trip);
      break;
    }
    case Op::End:
      assert(TripStack.size() > 1 && "unbalanced end");
      TripStack.pop_back();
      break;
    case Op::Copy:
      break;
    default:
      Count += TripStack.back();
      break;
    }
  }
  return Count;
}

std::string Program::verify() const {
  int Depth = 0;
  std::vector<int> OpenVars;
  auto CheckOperand = [&](const Operand &O, bool IsDst) -> std::string {
    switch (O.Kind) {
    case OpndKind::None:
      return "unexpected empty operand";
    case OpndKind::FltConst:
      if (IsDst)
        return "constant used as destination";
      if (Type == DataType::Real && O.FConst.imag() != 0)
        return "complex constant in a real program";
      return "";
    case OpndKind::FltTemp:
      if (O.Id < 0 || O.Id >= NumFltTemps)
        return "float temp id out of range";
      return "";
    case OpndKind::VecElem: {
      if (O.Id != VecIn && O.Id != VecOut &&
          (O.Id < FirstTempVec ||
           static_cast<size_t>(O.Id - FirstTempVec) >= TempVecSizes.size()))
        return "vector id out of range";
      for (const auto &[V, Coef] : O.Subs.Terms) {
        (void)Coef;
        if (std::find(OpenVars.begin(), OpenVars.end(), V) == OpenVars.end())
          return "subscript references a loop variable not in scope";
      }
      return "";
    }
    case OpndKind::TableElem:
      if (O.Id < 0 || static_cast<size_t>(O.Id) >= Tables.size())
        return "table id out of range";
      if (IsDst)
        return "table element used as destination";
      return "";
    case OpndKind::Intrinsic:
      if (IsDst)
        return "intrinsic call used as destination";
      return "";
    }
    return "";
  };

  for (size_t Idx = 0; Idx != Body.size(); ++Idx) {
    const Instr &I = Body[Idx];
    std::string Err;
    switch (I.Opcode) {
    case Op::Loop:
      if (I.LoopVar < 0 || I.LoopVar >= NumLoopVars)
        return "loop variable id out of range at instruction " +
               std::to_string(Idx);
      ++Depth;
      OpenVars.push_back(I.LoopVar);
      break;
    case Op::End:
      if (Depth == 0)
        return "end without matching loop at instruction " +
               std::to_string(Idx);
      --Depth;
      OpenVars.pop_back();
      break;
    case Op::Copy:
    case Op::Neg:
      Err = CheckOperand(I.Dst, /*IsDst=*/true);
      if (Err.empty())
        Err = CheckOperand(I.A, /*IsDst=*/false);
      break;
    default:
      Err = CheckOperand(I.Dst, /*IsDst=*/true);
      if (Err.empty())
        Err = CheckOperand(I.A, /*IsDst=*/false);
      if (Err.empty())
        Err = CheckOperand(I.B, /*IsDst=*/false);
      break;
    }
    if (!Err.empty())
      return Err + " at instruction " + std::to_string(Idx);
  }
  if (Depth != 0)
    return "unclosed loop at end of program";
  return "";
}
