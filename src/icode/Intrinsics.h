//===- icode/Intrinsics.h - Intrinsic function registry ---------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intrinsic functions are parameterized scalar functions evaluated at
/// compile time (paper Section 3.3.2): W(n,k) returns w_n^k, etc. Templates
/// reference intrinsics by name; the intrinsic-evaluation pass folds calls
/// with constant arguments and synthesizes lookup tables for calls indexed
/// by loop variables. The registry is extensible so user templates can ship
/// their own intrinsics.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_ICODE_INTRINSICS_H
#define SPL_ICODE_INTRINSICS_H

#include "ir/Matrix.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace spl {
namespace icode {

/// Evaluator for one intrinsic function: maps integer arguments to a scalar.
using IntrinsicFn = std::function<Cplx(const std::vector<std::int64_t> &)>;

/// Name-indexed table of intrinsic functions.
class IntrinsicRegistry {
public:
  /// A registry pre-populated with the built-ins:
  ///   W(n,k)        = w_n^k = exp(-2*pi*i*k/n)
  ///   TW(mn,n,i)    = diagonal element i of the twiddle matrix T^{mn}_n
  ///   DCT2E(n,k,j)  = element (k,j) of the unnormalized DCT-II
  ///   DCT4E(n,k,j)  = element (k,j) of the unnormalized DCT-IV
  ///   WHTE(n,k,j)   = element (k,j) of the Walsh-Hadamard transform
  static const IntrinsicRegistry &builtins();

  IntrinsicRegistry();

  /// Registers (or replaces) an intrinsic. \p Arity is checked at
  /// evaluation time.
  void add(std::string Name, unsigned Arity, IntrinsicFn Fn);

  /// True when \p Name is a registered intrinsic.
  bool contains(const std::string &Name) const;

  /// Arity of \p Name; asserts that the intrinsic exists.
  unsigned arity(const std::string &Name) const;

  /// Evaluates \p Name on \p Args; asserts on unknown name or wrong arity.
  Cplx eval(const std::string &Name,
            const std::vector<std::int64_t> &Args) const;

private:
  struct Entry {
    unsigned Arity;
    IntrinsicFn Fn;
  };
  std::vector<std::pair<std::string, Entry>> Entries;

  const Entry *find(const std::string &Name) const;
};

} // namespace icode
} // namespace spl

#endif // SPL_ICODE_INTRINSICS_H
