//===- icode/ICode.h - The SPL intermediate code ----------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's i-code: Fortran-style do loops plus four-tuple instructions
/// (Section 3.2). After template expansion a program contains only
/// floating-point operations; loop bounds are integer constants; vector
/// subscripts are affine (linear combinations of loop indices with constant
/// coefficients, as the paper requires); intrinsic-function arguments may be
/// arbitrary integer expressions over loop indices (e.g. W(n, $i0*$i1)).
/// Integer temporaries ($r) appear only in template bodies and are folded
/// symbolically during expansion.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_ICODE_ICODE_H
#define SPL_ICODE_ICODE_H

#include "ir/Matrix.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spl {
namespace icode {

//===----------------------------------------------------------------------===//
// Integer expressions (intrinsic arguments)
//===----------------------------------------------------------------------===//

/// A compile-time integer expression over loop indices. Used for intrinsic
/// arguments, which (unlike vector subscripts) need not be affine.
struct IntExpr;
using IntExprRef = std::shared_ptr<const IntExpr>;

struct IntExpr {
  enum Kind { Const, Var, Add, Sub, Mul, Div, Mod } K = Const;
  std::int64_t C = 0; ///< Value for Const.
  int V = 0;          ///< Loop-variable id for Var.
  IntExprRef L, R;    ///< Operands for binary kinds.

  static IntExprRef mkConst(std::int64_t C);
  static IntExprRef mkVar(int V);
  static IntExprRef mkBin(Kind K, IntExprRef L, IntExprRef R);

  /// Evaluates with loop variable values \p Vars (indexed by variable id).
  std::int64_t eval(const std::vector<std::int64_t> &Vars) const;

  /// Appends the ids of all loop variables referenced to \p Out (may repeat).
  void collectVars(std::vector<int> &Out) const;

  /// Substitutes loop variable \p V by expression \p E.
  IntExprRef substVar(int V, const IntExprRef &E) const;

  /// Renders for debugging / printing ("$i0*$i1+4").
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Affine subscripts
//===----------------------------------------------------------------------===//

/// An affine integer form: Base + sum(Coef_k * $i_{Var_k}). Vector and table
/// subscripts are always affine; the expander enforces this.
struct Affine {
  std::int64_t Base = 0;
  std::vector<std::pair<int, std::int64_t>> Terms; ///< (loop var id, coef)

  Affine() = default;
  explicit Affine(std::int64_t Base) : Base(Base) {}

  static Affine var(int V, std::int64_t Coef = 1);

  bool isConst() const { return Terms.empty(); }

  Affine plus(const Affine &O) const;
  Affine plusConst(std::int64_t C) const;
  Affine scaled(std::int64_t C) const;

  /// Substitutes loop variable \p V by affine form \p E (used by unrolling).
  Affine substVar(int V, const Affine &E) const;

  /// Evaluates with loop variable values \p Vars.
  std::int64_t eval(const std::vector<std::int64_t> &Vars) const;

  /// Coefficient of variable \p V (0 when absent).
  std::int64_t coefOf(int V) const;

  /// True when the form references loop variable \p V.
  bool usesVar(int V) const;

  /// Canonicalizes: merges duplicate variables, drops zero terms, sorts.
  void normalize();

  std::string str() const;

  friend bool operator==(const Affine &A, const Affine &B) {
    return A.Base == B.Base && A.Terms == B.Terms;
  }
};

//===----------------------------------------------------------------------===//
// Operands
//===----------------------------------------------------------------------===//

/// Well-known vector ids: 0 is the subroutine input, 1 the output; 2+ are
/// temporary vectors ($t0 is id 2, ...).
enum : int { VecIn = 0, VecOut = 1, FirstTempVec = 2 };

/// Kind of an instruction operand.
enum class OpndKind {
  None,      ///< Unused slot.
  FltConst,  ///< Floating (complex) constant.
  FltTemp,   ///< Scalar floating temporary $fK.
  VecElem,   ///< Vector element Vec[Subs].
  TableElem, ///< Compile-time table element (after intrinsic evaluation).
  Intrinsic, ///< Intrinsic call W(n, e) (before intrinsic evaluation).
};

/// One operand of a four-tuple instruction.
struct Operand {
  OpndKind Kind = OpndKind::None;
  Cplx FConst;                  ///< For FltConst.
  int Id = 0;                   ///< Temp id / vector id / table id.
  Affine Subs;                  ///< For VecElem and TableElem.
  std::string Name;             ///< Intrinsic name.
  std::vector<IntExprRef> Args; ///< Intrinsic arguments.

  static Operand none() { return Operand(); }
  static Operand fltConst(Cplx V);
  static Operand fltTemp(int Id);
  static Operand vecElem(int VecId, Affine Subs);
  static Operand tableElem(int TableId, Affine Subs);
  static Operand intrinsic(std::string Name, std::vector<IntExprRef> Args);

  bool is(OpndKind K) const { return Kind == K; }
  std::string str() const;
};

bool operator==(const Operand &A, const Operand &B);

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

/// Instruction opcodes: assignment and arithmetic four-tuples plus loop
/// brackets.
enum class Op {
  Copy, ///< Dst = A
  Add,  ///< Dst = A + B
  Sub,  ///< Dst = A - B
  Mul,  ///< Dst = A * B
  Div,  ///< Dst = A / B
  Neg,  ///< Dst = -A
  Loop, ///< do $i<LoopVar> = Lo, Hi
  End,  ///< end do
};

/// Returns true for Add/Sub/Mul/Div.
bool isBinary(Op O);

/// One i-code instruction.
struct Instr {
  Op Opcode = Op::Copy;
  Operand Dst, A, B;
  // Loop fields (Opcode == Loop).
  int LoopVar = 0;
  std::int64_t Lo = 0, Hi = 0;
  /// Set on Loop instructions the unrolling pass should fully unroll
  /// (#unroll on, or the -B threshold at expansion time).
  bool UnrollFlag = false;

  static Instr copy(Operand Dst, Operand A);
  static Instr bin(Op Opcode, Operand Dst, Operand A, Operand B);
  static Instr neg(Operand Dst, Operand A);
  static Instr loop(int LoopVar, std::int64_t Lo, std::int64_t Hi,
                    bool UnrollFlag = false);
  static Instr end();
};

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

/// Element type of the data the program manipulates.
enum class DataType { Complex, Real };

/// A complete i-code program for one SPL formula: the subroutine body plus
/// symbol information (temporary vectors, scalar temps, constant tables).
struct Program {
  std::string SubName = "sub";
  std::int64_t InSize = 0;
  std::int64_t OutSize = 0;

  /// Element type. Real means every constant has zero imaginary part and
  /// buffers hold doubles (either #datatype real, or after complex-to-real
  /// lowering).
  DataType Type = DataType::Complex;

  /// True once the complex-to-real pass has run: logical complex elements
  /// are stored as interleaved (re,im) pairs and Type is Real.
  bool LoweredToReal = false;

  std::vector<Instr> Body;

  /// Sizes of temporary vectors; index 0 is vector id FirstTempVec.
  std::vector<std::int64_t> TempVecSizes;

  /// Number of scalar floating temporaries in use.
  int NumFltTemps = 0;

  /// Number of loop variables ever allocated (ids are < this).
  int NumLoopVars = 0;

  /// Constant tables produced by intrinsic evaluation.
  std::vector<std::vector<Cplx>> Tables;

  /// Size of temporary vector with the given vector id (>= FirstTempVec).
  std::int64_t tempVecSize(int VecId) const {
    assert(VecId >= FirstTempVec &&
           static_cast<size_t>(VecId - FirstTempVec) < TempVecSizes.size() &&
           "not a temporary vector id");
    return TempVecSizes[VecId - FirstTempVec];
  }

  /// Number of arithmetic instructions (Add/Sub/Mul/Div/Neg), counting loop
  /// bodies once per iteration. This is the static-times-trip-count count
  /// used by the operation-count cost model.
  std::uint64_t dynamicOpCount() const;

  /// Number of instructions in the body, loops counted once.
  size_t staticSize() const { return Body.size(); }

  /// Checks structural invariants (balanced loops, operand kinds in range,
  /// affine subscripts referencing live loop vars). Returns an empty string
  /// on success, else a description of the first violation.
  std::string verify() const;

  /// Renders the program in the paper's i-code style.
  std::string print() const;
};

} // namespace icode
} // namespace spl

#endif // SPL_ICODE_ICODE_H
