//===- support/StrUtil.cpp - String helpers -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StrUtil.h"

#include <cassert>
#include <charconv>
#include <cstdint>
#include <cctype>
#include <cmath>
#include <cstdio>

using namespace spl;

std::string spl::formatDouble(double V) {
  if (V == 0.0)
    return std::signbit(V) ? "-0.0" : "0.0";

  // std::to_chars emits the shortest representation that round-trips.
  char Buf[64];
  auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf) - 4, V);
  assert(Ec == std::errc() && "double formatting cannot fail");
  (void)Ec;
  std::string Out(Buf, End);
  // Ensure the token reads as a floating constant in C and Fortran.
  if (Out.find_first_of(".eE") == std::string::npos)
    Out += ".0";
  return Out;
}

std::string spl::formatComplex(std::complex<double> V) {
  if (V.imag() == 0.0 && !std::signbit(V.imag()))
    return formatDouble(V.real());
  return "(" + formatDouble(V.real()) + "," + formatDouble(V.imag()) + ")";
}

std::string spl::join(const std::vector<std::string> &Parts,
                      const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool spl::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

std::string spl::toLower(std::string S) {
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return S;
}

std::string spl::fnv1aHex(const std::string &S) {
  std::uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}
