//===- support/Diagnostics.cpp - Diagnostics engine -----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace spl;

std::string Diagnostic::str() const {
  std::string Out;
  switch (Kind) {
  case DiagKind::Error:
    Out = "error: ";
    break;
  case DiagKind::Warning:
    Out = "warning: ";
    break;
  case DiagKind::Note:
    Out = "note: ";
    break;
  }
  if (Loc.isValid())
    Out += Loc.str() + ": ";
  Out += Message;
  return Out;
}

void Diagnostics::error(SourceLoc Loc, std::string Message) {
  std::lock_guard<std::mutex> Lock(M);
  Messages.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void Diagnostics::warning(SourceLoc Loc, std::string Message) {
  std::lock_guard<std::mutex> Lock(M);
  Messages.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void Diagnostics::note(SourceLoc Loc, std::string Message) {
  std::lock_guard<std::mutex> Lock(M);
  Messages.push_back({DiagKind::Note, Loc, std::move(Message)});
}

std::string Diagnostics::dump() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out;
  for (const Diagnostic &D : Messages) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

void Diagnostics::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Messages.clear();
  NumErrors = 0;
}
