//===- support/HostInfo.h - Host platform probing ---------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Probes the machine the benchmarks run on. The paper's Table 1 lists the
/// evaluation platforms (CPU, clock, L1/L2 caches, memory, OS, compiler);
/// bench_table1_platforms prints the same inventory for this host.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_HOSTINFO_H
#define SPL_SUPPORT_HOSTINFO_H

#include <cstdint>
#include <string>

namespace spl {

/// Description of the host, in the shape of one column of the paper's
/// Table 1. Unknown fields are empty strings / zero.
struct HostInfo {
  std::string CpuModel;
  double CpuMHz = 0;
  std::uint64_t L1DataBytes = 0;
  std::uint64_t L1InstBytes = 0;
  std::uint64_t L2Bytes = 0;
  std::uint64_t L3Bytes = 0;
  std::uint64_t MemoryBytes = 0;
  std::string OSName;
  std::string Compiler;

  /// Probes /proc and /sys (Linux); missing information is left defaulted.
  static HostInfo detect();

  /// FNV-1a hex fingerprint of the running machine (CPU model, OS, and the
  /// compiler this binary was built with). Computed once and cached; the
  /// recipe is shared by the wisdom plan cache and the kernel cache, so
  /// both invalidate together when the host changes.
  static const std::string &fingerprint();

  /// Renders a two-column "field: value" table matching Table 1's rows.
  std::string table() const;
};

/// Formats a byte count as "16KB" / "1MB" / "384MB" the way Table 1 does.
std::string formatBytes(std::uint64_t Bytes);

} // namespace spl

#endif // SPL_SUPPORT_HOSTINFO_H
