//===- support/Subprocess.h - Guarded process execution ---------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded, observable child-process execution. The compile-time-search loop
/// runs thousands of generated kernels through an external C compiler; a
/// hanging or crashing invocation must cost a timeout, not a planner. This
/// module replaces bare std::system() with fork/exec plus:
///
///   - a wall-clock timeout with kill-on-expiry (the whole process group
///     dies, so a compiler's own children cannot linger),
///   - captured, size-capped combined stdout/stderr,
///   - a typed result distinguishing exit status, terminating signal,
///     timeout, and spawn failure.
///
/// runGuarded() forks a child around an arbitrary callable so freshly
/// compiled kernels can be proven in isolation: a kernel that segfaults or
/// spins takes down only the disposable child.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_SUBPROCESS_H
#define SPL_SUPPORT_SUBPROCESS_H

#include <functional>
#include <string>
#include <vector>

namespace spl {

/// What happened to a spawned child process.
struct SubprocessResult {
  int ExitCode = -1;       ///< Valid when the child exited normally.
  int Signal = 0;          ///< Terminating signal; 0 when none.
  bool TimedOut = false;   ///< Killed because the deadline expired.
  bool SpawnFailed = false;///< fork/exec itself failed (or no POSIX APIs).
  std::string Output;      ///< Combined stdout+stderr, capped.

  /// True only for a clean, in-time exit 0.
  bool ok() const {
    return !TimedOut && !SpawnFailed && Signal == 0 && ExitCode == 0;
  }

  /// True for failures worth one retry: the child was killed by a signal or
  /// by the timeout (compiler crash / machine hiccup), as opposed to a
  /// deterministic nonzero exit (a real diagnostic).
  bool transient() const { return !SpawnFailed && (TimedOut || Signal != 0); }

  /// One-line status, e.g. "exit 1", "killed by signal 11",
  /// "timed out after 2.5 s".
  std::string describe() const;
};

/// Knobs for runSubprocess.
struct SubprocessOptions {
  double TimeoutSeconds = 0;          ///< 0: no deadline.
  std::size_t MaxOutputBytes = 65536; ///< Output capture cap.
};

/// Runs \p Argv (argv[0] resolved through PATH) with captured output and an
/// optional deadline. Never throws; every failure mode is in the result.
SubprocessResult runSubprocess(const std::vector<std::string> &Argv,
                               const SubprocessOptions &Opts = {});

/// Outcome of runGuarded (no output capture; the child shares the parent's
/// stdio).
struct GuardedResult {
  int ExitCode = -1;
  int Signal = 0;
  bool TimedOut = false;
  bool SpawnFailed = false;

  bool ok() const {
    return !TimedOut && !SpawnFailed && Signal == 0 && ExitCode == 0;
  }
  std::string describe() const;
};

/// Runs \p Fn in a forked child bounded by \p TimeoutSeconds (0: none) and
/// reports how the child died. The child's exit status is Fn's return value.
/// On platforms without fork, Fn runs inline (unguarded) in this process.
GuardedResult runGuarded(const std::function<int()> &Fn,
                         double TimeoutSeconds);

/// Splits a command-line fragment on whitespace: "-O2 -fPIC" -> {-O2, -fPIC}.
/// No quoting rules — this is for compiler-flag strings, not shell text.
std::vector<std::string> splitCommandArgs(const std::string &S);

/// Reads a millisecond-valued environment variable as seconds, e.g.
/// envTimeoutSeconds("SPL_CC_TIMEOUT_MS", 60.0). Unset, empty, or
/// non-positive values yield the default.
double envTimeoutSeconds(const char *Name, double DefSeconds);

} // namespace spl

#endif // SPL_SUPPORT_SUBPROCESS_H
