//===- support/CircuitBreaker.cpp - Trip-open guard for sick dependencies -----==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CircuitBreaker.h"

#include "support/FaultInjection.h"
#include "telemetry/Metrics.h"

#include <cstdlib>

using namespace spl;
using namespace spl::support;

namespace {

telemetry::Counter &tripsCounter() {
  static telemetry::Counter &C = telemetry::counter("runtime.breaker.trips");
  return C;
}
telemetry::Counter &openCounter() {
  static telemetry::Counter &C = telemetry::counter("runtime.breaker.open");
  return C;
}
telemetry::Counter &halfOpenCounter() {
  static telemetry::Counter &C =
      telemetry::counter("runtime.breaker.half_open");
  return C;
}

} // namespace

void CircuitBreaker::configure(int Threshold, std::int64_t CooldownMs) {
  // Touch the counters so enabled processes report explicit zeros.
  tripsCounter();
  openCounter();
  halfOpenCounter();
  std::lock_guard<std::mutex> Lock(M);
  ThresholdV = Threshold > 0 ? Threshold : 0;
  if (CooldownMs > 0)
    CooldownMsV = CooldownMs;
  St = State::Closed;
  ConsecutiveFailures = 0;
  ProbeInFlight = false;
  EnabledFlag.store(ThresholdV > 0, std::memory_order_relaxed);
}

bool CircuitBreaker::configureFromEnv() {
  const char *K = std::getenv("SPL_BREAKER_K");
  if (!K || !*K)
    return false;
  int Threshold = std::atoi(K);
  std::int64_t Cooldown = 0;
  if (const char *C = std::getenv("SPL_BREAKER_COOLDOWN_MS"))
    Cooldown = std::atoll(C);
  configure(Threshold, Cooldown);
  return enabled();
}

bool CircuitBreaker::allow() {
  if (fault::at("breaker-trip"))
    trip();
  // A disabled breaker stays Closed forever (recordFailure is a no-op), so
  // no enabled() special case is needed here: only a real or forced trip
  // ever reaches the Open/HalfOpen arms.
  std::lock_guard<std::mutex> Lock(M);
  switch (St) {
  case State::Closed:
    return true;
  case State::Open: {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       Clock::now() - OpenedAt)
                       .count();
    if (Elapsed < CooldownMsV) {
      openCounter().add();
      return false;
    }
    St = State::HalfOpen;
    ProbeInFlight = false;
    [[fallthrough]];
  }
  case State::HalfOpen:
    if (ProbeInFlight) {
      // One probe at a time: concurrent attempts fail fast until the
      // in-flight probe reports back.
      openCounter().add();
      return false;
    }
    ProbeInFlight = true;
    halfOpenCounter().add();
    return true;
  }
  return true;
}

void CircuitBreaker::recordSuccess() {
  std::lock_guard<std::mutex> Lock(M);
  ConsecutiveFailures = 0;
  ProbeInFlight = false;
  St = State::Closed;
}

void CircuitBreaker::recordFailure() {
  std::lock_guard<std::mutex> Lock(M);
  if (St == State::HalfOpen) {
    // The probe failed: reopen for a fresh cooldown.
    tripLocked();
    return;
  }
  if (!enabled())
    return;
  if (++ConsecutiveFailures >= ThresholdV && St == State::Closed)
    tripLocked();
}

void CircuitBreaker::trip() {
  std::lock_guard<std::mutex> Lock(M);
  if (St != State::Open)
    tripLocked();
}

void CircuitBreaker::tripLocked() {
  St = State::Open;
  OpenedAt = Clock::now();
  ProbeInFlight = false;
  tripsCounter().add();
}

void CircuitBreaker::reset() {
  std::lock_guard<std::mutex> Lock(M);
  St = State::Closed;
  ConsecutiveFailures = 0;
  ProbeInFlight = false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> Lock(M);
  if (St == State::Open) {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       Clock::now() - OpenedAt)
                       .count();
    if (Elapsed >= CooldownMsV)
      return State::HalfOpen;
  }
  return St;
}

const char *CircuitBreaker::stateName() const {
  switch (state()) {
  case State::Closed:
    return "closed";
  case State::Open:
    return "open";
  case State::HalfOpen:
    return "half-open";
  }
  return "unknown";
}

std::string CircuitBreaker::describe() const {
  std::lock_guard<std::mutex> Lock(M);
  std::int64_t RetryMs = 0;
  if (St == State::Open) {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       Clock::now() - OpenedAt)
                       .count();
    RetryMs = Elapsed < CooldownMsV ? CooldownMsV - Elapsed : 0;
  }
  return "circuit breaker open after " + std::to_string(ConsecutiveFailures) +
         " consecutive compiler failures (retry in " +
         std::to_string(RetryMs) + " ms)";
}

CircuitBreaker &spl::support::compileBreaker() {
  static CircuitBreaker *B = [] {
    auto *Breaker = new CircuitBreaker();
    Breaker->configureFromEnv();
    return Breaker;
  }();
  return *B;
}
