//===- support/ThreadPool.h - Simple worker pool ----------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool (std::thread + queue) used by the search
/// engine to evaluate independent candidate formulas concurrently. Jobs are
/// plain closures; wait() blocks until the queue drains so a caller can use
/// the pool as a scoped parallel-for. Deliberately minimal: no futures, no
/// work stealing — candidate evaluation is coarse-grained enough that a
/// single locked deque never shows up in a profile.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_THREADPOOL_H
#define SPL_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spl {

/// A fixed set of worker threads consuming a FIFO job queue.
class ThreadPool {
public:
  /// Spawns \p Threads workers (minimum 1).
  explicit ThreadPool(unsigned Threads);

  /// Waits for queued jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues one job. Jobs must not enqueue further jobs and then wait()
  /// on the same pool (classic self-deadlock).
  void run(std::function<void()> Job);

  /// Blocks until every job enqueued so far has finished executing.
  void wait();

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// A sensible default worker count: hardware_concurrency, at least 1.
  static unsigned defaultThreads();

private:
  void workerLoop();

  std::mutex M;
  std::condition_variable JobReady; ///< Signals workers: job or shutdown.
  std::condition_variable AllDone;  ///< Signals wait(): queue drained.
  std::deque<std::function<void()>> Jobs;
  std::vector<std::thread> Workers;
  size_t InFlight = 0; ///< Queued + currently executing jobs.
  bool Stopping = false;
};

/// Runs Fn(0..N-1) across the pool and returns when all calls finished.
/// Exceptions must not escape Fn (the project builds without exceptions).
void parallelFor(ThreadPool &Pool, size_t N,
                 const std::function<void(size_t)> &Fn);

} // namespace spl

#endif // SPL_SUPPORT_THREADPOOL_H
