//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named fault-injection sites, armed through the SPL_FAULT environment
/// variable and compiled in unconditionally (the unarmed fast path is a
/// single relaxed atomic load). Every error-handling branch in the
/// compile/load/plan/time pipeline consults a site, so each branch can be
/// driven deterministically from a test or from the command line:
///
///   SPL_FAULT=<site>[:<n>][,<site>[:<n>]...]
///
/// A site fires on its first <n> consultations (default: every time). The
/// full site catalogue lives in docs/RELIABILITY.md; the load-bearing ones:
///
///   native-compile        the kernel C compile fails (synthesized exit 1)
///   native-compile-crash  the compiler dies on a signal (retried once)
///   native-compile-hang   the compile invocation hangs until its timeout
///   dlopen                loading the built module fails
///   dlsym                 the kernel symbol lookup fails
///   wisdom-load           the wisdom file read fails
///   wisdom-save           the wisdom file write fails
///   eval-hang             an evaluator timing run hangs until its timeout
///   trial-crash           trial execution of a fresh kernel segfaults
///   trial-hang            trial execution hangs until its timeout
///   vm-exec               the VM tier fails at plan time (forces oracle)
///   breaker-trip          forces the compile circuit breaker open (plans
///                         degrade straight to VM for the cooldown window)
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_FAULTINJECTION_H
#define SPL_SUPPORT_FAULTINJECTION_H

#include <string>

namespace spl {
namespace fault {

/// True when SPL_FAULT arms \p Site and its firing budget is not yet
/// exhausted. Each true return consumes one unit of the budget. When
/// SPL_FAULT is unset this is one relaxed atomic load.
bool at(const char *Site);

/// True when any site is armed (budget state ignored). Cheap; used by tests
/// that must skip under an externally imposed fault matrix.
bool armed();

/// Re-reads SPL_FAULT and resets every firing counter. Tests that setenv()
/// mid-process call this to re-arm.
void reset();

/// Canonical diagnostic text for a fired site:
/// "injected fault at '<site>' (SPL_FAULT)".
std::string describe(const char *Site);

} // namespace fault
} // namespace spl

#endif // SPL_SUPPORT_FAULTINJECTION_H
