//===- support/Timer.h - Timing utilities -----------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timing used by the search engine and the benchmark
/// harnesses. Provides a best-of-k repetition helper that mirrors how the
/// paper (and FFTW's planner) times candidate implementations.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_TIMER_H
#define SPL_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>
#include <functional>

namespace spl {

/// A simple monotonic stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Times \p Fn and returns the best (minimum) per-call seconds observed.
///
/// The function is called in batches whose size grows until one batch takes
/// at least \p MinBatchSeconds, then \p Repeats batches are measured and the
/// fastest is returned. Minimum-of-repeats is the conventional estimator for
/// short deterministic kernels since interference only ever adds time.
double timeBestOf(const std::function<void()> &Fn, int Repeats = 3,
                  double MinBatchSeconds = 1e-3);

} // namespace spl

#endif // SPL_SUPPORT_TIMER_H
