//===- support/Subprocess.cpp - Guarded process execution ---------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#define SPL_HAVE_FORK 1
#endif

using namespace spl;

std::string SubprocessResult::describe() const {
  if (SpawnFailed)
    return "could not spawn process";
  if (TimedOut)
    return "timed out";
  if (Signal != 0)
    return "killed by signal " + std::to_string(Signal);
  return "exit " + std::to_string(ExitCode);
}

std::string GuardedResult::describe() const {
  if (SpawnFailed)
    return "could not spawn guard process";
  if (TimedOut)
    return "timed out";
  if (Signal != 0)
    return "died on signal " + std::to_string(Signal);
  return "exit " + std::to_string(ExitCode);
}

std::vector<std::string> spl::splitCommandArgs(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream SS(S);
  std::string Tok;
  while (SS >> Tok)
    Out.push_back(Tok);
  return Out;
}

double spl::envTimeoutSeconds(const char *Name, double DefSeconds) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return DefSeconds;
  char *End = nullptr;
  double Ms = std::strtod(Env, &End);
  if (End == Env || Ms <= 0)
    return DefSeconds;
  return Ms / 1000.0;
}

#if defined(SPL_HAVE_FORK)

namespace {

/// Waits for \p Pid with an optional deadline. On expiry kills the child's
/// whole process group, reaps it, and reports TimedOut through \p TimedOut.
/// Returns the waitpid status.
int waitWithDeadline(pid_t Pid, double TimeoutSeconds, bool &TimedOut,
                     int ReadFd, std::string *Output,
                     std::size_t MaxOutputBytes) {
  using Clock = std::chrono::steady_clock;
  TimedOut = false;
  const bool HasDeadline = TimeoutSeconds > 0;
  const Clock::time_point Deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(TimeoutSeconds));
  auto RemainingMs = [&]() -> long {
    if (!HasDeadline)
      return -1;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    Deadline - Clock::now())
                    .count();
    return Left > 0 ? static_cast<long>(Left) : 0;
  };

  // Drain the output pipe until EOF (child exited and the write ends are
  // closed) or the deadline expires. poll() doubles as the timeout clock.
  char Buf[4096];
  bool PipeOpen = ReadFd >= 0;
  while (PipeOpen) {
    long Left = RemainingMs();
    if (HasDeadline && Left == 0) {
      TimedOut = true;
      break;
    }
    struct pollfd PFD = {ReadFd, POLLIN, 0};
    const long SliceMs = HasDeadline ? std::min<long>(Left, 50) : 200;
    int PR = ::poll(&PFD, 1, static_cast<int>(SliceMs));
    if (PR > 0) {
      ssize_t N = ::read(ReadFd, Buf, sizeof(Buf));
      if (N > 0) {
        if (Output && Output->size() < MaxOutputBytes)
          Output->append(Buf, Buf + std::min<std::size_t>(
                                        static_cast<std::size_t>(N),
                                        MaxOutputBytes - Output->size()));
        continue;
      }
      PipeOpen = false; // EOF or read error: the child is done writing.
    } else if (PR < 0 && errno != EINTR) {
      PipeOpen = false;
    }
  }

  if (!TimedOut && HasDeadline) {
    // Pipe EOF (or no pipe at all) with budget left: poll the child
    // directly — it may have closed its stdio yet still be running.
    for (;;) {
      int Status = 0;
      pid_t R = ::waitpid(Pid, &Status, WNOHANG);
      if (R == Pid)
        return Status;
      if (R < 0 && errno != EINTR)
        break;
      if (RemainingMs() == 0) {
        TimedOut = true;
        break;
      }
      struct timespec TS = {0, 20 * 1000 * 1000};
      ::nanosleep(&TS, nullptr);
    }
  }
  if (TimedOut) {
    // Kill the whole group: compilers spawn their own children (cc1, as).
    ::kill(-Pid, SIGKILL);
  }

  int Status = 0;
  while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  return Status;
}

} // namespace

SubprocessResult spl::runSubprocess(const std::vector<std::string> &Argv,
                                    const SubprocessOptions &Opts) {
  SubprocessResult Res;
  if (Argv.empty()) {
    Res.SpawnFailed = true;
    return Res;
  }

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Res.SpawnFailed = true;
    return Res;
  }

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Pipe[0]);
    ::close(Pipe[1]);
    Res.SpawnFailed = true;
    return Res;
  }

  if (Pid == 0) {
    // Child: own process group (so a timeout can kill compiler descendants),
    // stdout+stderr into the pipe, stdin from /dev/null.
    ::setpgid(0, 0);
    ::close(Pipe[0]);
    ::dup2(Pipe[1], STDOUT_FILENO);
    ::dup2(Pipe[1], STDERR_FILENO);
    ::close(Pipe[1]);
    int DevNull = ::open("/dev/null", O_RDONLY);
    if (DevNull >= 0) {
      ::dup2(DevNull, STDIN_FILENO);
      ::close(DevNull);
    }
    std::vector<char *> CArgv;
    CArgv.reserve(Argv.size() + 1);
    for (const std::string &A : Argv)
      CArgv.push_back(const_cast<char *>(A.c_str()));
    CArgv.push_back(nullptr);
    ::execvp(CArgv[0], CArgv.data());
    // exec failed; 127 mirrors the shell's "command not found".
    ::_exit(127);
  }

  ::setpgid(Pid, Pid); // Also from the parent: closes the startup race.
  ::close(Pipe[1]);

  bool TimedOut = false;
  int Status = waitWithDeadline(Pid, Opts.TimeoutSeconds, TimedOut, Pipe[0],
                                &Res.Output, Opts.MaxOutputBytes);
  ::close(Pipe[0]);

  Res.TimedOut = TimedOut;
  if (TimedOut)
    return Res;
  if (WIFSIGNALED(Status))
    Res.Signal = WTERMSIG(Status);
  else if (WIFEXITED(Status))
    Res.ExitCode = WEXITSTATUS(Status);
  return Res;
}

GuardedResult spl::runGuarded(const std::function<int()> &Fn,
                              double TimeoutSeconds) {
  GuardedResult Res;
  pid_t Pid = ::fork();
  if (Pid < 0) {
    Res.SpawnFailed = true;
    return Res;
  }
  if (Pid == 0) {
    ::setpgid(0, 0);
    ::_exit(Fn());
  }
  ::setpgid(Pid, Pid);

  bool TimedOut = false;
  int Status = waitWithDeadline(Pid, TimeoutSeconds, TimedOut, /*ReadFd=*/-1,
                                nullptr, 0);
  Res.TimedOut = TimedOut;
  if (TimedOut)
    return Res;
  if (WIFSIGNALED(Status))
    Res.Signal = WTERMSIG(Status);
  else if (WIFEXITED(Status))
    Res.ExitCode = WEXITSTATUS(Status);
  return Res;
}

#else // !SPL_HAVE_FORK

SubprocessResult spl::runSubprocess(const std::vector<std::string> &,
                                    const SubprocessOptions &) {
  SubprocessResult Res;
  Res.SpawnFailed = true;
  Res.Output = "subprocess execution is not supported on this platform";
  return Res;
}

GuardedResult spl::runGuarded(const std::function<int()> &Fn, double) {
  // No isolation available: run inline so the feature degrades to the old
  // in-process behavior instead of refusing to work.
  GuardedResult Res;
  Res.ExitCode = Fn();
  return Res;
}

#endif // SPL_HAVE_FORK
