//===- support/StrUtil.h - String helpers -----------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string formatting helpers shared by the printers and emitters.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_STRUTIL_H
#define SPL_SUPPORT_STRUTIL_H

#include <complex>
#include <string>
#include <vector>

namespace spl {

/// Formats a double with enough digits to round-trip exactly, trimming the
/// noise ("0.5" rather than "5.0000000000000000e-01").
std::string formatDouble(double V);

/// Formats a complex constant as "(re,im)"; pure-real values print as a
/// plain double.
std::string formatComplex(std::complex<double> V);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Returns true when \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Lower-cases ASCII characters in \p S.
std::string toLower(std::string S);

/// FNV-1a 64-bit hash of \p S, rendered as 16 lowercase hex digits. A
/// stable, compiler-independent content hash (std::hash would tie persisted
/// fingerprints to the standard library); used for wisdom line checksums,
/// host fingerprints, and kernel-cache keys.
std::string fnv1aHex(const std::string &S);

} // namespace spl

#endif // SPL_SUPPORT_STRUTIL_H
