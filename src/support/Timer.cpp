//===- support/Timer.cpp - Timing utilities -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

#include <algorithm>
#include <cassert>

using namespace spl;

double spl::timeBestOf(const std::function<void()> &Fn, int Repeats,
                       double MinBatchSeconds) {
  assert(Repeats > 0 && "need at least one repetition");

  // Grow the batch until it is long enough to time reliably.
  std::uint64_t Batch = 1;
  double BatchSeconds = 0;
  for (;;) {
    Timer T;
    for (std::uint64_t I = 0; I != Batch; ++I)
      Fn();
    BatchSeconds = T.seconds();
    if (BatchSeconds >= MinBatchSeconds || Batch >= (1ull << 30))
      break;
    // Aim directly for the target batch length once we have a signal.
    std::uint64_t Next = Batch * 2;
    if (BatchSeconds > 1e-7) {
      double Scale = MinBatchSeconds / BatchSeconds * 1.2;
      Next = std::max(Next, static_cast<std::uint64_t>(Batch * Scale) + 1);
    }
    Batch = Next;
  }

  double Best = BatchSeconds / static_cast<double>(Batch);
  for (int R = 1; R < Repeats; ++R) {
    Timer T;
    for (std::uint64_t I = 0; I != Batch; ++I)
      Fn();
    Best = std::min(Best, T.seconds() / static_cast<double>(Batch));
  }
  return Best;
}
