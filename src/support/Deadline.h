//===- support/Deadline.h - Monotonic budgets + cooperative cancel ------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `Deadline` is a monotonic wall-clock budget plus a shared cooperative
/// `CancelToken`, threaded through every layer that can take unbounded time
/// (DP search, the native-compiler subprocess, batch execution, the service
/// request path). Layers check `expired()` at safe points — between
/// candidates, between batch vectors, before forking a compiler — and return
/// best-so-far or a typed `DeadlineExceeded` instead of running on.
///
/// Design points:
///  * Default-constructed deadlines are **unbounded**: `expired()` is false
///    forever and `remainingSeconds()` is +inf, so unbudgeted callers pay one
///    branch and no clock read.
///  * Copies share the cancel token: cancelling any copy cancels them all.
///    `slice(f)` derives a sub-deadline covering a fraction of the remaining
///    budget (the planner's search slice) that still shares the token.
///  * Everything is `steady_clock`-based; wall-clock jumps cannot expire a
///    request early or extend it.
///
/// Documented in docs/RELIABILITY.md ("Latency bounds and overload").
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_DEADLINE_H
#define SPL_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>

namespace spl {
namespace support {

/// Shared cooperative cancellation flag. Copies alias the same flag, so a
/// token handed to a worker thread observes a later `cancel()` by the owner.
class CancelToken {
public:
  CancelToken() : Flag(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { Flag->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag->load(std::memory_order_relaxed); }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

class Deadline {
  using Clock = std::chrono::steady_clock;

public:
  /// Unbounded: never expires (unless cancelled).
  Deadline() = default;

  /// A deadline \p Ms milliseconds from now; Ms <= 0 means unbounded
  /// (matching the `--deadline-ms 0` / absent-wire-field convention).
  static Deadline afterMs(std::int64_t Ms) {
    Deadline D;
    if (Ms > 0)
      D.End = Clock::now() + std::chrono::milliseconds(Ms);
    return D;
  }

  /// A deadline \p Seconds from now; nonpositive means unbounded.
  static Deadline after(double Seconds) {
    Deadline D;
    if (Seconds > 0)
      D.End = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(Seconds));
    return D;
  }

  bool unbounded() const { return !End.has_value(); }

  /// True once the budget is spent or the token was cancelled. The unbounded
  /// fast path is one relaxed atomic load, no clock read.
  bool expired() const {
    if (Token.cancelled())
      return true;
    return End && Clock::now() >= *End;
  }

  /// Remaining budget in seconds: +inf when unbounded, <= 0 when expired.
  double remainingSeconds() const {
    if (Token.cancelled())
      return 0.0;
    if (!End)
      return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(*End - Clock::now()).count();
  }

  /// Remaining budget in whole milliseconds, clamped at 0; a large sentinel
  /// (~68 years) when unbounded so it fits the wire's u32 comfortably.
  std::int64_t remainingMs() const {
    double S = remainingSeconds();
    if (S == std::numeric_limits<double>::infinity())
      return std::numeric_limits<std::int64_t>::max() / 2;
    return S <= 0 ? 0 : static_cast<std::int64_t>(S * 1000.0);
  }

  /// A derived deadline covering \p Fraction of the remaining budget,
  /// sharing this deadline's cancel token (cancelling the parent cancels the
  /// slice). Slicing an unbounded deadline stays unbounded; slicing an
  /// expired one yields an already-expired deadline.
  Deadline slice(double Fraction) const {
    Deadline D = *this;
    if (!End)
      return D;
    double Rem = remainingSeconds();
    if (Rem < 0)
      Rem = 0;
    D.End = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(Rem * Fraction));
    return D;
  }

  /// Cooperative cancel: flips the shared token for every copy and slice.
  void cancel() { Token.cancel(); }
  bool cancelled() const { return Token.cancelled(); }
  CancelToken token() const { return Token; }

private:
  std::optional<Clock::time_point> End;
  CancelToken Token;
};

} // namespace support
} // namespace spl

#endif // SPL_SUPPORT_DEADLINE_H
