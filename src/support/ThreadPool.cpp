//===- support/ThreadPool.cpp - Simple worker pool ----------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace spl;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads < 1)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(M);
    Stopping = true;
  }
  JobReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::run(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(M);
    Jobs.push_back(std::move(Job));
    ++InFlight;
  }
  JobReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(M);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      JobReady.wait(Lock, [this] { return Stopping || !Jobs.empty(); });
      if (Jobs.empty())
        return; // Stopping and drained.
      Job = std::move(Jobs.front());
      Jobs.pop_front();
    }
    Job();
    {
      std::unique_lock<std::mutex> Lock(M);
      if (--InFlight == 0)
        AllDone.notify_all();
    }
  }
}

unsigned ThreadPool::defaultThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

void spl::parallelFor(ThreadPool &Pool, size_t N,
                      const std::function<void(size_t)> &Fn) {
  for (size_t I = 0; I != N; ++I)
    Pool.run([&Fn, I] { Fn(I); });
  Pool.wait();
}
