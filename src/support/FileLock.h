//===- support/FileLock.h - Advisory inter-process file lock ----*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII advisory flock() on a dedicated lock file. The persistent caches
/// (wisdom and the kernel cache) coordinate concurrent processes through
/// this: writers take LOCK_EX across their read-merge-write-rename window,
/// readers take LOCK_SH so they never observe a file mid-replacement.
/// Best-effort by design: when the lock file cannot be created the caller
/// proceeds unlocked, which is exactly the pre-lock behavior. flock locks
/// attach to the open file description, so two threads of one process
/// contending on the same path serialize just like two processes, and a
/// dying process releases its locks automatically.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_FILELOCK_H
#define SPL_SUPPORT_FILELOCK_H

#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define SPL_HAVE_FLOCK 1
#endif

namespace spl {

/// Holds an advisory flock on \p LockPath for the object's lifetime.
/// \p Operation is LOCK_SH or LOCK_EX (blocking). held() reports whether
/// the lock was actually acquired.
class FileLock {
public:
  FileLock(const std::string &LockPath, int Operation) {
#if defined(SPL_HAVE_FLOCK)
    Fd = ::open(LockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (Fd >= 0 && ::flock(Fd, Operation) != 0) {
      ::close(Fd);
      Fd = -1;
    }
#else
    (void)LockPath;
    (void)Operation;
#endif
  }

  ~FileLock() {
#if defined(SPL_HAVE_FLOCK)
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
#endif
  }

  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;

  bool held() const { return Fd >= 0; }

private:
  int Fd = -1;
};

} // namespace spl

#endif // SPL_SUPPORT_FILELOCK_H
