//===- support/SourceLoc.h - Source locations -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column source locations used by the SPL frontend and
/// diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_SOURCELOC_H
#define SPL_SUPPORT_SOURCELOC_H

#include <string>

namespace spl {

/// A position in an SPL source buffer. Lines and columns are 1-based; a
/// default-constructed location (line 0) means "unknown".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  SourceLoc() = default;
  SourceLoc(unsigned Line, unsigned Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  /// Renders the location as "line:col", or "<unknown>" when invalid.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace spl

#endif // SPL_SUPPORT_SOURCELOC_H
