//===- support/FaultInjection.cpp - Deterministic fault injection -------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>

using namespace spl;

namespace {

struct FaultState {
  std::mutex M;
  /// Site -> remaining firings. A negative budget means unlimited.
  std::map<std::string, long long> Budgets;
  bool Parsed = false;
};

FaultState &state() {
  static FaultState S;
  return S;
}

/// Fast-path flag: false until SPL_FAULT is seen non-empty. Rechecked only
/// by reset().
std::atomic<bool> Armed{false};

/// Parses "site[:n],site2[:n2]" into the budget table.
void parseLocked(FaultState &S) {
  S.Budgets.clear();
  S.Parsed = true;
  const char *Env = std::getenv("SPL_FAULT");
  if (!Env || !*Env) {
    Armed.store(false, std::memory_order_relaxed);
    return;
  }
  std::string Spec = Env;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Item = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Item.empty())
      continue;
    long long Budget = -1; // Unlimited unless ":n" is given.
    size_t Colon = Item.find(':');
    std::string Site = Item.substr(0, Colon);
    if (Colon != std::string::npos) {
      char *End = nullptr;
      long long N = std::strtoll(Item.c_str() + Colon + 1, &End, 10);
      if (End && *End == '\0' && N >= 0)
        Budget = N;
    }
    if (!Site.empty())
      S.Budgets[Site] = Budget;
  }
  Armed.store(!S.Budgets.empty(), std::memory_order_relaxed);
}

} // namespace

bool fault::at(const char *Site) {
  FaultState &S = state();
  if (!Armed.load(std::memory_order_relaxed)) {
    // Not yet parsed at all? Parse once so a process started with SPL_FAULT
    // set arms itself lazily; afterwards the unarmed path stays lock-free.
    if (S.Parsed)
      return false;
    std::lock_guard<std::mutex> Lock(S.M);
    if (!S.Parsed)
      parseLocked(S);
    if (!Armed.load(std::memory_order_relaxed))
      return false;
  }
  std::lock_guard<std::mutex> Lock(S.M);
  auto Hit = S.Budgets.find(Site);
  if (Hit == S.Budgets.end())
    return false;
  if (Hit->second < 0)
    return true; // Unlimited.
  if (Hit->second == 0)
    return false; // Budget spent.
  --Hit->second;
  return true;
}

bool fault::armed() {
  FaultState &S = state();
  if (!S.Parsed) {
    std::lock_guard<std::mutex> Lock(S.M);
    if (!S.Parsed)
      parseLocked(S);
  }
  return Armed.load(std::memory_order_relaxed);
}

void fault::reset() {
  FaultState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  parseLocked(S);
}

std::string fault::describe(const char *Site) {
  return std::string("injected fault at '") + Site + "' (SPL_FAULT)";
}
