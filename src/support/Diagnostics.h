//===- support/Diagnostics.h - Diagnostics engine ---------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error/warning/note reporting for the SPL compiler. The project builds
/// without exceptions; fallible phases report through a Diagnostics instance
/// and return null or std::nullopt. Callers inspect hasErrors() afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_DIAGNOSTICS_H
#define SPL_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace spl {

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "error: 3:7: message" (location omitted when unknown).
  std::string str() const;
};

/// Collects diagnostics produced while processing one SPL program.
///
/// Messages follow the convention of starting with a lowercase letter and
/// carrying no trailing period.
///
/// Reporting is thread-safe (the parallel search evaluates candidates on
/// worker threads that share one engine); all() hands out a reference, so
/// only call it once concurrent reporting has quiesced.
class Diagnostics {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors.load() != 0; }
  unsigned errorCount() const { return NumErrors.load(); }
  const std::vector<Diagnostic> &all() const { return Messages; }

  /// Returns every collected message joined by newlines (handy in tests and
  /// tool error paths).
  std::string dump() const;

  /// Drops all collected messages and resets the error count.
  void clear();

private:
  mutable std::mutex M;
  std::vector<Diagnostic> Messages;
  std::atomic<unsigned> NumErrors{0};
};

} // namespace spl

#endif // SPL_SUPPORT_DIAGNOSTICS_H
