//===- support/CircuitBreaker.h - Trip-open guard for sick dependencies -*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic three-state circuit breaker guarding the native-compiler
/// subprocess: after `Threshold` *consecutive* failures (nonzero exits,
/// crashes, deadline kills) the breaker opens and every compile attempt
/// fails fast for `CooldownMs`, so plans degrade straight to the VM tier
/// instead of forking a sick compiler on every miss. After the cooldown one
/// half-open probe is admitted; success closes the breaker, failure reopens
/// it with a fresh cooldown.
///
///   Closed --K consecutive failures--> Open --cooldown--> HalfOpen
///      ^                                 ^                   |
///      +------- probe succeeds ----------+--- probe fails ---+
///
/// The breaker is **disabled by default** (Threshold == 0): library users
/// and the CLI tools pay one mutex-free enabled() check and nothing else.
/// `spld` enables it via `--breaker-threshold`/`--breaker-cooldown-ms`, any
/// process can via `SPL_BREAKER_K` / `SPL_BREAKER_COOLDOWN_MS`. Kernel-cache
/// hits never consult the breaker — only real fork/exec compiles do.
///
/// Telemetry: `runtime.breaker.trips` (closed/half-open -> open),
/// `runtime.breaker.open` (fail-fast rejections), `runtime.breaker.half_open`
/// (probes admitted). Fault site `SPL_FAULT=breaker-trip` forces a trip on
/// the next allow() even when disabled. Documented in docs/RELIABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_SUPPORT_CIRCUITBREAKER_H
#define SPL_SUPPORT_CIRCUITBREAKER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace spl {
namespace support {

class CircuitBreaker {
public:
  enum class State { Closed, Open, HalfOpen };

  /// (Re)configures and resets to Closed. Threshold <= 0 disables the
  /// breaker entirely; CooldownMs <= 0 falls back to the 5000 ms default.
  void configure(int Threshold, std::int64_t CooldownMs);

  /// Applies SPL_BREAKER_K / SPL_BREAKER_COOLDOWN_MS when set; otherwise a
  /// no-op. Returns true when the environment enabled the breaker.
  bool configureFromEnv();

  bool enabled() const {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// Gate one attempt. True: proceed (and report the outcome via
  /// recordSuccess/recordFailure). False: fail fast, the dependency is
  /// considered down. Admits a single probe per cooldown when half-open.
  bool allow();

  void recordSuccess();
  void recordFailure();

  /// Forces the breaker open immediately (the breaker-trip fault site);
  /// works even when disabled so the site is drivable in any process.
  void trip();

  /// Back to Closed with counters cleared; configuration is kept.
  void reset();

  State state() const;
  const char *stateName() const;

  /// One-line reason for fail-fast error messages, e.g.
  /// "circuit breaker open after 5 consecutive compiler failures
  ///  (retry in 4200 ms)".
  std::string describe() const;

private:
  using Clock = std::chrono::steady_clock;

  void tripLocked();

  mutable std::mutex M;
  State St = State::Closed;
  int ConsecutiveFailures = 0;
  int ThresholdV = 0;
  std::int64_t CooldownMsV = 5000;
  Clock::time_point OpenedAt{};
  bool ProbeInFlight = false;
  std::atomic<bool> EnabledFlag{false};
};

/// The process-wide breaker guarding `perf::NativeModule::compile`'s
/// fork/exec path. Reads the SPL_BREAKER_* environment once on first use.
CircuitBreaker &compileBreaker();

} // namespace support
} // namespace spl

#endif // SPL_SUPPORT_CIRCUITBREAKER_H
