//===- support/HostInfo.cpp - Host platform probing -----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/HostInfo.h"

#include "support/StrUtil.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

using namespace spl;

namespace {

/// Reads a whole small file; returns "" when unreadable.
std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "";
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Parses cache-size strings like "32K" / "512K" / "8192K" / "1M".
std::uint64_t parseSizeSuffixed(const std::string &S) {
  if (S.empty())
    return 0;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (End == S.c_str())
    return 0;
  while (*End == ' ')
    ++End;
  switch (*End) {
  case 'K':
  case 'k':
    return static_cast<std::uint64_t>(V * 1024);
  case 'M':
  case 'm':
    return static_cast<std::uint64_t>(V * 1024 * 1024);
  case 'G':
  case 'g':
    return static_cast<std::uint64_t>(V * 1024 * 1024 * 1024);
  default:
    return static_cast<std::uint64_t>(V);
  }
}

/// Reads one sysfs cache index; fills the matching HostInfo field.
void probeCacheIndex(HostInfo &Info, int Index) {
  std::string Base =
      "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(Index);
  std::string Level = slurp(Base + "/level");
  std::string Type = slurp(Base + "/type");
  std::uint64_t Size = parseSizeSuffixed(slurp(Base + "/size"));
  if (Level.empty() || Size == 0)
    return;
  int L = std::atoi(Level.c_str());
  bool IsInst = startsWith(Type, "Instruction");
  if (L == 1 && IsInst)
    Info.L1InstBytes = Size;
  else if (L == 1)
    Info.L1DataBytes = Size;
  else if (L == 2)
    Info.L2Bytes = Size;
  else if (L == 3)
    Info.L3Bytes = Size;
}

} // namespace

const std::string &HostInfo::fingerprint() {
  static const std::string FP = [] {
    HostInfo Info = detect();
    return fnv1aHex(Info.CpuModel + "|" + Info.OSName + "|" + Info.Compiler);
  }();
  return FP;
}

HostInfo HostInfo::detect() {
  HostInfo Info;

#if defined(__linux__)
  // CPU model and clock from /proc/cpuinfo.
  std::ifstream CpuInfo("/proc/cpuinfo");
  std::string Line;
  while (std::getline(CpuInfo, Line)) {
    auto Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue;
    std::string Key = Line.substr(0, Colon);
    // Trim trailing whitespace from the key.
    while (!Key.empty() && (Key.back() == ' ' || Key.back() == '\t'))
      Key.pop_back();
    std::string Value = Line.substr(Colon + 1);
    if (!Value.empty() && Value.front() == ' ')
      Value.erase(0, 1);
    if (Key == "model name" && Info.CpuModel.empty())
      Info.CpuModel = Value;
    else if (Key == "cpu MHz" && Info.CpuMHz == 0)
      Info.CpuMHz = std::atof(Value.c_str());
  }

  for (int I = 0; I < 8; ++I)
    probeCacheIndex(Info, I);

  long Pages = sysconf(_SC_PHYS_PAGES);
  long PageSize = sysconf(_SC_PAGE_SIZE);
  if (Pages > 0 && PageSize > 0)
    Info.MemoryBytes =
        static_cast<std::uint64_t>(Pages) * static_cast<std::uint64_t>(PageSize);

  struct utsname Uts;
  if (uname(&Uts) == 0) {
    Info.OSName = std::string(Uts.sysname) + " " + Uts.release;
  }
#endif

#if defined(__clang__)
  Info.Compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  Info.Compiler = "gcc " + std::to_string(__GNUC__) + "." +
                  std::to_string(__GNUC_MINOR__) + "." +
                  std::to_string(__GNUC_PATCHLEVEL__);
#endif

  return Info;
}

std::string spl::formatBytes(std::uint64_t Bytes) {
  if (Bytes == 0)
    return "unknown";
  char Buf[32];
  if (Bytes >= (1ull << 30) && Bytes % (1ull << 30) == 0) {
    std::snprintf(Buf, sizeof(Buf), "%lluGB",
                  static_cast<unsigned long long>(Bytes >> 30));
  } else if (Bytes >= (1ull << 20)) {
    std::snprintf(Buf, sizeof(Buf), "%lluMB",
                  static_cast<unsigned long long>(Bytes >> 20));
  } else if (Bytes >= (1ull << 10)) {
    std::snprintf(Buf, sizeof(Buf), "%lluKB",
                  static_cast<unsigned long long>(Bytes >> 10));
  } else {
    std::snprintf(Buf, sizeof(Buf), "%lluB",
                  static_cast<unsigned long long>(Bytes));
  }
  return Buf;
}

std::string HostInfo::table() const {
  std::ostringstream SS;
  auto Row = [&SS](const std::string &Key, const std::string &Value) {
    SS << "  " << Key;
    for (size_t I = Key.size(); I < 12; ++I)
      SS << ' ';
    SS << (Value.empty() ? "unknown" : Value) << '\n';
  };
  Row("CPU", CpuModel);
  Row("Clock", CpuMHz > 0 ? formatDouble(CpuMHz) + "MHz" : "");
  std::string L1;
  if (L1InstBytes || L1DataBytes)
    L1 = formatBytes(L1InstBytes) + "/" + formatBytes(L1DataBytes);
  Row("L1 cache", L1);
  Row("L2 cache", L2Bytes ? formatBytes(L2Bytes) : "");
  if (L3Bytes)
    Row("L3 cache", formatBytes(L3Bytes));
  Row("Memory", MemoryBytes ? formatBytes(MemoryBytes) : "");
  Row("OS", OSName);
  Row("Compiler", Compiler);
  return SS.str();
}
