//===- opt/DCE.h - Dead code elimination ------------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes assignments whose results are never used. Straight-line programs
/// get a precise backward liveness pass over scalars and array elements;
/// programs with loops use a conservative fixpoint that only removes writes
/// to temporaries that are never read anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_OPT_DCE_H
#define SPL_OPT_DCE_H

#include "icode/ICode.h"

namespace spl {
namespace opt {

/// Runs dead-code elimination. Writes to the output vector are live unless
/// they are provably overwritten later.
icode::Program eliminateDeadCode(const icode::Program &P);

} // namespace opt
} // namespace spl

#endif // SPL_OPT_DCE_H
