//===- opt/Peephole.cpp - Machine-dependent peepholes ------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/Peephole.h"

using namespace spl;
using namespace spl::opt;
using namespace spl::icode;

Program opt::peephole(const Program &P, const PeepholeOptions &Opts) {
  Program Out = P;
  for (Instr &I : Out.Body) {
    if (I.Opcode != Op::Neg)
      continue;
    // Neg of a constant folds outright.
    if (I.A.is(OpndKind::FltConst)) {
      I = Instr::copy(I.Dst, Operand::fltConst(-I.A.FConst));
      continue;
    }
    if (Opts.NegToSub)
      I = Instr::bin(Op::Sub, I.Dst, Operand::fltConst(Cplx(0, 0)), I.A);
  }

  if (Opts.NegConstMul) {
    // Pattern: t = c * x; d = -t  ==>  d = (-c) * x, when t is a scalar
    // temp whose only use is the adjacent negation.
    for (size_t I = 0; I + 1 < Out.Body.size(); ++I) {
      Instr &Mul = Out.Body[I];
      Instr &Neg = Out.Body[I + 1];
      bool NegShape =
          Neg.Opcode == Op::Neg ||
          (Neg.Opcode == Op::Sub && Neg.A.is(OpndKind::FltConst) &&
           Neg.A.FConst == Cplx(0, 0));
      const Operand &NegSrc = Neg.Opcode == Op::Neg ? Neg.A : Neg.B;
      if (!NegShape || Mul.Opcode != Op::Mul ||
          !Mul.Dst.is(OpndKind::FltTemp) || !(NegSrc == Mul.Dst) ||
          !Mul.A.is(OpndKind::FltConst))
        continue;
      // Count uses of the temp elsewhere.
      int Uses = 0;
      for (const Instr &Other : Out.Body) {
        if (Other.Opcode == Op::Loop || Other.Opcode == Op::End)
          continue;
        if (Other.A == Mul.Dst)
          ++Uses;
        if (isBinary(Other.Opcode) && Other.B == Mul.Dst)
          ++Uses;
      }
      if (Uses != 1)
        continue;
      Instr Fused = Instr::bin(Op::Mul, Neg.Dst,
                               Operand::fltConst(-Mul.A.FConst), Mul.B);
      Neg = Fused;
      Mul = Instr::copy(Mul.Dst, Operand::fltConst(Cplx(0, 0)));
      // The now-dead constant copy is collected by DCE if it runs later;
      // it is harmless otherwise.
    }
  }

  assert(Out.verify().empty() && "peephole produced invalid i-code");
  return Out;
}
