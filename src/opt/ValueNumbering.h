//===- opt/ValueNumbering.h - Value-numbering optimizer ---------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's default optimizations (Section 3.4): constant folding, copy
/// propagation, common subexpression elimination and algebraic
/// simplification, all in a single pass driven by value numbering. Both
/// scalar variables and array elements participate; stores to array
/// elements conservatively invalidate potentially aliasing values. Value
/// state is reset at loop boundaries, so straight-line (unrolled) programs
/// get the full benefit.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_OPT_VALUENUMBERING_H
#define SPL_OPT_VALUENUMBERING_H

#include "icode/ICode.h"

namespace spl {
namespace opt {

/// Pass toggles (for the optimizer-ablation benchmark).
struct VNOptions {
  bool ConstantFold = true;
  bool CopyProp = true;
  bool CSE = true;
  bool Algebraic = true;
};

/// Runs the value-numbering pass. Dead code is left behind for the DCE pass
/// to collect.
icode::Program valueNumber(const icode::Program &P,
                           const VNOptions &Opts = VNOptions());

} // namespace opt
} // namespace spl

#endif // SPL_OPT_VALUENUMBERING_H
