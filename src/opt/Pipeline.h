//===- opt/Pipeline.h - Optimization pipeline -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the restructuring and optimization passes into the pipeline the
/// paper describes: unrolling, intrinsic evaluation, type transformation,
/// scalarization, value numbering, dead-code elimination, and the
/// machine-dependent peepholes. The three OptLevels match the versions
/// compared in Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_OPT_PIPELINE_H
#define SPL_OPT_PIPELINE_H

#include "icode/ICode.h"
#include "icode/Intrinsics.h"
#include "opt/Peephole.h"
#include "opt/ValueNumbering.h"

namespace spl {
namespace opt {

/// The three code versions of Figure 2.
enum class OptLevel {
  None,      ///< Expansion + unrolling + intrinsic evaluation only.
  Scalarize, ///< + temporary vectors replaced by scalar variables.
  Default,   ///< + constant folding / copy propagation / CSE / DCE.
};

/// Pipeline configuration.
struct PipelineOptions {
  OptLevel Level = OptLevel::Default;

  /// Run the unrolling pass on flagged loops (always wanted in practice;
  /// exposed for tests).
  bool DoUnroll = true;

  /// Additionally unroll the remaining loops partially by this factor
  /// (0/1: off). Loops whose trip counts the factor does not divide are
  /// left alone (paper Section 3.3.1, "fully or partially").
  int PartialUnrollFactor = 0;

  /// Lower complex arithmetic to pairs of reals (#codetype real). Required
  /// for C output; no-op for real-typed programs.
  bool LowerToReal = false;

  /// Apply the SPARC-style peepholes.
  bool SparcPeephole = false;

  /// Pass-level toggles (optimizer-ablation benchmark).
  VNOptions VN;
  bool RunDCE = true;
};

/// Runs the configured pipeline over an expanded program.
icode::Program runPipeline(const icode::Program &Expanded,
                           const PipelineOptions &Opts,
                           const icode::IntrinsicRegistry &Intrinsics =
                               icode::IntrinsicRegistry::builtins());

} // namespace opt
} // namespace spl

#endif // SPL_OPT_PIPELINE_H
