//===- opt/ValueNumbering.cpp - Value-numbering optimizer --------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-pass value numbering (constant folding, copy propagation, CSE,
/// algebraic identities). Locations are tracked in per-vector buckets keyed
/// by the symbolic part of the affine subscript, so a store invalidates
/// exactly the entries it may alias in amortized constant time: subscripts
/// with the same loop-variable terms alias iff their constant parts are
/// equal, and buckets with different terms are dropped wholesale (they may
/// alias). This keeps the pass linear on the fully unrolled programs where
/// it matters most.
///
//===----------------------------------------------------------------------===//

#include "opt/ValueNumbering.h"

#include <map>
#include <optional>
#include <string>
#include <tuple>

using namespace spl;
using namespace spl::opt;
using namespace spl::icode;

namespace {

struct CplxLess {
  bool operator()(Cplx A, Cplx B) const {
    if (A.real() != B.real())
      return A.real() < B.real();
    return A.imag() < B.imag();
  }
};

/// The symbolic part of an affine form, as a bucket key.
std::string sigOf(const Affine &A) {
  std::string S;
  for (const auto &[V, C] : A.Terms) {
    S += std::to_string(V);
    S += '*';
    S += std::to_string(C);
    S += ';';
  }
  return S;
}

class VNImpl {
public:
  VNImpl(const Program &In, const VNOptions &Opts) : In(In), Opts(Opts) {
    FltVN.assign(In.NumFltTemps, -1);
  }

  Program run() {
    Program Out = In;
    Out.Body.clear();
    Out.Body.reserve(In.Body.size());
    for (const Instr &I : In.Body) {
      if (I.Opcode == Op::Loop || I.Opcode == Op::End) {
        // Conservative: values do not survive loop boundaries.
        reset();
        Out.Body.push_back(I);
        continue;
      }
      process(I, Out);
    }
    FltVN.resize(static_cast<size_t>(Out.NumFltTemps), -1);
    assert(Out.verify().empty() && "value numbering produced invalid i-code");
    return Out;
  }

private:
  const Program &In;
  VNOptions Opts;

  int NextVN = 0;
  std::vector<int> FltVN; ///< Flt temp id -> VN (-1 unknown).
  /// Vector id -> subscript signature -> constant base -> VN.
  std::map<int, std::map<std::string, std::map<std::int64_t, int>>> VecVN;
  /// Table reads, same structure (never invalidated; tables are constant).
  std::map<int, std::map<std::string, std::map<std::int64_t, int>>> TabVN;
  std::map<Cplx, int, CplxLess> ConstVN;
  std::map<int, Cplx> VNConst;
  std::map<std::tuple<int, int, int>, int> ExprVN;
  std::map<int, std::vector<Operand>> Holders;

  void reset() {
    std::fill(FltVN.begin(), FltVN.end(), -1);
    VecVN.clear();
    TabVN.clear();
    ConstVN.clear();
    VNConst.clear();
    ExprVN.clear();
    Holders.clear();
  }

  int freshVN() { return NextVN++; }

  int vnOfConst(Cplx C) {
    auto [It, Inserted] = ConstVN.insert({C, 0});
    if (Inserted) {
      It->second = freshVN();
      VNConst[It->second] = C;
    }
    return It->second;
  }

  /// Value number of a source operand, creating one if unseen.
  int vnOf(const Operand &O) {
    switch (O.Kind) {
    case OpndKind::FltConst:
      return vnOfConst(O.FConst);
    case OpndKind::FltTemp: {
      if (static_cast<size_t>(O.Id) >= FltVN.size())
        FltVN.resize(O.Id + 1, -1);
      int &Slot = FltVN[O.Id];
      if (Slot < 0) {
        Slot = freshVN();
        Holders[Slot].push_back(O);
      }
      return Slot;
    }
    case OpndKind::TableElem: {
      if (Opts.ConstantFold && O.Subs.isConst())
        return vnOfConst(In.Tables[O.Id][O.Subs.Base]);
      auto &Bucket = TabVN[O.Id][sigOf(O.Subs)];
      auto [It, Inserted] = Bucket.insert({O.Subs.Base, 0});
      if (Inserted) {
        It->second = freshVN();
        Holders[It->second].push_back(O);
      }
      return It->second;
    }
    case OpndKind::VecElem: {
      auto &Bucket = VecVN[O.Id][sigOf(O.Subs)];
      auto [It, Inserted] = Bucket.insert({O.Subs.Base, 0});
      if (Inserted) {
        It->second = freshVN();
        Holders[It->second].push_back(O);
      }
      return It->second;
    }
    default:
      assert(false && "unexpected operand kind");
      return freshVN();
    }
  }

  static bool sameLoc(const Operand &A, const Operand &B) {
    if (A.Kind != B.Kind)
      return false;
    if (A.Kind == OpndKind::FltTemp)
      return A.Id == B.Id;
    if (A.Kind == OpndKind::VecElem || A.Kind == OpndKind::TableElem)
      return A.Id == B.Id && A.Subs == B.Subs;
    return false;
  }

  void dropHolder(int VN, const Operand &Loc) {
    auto It = Holders.find(VN);
    if (It == Holders.end())
      return;
    auto &Hs = It->second;
    for (size_t I = 0; I != Hs.size(); ++I) {
      if (sameLoc(Hs[I], Loc)) {
        Hs.erase(Hs.begin() + I);
        return;
      }
    }
  }

  /// Cheapest operand currently known to hold \p VN, or nullopt.
  std::optional<Operand> repOf(int VN) {
    auto C = VNConst.find(VN);
    if (C != VNConst.end())
      return Operand::fltConst(C->second);
    auto H = Holders.find(VN);
    if (H == Holders.end() || H->second.empty())
      return std::nullopt;
    for (const Operand &O : H->second)
      if (O.Kind == OpndKind::FltTemp)
        return O;
    return H->second.front();
  }

  /// Source operand after copy propagation.
  Operand propagate(const Operand &O, int VN) {
    if (!Opts.CopyProp)
      return O;
    auto Rep = repOf(VN);
    if (!Rep)
      return O;
    if (Rep->Kind == OpndKind::FltConst)
      return *Rep;
    if (Rep->Kind == OpndKind::FltTemp && O.Kind != OpndKind::FltConst)
      return *Rep;
    return O;
  }

  /// Invalidates everything a store to \p Dst may overwrite.
  void kill(const Operand &Dst) {
    if (Dst.Kind == OpndKind::FltTemp) {
      if (static_cast<size_t>(Dst.Id) < FltVN.size() && FltVN[Dst.Id] >= 0) {
        dropHolder(FltVN[Dst.Id], Dst);
        FltVN[Dst.Id] = -1;
      }
      return;
    }
    assert(Dst.Kind == OpndKind::VecElem && "bad destination");
    auto VIt = VecVN.find(Dst.Id);
    if (VIt == VecVN.end())
      return;
    std::string Sig = sigOf(Dst.Subs);
    auto &Sigs = VIt->second;
    for (auto SIt = Sigs.begin(); SIt != Sigs.end();) {
      if (SIt->first == Sig) {
        // Same symbolic part: aliases iff the constant parts are equal.
        auto BIt = SIt->second.find(Dst.Subs.Base);
        if (BIt != SIt->second.end()) {
          dropHolder(BIt->second, Dst);
          SIt->second.erase(BIt);
        }
        ++SIt;
      } else {
        // Different symbolic part: may alias; drop the whole bucket.
        for (const auto &[Base, VN] : SIt->second) {
          Operand Loc = Operand::vecElem(Dst.Id, Affine(Base));
          // Reconstruct the operand for holder removal: the exact affine is
          // lost; drop by scanning this VN's holders for this vector.
          auto HIt = Holders.find(VN);
          if (HIt != Holders.end()) {
            auto &Hs = HIt->second;
            for (size_t I = 0; I != Hs.size();) {
              if (Hs[I].Kind == OpndKind::VecElem && Hs[I].Id == Dst.Id)
                Hs.erase(Hs.begin() + I);
              else
                ++I;
            }
          }
          (void)Loc;
        }
        SIt = Sigs.erase(SIt);
      }
    }
  }

  /// Binds \p Dst to \p VN after its store.
  void record(const Operand &Dst, int VN) {
    if (Dst.Kind == OpndKind::FltTemp) {
      if (static_cast<size_t>(Dst.Id) >= FltVN.size())
        FltVN.resize(Dst.Id + 1, -1);
      FltVN[Dst.Id] = VN;
      Holders[VN].push_back(Dst);
    } else if (Dst.Kind == OpndKind::VecElem) {
      VecVN[Dst.Id][sigOf(Dst.Subs)][Dst.Subs.Base] = VN;
      Holders[VN].push_back(Dst);
    }
  }

  std::optional<Cplx> constOf(int VN) {
    auto It = VNConst.find(VN);
    if (It == VNConst.end())
      return std::nullopt;
    return It->second;
  }

  void emitCopyOf(Program &Out, const Operand &Dst, int VN,
                  const Operand &Fallback) {
    Operand Src = Fallback;
    if (auto Rep = repOf(VN))
      Src = *Rep;
    // Self-copies vanish (the location already holds the value).
    if (sameLoc(Src, Dst)) {
      kill(Dst);
      record(Dst, VN);
      return;
    }
    kill(Dst);
    Out.Body.push_back(Instr::copy(Dst, Src));
    record(Dst, VN);
  }

  void emitConst(Program &Out, const Operand &Dst, Cplx C) {
    int VN = vnOfConst(C);
    kill(Dst);
    Out.Body.push_back(Instr::copy(Dst, Operand::fltConst(C)));
    record(Dst, VN);
  }

  /// Expression-key opcodes: arithmetic ops plus a pseudo-op for negation.
  static constexpr int NegKey = 100;

  void emitNegOf(Program &Out, const Operand &Dst, int VSrc,
                 const Operand &Src) {
    auto Key = std::make_tuple(NegKey, VSrc, -1);
    if (Opts.CSE) {
      auto Hit = ExprVN.find(Key);
      if (Hit != ExprVN.end() && repOf(Hit->second)) {
        emitCopyOf(Out, Dst, Hit->second, Src);
        return;
      }
    }
    int VD = freshVN();
    ExprVN[Key] = VD;
    kill(Dst);
    Out.Body.push_back(Instr::neg(Dst, Src));
    record(Dst, VD);
  }

  void process(const Instr &I, Program &Out) {
    switch (I.Opcode) {
    case Op::Copy: {
      int VA = vnOf(I.A);
      Operand A = propagate(I.A, VA);
      emitCopyOf(Out, I.Dst, VA, A);
      return;
    }
    case Op::Neg: {
      int VA = vnOf(I.A);
      Operand A = propagate(I.A, VA);
      if (Opts.ConstantFold) {
        if (auto C = constOf(VA)) {
          emitConst(Out, I.Dst, -*C);
          return;
        }
      }
      emitNegOf(Out, I.Dst, VA, A);
      return;
    }
    default:
      break;
    }

    // Binary operation.
    int VA = vnOf(I.A), VB = vnOf(I.B);
    Operand A = propagate(I.A, VA), B = propagate(I.B, VB);
    auto CA = constOf(VA), CB = constOf(VB);

    if (Opts.ConstantFold && CA && CB &&
        !(I.Opcode == Op::Div && *CB == Cplx(0, 0))) {
      Cplx R(0, 0);
      switch (I.Opcode) {
      case Op::Add:
        R = *CA + *CB;
        break;
      case Op::Sub:
        R = *CA - *CB;
        break;
      case Op::Mul:
        R = *CA * *CB;
        break;
      case Op::Div:
        R = *CA / *CB;
        break;
      default:
        break;
      }
      emitConst(Out, I.Dst, R);
      return;
    }

    if (Opts.Algebraic) {
      const Cplx Zero(0, 0), One(1, 0), MinusOne(-1, 0);
      if (I.Opcode == Op::Add && CA && *CA == Zero)
        return emitCopyOf(Out, I.Dst, VB, B);
      if (I.Opcode == Op::Add && CB && *CB == Zero)
        return emitCopyOf(Out, I.Dst, VA, A);
      if (I.Opcode == Op::Sub && CB && *CB == Zero)
        return emitCopyOf(Out, I.Dst, VA, A);
      if (I.Opcode == Op::Mul && CA && *CA == One)
        return emitCopyOf(Out, I.Dst, VB, B);
      if (I.Opcode == Op::Mul && CB && *CB == One)
        return emitCopyOf(Out, I.Dst, VA, A);
      if (I.Opcode == Op::Div && CB && *CB == One)
        return emitCopyOf(Out, I.Dst, VA, A);
      if (I.Opcode == Op::Mul && ((CA && *CA == Zero) || (CB && *CB == Zero)))
        return emitConst(Out, I.Dst, Zero);
      if (I.Opcode == Op::Mul && CB && *CB == MinusOne)
        return emitNegOf(Out, I.Dst, VA, A);
      if ((I.Opcode == Op::Mul && CA && *CA == MinusOne) ||
          (I.Opcode == Op::Sub && CA && *CA == Zero))
        return emitNegOf(Out, I.Dst, VB, B);
    }

    // CSE with commutative normalization.
    int KA = VA, KB = VB;
    if ((I.Opcode == Op::Add || I.Opcode == Op::Mul) && KA > KB)
      std::swap(KA, KB);
    auto Key = std::make_tuple(static_cast<int>(I.Opcode), KA, KB);
    if (Opts.CSE) {
      auto Hit = ExprVN.find(Key);
      if (Hit != ExprVN.end() && repOf(Hit->second)) {
        emitCopyOf(Out, I.Dst, Hit->second, A);
        return;
      }
    }
    int VD = freshVN();
    ExprVN[Key] = VD;
    kill(I.Dst);
    Out.Body.push_back(Instr::bin(I.Opcode, I.Dst, A, B));
    record(I.Dst, VD);
  }
};

} // namespace

Program opt::valueNumber(const Program &P, const VNOptions &Opts) {
  return VNImpl(P, Opts).run();
}
