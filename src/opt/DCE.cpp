//===- opt/DCE.cpp - Dead code elimination ------------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/DCE.h"

#include "xform/Unroll.h"

#include <map>
#include <set>
#include <string>

using namespace spl;
using namespace spl::opt;
using namespace spl::icode;

namespace {

std::string elemKey(const Operand &O) {
  assert(O.Subs.isConst() && "straight-line DCE expects constant subscripts");
  return std::to_string(O.Id) + ":" + std::to_string(O.Subs.Base);
}

/// Precise backward liveness for straight-line programs.
Program dceStraightLine(const Program &P) {
  std::set<int> LiveFlt;
  // Vector elements: present-with-true = live, present-with-false = dead
  // (overwritten later); absent output elements are live-out, absent
  // temporary elements are dead.
  std::map<std::string, bool> LiveVec;

  auto IsLive = [&](const Operand &Dst) {
    if (Dst.Kind == OpndKind::FltTemp)
      return LiveFlt.count(Dst.Id) != 0;
    assert(Dst.Kind == OpndKind::VecElem && "unexpected destination");
    auto It = LiveVec.find(elemKey(Dst));
    if (It != LiveVec.end())
      return It->second;
    return Dst.Id == VecOut;
  };
  auto MarkRead = [&](const Operand &O) {
    if (O.Kind == OpndKind::FltTemp)
      LiveFlt.insert(O.Id);
    else if (O.Kind == OpndKind::VecElem)
      LiveVec[elemKey(O)] = true;
  };

  std::vector<Instr> Kept;
  for (size_t I = P.Body.size(); I-- > 0;) {
    const Instr &Ins = P.Body[I];
    if (!IsLive(Ins.Dst))
      continue;
    // The value is consumed below; this definition satisfies it.
    if (Ins.Dst.Kind == OpndKind::FltTemp)
      LiveFlt.erase(Ins.Dst.Id);
    else
      LiveVec[elemKey(Ins.Dst)] = false;
    MarkRead(Ins.A);
    if (isBinary(Ins.Opcode))
      MarkRead(Ins.B);
    Kept.push_back(Ins);
  }

  Program Out = P;
  Out.Body.assign(Kept.rbegin(), Kept.rend());
  return Out;
}

/// Conservative fixpoint for programs with loops: drop writes to scalars
/// and temporary vectors that are never read anywhere.
Program dceWithLoops(const Program &P) {
  Program Out = P;
  for (;;) {
    std::set<int> ReadFlt;
    std::set<int> ReadVecs;
    auto MarkRead = [&](const Operand &O) {
      if (O.Kind == OpndKind::FltTemp)
        ReadFlt.insert(O.Id);
      else if (O.Kind == OpndKind::VecElem)
        ReadVecs.insert(O.Id);
    };
    for (const Instr &I : Out.Body) {
      if (I.Opcode == Op::Loop || I.Opcode == Op::End)
        continue;
      MarkRead(I.A);
      if (isBinary(I.Opcode))
        MarkRead(I.B);
    }

    std::vector<Instr> Kept;
    bool Changed = false;
    for (const Instr &I : Out.Body) {
      if (I.Opcode != Op::Loop && I.Opcode != Op::End) {
        bool Dead = false;
        if (I.Dst.Kind == OpndKind::FltTemp)
          Dead = !ReadFlt.count(I.Dst.Id);
        else if (I.Dst.Kind == OpndKind::VecElem && I.Dst.Id >= FirstTempVec)
          Dead = !ReadVecs.count(I.Dst.Id);
        if (Dead) {
          Changed = true;
          continue;
        }
      }
      Kept.push_back(I);
    }
    Out.Body = std::move(Kept);
    if (!Changed)
      return Out;
  }
}

} // namespace

Program opt::eliminateDeadCode(const Program &P) {
  Program Out =
      xform::isStraightLine(P) ? dceStraightLine(P) : dceWithLoops(P);
  assert(Out.verify().empty() && "DCE produced invalid i-code");
  return Out;
}
