//===- opt/Pipeline.cpp - Optimization pipeline -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"

#include "opt/DCE.h"
#include "xform/Complex2Real.h"
#include "xform/IntrinEval.h"
#include "xform/Scalarize.h"
#include "xform/Unroll.h"

using namespace spl;
using namespace spl::opt;
using namespace spl::icode;

Program opt::runPipeline(const Program &Expanded, const PipelineOptions &Opts,
                         const IntrinsicRegistry &Intrinsics) {
  Program P = Expanded;
  if (Opts.DoUnroll)
    P = xform::unrollLoops(P);
  if (Opts.PartialUnrollFactor > 1)
    P = xform::partialUnroll(P, Opts.PartialUnrollFactor);
  P = xform::evalIntrinsics(P, Intrinsics);
  if (Opts.LowerToReal && P.Type == DataType::Complex)
    P = xform::lowerToReal(P);

  if (Opts.Level == OptLevel::None)
    return P;
  P = xform::scalarizeTemps(P);
  if (Opts.Level == OptLevel::Scalarize)
    return P;

  P = valueNumber(P, Opts.VN);
  if (Opts.RunDCE)
    P = eliminateDeadCode(P);
  if (Opts.SparcPeephole) {
    P = peephole(P);
    if (Opts.RunDCE)
      P = eliminateDeadCode(P);
  }
  return P;
}
