//===- opt/Peephole.h - Machine-dependent peepholes -------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-dependent peephole transformations of paper Section 3.4,
/// motivated by SPARC: double-precision arithmetic negation is expensive
/// (the FPU switches precision modes), so "f2 = -f1" becomes "f2 = 0 - f1"
/// and a negation of a constant multiple folds into a negative constant
/// ("f2 = (-7)*f1").
///
//===----------------------------------------------------------------------===//

#ifndef SPL_OPT_PEEPHOLE_H
#define SPL_OPT_PEEPHOLE_H

#include "icode/ICode.h"

namespace spl {
namespace opt {

/// Peephole toggles.
struct PeepholeOptions {
  /// Rewrite Neg as subtraction from zero.
  bool NegToSub = true;
  /// Fold Neg-of-constant-multiple into a negative constant multiply.
  bool NegConstMul = true;
};

/// Applies the peepholes.
icode::Program peephole(const icode::Program &P,
                        const PeepholeOptions &Opts = PeepholeOptions());

} // namespace opt
} // namespace spl

#endif // SPL_OPT_PEEPHOLE_H
