//===- codegen/FortranEmitter.cpp - Fortran code generation -------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/FortranEmitter.h"

#include "support/StrUtil.h"

#include <cassert>
#include <set>
#include <sstream>

using namespace spl;
using namespace spl::codegen;
using namespace spl::icode;

namespace {

/// Formats a double as a Fortran double-precision literal (d exponent).
std::string fortranDouble(double V) {
  std::string S = formatDouble(V);
  auto E = S.find('e');
  if (E == std::string::npos)
    E = S.find('E');
  if (E != std::string::npos)
    S[E] = 'd';
  else
    S += "d0";
  return S;
}

class FortranEmitterImpl {
public:
  FortranEmitterImpl(const Program &P, const FortranEmitOptions &Opts)
      : P(P), Opts(Opts), IsComplex(P.Type == DataType::Complex) {}

  std::string run() {
    line("subroutine " + P.SubName + " (y,x)");
    emitDecls();
    emitTables();
    emitBody();
    line("end");
    return Out.str();
  }

private:
  const Program &P;
  const FortranEmitOptions &Opts;
  bool IsComplex;
  std::ostringstream Out;
  int Depth = 0;

  /// Emits one fixed-form line: 6 leading spaces, wrapped with continuation
  /// markers in column 6 when longer than 72 columns.
  void line(const std::string &Text) {
    std::string Body = Text;
    bool First = true;
    while (!Body.empty()) {
      size_t Max = 72 - 6;
      std::string Chunk;
      if (Body.size() <= Max) {
        Chunk = Body;
        Body.clear();
      } else {
        // Break at the last comma or space before the limit.
        size_t Cut = Body.find_last_of(", ", Max);
        if (Cut == std::string::npos || Cut < Max / 2)
          Cut = Max;
        Chunk = Body.substr(0, Cut + 1);
        Body = Body.substr(Cut + 1);
      }
      Out << (First ? "      " : "     &") << Chunk << "\n";
      First = false;
    }
  }

  std::string scalarType() const {
    return IsComplex ? "complex*16" : "real*8";
  }

  std::string litOf(Cplx V) const {
    if (IsComplex)
      return "(" + fortranDouble(V.real()) + "," + fortranDouble(V.imag()) +
             ")";
    assert(V.imag() == 0 && "complex constant in a real Fortran program");
    std::string S = fortranDouble(V.real());
    return V.real() < 0 ? "(" + S + ")" : S;
  }

  std::int64_t bufLen(std::int64_t Logical) const {
    return P.LoweredToReal ? Logical * 2 : Logical;
  }

  void emitDecls() {
    line("implicit " + scalarType() + " (f)");
    line(scalarType() + " y(" + std::to_string(bufLen(P.OutSize)) + "),x(" +
         std::to_string(bufLen(P.InSize)) + ")");

    std::set<int> UsedI;
    for (const Instr &I : P.Body)
      if (I.Opcode == Op::Loop)
        UsedI.insert(I.LoopVar);
    auto NoteVars = [&UsedI](const Operand &O) {
      if (O.Kind == OpndKind::VecElem || O.Kind == OpndKind::TableElem)
        for (const auto &[V, C] : O.Subs.Terms) {
          (void)C;
          UsedI.insert(V);
        }
    };
    for (const Instr &I : P.Body) {
      NoteVars(I.Dst);
      NoteVars(I.A);
      NoteVars(I.B);
    }
    if (!UsedI.empty()) {
      std::string Decl = "integer ";
      bool First = true;
      for (int V : UsedI) {
        if (!First)
          Decl += ",";
        Decl += "i" + std::to_string(V);
        First = false;
      }
      line(Decl);
    }

    bool HasTemps = false;
    for (size_t T = 0; T != P.TempVecSizes.size(); ++T)
      if (P.TempVecSizes[T] > 0) {
        line(scalarType() + " t" + std::to_string(T) + "(" +
             std::to_string(P.TempVecSizes[T]) + ")");
        HasTemps = true;
      }
    if (Opts.AutomaticTemps && HasTemps) {
      std::string Decl = "automatic ";
      bool First = true;
      for (size_t T = 0; T != P.TempVecSizes.size(); ++T)
        if (P.TempVecSizes[T] > 0) {
          if (!First)
            Decl += ",";
          Decl += "t" + std::to_string(T);
          First = false;
        }
      line(Decl);
    }
  }

  void emitTables() {
    for (size_t T = 0; T != P.Tables.size(); ++T) {
      const auto &Tab = P.Tables[T];
      line(scalarType() + " w" + std::to_string(T) + "(" +
           std::to_string(Tab.size()) + ")");
      std::string Data = "data w" + std::to_string(T) + " /";
      for (size_t I = 0; I != Tab.size(); ++I) {
        if (I)
          Data += ",";
        Data += IsComplex ? litOf(Tab[I]) : fortranDouble(Tab[I].real());
      }
      Data += "/";
      line(Data);
    }
  }

  static std::string affineStr(const Affine &A, std::int64_t Plus) {
    Affine Shifted = A.plusConst(Plus);
    std::string S;
    for (const auto &[V, C] : Shifted.Terms) {
      if (!S.empty())
        S += C < 0 ? "-" : "+";
      else if (C < 0)
        S += "-";
      std::int64_t Abs = C < 0 ? -C : C;
      if (Abs != 1)
        S += std::to_string(Abs) + "*";
      S += "i" + std::to_string(V);
    }
    if (S.empty())
      return std::to_string(Shifted.Base);
    if (Shifted.Base > 0)
      S += "+" + std::to_string(Shifted.Base);
    else if (Shifted.Base < 0)
      S += std::to_string(Shifted.Base);
    return S;
  }

  std::string operandStr(const Operand &O) {
    switch (O.Kind) {
    case OpndKind::FltConst:
      return litOf(O.FConst);
    case OpndKind::FltTemp:
      return "f" + std::to_string(O.Id);
    case OpndKind::VecElem: {
      std::string Name = O.Id == VecIn    ? "x"
                         : O.Id == VecOut ? "y"
                                          : "t" + std::to_string(
                                                      O.Id - FirstTempVec);
      return Name + "(" + affineStr(O.Subs, 1) + ")";
    }
    case OpndKind::TableElem:
      return "w" + std::to_string(O.Id) + "(" + affineStr(O.Subs, 1) + ")";
    default:
      assert(false && "intrinsics must be evaluated before emission");
      return "?";
    }
  }

  void emitBody() {
    for (const Instr &I : P.Body) {
      switch (I.Opcode) {
      case Op::Loop:
        line("do i" + std::to_string(I.LoopVar) + " = " +
             std::to_string(I.Lo) + ", " + std::to_string(I.Hi));
        ++Depth;
        break;
      case Op::End:
        --Depth;
        line("end do");
        break;
      case Op::Copy:
        line(operandStr(I.Dst) + " = " + operandStr(I.A));
        break;
      case Op::Neg:
        line(operandStr(I.Dst) + " = -" + operandStr(I.A));
        break;
      default: {
        const char *Sym = I.Opcode == Op::Add   ? " + "
                          : I.Opcode == Op::Sub ? " - "
                          : I.Opcode == Op::Mul ? " * "
                                                : " / ";
        line(operandStr(I.Dst) + " = " + operandStr(I.A) + Sym +
             operandStr(I.B));
        break;
      }
      }
    }
  }
};

} // namespace

std::string codegen::emitFortran(const Program &P,
                                 const FortranEmitOptions &Opts) {
  return FortranEmitterImpl(P, Opts).run();
}
