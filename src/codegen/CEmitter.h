//===- codegen/CEmitter.h - C code generation -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a C subroutine from an i-code program (paper Section 3.5). C output
/// requires real-typed programs (run the complex-to-real lowering first; C89
/// has no complex type). Options add the stride/offset parameters used by
/// FFTW-style codelets and the vectorization wrapper (A -> A (x) I_m).
///
//===----------------------------------------------------------------------===//

#ifndef SPL_CODEGEN_CEMITTER_H
#define SPL_CODEGEN_CEMITTER_H

#include "icode/ICode.h"

#include <string>

namespace spl {
namespace codegen {

/// C emission options.
struct CEmitOptions {
  /// Add (int ioff, int ooff, int istride, int ostride) parameters, in
  /// logical (complex) elements; the generated code then computes on
  /// non-contiguous data like an FFTW codelet.
  bool StrideParams = false;

  /// When > 0, wrap the routine as A (x) I_m with m = VectorizeCount: an
  /// outer loop applies the transform to m interleaved vectors.
  int VectorizeCount = 0;

  /// Mark pointer arguments restrict (helps back-end compilers).
  bool UseRestrict = true;

  /// Emit constant tables as pointers bound at run time through an extra
  /// function <name>_set_tables(const double *const *), instead of inline
  /// static initializers. Keeps generated files small for large transforms
  /// (a 2^20-point FFT carries megabytes of twiddles) — the runner computes
  /// the tables and passes them in, like FFTW's plan-time twiddle setup.
  bool ExternalTables = false;

  /// Make the generated routine reentrant: temporary vectors too large for
  /// the stack are malloc'd/free'd per call instead of declared static.
  /// Required when many threads run the same kernel concurrently (the
  /// runtime layer's batched dispatch); off by default to keep the paper's
  /// static-storage behavior for single-threaded benchmarks.
  bool ThreadSafe = false;

  /// Extra text for the header comment (e.g. the source formula).
  std::string HeaderComment;
};

/// Renders \p P as a complete C translation unit containing one function
///   void <SubName>(double *y, const double *x, ...);
/// For programs lowered from complex data, buffers are interleaved (re,im)
/// pairs and 2*size doubles long.
std::string emitC(const icode::Program &P,
                  const CEmitOptions &Opts = CEmitOptions());

} // namespace codegen
} // namespace spl

#endif // SPL_CODEGEN_CEMITTER_H
