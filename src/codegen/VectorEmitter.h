//===- codegen/VectorEmitter.h - SIMD C code generation ---------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits explicitly vectorized C from a real-typed i-code program: the
/// paper's Section-5 wrapper A -> A (x) I_m realized at the instruction
/// level instead of as an outer loop. m = laneCount(ISA) independent
/// transform columns are stored slot-major — vector buffer index
/// m*S + j, where S is the scalar kernel's physical double index (already
/// including the complex re/im split) and j the column — so the m copies
/// of every scalar double occupy one contiguous, SIMD-loadable group and
/// every scalar instruction becomes exactly one intrinsic.
///
/// Because every emitted operation is lane-wise (no shuffles, no
/// horizontal ops, no FMA contraction), column j's results depend only on
/// column j's inputs. That makes zero-padding partial lane groups safe and
/// keeps Plan's thread-count bit-identity guarantee regardless of how a
/// batch is cut into groups. See docs/VECTORIZATION.md.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_CODEGEN_VECTOREMITTER_H
#define SPL_CODEGEN_VECTOREMITTER_H

#include "codegen/VectorISA.h"
#include "icode/ICode.h"

#include <string>

namespace spl {
namespace codegen {

/// Vector C emission options (the SIMD analogue of CEmitOptions; stride
/// parameters and the scalar outer-loop VectorizeCount do not apply —
/// the lane group *is* the vectorization wrapper).
struct VectorEmitOptions {
  /// Instruction set to target; decides the lane count m and which
  /// intrinsics are rendered. VectorISA::Scalar degenerates to m = 1
  /// plain C (useful only for testing the layout logic).
  VectorISA ISA = VectorISA::Scalar;

  /// Mark pointer arguments restrict (helps back-end compilers).
  bool UseRestrict = true;

  /// Emit constant tables as pointers bound at run time through an extra
  /// function <name>_set_tables(const double *const *), like CEmitOptions.
  /// Tables stay scalar (one value per logical entry) and are broadcast
  /// into lanes at use sites.
  bool ExternalTables = false;

  /// Make the generated routine reentrant: large temporaries are
  /// malloc'd/free'd per call instead of declared static.
  bool ThreadSafe = false;

  /// Extra text for the header comment (e.g. the source formula).
  std::string HeaderComment;
};

/// Renders \p P as a complete C translation unit containing one function
///   void <SubName>(double *y, const double *x);
/// where x and y hold laneCount(ISA) interleaved transform columns in the
/// slot-major layout: laneCount(ISA) * 2 * size doubles for programs
/// lowered from complex data. Requires a real-typed program.
std::string emitVectorC(const icode::Program &P,
                        const VectorEmitOptions &Opts = VectorEmitOptions());

} // namespace codegen
} // namespace spl

#endif // SPL_CODEGEN_VECTOREMITTER_H
