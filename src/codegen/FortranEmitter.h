//===- codegen/FortranEmitter.h - Fortran code generation -------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a Fortran 77 subroutine from an i-code program, in the style of the
/// paper's example output (implicit real*8 (f), do/end do, 1-based
/// subscripts). Complex programs use the complex*16 intrinsic type
/// (#codetype complex); real and lowered programs use real*8.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_CODEGEN_FORTRANEMITTER_H
#define SPL_CODEGEN_FORTRANEMITTER_H

#include "icode/ICode.h"

#include <string>

namespace spl {
namespace codegen {

/// Fortran emission options.
struct FortranEmitOptions {
  /// Declare temporaries AUTOMATIC so they live on the stack (the paper's
  /// SPARC transformation; many Fortran compilers make variables static by
  /// default).
  bool AutomaticTemps = false;
};

/// Renders \p P as a Fortran subroutine "subroutine <name>(y, x)".
std::string emitFortran(const icode::Program &P,
                        const FortranEmitOptions &Opts = FortranEmitOptions());

} // namespace codegen
} // namespace spl

#endif // SPL_CODEGEN_FORTRANEMITTER_H
