//===- codegen/VectorISA.cpp - Vector ISA detection -----------------------===//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/VectorISA.h"

#include <cstdlib>

namespace spl {
namespace codegen {

const char *isaName(VectorISA ISA) {
  switch (ISA) {
  case VectorISA::Scalar:
    return "scalar";
  case VectorISA::AVX2:
    return "avx2";
  case VectorISA::NEON:
    return "neon";
  }
  return "scalar";
}

bool parseISA(const std::string &Name, VectorISA &Out) {
  if (Name == "scalar") {
    Out = VectorISA::Scalar;
    return true;
  }
  if (Name == "avx2") {
    Out = VectorISA::AVX2;
    return true;
  }
  if (Name == "neon") {
    Out = VectorISA::NEON;
    return true;
  }
  if (Name == "auto") {
    Out = hardwareISA();
    return true;
  }
  return false;
}

const char *variantName(CodegenVariant V) {
  return V == CodegenVariant::Vector ? "vector" : "scalar";
}

bool parseVariant(const std::string &Name, CodegenVariant &Out) {
  if (Name == "scalar") {
    Out = CodegenVariant::Scalar;
    return true;
  }
  if (Name == "vector") {
    Out = CodegenVariant::Vector;
    return true;
  }
  return false;
}

VectorISA hardwareISA() {
#if defined(__aarch64__)
  // Advanced SIMD (including float64x2_t) is AArch64 baseline.
  static const VectorISA Probed = VectorISA::NEON;
#elif defined(__x86_64__) && defined(__GNUC__)
  static const VectorISA Probed = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2"))
      return VectorISA::AVX2;
    return VectorISA::Scalar;
  }();
#else
  static const VectorISA Probed = VectorISA::Scalar;
#endif
  return Probed;
}

VectorISA detectISA() {
  static const VectorISA Detected = [] {
    if (const char *Env = std::getenv("SPL_VECTOR_ISA")) {
      VectorISA Forced;
      if (parseISA(Env, Forced))
        return Forced;
      // Unknown override names fall through to the probe rather than
      // silently disabling SIMD.
    }
    return hardwareISA();
  }();
  return Detected;
}

int laneCount(VectorISA ISA) {
  switch (ISA) {
  case VectorISA::AVX2:
    return 4;
  case VectorISA::NEON:
    return 2;
  case VectorISA::Scalar:
    return 1;
  }
  return 1;
}

std::string isaCompilerFlags(VectorISA ISA) {
  switch (ISA) {
  case VectorISA::AVX2:
    return "-mavx2 -mfma";
  case VectorISA::NEON:
  case VectorISA::Scalar:
    return "";
  }
  return "";
}

bool vectorBackendAvailable() { return detectISA() != VectorISA::Scalar; }

} // namespace codegen
} // namespace spl
