//===- codegen/VectorISA.h - Vector ISA detection and naming ----*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime detection of the host's SIMD instruction set, mirroring
/// support::HostInfo's probe-once style, plus the CodegenVariant dimension
/// the search engine and runtime thread through kernel builds. The paper's
/// Section-5 vectorization wrapper (A -> A (x) I_m) turns m independent
/// transform columns into one SIMD lane group; the detected ISA decides m
/// (the lane count) and which intrinsics codegen::emitVectorC renders.
///
/// The probe is overridable with SPL_VECTOR_ISA=scalar|avx2|neon|auto —
/// CI forces `scalar` to prove that wisdom and plans written by a
/// vector-capable host degrade cleanly, and tests force a concrete ISA to
/// pin emission output. Forcing an ISA the hardware lacks is caught by the
/// planner's guarded trial execution (the kernel dies on SIGILL in a forked
/// child and the plan demotes to scalar). See docs/VECTORIZATION.md.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_CODEGEN_VECTORISA_H
#define SPL_CODEGEN_VECTORISA_H

#include <string>

namespace spl {
namespace codegen {

/// The SIMD instruction sets the vector emitter can target.
enum class VectorISA {
  Scalar, ///< No usable SIMD: the vector backend is unavailable.
  AVX2,   ///< x86-64 AVX2, 4 doubles per lane group (__m256d).
  NEON,   ///< AArch64 Advanced SIMD, 2 doubles per lane group (float64x2_t).
};

/// Which emitter produced (or should produce) a kernel. This is the
/// searchable codegen dimension: the DP evaluator times both variants per
/// node size and records the winner in wisdom.
enum class CodegenVariant {
  Scalar, ///< codegen::emitC — one transform per call.
  Vector, ///< codegen::emitVectorC — laneCount() transforms per call.
};

/// Stable lowercase token ("scalar" | "avx2" | "neon").
const char *isaName(VectorISA ISA);

/// Parses an ISA token (isaName() values plus "auto"); returns false on an
/// unknown name. "auto" yields the hardware probe's answer.
bool parseISA(const std::string &Name, VectorISA &Out);

/// Stable lowercase token ("scalar" | "vector").
const char *variantName(CodegenVariant V);

/// Parses a variant token; returns false on an unknown name.
bool parseVariant(const std::string &Name, CodegenVariant &Out);

/// The ISA codegen targets on this host: the hardware probe, unless
/// SPL_VECTOR_ISA overrides it. Probed once and cached (first call wins;
/// tests that change the environment spawn fresh processes).
VectorISA detectISA();

/// The hardware's answer alone, ignoring SPL_VECTOR_ISA (bench logging).
VectorISA hardwareISA();

/// Doubles per SIMD lane group: 4 (AVX2), 2 (NEON), 1 (Scalar). This is
/// the m of the A (x) I_m vectorization wrapper.
int laneCount(VectorISA ISA);

/// Extra compiler flags a kernel emitted for \p ISA needs ("-mavx2 -mfma"
/// for AVX2; "" for NEON, which is AArch64 baseline, and Scalar).
std::string isaCompilerFlags(VectorISA ISA);

/// True when the vector backend can run here (detectISA() != Scalar).
bool vectorBackendAvailable();

} // namespace codegen
} // namespace spl

#endif // SPL_CODEGEN_VECTORISA_H
