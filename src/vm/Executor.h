//===- vm/Executor.h - I-code interpreter -----------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes i-code programs directly. This is the portable evaluation
/// substrate: tests use it to check compiled programs against the dense
/// matrix semantics, and the search engine can use it to time candidate
/// formulas when no native C compiler is available. Intrinsic operands are
/// supported (evaluated on the fly), so programs are runnable at any stage
/// of the pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_VM_EXECUTOR_H
#define SPL_VM_EXECUTOR_H

#include "icode/ICode.h"
#include "icode/Intrinsics.h"

#include <vector>

namespace spl {
namespace vm {

/// An executable instance of one i-code program. Construction validates the
/// program and allocates all storage; run() is reusable and allocation-free.
class Executor {
public:
  explicit Executor(const icode::Program &Prog,
                    const icode::IntrinsicRegistry &Intrinsics =
                        icode::IntrinsicRegistry::builtins());

  const icode::Program &program() const { return Prog; }

  /// Number of scalar elements the input/output buffers must hold. In
  /// complex mode these count Cplx elements; in real mode doubles (twice
  /// the logical size when the program was lowered from complex).
  std::int64_t inputLen() const;
  std::int64_t outputLen() const;

  /// True when buffers are doubles (Type == Real).
  bool isReal() const {
    return Prog.Type == icode::DataType::Real;
  }

  /// Runs on complex buffers; program must not be real-typed.
  void run(const Cplx *In, Cplx *Out);
  void run(const std::vector<Cplx> &In, std::vector<Cplx> &Out);

  /// Runs on double buffers; program must be real-typed.
  void runReal(const double *In, double *Out);
  void runReal(const std::vector<double> &In, std::vector<double> &Out);

  /// Bytes of working storage (temporaries, scalars, tables) this instance
  /// holds. Used by the memory-consumption experiment (Figure 5).
  std::size_t workingSetBytes() const;

private:
  icode::Program Prog;
  const icode::IntrinsicRegistry &Intrinsics;

  std::vector<std::int64_t> VecBase; ///< Vector id -> slab offset (in/out at
                                     ///< -1: external buffers).
  std::int64_t SlabLen = 0;          ///< Temp vectors + scalar temps.
  std::int64_t FltBase = 0;          ///< Slab offset of scalar temps.
  std::vector<Cplx> SlabC;
  std::vector<double> SlabR;
  std::vector<std::int64_t> LoopVals;
  std::vector<int> MatchEnd; ///< Loop instr index -> matching End index.

  template <typename T>
  void runImpl(const T *In, T *Out, std::vector<T> &Slab);
  template <typename T>
  T load(const icode::Operand &O, const T *In, T *Out,
         std::vector<T> &Slab);
  template <typename T>
  T *slot(const icode::Operand &O, const T *In, T *Out, std::vector<T> &Slab);
};

} // namespace vm
} // namespace spl

#endif // SPL_VM_EXECUTOR_H
