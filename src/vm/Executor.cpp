//===- vm/Executor.cpp - I-code interpreter ---------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Executor.h"

#include <cassert>

using namespace spl;
using namespace spl::vm;
using namespace spl::icode;

Executor::Executor(const Program &ProgIn, const IntrinsicRegistry &Intrinsics)
    : Prog(ProgIn), Intrinsics(Intrinsics) {
  std::string Err = Prog.verify();
  assert(Err.empty() && "invalid program handed to the VM");
  (void)Err;

  // Lay out temporary vectors then scalar temps in one slab.
  VecBase.assign(FirstTempVec + Prog.TempVecSizes.size(), -1);
  std::int64_t Off = 0;
  for (size_t T = 0; T != Prog.TempVecSizes.size(); ++T) {
    VecBase[FirstTempVec + T] = Off;
    Off += Prog.TempVecSizes[T];
  }
  FltBase = Off;
  SlabLen = Off + Prog.NumFltTemps;
  if (Prog.Type == DataType::Real)
    SlabR.assign(SlabLen, 0.0);
  else
    SlabC.assign(SlabLen, Cplx(0, 0));
  LoopVals.assign(std::max(Prog.NumLoopVars, 1), 0);

  // Pre-compute loop matching for fast skip/jump.
  MatchEnd.assign(Prog.Body.size(), -1);
  std::vector<int> Stack;
  for (size_t I = 0; I != Prog.Body.size(); ++I) {
    if (Prog.Body[I].Opcode == Op::Loop)
      Stack.push_back(static_cast<int>(I));
    else if (Prog.Body[I].Opcode == Op::End) {
      assert(!Stack.empty() && "unbalanced loops");
      MatchEnd[Stack.back()] = static_cast<int>(I);
      Stack.pop_back();
    }
  }
  assert(Stack.empty() && "unbalanced loops");
}

std::int64_t Executor::inputLen() const {
  return Prog.LoweredToReal ? Prog.InSize * 2 : Prog.InSize;
}

std::int64_t Executor::outputLen() const {
  return Prog.LoweredToReal ? Prog.OutSize * 2 : Prog.OutSize;
}

std::size_t Executor::workingSetBytes() const {
  std::size_t Elem = isReal() ? sizeof(double) : sizeof(Cplx);
  std::size_t Bytes = static_cast<std::size_t>(SlabLen) * Elem;
  for (const auto &T : Prog.Tables)
    Bytes += T.size() * (isReal() ? sizeof(double) : sizeof(Cplx));
  return Bytes;
}

namespace {

/// Narrows a complex scalar to the execution element type.
template <typename T> T narrowScalar(Cplx V);
template <> Cplx narrowScalar<Cplx>(Cplx V) { return V; }
template <> double narrowScalar<double>(Cplx V) {
  assert(V.imag() == 0 && "complex value in a real program");
  return V.real();
}

} // namespace

template <typename T>
T *Executor::slot(const Operand &O, const T *In, T *Out,
                  std::vector<T> &Slab) {
  switch (O.Kind) {
  case OpndKind::FltTemp:
    return &Slab[FltBase + O.Id];
  case OpndKind::VecElem: {
    std::int64_t Idx = O.Subs.eval(LoopVals);
    if (O.Id == VecOut) {
      assert(Idx >= 0 && Idx < outputLen() && "output index out of range");
      return &Out[Idx];
    }
    if (O.Id == VecIn) {
      assert(false && "input vector is read-only");
      return nullptr;
    }
    assert(Idx >= 0 && Idx < Prog.tempVecSize(O.Id) &&
           "temporary index out of range");
    return &Slab[VecBase[O.Id] + Idx];
  }
  default:
    assert(false && "operand cannot be a destination");
    return nullptr;
  }
  (void)In;
}

template <typename T>
T Executor::load(const Operand &O, const T *In, T *Out, std::vector<T> &Slab) {
  switch (O.Kind) {
  case OpndKind::FltConst:
    return narrowScalar<T>(O.FConst);
  case OpndKind::FltTemp:
    return Slab[FltBase + O.Id];
  case OpndKind::VecElem: {
    std::int64_t Idx = O.Subs.eval(LoopVals);
    if (O.Id == VecIn) {
      assert(Idx >= 0 && Idx < inputLen() && "input index out of range");
      return In[Idx];
    }
    if (O.Id == VecOut) {
      assert(Idx >= 0 && Idx < outputLen() && "output index out of range");
      return Out[Idx];
    }
    assert(Idx >= 0 && Idx < Prog.tempVecSize(O.Id) &&
           "temporary index out of range");
    return Slab[VecBase[O.Id] + Idx];
  }
  case OpndKind::TableElem: {
    std::int64_t Idx = O.Subs.eval(LoopVals);
    const auto &Table = Prog.Tables[O.Id];
    assert(Idx >= 0 && static_cast<size_t>(Idx) < Table.size() &&
           "table index out of range");
    return narrowScalar<T>(Table[Idx]);
  }
  case OpndKind::Intrinsic: {
    std::vector<std::int64_t> Args;
    Args.reserve(O.Args.size());
    for (const IntExprRef &A : O.Args)
      Args.push_back(A->eval(LoopVals));
    return narrowScalar<T>(Intrinsics.eval(O.Name, Args));
  }
  default:
    assert(false && "invalid source operand");
    return T();
  }
}

template <typename T>
void Executor::runImpl(const T *In, T *Out, std::vector<T> &Slab) {
  const std::vector<Instr> &Body = Prog.Body;
  size_t PC = 0;
  // Stack of active loops: index of the Loop instruction.
  std::vector<size_t> LoopStack;

  while (PC < Body.size()) {
    const Instr &I = Body[PC];
    switch (I.Opcode) {
    case Op::Loop:
      if (I.Lo > I.Hi) {
        PC = static_cast<size_t>(MatchEnd[PC]) + 1;
        continue;
      }
      LoopVals[I.LoopVar] = I.Lo;
      LoopStack.push_back(PC);
      break;
    case Op::End: {
      size_t LoopPC = LoopStack.back();
      const Instr &L = Body[LoopPC];
      if (++LoopVals[L.LoopVar] <= L.Hi) {
        PC = LoopPC + 1;
        continue;
      }
      LoopStack.pop_back();
      break;
    }
    case Op::Copy:
      *slot(I.Dst, In, Out, Slab) = load(I.A, In, Out, Slab);
      break;
    case Op::Neg:
      *slot(I.Dst, In, Out, Slab) = -load(I.A, In, Out, Slab);
      break;
    case Op::Add:
      *slot(I.Dst, In, Out, Slab) =
          load(I.A, In, Out, Slab) + load(I.B, In, Out, Slab);
      break;
    case Op::Sub:
      *slot(I.Dst, In, Out, Slab) =
          load(I.A, In, Out, Slab) - load(I.B, In, Out, Slab);
      break;
    case Op::Mul:
      *slot(I.Dst, In, Out, Slab) =
          load(I.A, In, Out, Slab) * load(I.B, In, Out, Slab);
      break;
    case Op::Div:
      *slot(I.Dst, In, Out, Slab) =
          load(I.A, In, Out, Slab) / load(I.B, In, Out, Slab);
      break;
    }
    ++PC;
  }
}

void Executor::run(const Cplx *In, Cplx *Out) {
  assert(!isReal() && "run() requires a complex program; use runReal()");
  runImpl(In, Out, SlabC);
}

void Executor::run(const std::vector<Cplx> &In, std::vector<Cplx> &Out) {
  assert(static_cast<std::int64_t>(In.size()) == inputLen() &&
         "input buffer length mismatch");
  Out.resize(outputLen());
  run(In.data(), Out.data());
}

void Executor::runReal(const double *In, double *Out) {
  assert(isReal() && "runReal() requires a real program; use run()");
  runImpl(In, Out, SlabR);
}

void Executor::runReal(const std::vector<double> &In,
                       std::vector<double> &Out) {
  assert(static_cast<std::int64_t>(In.size()) == inputLen() &&
         "input buffer length mismatch");
  Out.resize(outputLen());
  runReal(In.data(), Out.data());
}
