//===- lower/Expander.h - Formula-to-icode expansion ------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate-code generator (paper Section 3.2): translates an SPL
/// formula into i-code by recursive template instantiation. Matching walks
/// the template registry in reverse definition order; each instantiation
/// receives the six implicit parameters (input/output vector, offsets,
/// strides), which are composed through nested formula calls so the final
/// program addresses only the real input/output and temporary vectors.
///
/// Explicit matrices (matrix/diagonal/permutation) and the general tensor
/// split A (x) B = (A (x) I)(I (x) B) are native rules, applied only when no
/// template matches, so user templates can override them too.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_LOWER_EXPANDER_H
#define SPL_LOWER_EXPANDER_H

#include "icode/ICode.h"
#include "icode/Intrinsics.h"
#include "ir/Formula.h"
#include "support/Diagnostics.h"
#include "templates/Matcher.h"
#include "templates/Registry.h"

#include <map>
#include <optional>

namespace spl {
namespace lower {

/// Options governing one expansion.
struct ExpandOptions {
  /// Subroutine name to record in the program.
  std::string SubName = "sub";

  /// Element type: #datatype complex|real.
  icode::DataType Datatype = icode::DataType::Complex;

  /// The -B command-line option: loops in sub-formulas whose input vector is
  /// at most this long are marked for full unrolling (0 disables). The
  /// per-formula #unroll hint overrides this.
  std::int64_t UnrollThreshold = 0;
};

/// Expands formulas to i-code programs against a template registry.
class Expander {
public:
  Expander(const tpl::TemplateRegistry &Registry, Diagnostics &Diags,
           const icode::IntrinsicRegistry &Intrinsics =
               icode::IntrinsicRegistry::builtins())
      : Registry(Registry), Diags(Diags), Intrinsics(Intrinsics) {}

  /// Expands \p F into a complete i-code program. Returns nullopt after
  /// reporting diagnostics on failure.
  std::optional<icode::Program> expand(const FormulaRef &F,
                                       const ExpandOptions &Opts);

  /// Infers (in_size, out_size) of \p F, instantiating templates of
  /// user-defined matrices as needed (the paper's "inferred by the SPL
  /// compiler from the template"). Results are memoized.
  std::optional<std::pair<std::int64_t, std::int64_t>>
  inferSizes(const FormulaRef &F);

private:
  const tpl::TemplateRegistry &Registry;
  Diagnostics &Diags;
  const icode::IntrinsicRegistry &Intrinsics;

  // State of the current expand() call.
  icode::Program *P = nullptr;
  ExpandOptions Opts;
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> SizeCache;

  /// Mapping from a template's logical vector to physical storage: logical
  /// element k lives at VecId[Offset + Stride*k].
  struct VecMap {
    int VecId = icode::VecIn;
    icode::Affine Offset;
    std::int64_t Stride = 1;
  };

  /// Per-instantiation state.
  struct Scope {
    tpl::Bindings Binds;
    const Formula *F = nullptr;
    VecMap In, Out;
    std::map<std::string, icode::IntExprRef> IntEnv; ///< $rK values.
    std::map<std::string, int> LoopVars;             ///< $iK -> global id.
    std::map<std::string, int> FltTemps;             ///< $fK -> global id.
    std::map<std::string, int> TempVecs;             ///< $tK -> vector id.
  };

  bool fail(SourceLoc Loc, std::string Message);

  // Recursive expansion.
  bool expandInto(const FormulaRef &F, const VecMap &In, const VecMap &Out,
                  bool UnrollActive);
  bool instantiate(const tpl::TemplateDef &Def, tpl::Bindings Binds,
                   const FormulaRef &F, const VecMap &In, const VecMap &Out,
                   bool Unroll);

  // Template statement / expression lowering.
  bool emitStmt(Scope &S, const tpl::TStmt &Stmt, bool Unroll);
  bool emitAssign(Scope &S, const icode::Operand &Dst,
                  const tpl::TExprRef &Rhs);
  bool emitCall(Scope &S, const tpl::TStmt &Stmt, bool Unroll);
  std::optional<icode::Operand> floatOperand(Scope &S, const tpl::TExprRef &E);
  std::optional<icode::Operand> flattenOperand(Scope &S,
                                               const tpl::TExprRef &E);
  std::optional<icode::Operand> vecOperand(Scope &S, const std::string &Name,
                                           const tpl::TExprRef &Subscript,
                                           bool IsWrite, SourceLoc Loc);
  icode::IntExprRef toIntExpr(Scope &S, const tpl::TExprRef &E);
  std::optional<icode::Affine> toAffine(const icode::IntExprRef &E,
                                        SourceLoc Loc);
  std::optional<VecMap> resolveVecArg(Scope &S, const tpl::TExprRef &Arg,
                                      const FormulaRef &Callee, bool IsOut);

  // Native expansion rules.
  bool expandGenMatrix(const Formula &F, const VecMap &In, const VecMap &Out);
  bool expandDiagonal(const Formula &F, const VecMap &In, const VecMap &Out);
  bool expandPermutation(const Formula &F, const VecMap &In,
                         const VecMap &Out);
  bool expandTensorSplit(const FormulaRef &F, const VecMap &In,
                         const VecMap &Out, bool UnrollActive);

  // Helpers.
  int freshFltTemp() { return P->NumFltTemps++; }
  int freshLoopVar() { return P->NumLoopVars++; }
  int allocTempVec(std::int64_t Size);
  icode::Operand mapVec(const VecMap &M, const icode::Affine &Sub) const;
  cond::Lookup makeLookup(const tpl::Bindings &Binds);
  bool checkRealConst(Cplx V, SourceLoc Loc);
  std::optional<std::pair<std::int64_t, std::int64_t>>
  inferUserParamSizes(const FormulaRef &F);
};

/// Computes 1 + the maximum subscript with which \p VecId is referenced in
/// \p Prog (0 when never referenced). Loop bounds must be constants.
std::int64_t computeVecExtent(const icode::Program &Prog, int VecId);

} // namespace lower
} // namespace spl

#endif // SPL_LOWER_EXPANDER_H
