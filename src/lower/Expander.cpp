//===- lower/Expander.cpp - Formula-to-icode expansion ----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lower/Expander.h"

#include "ir/Builder.h"
#include "support/StrUtil.h"

#include <cmath>

using namespace spl;
using namespace spl::lower;
using namespace spl::icode;

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

std::int64_t lower::computeVecExtent(const Program &Prog, int VecId) {
  // Ranges of loop variables currently in scope: (var, lo, hi).
  std::vector<std::tuple<int, std::int64_t, std::int64_t>> Ranges;
  std::int64_t MaxIdx = -1;

  auto Consider = [&](const Operand &O) {
    if (O.Kind != OpndKind::VecElem || O.Id != VecId)
      return;
    std::int64_t V = O.Subs.Base;
    for (const auto &[Var, Coef] : O.Subs.Terms) {
      std::int64_t Lo = 0, Hi = 0;
      for (const auto &[RV, RLo, RHi] : Ranges) {
        if (RV == Var) {
          Lo = RLo;
          Hi = RHi;
          break;
        }
      }
      V += Coef * (Coef > 0 ? Hi : Lo);
    }
    MaxIdx = std::max(MaxIdx, V);
  };

  for (const Instr &I : Prog.Body) {
    switch (I.Opcode) {
    case Op::Loop:
      Ranges.push_back({I.LoopVar, I.Lo, I.Hi});
      break;
    case Op::End:
      assert(!Ranges.empty() && "unbalanced loop nest");
      Ranges.pop_back();
      break;
    default:
      Consider(I.Dst);
      Consider(I.A);
      Consider(I.B);
      break;
    }
  }
  return MaxIdx + 1;
}

bool Expander::fail(SourceLoc Loc, std::string Message) {
  Diags.error(Loc, std::move(Message));
  return false;
}

int Expander::allocTempVec(std::int64_t Size) {
  P->TempVecSizes.push_back(Size);
  return FirstTempVec + static_cast<int>(P->TempVecSizes.size()) - 1;
}

Operand Expander::mapVec(const VecMap &M, const Affine &Sub) const {
  return Operand::vecElem(M.VecId, M.Offset.plus(Sub.scaled(M.Stride)));
}

bool Expander::checkRealConst(Cplx V, SourceLoc Loc) {
  if (Opts.Datatype == DataType::Real && V.imag() != 0)
    return fail(Loc, "complex constant in a #datatype real program");
  return true;
}

//===----------------------------------------------------------------------===//
// Size inference
//===----------------------------------------------------------------------===//

cond::Lookup Expander::makeLookup(const tpl::Bindings &Binds) {
  return [this, &Binds](const std::string &Name)
             -> std::optional<std::int64_t> {
    auto Dot = Name.find('.');
    if (Dot == std::string::npos) {
      auto It = Binds.Ints.find(Name);
      if (It == Binds.Ints.end())
        return std::nullopt;
      return It->second;
    }
    std::string Var = Name.substr(0, Dot);
    std::string Prop = Name.substr(Dot + 1);
    auto It = Binds.Formulas.find(Var);
    if (It == Binds.Formulas.end())
      return std::nullopt;
    auto Sizes = inferSizes(It->second);
    if (!Sizes)
      return std::nullopt;
    if (Prop == "in_size")
      return Sizes->first;
    if (Prop == "out_size")
      return Sizes->second;
    return std::nullopt;
  };
}

std::optional<std::pair<std::int64_t, std::int64_t>>
Expander::inferSizes(const FormulaRef &F) {
  assert(F && "null formula");
  if (F->inSize() >= 0)
    return std::make_pair(F->inSize(), F->outSize());

  std::string Key = F->print();
  auto Cached = SizeCache.find(Key);
  if (Cached != SizeCache.end())
    return Cached->second;

  std::optional<std::pair<std::int64_t, std::int64_t>> Result;
  switch (F->kind()) {
  case FKind::Compose: {
    auto A = inferSizes(F->child(0)), B = inferSizes(F->child(1));
    if (A && B)
      Result = std::make_pair(B->first, A->second);
    break;
  }
  case FKind::Tensor: {
    auto A = inferSizes(F->child(0)), B = inferSizes(F->child(1));
    if (A && B)
      Result = std::make_pair(A->first * B->first, A->second * B->second);
    break;
  }
  case FKind::DirectSum: {
    auto A = inferSizes(F->child(0)), B = inferSizes(F->child(1));
    if (A && B)
      Result = std::make_pair(A->first + B->first, A->second + B->second);
    break;
  }
  case FKind::UserParam:
    Result = inferUserParamSizes(F);
    break;
  default:
    break;
  }
  if (Result)
    SizeCache.insert({std::move(Key), *Result});
  return Result;
}

std::optional<std::pair<std::int64_t, std::int64_t>>
Expander::inferUserParamSizes(const FormulaRef &F) {
  // Instantiate the matching template into a scratch program and measure
  // how far into $in/$out it reaches.
  const auto &Defs = Registry.defs();
  for (auto It = Defs.rbegin(); It != Defs.rend(); ++It) {
    tpl::Bindings Binds;
    if (!matchPattern(It->Pattern, F, Binds))
      continue;
    if (!cond::holds(It->Condition, makeLookup(Binds)))
      continue;

    Program Scratch;
    Scratch.Type = Opts.Datatype;
    Program *SavedP = P;
    P = &Scratch;
    VecMap In{VecIn, Affine(0), 1}, Out{VecOut, Affine(0), 1};
    bool Ok = instantiate(*It, std::move(Binds), F, In, Out,
                          /*Unroll=*/false);
    P = SavedP;
    if (!Ok)
      return std::nullopt;
    return std::make_pair(computeVecExtent(Scratch, VecIn),
                          computeVecExtent(Scratch, VecOut));
  }
  Diags.error(F->loc(), "no template matches user-defined matrix " +
                            F->print());
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::optional<Program> Expander::expand(const FormulaRef &F,
                                        const ExpandOptions &ExpandOpts) {
  assert(F && "null formula");
  if (F->isPattern()) {
    Diags.error(F->loc(), "cannot compile a formula containing pattern "
                          "variables");
    return std::nullopt;
  }

  Program Prog;
  Opts = ExpandOpts;
  P = &Prog;
  Prog.SubName = Opts.SubName;
  Prog.Type = Opts.Datatype;

  auto Sizes = inferSizes(F);
  if (!Sizes) {
    P = nullptr;
    if (!Diags.hasErrors())
      Diags.error(F->loc(), "cannot determine the size of " + F->print());
    return std::nullopt;
  }
  Prog.InSize = Sizes->first;
  Prog.OutSize = Sizes->second;

  VecMap In{VecIn, Affine(0), 1}, Out{VecOut, Affine(0), 1};
  bool Ok = expandInto(F, In, Out, /*UnrollActive=*/false);
  P = nullptr;
  if (!Ok)
    return std::nullopt;

  // Finalize temporary vectors that were written directly (size -1) by
  // measuring their actual extent.
  for (size_t T = 0; T != Prog.TempVecSizes.size(); ++T)
    if (Prog.TempVecSizes[T] < 0)
      Prog.TempVecSizes[T] =
          computeVecExtent(Prog, FirstTempVec + static_cast<int>(T));

  std::string Err = Prog.verify();
  assert(Err.empty() && "expander produced invalid i-code");
  (void)Err;
  return Prog;
}

bool Expander::expandInto(const FormulaRef &F, const VecMap &In,
                          const VecMap &Out, bool UnrollActive) {
  // Per-formula unroll decision: an explicit #unroll hint wins; otherwise a
  // formula small enough for the -B threshold turns unrolling on, and an
  // enclosing unrolled formula keeps it on.
  bool Unroll = UnrollActive;
  if (!Unroll && Opts.UnrollThreshold > 0) {
    auto Sizes = inferSizes(F);
    if (Sizes && Sizes->first <= Opts.UnrollThreshold)
      Unroll = true;
  }
  if (F->unrollHint())
    Unroll = *F->unrollHint();

  // Templates, most recent definition first.
  const auto &Defs = Registry.defs();
  for (auto It = Defs.rbegin(); It != Defs.rend(); ++It) {
    tpl::Bindings Binds;
    if (!matchPattern(It->Pattern, F, Binds))
      continue;
    if (!cond::holds(It->Condition, makeLookup(Binds)))
      continue;
    return instantiate(*It, std::move(Binds), F, In, Out, Unroll);
  }

  // Native rules.
  switch (F->kind()) {
  case FKind::GenMatrix:
    return expandGenMatrix(*F, In, Out);
  case FKind::Diagonal:
    return expandDiagonal(*F, In, Out);
  case FKind::Permutation:
    return expandPermutation(*F, In, Out);
  case FKind::Tensor:
    return expandTensorSplit(F, In, Out, Unroll);
  default:
    return fail(F->loc(), "no template matches formula " + F->print());
  }
}

//===----------------------------------------------------------------------===//
// Template instantiation
//===----------------------------------------------------------------------===//

bool Expander::instantiate(const tpl::TemplateDef &Def, tpl::Bindings Binds,
                           const FormulaRef &F, const VecMap &In,
                           const VecMap &Out, bool Unroll) {
  Scope S;
  S.Binds = std::move(Binds);
  S.F = F.get();
  S.In = In;
  S.Out = Out;

  for (const tpl::TStmt &Stmt : Def.Body)
    if (!emitStmt(S, Stmt, Unroll))
      return false;
  return true;
}

bool Expander::emitStmt(Scope &S, const tpl::TStmt &Stmt, bool Unroll) {
  switch (Stmt.K) {
  case tpl::TStmt::Do: {
    IntExprRef Lo = toIntExpr(S, Stmt.Lo), Hi = toIntExpr(S, Stmt.Hi);
    if (!Lo || !Hi)
      return false;
    if (Lo->K != IntExpr::Const || Hi->K != IntExpr::Const)
      return fail(Stmt.Loc, "loop bounds must be compile-time constants");
    int Var = freshLoopVar();
    S.LoopVars[Stmt.LoopVar] = Var;
    P->Body.push_back(Instr::loop(Var, Lo->C, Hi->C, Unroll));
    return true;
  }
  case tpl::TStmt::EndDo:
    P->Body.push_back(Instr::end());
    return true;
  case tpl::TStmt::Assign: {
    const tpl::TExprRef &Lhs = Stmt.Lhs;
    if (Lhs->K == tpl::TExpr::VecRef) {
      auto Dst = vecOperand(S, Lhs->Name, Lhs->Args[0], /*IsWrite=*/true,
                            Lhs->Loc);
      if (!Dst)
        return false;
      return emitAssign(S, *Dst, Stmt.Rhs);
    }
    assert(Lhs->K == tpl::TExpr::Sym && "parser guarantees sym or vecref");
    if (startsWith(Lhs->Name, "$f")) {
      auto [It, Inserted] = S.FltTemps.insert({Lhs->Name, 0});
      if (Inserted)
        It->second = freshFltTemp();
      return emitAssign(S, Operand::fltTemp(It->second), Stmt.Rhs);
    }
    if (startsWith(Lhs->Name, "$r")) {
      IntExprRef V = toIntExpr(S, Stmt.Rhs);
      if (!V)
        return false;
      S.IntEnv[Lhs->Name] = V;
      return true;
    }
    return fail(Stmt.Loc, "assignment target must be $out(...), $tK(...), "
                          "$fK or $rK");
  }
  case tpl::TStmt::CallFormula:
    return emitCall(S, Stmt, Unroll);
  }
  return false;
}

bool Expander::emitAssign(Scope &S, const Operand &Dst,
                          const tpl::TExprRef &Rhs) {
  switch (Rhs->K) {
  case tpl::TExpr::Add:
  case tpl::TExpr::Sub:
  case tpl::TExpr::Mul:
  case tpl::TExpr::Div: {
    auto A = flattenOperand(S, Rhs->Args[0]);
    if (!A)
      return false;
    auto B = flattenOperand(S, Rhs->Args[1]);
    if (!B)
      return false;
    Op Opcode = Rhs->K == tpl::TExpr::Add   ? Op::Add
                : Rhs->K == tpl::TExpr::Sub ? Op::Sub
                : Rhs->K == tpl::TExpr::Mul ? Op::Mul
                                            : Op::Div;
    P->Body.push_back(Instr::bin(Opcode, Dst, *A, *B));
    return true;
  }
  case tpl::TExpr::Mod:
    return fail(Rhs->Loc, "'%' is not a floating-point operation");
  case tpl::TExpr::Neg: {
    auto A = flattenOperand(S, Rhs->Args[0]);
    if (!A)
      return false;
    P->Body.push_back(Instr::neg(Dst, *A));
    return true;
  }
  default: {
    auto A = floatOperand(S, Rhs);
    if (!A)
      return false;
    P->Body.push_back(Instr::copy(Dst, *A));
    return true;
  }
  }
}

std::optional<Operand> Expander::flattenOperand(Scope &S,
                                                const tpl::TExprRef &E) {
  switch (E->K) {
  case tpl::TExpr::Add:
  case tpl::TExpr::Sub:
  case tpl::TExpr::Mul:
  case tpl::TExpr::Div:
  case tpl::TExpr::Neg: {
    Operand Tmp = Operand::fltTemp(freshFltTemp());
    if (!emitAssign(S, Tmp, E))
      return std::nullopt;
    return Tmp;
  }
  default:
    return floatOperand(S, E);
  }
}

std::optional<Operand> Expander::floatOperand(Scope &S,
                                              const tpl::TExprRef &E) {
  switch (E->K) {
  case tpl::TExpr::Num:
    if (!checkRealConst(E->NumVal, E->Loc))
      return std::nullopt;
    return Operand::fltConst(E->NumVal);
  case tpl::TExpr::Sym: {
    if (startsWith(E->Name, "$f")) {
      auto It = S.FltTemps.find(E->Name);
      if (It == S.FltTemps.end()) {
        fail(E->Loc, "use of unassigned scalar " + E->Name);
        return std::nullopt;
      }
      return Operand::fltTemp(It->second);
    }
    // Integer-valued names are usable in floating context when constant.
    IntExprRef V = toIntExpr(S, E);
    if (!V)
      return std::nullopt;
    if (V->K != IntExpr::Const) {
      fail(E->Loc, "non-constant integer value in floating-point context");
      return std::nullopt;
    }
    return Operand::fltConst(Cplx(static_cast<double>(V->C), 0));
  }
  case tpl::TExpr::VecRef:
    return vecOperand(S, E->Name, E->Args[0], /*IsWrite=*/false, E->Loc);
  case tpl::TExpr::Call: {
    if (!Intrinsics.contains(E->Name)) {
      fail(E->Loc, "unknown intrinsic function '" + E->Name + "'");
      return std::nullopt;
    }
    if (Intrinsics.arity(E->Name) != E->Args.size()) {
      fail(E->Loc, "intrinsic '" + E->Name + "' expects " +
                       std::to_string(Intrinsics.arity(E->Name)) +
                       " arguments");
      return std::nullopt;
    }
    std::vector<IntExprRef> Args;
    for (const tpl::TExprRef &A : E->Args) {
      IntExprRef IA = toIntExpr(S, A);
      if (!IA)
        return std::nullopt;
      Args.push_back(IA);
    }
    return Operand::intrinsic(E->Name, std::move(Args));
  }
  default:
    return flattenOperand(S, E);
  }
}

std::optional<Operand> Expander::vecOperand(Scope &S, const std::string &Name,
                                            const tpl::TExprRef &Subscript,
                                            bool IsWrite, SourceLoc Loc) {
  IntExprRef SubE = toIntExpr(S, Subscript);
  if (!SubE)
    return std::nullopt;
  auto Sub = toAffine(SubE, Loc);
  if (!Sub)
    return std::nullopt;

  if (Name == "$in")
    return mapVec(S.In, *Sub);
  if (Name == "$out")
    return mapVec(S.Out, *Sub);
  if (startsWith(Name, "$t")) {
    auto It = S.TempVecs.find(Name);
    if (It == S.TempVecs.end()) {
      if (!IsWrite) {
        fail(Loc, "read of temporary vector " + Name +
                      " before anything was written to it");
        return std::nullopt;
      }
      // Directly-written temporary: allocate unsized; the extent pass sizes
      // it after expansion.
      It = S.TempVecs.insert({Name, allocTempVec(-1)}).first;
    }
    return Operand::vecElem(It->second, *Sub);
  }
  fail(Loc, "unknown vector '" + Name + "'");
  return std::nullopt;
}

IntExprRef Expander::toIntExpr(Scope &S, const tpl::TExprRef &E) {
  switch (E->K) {
  case tpl::TExpr::Num: {
    double R = E->NumVal.real();
    if (E->NumVal.imag() != 0 || R != std::floor(R)) {
      fail(E->Loc, "expected an integer constant");
      return nullptr;
    }
    return IntExpr::mkConst(static_cast<std::int64_t>(R));
  }
  case tpl::TExpr::Sym: {
    const std::string &N = E->Name;
    if (startsWith(N, "$i")) {
      auto It = S.LoopVars.find(N);
      if (It == S.LoopVars.end()) {
        fail(E->Loc, "loop variable " + N + " is not in scope");
        return nullptr;
      }
      return IntExpr::mkVar(It->second);
    }
    if (startsWith(N, "$r")) {
      auto It = S.IntEnv.find(N);
      if (It == S.IntEnv.end()) {
        fail(E->Loc, "use of unassigned integer temporary " + N);
        return nullptr;
      }
      return It->second;
    }
    if (N == "$in_size" || N == "$out_size") {
      auto Sizes = inferSizes(
          std::shared_ptr<const Formula>(S.F, [](const Formula *) {}));
      if (!Sizes) {
        fail(E->Loc, "cannot determine formula size");
        return nullptr;
      }
      return IntExpr::mkConst(N == "$in_size" ? Sizes->first
                                              : Sizes->second);
    }
    auto Lookup = makeLookup(S.Binds);
    auto V = Lookup(N);
    if (!V) {
      fail(E->Loc, "unbound name '" + N + "' in integer expression");
      return nullptr;
    }
    return IntExpr::mkConst(*V);
  }
  case tpl::TExpr::Add:
  case tpl::TExpr::Sub:
  case tpl::TExpr::Mul:
  case tpl::TExpr::Div:
  case tpl::TExpr::Mod: {
    IntExprRef L = toIntExpr(S, E->Args[0]);
    if (!L)
      return nullptr;
    IntExprRef R = toIntExpr(S, E->Args[1]);
    if (!R)
      return nullptr;
    IntExpr::Kind K = E->K == tpl::TExpr::Add   ? IntExpr::Add
                      : E->K == tpl::TExpr::Sub ? IntExpr::Sub
                      : E->K == tpl::TExpr::Mul ? IntExpr::Mul
                      : E->K == tpl::TExpr::Div ? IntExpr::Div
                                                : IntExpr::Mod;
    if ((K == IntExpr::Div || K == IntExpr::Mod) && R->K == IntExpr::Const &&
        R->C == 0) {
      fail(E->Loc, "division by zero in integer expression");
      return nullptr;
    }
    return IntExpr::mkBin(K, L, R);
  }
  case tpl::TExpr::Neg: {
    IntExprRef V = toIntExpr(S, E->Args[0]);
    if (!V)
      return nullptr;
    return IntExpr::mkBin(IntExpr::Sub, IntExpr::mkConst(0), V);
  }
  default:
    fail(E->Loc, "expected an integer expression");
    return nullptr;
  }
}

std::optional<Affine> Expander::toAffine(const IntExprRef &E, SourceLoc Loc) {
  switch (E->K) {
  case IntExpr::Const:
    return Affine(E->C);
  case IntExpr::Var:
    return Affine::var(E->V);
  case IntExpr::Add:
  case IntExpr::Sub: {
    auto A = toAffine(E->L, Loc), B = toAffine(E->R, Loc);
    if (!A || !B)
      return std::nullopt;
    return E->K == IntExpr::Add ? A->plus(*B) : A->plus(B->scaled(-1));
  }
  case IntExpr::Mul: {
    auto A = toAffine(E->L, Loc), B = toAffine(E->R, Loc);
    if (!A || !B)
      return std::nullopt;
    if (A->isConst())
      return B->scaled(A->Base);
    if (B->isConst())
      return A->scaled(B->Base);
    fail(Loc, "vector subscripts must be linear in the loop indices");
    return std::nullopt;
  }
  default:
    // Non-constant Div/Mod (constants were folded in mkBin).
    fail(Loc, "vector subscripts must be linear in the loop indices");
    return std::nullopt;
  }
}

std::optional<Expander::VecMap>
Expander::resolveVecArg(Scope &S, const tpl::TExprRef &Arg,
                        const FormulaRef &Callee, bool IsOut) {
  if (Arg->K != tpl::TExpr::Sym) {
    fail(Arg->Loc, "formula call vector arguments must be $in, $out or $tK");
    return std::nullopt;
  }
  const std::string &N = Arg->Name;
  if (N == "$in")
    return S.In;
  if (N == "$out")
    return S.Out;
  if (startsWith(N, "$t")) {
    auto It = S.TempVecs.find(N);
    if (It == S.TempVecs.end()) {
      if (!IsOut) {
        fail(Arg->Loc, "read of temporary vector " + N +
                           " before anything was written to it");
        return std::nullopt;
      }
      auto Sizes = inferSizes(Callee);
      if (!Sizes) {
        fail(Arg->Loc, "cannot size temporary vector " + N);
        return std::nullopt;
      }
      It = S.TempVecs.insert({N, allocTempVec(Sizes->second)}).first;
    }
    return VecMap{It->second, Affine(0), 1};
  }
  fail(Arg->Loc, "unknown vector '" + N + "' in formula call");
  return std::nullopt;
}

bool Expander::emitCall(Scope &S, const tpl::TStmt &Stmt, bool Unroll) {
  auto It = S.Binds.Formulas.find(Stmt.Callee);
  if (It == S.Binds.Formulas.end())
    return fail(Stmt.Loc, "formula variable " + Stmt.Callee +
                              " is not bound by the pattern");
  const FormulaRef &Callee = It->second;

  auto InBase = resolveVecArg(S, Stmt.CallArgs[0], Callee, /*IsOut=*/false);
  if (!InBase)
    return false;
  auto OutBase = resolveVecArg(S, Stmt.CallArgs[1], Callee, /*IsOut=*/true);
  if (!OutBase)
    return false;

  // Offsets may involve loop indices (they stay affine); strides must be
  // compile-time constants.
  auto EvalOffset = [&](const tpl::TExprRef &E) -> std::optional<Affine> {
    IntExprRef V = toIntExpr(S, E);
    if (!V)
      return std::nullopt;
    return toAffine(V, E->Loc);
  };
  auto EvalStride = [&](const tpl::TExprRef &E)
      -> std::optional<std::int64_t> {
    IntExprRef V = toIntExpr(S, E);
    if (!V)
      return std::nullopt;
    if (V->K != IntExpr::Const) {
      fail(E->Loc, "strides in formula calls must be compile-time "
                   "constants");
      return std::nullopt;
    }
    return V->C;
  };

  auto InOff = EvalOffset(Stmt.CallArgs[2]);
  auto OutOff = EvalOffset(Stmt.CallArgs[3]);
  auto InStride = EvalStride(Stmt.CallArgs[4]);
  auto OutStride = EvalStride(Stmt.CallArgs[5]);
  if (!InOff || !OutOff || !InStride || !OutStride)
    return false;

  // Compose the callee's logical addressing with the caller's map:
  // element j of the callee's input lives at caller offset
  // InOff + InStride * j of the caller's $in vector.
  VecMap NewIn;
  NewIn.VecId = InBase->VecId;
  NewIn.Offset = InBase->Offset.plus(InOff->scaled(InBase->Stride));
  NewIn.Stride = InBase->Stride * *InStride;
  VecMap NewOut;
  NewOut.VecId = OutBase->VecId;
  NewOut.Offset = OutBase->Offset.plus(OutOff->scaled(OutBase->Stride));
  NewOut.Stride = OutBase->Stride * *OutStride;

  return expandInto(Callee, NewIn, NewOut, Unroll);
}

//===----------------------------------------------------------------------===//
// Native rules
//===----------------------------------------------------------------------===//

bool Expander::expandGenMatrix(const Formula &F, const VecMap &In,
                               const VecMap &Out) {
  const auto &Rows = F.matrixRows();
  for (size_t I = 0; I != Rows.size(); ++I) {
    Affine OutSub = Out.Offset.plus(Affine(static_cast<std::int64_t>(I))
                                        .scaled(Out.Stride));
    Operand Dst = Operand::vecElem(Out.VecId, OutSub);
    bool First = true;
    for (size_t J = 0; J != Rows[I].size(); ++J) {
      Cplx C = Rows[I][J];
      if (C == Cplx(0, 0))
        continue;
      if (!checkRealConst(C, F.loc()))
        return false;
      Operand Src = mapVec(In, Affine(static_cast<std::int64_t>(J)));
      Operand Term = Operand::fltTemp(freshFltTemp());
      P->Body.push_back(
          Instr::bin(Op::Mul, Term, Operand::fltConst(C), Src));
      if (First) {
        P->Body.push_back(Instr::copy(Dst, Term));
        First = false;
      } else {
        P->Body.push_back(Instr::bin(Op::Add, Dst, Dst, Term));
      }
    }
    if (First) // All-zero row.
      P->Body.push_back(Instr::copy(Dst, Operand::fltConst(Cplx(0, 0))));
  }
  return true;
}

bool Expander::expandDiagonal(const Formula &F, const VecMap &In,
                              const VecMap &Out) {
  const auto &Elems = F.diagElems();
  for (size_t I = 0; I != Elems.size(); ++I) {
    if (!checkRealConst(Elems[I], F.loc()))
      return false;
    Affine Idx(static_cast<std::int64_t>(I));
    P->Body.push_back(Instr::bin(Op::Mul, mapVec(Out, Idx),
                                 Operand::fltConst(Elems[I]),
                                 mapVec(In, Idx)));
  }
  return true;
}

bool Expander::expandPermutation(const Formula &F, const VecMap &In,
                                 const VecMap &Out) {
  const auto &Targets = F.permTargets();
  for (size_t I = 0; I != Targets.size(); ++I) {
    P->Body.push_back(
        Instr::copy(mapVec(Out, Affine(static_cast<std::int64_t>(I))),
                    mapVec(In, Affine(Targets[I] - 1))));
  }
  return true;
}

bool Expander::expandTensorSplit(const FormulaRef &F, const VecMap &In,
                                 const VecMap &Out, bool UnrollActive) {
  // A (x) B = (A (x) I_{B.out}) (I_{A.in} (x) B); both factors then match
  // the built-in tensor-with-identity templates.
  const FormulaRef &A = F->child(0), &B = F->child(1);
  auto SA = inferSizes(A), SB = inferSizes(B);
  if (!SA || !SB)
    return fail(F->loc(), "cannot determine operand sizes of " + F->print());
  FormulaRef Rewritten =
      makeCompose(makeTensor(A, makeIdentity(SB->second)),
                  makeTensor(makeIdentity(SA->first), B), F->loc());
  return expandInto(Rewritten, In, Out, UnrollActive);
}
