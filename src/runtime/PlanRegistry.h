//===- runtime/PlanRegistry.h - Shared plan memoization ---------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, in-process memo of plans keyed by PlanSpec::key(). The
/// point is single-flight planning: when many threads ask for the same
/// transform at once (a server warming up, a batch driver fanning out),
/// exactly one runs the expensive search-and-compile pass and everyone else
/// blocks until that plan is ready, then shares it. Plans are handed out as
/// shared_ptr, so a registry clear() never invalidates plans still in use.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_RUNTIME_PLANREGISTRY_H
#define SPL_RUNTIME_PLANREGISTRY_H

#include "runtime/Planner.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace spl {
namespace runtime {

/// Memoizes Planner::plan by spec key, with single-flight concurrency.
class PlanRegistry {
public:
  explicit PlanRegistry(Planner &P) : ThePlanner(P) {}

  /// The plan for \p Spec: served from the memo, or planned exactly once
  /// however many threads ask concurrently. Returns null when planning
  /// fails; failures are NOT cached (a later acquire retries).
  std::shared_ptr<Plan> acquire(const PlanSpec &Spec);

  /// Deadline-bearing acquire. Memo hits ignore the deadline (they are
  /// free). A caller that would block on another thread's in-flight pass
  /// waits at most the remaining budget, then gives up with
  /// PlanError::DeadlineExceeded — the planning thread keeps going and
  /// future callers still benefit. When this caller plans itself, the
  /// deadline is threaded into Planner::plan, and a deadline-pressured
  /// result (Plan::deadlinePressured) is handed back but NOT memoized, so
  /// an unpressured caller can rebuild the full-quality plan later.
  std::shared_ptr<Plan> acquire(const PlanSpec &Spec,
                                const support::Deadline &Deadline,
                                PlanError *Err = nullptr);

  /// Lookup counters.
  struct Stats {
    size_t Hits = 0;   ///< Served an already-built plan.
    size_t Misses = 0; ///< Ran a planning pass.
    size_t Waits = 0;  ///< Blocked on another thread's in-flight pass.
  };
  Stats stats() const;

  /// Number of plans currently memoized.
  size_t size() const;

  /// Drops every memoized plan (in-use plans stay alive via shared_ptr).
  void clear();

private:
  struct Slot {
    bool Ready = false;
    std::shared_ptr<Plan> P;
  };

  Planner &ThePlanner;
  mutable std::mutex M;
  std::condition_variable Ready;
  std::map<std::string, std::shared_ptr<Slot>> Slots;
  Stats S;
};

} // namespace runtime
} // namespace spl

#endif // SPL_RUNTIME_PLANREGISTRY_H
