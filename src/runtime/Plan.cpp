//===- runtime/Plan.cpp - Executable transform plans --------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Plan.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sstream>

using namespace spl;
using namespace spl::runtime;

const char *spl::runtime::backendName(Backend B) {
  switch (B) {
  case Backend::Auto:
    return "auto";
  case Backend::VM:
    return "vm";
  case Backend::Native:
    return "native";
  case Backend::Oracle:
    return "oracle";
  }
  return "unknown";
}

bool spl::runtime::parseBackend(const std::string &Name, Backend &Out) {
  if (Name == "auto")
    Out = Backend::Auto;
  else if (Name == "vm")
    Out = Backend::VM;
  else if (Name == "native")
    Out = Backend::Native;
  else if (Name == "oracle")
    Out = Backend::Oracle;
  else
    return false;
  return true;
}

std::string PlanSpec::key() const {
  std::ostringstream SS;
  SS << Transform << " " << Size << " "
     << (Datatype.empty() ? (Transform == "wht" ? "real" : "complex")
                          : Datatype)
     << " B" << UnrollThreshold << " L" << MaxLeaf << " "
     << backendName(Want);
  return SS.str();
}

std::unique_ptr<Plan::ExecCtx> Plan::acquireCtx() {
  {
    std::lock_guard<std::mutex> Lock(CtxM);
    if (!FreeCtxs.empty()) {
      auto Ctx = std::move(FreeCtxs.back());
      FreeCtxs.pop_back();
      return Ctx;
    }
  }
  auto Ctx = std::make_unique<ExecCtx>();
  if (Resolved == Backend::VM)
    Ctx->VM = std::make_unique<vm::Executor>(Final);
  Ctx->Scratch.resize(static_cast<std::size_t>(IOLen));
  return Ctx;
}

void Plan::releaseCtx(std::unique_ptr<ExecCtx> Ctx) {
  std::lock_guard<std::mutex> Lock(CtxM);
  FreeCtxs.push_back(std::move(Ctx));
}

void Plan::applyOracle(double *Y, const double *X) const {
  // The input is fully read into a complex vector before Y is written, so
  // in-place calls (Y == X) need no scratch on this tier.
  const size_t N = OracleMat.cols();
  std::vector<Cplx> In(N);
  if (Final.LoweredToReal) {
    for (size_t I = 0; I != N; ++I)
      In[I] = Cplx(X[2 * I], X[2 * I + 1]);
    std::vector<Cplx> Out = OracleMat.apply(In);
    for (size_t I = 0; I != Out.size(); ++I) {
      Y[2 * I] = Out[I].real();
      Y[2 * I + 1] = Out[I].imag();
    }
    return;
  }
  for (size_t I = 0; I != N; ++I)
    In[I] = Cplx(X[I], 0.0);
  std::vector<Cplx> Out = OracleMat.apply(In);
  for (size_t I = 0; I != Out.size(); ++I)
    Y[I] = Out[I].real();
}

void Plan::runOne(ExecCtx &Ctx, double *Y, const double *X) {
  if (Resolved == Backend::Oracle) {
    applyOracle(Y, X);
    return;
  }
  if (Y == X) {
    // In-place request: compute into aligned scratch, then copy back. The
    // generated kernels are out-of-place (y and x are restrict-qualified).
    double *S = Ctx.Scratch.data();
    if (Resolved == Backend::Native)
      Native->run(S, X);
    else
      Ctx.VM->runReal(X, S);
    std::memcpy(Y, S, static_cast<std::size_t>(IOLen) * sizeof(double));
    return;
  }
  if (Resolved == Backend::Native)
    Native->run(Y, X);
  else
    Ctx.VM->runReal(X, Y);
}

void Plan::execute(double *Y, const double *X) {
  auto Ctx = acquireCtx();
  runOne(*Ctx, Y, X);
  releaseCtx(std::move(Ctx));
}

void Plan::executeBatch(double *Y, const double *X, std::int64_t Count,
                        int Threads, std::int64_t StrideY,
                        std::int64_t StrideX) {
  if (Count <= 0)
    return;
  if (StrideX == 0)
    StrideX = IOLen;
  if (StrideY == 0)
    StrideY = IOLen;
  assert(StrideX >= IOLen && StrideY >= IOLen &&
         "batch strides must not make vectors overlap");

  std::int64_t T = std::clamp<std::int64_t>(Threads, 1, Count);
  if (T == 1) {
    auto Ctx = acquireCtx();
    for (std::int64_t I = 0; I != Count; ++I)
      runOne(*Ctx, Y + I * StrideY, X + I * StrideX);
    releaseCtx(std::move(Ctx));
    return;
  }

  // One contiguous chunk per worker: coarse-grained enough that the pool's
  // queue never becomes the bottleneck, and each worker touches a disjoint,
  // cache-friendly slice of the batch.
  std::lock_guard<std::mutex> Lock(BatchM);
  if (!Pool || PoolThreads != static_cast<int>(T)) {
    Pool.reset(); // Join the old workers before spawning the new set.
    Pool = std::make_unique<ThreadPool>(static_cast<unsigned>(T));
    PoolThreads = static_cast<int>(T);
  }
  std::int64_t Chunk = (Count + T - 1) / T;
  parallelFor(*Pool, static_cast<size_t>(T), [&](size_t J) {
    std::int64_t Lo = static_cast<std::int64_t>(J) * Chunk;
    std::int64_t Hi = std::min(Count, Lo + Chunk);
    if (Lo >= Hi)
      return;
    auto Ctx = acquireCtx();
    for (std::int64_t I = Lo; I != Hi; ++I)
      runOne(*Ctx, Y + I * StrideY, X + I * StrideX);
    releaseCtx(std::move(Ctx));
  });
}

std::string Plan::describe() const {
  std::ostringstream SS;
  SS << Spec.Transform << " " << Spec.Size << ": backend "
     << backendName(Resolved);
  if (Fallback)
    SS << " (fell back: " << FallbackReason << ")";
  SS << ", " << IOLen << " doubles/vector, search cost " << Cost
     << ", formula " << FormulaText;
  return SS.str();
}
