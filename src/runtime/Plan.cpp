//===- runtime/Plan.cpp - Executable transform plans --------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Plan.h"

#include "telemetry/Trace.h"
#include "transforms/Registry.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sstream>

using namespace spl;
using namespace spl::runtime;

const char *spl::runtime::backendName(Backend B) {
  switch (B) {
  case Backend::Auto:
    return "auto";
  case Backend::VM:
    return "vm";
  case Backend::Native:
    return "native";
  case Backend::Oracle:
    return "oracle";
  }
  return "unknown";
}

bool spl::runtime::parseBackend(const std::string &Name, Backend &Out) {
  if (Name == "auto")
    Out = Backend::Auto;
  else if (Name == "vm")
    Out = Backend::VM;
  else if (Name == "native")
    Out = Backend::Native;
  else if (Name == "oracle")
    Out = Backend::Oracle;
  else
    return false;
  return true;
}

const char *spl::runtime::codegenModeName(CodegenMode M) {
  switch (M) {
  case CodegenMode::Auto:
    return "auto";
  case CodegenMode::Scalar:
    return "scalar";
  case CodegenMode::Vector:
    return "vector";
  }
  return "unknown";
}

bool spl::runtime::parseCodegenMode(const std::string &Name, CodegenMode &Out) {
  if (Name == "auto")
    Out = CodegenMode::Auto;
  else if (Name == "scalar")
    Out = CodegenMode::Scalar;
  else if (Name == "vector")
    Out = CodegenMode::Vector;
  else
    return false;
  return true;
}

std::string PlanSpec::key() const {
  std::string Type = Datatype;
  if (Type.empty()) {
    const transforms::TransformInfo *TI = transforms::lookup(Transform);
    Type = TI ? TI->NaturalDatatype : "complex";
  }
  std::ostringstream SS;
  SS << Transform << " " << Size << " " << Type << " B" << UnrollThreshold
     << " L" << MaxLeaf << " " << backendName(Want) << " "
     << codegenModeName(Codegen);
  // Multi-dimensional shapes get a suffix so "fft 1024" (1-D) and
  // "fft 32x32" (row-column) never share a registry slot; 1-D keys are
  // byte-identical to what they were before shapes existed.
  if (Shape.size() >= 2) {
    SS << " S";
    for (size_t I = 0; I != Shape.size(); ++I)
      SS << (I ? "x" : "") << Shape[I];
  }
  return SS.str();
}

std::unique_ptr<Plan::ExecCtx> Plan::acquireCtx() {
  {
    std::lock_guard<std::mutex> Lock(CtxM);
    if (!FreeCtxs.empty()) {
      auto Ctx = std::move(FreeCtxs.back());
      FreeCtxs.pop_back();
      return Ctx;
    }
  }
  auto Ctx = std::make_unique<ExecCtx>();
  if (Resolved == Backend::VM)
    Ctx->VM = std::make_unique<vm::Executor>(Final);
  Ctx->Scratch.resize(static_cast<std::size_t>(IOLen));
  if (Lanes > 1) {
    Ctx->PackX.resize(static_cast<std::size_t>(KernelLen) * Lanes);
    Ctx->PackY.resize(static_cast<std::size_t>(KernelLen) * Lanes);
  }
  if (IOLayout == Layout::HalfComplex && Resolved != Backend::Oracle) {
    Ctx->KernIn.resize(static_cast<std::size_t>(KernelLen));
    Ctx->KernOut.resize(static_cast<std::size_t>(KernelLen));
  }
  return Ctx;
}

void Plan::releaseCtx(std::unique_ptr<ExecCtx> Ctx) {
  std::lock_guard<std::mutex> Lock(CtxM);
  FreeCtxs.push_back(std::move(Ctx));
}

void Plan::applyOracle(double *Y, const double *X) const {
  // The input is fully read into a complex vector before Y is written, so
  // in-place calls (Y == X) need no scratch on this tier. The oracle
  // matrix always has user-facing semantics: interleaved complex pairs for
  // Interleaved plans, real-in/real-out otherwise (a halfcomplex plan's
  // oracle is the entrywise-real rdft matrix, so its output is already in
  // halfcomplex order).
  const size_t N = OracleMat.cols();
  std::vector<Cplx> In(N);
  if (IOLayout == Layout::Interleaved) {
    for (size_t I = 0; I != N; ++I)
      In[I] = Cplx(X[2 * I], X[2 * I + 1]);
    std::vector<Cplx> Out = OracleMat.apply(In);
    for (size_t I = 0; I != Out.size(); ++I) {
      Y[2 * I] = Out[I].real();
      Y[2 * I + 1] = Out[I].imag();
    }
    return;
  }
  for (size_t I = 0; I != N; ++I)
    In[I] = Cplx(X[I], 0.0);
  std::vector<Cplx> Out = OracleMat.apply(In);
  for (size_t I = 0; I != Out.size(); ++I)
    Y[I] = Out[I].real();
}

void Plan::runGroup(ExecCtx &Ctx, double *Y, const double *X, std::int64_t K,
                    std::int64_t StrideY, std::int64_t StrideX) {
  assert(K >= 1 && K <= Lanes && "group holds 1..Lanes vectors");
  const std::int64_t M = Lanes;
  double *PX = Ctx.PackX.data();
  double *PY = Ctx.PackY.data();
  // The staging buffers feed the kernel's aligned SIMD loads directly, so
  // their alignment is a correctness contract, not a fast-path hint.
  assert(reinterpret_cast<std::uintptr_t>(PX) % AlignedBuffer::Alignment ==
             0 &&
         reinterpret_cast<std::uintptr_t>(PY) % AlignedBuffer::Alignment ==
             0 &&
         "lane staging buffers must be AlignedBuffer-aligned");
  // Slot-major staging: physical double s of column j lives at s*M + j, so
  // the M columns of one slot are the contiguous lane group the kernel's
  // SIMD loads expect. The input is fully read before the kernel writes
  // PY, which makes Y == X (in place) safe without extra scratch.
  if (IOLayout == Layout::HalfComplex) {
    // Kernel-facing slots are interleaved complex: even slot 2j is the
    // real input x_j, odd slots are the zero imaginary parts.
    for (std::int64_t S = 0; S != KernelLen; ++S) {
      const bool Re = (S & 1) == 0;
      const std::int64_t Src = S / 2;
      std::int64_t J = 0;
      for (; J != K; ++J)
        PX[S * M + J] = Re ? X[J * StrideX + Src] : 0.0;
      for (; J != M; ++J)
        PX[S * M + J] = 0.0; // Inert: lanes never mix.
    }
    Native->run(PY, PX);
    const std::int64_t N = IOLen; // Halfcomplex vectors hold N doubles.
    for (std::int64_t J = 0; J != K; ++J) {
      double *YJ = Y + J * StrideY;
      YJ[0] = PY[0 * M + J];
      for (std::int64_t F = 1; F <= N / 2; ++F)
        YJ[F] = PY[(2 * F) * M + J];
      for (std::int64_t F = 1; F < N / 2; ++F)
        YJ[N - F] = PY[(2 * F + 1) * M + J];
    }
    return;
  }
  for (std::int64_t S = 0; S != IOLen; ++S) {
    std::int64_t J = 0;
    for (; J != K; ++J)
      PX[S * M + J] = X[J * StrideX + S];
    for (; J != M; ++J)
      PX[S * M + J] = 0.0; // Inert: lanes never mix.
  }
  Native->run(PY, PX);
  for (std::int64_t J = 0; J != K; ++J)
    for (std::int64_t S = 0; S != IOLen; ++S)
      Y[J * StrideY + S] = PY[S * M + J];
}

void Plan::runKernel(ExecCtx &Ctx, double *KY, const double *KX) {
  if (Resolved == Backend::Native)
    Native->run(KY, KX);
  else
    Ctx.VM->runReal(KX, KY);
}

void Plan::runOne(ExecCtx &Ctx, double *Y, const double *X) {
  if (Resolved == Backend::Oracle) {
    applyOracle(Y, X);
    return;
  }
  if (Resolved == Backend::Native && Lanes > 1) {
    // A single vector rides lane 0; the staging copy doubles as the
    // in-place scratch.
    runGroup(Ctx, Y, X, 1, IOLen, IOLen);
    return;
  }
  if (IOLayout == Layout::HalfComplex) {
    // The rdft layout adapter: embed N reals as N interleaved complex
    // points, run the complex kernel, then fold the conjugate-symmetric
    // spectrum into FFTW's r2hc order. The input is fully read into KernIn
    // before Y is written, so Y == X is safe.
    const std::int64_t N = IOLen;
    double *KI = Ctx.KernIn.data();
    double *KO = Ctx.KernOut.data();
    for (std::int64_t J = 0; J != N; ++J) {
      KI[2 * J] = X[J];
      KI[2 * J + 1] = 0.0;
    }
    runKernel(Ctx, KO, KI);
    Y[0] = KO[0];
    for (std::int64_t F = 1; F <= N / 2; ++F)
      Y[F] = KO[2 * F];
    for (std::int64_t F = 1; F < N / 2; ++F)
      Y[N - F] = KO[2 * F + 1];
    return;
  }
  if (Y == X) {
    // In-place request: compute into aligned scratch, then copy back. The
    // generated kernels are out-of-place (y and x are restrict-qualified).
    double *S = Ctx.Scratch.data();
    runKernel(Ctx, S, X);
    std::memcpy(Y, S, static_cast<std::size_t>(IOLen) * sizeof(double));
    return;
  }
  runKernel(Ctx, Y, X);
}

namespace {
telemetry::Counter &deadlineExceededCounter() {
  static telemetry::Counter &C = telemetry::counter("runtime.deadline_exceeded");
  return C;
}
} // namespace

ExecStatus Plan::execute(double *Y, const double *X,
                         const support::Deadline &DL) {
  // A single vector is all-or-nothing: either we start in budget and finish
  // it, or we refuse up front and leave Y untouched.
  if (DL.expired()) {
    deadlineExceededCounter().add();
    return ExecStatus::DeadlineExceeded;
  }
  execute(Y, X);
  return ExecStatus::Ok;
}

ExecStatus Plan::executeBatch(double *Y, const double *X, std::int64_t Count,
                              const support::Deadline &DL, int Threads,
                              std::int64_t StrideY, std::int64_t StrideX) {
  if (Count <= 0)
    return ExecStatus::Ok;
  if (DL.expired()) {
    deadlineExceededCounter().add();
    return ExecStatus::DeadlineExceeded;
  }
  unsigned Mask = telemetry::armedMask();
  bool Completed;
  if (Mask != 0) {
    std::uint64_t Start = telemetry::traceNowNs();
    Completed = runBatch(Y, X, Count, Threads, StrideY, StrideX, DL);
    std::uint64_t Dur = telemetry::traceNowNs() - Start;
    if (Mask & telemetry::kMetrics) {
      NumBatches.fetch_add(1, std::memory_order_relaxed);
      NumVectors.fetch_add(static_cast<std::uint64_t>(Count),
                           std::memory_order_relaxed);
      BatchNs.recordAlways(Dur);
    }
    if (Mask & telemetry::kTrace)
      telemetry::Tracer::instance().record("executeBatch", Start, Dur);
  } else {
    Completed = runBatch(Y, X, Count, Threads, StrideY, StrideX, DL);
  }
  if (Completed)
    return ExecStatus::Ok; // Expiry after the last vector still counts as Ok.
  deadlineExceededCounter().add();
  return ExecStatus::DeadlineExceeded;
}

ExecStatus Plan::executeBatch(double *Y, const double *X, const BatchLayout &L,
                              const support::Deadline &DL, int Threads) {
  assert(L.StrideX >= 1 && L.StrideY >= 1 && "element strides must be >= 1");
  if (L.HowMany <= 0)
    return ExecStatus::Ok;
  const std::int64_t SpanX = (IOLen - 1) * L.StrideX + 1;
  const std::int64_t SpanY = (IOLen - 1) * L.StrideY + 1;
  const std::int64_t DistX = L.DistX ? L.DistX : SpanX;
  const std::int64_t DistY = L.DistY ? L.DistY : SpanY;
  if (L.StrideX == 1 && L.StrideY == 1)
    return executeBatch(Y, X, L.HowMany, DL, Threads, DistY, DistX);

  // Non-unit element strides: gather every vector into dense aligned
  // staging, run the dense batch core (which keeps thread-count
  // bit-identity and lane grouping), then scatter results back. The output
  // staging is pre-seeded from Y so vectors a deadline skipped scatter
  // back their original bytes — untouched, matching the dense contract.
  const std::size_t Total =
      static_cast<std::size_t>(L.HowMany) * static_cast<std::size_t>(IOLen);
  AlignedBuffer In(Total), Out(Total);
  for (std::int64_t V = 0; V != L.HowMany; ++V) {
    const double *XV = X + V * DistX;
    const double *YV = Y + V * DistY;
    double *IV = In.data() + V * IOLen;
    double *OV = Out.data() + V * IOLen;
    for (std::int64_t S = 0; S != IOLen; ++S) {
      IV[S] = XV[S * L.StrideX];
      OV[S] = YV[S * L.StrideY];
    }
  }
  ExecStatus St =
      executeBatch(Out.data(), In.data(), L.HowMany, DL, Threads, 0, 0);
  for (std::int64_t V = 0; V != L.HowMany; ++V) {
    double *YV = Y + V * DistY;
    const double *OV = Out.data() + V * IOLen;
    for (std::int64_t S = 0; S != IOLen; ++S)
      YV[S * L.StrideY] = OV[S];
  }
  return St;
}

void Plan::execute(double *Y, const double *X) {
  // Disarmed hot path: one relaxed load of the telemetry mask, then work.
  unsigned Mask = telemetry::armedMask();
  if (Mask == 0) {
    auto Ctx = acquireCtx();
    runOne(*Ctx, Y, X);
    releaseCtx(std::move(Ctx));
    return;
  }

  std::uint64_t Start = telemetry::traceNowNs();
  auto Ctx = acquireCtx();
  runOne(*Ctx, Y, X);
  releaseCtx(std::move(Ctx));
  std::uint64_t Dur = telemetry::traceNowNs() - Start;
  if (Mask & telemetry::kMetrics) {
    NumExecutes.fetch_add(1, std::memory_order_relaxed);
    ExecuteNs.recordAlways(Dur);
    static telemetry::Counter &Executes =
        telemetry::counter("runtime.executes");
    static telemetry::Histogram &GlobalNs =
        telemetry::histogram("runtime.execute_ns");
    Executes.add();
    GlobalNs.recordAlways(Dur);
  }
  if (Mask & telemetry::kTrace)
    telemetry::Tracer::instance().record("execute", Start, Dur);
}

void Plan::executeBatch(double *Y, const double *X, std::int64_t Count,
                        int Threads, std::int64_t StrideY,
                        std::int64_t StrideX) {
  if (Count <= 0)
    return;
  // Batch-granular instrumentation: when armed, the whole batch is one
  // sample/span; when disarmed this is the single relaxed mask load.
  unsigned Mask = telemetry::armedMask();
  if (Mask != 0) {
    std::uint64_t Start = telemetry::traceNowNs();
    runBatch(Y, X, Count, Threads, StrideY, StrideX, support::Deadline());
    std::uint64_t Dur = telemetry::traceNowNs() - Start;
    if (Mask & telemetry::kMetrics) {
      NumBatches.fetch_add(1, std::memory_order_relaxed);
      NumVectors.fetch_add(static_cast<std::uint64_t>(Count),
                           std::memory_order_relaxed);
      BatchNs.recordAlways(Dur);
      static telemetry::Counter &Batches =
          telemetry::counter("runtime.batches");
      static telemetry::Counter &Vectors =
          telemetry::counter("runtime.batch_vectors");
      static telemetry::Histogram &GlobalNs =
          telemetry::histogram("runtime.batch_ns");
      Batches.add();
      Vectors.add(static_cast<std::uint64_t>(Count));
      GlobalNs.recordAlways(Dur);
    }
    if (Mask & telemetry::kTrace)
      telemetry::Tracer::instance().record("executeBatch", Start, Dur);
    return;
  }
  runBatch(Y, X, Count, Threads, StrideY, StrideX, support::Deadline());
}

bool Plan::runBatch(double *Y, const double *X, std::int64_t Count,
                    int Threads, std::int64_t StrideY, std::int64_t StrideX,
                    const support::Deadline &DL) {
  if (StrideX == 0)
    StrideX = IOLen;
  if (StrideY == 0)
    StrideY = IOLen;
  assert(StrideX >= IOLen && StrideY >= IOLen &&
         "batch strides must not make vectors overlap");

  // Vector kernels take whole lane groups; chunk boundaries only change
  // which vectors share a group, and lane independence keeps every vector's
  // result bit-identical whatever its group-mates (or zero padding) are.
  const bool Grouped = Resolved == Backend::Native && Lanes > 1;

  // Cooperative cancellation: the deadline is checked before each vector
  // (lane group for vector kernels), never inside one, so every vector that
  // runs at all produces exactly the bits an unpressured run would. An
  // unbounded deadline's expired() is one relaxed atomic load.
  bool Completed = true;

  std::int64_t T = std::clamp<std::int64_t>(Threads, 1, Count);
  if (T == 1) {
    auto Ctx = acquireCtx();
    if (Grouped) {
      for (std::int64_t I = 0; I < Count; I += Lanes) {
        if (DL.expired()) {
          Completed = false;
          break;
        }
        runGroup(*Ctx, Y + I * StrideY, X + I * StrideX,
                 std::min<std::int64_t>(Lanes, Count - I), StrideY, StrideX);
      }
    } else {
      for (std::int64_t I = 0; I != Count; ++I) {
        if (DL.expired()) {
          Completed = false;
          break;
        }
        runOne(*Ctx, Y + I * StrideY, X + I * StrideX);
      }
    }
    releaseCtx(std::move(Ctx));
    return Completed;
  }

  // One contiguous chunk per worker: coarse-grained enough that the pool's
  // queue never becomes the bottleneck, and each worker touches a disjoint,
  // cache-friendly slice of the batch.
  std::lock_guard<std::mutex> Lock(BatchM);
  if (!Pool || PoolThreads != static_cast<int>(T)) {
    Pool.reset(); // Join the old workers before spawning the new set.
    Pool = std::make_unique<ThreadPool>(static_cast<unsigned>(T));
    PoolThreads = static_cast<int>(T);
  }
  std::int64_t Chunk = (Count + T - 1) / T;
  // One worker noticing expiry stops the whole batch: everyone else sees
  // the shared flag at their next vector boundary, so no worker keeps
  // burning pool time on a request whose caller has already given up.
  std::atomic<bool> Stop{false};
  parallelFor(*Pool, static_cast<size_t>(T), [&](size_t J) {
    std::int64_t Lo = static_cast<std::int64_t>(J) * Chunk;
    std::int64_t Hi = std::min(Count, Lo + Chunk);
    if (Lo >= Hi)
      return;
    auto Ctx = acquireCtx();
    if (Grouped) {
      for (std::int64_t I = Lo; I < Hi; I += Lanes) {
        if (Stop.load(std::memory_order_relaxed) || DL.expired()) {
          Stop.store(true, std::memory_order_relaxed);
          break;
        }
        runGroup(*Ctx, Y + I * StrideY, X + I * StrideX,
                 std::min<std::int64_t>(Lanes, Hi - I), StrideY, StrideX);
      }
    } else {
      for (std::int64_t I = Lo; I != Hi; ++I) {
        if (Stop.load(std::memory_order_relaxed) || DL.expired()) {
          Stop.store(true, std::memory_order_relaxed);
          break;
        }
        runOne(*Ctx, Y + I * StrideY, X + I * StrideX);
      }
    }
    releaseCtx(std::move(Ctx));
  });
  return Completed && !Stop.load(std::memory_order_relaxed);
}

ExecStats Plan::stats() const {
  ExecStats S;
  S.Executes = NumExecutes.load(std::memory_order_relaxed);
  S.Batches = NumBatches.load(std::memory_order_relaxed);
  S.Vectors = NumVectors.load(std::memory_order_relaxed);
  S.ExecuteNs = ExecuteNs.snapshot();
  S.BatchNs = BatchNs.snapshot();
  return S;
}

std::string Plan::describe() const {
  std::ostringstream SS;
  SS << Spec.Transform << " ";
  if (Spec.Shape.size() >= 2)
    for (size_t I = 0; I != Spec.Shape.size(); ++I)
      SS << (I ? "x" : "") << Spec.Shape[I];
  else
    SS << Spec.Size;
  SS << ": backend " << backendName(Resolved);
  if (IOLayout == Layout::HalfComplex)
    SS << " (halfcomplex)";
  if (Lanes > 1)
    SS << " (vector, " << Lanes << " lanes)";
  if (Fallback)
    SS << " (fell back: " << FallbackReason << ")";
  SS << ", " << IOLen << " doubles/vector, search cost " << Cost
     << ", formula " << FormulaText;
  return SS.str();
}
