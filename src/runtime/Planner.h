//===- runtime/Planner.h - Spec-to-plan materialization ---------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FFTW-style plan half of the runtime layer. Planner turns a PlanSpec
/// ("fft, 1024 points, unroll 16") into an executable Plan: it consults the
/// persistent wisdom cache, runs the Section-4 dynamic-programming search on
/// a miss, compiles the winning formula through the full pipeline, and picks
/// the execution substrate by walking a degradation chain: natively compiled
/// C (proved by a guarded trial execution first), the i-code VM, and — when
/// even that fails — a dense matrix-vector oracle. Every failure along the
/// chain is a typed perf::KernelError or recorded reason, so fallback is a
/// decision, not a crash. See docs/RELIABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_RUNTIME_PLANNER_H
#define SPL_RUNTIME_PLANNER_H

#include "ir/Formula.h"
#include "runtime/Plan.h"
#include "search/PlanCache.h"
#include "support/Deadline.h"
#include "support/Diagnostics.h"

#include <memory>
#include <mutex>
#include <string>

namespace spl {
namespace search {
class Evaluator;
}
namespace runtime {

/// Planner-wide configuration (shared by every plan it builds).
struct PlannerOptions {
  /// Search cost model: "opcount" (deterministic, default) | "vmtime" |
  /// "native" (needs a working C compiler; degrades to opcount with a
  /// warning when there is none).
  std::string Evaluator = "opcount";

  /// Worker threads for candidate evaluation during searches.
  int SearchThreads = 1;

  /// Best-of-k repetitions for timed evaluators.
  int TimingRepeats = 2;

  /// Consult / record the persistent plan cache ("wisdom").
  bool UseWisdom = true;

  /// Wisdom file; empty means search::PlanCache::defaultPath().
  std::string WisdomPath;

  /// Candidate cap for the flat WHT search.
  int WhtCandidateCap = 24;

  /// Enables the persistent compiled-kernel cache (perf::KernelCache,
  /// docs/KERNEL_CACHE.md) at this directory; empty inherits the
  /// process-wide configuration (SPL_KERNEL_CACHE or tool flags).
  std::string KernelCacheDir;

  /// Force-disables the kernel cache regardless of environment or
  /// KernelCacheDir (the --no-kernel-cache flag).
  bool DisableKernelCache = false;

  /// Prove every newly compiled native kernel with a guarded trial
  /// execution (forked subprocess, wall-clock bounded by
  /// SPL_TRIAL_TIMEOUT_MS, default 5 s) before it joins the plan. A kernel
  /// that crashes, hangs, or emits non-finite output is demoted to the VM
  /// tier without harming the planning process.
  bool TrialExecution = true;

  /// Test hook: pretend every native kernel build fails, exercising the
  /// VM fallback path deterministically.
  bool ForceNativeFail = false;

  /// Default wall-clock budget per plan() call in milliseconds (0:
  /// unbounded). ~70% of the remaining budget goes to the search slice
  /// (which returns best-so-far on expiry), the rest bounds the compile +
  /// trial slice — so a budgeted plan degrades in tier under pressure
  /// instead of blocking. The deadline-bearing plan() overload takes
  /// precedence over this default.
  std::int64_t DeadlineMs = 0;
};

/// Why plan() returned null — lets the service layer answer a typed
/// DEADLINE_EXCEEDED instead of a generic planning failure.
enum class PlanError {
  None,             ///< plan() succeeded.
  InvalidSpec,      ///< validateSpec rejected the request.
  DeadlineExceeded, ///< The budget expired before any plan could be built.
  Failed,           ///< Search/compilation failed for a non-deadline reason.
};

/// Builds executable plans. Thread-safe: concurrent plan() calls share the
/// diagnostics engine and wisdom cache, both of which are internally locked.
class Planner {
public:
  explicit Planner(Diagnostics &Diags, PlannerOptions Opts = PlannerOptions());

  /// Materializes a plan for \p Spec. Returns null after reporting
  /// diagnostics when the spec is invalid or compilation fails. Budgeted by
  /// PlannerOptions::DeadlineMs.
  std::shared_ptr<Plan> plan(const PlanSpec &Spec);

  /// Deadline-bearing variant: plans under \p Deadline (unbounded deadlines
  /// behave exactly like plan(Spec)) and reports the typed reason for a
  /// null result through \p Err when non-null. A plan built under an
  /// expired deadline is marked Plan::deadlinePressured() so callers can
  /// choose not to memoize the degraded result.
  std::shared_ptr<Plan> plan(const PlanSpec &Spec,
                             const support::Deadline &Deadline,
                             PlanError *Err = nullptr);

  /// Checks \p Spec without planning: reports Diagnostics errors and
  /// returns false on an invalid transform/size/datatype combination.
  /// Tools use this to distinguish "bad request" from "planning failed".
  static bool validateSpec(const PlanSpec &Spec, Diagnostics &Diags);

  /// The per-kernel trial-execution deadline (SPL_TRIAL_TIMEOUT_MS,
  /// default 5 s).
  static double trialTimeoutSeconds();

  /// Persists accumulated wisdom (merge-on-save). No-op without UseWisdom.
  bool saveWisdom();

  /// The wisdom cache (exposed for stats and tests).
  search::PlanCache &wisdom() { return Wisdom; }

  const PlannerOptions &options() const { return Opts; }

  /// The wisdom path in effect (resolved default when unset).
  std::string wisdomPath() const;

private:
  std::unique_ptr<search::Evaluator>
  makeEvaluator(const std::string &Datatype, std::int64_t UnrollThreshold);

  /// Flat best-of-enumeration search for the WHT (wisdom-backed).
  bool chooseWHT(const PlanSpec &Spec, search::Evaluator &Eval,
                 FormulaRef &FOut, double &CostOut);

  Diagnostics &Diags;
  PlannerOptions Opts;
  search::PlanCache Wisdom;
  std::once_flag WisdomOnce;
};

} // namespace runtime
} // namespace spl

#endif // SPL_RUNTIME_PLANNER_H
