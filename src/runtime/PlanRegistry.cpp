//===- runtime/PlanRegistry.cpp - Shared plan memoization ---------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/PlanRegistry.h"

#include "telemetry/Metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace spl;
using namespace spl::runtime;

std::shared_ptr<Plan> PlanRegistry::acquire(const PlanSpec &Spec) {
  return acquire(Spec, support::Deadline(), nullptr);
}

std::shared_ptr<Plan> PlanRegistry::acquire(const PlanSpec &Spec,
                                            const support::Deadline &Deadline,
                                            PlanError *Err) {
  static telemetry::Counter &Hits = telemetry::counter("registry.hits");
  static telemetry::Counter &Misses = telemetry::counter("registry.misses");
  static telemetry::Counter &Waits = telemetry::counter("registry.waits");
  static telemetry::Gauge &Plans = telemetry::gauge("registry.plans");
  auto Report = [&](PlanError E) {
    if (Err)
      *Err = E;
  };
  Report(PlanError::None);
  const std::string Key = Spec.key();
  std::shared_ptr<Slot> Mine;
  {
    std::unique_lock<std::mutex> Lock(M);
    auto It = Slots.find(Key);
    if (It != Slots.end()) {
      std::shared_ptr<Slot> Theirs = It->second;
      if (Theirs->Ready) {
        ++S.Hits;
        Hits.add();
        if (!Theirs->P)
          Report(PlanError::Failed);
        return Theirs->P;
      }
      // Another thread is planning this spec right now; share its result —
      // but wait at most this caller's remaining budget. Timing out
      // abandons only the wait: the planning thread keeps going and its
      // result still lands in the memo for future callers.
      ++S.Waits;
      Waits.add();
      const double Remaining = Deadline.remainingSeconds();
      if (std::isfinite(Remaining)) {
        if (!Ready.wait_for(Lock,
                            std::chrono::duration<double>(
                                std::max(0.0, Remaining)),
                            [&] { return Theirs->Ready; })) {
          Report(PlanError::DeadlineExceeded);
          return nullptr;
        }
      } else {
        Ready.wait(Lock, [&] { return Theirs->Ready; });
      }
      if (!Theirs->P)
        Report(Deadline.expired() ? PlanError::DeadlineExceeded
                                  : PlanError::Failed);
      return Theirs->P;
    }
    Mine = std::make_shared<Slot>();
    Slots.emplace(Key, Mine);
    ++S.Misses;
    Misses.add();
    Plans.set(static_cast<std::int64_t>(Slots.size()));
  }

  // Plan outside the lock: planning can take seconds (search + compile) and
  // other specs must not queue behind it.
  std::shared_ptr<Plan> P = ThePlanner.plan(Spec, Deadline, Err);

  {
    std::lock_guard<std::mutex> Lock(M);
    Mine->Ready = true;
    Mine->P = P;
    if (!P || P->deadlinePressured()) {
      // Failures are retryable, not memoized — and a deadline-pressured
      // plan is a degraded artifact this caller may use but an unpressured
      // caller should not inherit. Guard against clear() having raced in:
      // only drop the entry if it is still ours.
      auto It = Slots.find(Key);
      if (It != Slots.end() && It->second == Mine)
        Slots.erase(It);
    }
    Plans.set(static_cast<std::int64_t>(Slots.size()));
  }
  Ready.notify_all();
  return P;
}

PlanRegistry::Stats PlanRegistry::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

size_t PlanRegistry::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Slots.size();
}

void PlanRegistry::clear() {
  std::lock_guard<std::mutex> Lock(M);
  // In-flight slots stay: their owners still hold the shared_ptr<Slot> and
  // will publish into it; dropping the map entry just forgets the memo.
  Slots.clear();
  telemetry::gauge("registry.plans").set(0);
}
