//===- runtime/PlanRegistry.cpp - Shared plan memoization ---------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/PlanRegistry.h"

#include "telemetry/Metrics.h"

using namespace spl;
using namespace spl::runtime;

std::shared_ptr<Plan> PlanRegistry::acquire(const PlanSpec &Spec) {
  static telemetry::Counter &Hits = telemetry::counter("registry.hits");
  static telemetry::Counter &Misses = telemetry::counter("registry.misses");
  static telemetry::Counter &Waits = telemetry::counter("registry.waits");
  static telemetry::Gauge &Plans = telemetry::gauge("registry.plans");
  const std::string Key = Spec.key();
  std::shared_ptr<Slot> Mine;
  {
    std::unique_lock<std::mutex> Lock(M);
    auto It = Slots.find(Key);
    if (It != Slots.end()) {
      std::shared_ptr<Slot> Theirs = It->second;
      if (Theirs->Ready) {
        ++S.Hits;
        Hits.add();
        return Theirs->P;
      }
      // Another thread is planning this spec right now; share its result.
      ++S.Waits;
      Waits.add();
      Ready.wait(Lock, [&] { return Theirs->Ready; });
      return Theirs->P;
    }
    Mine = std::make_shared<Slot>();
    Slots.emplace(Key, Mine);
    ++S.Misses;
    Misses.add();
    Plans.set(static_cast<std::int64_t>(Slots.size()));
  }

  // Plan outside the lock: planning can take seconds (search + compile) and
  // other specs must not queue behind it.
  std::shared_ptr<Plan> P = ThePlanner.plan(Spec);

  {
    std::lock_guard<std::mutex> Lock(M);
    Mine->Ready = true;
    Mine->P = P;
    if (!P) {
      // Failures are retryable, not memoized. Guard against clear() having
      // raced in: only drop the entry if it is still ours.
      auto It = Slots.find(Key);
      if (It != Slots.end() && It->second == Mine)
        Slots.erase(It);
    }
    Plans.set(static_cast<std::int64_t>(Slots.size()));
  }
  Ready.notify_all();
  return P;
}

PlanRegistry::Stats PlanRegistry::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

size_t PlanRegistry::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Slots.size();
}

void PlanRegistry::clear() {
  std::lock_guard<std::mutex> Lock(M);
  // In-flight slots stay: their owners still hold the shared_ptr<Slot> and
  // will publish into it; dropping the map entry just forgets the memo.
  Slots.clear();
  telemetry::gauge("registry.plans").set(0);
}
