//===- runtime/AlignedBuffer.h - Aligned scratch storage --------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cache-line-aligned double buffer used as per-worker scratch by the
/// runtime's batched dispatch. Alignment keeps each worker's scratch on its
/// own cache lines (no false sharing between workers) and lets back-end
/// compilers vectorize loads from it. resize() reuses the allocation when
/// the capacity suffices, so a worker context costs one allocation for the
/// lifetime of a plan, not one per execute call.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_RUNTIME_ALIGNEDBUFFER_H
#define SPL_RUNTIME_ALIGNEDBUFFER_H

#include <cstddef>
#include <new>
#include <utility>

namespace spl {
namespace runtime {

/// An uninitialized, 64-byte-aligned array of doubles. Move-only.
class AlignedBuffer {
public:
  static constexpr std::size_t Alignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t Count) { resize(Count); }

  AlignedBuffer(AlignedBuffer &&O) noexcept
      : Ptr(std::exchange(O.Ptr, nullptr)), Count(std::exchange(O.Count, 0)),
        Cap(std::exchange(O.Cap, 0)) {}
  AlignedBuffer &operator=(AlignedBuffer &&O) noexcept {
    if (this != &O) {
      release();
      Ptr = std::exchange(O.Ptr, nullptr);
      Count = std::exchange(O.Count, 0);
      Cap = std::exchange(O.Cap, 0);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer &) = delete;
  AlignedBuffer &operator=(const AlignedBuffer &) = delete;

  ~AlignedBuffer() { release(); }

  /// Ensures room for \p NewCount doubles. Contents are NOT preserved when
  /// the buffer grows (scratch semantics).
  void resize(std::size_t NewCount) {
    if (NewCount > Cap) {
      release();
      Ptr = static_cast<double *>(::operator new(
          NewCount * sizeof(double), std::align_val_t(Alignment)));
      Cap = NewCount;
    }
    Count = NewCount;
  }

  double *data() { return Ptr; }
  const double *data() const { return Ptr; }
  std::size_t size() const { return Count; }

private:
  void release() {
    if (Ptr)
      ::operator delete(Ptr, std::align_val_t(Alignment));
    Ptr = nullptr;
    Count = Cap = 0;
  }

  double *Ptr = nullptr;
  std::size_t Count = 0;
  std::size_t Cap = 0;
};

} // namespace runtime
} // namespace spl

#endif // SPL_RUNTIME_ALIGNEDBUFFER_H
