//===- runtime/Planner.cpp - Spec-to-plan materialization ---------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Planner.h"

#include "driver/Compiler.h"
#include "frontend/Parser.h"
#include "gen/Enumerate.h"
#include "ir/Builder.h"
#include "perf/KernelCache.h"
#include "search/DPSearch.h"
#include "search/Evaluator.h"
#include "support/FaultInjection.h"
#include "support/Subprocess.h"
#include "telemetry/Trace.h"
#include "transforms/Registry.h"

#include <algorithm>
#include <cmath>

using namespace spl;
using namespace spl::runtime;

namespace {

/// Normalized copy of \p Spec: transform/datatype defaults filled in from
/// the registry, total Size derived from a multi-dimensional Shape, and a
/// one-element Shape collapsed to the equivalent 1-D spec (so its key and
/// wisdom/kernel-cache identities match the plain 1-D form).
PlanSpec normalize(const PlanSpec &Spec) {
  PlanSpec S = Spec;
  if (S.Transform.empty())
    S.Transform = "fft";
  if (!S.Shape.empty()) {
    std::int64_t Prod = 1;
    for (std::int64_t D : S.Shape) {
      if (D < 1 || Prod > (std::int64_t(1) << 40) / std::max<std::int64_t>(D, 1)) {
        Prod = -1; // Poisoned: validateSpec rejects it as a bad size.
        break;
      }
      Prod *= D;
    }
    S.Size = Prod;
    if (S.Shape.size() == 1)
      S.Shape.clear();
  }
  if (S.Datatype.empty()) {
    const transforms::TransformInfo *TI = transforms::lookup(S.Transform);
    S.Datatype = TI ? TI->NaturalDatatype : "complex";
  }
  return S;
}

/// The dimensions a spec plans over: its Shape, or {Size} for 1-D.
std::vector<std::int64_t> planDims(const PlanSpec &S) {
  if (S.Shape.size() >= 2)
    return S.Shape;
  return {S.Size};
}

/// Row-major row-column formula: the Kronecker product of the per-dimension
/// formulas (Equation 2; FFTc builds N-D FFTs the same way).
FormulaRef tensorOfDims(std::vector<FormulaRef> Parts) {
  FormulaRef Out = std::move(Parts.front());
  for (size_t I = 1; I != Parts.size(); ++I)
    Out = makeTensor(std::move(Out), std::move(Parts[I]));
  return Out;
}

/// SubName / kernel-cache tag: "fft1024", "rdft64", "fft32x32".
std::string subNameFor(const PlanSpec &S) {
  std::string Name = S.Transform;
  if (S.Shape.size() >= 2) {
    for (size_t I = 0; I != S.Shape.size(); ++I)
      Name += (I ? "x" : "") + std::to_string(S.Shape[I]);
  } else {
    Name += std::to_string(S.Size);
  }
  return Name;
}

} // namespace

Planner::Planner(Diagnostics &Diags, PlannerOptions Opts)
    : Diags(Diags), Opts(std::move(Opts)), Wisdom(Diags) {
  // Pre-register the degradation-chain and kernel-cache counters so a
  // healthy run's metrics dump still shows them (as zeros) — absence would
  // be ambiguous. A warm run's whole point is native.compiles == 0, so
  // that zero in particular must be explicit. The vector-codegen metrics
  // are listed for the same reason: a scalar-only host must report them as
  // explicit zeros, not omit them.
  telemetry::counter("runtime.demote.vector");
  telemetry::counter("runtime.demote.native");
  telemetry::counter("runtime.demote.vm");
  telemetry::counter("runtime.deadline_exceeded");
  telemetry::counter("search.deadline_exceeded");
  telemetry::counter("runtime.breaker.trips");
  telemetry::counter("runtime.breaker.open");
  telemetry::counter("runtime.breaker.half_open");
  telemetry::counter("native.compiles");
  telemetry::counter("codegen.vector_kernels");
  telemetry::counter("search.vector_wins");
  telemetry::counter("search.scalar_wins");
  telemetry::histogram("codegen.vector_ns");
  telemetry::counter("kernelcache.hits");
  telemetry::counter("kernelcache.misses");
  telemetry::counter("kernelcache.inserts");
  telemetry::counter("kernelcache.evictions");
  telemetry::counter("kernelcache.corrupt_entries");
  // Kernel-cache overrides are applied here (process-wide: one compiler,
  // one cache) so spld's ServerOptions.Planner reaches it too.
  if (this->Opts.DisableKernelCache)
    perf::KernelCache::setEnabled(false);
  else if (!this->Opts.KernelCacheDir.empty())
    perf::KernelCache::setDirectory(this->Opts.KernelCacheDir);
}

std::string Planner::wisdomPath() const {
  return Opts.WisdomPath.empty() ? search::PlanCache::defaultPath()
                                 : Opts.WisdomPath;
}

bool Planner::saveWisdom() {
  if (!Opts.UseWisdom)
    return true;
  return Wisdom.save(wisdomPath());
}

std::unique_ptr<search::Evaluator>
Planner::makeEvaluator(const std::string &Datatype,
                       std::int64_t UnrollThreshold) {
  driver::CompilerOptions CO;
  CO.UnrollThreshold = UnrollThreshold;
  CO.EmitCode = false; // Costing needs i-code, not rendered text.
  std::unique_ptr<search::Evaluator> E;
  if (Opts.Evaluator == "vmtime") {
    E = std::make_unique<search::VMTimeEvaluator>(Diags, CO,
                                                  Opts.TimingRepeats);
  } else if (Opts.Evaluator == "native") {
    if (search::NativeTimeEvaluator::available()) {
      E = std::make_unique<search::NativeTimeEvaluator>(Diags, CO,
                                                        Opts.TimingRepeats);
    } else {
      Diags.warning(SourceLoc(), "no working C compiler for the nativetime "
                                 "cost model; using opcount instead");
      E = std::make_unique<search::OpCountEvaluator>(Diags, CO);
    }
  } else {
    E = std::make_unique<search::OpCountEvaluator>(Diags, CO);
  }
  E->setDatatype(Datatype);
  return E;
}

bool Planner::chooseWHT(const PlanSpec &Spec, search::Evaluator &Eval,
                        FormulaRef &FOut, double &CostOut) {
  search::PlanKey Key;
  Key.Transform = "wht-flat" + std::to_string(Opts.WhtCandidateCap);
  Key.Size = Spec.Size;
  Key.Datatype = Eval.datatype();
  Key.UnrollThreshold = Spec.UnrollThreshold;
  Key.Evaluator = Eval.kindName();
  Key.Host = search::PlanCache::hostFingerprint();

  if (Opts.UseWisdom) {
    if (auto Cached = Wisdom.lookup(Key); Cached && !Cached->empty()) {
      Diagnostics ParseDiags; // A stale entry degrades to a miss.
      FormulaRef F = parseFormulaString(Cached->front().FormulaText,
                                        ParseDiags);
      if (F && !ParseDiags.hasErrors() && !F->isPattern() &&
          F->inSize() == Spec.Size && F->outSize() == Spec.Size) {
        FOut = F;
        CostOut = Cached->front().Cost;
        return true;
      }
      Diags.warning(SourceLoc(),
                    "wisdom entry for wht " + std::to_string(Spec.Size) +
                        " does not round-trip; re-searching");
    }
  }

  auto Cands = gen::enumerateWHT(
      Spec.Size, static_cast<size_t>(Opts.WhtCandidateCap));
  FormulaRef Best;
  double BestCost = 0;
  for (const FormulaRef &F : Cands) {
    auto C = Eval.cost(F);
    if (!C)
      continue;
    if (!Best || *C < BestCost) { // First-minimum: deterministic winner.
      Best = F;
      BestCost = *C;
    }
  }
  if (!Best) {
    Diags.error(SourceLoc(), "no WHT candidate of size " +
                                 std::to_string(Spec.Size) +
                                 " survived evaluation");
    return false;
  }
  // Never record a deadline-truncated enumeration: the "winner" may just be
  // the first candidate scored before the budget ran out.
  if (Opts.UseWisdom && !Eval.deadline().expired())
    Wisdom.insert(Key, {search::PlanEntry{Best->print(), BestCost}});
  FOut = Best;
  CostOut = BestCost;
  return true;
}

double Planner::trialTimeoutSeconds() {
  return envTimeoutSeconds("SPL_TRIAL_TIMEOUT_MS", 5.0);
}

bool Planner::validateSpec(const PlanSpec &Spec, Diagnostics &Diags) {
  PlanSpec S = normalize(Spec);

  // Rejection diagnostics enumerate what the registry actually supports,
  // so the hint stays correct as transforms are added.
  const transforms::TransformInfo *TI = transforms::lookup(S.Transform);
  if (!TI) {
    Diags.error(SourceLoc(), "unknown transform '" + S.Transform +
                                 "' (supported: " +
                                 transforms::supportedNames() + ")");
    return false;
  }
  if (S.Size < 2) {
    Diags.error(SourceLoc(), "plan size must be >= 2 (got " +
                                 std::to_string(S.Size) + ")");
    return false;
  }
  if (S.Datatype != "complex" && S.Datatype != "real") {
    Diags.error(SourceLoc(), "unknown datatype '" + S.Datatype +
                                 "' (supported: " +
                                 transforms::supportedDatatypes() + ")");
    return false;
  }
  if (!transforms::allowsDatatype(*TI, S.Datatype)) {
    Diags.error(SourceLoc(), "the " + S.Transform + " transform requires " +
                                 std::string(TI->AllowedDatatypes) +
                                 " data (got " + S.Datatype + ")");
    return false;
  }
  if (S.Shape.size() >= 2) {
    if (!TI->SupportsND) {
      Diags.error(SourceLoc(),
                  "the " + S.Transform +
                      " transform does not support multi-dimensional "
                      "shapes (its halfcomplex packing is 1-D)");
      return false;
    }
    if (S.Shape.size() > 8) {
      Diags.error(SourceLoc(), "shapes are limited to 8 dimensions (got " +
                                   std::to_string(S.Shape.size()) + ")");
      return false;
    }
  }
  for (std::int64_t Dim : planDims(S)) {
    if (!TI->ValidSize(Dim, S.MaxLeaf)) {
      std::string Where =
          S.Shape.size() >= 2 ? " (each shape dimension)" : "";
      Diags.error(SourceLoc(), S.Transform + " sizes must be " +
                                   TI->SizeRule + Where + "; got " +
                                   std::to_string(Dim));
      return false;
    }
  }
  return true;
}

std::shared_ptr<Plan> Planner::plan(const PlanSpec &Spec) {
  return plan(Spec, support::Deadline::afterMs(Opts.DeadlineMs));
}

std::shared_ptr<Plan> Planner::plan(const PlanSpec &Spec,
                                    const support::Deadline &Deadline,
                                    PlanError *Err) {
  static telemetry::Histogram &PlanNs = telemetry::histogram("plan.total_ns");
  telemetry::StageTimer PlanTimer("plan", &PlanNs);
  auto Report = [&](PlanError E) {
    if (Err)
      *Err = E;
  };
  Report(PlanError::None);

  PlanSpec S = normalize(Spec);

  if (!validateSpec(S, Diags)) {
    Report(PlanError::InvalidSpec);
    return nullptr;
  }

  std::call_once(WisdomOnce, [&] {
    if (Opts.UseWisdom)
      Wisdom.load(wisdomPath());
  });

  const transforms::TransformInfo &TI = *transforms::lookup(S.Transform);
  // Halfcomplex transforms ride a complex kernel behind a layout adapter;
  // everything else compiles in the spec's own datatype.
  const std::string KernelType =
      TI.IOLayout == transforms::Layout::HalfComplex ? TI.KernelDatatype
                                                     : S.Datatype;
  const std::vector<std::int64_t> Dims = planDims(S);

  auto Eval = makeEvaluator(KernelType, S.UnrollThreshold);
  // In auto mode a timed evaluator races both codegen variants per
  // candidate and the DP records the winner; forced modes skip the race.
  Eval->setVariantSearch(S.Codegen == CodegenMode::Auto);
  // Budget split: the search gets ~70% of whatever remains, the rest stays
  // for compile + trial. The slice shares the cancel token, so cancelling
  // the parent deadline stops the search too. An unbounded deadline slices
  // to unbounded — zero cost on the common path.
  const support::Deadline SearchSlice = Deadline.slice(0.7);
  Eval->setDeadline(SearchSlice);
  FormulaRef Winner;
  double Cost = 0;
  codegen::CodegenVariant WonVariant = codegen::CodegenVariant::Scalar;
  {
    static telemetry::Histogram &SearchNs =
        telemetry::histogram("plan.search_ns");
    telemetry::StageTimer SearchTimer("search", &SearchNs);
    // Multi-dimensional specs plan the row-column algorithm: each
    // dimension is planned independently (reusing per-dimension wisdom)
    // and the winners join as a Kronecker product.
    std::vector<FormulaRef> Parts;
    switch (TI.PlanFamily) {
    case transforms::Family::SearchedFFT: {
      search::SearchOptions SO;
      SO.MaxLeaf = S.MaxLeaf;
      SO.Threads = Opts.SearchThreads;
      SO.Deadline = SearchSlice;
      // Wisdom for rdft is keyed under "rdft" even though the inner search
      // is over complex F_n factorizations — keys must distinguish the
      // transforms they were recorded for.
      SO.Transform = S.Transform;
      search::DPSearch Search(*Eval, Diags, SO,
                              Opts.UseWisdom ? &Wisdom : nullptr);
      std::int64_t BigDim = 0;
      for (std::int64_t Ni : Dims) {
        auto Best = Search.best(Ni);
        if (!Best) {
          Report(Deadline.expired() ? PlanError::DeadlineExceeded
                                    : PlanError::Failed);
          return nullptr;
        }
        Parts.push_back(Best->Formula);
        Cost += Best->Cost;
        if (Ni > BigDim) { // The dominant dimension picks the variant.
          BigDim = Ni;
          WonVariant = Best->Variant;
        }
      }
      break;
    }
    case transforms::Family::EnumeratedWHT: {
      for (std::int64_t Ni : Dims) {
        PlanSpec DimSpec = S;
        DimSpec.Size = Ni;
        DimSpec.Shape.clear();
        FormulaRef F;
        double C = 0;
        if (!chooseWHT(DimSpec, *Eval, F, C)) {
          Report(Deadline.expired() ? PlanError::DeadlineExceeded
                                    : PlanError::Failed);
          return nullptr;
        }
        Parts.push_back(F);
        Cost += C;
      }
      break;
    }
    case transforms::Family::Recursive: {
      for (std::int64_t Ni : Dims)
        Parts.push_back(TI.Rule(Ni));
      break;
    }
    }
    Winner = tensorOfDims(std::move(Parts));
    if (TI.PlanFamily == transforms::Family::Recursive) {
      // A deterministic rule has no search, but its evaluator cost is
      // still the comparable figure callers see in searchCost().
      if (auto C = Eval->cost(Winner))
        Cost = *C;
    }
  }

  driver::Compiler Compiler(Diags);
  driver::CompilerOptions CO;
  CO.UnrollThreshold = S.UnrollThreshold;
  CO.EmitCode = false; // Plans hold i-code; the backends render on demand.
  DirectiveState Dirs;
  Dirs.SubName = subNameFor(S);
  Dirs.Datatype = KernelType;
  Dirs.Language = "c";
  auto Unit = Compiler.compileFormula(Winner, Dirs, CO);
  if (!Unit) {
    Report(PlanError::Failed);
    return nullptr;
  }

  auto P = std::shared_ptr<Plan>(new Plan());
  P->Spec = S;
  P->Final = std::move(Unit->Final);
  P->Winner = Winner;
  P->FormulaText = Winner->print();
  P->Cost = Cost;
  P->KernelLen =
      P->Final.LoweredToReal ? P->Final.InSize * 2 : P->Final.InSize;
  P->IOLayout = TI.IOLayout == transforms::Layout::HalfComplex
                    ? Plan::Layout::HalfComplex
                    : (P->Final.LoweredToReal ? Plan::Layout::Interleaved
                                              : Plan::Layout::Real);
  P->IOLen =
      P->IOLayout == Plan::Layout::HalfComplex ? S.Size : P->KernelLen;

  // Walk the degradation chain vector -> native -> vm -> oracle, recording
  // why each tier was skipped. A tier only joins the plan after proving
  // itself.
  std::string Demotions;
  auto Demote = [&](const std::string &Tier, const std::string &Why) {
    if (!Demotions.empty())
      Demotions += "; ";
    Demotions += Tier + ": " + Why;
    telemetry::counter("runtime.demote." + Tier).add();
    Diags.note(SourceLoc(), Tier + " backend unavailable for " +
                                Dirs.SubName + " (" + Why + ")");
  };
  bool Placed = false;

  if (S.Want == Backend::Auto || S.Want == Backend::Native) {
    // Which kernel shape the native tier should try first: forced by the
    // spec, or (auto) whatever variant won the search.
    codegen::CodegenVariant Desired = codegen::CodegenVariant::Scalar;
    if (S.Codegen == CodegenMode::Vector)
      Desired = codegen::CodegenVariant::Vector;
    else if (S.Codegen == CodegenMode::Auto)
      Desired = WonVariant;

    // Builds (and, when configured, trial-proves) one kernel variant.
    auto Build = [&](codegen::CodegenVariant V, perf::KernelError &Err)
        -> std::unique_ptr<perf::CompiledKernel> {
      if (Opts.ForceNativeFail) {
        Err = perf::KernelError{perf::KernelErrorKind::CompileFailed,
                                "forced failure "
                                "(PlannerOptions::ForceNativeFail)"};
        return nullptr;
      }
      perf::KernelBuildOptions BO;
      BO.ThreadSafe = true; // Batch dispatch runs one kernel on many threads.
      BO.Variant = V;
      BO.Deadline = Deadline; // Compile runs under the remaining budget.
      auto K = perf::CompiledKernel::create(P->Final, &Err, BO);
      if (K && Opts.TrialExecution) {
        // The trial guard gets min(SPL_TRIAL_TIMEOUT_MS, remaining). An
        // unproven kernel never joins the plan, so a spent budget demotes
        // to the VM tier rather than skipping the proof.
        double TrialBudget = trialTimeoutSeconds();
        const double Remaining = Deadline.remainingSeconds();
        if (Remaining <= 0) {
          Err = perf::KernelError{
              perf::KernelErrorKind::TrialFailed,
              "trial execution skipped: the planning deadline is spent"};
          K.reset();
          return K;
        }
        if (std::isfinite(Remaining))
          TrialBudget = std::min(TrialBudget, Remaining);
        auto Trial = K->trial(TrialBudget);
        if (!Trial.Ok) {
          Err = perf::KernelError{perf::KernelErrorKind::TrialFailed,
                                  Trial.Reason};
          K.reset();
        }
      }
      return K;
    };

    perf::KernelError KErr;
    std::unique_ptr<perf::CompiledKernel> Kernel;
    if (Desired == codegen::CodegenVariant::Vector) {
      if (!codegen::vectorBackendAvailable()) {
        Demote("vector", "no SIMD ISA on this host (probe reports scalar)");
      } else {
        perf::KernelError VErr;
        Kernel = Build(codegen::CodegenVariant::Vector, VErr);
        if (!Kernel)
          Demote("vector", VErr.str());
      }
    }
    if (!Kernel)
      Kernel = Build(codegen::CodegenVariant::Scalar, KErr);
    if (Kernel) {
      P->Native = std::move(Kernel);
      P->Resolved = Backend::Native;
      P->Lanes = P->Native->lanes();
      Placed = true;
    } else {
      Demote("native", KErr.str());
    }
  }

  if (!Placed && S.Want != Backend::Oracle) {
    // Prove the interpreter on this program once: one in-process run on
    // zero input must produce finite output (the VM cannot take the
    // process down the way a bad native kernel can).
    std::string VMErr;
    if (fault::at("vm-exec")) {
      VMErr = fault::describe("vm-exec");
    } else {
      vm::Executor VM(P->Final);
      std::vector<double> In(static_cast<size_t>(VM.inputLen()), 0.0);
      std::vector<double> Out(static_cast<size_t>(VM.outputLen()), 0.0);
      VM.runReal(In.data(), Out.data());
      for (double V : Out)
        if (!std::isfinite(V)) {
          VMErr = "interpreted program produced non-finite output";
          break;
        }
    }
    if (VMErr.empty()) {
      P->Resolved = Backend::VM;
      Placed = true;
    } else {
      Demote("vm", VMErr);
    }
  }

  if (!Placed) {
    // Last tier: the registered dense oracle of the transform (for
    // halfcomplex plans, whose winner formula denotes the complex FFT, not
    // the user-facing matrix) or the dense matrix the formula denotes.
    // O(N^2) per transform and O(N^2) doubles of storage, so capped.
    constexpr std::int64_t OracleSizeCap = 4096;
    const bool UseRegistryOracle =
        P->IOLayout == Plan::Layout::HalfComplex;
    if (S.Size > OracleSizeCap ||
        (!UseRegistryOracle && !Winner->hasDenseSemantics())) {
      Diags.error(SourceLoc(),
                  "no usable backend for " + Dirs.SubName +
                      (Demotions.empty() ? std::string()
                                         : " (" + Demotions + ")") +
                      "; the dense oracle tier " +
                      (S.Size > OracleSizeCap
                           ? "is capped at size " +
                                 std::to_string(OracleSizeCap)
                           : std::string(
                                 "needs a formula with dense semantics")));
      Report(PlanError::Failed);
      return nullptr;
    }
    P->OracleMat = UseRegistryOracle ? transforms::oracleMatrix(TI, Dims)
                                     : Winner->toMatrix();
    P->Resolved = Backend::Oracle;
  }

  if (!Demotions.empty()) {
    P->Fallback = true;
    P->FallbackReason = Demotions;
    Diags.note(SourceLoc(), "plan for " + Dirs.SubName + " degraded to the " +
                                std::string(backendName(P->Resolved)) +
                                " backend");
  }

  // A plan finished after its deadline expired is a degraded artifact:
  // search was truncated and/or the native tier was skipped. Mark it so
  // PlanRegistry declines to memoize it for unpressured callers.
  P->Pressured = Deadline.expired();

  // Pre-warm one execution context: validates the program in the VM case
  // and sizes the aligned scratch, so the first execute() is allocation-free.
  P->releaseCtx(P->acquireCtx());
  return P;
}
