//===- runtime/Planner.cpp - Spec-to-plan materialization ---------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Planner.h"

#include "driver/Compiler.h"
#include "frontend/Parser.h"
#include "gen/Enumerate.h"
#include "search/DPSearch.h"
#include "search/Evaluator.h"

using namespace spl;
using namespace spl::runtime;

namespace {

bool isPow2(std::int64_t N) { return N >= 2 && (N & (N - 1)) == 0; }

/// Normalized copy of \p Spec: transform/datatype defaults filled in.
PlanSpec normalize(const PlanSpec &Spec) {
  PlanSpec S = Spec;
  if (S.Transform.empty())
    S.Transform = "fft";
  if (S.Datatype.empty())
    S.Datatype = S.Transform == "wht" ? "real" : "complex";
  return S;
}

} // namespace

Planner::Planner(Diagnostics &Diags, PlannerOptions Opts)
    : Diags(Diags), Opts(std::move(Opts)), Wisdom(Diags) {}

std::string Planner::wisdomPath() const {
  return Opts.WisdomPath.empty() ? search::PlanCache::defaultPath()
                                 : Opts.WisdomPath;
}

bool Planner::saveWisdom() {
  if (!Opts.UseWisdom)
    return true;
  return Wisdom.save(wisdomPath());
}

std::unique_ptr<search::Evaluator>
Planner::makeEvaluator(const std::string &Datatype,
                       std::int64_t UnrollThreshold) {
  driver::CompilerOptions CO;
  CO.UnrollThreshold = UnrollThreshold;
  CO.EmitCode = false; // Costing needs i-code, not rendered text.
  std::unique_ptr<search::Evaluator> E;
  if (Opts.Evaluator == "vmtime") {
    E = std::make_unique<search::VMTimeEvaluator>(Diags, CO,
                                                  Opts.TimingRepeats);
  } else if (Opts.Evaluator == "native") {
    if (search::NativeTimeEvaluator::available()) {
      E = std::make_unique<search::NativeTimeEvaluator>(Diags, CO,
                                                        Opts.TimingRepeats);
    } else {
      Diags.warning(SourceLoc(), "no working C compiler for the nativetime "
                                 "cost model; using opcount instead");
      E = std::make_unique<search::OpCountEvaluator>(Diags, CO);
    }
  } else {
    E = std::make_unique<search::OpCountEvaluator>(Diags, CO);
  }
  E->setDatatype(Datatype);
  return E;
}

bool Planner::chooseWHT(const PlanSpec &Spec, search::Evaluator &Eval,
                        FormulaRef &FOut, double &CostOut) {
  search::PlanKey Key;
  Key.Transform = "wht-flat" + std::to_string(Opts.WhtCandidateCap);
  Key.Size = Spec.Size;
  Key.Datatype = Eval.datatype();
  Key.UnrollThreshold = Spec.UnrollThreshold;
  Key.Evaluator = Eval.kindName();
  Key.Host = search::PlanCache::hostFingerprint();

  if (Opts.UseWisdom) {
    if (auto Cached = Wisdom.lookup(Key); Cached && !Cached->empty()) {
      Diagnostics ParseDiags; // A stale entry degrades to a miss.
      FormulaRef F = parseFormulaString(Cached->front().FormulaText,
                                        ParseDiags);
      if (F && !ParseDiags.hasErrors() && !F->isPattern() &&
          F->inSize() == Spec.Size && F->outSize() == Spec.Size) {
        FOut = F;
        CostOut = Cached->front().Cost;
        return true;
      }
      Diags.warning(SourceLoc(),
                    "wisdom entry for wht " + std::to_string(Spec.Size) +
                        " does not round-trip; re-searching");
    }
  }

  auto Cands = gen::enumerateWHT(
      Spec.Size, static_cast<size_t>(Opts.WhtCandidateCap));
  FormulaRef Best;
  double BestCost = 0;
  for (const FormulaRef &F : Cands) {
    auto C = Eval.cost(F);
    if (!C)
      continue;
    if (!Best || *C < BestCost) { // First-minimum: deterministic winner.
      Best = F;
      BestCost = *C;
    }
  }
  if (!Best) {
    Diags.error(SourceLoc(), "no WHT candidate of size " +
                                 std::to_string(Spec.Size) +
                                 " survived evaluation");
    return false;
  }
  if (Opts.UseWisdom)
    Wisdom.insert(Key, {search::PlanEntry{Best->print(), BestCost}});
  FOut = Best;
  CostOut = BestCost;
  return true;
}

std::shared_ptr<Plan> Planner::plan(const PlanSpec &Spec) {
  PlanSpec S = normalize(Spec);

  if (S.Size < 2) {
    Diags.error(SourceLoc(), "plan size must be >= 2 (got " +
                                 std::to_string(S.Size) + ")");
    return nullptr;
  }
  if (S.Datatype != "complex" && S.Datatype != "real") {
    Diags.error(SourceLoc(), "unknown datatype '" + S.Datatype + "'");
    return nullptr;
  }
  if (S.Transform == "fft") {
    if (S.Datatype != "complex") {
      Diags.error(SourceLoc(), "the fft transform requires complex data");
      return nullptr;
    }
    if (S.Size > S.MaxLeaf && !isPow2(S.Size)) {
      Diags.error(SourceLoc(),
                  "fft sizes above the search leaf must be powers of two");
      return nullptr;
    }
  } else if (S.Transform == "wht") {
    if (!isPow2(S.Size)) {
      Diags.error(SourceLoc(), "wht sizes must be powers of two");
      return nullptr;
    }
  } else {
    Diags.error(SourceLoc(), "unknown transform '" + S.Transform +
                                 "' (expected fft or wht)");
    return nullptr;
  }

  std::call_once(WisdomOnce, [&] {
    if (Opts.UseWisdom)
      Wisdom.load(wisdomPath());
  });

  auto Eval = makeEvaluator(S.Datatype, S.UnrollThreshold);
  FormulaRef Winner;
  double Cost = 0;
  if (S.Transform == "fft") {
    search::SearchOptions SO;
    SO.MaxLeaf = S.MaxLeaf;
    SO.Threads = Opts.SearchThreads;
    search::DPSearch Search(*Eval, Diags, SO,
                            Opts.UseWisdom ? &Wisdom : nullptr);
    auto Best = Search.best(S.Size);
    if (!Best)
      return nullptr;
    Winner = Best->Formula;
    Cost = Best->Cost;
  } else {
    if (!chooseWHT(S, *Eval, Winner, Cost))
      return nullptr;
  }

  driver::Compiler Compiler(Diags);
  driver::CompilerOptions CO;
  CO.UnrollThreshold = S.UnrollThreshold;
  CO.EmitCode = false; // Plans hold i-code; the backends render on demand.
  DirectiveState Dirs;
  Dirs.SubName = S.Transform + std::to_string(S.Size);
  Dirs.Datatype = S.Datatype;
  Dirs.Language = "c";
  auto Unit = Compiler.compileFormula(Winner, Dirs, CO);
  if (!Unit)
    return nullptr;

  auto P = std::shared_ptr<Plan>(new Plan());
  P->Spec = S;
  P->Final = std::move(Unit->Final);
  P->FormulaText = Winner->print();
  P->Cost = Cost;
  P->IOLen = P->Final.LoweredToReal ? P->Final.InSize * 2 : P->Final.InSize;

  if (S.Want == Backend::VM) {
    P->Resolved = Backend::VM;
  } else {
    perf::KernelError KErr;
    std::unique_ptr<perf::CompiledKernel> Kernel;
    if (Opts.ForceNativeFail) {
      KErr = perf::KernelError{perf::KernelErrorKind::CompileFailed,
                               "forced failure "
                               "(PlannerOptions::ForceNativeFail)"};
    } else {
      perf::KernelBuildOptions BO;
      BO.ThreadSafe = true; // Batch dispatch runs one kernel on many threads.
      Kernel = perf::CompiledKernel::create(P->Final, &KErr, BO);
    }
    if (Kernel) {
      P->Native = std::move(Kernel);
      P->Resolved = Backend::Native;
    } else {
      P->Resolved = Backend::VM;
      P->Fallback = true;
      P->FallbackReason = KErr.str();
      Diags.note(SourceLoc(), "native backend unavailable for " +
                                  Dirs.SubName + " (" + KErr.str() +
                                  "); falling back to the VM");
    }
  }

  // Pre-warm one execution context: validates the program in the VM case
  // and sizes the aligned scratch, so the first execute() is allocation-free.
  P->releaseCtx(P->acquireCtx());
  return P;
}
