//===- runtime/Plan.h - Executable transform plans --------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FFTW-style execute half of the runtime layer. A Plan is the
/// materialized end product of the paper's generate-search-time loop: one
/// searched, compiled transform, ready to apply to data — as natively
/// compiled machine code (perf::CompiledKernel), on the portable i-code VM
/// (vm::Executor), or — last resort — as a dense matrix-vector product.
/// The tier is chosen at plan time by runtime::Planner's degradation chain
/// (native -> vm -> oracle); see docs/RELIABILITY.md.
///
/// Plans are built by runtime::Planner, shared through runtime::PlanRegistry,
/// and applied with execute() (one vector) or executeBatch() (many vectors,
/// sharded across a worker pool). All execution entry points are thread-safe:
/// worker state (a VM instance plus aligned scratch) lives in a checkout pool
/// of contexts, so concurrent callers never share mutable state.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_RUNTIME_PLAN_H
#define SPL_RUNTIME_PLAN_H

#include "icode/ICode.h"
#include "ir/Formula.h"
#include "ir/Matrix.h"
#include "perf/KernelRunner.h"
#include "runtime/AlignedBuffer.h"
#include "support/Deadline.h"
#include "support/ThreadPool.h"
#include "telemetry/Metrics.h"
#include "vm/Executor.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spl {
namespace runtime {

/// Which execution substrate a plan should (or does) use.
enum class Backend {
  Auto,   ///< Prefer native, fall back to the VM (request only).
  VM,     ///< Interpret i-code (always available).
  Native, ///< Natively compiled C; falls back to VM if compilation fails.
  Oracle, ///< Dense matrix-vector product — the last degradation tier.
};

/// Stable lowercase token ("auto" | "vm" | "native" | "oracle").
const char *backendName(Backend B);

/// Parses a backend token; returns false on an unknown name.
bool parseBackend(const std::string &Name, Backend &Out);

/// Which codegen variant a plan should use for its native kernel (the
/// --codegen flag). Orthogonal to Backend: Backend picks the execution
/// substrate, CodegenMode picks what the native substrate's kernel looks
/// like.
enum class CodegenMode {
  Auto,   ///< Follow the searched winner (wisdom v3 records the variant).
  Scalar, ///< Force plain C (one transform per kernel call).
  Vector, ///< Force the SIMD backend; demotes to scalar if it cannot run.
};

/// Stable lowercase token ("auto" | "scalar" | "vector").
const char *codegenModeName(CodegenMode M);

/// Parses a codegen-mode token; returns false on an unknown name.
bool parseCodegenMode(const std::string &Name, CodegenMode &Out);

/// Everything that identifies a plan. Two specs with equal key() are
/// interchangeable and PlanRegistry will hand out one shared Plan for them.
struct PlanSpec {
  std::string Transform = "fft"; ///< A transforms::Registry name.
  std::int64_t Size = 0;         ///< Total transform size N (product of
                                 ///< Shape when multi-dimensional).

  /// Row-major N-D shape for row-column plans. Empty (or one entry equal
  /// to Size) means 1-D; {N1, N2} plans the separable transform
  /// M_{N1} (x) M_{N2} over row-major data.
  std::vector<std::int64_t> Shape;

  /// "complex" | "real"; empty picks the transform's natural type from the
  /// registry (fft: complex; wht, rdft, dct2/3/4: real).
  std::string Datatype;

  /// The -B threshold candidates compile under.
  std::int64_t UnrollThreshold = 16;

  /// Largest straight-line sub-transform in the search space.
  std::int64_t MaxLeaf = 16;

  /// Requested substrate.
  Backend Want = Backend::Auto;

  /// Requested codegen variant for the native kernel (--codegen).
  CodegenMode Codegen = CodegenMode::Auto;

  /// Canonical registry key, e.g. "fft 1024 complex B16 L16 auto auto"
  /// (multi-dimensional specs append " S<N1>x<N2>...").
  std::string key() const;
};

/// FFTW-"advanced"-interface data layout for strided/batched execution.
/// Strides and dists are in doubles over the plan's vectorLen() doubles:
/// double s of vector v reads from X[v * DistX + s * StrideX] (for complex
/// plans the k-th point's re/im therefore sit at 2k*Stride and
/// (2k+1)*Stride). A Dist of 0 means densely packed back-to-back given the
/// stride, i.e. (vectorLen()-1)*Stride + 1. The addressed elements of
/// distinct vectors must not overlap (interleaved layouts such as
/// Stride = HowMany, Dist = 1 are fine).
struct BatchLayout {
  std::int64_t HowMany = 1;  ///< Number of vectors.
  std::int64_t StrideX = 1;  ///< Input element stride, >= 1.
  std::int64_t DistX = 0;    ///< Input vector-to-vector distance.
  std::int64_t StrideY = 1;  ///< Output element stride, >= 1.
  std::int64_t DistY = 0;    ///< Output vector-to-vector distance.
};

/// Point-in-time execution statistics for one Plan (see Plan::stats()).
/// Populated only while telemetry metrics are armed (SPL_METRICS=1,
/// telemetry::setMetricsEnabled, or a tool's --stats-json flag) — the
/// disarmed execute path stays a single relaxed atomic load.
struct ExecStats {
  std::uint64_t Executes = 0; ///< execute() calls.
  std::uint64_t Batches = 0;  ///< executeBatch() calls.
  std::uint64_t Vectors = 0;  ///< Vectors processed across those batches.
  telemetry::HistogramSnapshot ExecuteNs; ///< Single-vector execute latency.
  telemetry::HistogramSnapshot BatchNs;   ///< Whole-batch latency.
};

/// Outcome of a deadline-bearing execute call. Execution is all-or-nothing
/// per vector (a vector is never half-written), but a batch cancelled
/// mid-flight leaves untouched output slots for the vectors it skipped.
enum class ExecStatus {
  Ok,               ///< Every requested vector was computed.
  DeadlineExceeded, ///< The deadline expired; remaining vectors were skipped.
};

/// An executable transform plan: y = Mx for the searched winner M.
///
/// Buffers are raw double arrays. For complex transforms (LoweredToReal),
/// a logical vector of N complex points occupies vectorLen() == 2N doubles
/// as interleaved (re,im) pairs; real transforms use N doubles.
class Plan {
public:
  /// User-facing I/O layout (mirrors transforms::Layout): Interleaved
  /// complex pairs, plain real, or real-in/halfcomplex-out (rdft).
  enum class Layout { Interleaved, Real, HalfComplex };

  const PlanSpec &spec() const { return Spec; }

  /// The layout of one user-facing vector of vectorLen() doubles.
  Layout layout() const { return IOLayout; }

  /// The substrate this plan actually runs on — the tier the degradation
  /// chain vector -> native -> vm -> oracle landed on (never Auto).
  Backend backend() const { return Resolved; }

  /// The codegen variant of the native kernel (Scalar off the native tier).
  codegen::CodegenVariant codegenVariant() const {
    return Native ? Native->variant() : codegen::CodegenVariant::Scalar;
  }

  /// Transform columns per native kernel call: 1 for scalar kernels,
  /// the SIMD lane count for vector kernels. Batches are cut into lane
  /// groups internally; callers never see the staging layout.
  int lanes() const { return Lanes; }

  /// Logical transform size N.
  std::int64_t size() const { return Spec.Size; }

  /// Doubles per input/output vector (2N for complex data, N for real).
  std::int64_t vectorLen() const { return IOLen; }

  /// The winning formula in SPL syntax (wisdom serialization format).
  const std::string &formulaText() const { return FormulaText; }

  /// The winning formula itself; lets callers build an independent dense
  /// oracle (Formula::toMatrix) to verify the plan's output.
  const FormulaRef &formula() const { return Winner; }

  /// The winner's search cost (units depend on the planner's evaluator).
  double searchCost() const { return Cost; }

  /// True when the plan runs on a lower tier than requested (the
  /// degradation chain demoted it); fallbackReason() accumulates why.
  bool usedFallback() const { return Fallback; }
  const std::string &fallbackReason() const { return FallbackReason; }

  /// True when the plan was built after its planning deadline had already
  /// expired — it works, but search and/or the native tier were truncated.
  /// PlanRegistry refuses to memoize pressured plans so an unpressured
  /// caller can rebuild the full-quality plan later.
  bool deadlinePressured() const { return Pressured; }

  /// The compiled i-code (shared with every VM worker context).
  const icode::Program &program() const { return Final; }

  /// Applies the plan to one vector: Y = M X. Thread-safe; Y == X runs
  /// in place through aligned scratch. Partial overlap is undefined.
  void execute(double *Y, const double *X);

  /// Applies the plan to \p Count vectors. Vector i reads from
  /// X + i*StrideX and writes to Y + i*StrideY; a stride of 0 means densely
  /// packed (vectorLen()). With Threads > 1 the batch is cut into one
  /// contiguous chunk per worker and dispatched on an internal ThreadPool;
  /// results are bit-identical for every thread count, since each vector is
  /// computed by exactly the same code whichever worker it lands on.
  ///
  /// Thread-safe; concurrent multi-threaded batches serialize on the pool
  /// (single-threaded calls and execute() never block each other).
  void executeBatch(double *Y, const double *X, std::int64_t Count,
                    int Threads = 1, std::int64_t StrideY = 0,
                    std::int64_t StrideX = 0);

  /// Deadline-bearing execute: refuses to start when \p DL is already
  /// expired and returns ExecStatus::DeadlineExceeded (Y untouched).
  /// An unbounded deadline costs one relaxed atomic load over the plain
  /// overload. Bumps runtime.deadline_exceeded on expiry.
  ExecStatus execute(double *Y, const double *X, const support::Deadline &DL);

  /// Deadline-bearing batch execute: checks the deadline cooperatively
  /// between vectors (every vector serially; each worker checks its own
  /// chunk and a shared stop flag when Threads > 1) and stops dispatching
  /// new vectors once it expires. Vectors already computed keep their
  /// results — identical bit-for-bit to an unpressured run — and skipped
  /// output slots are left untouched. Returns DeadlineExceeded when any
  /// vector was skipped.
  ExecStatus executeBatch(double *Y, const double *X, std::int64_t Count,
                          const support::Deadline &DL, int Threads = 1,
                          std::int64_t StrideY = 0, std::int64_t StrideX = 0);

  /// FFTW-advanced-style strided/batched execute (see BatchLayout). Unit
  /// element strides delegate to the dense batch path; otherwise vectors
  /// are gathered through aligned staging, executed densely, and scattered
  /// back. Deadline semantics match executeBatch: vectors skipped on expiry
  /// leave their output elements untouched. Thread-safe.
  ExecStatus executeBatch(double *Y, const double *X, const BatchLayout &L,
                          const support::Deadline &DL = support::Deadline(),
                          int Threads = 1);

  /// One-line human description ("fft 1024: native, 2048 doubles/vector,
  /// ...").
  std::string describe() const;

  /// Snapshot of this plan's execution counters and latency histograms.
  /// Counts accumulate only while telemetry metrics are armed.
  ExecStats stats() const;

private:
  friend class Planner;
  Plan() = default;

  /// Per-worker execution state: a VM instance (VM backend only; the native
  /// kernel is reentrant and shared) plus aligned scratch for in-place runs
  /// and, for vector kernels, the slot-major lane-staging buffers.
  struct ExecCtx {
    std::unique_ptr<vm::Executor> VM;
    AlignedBuffer Scratch;
    AlignedBuffer PackX, PackY; ///< Lanes * KernelLen doubles each.
    /// Kernel-facing interleaved staging for halfcomplex plans (the rdft
    /// layout adapter): KernelLen doubles each.
    AlignedBuffer KernIn, KernOut;
  };

  std::unique_ptr<ExecCtx> acquireCtx();
  void releaseCtx(std::unique_ptr<ExecCtx> Ctx);
  void runOne(ExecCtx &Ctx, double *Y, const double *X);
  /// Runs one lane group of a vector kernel: packs \p K vectors (tail
  /// lanes zero-filled — lane independence makes the padding inert) into
  /// slot-major staging, runs the kernel once, unpacks K results.
  void runGroup(ExecCtx &Ctx, double *Y, const double *X, std::int64_t K,
                std::int64_t StrideY, std::int64_t StrideX);
  /// Shared batch core. \p DL / \p Stopped are the cooperative-cancel
  /// hooks: null Stopped (the legacy path) skips every check.
  bool runBatch(double *Y, const double *X, std::int64_t Count, int Threads,
                std::int64_t StrideY, std::int64_t StrideX,
                const support::Deadline &DL);
  void applyOracle(double *Y, const double *X) const;
  /// Runs the kernel-facing substrate on interleaved buffers (the inner
  /// step of the halfcomplex adapter).
  void runKernel(ExecCtx &Ctx, double *KY, const double *KX);

  PlanSpec Spec;
  Backend Resolved = Backend::VM;
  icode::Program Final;
  std::unique_ptr<perf::CompiledKernel> Native; ///< Null off the native tier.
  Matrix OracleMat; ///< Dense winner matrix (oracle tier only).
  FormulaRef Winner;
  std::string FormulaText;
  double Cost = 0;
  bool Fallback = false;
  bool Pressured = false; ///< Built after its planning deadline expired.
  std::string FallbackReason;
  std::int64_t IOLen = 0;     ///< Doubles per user-facing vector.
  std::int64_t KernelLen = 0; ///< Doubles per kernel-facing vector (2N for
                              ///< halfcomplex plans, else == IOLen).
  Layout IOLayout = Layout::Interleaved;
  int Lanes = 1; ///< Native->lanes() for vector kernels, else 1.

  std::mutex CtxM;
  std::vector<std::unique_ptr<ExecCtx>> FreeCtxs;

  std::mutex BatchM;
  std::unique_ptr<ThreadPool> Pool; ///< Rebuilt when the thread count moves.
  int PoolThreads = 0;

  // Per-plan telemetry, written only on the armed execute paths.
  std::atomic<std::uint64_t> NumExecutes{0};
  std::atomic<std::uint64_t> NumBatches{0};
  std::atomic<std::uint64_t> NumVectors{0};
  telemetry::Histogram ExecuteNs;
  telemetry::Histogram BatchNs;
};

} // namespace runtime
} // namespace spl

#endif // SPL_RUNTIME_PLAN_H
