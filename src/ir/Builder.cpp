//===- ir/Builder.cpp - Formula factory functions --------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include <algorithm>

using namespace spl;

namespace spl {

/// Internal helper with access to Formula's private members.
class FormulaFactory {
public:
  static std::shared_ptr<Formula> create(FKind Kind, SourceLoc Loc) {
    auto F = std::shared_ptr<Formula>(new Formula());
    F->Kind = Kind;
    F->Loc = Loc;
    return F;
  }
  static void setParams(Formula &F, std::vector<IntArg> Params) {
    F.Params = std::move(Params);
  }
  static void setChildren(Formula &F, std::vector<FormulaRef> Children) {
    F.Children = std::move(Children);
  }
  static void setMatrixRows(Formula &F, std::vector<std::vector<Cplx>> Rows) {
    F.MatrixRows = std::move(Rows);
  }
  static void setDiagElems(Formula &F, std::vector<Cplx> Elems) {
    F.DiagElems = std::move(Elems);
  }
  static void setPermTargets(Formula &F, std::vector<std::int64_t> Targets) {
    F.PermTargets = std::move(Targets);
  }
  static void setVarName(Formula &F, std::string Name) {
    F.VarName = std::move(Name);
  }
  static void setSizes(Formula &F, std::int64_t In, std::int64_t Out) {
    F.InSize = In;
    F.OutSize = Out;
  }
  static void setUnrollHint(Formula &F, bool On) { F.UnrollHint = On; }
  static std::shared_ptr<Formula> clone(const Formula &F) {
    return std::shared_ptr<Formula>(new Formula(F));
  }
};

} // namespace spl

namespace {

/// Builds a square parameterized matrix whose size is its parameter \p N
/// (valid for I, F, WHT, DCT2, DCT4).
FormulaRef makeSquareParam(FKind Kind, IntArg N, SourceLoc Loc) {
  assert((N.isVar() || N.Value > 0) && "matrix size must be positive");
  auto F = FormulaFactory::create(Kind, Loc);
  FormulaFactory::setParams(*F, {N});
  if (!N.isVar())
    FormulaFactory::setSizes(*F, N.Value, N.Value);
  return F;
}

/// Builds L or T, which take parameters (mn, n) with n | mn.
FormulaRef makeStrideLike(FKind Kind, IntArg MN, IntArg N, SourceLoc Loc) {
  auto F = FormulaFactory::create(Kind, Loc);
  FormulaFactory::setParams(*F, {MN, N});
  if (!MN.isVar() && !N.isVar()) {
    assert(MN.Value > 0 && N.Value > 0 && MN.Value % N.Value == 0 &&
           "L/T parameters require n | mn");
    FormulaFactory::setSizes(*F, MN.Value, MN.Value);
  }
  return F;
}

/// Folds a non-empty list right-to-left with the given binary builder,
/// matching the parser's association rule for n-ary forms.
FormulaRef foldRight(std::vector<FormulaRef> Fs,
                     FormulaRef (*Bin)(FormulaRef, FormulaRef, SourceLoc),
                     SourceLoc Loc) {
  assert(!Fs.empty() && "n-ary operator needs at least one operand");
  FormulaRef Acc = Fs.back();
  for (size_t I = Fs.size() - 1; I-- > 0;)
    Acc = Bin(Fs[I], Acc, Loc);
  return Acc;
}

} // namespace

FormulaRef spl::makeIdentity(IntArg N, SourceLoc Loc) {
  return makeSquareParam(FKind::Identity, N, Loc);
}

FormulaRef spl::makeDFT(IntArg N, SourceLoc Loc) {
  return makeSquareParam(FKind::DFT, N, Loc);
}

FormulaRef spl::makeWHT(IntArg N, SourceLoc Loc) {
  assert((N.isVar() || (N.Value & (N.Value - 1)) == 0) &&
         "WHT size must be a power of two");
  return makeSquareParam(FKind::WHT, N, Loc);
}

FormulaRef spl::makeDCT2(IntArg N, SourceLoc Loc) {
  return makeSquareParam(FKind::DCT2, N, Loc);
}

FormulaRef spl::makeDCT4(IntArg N, SourceLoc Loc) {
  return makeSquareParam(FKind::DCT4, N, Loc);
}

FormulaRef spl::makeStride(IntArg MN, IntArg N, SourceLoc Loc) {
  return makeStrideLike(FKind::Stride, MN, N, Loc);
}

FormulaRef spl::makeTwiddle(IntArg MN, IntArg N, SourceLoc Loc) {
  return makeStrideLike(FKind::Twiddle, MN, N, Loc);
}

FormulaRef spl::makeGenMatrix(std::vector<std::vector<Cplx>> Rows,
                              SourceLoc Loc) {
  assert(!Rows.empty() && !Rows[0].empty() && "matrix must be nonempty");
  for (const auto &Row : Rows)
    assert(Row.size() == Rows[0].size() && "matrix rows must be equal length");
  auto F = FormulaFactory::create(FKind::GenMatrix, Loc);
  std::int64_t Out = static_cast<std::int64_t>(Rows.size());
  std::int64_t In = static_cast<std::int64_t>(Rows[0].size());
  FormulaFactory::setMatrixRows(*F, std::move(Rows));
  FormulaFactory::setSizes(*F, In, Out);
  return F;
}

FormulaRef spl::makeDiagonal(std::vector<Cplx> Elems, SourceLoc Loc) {
  assert(!Elems.empty() && "diagonal must be nonempty");
  auto F = FormulaFactory::create(FKind::Diagonal, Loc);
  std::int64_t N = static_cast<std::int64_t>(Elems.size());
  FormulaFactory::setDiagElems(*F, std::move(Elems));
  FormulaFactory::setSizes(*F, N, N);
  return F;
}

FormulaRef spl::makePermutation(std::vector<std::int64_t> Targets,
                                SourceLoc Loc) {
  assert(!Targets.empty() && "permutation must be nonempty");
#ifndef NDEBUG
  {
    std::vector<std::int64_t> Sorted = Targets;
    std::sort(Sorted.begin(), Sorted.end());
    for (size_t I = 0; I != Sorted.size(); ++I)
      assert(Sorted[I] == static_cast<std::int64_t>(I) + 1 &&
             "targets must be a permutation of 1..n");
  }
#endif
  auto F = FormulaFactory::create(FKind::Permutation, Loc);
  std::int64_t N = static_cast<std::int64_t>(Targets.size());
  FormulaFactory::setPermTargets(*F, std::move(Targets));
  FormulaFactory::setSizes(*F, N, N);
  return F;
}

FormulaRef spl::makeCompose(FormulaRef A, FormulaRef B, SourceLoc Loc) {
  assert(A && B && "compose operands must be non-null");
  assert((A->inSize() < 0 || B->outSize() < 0 ||
          A->inSize() == B->outSize()) &&
         "compose requires A.in_size == B.out_size");
  auto F = FormulaFactory::create(FKind::Compose, Loc);
  std::int64_t In = B->inSize(), Out = A->outSize();
  FormulaFactory::setChildren(*F, {std::move(A), std::move(B)});
  if (In >= 0 && Out >= 0)
    FormulaFactory::setSizes(*F, In, Out);
  return F;
}

FormulaRef spl::makeCompose(std::vector<FormulaRef> Fs, SourceLoc Loc) {
  return foldRight(std::move(Fs), &spl::makeCompose, Loc);
}

FormulaRef spl::makeTensor(FormulaRef A, FormulaRef B, SourceLoc Loc) {
  assert(A && B && "tensor operands must be non-null");
  auto F = FormulaFactory::create(FKind::Tensor, Loc);
  std::int64_t In = -1, Out = -1;
  if (A->inSize() >= 0 && B->inSize() >= 0) {
    In = A->inSize() * B->inSize();
    Out = A->outSize() * B->outSize();
  }
  FormulaFactory::setChildren(*F, {std::move(A), std::move(B)});
  FormulaFactory::setSizes(*F, In, Out);
  return F;
}

FormulaRef spl::makeTensor(std::vector<FormulaRef> Fs, SourceLoc Loc) {
  return foldRight(std::move(Fs), &spl::makeTensor, Loc);
}

FormulaRef spl::makeDirectSum(FormulaRef A, FormulaRef B, SourceLoc Loc) {
  assert(A && B && "direct-sum operands must be non-null");
  auto F = FormulaFactory::create(FKind::DirectSum, Loc);
  std::int64_t In = -1, Out = -1;
  if (A->inSize() >= 0 && B->inSize() >= 0) {
    In = A->inSize() + B->inSize();
    Out = A->outSize() + B->outSize();
  }
  FormulaFactory::setChildren(*F, {std::move(A), std::move(B)});
  FormulaFactory::setSizes(*F, In, Out);
  return F;
}

FormulaRef spl::makeDirectSum(std::vector<FormulaRef> Fs, SourceLoc Loc) {
  return foldRight(std::move(Fs), &spl::makeDirectSum, Loc);
}

FormulaRef spl::makePatFormula(std::string Name, SourceLoc Loc) {
  assert(!Name.empty() && Name.back() == '_' &&
         "pattern variable names end with '_'");
  auto F = FormulaFactory::create(FKind::PatFormula, Loc);
  FormulaFactory::setVarName(*F, std::move(Name));
  return F;
}

FormulaRef spl::makeUserParam(std::string Name, std::vector<IntArg> Params,
                              SourceLoc Loc) {
  assert(!Name.empty() && "user-defined matrix needs a name");
  auto F = FormulaFactory::create(FKind::UserParam, Loc);
  FormulaFactory::setVarName(*F, std::move(Name));
  FormulaFactory::setParams(*F, std::move(Params));
  return F;
}

FormulaRef spl::withUnrollHint(const FormulaRef &F, bool On) {
  assert(F && "null formula");
  auto Copy = FormulaFactory::clone(*F);
  FormulaFactory::setUnrollHint(*Copy, On);
  return Copy;
}
