//===- ir/Builder.cpp - Formula factory functions --------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include <algorithm>
#include <limits>

using namespace spl;

namespace spl {

/// Internal helper with access to Formula's private members.
class FormulaFactory {
public:
  static std::shared_ptr<Formula> create(FKind Kind, SourceLoc Loc) {
    auto F = std::shared_ptr<Formula>(new Formula());
    F->Kind = Kind;
    F->Loc = Loc;
    return F;
  }
  static void setParams(Formula &F, std::vector<IntArg> Params) {
    F.Params = std::move(Params);
  }
  static void setChildren(Formula &F, std::vector<FormulaRef> Children) {
    F.Children = std::move(Children);
  }
  static void setMatrixRows(Formula &F, std::vector<std::vector<Cplx>> Rows) {
    F.MatrixRows = std::move(Rows);
  }
  static void setDiagElems(Formula &F, std::vector<Cplx> Elems) {
    F.DiagElems = std::move(Elems);
  }
  static void setPermTargets(Formula &F, std::vector<std::int64_t> Targets) {
    F.PermTargets = std::move(Targets);
  }
  static void setVarName(Formula &F, std::string Name) {
    F.VarName = std::move(Name);
  }
  static void setSizes(Formula &F, std::int64_t In, std::int64_t Out) {
    F.InSize = In;
    F.OutSize = Out;
  }
  static void setUnrollHint(Formula &F, bool On) { F.UnrollHint = On; }
  static std::shared_ptr<Formula> clone(const Formula &F) {
    return std::shared_ptr<Formula>(new Formula(F));
  }
};

} // namespace spl

namespace {

/// Reports \p Msg into \p Diags when given and returns null — the shared
/// failure path of every validating builder.
FormulaRef invalid(Diagnostics *Diags, SourceLoc Loc, const std::string &Msg) {
  if (Diags)
    Diags->error(Loc, Msg);
  return nullptr;
}

/// True when \p A * \p B overflows int64 (both nonnegative).
bool mulOverflows(std::int64_t A, std::int64_t B) {
  return A != 0 && B > std::numeric_limits<std::int64_t>::max() / A;
}

/// Builds a square parameterized matrix whose size is its parameter \p N
/// (valid for I, F, WHT, DCT2, DCT4).
FormulaRef makeSquareParam(FKind Kind, IntArg N, SourceLoc Loc,
                           Diagnostics *Diags) {
  if (!N.isVar() && N.Value <= 0)
    return invalid(Diags, Loc,
                   std::string("(") + kindName(Kind) +
                       " n) requires a positive size (got " +
                       std::to_string(N.Value) + ")");
  auto F = FormulaFactory::create(Kind, Loc);
  FormulaFactory::setParams(*F, {N});
  if (!N.isVar())
    FormulaFactory::setSizes(*F, N.Value, N.Value);
  return F;
}

/// Builds L or T, which take parameters (mn, n) with n | mn.
FormulaRef makeStrideLike(FKind Kind, IntArg MN, IntArg N, SourceLoc Loc,
                          Diagnostics *Diags) {
  auto F = FormulaFactory::create(Kind, Loc);
  FormulaFactory::setParams(*F, {MN, N});
  if (!MN.isVar() && !N.isVar()) {
    if (MN.Value <= 0 || N.Value <= 0 || MN.Value % N.Value != 0)
      return invalid(Diags, Loc,
                     std::string("(") + kindName(Kind) +
                         " mn n) requires positive parameters with n "
                         "dividing mn (got mn=" +
                         std::to_string(MN.Value) + ", n=" +
                         std::to_string(N.Value) + ")");
    FormulaFactory::setSizes(*F, MN.Value, MN.Value);
  }
  return F;
}

/// Folds a non-empty list right-to-left with the given binary builder,
/// matching the parser's association rule for n-ary forms. A null element
/// (or an invalid intermediate) propagates to a null result.
FormulaRef foldRight(std::vector<FormulaRef> Fs,
                     FormulaRef (*Bin)(FormulaRef, FormulaRef, SourceLoc,
                                       Diagnostics *),
                     SourceLoc Loc, Diagnostics *Diags) {
  if (Fs.empty())
    return invalid(Diags, Loc, "n-ary operator needs at least one operand");
  FormulaRef Acc = Fs.back();
  for (size_t I = Fs.size() - 1; Acc && I-- > 0;)
    Acc = Bin(Fs[I], Acc, Loc, Diags);
  return Acc;
}

} // namespace

FormulaRef spl::makeIdentity(IntArg N, SourceLoc Loc, Diagnostics *Diags) {
  return makeSquareParam(FKind::Identity, N, Loc, Diags);
}

FormulaRef spl::makeDFT(IntArg N, SourceLoc Loc, Diagnostics *Diags) {
  return makeSquareParam(FKind::DFT, N, Loc, Diags);
}

FormulaRef spl::makeWHT(IntArg N, SourceLoc Loc, Diagnostics *Diags) {
  if (!N.isVar() && (N.Value <= 0 || (N.Value & (N.Value - 1)) != 0))
    return invalid(Diags, Loc,
                   "(WHT n) requires a positive power-of-two size (got " +
                       std::to_string(N.Value) + ")");
  return makeSquareParam(FKind::WHT, N, Loc, Diags);
}

FormulaRef spl::makeDCT2(IntArg N, SourceLoc Loc, Diagnostics *Diags) {
  return makeSquareParam(FKind::DCT2, N, Loc, Diags);
}

FormulaRef spl::makeDCT4(IntArg N, SourceLoc Loc, Diagnostics *Diags) {
  return makeSquareParam(FKind::DCT4, N, Loc, Diags);
}

FormulaRef spl::makeStride(IntArg MN, IntArg N, SourceLoc Loc,
                           Diagnostics *Diags) {
  return makeStrideLike(FKind::Stride, MN, N, Loc, Diags);
}

FormulaRef spl::makeTwiddle(IntArg MN, IntArg N, SourceLoc Loc,
                            Diagnostics *Diags) {
  return makeStrideLike(FKind::Twiddle, MN, N, Loc, Diags);
}

FormulaRef spl::makeGenMatrix(std::vector<std::vector<Cplx>> Rows,
                              SourceLoc Loc, Diagnostics *Diags) {
  if (Rows.empty() || Rows[0].empty())
    return invalid(Diags, Loc, "(matrix ...) must have nonempty rows");
  for (const auto &Row : Rows)
    if (Row.size() != Rows[0].size())
      return invalid(Diags, Loc,
                     "(matrix ...) rows must all have the same length");
  auto F = FormulaFactory::create(FKind::GenMatrix, Loc);
  std::int64_t Out = static_cast<std::int64_t>(Rows.size());
  std::int64_t In = static_cast<std::int64_t>(Rows[0].size());
  FormulaFactory::setMatrixRows(*F, std::move(Rows));
  FormulaFactory::setSizes(*F, In, Out);
  return F;
}

FormulaRef spl::makeDiagonal(std::vector<Cplx> Elems, SourceLoc Loc,
                             Diagnostics *Diags) {
  if (Elems.empty())
    return invalid(Diags, Loc, "(diagonal ...) must be nonempty");
  auto F = FormulaFactory::create(FKind::Diagonal, Loc);
  std::int64_t N = static_cast<std::int64_t>(Elems.size());
  FormulaFactory::setDiagElems(*F, std::move(Elems));
  FormulaFactory::setSizes(*F, N, N);
  return F;
}

FormulaRef spl::makePermutation(std::vector<std::int64_t> Targets,
                                SourceLoc Loc, Diagnostics *Diags) {
  if (Targets.empty())
    return invalid(Diags, Loc, "(permutation ...) must be nonempty");
  std::vector<std::int64_t> Sorted = Targets;
  std::sort(Sorted.begin(), Sorted.end());
  for (size_t I = 0; I != Sorted.size(); ++I)
    if (Sorted[I] != static_cast<std::int64_t>(I) + 1)
      return invalid(Diags, Loc,
                     "(permutation ...) targets must form a permutation "
                     "of 1..n");
  auto F = FormulaFactory::create(FKind::Permutation, Loc);
  std::int64_t N = static_cast<std::int64_t>(Targets.size());
  FormulaFactory::setPermTargets(*F, std::move(Targets));
  FormulaFactory::setSizes(*F, N, N);
  return F;
}

FormulaRef spl::makeCompose(FormulaRef A, FormulaRef B, SourceLoc Loc,
                            Diagnostics *Diags) {
  if (!A || !B)
    return nullptr; // A reported failure upstream propagates.
  if (A->inSize() >= 0 && B->outSize() >= 0 && A->inSize() != B->outSize())
    return invalid(Diags, Loc,
                   "compose size mismatch: in_size " +
                       std::to_string(A->inSize()) + " vs out_size " +
                       std::to_string(B->outSize()));
  auto F = FormulaFactory::create(FKind::Compose, Loc);
  std::int64_t In = B->inSize(), Out = A->outSize();
  FormulaFactory::setChildren(*F, {std::move(A), std::move(B)});
  if (In >= 0 && Out >= 0)
    FormulaFactory::setSizes(*F, In, Out);
  return F;
}

FormulaRef spl::makeCompose(std::vector<FormulaRef> Fs, SourceLoc Loc,
                            Diagnostics *Diags) {
  return foldRight(std::move(Fs), &spl::makeCompose, Loc, Diags);
}

FormulaRef spl::makeTensor(FormulaRef A, FormulaRef B, SourceLoc Loc,
                           Diagnostics *Diags) {
  if (!A || !B)
    return nullptr;
  std::int64_t In = -1, Out = -1;
  if (A->inSize() >= 0 && B->inSize() >= 0) {
    if (mulOverflows(A->inSize(), B->inSize()) ||
        mulOverflows(A->outSize(), B->outSize()))
      return invalid(Diags, Loc, "tensor product size overflows");
    In = A->inSize() * B->inSize();
    Out = A->outSize() * B->outSize();
  }
  auto F = FormulaFactory::create(FKind::Tensor, Loc);
  FormulaFactory::setChildren(*F, {std::move(A), std::move(B)});
  FormulaFactory::setSizes(*F, In, Out);
  return F;
}

FormulaRef spl::makeTensor(std::vector<FormulaRef> Fs, SourceLoc Loc,
                           Diagnostics *Diags) {
  return foldRight(std::move(Fs), &spl::makeTensor, Loc, Diags);
}

FormulaRef spl::makeDirectSum(FormulaRef A, FormulaRef B, SourceLoc Loc,
                              Diagnostics *Diags) {
  if (!A || !B)
    return nullptr;
  auto F = FormulaFactory::create(FKind::DirectSum, Loc);
  std::int64_t In = -1, Out = -1;
  if (A->inSize() >= 0 && B->inSize() >= 0) {
    In = A->inSize() + B->inSize();
    Out = A->outSize() + B->outSize();
  }
  FormulaFactory::setChildren(*F, {std::move(A), std::move(B)});
  FormulaFactory::setSizes(*F, In, Out);
  return F;
}

FormulaRef spl::makeDirectSum(std::vector<FormulaRef> Fs, SourceLoc Loc,
                              Diagnostics *Diags) {
  return foldRight(std::move(Fs), &spl::makeDirectSum, Loc, Diags);
}

FormulaRef spl::makePatFormula(std::string Name, SourceLoc Loc,
                               Diagnostics *Diags) {
  if (Name.empty() || Name.back() != '_')
    return invalid(Diags, Loc, "pattern variable names must end with '_'");
  auto F = FormulaFactory::create(FKind::PatFormula, Loc);
  FormulaFactory::setVarName(*F, std::move(Name));
  return F;
}

FormulaRef spl::makeUserParam(std::string Name, std::vector<IntArg> Params,
                              SourceLoc Loc, Diagnostics *Diags) {
  if (Name.empty())
    return invalid(Diags, Loc, "user-defined matrix needs a name");
  auto F = FormulaFactory::create(FKind::UserParam, Loc);
  FormulaFactory::setVarName(*F, std::move(Name));
  FormulaFactory::setParams(*F, std::move(Params));
  return F;
}

FormulaRef spl::withUnrollHint(const FormulaRef &F, bool On) {
  if (!F)
    return nullptr;
  auto Copy = FormulaFactory::clone(*F);
  FormulaFactory::setUnrollHint(*Copy, On);
  return Copy;
}
