//===- ir/Builder.h - Formula factory functions -----------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory functions for building SPL formulas programmatically. These are
/// the public construction API (the parser also routes through them); each
/// validates its arguments and pre-computes the formula's input/output
/// sizes. An invalid construction (nonpositive size, non-dividing stride
/// parameter, malformed permutation, size overflow) returns nullptr — and
/// reports a Diagnostics error when the caller passes \p Diags — instead of
/// asserting, so malformed input reaching the builders through the parser
/// degrades to an ordinary compile error rather than aborting the process.
/// The n-ary operator builders are null-tolerant: a null operand propagates
/// to a null result.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_IR_BUILDER_H
#define SPL_IR_BUILDER_H

#include "ir/Formula.h"
#include "support/Diagnostics.h"

namespace spl {

/// (I n) — the n-by-n identity.
FormulaRef makeIdentity(IntArg N, SourceLoc Loc = SourceLoc(),
                        Diagnostics *Diags = nullptr);
/// (F n) — the n-point DFT.
FormulaRef makeDFT(IntArg N, SourceLoc Loc = SourceLoc(),
                   Diagnostics *Diags = nullptr);
/// (L mn n) — the mn-by-mn stride permutation with stride n; requires n|mn.
FormulaRef makeStride(IntArg MN, IntArg N, SourceLoc Loc = SourceLoc(),
                      Diagnostics *Diags = nullptr);
/// (T mn n) — the mn-by-mn twiddle matrix of Equation 4; requires n|mn.
FormulaRef makeTwiddle(IntArg MN, IntArg N, SourceLoc Loc = SourceLoc(),
                       Diagnostics *Diags = nullptr);
/// (WHT n) — the n-point Walsh-Hadamard transform; n a power of two.
FormulaRef makeWHT(IntArg N, SourceLoc Loc = SourceLoc(),
                   Diagnostics *Diags = nullptr);
/// (DCT2 n) — the unnormalized DCT type II.
FormulaRef makeDCT2(IntArg N, SourceLoc Loc = SourceLoc(),
                    Diagnostics *Diags = nullptr);
/// (DCT4 n) — the unnormalized DCT type IV.
FormulaRef makeDCT4(IntArg N, SourceLoc Loc = SourceLoc(),
                    Diagnostics *Diags = nullptr);

/// (matrix (...rows...)) — a general matrix given by its elements. All rows
/// must have equal, nonzero length.
FormulaRef makeGenMatrix(std::vector<std::vector<Cplx>> Rows,
                         SourceLoc Loc = SourceLoc(),
                         Diagnostics *Diags = nullptr);
/// (diagonal (...)) — a diagonal matrix given by its diagonal.
FormulaRef makeDiagonal(std::vector<Cplx> Elems, SourceLoc Loc = SourceLoc(),
                        Diagnostics *Diags = nullptr);
/// (permutation (k1 ... kn)) — y_i = x_{k_i - 1}; targets are 1-based and
/// must form a permutation of 1..n.
FormulaRef makePermutation(std::vector<std::int64_t> Targets,
                           SourceLoc Loc = SourceLoc(),
                           Diagnostics *Diags = nullptr);

/// (compose A B) — matrix product; requires A.inSize == B.outSize when both
/// are known.
FormulaRef makeCompose(FormulaRef A, FormulaRef B, SourceLoc Loc = SourceLoc(),
                       Diagnostics *Diags = nullptr);
/// N-ary compose, associated right-to-left as the parser does.
FormulaRef makeCompose(std::vector<FormulaRef> Fs, SourceLoc Loc = SourceLoc(),
                       Diagnostics *Diags = nullptr);
/// (tensor A B) — tensor product.
FormulaRef makeTensor(FormulaRef A, FormulaRef B, SourceLoc Loc = SourceLoc(),
                      Diagnostics *Diags = nullptr);
/// N-ary tensor, associated right-to-left.
FormulaRef makeTensor(std::vector<FormulaRef> Fs, SourceLoc Loc = SourceLoc(),
                      Diagnostics *Diags = nullptr);
/// (direct-sum A B).
FormulaRef makeDirectSum(FormulaRef A, FormulaRef B,
                         SourceLoc Loc = SourceLoc(),
                         Diagnostics *Diags = nullptr);
/// N-ary direct sum, associated right-to-left.
FormulaRef makeDirectSum(std::vector<FormulaRef> Fs,
                         SourceLoc Loc = SourceLoc(),
                         Diagnostics *Diags = nullptr);

/// "A_" — a formula pattern variable (template patterns only).
FormulaRef makePatFormula(std::string Name, SourceLoc Loc = SourceLoc(),
                          Diagnostics *Diags = nullptr);

/// (Name p1 p2 ...) — a user-defined parameterized matrix whose semantics
/// come from a user template; sizes are inferred by the expander.
FormulaRef makeUserParam(std::string Name, std::vector<IntArg> Params,
                         SourceLoc Loc = SourceLoc(),
                         Diagnostics *Diags = nullptr);

/// Returns \p F with the per-formula #unroll hint set to \p On (shallow
/// copy of the root node; children are shared). Null-tolerant.
FormulaRef withUnrollHint(const FormulaRef &F, bool On);

} // namespace spl

#endif // SPL_IR_BUILDER_H
