//===- ir/Formula.cpp - SPL formula trees ---------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Formula.h"

#include "ir/Transforms.h"
#include "support/StrUtil.h"

#include <functional>

using namespace spl;

const char *spl::kindName(FKind Kind) {
  switch (Kind) {
  case FKind::Identity:
    return "I";
  case FKind::DFT:
    return "F";
  case FKind::Stride:
    return "L";
  case FKind::Twiddle:
    return "T";
  case FKind::WHT:
    return "WHT";
  case FKind::DCT2:
    return "DCT2";
  case FKind::DCT4:
    return "DCT4";
  case FKind::GenMatrix:
    return "matrix";
  case FKind::Diagonal:
    return "diagonal";
  case FKind::Permutation:
    return "permutation";
  case FKind::Compose:
    return "compose";
  case FKind::Tensor:
    return "tensor";
  case FKind::DirectSum:
    return "direct-sum";
  case FKind::UserParam:
    return "<user>";
  case FKind::PatFormula:
    return "<pattern-var>";
  }
  return "<invalid>";
}

std::int64_t Formula::param(unsigned I) const {
  assert(I < Params.size() && "parameter index out of range");
  assert(!Params[I].isVar() && "parameter is a pattern variable");
  return Params[I].Value;
}

bool Formula::isPattern() const {
  if (Kind == FKind::PatFormula)
    return true;
  for (const IntArg &P : Params)
    if (P.isVar())
      return true;
  for (const FormulaRef &C : Children)
    if (C->isPattern())
      return true;
  return false;
}

bool Formula::hasDenseSemantics() const {
  if (Kind == FKind::PatFormula || Kind == FKind::UserParam)
    return false;
  for (const IntArg &P : Params)
    if (P.isVar())
      return false;
  for (const FormulaRef &C : Children)
    if (!C || !C->hasDenseSemantics())
      return false;
  return true;
}

Matrix Formula::toMatrix() const {
  assert(hasDenseSemantics() && "no dense semantics for this formula; "
                                "check hasDenseSemantics() first");
  switch (Kind) {
  case FKind::Identity:
    return Matrix::identity(param(0));
  case FKind::DFT:
    return dftMatrix(param(0));
  case FKind::Stride:
    return strideMatrix(param(0), param(1));
  case FKind::Twiddle:
    return twiddleMatrix(param(0), param(1));
  case FKind::WHT:
    return whtMatrix(param(0));
  case FKind::DCT2:
    return dct2Matrix(param(0));
  case FKind::DCT4:
    return dct4Matrix(param(0));
  case FKind::GenMatrix: {
    Matrix M(MatrixRows.size(), MatrixRows.empty() ? 0 : MatrixRows[0].size());
    for (size_t R = 0; R != MatrixRows.size(); ++R)
      for (size_t C = 0; C != MatrixRows[R].size(); ++C)
        M.at(R, C) = MatrixRows[R][C];
    return M;
  }
  case FKind::Diagonal: {
    Matrix M(DiagElems.size(), DiagElems.size());
    for (size_t I = 0; I != DiagElems.size(); ++I)
      M.at(I, I) = DiagElems[I];
    return M;
  }
  case FKind::Permutation: {
    Matrix M(PermTargets.size(), PermTargets.size());
    for (size_t I = 0; I != PermTargets.size(); ++I)
      M.at(I, PermTargets[I] - 1) = Cplx(1, 0);
    return M;
  }
  case FKind::Compose:
    return child(0)->toMatrix().mul(child(1)->toMatrix());
  case FKind::Tensor:
    return child(0)->toMatrix().kron(child(1)->toMatrix());
  case FKind::DirectSum:
    return child(0)->toMatrix().directSum(child(1)->toMatrix());
  case FKind::UserParam:
    assert(false && "user-defined matrices have no dense semantics; "
                    "execute their template instead");
    break;
  case FKind::PatFormula:
    break;
  }
  assert(false && "unhandled formula kind");
  return Matrix();
}

void Formula::printInto(std::string &Out) const {
  switch (Kind) {
  case FKind::PatFormula:
    Out += VarName;
    return;
  case FKind::GenMatrix: {
    Out += "(matrix (";
    for (size_t R = 0; R != MatrixRows.size(); ++R) {
      if (R)
        Out += ' ';
      Out += '(';
      for (size_t C = 0; C != MatrixRows[R].size(); ++C) {
        if (C)
          Out += ' ';
        Out += formatComplex(MatrixRows[R][C]);
      }
      Out += ')';
    }
    Out += "))";
    return;
  }
  case FKind::Diagonal: {
    Out += "(diagonal (";
    for (size_t I = 0; I != DiagElems.size(); ++I) {
      if (I)
        Out += ' ';
      Out += formatComplex(DiagElems[I]);
    }
    Out += "))";
    return;
  }
  case FKind::Permutation: {
    Out += "(permutation (";
    for (size_t I = 0; I != PermTargets.size(); ++I) {
      if (I)
        Out += ' ';
      Out += std::to_string(PermTargets[I]);
    }
    Out += "))";
    return;
  }
  case FKind::Compose:
  case FKind::Tensor:
  case FKind::DirectSum: {
    // Flatten the right spine of same-kind chains into n-ary form; parsing
    // re-associates right-to-left, so the round trip is exact.
    Out += '(';
    Out += kindName(Kind);
    const Formula *F = this;
    for (;;) {
      Out += ' ';
      F->child(0)->printInto(Out);
      const Formula *Rhs = F->child(1).get();
      if (Rhs->Kind != Kind) {
        Out += ' ';
        Rhs->printInto(Out);
        break;
      }
      F = Rhs;
    }
    Out += ')';
    return;
  }
  default: {
    Out += '(';
    Out += Kind == FKind::UserParam ? VarName.c_str() : kindName(Kind);
    for (const IntArg &P : Params) {
      Out += ' ';
      Out += P.isVar() ? P.Var : std::to_string(P.Value);
    }
    Out += ')';
    return;
  }
  }
}

std::string Formula::print() const {
  std::string Out;
  printInto(Out);
  return Out;
}

bool Formula::equal(const Formula &A, const Formula &B) {
  if (&A == &B)
    return true;
  if (A.Kind != B.Kind || A.Params != B.Params ||
      A.VarName != B.VarName || A.MatrixRows != B.MatrixRows ||
      A.DiagElems != B.DiagElems || A.PermTargets != B.PermTargets ||
      A.Children.size() != B.Children.size())
    return false;
  for (size_t I = 0; I != A.Children.size(); ++I)
    if (!equal(*A.Children[I], *B.Children[I]))
      return false;
  return true;
}

bool spl::formulaEqual(const FormulaRef &A, const FormulaRef &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  return Formula::equal(*A, *B);
}

std::size_t Formula::hash() const {
  auto Mix = [](std::size_t H, std::size_t V) {
    return H * 1099511628211ull ^ V;
  };
  std::size_t H = Mix(14695981039346656037ull, static_cast<std::size_t>(Kind));
  for (const IntArg &P : Params) {
    H = Mix(H, std::hash<std::int64_t>()(P.Value));
    H = Mix(H, std::hash<std::string>()(P.Var));
  }
  H = Mix(H, std::hash<std::string>()(VarName));
  auto HashCplx = [&](Cplx V) {
    H = Mix(H, std::hash<double>()(V.real()));
    H = Mix(H, std::hash<double>()(V.imag()));
  };
  for (const auto &Row : MatrixRows)
    for (Cplx V : Row)
      HashCplx(V);
  for (Cplx V : DiagElems)
    HashCplx(V);
  for (std::int64_t T : PermTargets)
    H = Mix(H, std::hash<std::int64_t>()(T));
  for (const FormulaRef &C : Children)
    H = Mix(H, C->hash());
  return H;
}
