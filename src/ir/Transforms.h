//===- ir/Transforms.h - Transform entry functions --------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-form element definitions of the signal transforms the paper uses:
/// the DFT, the stride permutation, the twiddle matrix, the Walsh-Hadamard
/// transform, and DCT types II and IV. These back both the dense-matrix
/// semantics of formula nodes and the compiler's intrinsic functions
/// (W, TW, ...), so the oracle and the generated code share one definition.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_IR_TRANSFORMS_H
#define SPL_IR_TRANSFORMS_H

#include "ir/Matrix.h"

#include <cstdint>

namespace spl {

/// w_n^k = exp(-2*pi*i*k/n), the DFT root of unity (paper Section 1).
Cplx wRoot(std::int64_t N, std::int64_t K);

/// Element (p,q) of the n-point DFT matrix F_n: w_n^{p*q}.
Cplx dftEntry(std::int64_t N, std::int64_t P, std::int64_t Q);

/// Diagonal element i of the twiddle matrix T^{mn}_n (paper Equation 4):
/// with j = i / n and k = i mod n, the value is w_mn^{j*k}.
Cplx twiddleEntry(std::int64_t MN, std::int64_t N, std::int64_t I);

/// Image of output index i under the stride permutation L^{mn}_n: the row-i
/// entry of L is at column strideIndex(mn, n, i), i.e. y[i] = x[that].
/// Writing i = p*m + q with m = mn/n (p < n, q < m), the source is q*n + p.
std::int64_t strideIndex(std::int64_t MN, std::int64_t N, std::int64_t I);

/// Element (k,j) of the n-point Walsh-Hadamard transform: (-1)^{popcount(k&j)}
/// (n must be a power of two).
double whtEntry(std::int64_t N, std::int64_t K, std::int64_t J);

/// Element (k,j) of the unnormalized DCT type II: cos(k*(2j+1)*pi / (2n)).
double dct2Entry(std::int64_t N, std::int64_t K, std::int64_t J);

/// Element (k,j) of the unnormalized DCT type III (the transpose of the
/// DCT-II definition above): cos(j*(2k+1)*pi / (2n)).
double dct3Entry(std::int64_t N, std::int64_t K, std::int64_t J);

/// Element (k,j) of the unnormalized DCT type IV:
/// cos((2k+1)*(2j+1)*pi / (4n)).
double dct4Entry(std::int64_t N, std::int64_t K, std::int64_t J);

/// Element (k,j) of the real-input DFT in FFTW's "r2hc" halfcomplex
/// layout: row k <= n/2 produces Re Y_k = sum_j x_j cos(2 pi k j / n),
/// and row k > n/2 produces Im Y_{n-k} = -sum_j x_j sin(2 pi (n-k) j / n),
/// so the output vector is (r_0, r_1, ..., r_{n/2}, i_{n/2-1}, ..., i_1).
double rdftEntry(std::int64_t N, std::int64_t K, std::int64_t J);

/// Dense n-point DFT matrix.
Matrix dftMatrix(std::int64_t N);

/// Dense stride permutation matrix L^{mn}_n.
Matrix strideMatrix(std::int64_t MN, std::int64_t N);

/// Dense twiddle matrix T^{mn}_n.
Matrix twiddleMatrix(std::int64_t MN, std::int64_t N);

/// Dense n-point WHT matrix.
Matrix whtMatrix(std::int64_t N);

/// Dense unnormalized DCT-II matrix.
Matrix dct2Matrix(std::int64_t N);

/// Dense unnormalized DCT-III matrix (DCT-II transposed).
Matrix dct3Matrix(std::int64_t N);

/// Dense unnormalized DCT-IV matrix.
Matrix dct4Matrix(std::int64_t N);

/// Dense real n x n matrix of the halfcomplex real-input DFT (rdftEntry).
Matrix rdftMatrix(std::int64_t N);

} // namespace spl

#endif // SPL_IR_TRANSFORMS_H
