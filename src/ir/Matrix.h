//===- ir/Matrix.h - Dense complex matrices ---------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense complex matrix type. SPL formulas denote matrices; this
/// class provides their exact semantics (Formula::toMatrix) and is the
/// correctness oracle for the whole compiler: generated code must compute
/// the same matrix-vector product as the dense interpretation.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_IR_MATRIX_H
#define SPL_IR_MATRIX_H

#include <cassert>
#include <complex>
#include <cstddef>
#include <vector>

namespace spl {

using Cplx = std::complex<double>;

/// Dense row-major complex matrix used as the semantic oracle. Not intended
/// for performance; tests keep sizes modest.
class Matrix {
public:
  Matrix() = default;
  Matrix(size_t Rows, size_t Cols)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Cplx(0, 0)) {}

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  Cplx &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  const Cplx &at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// The n-by-n identity.
  static Matrix identity(size_t N);

  /// Matrix product this * B.
  Matrix mul(const Matrix &B) const;

  /// Tensor (Kronecker) product this (x) B per Equation 2 of the paper.
  Matrix kron(const Matrix &B) const;

  /// Direct sum diag(this, B).
  Matrix directSum(const Matrix &B) const;

  /// Matrix-vector product. \p X must have cols() elements.
  std::vector<Cplx> apply(const std::vector<Cplx> &X) const;

  /// Largest absolute elementwise difference against \p B; infinity when the
  /// shapes differ.
  double maxAbsDiff(const Matrix &B) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<Cplx> Data;
};

} // namespace spl

#endif // SPL_IR_MATRIX_H
