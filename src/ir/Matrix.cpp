//===- ir/Matrix.cpp - Dense complex matrices -----------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Matrix.h"

#include <limits>

using namespace spl;

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I != N; ++I)
    M.at(I, I) = Cplx(1, 0);
  return M;
}

Matrix Matrix::mul(const Matrix &B) const {
  assert(NumCols == B.NumRows && "shape mismatch in matrix product");
  Matrix Out(NumRows, B.NumCols);
  for (size_t I = 0; I != NumRows; ++I)
    for (size_t K = 0; K != NumCols; ++K) {
      Cplx A = at(I, K);
      if (A == Cplx(0, 0))
        continue;
      for (size_t J = 0; J != B.NumCols; ++J)
        Out.at(I, J) += A * B.at(K, J);
    }
  return Out;
}

Matrix Matrix::kron(const Matrix &B) const {
  Matrix Out(NumRows * B.NumRows, NumCols * B.NumCols);
  for (size_t I = 0; I != NumRows; ++I)
    for (size_t J = 0; J != NumCols; ++J) {
      Cplx A = at(I, J);
      if (A == Cplx(0, 0))
        continue;
      for (size_t P = 0; P != B.NumRows; ++P)
        for (size_t Q = 0; Q != B.NumCols; ++Q)
          Out.at(I * B.NumRows + P, J * B.NumCols + Q) = A * B.at(P, Q);
    }
  return Out;
}

Matrix Matrix::directSum(const Matrix &B) const {
  Matrix Out(NumRows + B.NumRows, NumCols + B.NumCols);
  for (size_t I = 0; I != NumRows; ++I)
    for (size_t J = 0; J != NumCols; ++J)
      Out.at(I, J) = at(I, J);
  for (size_t I = 0; I != B.NumRows; ++I)
    for (size_t J = 0; J != B.NumCols; ++J)
      Out.at(NumRows + I, NumCols + J) = B.at(I, J);
  return Out;
}

std::vector<Cplx> Matrix::apply(const std::vector<Cplx> &X) const {
  assert(X.size() == NumCols && "input vector length mismatch");
  std::vector<Cplx> Y(NumRows, Cplx(0, 0));
  for (size_t I = 0; I != NumRows; ++I) {
    Cplx Acc(0, 0);
    for (size_t J = 0; J != NumCols; ++J)
      Acc += at(I, J) * X[J];
    Y[I] = Acc;
  }
  return Y;
}

double Matrix::maxAbsDiff(const Matrix &B) const {
  if (NumRows != B.NumRows || NumCols != B.NumCols)
    return std::numeric_limits<double>::infinity();
  double Max = 0;
  for (size_t I = 0; I != Data.size(); ++I)
    Max = std::max(Max, std::abs(Data[I] - B.Data[I]));
  return Max;
}
