//===- ir/Transforms.cpp - Transform entry functions ----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Transforms.h"

#include <cassert>
#include <cmath>

using namespace spl;

namespace {
constexpr double Pi = 3.14159265358979323846264338327950288;
} // namespace

Cplx spl::wRoot(std::int64_t N, std::int64_t K) {
  assert(N > 0 && "root of unity needs a positive order");
  // Reduce the exponent so huge k*k products stay accurate.
  std::int64_t R = K % N;
  if (R < 0)
    R += N;
  // Roots on the axes are exact (so the compiler's multiply-by-(+-1, +-i)
  // strength reductions fire), as are the eighth roots (+-sqrt(1/2)
  // components CSE perfectly across butterflies).
  if ((4 * R) % N == 0) {
    switch ((4 * R) / N) {
    case 0:
      return Cplx(1, 0);
    case 1:
      return Cplx(0, -1);
    case 2:
      return Cplx(-1, 0);
    default:
      return Cplx(0, 1);
    }
  }
  if ((8 * R) % N == 0) {
    constexpr double S = 0.70710678118654752440084436210485;
    switch ((8 * R) / N) {
    case 1:
      return Cplx(S, -S);
    case 3:
      return Cplx(-S, -S);
    case 5:
      return Cplx(-S, S);
    default:
      return Cplx(S, S);
    }
  }
  double Angle = -2.0 * Pi * static_cast<double>(R) / static_cast<double>(N);
  return Cplx(std::cos(Angle), std::sin(Angle));
}

Cplx spl::dftEntry(std::int64_t N, std::int64_t P, std::int64_t Q) {
  // Reduce p*q mod n before multiplying to avoid overflow for large n.
  std::int64_t PM = P % N, QM = Q % N;
  return wRoot(N, (PM * QM) % N);
}

Cplx spl::twiddleEntry(std::int64_t MN, std::int64_t N, std::int64_t I) {
  assert(N > 0 && MN % N == 0 && "T^{mn}_n requires n | mn");
  std::int64_t J = I / N, K = I % N;
  return wRoot(MN, (J % MN) * (K % MN) % MN);
}

std::int64_t spl::strideIndex(std::int64_t MN, std::int64_t N,
                              std::int64_t I) {
  assert(N > 0 && MN % N == 0 && "L^{mn}_n requires n | mn");
  std::int64_t M = MN / N;
  std::int64_t P = I / M, Q = I % M;
  return Q * N + P;
}

double spl::whtEntry(std::int64_t N, std::int64_t K, std::int64_t J) {
  assert(N > 0 && (N & (N - 1)) == 0 && "WHT size must be a power of two");
  std::int64_t Bits = static_cast<std::uint64_t>(K) & static_cast<std::uint64_t>(J);
  int Pop = __builtin_popcountll(static_cast<unsigned long long>(Bits));
  return (Pop & 1) ? -1.0 : 1.0;
}

double spl::dct2Entry(std::int64_t N, std::int64_t K, std::int64_t J) {
  return std::cos(static_cast<double>(K) * (2.0 * static_cast<double>(J) + 1) *
                  Pi / (2.0 * static_cast<double>(N)));
}

double spl::dct3Entry(std::int64_t N, std::int64_t K, std::int64_t J) {
  return dct2Entry(N, J, K);
}

double spl::dct4Entry(std::int64_t N, std::int64_t K, std::int64_t J) {
  return std::cos((2.0 * static_cast<double>(K) + 1) *
                  (2.0 * static_cast<double>(J) + 1) * Pi /
                  (4.0 * static_cast<double>(N)));
}

double spl::rdftEntry(std::int64_t N, std::int64_t K, std::int64_t J) {
  assert(N > 0 && K >= 0 && K < N && J >= 0 && J < N && "bad rdft index");
  if (K <= N / 2) {
    Cplx W = wRoot(N, (K % N) * (J % N) % N);
    return W.real();
  }
  Cplx W = wRoot(N, ((N - K) % N) * (J % N) % N);
  return W.imag();
}

Matrix spl::dftMatrix(std::int64_t N) {
  Matrix M(N, N);
  for (std::int64_t P = 0; P != N; ++P)
    for (std::int64_t Q = 0; Q != N; ++Q)
      M.at(P, Q) = dftEntry(N, P, Q);
  return M;
}

Matrix spl::strideMatrix(std::int64_t MN, std::int64_t N) {
  Matrix M(MN, MN);
  for (std::int64_t I = 0; I != MN; ++I)
    M.at(I, strideIndex(MN, N, I)) = Cplx(1, 0);
  return M;
}

Matrix spl::twiddleMatrix(std::int64_t MN, std::int64_t N) {
  Matrix M(MN, MN);
  for (std::int64_t I = 0; I != MN; ++I)
    M.at(I, I) = twiddleEntry(MN, N, I);
  return M;
}

Matrix spl::whtMatrix(std::int64_t N) {
  Matrix M(N, N);
  for (std::int64_t K = 0; K != N; ++K)
    for (std::int64_t J = 0; J != N; ++J)
      M.at(K, J) = Cplx(whtEntry(N, K, J), 0);
  return M;
}

Matrix spl::dct2Matrix(std::int64_t N) {
  Matrix M(N, N);
  for (std::int64_t K = 0; K != N; ++K)
    for (std::int64_t J = 0; J != N; ++J)
      M.at(K, J) = Cplx(dct2Entry(N, K, J), 0);
  return M;
}

Matrix spl::dct3Matrix(std::int64_t N) {
  Matrix M(N, N);
  for (std::int64_t K = 0; K != N; ++K)
    for (std::int64_t J = 0; J != N; ++J)
      M.at(K, J) = Cplx(dct3Entry(N, K, J), 0);
  return M;
}

Matrix spl::dct4Matrix(std::int64_t N) {
  Matrix M(N, N);
  for (std::int64_t K = 0; K != N; ++K)
    for (std::int64_t J = 0; J != N; ++J)
      M.at(K, J) = Cplx(dct4Entry(N, K, J), 0);
  return M;
}

Matrix spl::rdftMatrix(std::int64_t N) {
  Matrix M(N, N);
  for (std::int64_t K = 0; K != N; ++K)
    for (std::int64_t J = 0; J != N; ++J)
      M.at(K, J) = Cplx(rdftEntry(N, K, J), 0);
  return M;
}
