//===- ir/Formula.h - SPL formula trees -------------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SPL formulas: matrix expressions built from parameterized matrices
/// (I, F, L, T, WHT, DCT...), explicit matrices (matrix/diagonal/
/// permutation) and matrix operators (compose, tensor, direct-sum).
/// A formula denotes a matrix (Formula::toMatrix) and, once compiled, a
/// subroutine computing the corresponding matrix-vector product.
///
/// Formula trees are also used as template *patterns*: integer parameters
/// may be pattern variables ("n_") and whole sub-formulas may be formula
/// pattern variables ("A_"), per Section 3.2 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_IR_FORMULA_H
#define SPL_IR_FORMULA_H

#include "ir/Matrix.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace spl {

class Formula;
using FormulaRef = std::shared_ptr<const Formula>;

/// Kinds of formula nodes.
enum class FKind {
  // Parameterized matrices.
  Identity,    ///< (I n)
  DFT,         ///< (F n), the DFT by definition
  Stride,      ///< (L mn n), stride permutation
  Twiddle,     ///< (T mn n), twiddle matrix of Equation 4
  WHT,         ///< (WHT n), Walsh-Hadamard transform
  DCT2,        ///< (DCT2 n), unnormalized DCT type II
  DCT4,        ///< (DCT4 n), unnormalized DCT type IV
  // Explicit matrices.
  GenMatrix,   ///< (matrix ((a11 ... a1n) ...))
  Diagonal,    ///< (diagonal (d1 ... dn))
  Permutation, ///< (permutation (k1 ... kn)), 1-based: y_i = x_{k_i - 1}
  // Matrix operators (binary; n-ary source forms associate right-to-left).
  Compose,     ///< (compose A B) = A * B
  Tensor,      ///< (tensor A B) = A (x) B
  DirectSum,   ///< (direct-sum A B) = diag(A, B)
  /// A user-defined parameterized matrix, introduced by a template whose
  /// pattern head is not a built-in name, e.g. (template (J n_) ...). Its
  /// sizes are unknown at formula-build time and are inferred by the
  /// expander from the template body.
  UserParam,
  // Pattern-only node.
  PatFormula,  ///< "A_" in a template pattern
};

/// Returns the SPL operator/matrix name for \p Kind ("compose", "F", ...).
const char *kindName(FKind Kind);

/// An integer argument of a parameterized matrix; either a literal value or
/// (inside template patterns only) a pattern variable name such as "n_".
struct IntArg {
  std::int64_t Value = 0;
  std::string Var;

  IntArg() = default;
  IntArg(std::int64_t Value) : Value(Value) {}
  explicit IntArg(std::string VarName) : Var(std::move(VarName)) {}

  bool isVar() const { return !Var.empty(); }

  friend bool operator==(const IntArg &A, const IntArg &B) {
    return A.Value == B.Value && A.Var == B.Var;
  }
};

/// An immutable SPL formula node. Construct through the factory functions in
/// ir/Builder.h, which validate and pre-compute sizes.
class Formula {
public:
  FKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// Number of elements of the input (column count) or -1 when the formula
  /// contains pattern variables.
  std::int64_t inSize() const { return InSize; }
  /// Number of elements of the output (row count) or -1 when unknown.
  std::int64_t outSize() const { return OutSize; }

  /// True when this tree contains any pattern variable (and hence denotes a
  /// template pattern, not a concrete matrix).
  bool isPattern() const;

  /// Integer parameters of a parameterized matrix, e.g. {mn, n} for L.
  const std::vector<IntArg> &params() const { return Params; }

  /// Integer parameter \p I, which must be a literal.
  std::int64_t param(unsigned I) const;

  const std::vector<FormulaRef> &children() const { return Children; }
  const FormulaRef &child(unsigned I) const {
    assert(I < Children.size() && "child index out of range");
    return Children[I];
  }

  /// Rows of a GenMatrix node.
  const std::vector<std::vector<Cplx>> &matrixRows() const {
    assert(Kind == FKind::GenMatrix && "not a general matrix");
    return MatrixRows;
  }
  /// Diagonal elements of a Diagonal node.
  const std::vector<Cplx> &diagElems() const {
    assert(Kind == FKind::Diagonal && "not a diagonal");
    return DiagElems;
  }
  /// 1-based permutation targets of a Permutation node.
  const std::vector<std::int64_t> &permTargets() const {
    assert(Kind == FKind::Permutation && "not a permutation");
    return PermTargets;
  }
  /// Name of a PatFormula node ("A_") or of a UserParam matrix ("J").
  const std::string &varName() const {
    assert((Kind == FKind::PatFormula || Kind == FKind::UserParam) &&
           "node has no name");
    return VarName;
  }

  /// Per-formula #unroll annotation: set means the paper's "#unroll on/off"
  /// was in effect when this (sub)formula was defined.
  std::optional<bool> unrollHint() const { return UnrollHint; }

  /// True when toMatrix() is callable on this tree: no pattern variables
  /// and no user-defined matrices (whose semantics live in templates, not
  /// in a dense interpretation). Check before building an oracle.
  bool hasDenseSemantics() const;

  /// Dense matrix denoted by this formula. hasDenseSemantics() must be
  /// true. Quadratic in size; intended for tests, small examples, and the
  /// runtime's oracle tier.
  Matrix toMatrix() const;

  /// Renders in Cambridge Polish notation, flattening right-nested chains of
  /// the same operator into the customary n-ary form.
  std::string print() const;

  /// Structural equality (same kinds, parameters, data and children).
  static bool equal(const Formula &A, const Formula &B);

  /// Structural hash consistent with equal().
  std::size_t hash() const;

private:
  friend class FormulaFactory;
  Formula() = default;

  FKind Kind = FKind::Identity;
  std::vector<IntArg> Params;
  std::vector<FormulaRef> Children;
  std::vector<std::vector<Cplx>> MatrixRows;
  std::vector<Cplx> DiagElems;
  std::vector<std::int64_t> PermTargets;
  std::string VarName;
  std::optional<bool> UnrollHint;
  SourceLoc Loc;
  std::int64_t InSize = -1;
  std::int64_t OutSize = -1;

  void printInto(std::string &Out) const;
};

/// Convenience wrapper for structural equality on refs (null-safe).
bool formulaEqual(const FormulaRef &A, const FormulaRef &B);

} // namespace spl

#endif // SPL_IR_FORMULA_H
