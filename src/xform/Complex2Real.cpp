//===- xform/Complex2Real.cpp - Complex-to-real lowering --------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "xform/Complex2Real.h"

#include <cassert>

using namespace spl;
using namespace spl::xform;
using namespace spl::icode;

namespace {

class LowerImpl {
public:
  explicit LowerImpl(const Program &In) : In(In) {
    Out.SubName = In.SubName;
    Out.InSize = In.InSize;
    Out.OutSize = In.OutSize;
    Out.Type = DataType::Real;
    Out.LoweredToReal = true;
    Out.NumLoopVars = In.NumLoopVars;
    Out.NumFltTemps = In.NumFltTemps * 2;
    for (std::int64_t S : In.TempVecSizes)
      Out.TempVecSizes.push_back(S * 2);
    for (const auto &T : In.Tables) {
      std::vector<Cplx> Flat;
      Flat.reserve(T.size() * 2);
      for (Cplx V : T) {
        Flat.push_back(Cplx(V.real(), 0));
        Flat.push_back(Cplx(V.imag(), 0));
      }
      Out.Tables.push_back(std::move(Flat));
    }
  }

  Program run() {
    for (const Instr &I : In.Body)
      lower(I);
    assert(Out.verify().empty() && "lowering produced invalid i-code");
    return std::move(Out);
  }

private:
  const Program &In;
  Program Out;

  /// Real component (Part 0) or imaginary component (Part 1) of a complex
  /// operand.
  Operand comp(const Operand &O, int Part) {
    switch (O.Kind) {
    case OpndKind::FltConst:
      return Operand::fltConst(
          Cplx(Part == 0 ? O.FConst.real() : O.FConst.imag(), 0));
    case OpndKind::FltTemp:
      return Operand::fltTemp(O.Id * 2 + Part);
    case OpndKind::VecElem:
      return Operand::vecElem(O.Id, O.Subs.scaled(2).plusConst(Part));
    case OpndKind::TableElem:
      return Operand::tableElem(O.Id, O.Subs.scaled(2).plusConst(Part));
    default:
      assert(false && "intrinsics must be evaluated before lowering");
      return Operand::none();
    }
  }

  int freshTemp() { return Out.NumFltTemps++; }

  void emitCopy(Operand Dst, Operand A) {
    Out.Body.push_back(Instr::copy(std::move(Dst), std::move(A)));
  }
  void emitNeg(Operand Dst, Operand A) {
    Out.Body.push_back(Instr::neg(std::move(Dst), std::move(A)));
  }
  void emitBin(Op O, Operand Dst, Operand A, Operand B) {
    Out.Body.push_back(
        Instr::bin(O, std::move(Dst), std::move(A), std::move(B)));
  }

  /// Conservative may-alias between a destination and a source: identical
  /// operands alias; vector elements of the same vector alias unless their
  /// subscripts differ by a nonzero constant.
  static bool mayAlias(const Operand &A, const Operand &B) {
    if (A.Kind != B.Kind)
      return false;
    if (A.Kind == OpndKind::FltTemp)
      return A.Id == B.Id;
    if (A.Kind == OpndKind::VecElem) {
      if (A.Id != B.Id)
        return false;
      Affine Diff = A.Subs.plus(B.Subs.scaled(-1));
      return !Diff.isConst() || Diff.Base == 0;
    }
    return false;
  }

  void lower(const Instr &I) {
    switch (I.Opcode) {
    case Op::Loop:
    case Op::End:
      Out.Body.push_back(I);
      return;
    case Op::Copy:
      emitCopy(comp(I.Dst, 0), comp(I.A, 0));
      emitCopy(comp(I.Dst, 1), comp(I.A, 1));
      return;
    case Op::Neg:
      emitNeg(comp(I.Dst, 0), comp(I.A, 0));
      emitNeg(comp(I.Dst, 1), comp(I.A, 1));
      return;
    case Op::Add:
    case Op::Sub:
      emitBin(I.Opcode, comp(I.Dst, 0), comp(I.A, 0), comp(I.B, 0));
      emitBin(I.Opcode, comp(I.Dst, 1), comp(I.A, 1), comp(I.B, 1));
      return;
    case Op::Mul:
      lowerMul(I);
      return;
    case Op::Div:
      lowerDiv(I);
      return;
    }
  }

  void lowerMul(const Instr &I) {
    // Normalize a constant factor to the A side (multiplication commutes).
    Operand A = I.A, B = I.B;
    if (B.is(OpndKind::FltConst) && !A.is(OpndKind::FltConst))
      std::swap(A, B);

    if (A.is(OpndKind::FltConst)) {
      Cplx C = A.FConst;
      if (C.imag() == 0) {
        // Purely real constant: two multiplies, componentwise (no cross
        // terms, so destination aliasing is harmless).
        Operand CR = Operand::fltConst(Cplx(C.real(), 0));
        emitBin(Op::Mul, comp(I.Dst, 0), CR, comp(B, 0));
        emitBin(Op::Mul, comp(I.Dst, 1), CR, comp(B, 1));
        return;
      }
      if (C.real() == 0) {
        // Purely imaginary: a swap, with negation/scaling. Guard against
        // the destination aliasing the source (components cross).
        Operand BRe = comp(B, 0), BIm = comp(B, 1);
        if (mayAlias(I.Dst, B)) {
          Operand T = Operand::fltTemp(freshTemp());
          emitCopy(T, BRe);
          BRe = T;
        }
        double S = C.imag();
        if (S == -1) {
          // (x)(-i): re = x_im, im = -x_re — the paper's swap + negate.
          emitCopy(comp(I.Dst, 0), BIm);
          emitNeg(comp(I.Dst, 1), BRe);
        } else if (S == 1) {
          emitNeg(comp(I.Dst, 0), BIm);
          emitCopy(comp(I.Dst, 1), BRe);
        } else {
          emitBin(Op::Mul, comp(I.Dst, 0), Operand::fltConst(Cplx(-S, 0)),
                  BIm);
          emitBin(Op::Mul, comp(I.Dst, 1), Operand::fltConst(Cplx(S, 0)),
                  BRe);
        }
        return;
      }
      // General constant: four multiplies through temporaries.
    }

    // General complex multiply: (ar*br - ai*bi, ar*bi + ai*br).
    Operand T1 = Operand::fltTemp(freshTemp());
    Operand T2 = Operand::fltTemp(freshTemp());
    Operand T3 = Operand::fltTemp(freshTemp());
    Operand T4 = Operand::fltTemp(freshTemp());
    emitBin(Op::Mul, T1, comp(A, 0), comp(B, 0));
    emitBin(Op::Mul, T2, comp(A, 1), comp(B, 1));
    emitBin(Op::Mul, T3, comp(A, 0), comp(B, 1));
    emitBin(Op::Mul, T4, comp(A, 1), comp(B, 0));
    emitBin(Op::Sub, comp(I.Dst, 0), T1, T2);
    emitBin(Op::Add, comp(I.Dst, 1), T3, T4);
  }

  void lowerDiv(const Instr &I) {
    // a/b = a * conj(b) / |b|^2.
    Operand T1 = Operand::fltTemp(freshTemp());
    Operand T2 = Operand::fltTemp(freshTemp());
    Operand Den = Operand::fltTemp(freshTemp());
    Operand Num1 = Operand::fltTemp(freshTemp());
    Operand Num2 = Operand::fltTemp(freshTemp());
    Operand T3 = Operand::fltTemp(freshTemp());
    Operand T4 = Operand::fltTemp(freshTemp());

    emitBin(Op::Mul, T1, comp(I.B, 0), comp(I.B, 0));
    emitBin(Op::Mul, T2, comp(I.B, 1), comp(I.B, 1));
    emitBin(Op::Add, Den, T1, T2);
    emitBin(Op::Mul, T3, comp(I.A, 0), comp(I.B, 0));
    emitBin(Op::Mul, T4, comp(I.A, 1), comp(I.B, 1));
    emitBin(Op::Add, Num1, T3, T4);
    emitBin(Op::Mul, T3, comp(I.A, 1), comp(I.B, 0));
    emitBin(Op::Mul, T4, comp(I.A, 0), comp(I.B, 1));
    emitBin(Op::Sub, Num2, T3, T4);
    emitBin(Op::Div, comp(I.Dst, 0), Num1, Den);
    emitBin(Op::Div, comp(I.Dst, 1), Num2, Den);
  }
};

} // namespace

Program xform::lowerToReal(const Program &P) {
  assert(P.Type == DataType::Complex && !P.LoweredToReal &&
         "lowerToReal expects a complex program");
  return LowerImpl(P).run();
}
