//===- xform/Unroll.cpp - Loop unrolling -------------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "xform/Unroll.h"

#include <cassert>
#include <functional>

using namespace spl;
using namespace spl::xform;
using namespace spl::icode;

namespace {

/// Substitutes loop variable \p Var by the affine form \p Val (and the
/// equivalent integer expression \p ValE for intrinsic arguments) in one
/// instruction.
Instr substInstr(const Instr &I, int Var, const Affine &Val,
                 const IntExprRef &ValE) {
  auto SubstOperand = [&](const Operand &O) {
    Operand Out = O;
    switch (O.Kind) {
    case OpndKind::VecElem:
    case OpndKind::TableElem:
      Out.Subs = O.Subs.substVar(Var, Val);
      break;
    case OpndKind::Intrinsic:
      for (auto &A : Out.Args)
        A = A->substVar(Var, ValE);
      break;
    default:
      break;
    }
    return Out;
  };
  Instr Out = I;
  if (I.Opcode != Op::Loop && I.Opcode != Op::End) {
    Out.Dst = SubstOperand(I.Dst);
    Out.A = SubstOperand(I.A);
    Out.B = SubstOperand(I.B);
  }
  return Out;
}

/// Finds the index of the End matching the Loop at \p LoopIdx.
size_t matchEnd(const std::vector<Instr> &Body, size_t LoopIdx) {
  int Depth = 0;
  for (size_t I = LoopIdx; I != Body.size(); ++I) {
    if (Body[I].Opcode == Op::Loop)
      ++Depth;
    else if (Body[I].Opcode == Op::End && --Depth == 0)
      return I;
  }
  assert(false && "unbalanced loops");
  return Body.size();
}

/// Recursively processes [Begin, End) for full unrolling.
void fullUnrollRange(const std::vector<Instr> &Body, size_t Begin, size_t End,
                     bool OnlyFlagged, std::vector<Instr> &Out) {
  for (size_t I = Begin; I < End;) {
    const Instr &Ins = Body[I];
    if (Ins.Opcode != Op::Loop) {
      Out.push_back(Ins);
      ++I;
      continue;
    }
    size_t Close = matchEnd(Body, I);
    if (OnlyFlagged && !Ins.UnrollFlag) {
      // Keep the loop; recurse into the body.
      Out.push_back(Ins);
      fullUnrollRange(Body, I + 1, Close, OnlyFlagged, Out);
      Out.push_back(Body[Close]);
      I = Close + 1;
      continue;
    }
    // Unroll: expand the body once per iteration with the loop variable
    // substituted, then recursively process each expansion.
    std::vector<Instr> Inner;
    fullUnrollRange(Body, I + 1, Close, OnlyFlagged, Inner);
    for (std::int64_t V = Ins.Lo; V <= Ins.Hi; ++V) {
      Affine Val(V);
      IntExprRef ValE = IntExpr::mkConst(V);
      for (const Instr &BI : Inner)
        Out.push_back(substInstr(BI, Ins.LoopVar, Val, ValE));
    }
    I = Close + 1;
  }
}

} // namespace

Program xform::unrollLoops(const Program &P, bool OnlyFlagged) {
  Program Out = P;
  Out.Body.clear();
  fullUnrollRange(P.Body, 0, P.Body.size(), OnlyFlagged, Out.Body);
  assert(Out.verify().empty() && "unrolling produced invalid i-code");
  return Out;
}

Program xform::partialUnroll(const Program &P, int Factor) {
  assert(Factor >= 2 && "partial unroll factor must be at least 2");
  Program Out = P;
  Out.Body.clear();

  const std::vector<Instr> &Body = P.Body;
  // Each eligible loop becomes a loop over q = 0 .. Trip/Factor - 1 whose
  // body is the original body repeated Factor times with the old variable
  // rewritten to v = Lo + q*Factor + j.
  std::vector<Instr> Result;
  std::function<void(size_t, size_t)> Process = [&](size_t Begin,
                                                    size_t End) {
    for (size_t I = Begin; I < End;) {
      const Instr &Ins = Body[I];
      if (Ins.Opcode != Op::Loop) {
        Result.push_back(Ins);
        ++I;
        continue;
      }
      size_t Close = matchEnd(Body, I);
      std::int64_t Trip = Ins.Hi - Ins.Lo + 1;
      if (Trip < Factor || Trip % Factor != 0) {
        Result.push_back(Ins);
        Process(I + 1, Close);
        Result.push_back(Body[Close]);
        I = Close + 1;
        continue;
      }
      int NewVar = Out.NumLoopVars++;
      Result.push_back(Instr::loop(NewVar, 0, Trip / Factor - 1));
      for (int J = 0; J != Factor; ++J) {
        // old var = Lo + J + NewVar*Factor.
        Affine Val = Affine::var(NewVar, Factor).plusConst(Ins.Lo + J);
        IntExprRef ValE = IntExpr::mkBin(
            IntExpr::Add,
            IntExpr::mkBin(IntExpr::Mul, IntExpr::mkVar(NewVar),
                           IntExpr::mkConst(Factor)),
            IntExpr::mkConst(Ins.Lo + J));
        size_t Mark = Result.size();
        Process(I + 1, Close);
        for (size_t K = Mark; K != Result.size(); ++K)
          Result[K] = substInstr(Result[K], Ins.LoopVar, Val, ValE);
      }
      Result.push_back(Instr::end());
      I = Close + 1;
    }
  };
  Process(0, Body.size());
  Out.Body = std::move(Result);
  assert(Out.verify().empty() && "partial unrolling produced invalid i-code");
  return Out;
}

bool xform::isStraightLine(const Program &P) {
  for (const Instr &I : P.Body)
    if (I.Opcode == Op::Loop)
      return false;
  return true;
}
