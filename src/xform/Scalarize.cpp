//===- xform/Scalarize.cpp - Temporary-vector scalarization -----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "xform/Scalarize.h"

#include <map>

using namespace spl;
using namespace spl::xform;
using namespace spl::icode;

Program xform::scalarizeTemps(const Program &P) {
  // Pass 1: find temp vectors referenced only with constant subscripts.
  std::vector<bool> Eligible(P.TempVecSizes.size(), true);
  auto Inspect = [&](const Operand &O) {
    if (O.Kind != OpndKind::VecElem || O.Id < FirstTempVec)
      return;
    if (!O.Subs.isConst())
      Eligible[O.Id - FirstTempVec] = false;
  };
  for (const Instr &I : P.Body) {
    Inspect(I.Dst);
    Inspect(I.A);
    Inspect(I.B);
  }

  // Pass 2: assign a scalar temp to each (vector, index) pair and rewrite.
  Program Out = P;
  std::map<std::pair<int, std::int64_t>, int> Scalars;
  auto Rewrite = [&](Operand &O) {
    if (O.Kind != OpndKind::VecElem || O.Id < FirstTempVec ||
        !Eligible[O.Id - FirstTempVec])
      return;
    auto Key = std::make_pair(O.Id, O.Subs.Base);
    auto [It, Inserted] = Scalars.insert({Key, 0});
    if (Inserted)
      It->second = Out.NumFltTemps++;
    O = Operand::fltTemp(It->second);
  };
  for (Instr &I : Out.Body) {
    if (I.Opcode == Op::Loop || I.Opcode == Op::End)
      continue;
    Rewrite(I.Dst);
    Rewrite(I.A);
    Rewrite(I.B);
  }

  // Scalarized vectors keep their slot but occupy no storage.
  for (size_t T = 0; T != Eligible.size(); ++T)
    if (Eligible[T])
      Out.TempVecSizes[T] = 0;
  assert(Out.verify().empty() && "scalarization produced invalid i-code");
  return Out;
}
