//===- xform/IntrinEval.h - Intrinsic function evaluation -------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time evaluation of intrinsic functions (paper Section 3.3.2).
/// A call with constant arguments folds to a floating constant. A call whose
/// arguments depend on loop indices is evaluated for every possible index
/// combination; the values go into a table and the call becomes a table
/// reference subscripted by the loop indices. Identical tables are shared.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_XFORM_INTRINEVAL_H
#define SPL_XFORM_INTRINEVAL_H

#include "icode/ICode.h"
#include "icode/Intrinsics.h"

namespace spl {
namespace xform {

/// Evaluates every intrinsic operand in \p P. The result contains no
/// Intrinsic operands. Unknown intrinsics assert (the expander checked
/// names against the same registry).
icode::Program evalIntrinsics(const icode::Program &P,
                              const icode::IntrinsicRegistry &Intrinsics =
                                  icode::IntrinsicRegistry::builtins());

} // namespace xform
} // namespace spl

#endif // SPL_XFORM_INTRINEVAL_H
