//===- xform/Scalarize.h - Temporary-vector scalarization -------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces elements of temporary vectors by scalar variables when every
/// reference to the vector uses a constant subscript (always the case after
/// full unrolling). This is the paper's "scalar temporary" transformation
/// (Figure 2, version 2): back-end compilers allocate scalars to registers
/// far more readily than array elements.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_XFORM_SCALARIZE_H
#define SPL_XFORM_SCALARIZE_H

#include "icode/ICode.h"

namespace spl {
namespace xform {

/// Scalarizes every temporary vector whose references all have constant
/// subscripts. The input/output vectors are never scalarized. Vectors with
/// any non-constant reference are left untouched.
icode::Program scalarizeTemps(const icode::Program &P);

} // namespace xform
} // namespace spl

#endif // SPL_XFORM_SCALARIZE_H
