//===- xform/Unroll.h - Loop unrolling --------------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop unrolling (paper Section 3.3.1). Full unrolling eliminates loop
/// control and enables scalarization of temporary vectors; partial unrolling
/// reduces loop overhead while bounding code growth. Loops are selected by
/// the UnrollFlag the expander set (#unroll hints and the -B threshold), or
/// all at once.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_XFORM_UNROLL_H
#define SPL_XFORM_UNROLL_H

#include "icode/ICode.h"

namespace spl {
namespace xform {

/// Fully unrolls loops. When \p OnlyFlagged is true (the default), just the
/// loops carrying UnrollFlag are expanded; otherwise every loop is.
icode::Program unrollLoops(const icode::Program &P, bool OnlyFlagged = true);

/// Partially unrolls every loop whose trip count is divisible by \p Factor
/// (other loops are left alone). Factor must be >= 2; the result computes
/// the same function.
icode::Program partialUnroll(const icode::Program &P, int Factor);

/// True when the program contains no Loop instructions (straight-line code).
bool isStraightLine(const icode::Program &P);

} // namespace xform
} // namespace spl

#endif // SPL_XFORM_UNROLL_H
