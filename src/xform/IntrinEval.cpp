//===- xform/IntrinEval.cpp - Intrinsic function evaluation -----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "xform/IntrinEval.h"

#include <algorithm>
#include <map>

using namespace spl;
using namespace spl::xform;
using namespace spl::icode;

namespace {

/// Orders complex values lexicographically so tables can key a map.
struct TableLess {
  bool operator()(const std::vector<Cplx> &A,
                  const std::vector<Cplx> &B) const {
    return std::lexicographical_compare(
        A.begin(), A.end(), B.begin(), B.end(), [](Cplx X, Cplx Y) {
          if (X.real() != Y.real())
            return X.real() < Y.real();
          return X.imag() < Y.imag();
        });
  }
};

class IntrinEvalImpl {
public:
  IntrinEvalImpl(Program &Out, const IntrinsicRegistry &Intrinsics)
      : Out(Out), Intrinsics(Intrinsics) {}

  void run() {
    for (Instr &I : Out.Body) {
      switch (I.Opcode) {
      case Op::Loop:
        Ranges.push_back({I.LoopVar, I.Lo, I.Hi});
        break;
      case Op::End:
        Ranges.pop_back();
        break;
      default:
        rewrite(I.A);
        rewrite(I.B);
        break;
      }
    }
  }

private:
  Program &Out;
  const IntrinsicRegistry &Intrinsics;
  std::vector<std::tuple<int, std::int64_t, std::int64_t>> Ranges;
  std::map<std::vector<Cplx>, int, TableLess> TableIds;

  void rewrite(Operand &O) {
    if (O.Kind != OpndKind::Intrinsic)
      return;

    // Loop variables the arguments depend on, innermost-last, deduplicated,
    // in enclosing-loop order so strides are well-defined.
    std::vector<int> Used;
    for (const IntExprRef &A : O.Args)
      A->collectVars(Used);
    std::vector<std::tuple<int, std::int64_t, std::int64_t>> Dims;
    for (const auto &[Var, Lo, Hi] : Ranges) {
      if (std::find(Used.begin(), Used.end(), Var) != Used.end())
        Dims.push_back({Var, Lo, Hi});
    }

    if (Dims.empty()) {
      // Fully constant call.
      std::vector<std::int64_t> Args;
      std::vector<std::int64_t> NoVars;
      for (const IntExprRef &A : O.Args)
        Args.push_back(A->eval(NoVars));
      O = Operand::fltConst(Intrinsics.eval(O.Name, Args));
      return;
    }

    // Row-major table over the used dimensions.
    std::vector<std::int64_t> Strides(Dims.size());
    std::int64_t Total = 1;
    for (size_t D = Dims.size(); D-- > 0;) {
      Strides[D] = Total;
      Total *= std::get<2>(Dims[D]) - std::get<1>(Dims[D]) + 1;
    }

    int MaxVar = 0;
    for (const auto &[Var, Lo, Hi] : Dims)
      MaxVar = std::max(MaxVar, Var);
    std::vector<std::int64_t> Vars(MaxVar + 1, 0);

    std::vector<Cplx> Table(Total);
    // Odometer over all index combinations.
    std::vector<std::int64_t> Idx(Dims.size());
    for (size_t D = 0; D != Dims.size(); ++D)
      Idx[D] = std::get<1>(Dims[D]);
    for (std::int64_t Flat = 0; Flat != Total; ++Flat) {
      for (size_t D = 0; D != Dims.size(); ++D)
        Vars[std::get<0>(Dims[D])] = Idx[D];
      std::vector<std::int64_t> Args;
      for (const IntExprRef &A : O.Args)
        Args.push_back(A->eval(Vars));
      Table[Flat] = Intrinsics.eval(O.Name, Args);
      // Advance the odometer (last dimension fastest).
      for (size_t D = Dims.size(); D-- > 0;) {
        if (++Idx[D] <= std::get<2>(Dims[D]))
          break;
        Idx[D] = std::get<1>(Dims[D]);
      }
    }

    // Share identical tables (iterative FFTs reuse twiddle tables).
    auto [It, Inserted] =
        TableIds.insert({std::move(Table), static_cast<int>(Out.Tables.size())});
    if (Inserted)
      Out.Tables.push_back(It->first);

    Affine Sub(0);
    for (size_t D = 0; D != Dims.size(); ++D) {
      Sub.Base -= std::get<1>(Dims[D]) * Strides[D];
      Sub = Sub.plus(Affine::var(std::get<0>(Dims[D]), Strides[D]));
    }
    O = Operand::tableElem(It->second, Sub);
  }
};

} // namespace

Program xform::evalIntrinsics(const Program &P,
                              const IntrinsicRegistry &Intrinsics) {
  Program Out = P;
  IntrinEvalImpl(Out, Intrinsics).run();
  assert(Out.verify().empty() &&
         "intrinsic evaluation produced invalid i-code");
  return Out;
}
