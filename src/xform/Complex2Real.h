//===- xform/Complex2Real.h - Complex-to-real lowering ----------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type transformation of paper Section 3.3.3: represents each complex
/// value as a pair of reals (interleaved re/im) and expands every complex
/// operation into real arithmetic. Multiplication by +-i becomes a swap
/// followed by a negation, and multiplication by a purely real or purely
/// imaginary constant costs two real multiplies instead of four.
///
/// This is what "#codetype real" requests, and the only form the C emitter
/// accepts (C89 has no complex type).
///
//===----------------------------------------------------------------------===//

#ifndef SPL_XFORM_COMPLEX2REAL_H
#define SPL_XFORM_COMPLEX2REAL_H

#include "icode/ICode.h"

namespace spl {
namespace xform {

/// Lowers a complex program to interleaved-real form. \p P must be complex
/// typed and free of Intrinsic operands (run evalIntrinsics first). Buffers
/// of the result hold 2*InSize / 2*OutSize doubles.
icode::Program lowerToReal(const icode::Program &P);

} // namespace xform
} // namespace spl

#endif // SPL_XFORM_COMPLEX2REAL_H
