//===- tools/Version.h - Shared --version output ----------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One `--version` string for both CLIs: tool name, project version, build
/// date, and the compiler that produced the binary. Kept header-only so each
/// tool stamps its own translation-unit build date.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TOOLS_VERSION_H
#define SPL_TOOLS_VERSION_H

#include <string>

namespace spl::tools {

/// Project version, bumped per stacked PR.
inline constexpr const char *ProjectVersion = "0.5.0";

/// e.g. "splc (spl) 0.5.0\nbuilt Aug  5 2026 12:00:00 with GNU C++ 13.2.0".
inline std::string versionString(const char *Tool) {
  std::string S = std::string(Tool) + " (spl) " + ProjectVersion + "\n";
  S += "built " __DATE__ " " __TIME__ " with ";
#if defined(__clang_version__)
  S += "clang " __clang_version__;
#elif defined(__VERSION__)
  S += "GNU C++ " __VERSION__;
#else
  S += "an unknown compiler";
#endif
  return S;
}

} // namespace spl::tools

#endif // SPL_TOOLS_VERSION_H
