#!/usr/bin/env python3
"""Sanity-check the project's Markdown docs.

Two checks over README.md and docs/*.md:

1. Every fenced code block must have balanced (), [] and {} after
   comment text is stripped. This catches the usual documentation rot:
   a snippet edited by hand until its parentheses no longer close —
   fatal in a Cambridge Polish language.

2. Every relative Markdown link must resolve: the target file exists
   (relative to the containing document), and when the link carries a
   #fragment the target document has a heading with that anchor. This
   catches the other kind of rot: a renamed doc or section leaving
   dangling cross-references. Absolute URLs (http/https/mailto) and
   links inside fenced blocks are skipped.

Comment syntax is chosen per fence info string:
  lisp/spl   ';' to end of line
  sh/shell   '#' to end of line
  c/cpp      '//' to end of line
  (none)     both ';' and '#' (grammar sketches, wisdom dumps, usage text)

Exit status 0 when everything checks out, 1 otherwise.
"""

import glob
import os
import re
import sys

BRACKETS = {")": "(", "]": "[", "}": "{"}
OPENERS = set(BRACKETS.values())

COMMENT_MARKERS = {
    "lisp": [";"],
    "spl": [";"],
    "scheme": [";"],
    "sh": ["#"],
    "shell": ["#"],
    "bash": ["#"],
    "c": ["//"],
    "cpp": ["//"],
    "c++": ["//"],
    "": [";", "#"],
}

# Inline links: [text](target). Images share the syntax ("![alt](target)");
# both should resolve. Targets with spaces or nested parens don't occur in
# these docs, so the simple non-greedy form is enough.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def strip_comments(line, markers):
    cut = len(line)
    for m in markers:
        pos = line.find(m)
        if pos != -1:
            cut = min(cut, pos)
    return line[:cut]


def check_block(lang, lines, path, start_line):
    """Return a list of error strings for one fenced block."""
    markers = COMMENT_MARKERS.get(lang, ["//"])
    stack = []
    errors = []
    for off, raw in enumerate(lines):
        line = strip_comments(raw, markers)
        for ch in line:
            if ch in OPENERS:
                stack.append((ch, start_line + off))
            elif ch in BRACKETS:
                if not stack or stack[-1][0] != BRACKETS[ch]:
                    errors.append(
                        "%s:%d: unmatched '%s' in %s block"
                        % (path, start_line + off, ch, lang or "plain")
                    )
                    return errors  # one report per block is enough
                stack.pop()
    for ch, ln in stack:
        errors.append(
            "%s:%d: unclosed '%s' in %s block" % (path, ln, ch, lang or "plain")
        )
    return errors


def heading_anchor(heading):
    """GitHub-style anchor for a heading line (without the leading #s)."""
    text = heading.strip().lower()
    # Inline code/emphasis markers vanish; spaces become dashes; anything
    # not alphanumeric, dash or space is dropped.
    text = text.replace("`", "").replace("*", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.strip().replace(" ", "-")


def doc_anchors(path):
    """The set of heading anchors a Markdown file defines."""
    anchors = set()
    in_block = False
    try:
        with open(path, encoding="utf-8") as f:
            for raw in f:
                line = raw.rstrip("\n")
                if line.strip().startswith("```"):
                    in_block = not in_block
                    continue
                if not in_block and line.startswith("#"):
                    anchors.add(heading_anchor(line.lstrip("#")))
    except OSError:
        pass
    return anchors


def check_links(path, link_sites, anchor_cache):
    """Validate the relative links collected from one document."""
    errors = []
    base = os.path.dirname(path)
    for lineno, target in link_sites:
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        ref, _, fragment = target.partition("#")
        if not ref:  # pure in-document anchor: #section
            dest = path
        else:
            dest = os.path.normpath(os.path.join(base, ref))
            if not os.path.exists(dest):
                errors.append(
                    "%s:%d: broken link '%s' (no such file)"
                    % (path, lineno, target)
                )
                continue
        if fragment and dest.endswith(".md"):
            if dest not in anchor_cache:
                anchor_cache[dest] = doc_anchors(dest)
            if fragment.lower() not in anchor_cache[dest]:
                errors.append(
                    "%s:%d: broken link '%s' (no heading for #%s)"
                    % (path, lineno, target, fragment)
                )
    return errors


def check_file(path):
    errors = []
    blocks = 0
    links = []
    in_block = False
    lang = ""
    block_lines = []
    block_start = 0
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if line.strip().startswith("```"):
                if not in_block:
                    in_block = True
                    lang = line.strip().lstrip("`").strip().lower()
                    block_lines = []
                    block_start = lineno + 1
                else:
                    in_block = False
                    blocks += 1
                    errors += check_block(lang, block_lines, path, block_start)
                continue
            if in_block:
                block_lines.append(line)
            else:
                for m in LINK_RE.finditer(line):
                    links.append((lineno, m.group(1)))
    if in_block:
        errors.append("%s:%d: unterminated code fence" % (path, block_start))
    return blocks, links, errors


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = [os.path.join(root, "README.md")] + sorted(
        glob.glob(os.path.join(root, "docs", "*.md"))
    )
    total_blocks = 0
    total_links = 0
    all_errors = []
    anchor_cache = {}
    for path in paths:
        if not os.path.exists(path):
            continue
        blocks, links, errors = check_file(path)
        total_blocks += blocks
        total_links += len(links)
        all_errors += errors
        all_errors += check_links(path, links, anchor_cache)
    for e in all_errors:
        print(e, file=sys.stderr)
    print(
        "check_docs: %d fenced blocks, %d links in %d files, %d errors"
        % (total_blocks, total_links, len(paths), len(all_errors))
    )
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
