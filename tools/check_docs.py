#!/usr/bin/env python3
"""Sanity-check fenced code blocks in the project's Markdown docs.

Every fenced block in README.md and docs/*.md must have balanced
(), [] and {} after comment text is stripped. This catches the usual
documentation rot: a snippet edited by hand until its parentheses no
longer close — fatal in a Cambridge Polish language.

Comment syntax is chosen per fence info string:
  lisp/spl   ';' to end of line
  sh/shell   '#' to end of line
  c/cpp      '//' to end of line
  (none)     both ';' and '#' (grammar sketches, wisdom dumps, usage text)

Exit status 0 when all blocks balance, 1 otherwise.
"""

import glob
import os
import sys

BRACKETS = {")": "(", "]": "[", "}": "{"}
OPENERS = set(BRACKETS.values())

COMMENT_MARKERS = {
    "lisp": [";"],
    "spl": [";"],
    "scheme": [";"],
    "sh": ["#"],
    "shell": ["#"],
    "bash": ["#"],
    "c": ["//"],
    "cpp": ["//"],
    "c++": ["//"],
    "": [";", "#"],
}


def strip_comments(line, markers):
    cut = len(line)
    for m in markers:
        pos = line.find(m)
        if pos != -1:
            cut = min(cut, pos)
    return line[:cut]


def check_block(lang, lines, path, start_line):
    """Return a list of error strings for one fenced block."""
    markers = COMMENT_MARKERS.get(lang, ["//"])
    stack = []
    errors = []
    for off, raw in enumerate(lines):
        line = strip_comments(raw, markers)
        for ch in line:
            if ch in OPENERS:
                stack.append((ch, start_line + off))
            elif ch in BRACKETS:
                if not stack or stack[-1][0] != BRACKETS[ch]:
                    errors.append(
                        "%s:%d: unmatched '%s' in %s block"
                        % (path, start_line + off, ch, lang or "plain")
                    )
                    return errors  # one report per block is enough
                stack.pop()
    for ch, ln in stack:
        errors.append(
            "%s:%d: unclosed '%s' in %s block" % (path, ln, ch, lang or "plain")
        )
    return errors


def check_file(path):
    errors = []
    blocks = 0
    in_block = False
    lang = ""
    block_lines = []
    block_start = 0
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if line.strip().startswith("```"):
                if not in_block:
                    in_block = True
                    lang = line.strip().lstrip("`").strip().lower()
                    block_lines = []
                    block_start = lineno + 1
                else:
                    in_block = False
                    blocks += 1
                    errors += check_block(lang, block_lines, path, block_start)
                continue
            if in_block:
                block_lines.append(line)
    if in_block:
        errors.append("%s:%d: unterminated code fence" % (path, block_start))
    return blocks, errors


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = [os.path.join(root, "README.md")] + sorted(
        glob.glob(os.path.join(root, "docs", "*.md"))
    )
    total_blocks = 0
    all_errors = []
    for path in paths:
        if not os.path.exists(path):
            continue
        blocks, errors = check_file(path)
        total_blocks += blocks
        all_errors += errors
    for e in all_errors:
        print(e, file=sys.stderr)
    print(
        "check_docs: %d fenced blocks in %d files, %d errors"
        % (total_blocks, len(paths), len(all_errors))
    )
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
