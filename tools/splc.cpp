//===- tools/splc.cpp - The SPL compiler command-line driver -------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// splc: compiles SPL programs to C or Fortran, mirroring the paper's
/// command-line compiler (including the -B unrolling option).
///
///   splc [options] [file.spl]        (no file or "-": read stdin)
///     -o <file>      write generated code here (default: stdout)
///     -B <n>         fully unroll sub-formulas with input size <= n
///     -u <k>         partially unroll remaining loops by factor k
///     -O0 -O1 -O2    optimization level: none / scalar temporaries /
///                    default optimizations (default -O2)
///     -l <lang>      override #language (c or fortran)
///     --sparc        apply the SPARC-style peephole transformations
///     --print-icode  also print the final i-code as a comment stream
///     --stats        print per-subroutine statistics to stderr
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "support/Diagnostics.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace spl;

namespace {

void printUsage() {
  std::fprintf(stderr,
               "usage: splc [-o out] [-B n] [-u k] [-O0|-O1|-O2] "
               "[-l c|fortran] [--sparc] [--print-icode] [--stats] "
               "[file.spl]\n");
}

} // namespace

int main(int Argc, char **Argv) {
  driver::CompilerOptions Opts;
  std::string InputPath;
  std::string OutputPath;
  bool PrintICode = false;
  bool Stats = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-o" && I + 1 < Argc) {
      OutputPath = Argv[++I];
    } else if (Arg == "-B" && I + 1 < Argc) {
      Opts.UnrollThreshold = std::atoll(Argv[++I]);
    } else if (Arg == "-u" && I + 1 < Argc) {
      Opts.PartialUnrollFactor = std::atoi(Argv[++I]);
    } else if (Arg == "-O0") {
      Opts.Level = opt::OptLevel::None;
    } else if (Arg == "-O1") {
      Opts.Level = opt::OptLevel::Scalarize;
    } else if (Arg == "-O2") {
      Opts.Level = opt::OptLevel::Default;
    } else if (Arg == "-l" && I + 1 < Argc) {
      Opts.LanguageOverride = Argv[++I];
      if (Opts.LanguageOverride != "c" &&
          Opts.LanguageOverride != "fortran") {
        std::fprintf(stderr, "splc: error: unknown language '%s'\n",
                     Opts.LanguageOverride.c_str());
        return 1;
      }
    } else if (Arg == "--sparc") {
      Opts.SparcPeephole = true;
    } else if (Arg == "--print-icode") {
      PrintICode = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "-h" || Arg == "--help") {
      printUsage();
      return 0;
    } else if (Arg == "-" || Arg[0] != '-') {
      if (!InputPath.empty()) {
        std::fprintf(stderr, "splc: error: multiple input files\n");
        return 1;
      }
      InputPath = Arg;
    } else {
      std::fprintf(stderr, "splc: error: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 1;
    }
  }

  std::string Source;
  if (InputPath.empty() || InputPath == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "splc: error: cannot open '%s'\n",
                   InputPath.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  auto Units = Compiler.compileSource(Source, Opts);
  std::fputs(Diags.dump().c_str(), stderr);
  if (!Units)
    return 1;

  std::ostringstream Out;
  for (const auto &Unit : *Units) {
    if (PrintICode) {
      std::istringstream IC(Unit.Final.print());
      std::string Line;
      bool IsC = Unit.Language != "fortran";
      while (std::getline(IC, Line))
        Out << (IsC ? "/* " : "c ") << Line << (IsC ? " */" : "") << "\n";
    }
    Out << Unit.Code << "\n";
    if (Stats) {
      std::fprintf(stderr,
                   "%s: in=%lld out=%lld instrs=%zu flops=%llu temps=%zu "
                   "tables=%zu\n",
                   Unit.SubName.c_str(),
                   static_cast<long long>(Unit.Final.InSize),
                   static_cast<long long>(Unit.Final.OutSize),
                   Unit.Final.staticSize(),
                   static_cast<unsigned long long>(
                       Unit.Final.dynamicOpCount()),
                   Unit.Final.TempVecSizes.size(), Unit.Final.Tables.size());
    }
  }

  if (OutputPath.empty()) {
    std::fputs(Out.str().c_str(), stdout);
  } else {
    std::ofstream OutFile(OutputPath);
    if (!OutFile) {
      std::fprintf(stderr, "splc: error: cannot write '%s'\n",
                   OutputPath.c_str());
      return 1;
    }
    OutFile << Out.str();
  }
  return 0;
}
