//===- tools/splc.cpp - The SPL compiler command-line driver -------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// splc: compiles SPL programs to C or Fortran, mirroring the paper's
/// command-line compiler (including the -B unrolling option), plus a search
/// mode that runs the Section-4 dynamic programming and emits the winner.
///
///   splc [options] [file.spl]        (no file or "-": read stdin)
///     -o <file>          write generated code here (default: stdout)
///     -B <n>             fully unroll sub-formulas with input size <= n
///     -u <k>             partially unroll remaining loops by factor k
///     -O0 -O1 -O2        optimization level: none / scalar temporaries /
///                        default optimizations (default -O2)
///     -l <lang>          override #language (c or fortran)
///     --sparc            apply the SPARC-style peephole transformations
///     --print-icode      also print the final i-code as a comment stream
///     --stats            print per-subroutine statistics to stderr
///     --profile          print a per-stage time/metric table to stderr
///     --version          print version, build date and compiler
///
///   Search mode (instead of an input file):
///     --best-fft <n>     DP-search the FFT space for size n and emit the
///                        winning subroutine
///     --transform <t>    with --best-fft: which registry transform to
///                        emit (default fft). fft runs the DP search;
///                        rdft/dct2/dct3/dct4 expand their recursive rule
///                        (docs/WORKLOADS.md)
///     --codegen <m>      auto (default) | scalar | vector: which codegen
///                        variant to emit for the winner. auto follows the
///                        searched winner (timed evaluators race both);
///                        vector renders the SIMD backend's C
///                        (docs/VECTORIZATION.md)
///     --search-eval <e>  cost model: opcount (default) | vmtime | native
///     --search-threads <t>  candidate-evaluation worker threads
///     --search-leaf <n>  largest straight-line sub-transform (default 16)
///     --deadline-ms <n>  budget for the DP search (0 = unbounded); an
///                        expired budget yields the best formula found so
///                        far, or exit code 6 if none was completed. A
///                        truncated search is never recorded as wisdom
///     --wisdom <file>    persistent plan cache location
///                        (default: $SPL_WISDOM or ~/.spl_wisdom)
///     --no-wisdom        neither read nor write the plan cache
///     --kernel-cache <dir>  persistent compiled-kernel cache for the
///                        nativetime cost model ($SPL_KERNEL_CACHE,
///                        docs/KERNEL_CACHE.md)
///     --no-kernel-cache  never read or write the kernel cache
///
/// Exit codes (tools/ExitCodes.h): 0 ok, 2 usage, 3 parse error,
/// 4 compile/search error, 5 cannot write output, 6 deadline exceeded.
///
//===----------------------------------------------------------------------===//

#include "ExitCodes.h"
#include "Version.h"

#include "codegen/VectorEmitter.h"
#include "codegen/VectorISA.h"
#include "driver/Compiler.h"
#include "frontend/Parser.h"
#include "perf/KernelCache.h"
#include "search/DPSearch.h"
#include "support/Deadline.h"
#include "support/Diagnostics.h"
#include "telemetry/Metrics.h"
#include "transforms/Registry.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

using namespace spl;

namespace {

void printUsage() {
  std::fprintf(stderr,
               "usage: splc [-o out] [-B n] [-u k] [-O0|-O1|-O2] "
               "[-l c|fortran] [--sparc] [--print-icode] [--stats] "
               "[--profile] [file.spl]\n"
               "       splc --best-fft n [--transform t] "
               "[--codegen auto|scalar|vector] "
               "[--search-eval opcount|vmtime|native] "
               "[--search-threads t] [--search-leaf n] [--deadline-ms n] "
               "[--wisdom file] [--no-wisdom] [--kernel-cache dir] "
               "[--no-kernel-cache] [common options]\n"
               "       splc --version    print version, build date and "
               "compiler\n");
}

} // namespace

int main(int Argc, char **Argv) {
  driver::CompilerOptions Opts;
  std::string InputPath;
  std::string OutputPath;
  bool PrintICode = false;
  bool Stats = false;
  bool Profile = false;
  std::int64_t BestFFT = 0;
  std::int64_t SearchLeaf = 16;
  std::int64_t DeadlineMs = 0;
  std::string SearchEval = "opcount";
  std::string CodegenArg = "auto";
  std::string Transform = "fft";

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-o" && I + 1 < Argc) {
      OutputPath = Argv[++I];
    } else if (Arg == "-B" && I + 1 < Argc) {
      Opts.UnrollThreshold = std::atoll(Argv[++I]);
    } else if (Arg == "-u" && I + 1 < Argc) {
      Opts.PartialUnrollFactor = std::atoi(Argv[++I]);
    } else if (Arg == "-O0") {
      Opts.Level = opt::OptLevel::None;
    } else if (Arg == "-O1") {
      Opts.Level = opt::OptLevel::Scalarize;
    } else if (Arg == "-O2") {
      Opts.Level = opt::OptLevel::Default;
    } else if (Arg == "-l" && I + 1 < Argc) {
      Opts.LanguageOverride = Argv[++I];
      if (Opts.LanguageOverride != "c" &&
          Opts.LanguageOverride != "fortran") {
        std::fprintf(stderr, "splc: error: unknown language '%s'\n",
                     Opts.LanguageOverride.c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--sparc") {
      Opts.SparcPeephole = true;
    } else if (Arg == "--print-icode") {
      PrintICode = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--profile") {
      Profile = true;
      telemetry::setMetricsEnabled(true);
    } else if (Arg == "--version") {
      std::printf("%s\n", tools::versionString("splc").c_str());
      return tools::ExitOK;
    } else if (Arg == "--best-fft" && I + 1 < Argc) {
      BestFFT = std::atoll(Argv[++I]);
      if (BestFFT < 2) {
        std::fprintf(stderr, "splc: error: --best-fft size must be >= 2\n");
        return tools::ExitUsage;
      }
    } else if (Arg == "--transform" && I + 1 < Argc) {
      Transform = Argv[++I];
      // A bad transform name is a usage error (exit 2): the registry knows
      // the full menu, so say it.
      if (!transforms::lookup(Transform)) {
        std::fprintf(stderr,
                     "splc: error: unknown transform '%s' (supported: "
                     "%s)\n",
                     Transform.c_str(),
                     transforms::supportedNames().c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--codegen" && I + 1 < Argc) {
      CodegenArg = Argv[++I];
      if (CodegenArg != "auto" && CodegenArg != "scalar" &&
          CodegenArg != "vector") {
        std::fprintf(stderr, "splc: error: unknown codegen mode '%s'\n",
                     CodegenArg.c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--search-eval" && I + 1 < Argc) {
      SearchEval = Argv[++I];
      if (SearchEval != "opcount" && SearchEval != "vmtime" &&
          SearchEval != "native") {
        std::fprintf(stderr, "splc: error: unknown cost model '%s'\n",
                     SearchEval.c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--search-threads" && I + 1 < Argc) {
      Opts.SearchThreads = std::atoi(Argv[++I]);
      if (Opts.SearchThreads < 1) {
        std::fprintf(stderr, "splc: error: --search-threads must be >= 1\n");
        return tools::ExitUsage;
      }
    } else if (Arg == "--search-leaf" && I + 1 < Argc) {
      SearchLeaf = std::atoll(Argv[++I]);
      if (SearchLeaf < 2) {
        std::fprintf(stderr, "splc: error: --search-leaf must be >= 2\n");
        return tools::ExitUsage;
      }
    } else if (Arg == "--deadline-ms" && I + 1 < Argc) {
      DeadlineMs = std::atoll(Argv[++I]);
      if (DeadlineMs < 0) {
        std::fprintf(stderr, "splc: error: --deadline-ms must be >= 0\n");
        return tools::ExitUsage;
      }
    } else if (Arg == "--wisdom" && I + 1 < Argc) {
      Opts.WisdomPath = Argv[++I];
    } else if (Arg == "--no-wisdom") {
      Opts.UseWisdom = false;
    } else if (Arg == "--kernel-cache" && I + 1 < Argc) {
      // Process-wide: the nativetime evaluator's compiles go through it.
      perf::KernelCache::setDirectory(Argv[++I]);
    } else if (Arg == "--no-kernel-cache") {
      perf::KernelCache::setEnabled(false);
    } else if (Arg == "-h" || Arg == "--help") {
      printUsage();
      return 0;
    } else if (Arg == "-" || Arg[0] != '-') {
      if (!InputPath.empty()) {
        std::fprintf(stderr, "splc: error: multiple input files\n");
        return tools::ExitUsage;
      }
      InputPath = Arg;
    } else if (Arg == "-o" || Arg == "-B" || Arg == "-u" || Arg == "-l" ||
               Arg == "--best-fft" || Arg == "--transform" ||
               Arg == "--codegen" ||
               Arg == "--search-eval" || Arg == "--search-threads" ||
               Arg == "--search-leaf" || Arg == "--deadline-ms" ||
               Arg == "--wisdom") {
      // A value-taking flag in last position: every I+1 check above failed.
      std::fprintf(stderr, "splc: error: option '%s' needs a value\n",
                   Arg.c_str());
      return tools::ExitUsage;
    } else {
      std::fprintf(stderr, "splc: error: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return tools::ExitUsage;
    }
  }

  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  std::optional<std::vector<driver::CompiledUnit>> Units;

  if (BestFFT) {
    if (!InputPath.empty()) {
      std::fprintf(stderr,
                   "splc: error: --best-fft does not take an input file\n");
      return tools::ExitUsage;
    }
    const transforms::TransformInfo *TI = transforms::lookup(Transform);
    if (Transform != "fft") {
      // Non-fft transforms expand their registry rule instead of running
      // the DP search: the recursion is the known-good factorization.
      if (!TI->Rule) {
        std::fprintf(stderr,
                     "splc: error: '%s' has no emit rule; search mode "
                     "supports fft and the rule-based transforms\n",
                     Transform.c_str());
        return tools::ExitUsage;
      }
      if (!TI->ValidSize(BestFFT, SearchLeaf)) {
        std::fprintf(stderr, "splc: error: %s sizes must be %s; got %lld\n",
                     Transform.c_str(), TI->SizeRule,
                     static_cast<long long>(BestFFT));
        return tools::ExitUsage;
      }
      FormulaRef F = TI->Rule(BestFFT);
      codegen::CodegenVariant Variant = CodegenArg == "vector"
                                            ? codegen::CodegenVariant::Vector
                                            : codegen::CodegenVariant::Scalar;
      DirectiveState Dirs;
      Dirs.SubName = Transform + std::to_string(BestFFT);
      Dirs.Datatype = TI->KernelDatatype;
      Dirs.Language =
          Opts.LanguageOverride.empty() ? "c" : Opts.LanguageOverride;
      if (Variant == codegen::CodegenVariant::Vector &&
          Dirs.Language != "c") {
        std::fprintf(stderr,
                     "splc: error: --codegen vector emits C only (got -l "
                     "%s)\n",
                     Dirs.Language.c_str());
        return tools::ExitUsage;
      }
      auto Unit = Compiler.compileFormula(F, Dirs, Opts);
      if (!Unit) {
        std::fputs(Diags.dump().c_str(), stderr);
        return tools::ExitCompile;
      }
      if (Variant == codegen::CodegenVariant::Vector) {
        codegen::VectorEmitOptions VO;
        VO.ISA = codegen::detectISA();
        VO.HeaderComment = "rule " + F->print();
        Unit->Code = codegen::emitVectorC(Unit->Final, VO);
      }
      if (Stats)
        std::fprintf(stderr, "%s: rule %s (codegen %s)\n",
                     Dirs.SubName.c_str(), F->print().c_str(),
                     codegen::variantName(Variant));
      Units.emplace();
      Units->push_back(std::move(*Unit));
    } else {
    if (BestFFT > SearchLeaf && (BestFFT & (BestFFT - 1)) != 0) {
      std::fprintf(stderr,
                   "splc: error: sizes above --search-leaf must be powers "
                   "of two\n");
      return tools::ExitUsage;
    }

    std::unique_ptr<search::Evaluator> Eval;
    if (SearchEval == "vmtime") {
      Eval = std::make_unique<search::VMTimeEvaluator>(Diags, Opts);
    } else if (SearchEval == "native") {
      if (!search::NativeTimeEvaluator::available()) {
        std::fprintf(stderr,
                     "splc: error: no working C compiler for --search-eval "
                     "native\n");
        return tools::ExitUsage;
      }
      Eval = std::make_unique<search::NativeTimeEvaluator>(Diags, Opts);
    } else {
      Eval = std::make_unique<search::OpCountEvaluator>(Diags, Opts);
    }
    // In auto mode, timed evaluators race scalar vs vector per candidate
    // and the winner's variant decides what we render below.
    Eval->setVariantSearch(CodegenArg == "auto");

    search::PlanCache Wisdom(Diags);
    std::string WisdomPath =
        Opts.WisdomPath.empty() ? search::PlanCache::defaultPath()
                                : Opts.WisdomPath;
    if (Opts.UseWisdom)
      Wisdom.load(WisdomPath);

    // The whole --deadline-ms budget goes to the search; the search layer
    // hands back its best-so-far formula when the budget expires and never
    // records a truncated table as wisdom.
    const support::Deadline DL = support::Deadline::afterMs(DeadlineMs);
    Eval->setDeadline(DL);

    search::SearchOptions SOpts;
    SOpts.MaxLeaf = SearchLeaf;
    SOpts.Threads = Opts.SearchThreads;
    SOpts.Deadline = DL;
    search::DPSearch Search(*Eval, Diags, SOpts,
                            Opts.UseWisdom ? &Wisdom : nullptr);
    auto Best = Search.best(BestFFT);
    if (!Best) {
      std::fputs(Diags.dump().c_str(), stderr);
      if (DL.expired()) {
        std::fprintf(stderr,
                     "splc: error: the --deadline-ms budget expired before "
                     "any formula was evaluated\n");
        return tools::ExitDeadline;
      }
      return tools::ExitCompile;
    }
    if (Opts.UseWisdom)
      Wisdom.save(WisdomPath);

    codegen::CodegenVariant Variant = codegen::CodegenVariant::Scalar;
    if (CodegenArg == "vector")
      Variant = codegen::CodegenVariant::Vector;
    else if (CodegenArg == "auto")
      Variant = Best->Variant;

    DirectiveState Dirs;
    Dirs.SubName = "fft" + std::to_string(BestFFT);
    Dirs.Language =
        Opts.LanguageOverride.empty() ? "c" : Opts.LanguageOverride;
    if (Variant == codegen::CodegenVariant::Vector &&
        Dirs.Language != "c") {
      std::fprintf(stderr,
                   "splc: error: --codegen vector emits C only (got -l %s)\n",
                   Dirs.Language.c_str());
      return tools::ExitUsage;
    }
    auto Unit = Compiler.compileFormula(Best->Formula, Dirs, Opts);
    if (!Unit) {
      std::fputs(Diags.dump().c_str(), stderr);
      return tools::ExitCompile;
    }
    if (Variant == codegen::CodegenVariant::Vector) {
      // Re-render the winner's i-code through the SIMD backend (inline
      // tables: this is display/output code, not a runtime kernel).
      codegen::VectorEmitOptions VO;
      VO.ISA = codegen::detectISA();
      VO.HeaderComment = "winner " + Best->Formula->print();
      Unit->Code = codegen::emitVectorC(Unit->Final, VO);
    }
    if (Stats) {
      std::fprintf(stderr,
                   "%s: winner %s (cost %.6g, %llu evaluations, "
                   "codegen %s)\n",
                   Dirs.SubName.c_str(), Best->Formula->print().c_str(),
                   Best->Cost,
                   static_cast<unsigned long long>(Eval->evaluations()),
                   codegen::variantName(Variant));
      if (Opts.UseWisdom)
        std::fprintf(stderr, "%s (%s)\n", Wisdom.summary().c_str(),
                     WisdomPath.c_str());
    }
    Units.emplace();
    Units->push_back(std::move(*Unit));
    }
  } else {
    std::string Source;
    if (InputPath.empty() || InputPath == "-") {
      std::ostringstream SS;
      SS << std::cin.rdbuf();
      Source = SS.str();
    } else {
      // Reading a directory through an ifstream "succeeds" with an empty
      // stream on Linux, which would compile to silence; reject it up front.
      std::error_code EC;
      if (std::filesystem::is_directory(InputPath, EC)) {
        std::fprintf(stderr, "splc: error: '%s' is a directory\n",
                     InputPath.c_str());
        return tools::ExitUsage;
      }
      errno = 0;
      std::ifstream In(InputPath, std::ios::binary);
      if (!In) {
        std::fprintf(stderr, "splc: error: cannot open '%s': %s\n",
                     InputPath.c_str(),
                     errno ? std::strerror(errno) : "unknown error");
        return tools::ExitUsage;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      if (In.bad()) {
        std::fprintf(stderr, "splc: error: cannot read '%s'\n",
                     InputPath.c_str());
        return tools::ExitUsage;
      }
      Source = SS.str();
    }
    // Parse first so a syntax/validation error exits with the parse
    // code, distinct from a later compilation failure.
    {
      Diagnostics ParseDiags;
      Parser P(Source, ParseDiags);
      auto Prog = P.parseProgram();
      if (!Prog || ParseDiags.hasErrors()) {
        std::fputs(ParseDiags.dump().c_str(), stderr);
        return tools::ExitParse;
      }
    }
    Units = Compiler.compileSource(Source, Opts);
  }

  std::fputs(Diags.dump().c_str(), stderr);
  if (!Units)
    return tools::ExitCompile;

  std::ostringstream Out;
  for (const auto &Unit : *Units) {
    if (PrintICode) {
      std::istringstream IC(Unit.Final.print());
      std::string Line;
      bool IsC = Unit.Language != "fortran";
      while (std::getline(IC, Line))
        Out << (IsC ? "/* " : "c ") << Line << (IsC ? " */" : "") << "\n";
    }
    Out << Unit.Code << "\n";
    if (Stats) {
      std::fprintf(stderr,
                   "%s: in=%lld out=%lld instrs=%zu flops=%llu temps=%zu "
                   "tables=%zu\n",
                   Unit.SubName.c_str(),
                   static_cast<long long>(Unit.Final.InSize),
                   static_cast<long long>(Unit.Final.OutSize),
                   Unit.Final.staticSize(),
                   static_cast<unsigned long long>(
                       Unit.Final.dynamicOpCount()),
                   Unit.Final.TempVecSizes.size(), Unit.Final.Tables.size());
    }
  }

  if (OutputPath.empty()) {
    std::fputs(Out.str().c_str(), stdout);
  } else {
    std::ofstream OutFile(OutputPath);
    if (!OutFile) {
      std::fprintf(stderr, "splc: error: cannot write '%s'\n",
                   OutputPath.c_str());
      return tools::ExitExec;
    }
    OutFile << Out.str();
  }
  if (Profile)
    std::fprintf(stderr, "profile:\n%s", telemetry::profileTable().c_str());
  return tools::ExitOK;
}
