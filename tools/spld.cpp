//===- tools/spld.cpp - The SPL plan-serving daemon ----------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// spld: a long-running daemon serving plan/execute traffic over a
/// Unix-domain socket (see docs/SERVICE.md). One process owns the plan
/// registry, compiled kernels, and wisdom store for every connected client;
/// requests run on a worker pool behind admission control, and the
/// telemetry registry is scrapeable through the protocol's stats request.
///
///   spld --socket /tmp/spld.sock [--workers 8] [--max-inflight 64]
///     --socket <path>        Unix socket to listen on (required)
///     --workers <n>          plan/execute worker threads (default: cores)
///     --max-inflight <n>     server-wide admitted-request cap (default 64)
///     --per-client <n>       per-connection in-flight quota (default 4)
///     --max-frame-mb <n>     largest request/response frame (default 64)
///     --max-size <n>         largest accepted transform size (default 65536)
///     --exec-threads <n>     cap on per-request batch workers (default 4)
///     --default-deadline-ms <n>  deadline applied to requests that carry
///                            none of their own (0 = unbounded, default);
///                            queue time counts, so aged-out requests are
///                            answered DEADLINE_EXCEEDED unexecuted
///     --breaker-threshold <k>  consecutive native-compile failures before
///                            the compile circuit breaker opens and plans
///                            degrade straight to the VM tier (default 5;
///                            0 disables the breaker)
///     --breaker-cooldown-ms <n>  how long an open breaker stays open
///                            before admitting a probe compile (default
///                            5000)
///     --codegen auto|scalar|vector   server-wide codegen policy: auto
///                            honors each request's mode, scalar/vector
///                            override every spec (docs/VECTORIZATION.md)
///     --eval opcount|vmtime|native   search cost model (default opcount)
///     --search-threads <t>   candidate-evaluation worker threads
///     --wisdom <file>        plan cache location ($SPL_WISDOM/~/.spl_wisdom)
///     --no-wisdom            neither read nor write the plan cache
///     --kernel-cache <dir>   persistent compiled-kernel cache: a restarted
///                            daemon re-maps previously compiled kernels
///                            with zero compiler forks (docs/KERNEL_CACHE.md)
///     --no-kernel-cache      never read or write the kernel cache
///     --version              print version, build date and compiler
///
/// The daemon prints "spld: listening on <path>" once ready (scripts wait
/// for that line), then serves until SIGINT/SIGTERM or a client SHUTDOWN
/// request; either way it drains in-flight work and saves wisdom before
/// exiting. Exit codes follow tools/ExitCodes.h.
///
//===----------------------------------------------------------------------===//

#include "ExitCodes.h"
#include "Version.h"

#include "service/Server.h"
#include "telemetry/Metrics.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace spl;

// The wire protocol's shared failure stages must stay aligned with the CLI
// exit codes they are documented to mirror.
static_assert(static_cast<int>(service::Status::BadRequest) ==
              tools::ExitUsage);
static_assert(static_cast<int>(service::Status::BadSpec) == tools::ExitParse);
static_assert(static_cast<int>(service::Status::PlanFailed) ==
              tools::ExitCompile);
static_assert(static_cast<int>(service::Status::ExecFailed) ==
              tools::ExitExec);
// DeadlineExceeded is service-only (wire value 10) but owns a CLI stage of
// its own; statusToExitCode is the one place that mapping lives.
static_assert(static_cast<int>(service::Status::DeadlineExceeded) == 10);

namespace {

volatile std::sig_atomic_t GotSignal = 0;

void onSignal(int) { GotSignal = 1; }

void printUsage() {
  std::fprintf(
      stderr,
      "usage: spld --socket path [--workers n] [--max-inflight n]\n"
      "            [--per-client n] [--max-frame-mb n] [--max-size n]\n"
      "            [--exec-threads n] [--codegen auto|scalar|vector]\n"
      "            [--default-deadline-ms n] [--breaker-threshold k]\n"
      "            [--breaker-cooldown-ms n]\n"
      "            [--eval opcount|vmtime|native]\n"
      "            [--search-threads t] [--wisdom file] [--no-wisdom]\n"
      "            [--kernel-cache dir] [--no-kernel-cache] [--version]\n");
}

} // namespace

int main(int Argc, char **Argv) {
  service::ServerOptions Opts;
  // The daemon is the deployment that needs overload protection on by
  // default: one wedged compiler must not serially time out for every
  // tenant. Library users (and the CLI tools) keep the breaker off unless
  // asked.
  Opts.BreakerThreshold = 5;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "spld: error: %s needs a value\n", Flag);
        std::exit(tools::ExitUsage);
      }
      return Argv[++I];
    };
    if (Arg == "--socket") {
      Opts.SocketPath = Next("--socket");
    } else if (Arg == "--workers") {
      Opts.Workers = std::atoi(Next("--workers"));
    } else if (Arg == "--max-inflight") {
      Opts.MaxInflight = std::atoi(Next("--max-inflight"));
    } else if (Arg == "--per-client") {
      Opts.PerClientInflight = std::atoi(Next("--per-client"));
    } else if (Arg == "--max-frame-mb") {
      long MB = std::atol(Next("--max-frame-mb"));
      if (MB < 1 || MB > 1024) {
        std::fprintf(stderr,
                     "spld: error: --max-frame-mb must be in [1,1024]\n");
        return tools::ExitUsage;
      }
      Opts.MaxFrameBytes = static_cast<std::uint32_t>(MB) << 20;
    } else if (Arg == "--max-size") {
      Opts.MaxTransformSize = std::atoll(Next("--max-size"));
    } else if (Arg == "--exec-threads") {
      Opts.MaxExecThreads = std::atoi(Next("--exec-threads"));
    } else if (Arg == "--default-deadline-ms") {
      Opts.DefaultDeadlineMs = std::atoll(Next("--default-deadline-ms"));
      if (Opts.DefaultDeadlineMs < 0) {
        std::fprintf(stderr,
                     "spld: error: --default-deadline-ms must be >= 0\n");
        return tools::ExitUsage;
      }
    } else if (Arg == "--breaker-threshold") {
      Opts.BreakerThreshold = std::atoi(Next("--breaker-threshold"));
      if (Opts.BreakerThreshold < 0) {
        std::fprintf(stderr,
                     "spld: error: --breaker-threshold must be >= 0\n");
        return tools::ExitUsage;
      }
    } else if (Arg == "--breaker-cooldown-ms") {
      Opts.BreakerCooldownMs = std::atoll(Next("--breaker-cooldown-ms"));
      if (Opts.BreakerCooldownMs < 1) {
        std::fprintf(stderr,
                     "spld: error: --breaker-cooldown-ms must be >= 1\n");
        return tools::ExitUsage;
      }
    } else if (Arg == "--codegen") {
      std::string Name = Next("--codegen");
      if (!runtime::parseCodegenMode(Name, Opts.Codegen)) {
        std::fprintf(stderr, "spld: error: unknown codegen mode '%s'\n",
                     Name.c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--eval") {
      Opts.Planner.Evaluator = Next("--eval");
      if (Opts.Planner.Evaluator != "opcount" &&
          Opts.Planner.Evaluator != "vmtime" &&
          Opts.Planner.Evaluator != "native") {
        std::fprintf(stderr, "spld: error: unknown cost model '%s'\n",
                     Opts.Planner.Evaluator.c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--search-threads") {
      Opts.Planner.SearchThreads = std::atoi(Next("--search-threads"));
    } else if (Arg == "--wisdom") {
      Opts.Planner.WisdomPath = Next("--wisdom");
    } else if (Arg == "--no-wisdom") {
      Opts.Planner.UseWisdom = false;
    } else if (Arg == "--kernel-cache") {
      Opts.Planner.KernelCacheDir = Next("--kernel-cache");
    } else if (Arg == "--no-kernel-cache") {
      Opts.Planner.DisableKernelCache = true;
    } else if (Arg == "--version") {
      std::printf("%s\n", tools::versionString("spld").c_str());
      return tools::ExitOK;
    } else if (Arg == "-h" || Arg == "--help") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "spld: error: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return tools::ExitUsage;
    }
  }

  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "spld: error: --socket is required\n");
    printUsage();
    return tools::ExitUsage;
  }
  if (Opts.MaxInflight < 1 || Opts.PerClientInflight < 1 ||
      Opts.MaxExecThreads < 1 || Opts.MaxTransformSize < 2 ||
      Opts.Planner.SearchThreads < 1) {
    std::fprintf(stderr, "spld: error: limits must be >= 1 (--max-size >= "
                         "2)\n");
    return tools::ExitUsage;
  }

  // A serving daemon is always observable: the stats request scrapes the
  // registry, so counters must actually count.
  telemetry::setMetricsEnabled(true);

  service::Server Server(Opts);
  if (!Server.start()) {
    std::fputs(Server.diagnostics().dump().c_str(), stderr);
    return tools::ExitExec;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("spld: listening on %s\n", Opts.SocketPath.c_str());
  std::fflush(stdout);

  // Serve until a signal or a client shutdown request. Polling (rather
  // than sigwait) keeps both wake-up sources on one simple loop.
  while (!GotSignal && !Server.shutdownRequested())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::printf("spld: draining and saving wisdom\n");
  std::fflush(stdout);
  Server.stop();
  std::fputs(Server.diagnostics().dump().c_str(), stderr);
  return tools::ExitOK;
}
