//===- tools/splrun.cpp - The SPL runtime command-line driver ------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// splrun: plan a transform with the runtime layer and execute it, FFTW
/// benchmark style — one planning pass, then a (possibly multi-threaded)
/// batch of executions with timing. The --verify mode cross-checks the
/// native backend against the VM and 1-thread against N-thread batches.
///
///   splrun --transform fft --size 1024 --batch 4096 --threads 8 --verify
///     --transform <t>       transform kind from the registry: fft, wht,
///                           rdft, dct2, dct3, dct4 (default fft;
///                           docs/WORKLOADS.md)
///     --size <n>            transform size (required unless --shape)
///     --shape <n1xn2[x..]>  N-D row-column shape, e.g. 32x32 (the plan
///                           transforms the row-major flattening)
///     --batch <b>           vectors per batch (default 1)
///     --threads <t>         batch worker threads (default 1)
///     --howmany <m>         strided mode: batch count in the
///                           FFTW-advanced layout (with --stride/--dist)
///     --stride <s>          strided mode: doubles between consecutive
///                           elements of one logical vector (default 1)
///     --dist <d>            strided mode: doubles between vector starts
///                           (default 0 = densely packed given the stride)
///     --deadline-ms <n>     end-to-end budget covering planning plus the
///                           timed batch (0 = unbounded, the default);
///                           exit code 6 when it expires first. With
///                           --connect the remaining budget rides each
///                           request as the protocol v3 deadline field
///     --connect <socket>    serve the request through a running spld
///                           daemon instead of planning in-process
///     --shutdown            (with --connect) ask the daemon to drain and
///                           exit after the other requests
///     --backend auto|native|vm|oracle   execution substrate (default auto)
///     --codegen auto|scalar|vector      native kernel variant (default auto:
///                           the search decides; docs/VECTORIZATION.md)
///     --unroll <n>          -B unroll threshold (default 16)
///     --leaf <n>            largest straight-line sub-transform (default 16)
///     --eval opcount|vmtime|native   search cost model (default opcount)
///     --search-threads <t>  candidate-evaluation worker threads
///     --wisdom <file>       plan cache location ($SPL_WISDOM/~/.spl_wisdom)
///     --no-wisdom           neither read nor write the plan cache
///     --kernel-cache <dir>  persistent compiled-kernel cache
///                           ($SPL_KERNEL_CACHE, docs/KERNEL_CACHE.md)
///     --no-kernel-cache     never read or write the kernel cache
///     --verify              cross-check backends, a dense oracle, and
///                           thread counts
///     --stats               plan, wisdom and registry details on stderr
///     --stats-json <file>   dump the telemetry metrics registry as JSON
///     --trace-json <file>   dump pipeline spans as chrome://tracing JSON
///     --version             print version, build date and compiler
///
/// Exit codes (tools/ExitCodes.h): 0 ok, 2 usage, 3 spec rejected,
/// 4 planning/search failed, 5 verification failed, 6 deadline exceeded.
///
//===----------------------------------------------------------------------===//

#include "ExitCodes.h"
#include "Version.h"

#include "ir/Formula.h"
#include "runtime/AlignedBuffer.h"
#include "runtime/PlanRegistry.h"
#include "runtime/Planner.h"
#include "service/Client.h"
#include "support/Deadline.h"
#include "support/Timer.h"
#include "telemetry/Trace.h"
#include "transforms/Registry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

using namespace spl;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: splrun --size n|--shape n1xn2 [--transform t] [--batch b] "
      "[--threads t]\n"
      "              [--howmany m --stride s [--dist d]]\n"
      "              [--deadline-ms n] [--backend auto|native|vm|oracle]\n"
      "              [--codegen auto|scalar|vector] [--unroll n] [--leaf n]\n"
      "              [--eval opcount|vmtime|native] [--search-threads t]\n"
      "              [--wisdom file] [--no-wisdom] [--kernel-cache dir]\n"
      "              [--no-kernel-cache] [--verify] [--stats]\n"
      "              [--stats-json file] [--trace-json file] [--version]\n"
      "              [--connect socket [--shutdown]]\n");
}

/// Writes \p Content to \p Path; a one-line error on failure.
bool writeFileOrComplain(const std::string &Path, const std::string &Content,
                         const char *What) {
  std::ofstream Out(Path);
  if (Out)
    Out << Content;
  if (!Out) {
    std::fprintf(stderr, "splrun: error: cannot write %s to '%s'\n", What,
                 Path.c_str());
    return false;
  }
  return true;
}

/// Deterministic random batch input.
void fillRandom(double *X, std::int64_t Len, unsigned Seed) {
  std::mt19937 Gen(Seed);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  for (std::int64_t I = 0; I != Len; ++I)
    X[I] = Dist(Gen);
}

double maxAbsDiff(const double *A, const double *B, std::int64_t Len) {
  double M = 0;
  for (std::int64_t I = 0; I != Len; ++I)
    M = std::max(M, std::fabs(A[I] - B[I]));
  return M;
}

/// Parses "32x32" / "8x4x2" into dims; false on anything malformed.
bool parseShape(const char *Text, std::vector<std::int64_t> &Out) {
  Out.clear();
  const char *P = Text;
  while (*P) {
    char *End = nullptr;
    long long V = std::strtoll(P, &End, 10);
    if (End == P || V < 1)
      return false;
    Out.push_back(V);
    P = End;
    if (*P == 'x' || *P == 'X') {
      ++P;
      if (!*P)
        return false;
    } else if (*P) {
      return false;
    }
  }
  return !Out.empty();
}

/// Reports a daemon-side failure and maps its typed status onto the
/// documented CLI exit stage.
int clientFail(const service::Client &C, const char *What) {
  std::fprintf(stderr, "splrun: error: %s: %s (%s)\n", What,
               C.lastError().c_str(), service::statusName(C.lastStatus()));
  return service::statusToExitCode(C.lastStatus());
}

/// --connect mode: the same plan/execute/verify flow, but served by a
/// running spld daemon. Verification cross-checks the daemon's numbers
/// against a locally planned VM-backend plan (deterministic, no compiler
/// needed) and asserts resend determinism.
int runConnected(const std::string &Socket, const runtime::PlanSpec &Spec,
                 runtime::PlannerOptions POpts, std::int64_t Batch,
                 int Threads, std::int64_t DeadlineMs, bool Verify, bool Stats,
                 const std::string &StatsJsonPath, bool Shutdown) {
  service::Client Client;
  // The deadline clock starts before connect(): a daemon slow to accept is
  // spending the caller's budget too.
  Client.setDeadline(support::Deadline::afterMs(DeadlineMs));
  if (!Client.connect(Socket))
    return clientFail(Client, "cannot connect");

  if (Spec.Size != 0 || !Spec.Shape.empty()) {
    Timer PlanWall;
    auto PR = Client.planRetryBusy(Spec);
    if (!PR)
      return clientFail(Client, "plan request failed");
    std::printf("plan: %s: %s via spld%s%s\n", PR->Key.c_str(),
                PR->Backend.c_str(), PR->Fallback ? ", fallback: " : "",
                PR->Fallback ? PR->FallbackReason.c_str() : "");
    std::printf("planning took %.3f s (daemon round trip)\n",
                PlanWall.seconds());

    const std::int64_t Len = PR->VectorLen;
    runtime::AlignedBuffer X(static_cast<size_t>(Batch * Len));
    runtime::AlignedBuffer Y(static_cast<size_t>(Batch * Len));
    fillRandom(X.data(), Batch * Len, 7);

    Timer BatchWall;
    if (!Client.executeRetryBusy(Spec, Y.data(), X.data(), Batch, Len,
                                 Threads))
      return clientFail(Client, "execute request failed");
    double BatchSeconds = BatchWall.seconds();
    std::printf("batch %lld via spld: %.3f s (%.1f kvec/s)\n",
                static_cast<long long>(Batch), BatchSeconds,
                1e-3 * static_cast<double>(Batch) / BatchSeconds);

    int Failures = 0;
    if (Verify) {
      // Local reference: a VM-backend plan of the same spec. Deterministic
      // search (opcount) plus the interpreted substrate means the daemon's
      // answers must agree to rounding regardless of its resident tier.
      Diagnostics Diags;
      runtime::PlannerOptions LocalOpts = POpts;
      LocalOpts.UseWisdom = false; // Never race the daemon's wisdom file.
      runtime::Planner Local(Diags, LocalOpts);
      runtime::PlanSpec VMSpec = Spec;
      VMSpec.Want = runtime::Backend::VM;
      auto Ref = Local.plan(VMSpec);
      if (!Ref) {
        std::fputs(Diags.dump().c_str(), stderr);
        return tools::ExitCompile;
      }
      std::int64_t NCheck = std::min<std::int64_t>(Batch, 64);
      runtime::AlignedBuffer YRef(static_cast<size_t>(NCheck * Len));
      Ref->executeBatch(YRef.data(), X.data(), NCheck, 1);
      double Delta = maxAbsDiff(Y.data(), YRef.data(), NCheck * Len);
      bool OK = Delta <= 1e-10;
      std::printf("verify: spld vs local vm on %lld vectors: max |delta| = "
                  "%.3g (tol 1e-10): %s\n",
                  static_cast<long long>(NCheck), Delta, OK ? "OK" : "FAIL");
      Failures += !OK;

      // Determinism: the daemon must answer an identical request with
      // bit-identical output.
      runtime::AlignedBuffer Y2(static_cast<size_t>(Batch * Len));
      if (!Client.executeRetryBusy(Spec, Y2.data(), X.data(), Batch, Len,
                                   Threads))
        return clientFail(Client, "execute request failed");
      bool Identical =
          std::memcmp(Y.data(), Y2.data(),
                      static_cast<size_t>(Batch * Len) * sizeof(double)) == 0;
      std::printf("verify: repeated spld batch of %lld: %s\n",
                  static_cast<long long>(Batch),
                  Identical ? "bit-identical OK" : "MISMATCH");
      Failures += !Identical;
    }
    if (Failures) {
      std::fprintf(stderr, "splrun: %d verification failure%s\n", Failures,
                   Failures == 1 ? "" : "s");
      return tools::ExitExec;
    }
  }

  if (Stats || !StatsJsonPath.empty()) {
    auto Json = Client.stats();
    if (!Json)
      return clientFail(Client, "stats request failed");
    if (Stats)
      std::fprintf(stderr, "spld stats: %s\n", Json->c_str());
    if (!StatsJsonPath.empty() &&
        !writeFileOrComplain(StatsJsonPath, *Json + "\n", "daemon stats JSON"))
      return tools::ExitExec;
  }

  if (Shutdown && !Client.shutdownServer())
    return clientFail(Client, "shutdown request failed");
  return tools::ExitOK;
}

} // namespace

int main(int Argc, char **Argv) {
  runtime::PlanSpec Spec;
  runtime::PlannerOptions POpts;
  std::int64_t Batch = 1;
  int Threads = 1;
  std::int64_t DeadlineMs = 0;
  std::int64_t HowMany = 0; // 0 = not set; strided mode uses Batch then.
  std::int64_t Stride = 1;
  std::int64_t Dist = 0;
  bool Strided = false;
  bool Verify = false;
  bool Stats = false;
  std::string StatsJsonPath;
  std::string TraceJsonPath;
  std::string ConnectPath;
  bool Shutdown = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "splrun: error: %s needs a value\n", Flag);
        std::exit(tools::ExitUsage);
      }
      return Argv[++I];
    };
    if (Arg == "--transform") {
      Spec.Transform = Next("--transform");
      // Unknown transform names are a usage error (exit 2), distinct from
      // a structurally invalid spec (exit 3): the flag value itself is
      // wrong, and the registry knows the full menu.
      if (!transforms::lookup(Spec.Transform)) {
        std::fprintf(stderr,
                     "splrun: error: unknown transform '%s' (supported: "
                     "%s)\n",
                     Spec.Transform.c_str(),
                     transforms::supportedNames().c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--size") {
      Spec.Size = std::atoll(Next("--size"));
    } else if (Arg == "--shape") {
      const char *Text = Next("--shape");
      if (!parseShape(Text, Spec.Shape)) {
        std::fprintf(stderr,
                     "splrun: error: --shape wants n1xn2[x...] with every "
                     "dimension >= 1 (got '%s')\n",
                     Text);
        return tools::ExitUsage;
      }
    } else if (Arg == "--howmany") {
      HowMany = std::atoll(Next("--howmany"));
      Strided = true;
    } else if (Arg == "--stride") {
      Stride = std::atoll(Next("--stride"));
      Strided = true;
    } else if (Arg == "--dist") {
      Dist = std::atoll(Next("--dist"));
      Strided = true;
    } else if (Arg == "--batch") {
      Batch = std::atoll(Next("--batch"));
    } else if (Arg == "--threads") {
      Threads = std::atoi(Next("--threads"));
    } else if (Arg == "--deadline-ms") {
      DeadlineMs = std::atoll(Next("--deadline-ms"));
      if (DeadlineMs < 0) {
        std::fprintf(stderr, "splrun: error: --deadline-ms must be >= 0\n");
        return tools::ExitUsage;
      }
    } else if (Arg == "--backend") {
      std::string Name = Next("--backend");
      if (!runtime::parseBackend(Name, Spec.Want)) {
        std::fprintf(stderr, "splrun: error: unknown backend '%s'\n",
                     Name.c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--codegen") {
      std::string Name = Next("--codegen");
      if (!runtime::parseCodegenMode(Name, Spec.Codegen)) {
        std::fprintf(stderr, "splrun: error: unknown codegen mode '%s'\n",
                     Name.c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--unroll") {
      Spec.UnrollThreshold = std::atoll(Next("--unroll"));
    } else if (Arg == "--leaf") {
      Spec.MaxLeaf = std::atoll(Next("--leaf"));
    } else if (Arg == "--eval") {
      POpts.Evaluator = Next("--eval");
      if (POpts.Evaluator != "opcount" && POpts.Evaluator != "vmtime" &&
          POpts.Evaluator != "native") {
        std::fprintf(stderr, "splrun: error: unknown cost model '%s'\n",
                     POpts.Evaluator.c_str());
        return tools::ExitUsage;
      }
    } else if (Arg == "--search-threads") {
      POpts.SearchThreads = std::atoi(Next("--search-threads"));
    } else if (Arg == "--wisdom") {
      POpts.WisdomPath = Next("--wisdom");
    } else if (Arg == "--no-wisdom") {
      POpts.UseWisdom = false;
    } else if (Arg == "--kernel-cache") {
      POpts.KernelCacheDir = Next("--kernel-cache");
    } else if (Arg == "--no-kernel-cache") {
      POpts.DisableKernelCache = true;
    } else if (Arg == "--connect") {
      ConnectPath = Next("--connect");
    } else if (Arg == "--shutdown") {
      Shutdown = true;
    } else if (Arg == "--verify") {
      Verify = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--stats-json") {
      StatsJsonPath = Next("--stats-json");
      telemetry::setMetricsEnabled(true);
    } else if (Arg == "--trace-json") {
      TraceJsonPath = Next("--trace-json");
      telemetry::setTracingEnabled(true);
    } else if (Arg == "--version") {
      std::printf("%s\n", tools::versionString("splrun").c_str());
      return tools::ExitOK;
    } else if (Arg == "-h" || Arg == "--help") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "splrun: error: unknown option '%s'\n",
                   Arg.c_str());
      printUsage();
      return tools::ExitUsage;
    }
  }

  if (Shutdown && ConnectPath.empty()) {
    std::fprintf(stderr, "splrun: error: --shutdown requires --connect\n");
    return tools::ExitUsage;
  }
  // In connect mode a size-less invocation is still useful (stats scrape,
  // shutdown); otherwise a size (or a shape) is mandatory.
  bool SizelessConnect =
      !ConnectPath.empty() && Spec.Size == 0 && Spec.Shape.empty() &&
      (Shutdown || Stats || !StatsJsonPath.empty());
  if (Spec.Size < 2 && Spec.Shape.empty() && !SizelessConnect) {
    std::fprintf(stderr, "splrun: error: --size must be >= 2\n");
    return tools::ExitUsage;
  }
  if (Batch < 1 || Threads < 1 || POpts.SearchThreads < 1) {
    std::fprintf(stderr,
                 "splrun: error: --batch, --threads and --search-threads "
                 "must be >= 1\n");
    return tools::ExitUsage;
  }
  if (Strided) {
    if (!ConnectPath.empty()) {
      // The wire protocol ships densely packed batches only; gather on the
      // client side instead of teaching the daemon every layout.
      std::fprintf(stderr,
                   "splrun: error: --stride/--dist/--howmany need a local "
                   "plan (not --connect)\n");
      return tools::ExitUsage;
    }
    if (HowMany == 0)
      HowMany = Batch;
    if (HowMany < 1 || Stride < 1 || Dist < 0) {
      std::fprintf(stderr,
                   "splrun: error: --howmany and --stride must be >= 1, "
                   "--dist >= 0\n");
      return tools::ExitUsage;
    }
  }

  Diagnostics Diags;
  // Spec rejection exits with the parse code; later planning trouble (a
  // search or compilation failure) is a distinct stage.
  if (!SizelessConnect && !runtime::Planner::validateSpec(Spec, Diags)) {
    std::fputs(Diags.dump().c_str(), stderr);
    return tools::ExitParse;
  }

  if (!ConnectPath.empty())
    return runConnected(ConnectPath, Spec, POpts, Batch, Threads, DeadlineMs,
                        Verify, Stats, StatsJsonPath, Shutdown);

  runtime::Planner Planner(Diags, POpts);
  runtime::PlanRegistry Registry(Planner);

  // One budget covers planning and the timed batch: whatever planning
  // leaves over bounds execution.
  const support::Deadline DL = support::Deadline::afterMs(DeadlineMs);

  Timer PlanWall;
  runtime::PlanError PErr = runtime::PlanError::None;
  auto Plan = Registry.acquire(Spec, DL, &PErr);
  double PlanSeconds = PlanWall.seconds();
  if (!Plan) {
    std::fputs(Diags.dump().c_str(), stderr);
    if (PErr == runtime::PlanError::DeadlineExceeded) {
      std::fprintf(stderr,
                   "splrun: error: the --deadline-ms budget expired while "
                   "planning\n");
      return tools::ExitDeadline;
    }
    return tools::ExitCompile;
  }
  if (POpts.UseWisdom)
    Planner.saveWisdom();

  std::printf("plan: %s\n", Plan->describe().c_str());
  std::printf("planning took %.3f s\n", PlanSeconds);

  const std::int64_t Len = Plan->vectorLen();
  runtime::AlignedBuffer X(static_cast<size_t>(Batch * Len));
  runtime::AlignedBuffer Y(static_cast<size_t>(Batch * Len));
  fillRandom(X.data(), Batch * Len, 7);

  // Single-vector latency (best-of-3, FFTW benchmark style).
  double Single =
      timeBestOf([&] { Plan->execute(Y.data(), X.data()); }, 3);
  std::printf("single-vector latency: %.3f us (%.1f kvec/s)\n", Single * 1e6,
              1e-3 / Single);

  // Batched throughput at the requested thread count, bounded by whatever
  // the planning pass left of the deadline budget. Strided mode times the
  // FFTW-advanced layout instead of the dense one.
  runtime::BatchLayout BL;
  runtime::AlignedBuffer SX(0), SY(0);
  if (Strided) {
    BL.HowMany = HowMany;
    BL.StrideX = BL.StrideY = Stride;
    BL.DistX = BL.DistY = Dist;
    const std::int64_t Span = (Len - 1) * Stride + 1;
    const std::int64_t D = Dist ? Dist : Span;
    if (Dist && Dist < Span) {
      std::fprintf(stderr,
                   "splrun: error: --dist %lld overlaps vectors of span "
                   "%lld (stride %lld)\n",
                   static_cast<long long>(Dist), static_cast<long long>(Span),
                   static_cast<long long>(Stride));
      return tools::ExitUsage;
    }
    const std::int64_t Total = (HowMany - 1) * D + Span;
    SX.resize(static_cast<size_t>(Total));
    SY.resize(static_cast<size_t>(Total));
    fillRandom(SX.data(), Total, 11);
  }

  Timer BatchWall;
  runtime::ExecStatus BS =
      Strided ? Plan->executeBatch(SY.data(), SX.data(), BL, DL, Threads)
              : Plan->executeBatch(Y.data(), X.data(), Batch, DL, Threads);
  if (BS == runtime::ExecStatus::DeadlineExceeded) {
    std::fprintf(stderr, "splrun: error: the --deadline-ms budget expired "
                         "before the batch finished\n");
    return tools::ExitDeadline;
  }
  double BatchSeconds = BatchWall.seconds();
  const std::int64_t Timed = Strided ? HowMany : Batch;
  std::printf("batch %lld%s @ %d thread%s: %.3f s (%.1f kvec/s)\n",
              static_cast<long long>(Timed),
              Strided ? " (strided)" : "", Threads,
              Threads == 1 ? "" : "s", BatchSeconds,
              1e-3 * static_cast<double>(Timed) / BatchSeconds);

  if (Stats) {
    auto RS = Registry.stats();
    std::fprintf(stderr, "registry: %zu plans, %zu hits, %zu misses\n",
                 Registry.size(), RS.Hits, RS.Misses);
    if (POpts.UseWisdom)
      std::fprintf(stderr, "%s (%s)\n", Planner.wisdom().summary().c_str(),
                   Planner.wisdomPath().c_str());
    if (telemetry::metricsEnabled()) {
      runtime::ExecStats PS = Plan->stats();
      std::fprintf(stderr,
                   "plan stats: %llu executes (p50 %llu ns), %llu batches "
                   "over %llu vectors (p50 %llu ns)\n",
                   static_cast<unsigned long long>(PS.Executes),
                   static_cast<unsigned long long>(PS.ExecuteNs.p50()),
                   static_cast<unsigned long long>(PS.Batches),
                   static_cast<unsigned long long>(PS.Vectors),
                   static_cast<unsigned long long>(PS.BatchNs.p50()));
    }
  }

  int Failures = 0;
  if (Verify) {
    const double Tol = 1e-10;
    // Cross-check against the VM on a bounded prefix of the batch (the VM
    // interprets i-code, so a full 4096-vector sweep would dominate run
    // time without strengthening the check).
    std::int64_t NCheck = std::min<std::int64_t>(Batch, 256);
    if (Plan->backend() == runtime::Backend::Native) {
      runtime::PlanSpec VMSpec = Spec;
      VMSpec.Want = runtime::Backend::VM;
      auto VMPlan = Registry.acquire(VMSpec);
      if (!VMPlan) {
        std::fputs(Diags.dump().c_str(), stderr);
        return tools::ExitCompile;
      }
      runtime::AlignedBuffer YV(static_cast<size_t>(NCheck * Len));
      VMPlan->executeBatch(YV.data(), X.data(), NCheck, Threads);
      Plan->executeBatch(Y.data(), X.data(), NCheck, Threads);
      double Delta = maxAbsDiff(Y.data(), YV.data(), NCheck * Len);
      bool OK = Delta <= Tol;
      std::printf("verify: native vs vm on %lld vectors: max |delta| = "
                  "%.3g (tol %g): %s\n",
                  static_cast<long long>(NCheck), Delta, Tol,
                  OK ? "OK" : "FAIL");
      Failures += !OK;
    } else {
      std::printf("verify: native backend not in use (%s); skipping the "
                  "native-vs-vm check\n",
                  Plan->usedFallback() ? Plan->fallbackReason().c_str()
                                       : "vm requested");
    }

    // Vector kernels get a second native-vs-native check: the same spec
    // forced to scalar codegen must agree to tolerance (the two kernels
    // share i-code but nothing downstream of the emitters).
    if (Plan->backend() == runtime::Backend::Native &&
        Plan->codegenVariant() == codegen::CodegenVariant::Vector) {
      runtime::PlanSpec ScalarSpec = Spec;
      ScalarSpec.Codegen = runtime::CodegenMode::Scalar;
      auto SPlan = Registry.acquire(ScalarSpec);
      if (!SPlan) {
        std::fputs(Diags.dump().c_str(), stderr);
        return tools::ExitCompile;
      }
      runtime::AlignedBuffer YS(static_cast<size_t>(NCheck * Len));
      SPlan->executeBatch(YS.data(), X.data(), NCheck, Threads);
      Plan->executeBatch(Y.data(), X.data(), NCheck, Threads);
      double Delta = maxAbsDiff(Y.data(), YS.data(), NCheck * Len);
      bool OK = Delta <= Tol;
      std::printf("verify: vector vs scalar native on %lld vectors: max "
                  "|delta| = %.3g (tol %g): %s\n",
                  static_cast<long long>(NCheck), Delta, Tol,
                  OK ? "OK" : "FAIL");
      Failures += !OK;
    }

    // Independent dense-oracle check against the registry's matrix (the
    // Kronecker product of per-dimension oracles for N-D plans), so
    // whatever tier the degradation chain landed on — and whatever
    // formula/layout adapter produced the kernel — the plan's numbers are
    // checked against the transform's exact semantics. Bounded: the dense
    // apply is O(N^2).
    const transforms::TransformInfo *TI =
        transforms::lookup(Plan->spec().Transform);
    if (Plan->size() <= 4096 && TI) {
      std::vector<std::int64_t> Dims = Plan->spec().Shape;
      if (Dims.empty())
        Dims.push_back(Plan->size());
      Matrix M = transforms::oracleMatrix(*TI, Dims);
      const size_t N = M.cols();
      const bool ComplexData =
          Plan->layout() == runtime::Plan::Layout::Interleaved;
      std::vector<Cplx> In(N);
      for (size_t I = 0; I != N; ++I)
        In[I] = ComplexData ? Cplx(X.data()[2 * I], X.data()[2 * I + 1])
                            : Cplx(X.data()[I], 0.0);
      std::vector<Cplx> Ref = M.apply(In);
      Plan->execute(Y.data(), X.data());
      double Delta = 0;
      for (size_t I = 0; I != Ref.size(); ++I)
        if (ComplexData) {
          Delta = std::max(Delta,
                           std::fabs(Y.data()[2 * I] - Ref[I].real()));
          Delta = std::max(Delta,
                           std::fabs(Y.data()[2 * I + 1] - Ref[I].imag()));
        } else {
          Delta = std::max(Delta, std::fabs(Y.data()[I] - Ref[I].real()));
        }
      bool OK = Delta <= Tol;
      std::printf("verify: %s backend vs dense %s oracle: max |delta| = "
                  "%.3g (tol %g): %s\n",
                  runtime::backendName(Plan->backend()), TI->Name, Delta,
                  Tol, OK ? "OK" : "FAIL");
      Failures += !OK;
    }

    // Strided layout check: every gathered vector of the strided batch
    // must match a dense execute of the same gathered input.
    if (Strided) {
      const std::int64_t Span = (Len - 1) * Stride + 1;
      const std::int64_t D = Dist ? Dist : Span;
      runtime::AlignedBuffer DIn(static_cast<size_t>(Len));
      runtime::AlignedBuffer DOut(static_cast<size_t>(Len));
      double Delta = 0;
      for (std::int64_t V = 0; V != HowMany; ++V) {
        const double *Base = SX.data() + V * D;
        for (std::int64_t I = 0; I != Len; ++I)
          DIn.data()[I] = Base[I * Stride];
        Plan->execute(DOut.data(), DIn.data());
        const double *Got = SY.data() + V * D;
        for (std::int64_t I = 0; I != Len; ++I)
          Delta = std::max(Delta,
                           std::fabs(Got[I * Stride] - DOut.data()[I]));
      }
      bool OK = Delta <= Tol;
      std::printf("verify: strided batch of %lld (stride %lld, dist %lld) "
                  "vs dense: max |delta| = %.3g (tol %g): %s\n",
                  static_cast<long long>(HowMany),
                  static_cast<long long>(Stride),
                  static_cast<long long>(Dist ? Dist : D), Delta, Tol,
                  OK ? "OK" : "FAIL");
      Failures += !OK;
    }

    // Thread-count determinism: 1 thread vs the requested count must be
    // bit-identical. Bounded for the interpreted backend.
    std::int64_t NDet = Plan->backend() == runtime::Backend::Native
                            ? Batch
                            : std::min<std::int64_t>(Batch, 256);
    runtime::AlignedBuffer Y1(static_cast<size_t>(NDet * Len));
    Plan->executeBatch(Y1.data(), X.data(), NDet, 1);
    Plan->executeBatch(Y.data(), X.data(), NDet, Threads);
    bool Identical =
        std::memcmp(Y1.data(), Y.data(),
                    static_cast<size_t>(NDet * Len) * sizeof(double)) == 0;
    std::printf("verify: 1-thread vs %d-thread batch of %lld: %s\n", Threads,
                static_cast<long long>(NDet),
                Identical ? "bit-identical OK" : "MISMATCH");
    Failures += !Identical;
  }

  std::fputs(Diags.dump().c_str(), stderr);

  bool DumpFailed = false;
  if (!StatsJsonPath.empty())
    DumpFailed |= !writeFileOrComplain(StatsJsonPath,
                                       telemetry::metricsJson() + "\n",
                                       "metrics JSON");
  if (!TraceJsonPath.empty())
    DumpFailed |=
        !writeFileOrComplain(TraceJsonPath, telemetry::traceJson(),
                             "trace JSON");

  if (Failures) {
    std::fprintf(stderr, "splrun: %d verification failure%s\n", Failures,
                 Failures == 1 ? "" : "s");
    return tools::ExitExec;
  }
  return DumpFailed ? tools::ExitExec : tools::ExitOK;
}
