//===- tools/ExitCodes.h - Shared CLI exit codes ----------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exit codes shared by the command-line tools (splc, splrun) so scripts
/// and CI can tell failure stages apart. Documented in docs/RELIABILITY.md
/// and asserted by tests/ToolTest.cpp.
///
///   0  success
///   2  usage error: bad flags, missing values, unreadable input file
///   3  parse error: the SPL source or transform spec was rejected
///   4  compile/search error: planning, search, or code generation failed
///   5  execution error: running or verifying the transform failed
///   6  deadline exceeded: the --deadline-ms budget (or the server-side
///      deadline) expired before the work finished; retrying with a larger
///      budget may succeed, which is why it is distinct from 4/5
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TOOLS_EXITCODES_H
#define SPL_TOOLS_EXITCODES_H

namespace spl {
namespace tools {

enum ExitCode {
  ExitOK = 0,
  ExitUsage = 2,
  ExitParse = 3,
  ExitCompile = 4,
  ExitExec = 5,
  ExitDeadline = 6,
};

} // namespace tools
} // namespace spl

#endif // SPL_TOOLS_EXITCODES_H
