//===- bench/bench_spld_manyclient.cpp - spld under many-client load ----------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives an in-process spld Server with hundreds of concurrent client
/// threads issuing mixed plan/execute traffic over the real Unix-domain
/// socket, then checks the claims docs/SERVICE.md makes: no request is lost
/// (typed BUSY rejections are retried and eventually served), every daemon
/// result is bit-identical to an in-process plan of the same spec, execute
/// latency p99 (from the daemon's own spld.execute_ns histogram) stays
/// bounded, and no wisdom entry is lost across a drain-and-save shutdown.
/// Exit status is nonzero when any of those checks fails, so the CI smoke
/// job can run this as a gate rather than eyeballing a table.
///
/// Environment knobs (in addition to BenchUtil's):
///   SPL_SPLD_CLIENTS=<n>   concurrent client threads (default 200)
///   SPL_SPLD_REQS=<n>      requests per client (default 20)
///   SPL_SPLD_P99_MS=<n>    execute p99 budget in milliseconds (default 500)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/Planner.h"
#include "search/PlanCache.h"
#include "service/Client.h"
#include "service/Server.h"
#include "telemetry/Metrics.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace spl;
using namespace spl::bench;
using namespace spl::service;

namespace {

/// The mixed workload: small VM-tier transforms so the bench is about the
/// service layer (admission, framing, registry sharing), not kernel speed.
struct WorkItem {
  const char *Transform;
  std::int64_t Size;
};

constexpr WorkItem kWork[] = {
    {"fft", 8}, {"fft", 16}, {"fft", 32}, {"fft", 64},
    {"wht", 8}, {"wht", 16}, {"wht", 32}, {"wht", 64},
};
constexpr int kNumWork = static_cast<int>(sizeof(kWork) / sizeof(kWork[0]));

runtime::PlanSpec specFor(const WorkItem &W) {
  runtime::PlanSpec S;
  S.Transform = W.Transform;
  S.Size = W.Size;
  S.Want = runtime::Backend::VM; // Identical tier daemon-side and locally.
  return S;
}

/// Deterministic per-(item, vector) input so every thread hitting the same
/// work item checks against the same reference output.
void fillInput(std::vector<double> &X, int Item) {
  for (std::size_t I = 0; I != X.size(); ++I)
    X[I] = std::sin(0.13 * static_cast<double>(I + 7 * Item)) * 2.0 - 0.25;
}

} // namespace

int main() {
  printPreamble("spld many-client soak: mixed plan/execute traffic",
                "daemon parity with in-process plan/execute");

  const int Clients = static_cast<int>(envInt("SPL_SPLD_CLIENTS", 200));
  const int Reqs = static_cast<int>(envInt("SPL_SPLD_REQS", 20));
  const std::int64_t P99BudgetMs = envInt("SPL_SPLD_P99_MS", 500);
  const std::int64_t Batch = 4;

  telemetry::setMetricsEnabled(true);

  const std::string Socket =
      "/tmp/spl-bench-spld-" + std::to_string(getpid()) + ".sock";
  const std::string Wisdom = Socket + ".wisdom";
  ::unlink(Wisdom.c_str());

  ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.Workers = 8;
  Opts.MaxInflight = 64;
  Opts.PerClientInflight = 2;
  Opts.Planner.UseWisdom = true;
  Opts.Planner.WisdomPath = Wisdom;
  Opts.Planner.Evaluator = "opcount";
  Server Srv(Opts);
  if (!Srv.start()) {
    std::fprintf(stderr, "FAIL: server did not start:\n%s",
                 Srv.diagnostics().dump().c_str());
    return 1;
  }

  // In-process references: one plan per work item, same options minus the
  // wisdom file (never race the daemon's).
  Diagnostics Diags;
  runtime::PlannerOptions LocalOpts = Opts.Planner;
  LocalOpts.UseWisdom = false;
  runtime::Planner Local(Diags, LocalOpts);
  std::vector<std::shared_ptr<runtime::Plan>> RefPlans(kNumWork);
  std::vector<std::vector<double>> RefX(kNumWork), RefY(kNumWork);
  for (int I = 0; I != kNumWork; ++I) {
    RefPlans[I] = Local.plan(specFor(kWork[I]));
    if (!RefPlans[I]) {
      std::fprintf(stderr, "FAIL: reference plan %d:\n%s", I,
                   Diags.dump().c_str());
      return 1;
    }
    const std::int64_t Len = RefPlans[I]->vectorLen();
    RefX[I].resize(Batch * Len);
    RefY[I].resize(Batch * Len);
    fillInput(RefX[I], I);
    RefPlans[I]->executeBatch(RefY[I].data(), RefX[I].data(), Batch, 1);
  }

  std::printf("clients=%d  reqs/client=%d  workers=%d  max-inflight=%d  "
              "per-client=%d\n\n",
              Clients, Reqs, Opts.Workers, Opts.MaxInflight,
              Opts.PerClientInflight);

  std::atomic<std::uint64_t> Plans{0}, Executes{0}, Mismatches{0},
      Failures{0};
  std::mutex FirstErrM;
  std::string FirstErr;

  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  Threads.reserve(Clients);
  for (int T = 0; T != Clients; ++T)
    Threads.emplace_back([&, T] {
      Client C;
      if (!C.connect(Socket)) {
        Failures.fetch_add(1);
        std::lock_guard<std::mutex> L(FirstErrM);
        if (FirstErr.empty())
          FirstErr = "connect: " + C.lastError();
        return;
      }
      std::vector<double> Y;
      for (int R = 0; R != Reqs; ++R) {
        const int Item = (T + R) % kNumWork;
        const runtime::PlanSpec Spec = specFor(kWork[Item]);
        // Odd requests plan-only; even requests plan+execute. Retries
        // absorb typed BUSY so a bounded daemon still loses nothing.
        auto PR = C.planRetryBusy(Spec, /*Retries=*/256);
        if (!PR) {
          Failures.fetch_add(1);
          std::lock_guard<std::mutex> L(FirstErrM);
          if (FirstErr.empty())
            FirstErr = "plan " + Spec.key() + ": " + C.lastError();
          return;
        }
        Plans.fetch_add(1);
        if (R % 2 != 0)
          continue;
        const std::int64_t Len = PR->VectorLen;
        Y.assign(Batch * Len, 0.0);
        if (!C.executeRetryBusy(Spec, Y.data(), RefX[Item].data(), Batch,
                                Len, /*Threads=*/1, /*Retries=*/256)) {
          Failures.fetch_add(1);
          std::lock_guard<std::mutex> L(FirstErrM);
          if (FirstErr.empty())
            FirstErr = "execute " + Spec.key() + ": " + C.lastError();
          return;
        }
        Executes.fetch_add(1);
        if (std::memcmp(Y.data(), RefY[Item].data(),
                        Y.size() * sizeof(double)) != 0)
          Mismatches.fetch_add(1);
      }
    });
  for (auto &T : Threads)
    T.join();
  const double WallS =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  const Server::Stats SS = Srv.stats();
  const auto RegStats = Srv.registry().stats();
  const telemetry::HistogramSnapshot Exec =
      telemetry::histogram("spld.execute_ns").snapshot();
  const telemetry::HistogramSnapshot Plan =
      telemetry::histogram("spld.plan_ns").snapshot();

  std::printf("%-28s %12s\n", "measure", "value");
  std::printf("%-28s %12.2f\n", "wall seconds", WallS);
  std::printf("%-28s %12llu\n", "plans served",
              static_cast<unsigned long long>(Plans.load()));
  std::printf("%-28s %12llu\n", "executes served",
              static_cast<unsigned long long>(Executes.load()));
  std::printf("%-28s %12.0f\n", "requests/second",
              WallS > 0 ? (Plans.load() + Executes.load()) / WallS : 0.0);
  std::printf("%-28s %12llu\n", "busy rejections (retried)",
              static_cast<unsigned long long>(SS.RejectedBusy));
  std::printf("%-28s %12llu\n", "registry misses (searches)",
              static_cast<unsigned long long>(RegStats.Misses));
  std::printf("%-28s %12llu\n", "registry hits+waits",
              static_cast<unsigned long long>(RegStats.Hits + RegStats.Waits));
  std::printf("%-28s %12.3f\n", "plan p99 ms",
              static_cast<double>(Plan.p99()) / 1e6);
  std::printf("%-28s %12.3f\n", "execute p99 ms",
              static_cast<double>(Exec.p99()) / 1e6);

  const std::size_t HeldWisdom = Srv.planner().wisdom().size();
  Srv.stop();

  // --- Gates ------------------------------------------------------------
  int Rc = 0;
  auto gate = [&](bool OK, const char *What) {
    std::printf("%-44s %s\n", What, OK ? "OK" : "FAIL");
    if (!OK)
      Rc = 1;
  };
  std::printf("\n");
  gate(Failures.load() == 0 && FirstErr.empty(), "no lost requests");
  if (!FirstErr.empty())
    std::printf("  first error: %s\n", FirstErr.c_str());
  gate(Mismatches.load() == 0, "bit-identical vs in-process execution");
  gate(Plans.load() ==
           static_cast<std::uint64_t>(Clients) * static_cast<std::uint64_t>(Reqs),
       "every plan request answered");
  // Eight distinct specs across thousands of requests: the registry must
  // have searched each exactly once.
  gate(RegStats.Misses == static_cast<std::size_t>(kNumWork),
       "one search per distinct spec (single-flight)");
  gate(Exec.Count == Executes.load() && Exec.p99() > 0,
       "execute histogram saw every request");
  gate(static_cast<double>(Exec.p99()) / 1e6 <=
           static_cast<double>(P99BudgetMs),
       "execute p99 within budget");

  // No lost wisdom: the daemon saved on stop(); a fresh cache must load
  // every entry cleanly.
  {
    Diagnostics D2;
    search::PlanCache Reloaded(D2);
    const bool Loaded = Reloaded.load(Wisdom);
    gate(Loaded && Reloaded.stats().Skipped == 0 &&
             Reloaded.size() >= HeldWisdom && HeldWisdom > 0,
         "no lost wisdom across shutdown");
    if (Loaded)
      std::printf("  wisdom entries: held %zu, reloaded %zu\n", HeldWisdom,
                  Reloaded.size());
  }
  ::unlink(Wisdom.c_str());

  JsonReport Report("spld_manyclient");
  Report.num("clients", Clients);
  Report.num("reqs_per_client", Reqs);
  Report.num("wall_s", WallS);
  Report.num("plans_served", static_cast<double>(Plans.load()));
  Report.num("executes_served", static_cast<double>(Executes.load()));
  Report.num("requests_per_second",
             WallS > 0 ? (Plans.load() + Executes.load()) / WallS : 0.0);
  Report.num("busy_rejections", static_cast<double>(SS.RejectedBusy));
  Report.num("plan_p99_ms", static_cast<double>(Plan.p99()) / 1e6);
  Report.num("execute_p99_ms", static_cast<double>(Exec.p99()) / 1e6);
  Report.boolean("gates_passed", Rc == 0);
  Report.write();

  std::printf("\n%s\n", Rc == 0 ? "ALL GATES PASSED" : "GATES FAILED");
  return Rc;
}
