//===- bench/bench_runtime_batch.cpp - Runtime batch throughput ----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the plan/execute runtime layer: single-vector latency of a
/// planned transform, then batched throughput as the worker-thread count
/// grows. On a multicore host throughput should rise monotonically from 1 to
/// 4 threads for sizes whose per-vector work amortizes dispatch. Mirrors how
/// FFTW reports planned performance (plan once, execute many).
///
/// Environment knobs (in addition to BenchUtil's):
///   SPL_RT_MAXLG=<k>     largest FFT size 2^k to plan (default 12)
///   SPL_RT_BATCH=<b>     vectors per batch (default 2048)
///   SPL_RT_MAXTHREADS=<t> largest worker count to sweep (default 8)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/Planner.h"

#include <cstdio>
#include <random>
#include <thread>
#include <vector>

using namespace spl;
using namespace spl::bench;

int main() {
  printPreamble("Runtime layer: batched multi-threaded dispatch",
                "FFTW-style plan/execute on the searched winners");

  const std::int64_t MaxLg = envInt("SPL_RT_MAXLG", 12);
  const std::int64_t Batch = envInt("SPL_RT_BATCH", 2048);
  const int MaxThreads = static_cast<int>(envInt("SPL_RT_MAXTHREADS", 8));
  std::printf("host reports %u hardware threads\n\n",
              std::thread::hardware_concurrency());

  Diagnostics Diags;
  runtime::PlannerOptions POpts;
  POpts.UseWisdom = false; // Self-contained runs; no cache file traffic.
  if (!nativeAllowed()) {
    // Force the portable substrate explicitly so the table says so.
    std::puts("note: VM backend (no C compiler); absolute numbers are "
              "interpreter-bound\n");
  }
  runtime::Planner Planner(Diags, POpts);

  std::vector<int> ThreadCounts;
  for (int T = 1; T <= MaxThreads; T *= 2)
    ThreadCounts.push_back(T);

  std::printf("%8s  %12s  %10s", "N", "latency us", "backend");
  for (int T : ThreadCounts)
    std::printf("  %8s%d", "kvec/s@", T);
  std::printf("\n");

  for (std::int64_t Lg = 4; Lg <= MaxLg; Lg += 2) {
    runtime::PlanSpec Spec;
    Spec.Size = std::int64_t(1) << Lg;
    Spec.Want =
        nativeAllowed() ? runtime::Backend::Auto : runtime::Backend::VM;
    auto Plan = Planner.plan(Spec);
    if (!Plan) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }

    const std::int64_t Len = Plan->vectorLen();
    // The VM is 10-60x slower than native code; shrink its batches so the
    // sweep stays interactive.
    const std::int64_t B =
        Plan->backend() == runtime::Backend::VM
            ? std::max<std::int64_t>(ThreadCounts.back(), Batch / 16)
            : Batch;
    std::vector<double> X(static_cast<size_t>(B * Len)),
        Y(static_cast<size_t>(B * Len));
    std::mt19937 Gen(11);
    std::uniform_real_distribution<double> Dist(-1, 1);
    for (double &V : X)
      V = Dist(Gen);

    double Single = timeBestOf([&] { Plan->execute(Y.data(), X.data()); }, 3);
    std::printf("%8lld  %12.3f  %10s", static_cast<long long>(Spec.Size),
                Single * 1e6, backendName(Plan->backend()));

    for (int T : ThreadCounts) {
      Timer Wall;
      Plan->executeBatch(Y.data(), X.data(), B, T);
      double Sec = Wall.seconds();
      std::printf("  %9.1f", 1e-3 * static_cast<double>(B) / Sec);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::puts("\nthroughput should grow monotonically 1 -> 4 threads on a "
            "multicore host\n(flat columns mean the host has fewer cores "
            "than workers, or vectors are\ntoo small to amortize dispatch).");
  return 0;
}
