//===- bench/bench_abl_optimizer_passes.cpp - Ablation A3 -----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A3: contribution of each default optimization (Section 3.4's
/// single value-numbering pass: constant folding, copy propagation, CSE,
/// plus DCE). Each row disables one ingredient on the fully unrolled
/// 64-point FFT winner and reports the surviving operation count and code
/// size.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "driver/Compiler.h"
#include "gen/Rules.h"

#include <cstdio>

using namespace spl;
using namespace spl::bench;

int main() {
  printPreamble("Ablation A3: optimizer pass contributions",
                "Section 3.4 (value numbering + DCE ingredients)");

  FormulaRef F = gen::recursiveFFT(64);
  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  DirectiveState Dirs;
  Dirs.SubName = "fft64";

  struct Config {
    const char *Name;
    bool Fold, Copy, CSE, Algebraic, DCE;
  } Configs[] = {
      {"all passes", true, true, true, true, true},
      {"no constant folding", false, true, true, true, true},
      {"no copy propagation", true, false, true, true, true},
      {"no CSE", true, true, false, true, true},
      {"no algebraic ids", true, true, true, false, true},
      {"no DCE", true, true, true, true, false},
      {"none (level 1 only)", false, false, false, false, false},
  };

  std::printf("%-22s  %10s  %10s  %12s\n", "configuration", "instrs",
              "flops", "MFlops");
  for (const Config &C : Configs) {
    driver::CompilerOptions Opts;
    Opts.UnrollThreshold = 64;
    Opts.EmitCode = false;
    Opts.VN.ConstantFold = C.Fold;
    Opts.VN.CopyProp = C.Copy;
    Opts.VN.CSE = C.CSE;
    Opts.VN.Algebraic = C.Algebraic;
    Opts.RunDCE = C.DCE;
    auto Unit = Compiler.compileFormula(F, Dirs, Opts);
    if (!Unit) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    KernelTime T = timeFinal(Unit->Final);
    std::printf("%-22s  %10zu  %10llu  %12.1f%s\n", C.Name,
                Unit->Final.staticSize(),
                static_cast<unsigned long long>(
                    Unit->Final.dynamicOpCount()),
                perf::pseudoMFlops(64, T.Seconds),
                T.Native ? "" : "  [VM]");
  }

  std::puts("\nexpected: constant folding (twiddle constants) and DCE carry\n"
            "most of the reduction; CSE and copy propagation compound it.");
  return 0;
}
