//===- bench/bench_abl_unroll_threshold.cpp - Ablation A1 ----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A1: the -B unrolling threshold (Sections 3.3.1 and 4.1). One
/// fixed F_1024 formula (right-most binary, leaf 64) is compiled with
/// thresholds 0..256; the table shows the speed/code-size trade-off that
/// made the paper choose straight-line code below 64 and loop code above.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "driver/Compiler.h"
#include "gen/Rules.h"
#include "ir/Builder.h"

#include <cstdio>

using namespace spl;
using namespace spl::bench;

namespace {

/// Right-most binary F_N with straight-line-targetable 64-point leaves.
FormulaRef rightmost(std::int64_t N) {
  if (N <= 64)
    return gen::recursiveFFT(N);
  return gen::ruleCooleyTukeyDIT(64, N / 64, gen::recursiveFFT(64),
                                 rightmost(N / 64));
}

} // namespace

int main() {
  printPreamble("Ablation A1: unrolling threshold (-B) sweep",
                "Sections 3.3.1 / 4.1 (straight-line vs loop code)");

  const std::int64_t N = 1024;
  FormulaRef F = rightmost(N);

  std::printf("%10s  %12s  %12s  %12s\n", "-B", "MFlops", "instrs",
              "flops");
  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  DirectiveState Dirs;
  Dirs.SubName = "fft1k";

  for (std::int64_t B : {0, 2, 4, 8, 16, 32, 64, 128, 256}) {
    driver::CompilerOptions Opts;
    Opts.UnrollThreshold = B;
    Opts.EmitCode = false;
    auto Unit = Compiler.compileFormula(F, Dirs, Opts);
    if (!Unit) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    KernelTime T = timeFinal(Unit->Final);
    std::printf("%10lld  %12.1f  %12zu  %12llu%s\n",
                static_cast<long long>(B),
                perf::pseudoMFlops(N, T.Seconds), Unit->Final.staticSize(),
                static_cast<unsigned long long>(
                    Unit->Final.dynamicOpCount()),
                T.Native ? "" : "  [VM]");
    std::fflush(stdout);
  }

  std::puts("\nexpected: larger thresholds trade code size for fewer loop\n"
            "overheads and better scalarization, flattening out once the\n"
            "64-point leaves are fully unrolled.");
  return 0;
}
