//===- bench/bench_fig3_small_fft.cpp - Figure 3 -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3: performance of small-size FFTs (N = 2..64) in pseudo MFlops
/// (5 N log2 N / t). The SPL side searches exhaustively over Equation-10
/// factorizations with fully unrolled straight-line code (Section 4.1); the
/// comparison side is the baseline library's straight-line codelets (the
/// stand-in for FFTW's codelets; see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baseline/Codelets.h"

#include <cstdio>
#include <random>

using namespace spl;
using namespace spl::bench;

int main() {
  printPreamble("Figure 3: small-size FFT performance",
                "Figure 3 (SPL vs codelets, N = 2..64, pseudo MFlops)");

  Diagnostics Diags;
  auto Eval = makeEvaluator(Diags, /*UnrollThreshold=*/64);
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 64;
  search::DPSearch Search(*Eval, Diags, SOpts);
  auto Winners = Search.searchSmall(64);
  if (Winners.empty()) {
    std::fputs(Diags.dump().c_str(), stderr);
    return 1;
  }

  std::printf("%6s  %12s  %12s  %10s  %s\n", "N", "SPL", "codelet",
              "SPL/cdlt", "winning formula");
  std::printf("%6s  %12s  %12s\n", "", "(MFlops)", "(MFlops)");

  for (auto &[N, Cand] : Winners) {
    auto Compiled = Eval->compile(Cand.Formula);
    if (!Compiled) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    KernelTime SPL = timeFinal(Compiled->Final);

    // Time the baseline codelet on matching data.
    std::mt19937 Gen(17);
    std::uniform_real_distribution<double> Dist(-1, 1);
    std::vector<baseline::C> X(N), Y(N);
    for (auto &V : X)
      V = baseline::C(Dist(Gen), Dist(Gen));
    std::int64_t Size = N; // Structured binding members can't be captured.
    double CodeletSec = timeBestOf(
        [&, Size] { baseline::codelet(Size, X.data(), 1, Y.data()); }, 3);

    double SplMF = perf::pseudoMFlops(N, SPL.Seconds);
    double CdMF = perf::pseudoMFlops(N, CodeletSec);
    std::string Formula = Cand.Formula->print();
    if (Formula.size() > 40)
      Formula = Formula.substr(0, 37) + "...";
    std::printf("%6lld  %12.1f  %12.1f  %10.2f  %s%s\n",
                static_cast<long long>(N), SplMF, CdMF, SplMF / CdMF,
                Formula.c_str(), SPL.Native ? "" : "  [VM]");
  }

  std::puts("\npaper's shape: SPL-generated straight-line code is "
            "competitive with\nthe hand-arranged codelets across all small "
            "sizes.");
  return 0;
}
