//===- bench/bench_fig6_accuracy.cpp - Figure 6 --------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 6: accuracy of the generated FFTs, N = 2^1 .. 2^18: the benchfft
/// relative-error metric (||y - y_ref|| / ||y_ref|| on random inputs,
/// long-double reference) of each size's search winner. Doubles carry
/// epsilon ~2.2e-16; a well-behaved FFT stays within a small multiple.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "perf/Accuracy.h"

#include <cstdio>

using namespace spl;
using namespace spl::bench;

int main() {
  printPreamble("Figure 6: accuracy of the FFT computation",
                "Figure 6 (relative error vs size, benchfft metric)");
  int MaxLg = static_cast<int>(envInt("SPL_ACC_MAXLG", 18));

  Diagnostics Diags;
  auto Eval = makeEvaluator(Diags, /*UnrollThreshold=*/64);
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 64;
  SOpts.KeepBest = 3;
  search::DPSearch Search(*Eval, Diags, SOpts);

  std::printf("%10s  %14s  %14s\n", "N", "rel. error", "x eps(2.2e-16)");

  for (int Lg = 1; Lg <= MaxLg; ++Lg) {
    std::int64_t N = std::int64_t(1) << Lg;
    auto Best = Search.best(N);
    if (!Best) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    auto Compiled = Eval->compile(Best->Formula);
    if (!Compiled)
      return 1;

    // Run the generated code through the VM: bit-identical arithmetic to
    // the emitted C (same operation order), no compiler reassociation.
    auto VM = std::make_shared<vm::Executor>(Compiled->Final);
    auto Fn = [VM](const std::vector<Cplx> &In, std::vector<Cplx> &Out) {
      std::vector<double> XR(In.size() * 2), YR;
      for (size_t I = 0; I != In.size(); ++I) {
        XR[2 * I] = In[I].real();
        XR[2 * I + 1] = In[I].imag();
      }
      VM->runReal(XR, YR);
      Out.resize(YR.size() / 2);
      for (size_t I = 0; I != Out.size(); ++I)
        Out[I] = Cplx(YR[2 * I], YR[2 * I + 1]);
    };

    int Trials = Lg <= 12 ? 4 : 2;
    double Err = perf::relativeError(N, Fn, Trials);
    std::printf("%10lld  %14.3e  %14.1f\n", static_cast<long long>(N), Err,
                Err / 2.220446049250313e-16);
    std::fflush(stdout);
  }

  std::puts("\npaper's shape: the relative error grows very slowly with "
            "size\n(O(sqrt(log N)) for Cooley-Tukey) and stays near machine "
            "precision.");
  return 0;
}
