//===- bench/bench_deadline_overload.cpp - Deadlines under overload -----------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable form of the deadline/overload acceptance gates
/// (docs/RELIABILITY.md "Latency bounds and overload"):
///
///   (a) shed-before-work: requests whose deadline expired while queued
///       behind a busy worker are answered with a typed DEADLINE_EXCEEDED
///       and consume zero pool execute time — the spld.execute_ns
///       histogram must not grow during a deadline storm
///   (b) breaker payoff: a forced compiler-failure storm (every compile
///       hangs to its timeout) trips the circuit breaker after K
///       consecutive failures, and p99 plan latency under the open breaker
///       is >= 10x lower than with the breaker disabled
///   (c) pressure determinism: every vector a deadline-pressured batch
///       does complete is bit-identical to the unpressured run —
///       cancellation lands between vectors, never inside one
///
/// Environment knobs (in addition to BenchUtil's):
///   SPL_DO_SATURATE=<n>   vectors in the worker-saturating batch (20000)
///   SPL_DO_STORM=<n>      1 ms-deadline clients in the storm (default 8)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/Planner.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/CircuitBreaker.h"
#include "support/Deadline.h"
#include "support/FaultInjection.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace spl;
using namespace spl::bench;

namespace {

int Rc = 0;

void gate(bool OK, const char *What) {
  std::printf("%-58s %s\n", What, OK ? "OK" : "FAIL");
  if (!OK)
    Rc = 1;
}

double p99Ms(std::vector<double> MsSamples) {
  if (MsSamples.empty())
    return 0;
  std::sort(MsSamples.begin(), MsSamples.end());
  const std::size_t Idx =
      (MsSamples.size() * 99 + 99) / 100 - 1; // ceil(0.99 n) - 1
  return MsSamples[std::min(Idx, MsSamples.size() - 1)];
}

/// Gate (a): a single-worker daemon, its worker pinned by one long batch,
/// while a storm of 1 ms-deadline requests queues behind it. Every stormer
/// must get the typed rejection and the execute histogram must count only
/// the saturating batch.
void gateShedBeforeWork(JsonReport &Report) {
  const std::int64_t Saturate = envInt("SPL_DO_SATURATE", 20000);
  const int Storm = static_cast<int>(envInt("SPL_DO_STORM", 8));
  const std::string Socket =
      "/tmp/spl-bench-dlo-" + std::to_string(getpid()) + ".sock";

  service::ServerOptions Opts;
  Opts.SocketPath = Socket;
  Opts.Workers = 1; // One worker makes "queued behind a busy pool" exact.
  Opts.MaxInflight = Storm + 4;
  Opts.Planner.UseWisdom = false;
  service::Server Srv(Opts);
  if (!Srv.start()) {
    std::fprintf(stderr, "server did not start:\n%s",
                 Srv.diagnostics().dump().c_str());
    gate(false, "(a) daemon started");
    return;
  }

  runtime::PlanSpec Spec;
  Spec.Size = 64;
  Spec.Want = runtime::Backend::VM; // Deterministic, compiler-free.

  // Warm the registry so the storm measures queueing, not planning.
  std::int64_t Len = 0;
  {
    service::Client C;
    if (!C.connect(Socket)) {
      gate(false, "(a) warmup connect");
      Srv.stop();
      return;
    }
    auto PR = C.plan(Spec);
    if (!PR) {
      gate(false, "(a) warmup plan");
      Srv.stop();
      return;
    }
    Len = PR->VectorLen;
  }

  const std::uint64_t ExecBefore =
      telemetry::histogram("spld.execute_ns").snapshot().Count;
  const std::uint64_t TypedBefore =
      telemetry::counter("spld.deadline_exceeded").value();

  // The saturating batch: one unbounded client occupies the only worker.
  std::atomic<bool> SaturatorOk{false};
  std::vector<double> BigX(static_cast<std::size_t>(Saturate * Len), 0.5),
      BigY(static_cast<std::size_t>(Saturate * Len));
  std::thread Saturator([&] {
    service::Client C;
    if (!C.connect(Socket))
      return;
    SaturatorOk.store(C.execute(Spec, BigY.data(), BigX.data(), Saturate,
                                Len));
  });

  // Give the saturating frame time to reach the worker, then unleash the
  // storm: each request carries a 1 ms budget that is long dead by the
  // time the worker frees up.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::atomic<int> TypedRejections{0}, OtherOutcomes{0};
  std::vector<std::thread> Stormers;
  Stormers.reserve(Storm);
  for (int I = 0; I != Storm; ++I)
    Stormers.emplace_back([&] {
      service::Client C;
      if (!C.connect(Socket)) {
        OtherOutcomes.fetch_add(1);
        return;
      }
      C.setDeadline(support::Deadline::afterMs(1));
      std::vector<double> X(static_cast<std::size_t>(Len), 1.0),
          Y(static_cast<std::size_t>(Len));
      if (!C.execute(Spec, Y.data(), X.data(), 1, Len) &&
          C.lastStatus() == service::Status::DeadlineExceeded)
        TypedRejections.fetch_add(1);
      else
        OtherOutcomes.fetch_add(1);
    });
  for (auto &T : Stormers)
    T.join();
  Saturator.join();

  const std::uint64_t ExecDelta =
      telemetry::histogram("spld.execute_ns").snapshot().Count - ExecBefore;
  const service::Server::Stats SS = Srv.stats();
  Srv.stop();

  std::printf("storm of %d x 1 ms deadlines behind a %lld-vector batch: "
              "%d typed rejections, execute histogram grew by %llu\n",
              Storm, static_cast<long long>(Saturate),
              TypedRejections.load(),
              static_cast<unsigned long long>(ExecDelta));

  gate(SaturatorOk.load(), "(a) the saturating batch itself succeeded");
  gate(TypedRejections.load() == Storm && OtherOutcomes.load() == 0,
       "(a) every queued-out request rejected as DEADLINE_EXCEEDED");
  gate(ExecDelta == 1,
       "(a) rejections consumed zero pool execute time (histogram +1)");
  gate(SS.RejectedDeadline == static_cast<std::uint64_t>(Storm),
       "(a) server stats counted every deadline rejection");
  gate(telemetry::counter("spld.deadline_exceeded").value() - TypedBefore ==
           static_cast<std::uint64_t>(Storm),
       "(a) spld.deadline_exceeded counted every rejection");

  Report.num("storm_clients", Storm);
  Report.num("storm_typed_rejections", TypedRejections.load());
  Report.num("storm_execute_histogram_delta",
             static_cast<double>(ExecDelta));
}

/// Gate (c): one unpressured batch as reference, then the same batch under
/// a deadline that fires mid-run. Every vector the pressured run completed
/// must be bit-identical; untouched vectors keep their NaN sentinel.
void gatePressureDeterminism(JsonReport &Report) {
  Diagnostics Diags;
  runtime::PlannerOptions POpts;
  POpts.UseWisdom = false;
  runtime::Planner Planner(Diags, POpts);
  runtime::PlanSpec Spec;
  Spec.Size = 256;
  Spec.Want = runtime::Backend::VM;
  auto P = Planner.plan(Spec);
  if (!P) {
    std::fputs(Diags.dump().c_str(), stderr);
    gate(false, "(c) reference plan");
    return;
  }

  const std::int64_t Batch = 4096;
  const std::int64_t Len = P->vectorLen();
  std::vector<double> X(static_cast<std::size_t>(Batch * Len));
  for (std::size_t I = 0; I != X.size(); ++I)
    X[I] = std::sin(0.21 * static_cast<double>(I)) - 0.4;
  std::vector<double> YRef(static_cast<std::size_t>(Batch * Len));
  P->executeBatch(YRef.data(), X.data(), Batch, 1);

  // A comfortable budget must change nothing, bit for bit.
  std::vector<double> YOk(static_cast<std::size_t>(Batch * Len));
  const runtime::ExecStatus StOk = P->executeBatch(
      YOk.data(), X.data(), Batch, support::Deadline::afterMs(60000), 1);
  gate(StOk == runtime::ExecStatus::Ok && YOk == YRef,
       "(c) ample deadline: status Ok, bit-identical to unpressured");

  // A 1 ms budget over an interpreter-bound 4096-vector batch fires
  // mid-run; the completed prefix must match the reference exactly.
  const double NaN = std::nan("");
  std::vector<double> YCut(static_cast<std::size_t>(Batch * Len), NaN);
  const runtime::ExecStatus StCut = P->executeBatch(
      YCut.data(), X.data(), Batch, support::Deadline::afterMs(1), 1);
  std::int64_t Computed = 0;
  bool PrefixIdentical = true;
  for (std::int64_t V = 0; V != Batch; ++V) {
    const double *Row = YCut.data() + V * Len;
    if (std::isnan(Row[0]))
      continue; // Never touched — the deadline landed before this vector.
    ++Computed;
    for (std::int64_t I = 0; I != Len; ++I)
      if (Row[I] != YRef[static_cast<std::size_t>(V * Len + I)])
        PrefixIdentical = false;
  }
  std::printf("pressured batch completed %lld of %lld vectors before the "
              "1 ms budget fired\n",
              static_cast<long long>(Computed),
              static_cast<long long>(Batch));
  gate(PrefixIdentical,
       "(c) every vector completed under pressure is bit-identical");
  gate(StCut == runtime::ExecStatus::Ok || Computed < Batch,
       "(c) DeadlineExceeded implies an incomplete batch, never a lie");

  Report.num("pressured_vectors_completed", static_cast<double>(Computed));
  Report.boolean("pressure_bit_identical", PrefixIdentical);
}

/// Gate (b): every compile hangs to a 150 ms leash. Disabled breaker: each
/// plan pays the full timeout. Open breaker: compile attempts fail fast
/// and plans degrade to the VM tier in milliseconds.
void gateBreakerPayoff(JsonReport &Report) {
  if (!nativeAllowed()) {
    std::puts("(b) no C compiler (or SPL_NO_NATIVE); breaker gate "
              "trivially green");
    Report.boolean("breaker_skipped", true);
    return;
  }

  setenv("SPL_FAULT", "native-compile-hang", 1);
  setenv("SPL_CC_TIMEOUT_MS", "150", 1);
  fault::reset();

  auto planMs = [](std::int64_t Size) {
    Diagnostics Diags;
    runtime::PlannerOptions POpts;
    POpts.UseWisdom = false;
    POpts.DisableKernelCache = true;
    runtime::Planner Planner(Diags, POpts);
    runtime::PlanSpec Spec;
    Spec.Size = Size;
    Timer Wall;
    auto P = Planner.plan(Spec);
    double Ms = Wall.seconds() * 1e3;
    return std::make_pair(P != nullptr, Ms);
  };
  // Small sizes keep the DP search itself in the noise, so the measured
  // latency is the compile path: the 150 ms leash when disabled, the
  // fail-fast rejection when open. Two passes of four sizes give eight
  // samples per phase (fresh Planner each plan, so nothing is memoized).
  const std::vector<std::int64_t> Sizes = {8, 16, 32, 64, 8, 16, 32, 64};

  // Phase 1 — breaker disabled (the library default): every plan forks the
  // hanging compiler and eats the full 150 ms leash before degrading.
  support::compileBreaker().configure(0, 0);
  std::vector<double> DisabledMs;
  for (std::int64_t N : Sizes) {
    auto [OK, Ms] = planMs(N);
    if (!OK) {
      gate(false, "(b) plans still succeed (VM tier) under the storm");
      return;
    }
    DisabledMs.push_back(Ms);
  }

  // Phase 2 — breaker armed at K=3 with a long cooldown: three sacrificial
  // plans trip it, then the same eight sizes plan under the open breaker.
  const std::uint64_t Trips0 =
      telemetry::counter("runtime.breaker.trips").value();
  support::compileBreaker().configure(3, 600000);
  for (std::int64_t N : {8, 16, 32})
    planMs(N);
  const bool Tripped =
      support::compileBreaker().state() ==
      support::CircuitBreaker::State::Open;
  std::vector<double> OpenMs;
  for (std::int64_t N : Sizes) {
    auto [OK, Ms] = planMs(N);
    if (!OK) {
      gate(false, "(b) plans still succeed (VM tier) under the storm");
      return;
    }
    OpenMs.push_back(Ms);
  }

  unsetenv("SPL_FAULT");
  unsetenv("SPL_CC_TIMEOUT_MS");
  fault::reset();
  support::compileBreaker().configure(0, 0);

  const double P99Disabled = p99Ms(DisabledMs);
  const double P99Open = p99Ms(OpenMs);
  const double Ratio = P99Open > 0 ? P99Disabled / P99Open : 0;
  std::printf("plan p99 under the compile storm: breaker disabled %.1f ms, "
              "breaker open %.1f ms (%.1fx)\n",
              P99Disabled, P99Open, Ratio);

  gate(Tripped, "(b) three consecutive compile failures tripped the "
                "breaker open");
  gate(telemetry::counter("runtime.breaker.trips").value() > Trips0,
       "(b) runtime.breaker.trips counted the trip");
  gate(telemetry::counter("runtime.breaker.open").value() > 0,
       "(b) runtime.breaker.open counted fail-fast rejections");
  gate(Ratio >= 10.0,
       "(b) p99 plan latency >= 10x lower under the open breaker");

  Report.boolean("breaker_skipped", false);
  Report.num("plan_p99_breaker_disabled_ms", P99Disabled);
  Report.num("plan_p99_breaker_open_ms", P99Open);
  Report.num("breaker_p99_ratio", Ratio);
}

} // namespace

int main() {
  printPreamble("Deadlines and overload: shed, trip, stay deterministic",
                "end-to-end deadline propagation and breaker gates");
  telemetry::setMetricsEnabled(true);
  JsonReport Report("deadline_overload");

  gateShedBeforeWork(Report);
  std::printf("\n");
  gatePressureDeterminism(Report);
  std::printf("\n");
  gateBreakerPayoff(Report);

  Report.boolean("gates_passed", Rc == 0);
  Report.write();
  std::printf("\n%s\n", Rc == 0 ? "ALL GATES PASSED" : "GATES FAILED");
  return Rc;
}
