//===- bench/bench_abl_vm_vs_native.cpp - Ablation A4 ---------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A4: calibration of the two evaluation substrates. The same
/// generated programs run in the i-code VM and as natively compiled C; the
/// ratio tells how to read VM-based numbers elsewhere (and mirrors the
/// paper's distinction between executing on the target machine versus
/// estimating with a model).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace spl;
using namespace spl::bench;

int main() {
  printPreamble("Ablation A4: VM vs natively compiled generated code",
                "SPIRAL's performance-evaluation component (Figure 1)");
  if (!nativeAllowed()) {
    std::puts("no C compiler available; nothing to compare");
    return 0;
  }

  Diagnostics Diags;
  auto Eval = makeEvaluator(Diags, 64);
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 64;
  search::DPSearch Search(*Eval, Diags, SOpts);

  std::printf("%10s  %12s  %12s  %10s\n", "N", "VM MFlops",
              "native MFlops", "native/VM");
  for (int Lg : {4, 6, 8, 10, 12, 14}) {
    std::int64_t N = std::int64_t(1) << Lg;
    auto Best = Search.best(N);
    if (!Best) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    auto Compiled = Eval->compile(Best->Formula);
    if (!Compiled)
      return 1;

    vm::Executor VM(Compiled->Final);
    std::vector<double> X(VM.inputLen(), 0.25), Y(VM.outputLen(), 0.0);
    double VMSec =
        timeBestOf([&] { VM.runReal(X.data(), Y.data()); }, 3);

    std::string Err;
    auto Kernel = perf::CompiledKernel::create(Compiled->Final, &Err);
    if (!Kernel) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
    double NatSec = Kernel->time(3);

    std::printf("%10lld  %12.1f  %12.1f  %10.1f\n",
                static_cast<long long>(N), perf::pseudoMFlops(N, VMSec),
                perf::pseudoMFlops(N, NatSec), VMSec / NatSec);
    std::fflush(stdout);
  }

  std::puts("\nthe interpreted VM is typically 10-60x slower than native "
            "code;\nrankings between candidate formulas are preserved, which "
            "is what\nthe search needs from a portable substrate.");
  return 0;
}
