//===- bench/bench_fig4_large_fft.cpp - Figure 4 -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4: performance of large-size FFTs, N = 2^7 .. 2^20, in pseudo
/// MFlops. Three series, as in the paper:
///   SPL            - loop code from the keep-3 right-most binary search
///                    (straight-line modules up to 64, Section 4.2),
///   FFTW(sub)      - the baseline library with a measured plan,
///   FFTW(sub) est. - the baseline library with an estimated plan.
/// Planning time is excluded from the measurement, as in the paper.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baseline/Planner.h"

#include <cstdio>
#include <random>

using namespace spl;
using namespace spl::bench;

namespace {

double timePlan(baseline::Transform &T) {
  std::int64_t N = T.size();
  std::mt19937 Gen(23);
  std::uniform_real_distribution<double> Dist(-1, 1);
  std::vector<baseline::C> X(N), Y(N);
  for (auto &V : X)
    V = baseline::C(Dist(Gen), Dist(Gen));
  return timeBestOf([&] { T.run(X.data(), Y.data()); }, 2);
}

} // namespace

int main() {
  printPreamble("Figure 4: large-size FFT performance",
                "Figure 4 (SPL loop code vs FFTW-substitute, N = 2^7..2^20)");
  int MaxLg = static_cast<int>(envInt("SPL_MAXLG", 20));

  Diagnostics Diags;
  auto Eval = makeEvaluator(Diags, /*UnrollThreshold=*/64);
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 64;
  SOpts.KeepBest = 3;
  search::DPSearch Search(*Eval, Diags, SOpts);
  Search.searchSmall(64);

  std::printf("%10s  %10s  %12s  %12s  %12s\n", "N", "", "SPL",
              "FFTWsub", "FFTWsub-est");
  std::printf("%10s  %10s  %12s  %12s  %12s\n", "", "", "(MFlops)",
              "(MFlops)", "(MFlops)");

  for (int Lg = 7; Lg <= MaxLg; ++Lg) {
    std::int64_t N = std::int64_t(1) << Lg;

    auto Best = Search.best(N);
    if (!Best) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    auto Compiled = Eval->compile(Best->Formula);
    if (!Compiled)
      return 1;
    KernelTime SPL = timeFinal(Compiled->Final, /*Repeats=*/2);

    auto Measured = baseline::plan(N, baseline::PlanMode::Measure);
    auto Estimated = baseline::plan(N, baseline::PlanMode::Estimate);
    double TM = timePlan(*Measured.Best);
    double TE = timePlan(*Estimated.Best);

    std::printf("%10lld  %10s  %12.1f  %12.1f  %12.1f%s\n",
                static_cast<long long>(N),
                ("2^" + std::to_string(Lg)).c_str(),
                perf::pseudoMFlops(N, SPL.Seconds),
                perf::pseudoMFlops(N, TM), perf::pseudoMFlops(N, TE),
                SPL.Native ? "" : "  [VM]");
    std::fflush(stdout);
  }

  std::puts("\npaper's shape: the SPL series tracks the measured-plan "
            "baseline;\nestimated plans are equal or slower; performance "
            "drops where the\nworking set crosses the L1/L2 cache sizes "
            "(see bench_table1).");
  return 0;
}
