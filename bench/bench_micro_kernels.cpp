//===- bench/bench_micro_kernels.cpp - google-benchmark micro kernels ----------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks (google-benchmark) of the moving parts behind the
/// figures: baseline strategies, codelets, the i-code VM, and the template
/// expansion + optimization pipeline itself. Handy for spotting regressions
/// in any component without re-running the figure harnesses.
///
//===----------------------------------------------------------------------===//

#include "baseline/Codelets.h"
#include "baseline/Kernels.h"
#include "driver/Compiler.h"
#include "gen/Rules.h"
#include "vm/Executor.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace spl;

namespace {

std::vector<baseline::C> randomComplex(std::int64_t N) {
  std::mt19937 Gen(41);
  std::uniform_real_distribution<double> Dist(-1, 1);
  std::vector<baseline::C> V(N);
  for (auto &X : V)
    X = baseline::C(Dist(Gen), Dist(Gen));
  return V;
}

void BM_BaselineCodelet(benchmark::State &State) {
  std::int64_t N = State.range(0);
  auto X = randomComplex(N);
  std::vector<baseline::C> Y(N);
  for (auto _ : State) {
    baseline::codelet(N, X.data(), 1, Y.data());
    benchmark::DoNotOptimize(Y.data());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_BaselineCodelet)->Arg(8)->Arg(32)->Arg(64);

void BM_BaselineStockham4(benchmark::State &State) {
  std::int64_t N = State.range(0);
  baseline::StockhamRadix4 T(N);
  auto X = randomComplex(N);
  std::vector<baseline::C> Y(N);
  for (auto _ : State) {
    T.run(X.data(), Y.data());
    benchmark::DoNotOptimize(Y.data());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_BaselineStockham4)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BaselineRecursive(benchmark::State &State) {
  std::int64_t N = State.range(0);
  baseline::RecursiveCT T(N, 32);
  auto X = randomComplex(N);
  std::vector<baseline::C> Y(N);
  for (auto _ : State) {
    T.run(X.data(), Y.data());
    benchmark::DoNotOptimize(Y.data());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_BaselineRecursive)->Arg(256)->Arg(4096)->Arg(65536);

/// Compiles F_N (right-most binary, fully expanded) once per benchmark
/// setup; the loop measures the VM.
void BM_VMExecuteFFT(benchmark::State &State) {
  std::int64_t N = State.range(0);
  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  DirectiveState Dirs;
  Dirs.SubName = "bm";
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 64;
  Opts.EmitCode = false;
  auto Unit = Compiler.compileFormula(gen::recursiveFFT(N), Dirs, Opts);
  if (!Unit) {
    State.SkipWithError("compilation failed");
    return;
  }
  vm::Executor VM(Unit->Final);
  std::vector<double> X(VM.inputLen(), 0.5), Y(VM.outputLen(), 0.0);
  for (auto _ : State) {
    VM.runReal(X.data(), Y.data());
    benchmark::DoNotOptimize(Y.data());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_VMExecuteFFT)->Arg(64)->Arg(1024);

void BM_CompilePipeline(benchmark::State &State) {
  std::int64_t N = State.range(0);
  FormulaRef F = gen::recursiveFFT(N);
  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  DirectiveState Dirs;
  Dirs.SubName = "bm";
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 64;
  Opts.EmitCode = false;
  for (auto _ : State) {
    auto Unit = Compiler.compileFormula(F, Dirs, Opts);
    benchmark::DoNotOptimize(Unit);
  }
}
BENCHMARK(BM_CompilePipeline)->Arg(64)->Arg(1024);

} // namespace

BENCHMARK_MAIN();
