//===- bench/bench_ext_transforms.cpp - Registry transforms (gated) -----------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment backing the paper's generality claim ("The use of
/// SPL enables our system to generate any class of algorithm that can be
/// represented as matrix expressions"): every transform the registry serves
/// beyond the complex FFT — rdft, dct2, dct3, dct4 — planned through the
/// same search + codegen machinery and raced against its own dense-oracle
/// tier (the transform by definition, O(n^2)).
///
/// Acceptance gate: with a native compiler, the searched plan must beat the
/// dense oracle by >= 2x pseudo-MFlops for every transform at every
/// N >= 64. Without a compiler the harness logs the skip and exits green.
/// Either way the numbers land in BENCH_ext_transforms.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/Planner.h"
#include "transforms/Registry.h"

#include <cstdio>
#include <random>

using namespace spl;
using namespace spl::bench;

namespace {

/// Seconds per transform for one plan, measured over a dense batch so the
/// timer never reads below its resolution at small N.
double timePlan(runtime::Plan &P, std::int64_t Batch) {
  const std::int64_t Len = P.vectorLen();
  std::mt19937 Gen(7);
  std::uniform_real_distribution<double> Dist(-1, 1);
  std::vector<double> X(static_cast<size_t>(Batch * Len)),
      Y(static_cast<size_t>(Batch * Len), 0.0);
  for (double &V : X)
    V = Dist(Gen);
  double Sec = timeBestOf([&] { P.executeBatch(Y.data(), X.data(), Batch); },
                          /*Repeats=*/3);
  return Sec / static_cast<double>(Batch);
}

} // namespace

int main() {
  printPreamble("Registry transforms: searched plan vs dense oracle",
                "Section 6's generality claim, over src/transforms");
  JsonReport Report("ext_transforms");
  if (!nativeAllowed()) {
    std::puts("no C compiler available; skipping (gate trivially green)");
    Report.boolean("skipped", true);
    Report.write();
    return 0;
  }

  Diagnostics Diags;
  runtime::PlannerOptions POpts;
  POpts.UseWisdom = false; // Self-contained runs; no cache file traffic.
  runtime::Planner Planner(Diags, POpts);

  std::printf("%8s  %8s  %16s  %16s  %8s\n", "kind", "N", "plan (MFlops)",
              "oracle (MFlops)", "speedup");
  bool GateOk = true;
  for (const char *Name : {"rdft", "dct2", "dct3", "dct4"}) {
    for (std::int64_t N : {16, 64, 256}) {
      runtime::PlanSpec Fast;
      Fast.Transform = Name;
      Fast.Size = N;
      Fast.Want = runtime::Backend::Auto;
      auto PF = Planner.plan(Fast);

      runtime::PlanSpec Slow = Fast;
      Slow.Want = runtime::Backend::Oracle;
      auto PO = Planner.plan(Slow);
      if (!PF || !PO) {
        std::fputs(Diags.dump().c_str(), stderr);
        return 1;
      }

      // The oracle applies a dense N x N matrix; keep its batch small.
      double FastSec = timePlan(*PF, 512);
      double SlowSec = timePlan(*PO, 32);
      double Speedup = SlowSec / FastSec;
      const bool Gated = N >= 64;
      if (Gated && Speedup < 2.0)
        GateOk = false;
      std::printf("%8s  %8lld  %16.1f  %16.1f  %7.1fx%s\n", Name,
                  static_cast<long long>(N),
                  perf::pseudoMFlops(N, FastSec),
                  perf::pseudoMFlops(N, SlowSec), Speedup,
                  Gated ? "" : "  [ungated]");
      std::fflush(stdout);
      const std::string Suffix =
          std::string("_") + Name + "_n" + std::to_string(N);
      Report.num("plan_mflops" + Suffix, perf::pseudoMFlops(N, FastSec));
      Report.num("oracle_mflops" + Suffix, perf::pseudoMFlops(N, SlowSec));
      Report.num("speedup" + Suffix, Speedup);
    }
  }

  Report.boolean("skipped", false);
  Report.boolean("gate_plan_2x_oracle", GateOk);
  Report.write();
  if (!GateOk) {
    std::puts("\nGATE FAILED: every registry transform's searched plan must "
              "beat its dense oracle by >= 2x for N >= 64");
    return 1;
  }
  std::puts("\nGATE OK");
  return 0;
}
