//===- bench/bench_ext_transforms.cpp - Beyond the FFT (extension) -------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment backing the paper's generality claim ("The use of
/// SPL enables our system to generate any class of algorithm that can be
/// represented as matrix expressions"): the same compiler + search machinery
/// applied to the Walsh-Hadamard transform (the algorithm space of the WHT
/// package the paper cites) and the recursive DCT rules, with real
/// datatype. For each size: the searched factorization vs the transform by
/// definition (O(n^2)), natively compiled.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gen/Enumerate.h"
#include "gen/Rules.h"
#include "ir/Builder.h"

#include <cstdio>

using namespace spl;
using namespace spl::bench;

namespace {

/// Compiles a real-datatype formula through the standard pipeline.
std::optional<icode::Program> compileReal(const FormulaRef &F,
                                          Diagnostics &Diags) {
  driver::Compiler Compiler(Diags);
  DirectiveState Dirs;
  Dirs.SubName = "ext";
  Dirs.Datatype = "real";
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 64;
  Opts.EmitCode = false;
  auto Unit = Compiler.compileFormula(F, Dirs, Opts);
  if (!Unit)
    return std::nullopt;
  return Unit->Final;
}

} // namespace

int main() {
  printPreamble("Extension: WHT and DCT through the same machinery",
                "Section 6's generality claim + the WHT package ([11])");

  Diagnostics Diags;

  std::puts("Walsh-Hadamard transform (searched over factor compositions):");
  std::printf("%8s  %10s  %14s  %14s  %8s\n", "N", "#formulas",
              "best (MFlops)", "by-def (MFlops)", "speedup");
  for (std::int64_t N : {8, 64, 256, 1024}) {
    auto Formulas = gen::enumerateWHT(N);
    // Search by operation count, then time the winner.
    std::optional<icode::Program> Best;
    std::uint64_t BestOps = 0;
    for (const auto &F : Formulas) {
      auto P = compileReal(F, Diags);
      if (!P) {
        std::fputs(Diags.dump().c_str(), stderr);
        return 1;
      }
      std::uint64_t Ops = P->dynamicOpCount();
      if (!Best || Ops < BestOps) {
        Best = std::move(P);
        BestOps = Ops;
      }
    }
    auto Naive = compileReal(makeWHT(N), Diags);
    if (!Best || !Naive)
      return 1;
    KernelTime TB = timeFinal(*Best);
    KernelTime TN = timeFinal(*Naive, /*Repeats=*/2);
    std::printf("%8lld  %10zu  %14.1f  %14.1f  %8.1f%s\n",
                static_cast<long long>(N), Formulas.size(),
                perf::pseudoMFlops(N, TB.Seconds),
                perf::pseudoMFlops(N, TN.Seconds), TN.Seconds / TB.Seconds,
                TB.Native ? "" : "  [VM]");
    std::fflush(stdout);
  }

  std::puts("\nDCT-II and DCT-IV (recursive rules of Section 2.1):");
  std::printf("%8s  %8s  %14s  %14s  %8s\n", "kind", "N", "rule (MFlops)",
              "by-def (MFlops)", "speedup");
  for (std::int64_t N : {16, 64, 256}) {
    struct Row {
      const char *Kind;
      FormulaRef Fast;
      FormulaRef Naive;
    } Rows[] = {
        {"DCT2", gen::recursiveDCT2(N), makeDCT2(N)},
        {"DCT4", gen::recursiveDCT4(N), makeDCT4(N)},
    };
    for (auto &R : Rows) {
      auto Fast = compileReal(R.Fast, Diags);
      auto Naive = compileReal(R.Naive, Diags);
      if (!Fast || !Naive) {
        std::fputs(Diags.dump().c_str(), stderr);
        return 1;
      }
      KernelTime TF = timeFinal(*Fast);
      KernelTime TN = timeFinal(*Naive, /*Repeats=*/2);
      std::printf("%8s  %8lld  %14.1f  %14.1f  %8.1f%s\n", R.Kind,
                  static_cast<long long>(N),
                  perf::pseudoMFlops(N, TF.Seconds),
                  perf::pseudoMFlops(N, TN.Seconds),
                  TN.Seconds / TF.Seconds, TF.Native ? "" : "  [VM]");
      std::fflush(stdout);
    }
  }

  std::puts("\nexpected: searched/recursive factorizations beat the "
            "quadratic\ndefinitions by growing factors, with zero "
            "FFT-specific code involved.");
  return 0;
}
