//===- bench/bench_abl_dp_keepk.cpp - Ablation A2 -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A2: ordinary dynamic programming (keep-1) versus the paper's
/// keep-3 (Section 4.2: "the best formula for one size is not necessarily
/// also the best sub-formula for a larger size"). Searches run with the
/// VM-time evaluator so the cost surface has the measurement texture that
/// motivates keeping runners-up.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace spl;
using namespace spl::bench;

int main() {
  printPreamble("Ablation A2: DP keep-k (k = 1 vs 3)",
                "Section 4.2 (modified dynamic programming)");

  Diagnostics Diags;
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 64;
  search::VMTimeEvaluator Eval(Diags, Opts, /*Repeats=*/2);

  std::printf("%10s  %14s  %14s  %10s\n", "N", "keep-1 cost",
              "keep-3 cost", "k3/k1");
  for (int Lg = 7; Lg <= 12; ++Lg) {
    std::int64_t N = std::int64_t(1) << Lg;

    search::SearchOptions K1;
    K1.MaxLeaf = 64;
    K1.KeepBest = 1;
    search::DPSearch S1(Eval, Diags, K1);
    auto B1 = S1.best(N);

    search::SearchOptions K3;
    K3.MaxLeaf = 64;
    K3.KeepBest = 3;
    search::DPSearch S3(Eval, Diags, K3);
    auto B3 = S3.best(N);

    if (!B1 || !B3) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    std::printf("%10lld  %14.3e  %14.3e  %10.3f\n",
                static_cast<long long>(N), B1->Cost, B3->Cost,
                B3->Cost / B1->Cost);
    std::fflush(stdout);
  }

  std::puts("\nexpected: keep-3 finds equal or faster final formulas "
            "(ratios <= ~1),\nat the cost of a broader search.");
  return 0;
}
