//===- bench/bench_fig2_optimization.cpp - Figure 2 ----------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 2: the effect of the basic optimizations. 45 SPL formulas for the
/// 32-point FFT are compiled three ways — (1) no optimization, (2) temporary
/// vectors replaced by scalar variables, (3) default optimizations — and the
/// performance of versions (1) and (2) is normalized to version (3), per
/// formula, exactly as the paper plots.
///
/// Default timing substrate is the i-code VM (the *relative* effect is what
/// the figure shows); set SPL_NATIVE_FIG2=1 to natively compile all 135
/// variants instead.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "driver/Compiler.h"
#include "gen/Enumerate.h"

#include <cstdio>

using namespace spl;
using namespace spl::bench;

namespace {

double timeVariant(const icode::Program &Final, bool Native) {
  if (Native)
    return timeFinal(Final, 3).Seconds;
  vm::Executor VM(Final);
  std::vector<double> X(VM.inputLen(), 0.5), Y(VM.outputLen(), 0.0);
  return timeBestOf([&] { VM.runReal(X.data(), Y.data()); }, 3);
}

} // namespace

int main() {
  printPreamble("Figure 2: effect of basic optimizations (FFT N=32)",
                "Figure 2 (45 formulas x {none, scalar temporary, default})");
  bool Native = envFlag("SPL_NATIVE_FIG2") && nativeAllowed();
  std::printf("variant timing substrate: %s\n\n",
              Native ? "native" : "i-code VM (set SPL_NATIVE_FIG2=1 for "
                                  "native)");

  gen::EnumOptions EOpts;
  EOpts.MaxCount = 45;
  auto Formulas = gen::enumerateFFT(32, EOpts);
  std::printf("formulas: %zu\n\n", Formulas.size());

  std::printf("%8s  %14s  %14s  %14s\n", "formula", "no-opt",
              "scalar-temp", "default");
  std::printf("%8s  %14s  %14s  %14s\n", "", "(rel. perf)", "(rel. perf)",
              "(= 1.0)");

  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  DirectiveState Dirs;
  Dirs.SubName = "f32";

  double SumNone = 0, SumScalar = 0;
  int Count = 0;
  for (size_t I = 0; I != Formulas.size(); ++I) {
    double T[3] = {0, 0, 0};
    opt::OptLevel Levels[3] = {opt::OptLevel::None, opt::OptLevel::Scalarize,
                               opt::OptLevel::Default};
    bool Ok = true;
    for (int L = 0; L != 3; ++L) {
      driver::CompilerOptions Opts;
      Opts.Level = Levels[L];
      Opts.UnrollThreshold = 64;
      Opts.EmitCode = false;
      auto Unit = Compiler.compileFormula(Formulas[I], Dirs, Opts);
      if (!Unit) {
        std::fputs(Diags.dump().c_str(), stderr);
        Ok = false;
        break;
      }
      T[L] = timeVariant(Unit->Final, Native);
    }
    if (!Ok)
      return 1;
    // Performance relative to the default-optimization version.
    double RelNone = T[2] / T[0], RelScalar = T[2] / T[1];
    SumNone += RelNone;
    SumScalar += RelScalar;
    ++Count;
    std::printf("%8zu  %14.3f  %14.3f  %14.3f\n", I + 1, RelNone, RelScalar,
                1.0);
  }

  std::printf("\nmean over %d formulas:  no-opt %.3f   scalar %.3f   "
              "default 1.000\n",
              Count, SumNone / Count, SumScalar / Count);
  std::puts("\npaper's shape: default optimizations dominate; the no-opt\n"
            "version loses up to ~2x depending on platform and formula.");
  return 0;
}
