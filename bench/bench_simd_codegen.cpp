//===- bench/bench_simd_codegen.cpp - Scalar vs SIMD codegen -------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vectorization payoff: the same searched FFT formula built through
/// the scalar C emitter and through the SIMD vector emitter (the paper's
/// Section-5 A (x) I_m wrapper at instruction level, docs/VECTORIZATION.md),
/// timed per transform. The vector kernel computes laneCount(ISA) transform
/// columns per call, so its per-transform time is the per-call time divided
/// by the lane count.
///
/// Acceptance gate: on a SIMD-capable host the best size must show at
/// least a 1.5x pseudo-MFlops advantage for the vector backend; on a
/// scalar-only host the harness logs the skip and exits green.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "codegen/VectorISA.h"

#include <cstdio>

using namespace spl;
using namespace spl::bench;

int main() {
  printPreamble("SIMD codegen: scalar vs vector emitter, per transform",
                "Section 5 vectorization (A (x) I_m as one lane group)");
  JsonReport Report("simd_codegen");
  if (!nativeAllowed()) {
    std::puts("no C compiler available; skipping (gate trivially green)");
    Report.boolean("skipped", true);
    Report.write();
    return 0;
  }
  if (!codegen::vectorBackendAvailable()) {
    std::printf("hardware ISA probe: %s; no SIMD on this host, skipping "
                "(gate trivially green)\n",
                codegen::isaName(codegen::hardwareISA()));
    Report.boolean("skipped", true);
    Report.write();
    return 0;
  }

  codegen::VectorISA ISA = codegen::detectISA();
  std::printf("vector ISA: %s (%d lanes)\n\n", codegen::isaName(ISA),
              codegen::laneCount(ISA));

  Diagnostics Diags;
  auto Eval = makeEvaluator(Diags, 64);
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 64;
  search::DPSearch Search(*Eval, Diags, SOpts);

  std::printf("%10s  %14s  %14s  %10s\n", "N", "scalar MFlops",
              "vector MFlops", "vec/scalar");
  double BestSpeedup = 0;
  for (int Lg : {4, 5, 6, 7, 8}) {
    std::int64_t N = std::int64_t(1) << Lg;
    auto Best = Search.best(N);
    if (!Best) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    auto Compiled = Eval->compile(Best->Formula);
    if (!Compiled)
      return 1;

    perf::KernelError Err;
    perf::KernelBuildOptions Scalar;
    auto SK = perf::CompiledKernel::create(Compiled->Final, &Err, Scalar);
    if (!SK) {
      std::fprintf(stderr, "scalar build failed: %s\n", Err.str().c_str());
      return 1;
    }
    perf::KernelBuildOptions Vector;
    Vector.Variant = codegen::CodegenVariant::Vector;
    Vector.ISA = ISA;
    auto VK = perf::CompiledKernel::create(Compiled->Final, &Err, Vector);
    if (!VK) {
      std::fprintf(stderr, "vector build failed: %s\n", Err.str().c_str());
      return 1;
    }

    double ScalarSec = SK->time(5);
    double VectorSec = VK->time(5) / VK->lanes();
    double Speedup = ScalarSec / VectorSec;
    BestSpeedup = std::max(BestSpeedup, Speedup);
    std::printf("%10lld  %14.1f  %14.1f  %10.2f\n",
                static_cast<long long>(N),
                perf::pseudoMFlops(N, ScalarSec),
                perf::pseudoMFlops(N, VectorSec), Speedup);
    std::fflush(stdout);
    const std::string Suffix = "_n" + std::to_string(N);
    Report.num("scalar_mflops" + Suffix, perf::pseudoMFlops(N, ScalarSec));
    Report.num("vector_mflops" + Suffix, perf::pseudoMFlops(N, VectorSec));
    Report.num("speedup" + Suffix, Speedup);
  }

  std::printf("\nbest vector-over-scalar speedup: %.2fx (gate: >= 1.50x)\n",
              BestSpeedup);
  Report.boolean("skipped", false);
  Report.num("best_speedup", BestSpeedup);
  Report.boolean("gate_speedup_1p5x", BestSpeedup >= 1.5);
  Report.write();
  if (BestSpeedup < 1.5) {
    std::puts("GATE FAILED: the vector backend must beat scalar codegen by "
              ">= 1.5x at some size on a SIMD host");
    return 1;
  }
  std::puts("GATE OK");
  return 0;
}
