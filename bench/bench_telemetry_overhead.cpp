//===- bench/bench_telemetry_overhead.cpp - Telemetry cost on the hot path -----==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what telemetry costs on the batched execute hot path, in three
/// configurations over the same planned transform and data:
///
///   raw       a plain loop driving the plan's substrate directly (the
///             VM executor / native kernel), with no telemetry code at all
///             — the no-telemetry baseline
///   disarmed  Plan::executeBatch with telemetry off: the instrumentation
///             is present but reduced to one relaxed atomic mask load
///   armed     Plan::executeBatch with metrics + tracing recording
///
/// The contract under test (docs/OBSERVABILITY.md): the disarmed delta vs
/// the raw baseline stays under 2%. The armed delta is reported for scale —
/// it is batch-granular, so it too should be small.
///
/// Environment knobs (in addition to BenchUtil's):
///   SPL_TO_LG=<k>       FFT size 2^k to plan (default 6)
///   SPL_TO_BATCH=<b>    vectors per executeBatch call (default 64)
///   SPL_TO_REPEATS=<r>  timing repeats, best-of (default 5)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/Planner.h"
#include "telemetry/Trace.h"

#include <cstdio>
#include <random>
#include <vector>

using namespace spl;
using namespace spl::bench;

int main() {
  printPreamble("Telemetry overhead on the batched execute hot path",
                "disarmed instrumentation must cost one relaxed atomic load");

  const std::int64_t Lg = envInt("SPL_TO_LG", 6);
  const std::int64_t Batch = envInt("SPL_TO_BATCH", 64);
  const int Repeats = static_cast<int>(envInt("SPL_TO_REPEATS", 5));

  Diagnostics Diags;
  runtime::PlannerOptions POpts;
  POpts.UseWisdom = false;
  runtime::Planner Planner(Diags, POpts);
  runtime::PlanSpec Spec;
  Spec.Size = std::int64_t(1) << Lg;
  // The VM substrate makes the comparison deterministic everywhere (no C
  // compiler needed) and is the worst case for relative overhead reporting
  // honesty: per-vector work is interpreter-bound, so we shrink it with a
  // small size to keep the telemetry share visible.
  Spec.Want = runtime::Backend::VM;
  auto Plan = Planner.plan(Spec);
  if (!Plan) {
    std::fputs(Diags.dump().c_str(), stderr);
    return 1;
  }

  const std::int64_t Len = Plan->vectorLen();
  std::vector<double> X(static_cast<size_t>(Batch * Len)),
      Y(static_cast<size_t>(Batch * Len));
  std::mt19937 Gen(17);
  std::uniform_real_distribution<double> Dist(-1, 1);
  for (double &V : X)
    V = Dist(Gen);

  // Raw baseline: same program, same data, same per-vector call shape, but
  // driven straight through a VM executor — no telemetry, no plan wrapper.
  vm::Executor VM(Plan->program());
  auto RawLoop = [&] {
    for (std::int64_t I = 0; I != Batch; ++I)
      VM.runReal(X.data() + I * Len, Y.data() + I * Len);
  };
  auto BatchLoop = [&] { Plan->executeBatch(Y.data(), X.data(), Batch, 1); };

  telemetry::setMetricsEnabled(false);
  telemetry::setTracingEnabled(false);
  double Raw = timeBestOf(RawLoop, Repeats);
  double Disarmed = timeBestOf(BatchLoop, Repeats);

  telemetry::setMetricsEnabled(true);
  telemetry::setTracingEnabled(true);
  double Armed = timeBestOf(BatchLoop, Repeats);
  telemetry::setMetricsEnabled(false);
  telemetry::setTracingEnabled(false);

  auto DeltaPct = [&](double T) { return 100.0 * (T - Raw) / Raw; };
  std::printf("plan: %s\n", Plan->describe().c_str());
  std::printf("batch %lld vectors of %lld doubles, best of %d\n\n",
              static_cast<long long>(Batch), static_cast<long long>(Len),
              Repeats);
  std::printf("%-34s %12s %10s\n", "configuration", "per batch", "delta");
  std::printf("%-34s %9.3f us %10s\n", "raw loop (no telemetry)", Raw * 1e6,
              "--");
  std::printf("%-34s %9.3f us %+9.2f%%\n", "executeBatch, telemetry disarmed",
              Disarmed * 1e6, DeltaPct(Disarmed));
  std::printf("%-34s %9.3f us %+9.2f%%\n",
              "executeBatch, metrics+trace armed", Armed * 1e6,
              DeltaPct(Armed));

  const double DisarmedDelta = DeltaPct(Disarmed);
  std::printf("\ndisarmed delta vs no-telemetry baseline: %+.2f%% "
              "(budget < 2%%): %s\n",
              DisarmedDelta, DisarmedDelta < 2.0 ? "OK" : "OVER BUDGET");

  JsonReport Report("telemetry_overhead");
  Report.num("raw_us", Raw * 1e6);
  Report.num("disarmed_us", Disarmed * 1e6);
  Report.num("armed_us", Armed * 1e6);
  Report.num("disarmed_delta_pct", DisarmedDelta);
  Report.num("armed_delta_pct", DeltaPct(Armed));
  Report.boolean("gate_disarmed_under_2pct", DisarmedDelta < 2.0);
  Report.write();
  return DisarmedDelta < 2.0 ? 0 : 1;
}
