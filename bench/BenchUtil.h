//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark harnesses: environment-variable knobs,
/// evaluator construction, and kernel timing that prefers natively compiled
/// code and falls back to the VM (announcing which substrate ran, so the
/// printed tables are self-describing).
///
/// Environment knobs:
///   SPL_MAXLG=<k>        largest FFT size 2^k for fig4/fig5 (default 20)
///   SPL_ACC_MAXLG=<k>    largest size for the accuracy figure (default 18)
///   SPL_SEARCH=<mode>    opcount | vmtime (candidate cost; default opcount)
///   SPL_NO_NATIVE=1      never invoke the system C compiler
///   SPL_NATIVE_FIG2=1    time Figure 2's 135 variants natively (slow)
///
//===----------------------------------------------------------------------===//

#ifndef SPL_BENCH_BENCHUTIL_H
#define SPL_BENCH_BENCHUTIL_H

#include "perf/KernelRunner.h"
#include "perf/Metrics.h"
#include "search/DPSearch.h"
#include "support/Timer.h"
#include "vm/Executor.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

namespace spl {
namespace bench {

inline std::int64_t envInt(const char *Name, std::int64_t Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoll(V) : Default;
}

inline bool envFlag(const char *Name) {
  const char *V = std::getenv(Name);
  return V && V[0] && V[0] != '0';
}

inline bool nativeAllowed() {
  return !envFlag("SPL_NO_NATIVE") && perf::NativeModule::available();
}

/// Times a final program: natively when possible, otherwise in the VM.
struct KernelTime {
  double Seconds = 0;
  bool Native = false;
};

inline KernelTime timeFinal(const icode::Program &Final, int Repeats = 3) {
  KernelTime Out;
  if (nativeAllowed()) {
    std::string Err;
    if (auto K = perf::CompiledKernel::create(Final, &Err)) {
      Out.Seconds = K->time(Repeats);
      Out.Native = true;
      return Out;
    }
    std::fprintf(stderr, "note: native compile failed (%s); using the VM\n",
                 Err.c_str());
  }
  vm::Executor VM(Final);
  std::mt19937 Gen(3);
  std::uniform_real_distribution<double> Dist(-1, 1);
  std::vector<double> X(VM.inputLen()), Y(VM.outputLen(), 0.0);
  for (double &V : X)
    V = Dist(Gen);
  Out.Seconds = timeBestOf([&] { VM.runReal(X.data(), Y.data()); }, Repeats);
  return Out;
}

/// Builds the evaluator selected by SPL_SEARCH.
inline std::unique_ptr<search::Evaluator>
makeEvaluator(Diagnostics &Diags, std::int64_t UnrollThreshold = 64) {
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = UnrollThreshold;
  const char *Mode = std::getenv("SPL_SEARCH");
  if (Mode && std::string(Mode) == "vmtime")
    return std::make_unique<search::VMTimeEvaluator>(Diags, Opts, 2);
  return std::make_unique<search::OpCountEvaluator>(Diags, Opts);
}

/// Machine-readable bench report: one flat JSON object per harness. Fill
/// key/value metrics as the run goes, then write() lands them in
/// BENCH_<name>.json — under $SPL_BENCH_JSON_DIR when set, else the working
/// directory — so CI archives the perf trajectory across commits instead of
/// only asserting gates in-process. Keys are insertion-ordered; setting a
/// key again overwrites it.
class JsonReport {
public:
  explicit JsonReport(std::string BenchName) : Name(std::move(BenchName)) {}

  void num(const std::string &Key, double Value) {
    char Buf[64];
    if (std::isfinite(Value))
      std::snprintf(Buf, sizeof(Buf), "%.9g", Value);
    else
      std::snprintf(Buf, sizeof(Buf), "null"); // JSON has no inf/nan.
    add(Key, Buf);
  }

  void boolean(const std::string &Key, bool Value) {
    add(Key, Value ? "true" : "false");
  }

  void text(const std::string &Key, const std::string &Value) {
    std::string Quoted = "\"";
    for (char C : Value) {
      if (C == '"' || C == '\\')
        Quoted += '\\';
      Quoted += C == '\n' ? ' ' : C;
    }
    Quoted += '"';
    add(Key, Quoted);
  }

  /// Writes BENCH_<name>.json. False (with a stderr note) when the file
  /// cannot be created; harnesses treat that as a warning, not a gate.
  bool write() const {
    const char *Dir = std::getenv("SPL_BENCH_JSON_DIR");
    std::string Path =
        (Dir && Dir[0]) ? std::string(Dir) + "/" : std::string();
    Path += "BENCH_" + Name + ".json";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "note: cannot write bench report '%s'\n",
                   Path.c_str());
      return false;
    }
    std::fprintf(F, "{\n  \"bench\": \"%s\"", Name.c_str());
    for (const auto &KV : Fields)
      std::fprintf(F, ",\n  \"%s\": %s", KV.first.c_str(),
                   KV.second.c_str());
    std::fprintf(F, "\n}\n");
    std::fclose(F);
    std::printf("report: %s\n", Path.c_str());
    return true;
  }

private:
  void add(const std::string &Key, std::string Rendered) {
    for (auto &KV : Fields)
      if (KV.first == Key) {
        KV.second = std::move(Rendered);
        return;
      }
    Fields.emplace_back(Key, std::move(Rendered));
  }

  std::string Name;
  std::vector<std::pair<std::string, std::string>> Fields;
};

/// Header lines every harness prints, so tables are self-describing.
inline void printPreamble(const char *Experiment, const char *PaperRef) {
  std::printf("== %s ==\n", Experiment);
  std::printf("reproduces: %s\n", PaperRef);
  std::printf("substrate: %s; search cost: %s\n\n",
              nativeAllowed() ? "natively compiled generated C (cc -O2)"
                              : "i-code VM (no C compiler found)",
              std::getenv("SPL_SEARCH") ? std::getenv("SPL_SEARCH")
                                        : "opcount");
}

} // namespace bench
} // namespace spl

#endif // SPL_BENCH_BENCHUTIL_H
