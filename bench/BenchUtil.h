//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark harnesses: environment-variable knobs,
/// evaluator construction, and kernel timing that prefers natively compiled
/// code and falls back to the VM (announcing which substrate ran, so the
/// printed tables are self-describing).
///
/// Environment knobs:
///   SPL_MAXLG=<k>        largest FFT size 2^k for fig4/fig5 (default 20)
///   SPL_ACC_MAXLG=<k>    largest size for the accuracy figure (default 18)
///   SPL_SEARCH=<mode>    opcount | vmtime (candidate cost; default opcount)
///   SPL_NO_NATIVE=1      never invoke the system C compiler
///   SPL_NATIVE_FIG2=1    time Figure 2's 135 variants natively (slow)
///
//===----------------------------------------------------------------------===//

#ifndef SPL_BENCH_BENCHUTIL_H
#define SPL_BENCH_BENCHUTIL_H

#include "perf/KernelRunner.h"
#include "perf/Metrics.h"
#include "search/DPSearch.h"
#include "support/Timer.h"
#include "vm/Executor.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>

namespace spl {
namespace bench {

inline std::int64_t envInt(const char *Name, std::int64_t Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoll(V) : Default;
}

inline bool envFlag(const char *Name) {
  const char *V = std::getenv(Name);
  return V && V[0] && V[0] != '0';
}

inline bool nativeAllowed() {
  return !envFlag("SPL_NO_NATIVE") && perf::NativeModule::available();
}

/// Times a final program: natively when possible, otherwise in the VM.
struct KernelTime {
  double Seconds = 0;
  bool Native = false;
};

inline KernelTime timeFinal(const icode::Program &Final, int Repeats = 3) {
  KernelTime Out;
  if (nativeAllowed()) {
    std::string Err;
    if (auto K = perf::CompiledKernel::create(Final, &Err)) {
      Out.Seconds = K->time(Repeats);
      Out.Native = true;
      return Out;
    }
    std::fprintf(stderr, "note: native compile failed (%s); using the VM\n",
                 Err.c_str());
  }
  vm::Executor VM(Final);
  std::mt19937 Gen(3);
  std::uniform_real_distribution<double> Dist(-1, 1);
  std::vector<double> X(VM.inputLen()), Y(VM.outputLen(), 0.0);
  for (double &V : X)
    V = Dist(Gen);
  Out.Seconds = timeBestOf([&] { VM.runReal(X.data(), Y.data()); }, Repeats);
  return Out;
}

/// Builds the evaluator selected by SPL_SEARCH.
inline std::unique_ptr<search::Evaluator>
makeEvaluator(Diagnostics &Diags, std::int64_t UnrollThreshold = 64) {
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = UnrollThreshold;
  const char *Mode = std::getenv("SPL_SEARCH");
  if (Mode && std::string(Mode) == "vmtime")
    return std::make_unique<search::VMTimeEvaluator>(Diags, Opts, 2);
  return std::make_unique<search::OpCountEvaluator>(Diags, Opts);
}

/// Header lines every harness prints, so tables are self-describing.
inline void printPreamble(const char *Experiment, const char *PaperRef) {
  std::printf("== %s ==\n", Experiment);
  std::printf("reproduces: %s\n", PaperRef);
  std::printf("substrate: %s; search cost: %s\n\n",
              nativeAllowed() ? "natively compiled generated C (cc -O2)"
                              : "i-code VM (no C compiler found)",
              std::getenv("SPL_SEARCH") ? std::getenv("SPL_SEARCH")
                                        : "opcount");
}

} // namespace bench
} // namespace spl

#endif // SPL_BENCH_BENCHUTIL_H
