//===- bench/bench_fig5_memory.cpp - Figure 5 ----------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5: memory consumption of large-size FFTs, N = 2^7 .. 2^20. Three
/// series, as in the paper: the SPL-generated loop code (temporaries +
/// twiddle tables + text estimate), the baseline with a measured plan
/// (winner + planner peak: every candidate coexists while planning), and
/// the baseline with an estimated plan (winner only). The paper's
/// observation — "FFTW estimate" needs about as much memory as the SPL
/// code, measuring needs more — is the shape to look for.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baseline/Planner.h"
#include "perf/MemoryModel.h"

#include <cstdio>

using namespace spl;
using namespace spl::bench;

int main() {
  printPreamble("Figure 5: memory consumption of large-size FFTs",
                "Figure 5 (MB to run each code, N = 2^7..2^20)");
  int MaxLg = static_cast<int>(envInt("SPL_MAXLG", 20));

  Diagnostics Diags;
  auto Eval = makeEvaluator(Diags, /*UnrollThreshold=*/64);
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 64;
  SOpts.KeepBest = 3;
  search::DPSearch Search(*Eval, Diags, SOpts);
  Search.searchSmall(64);

  std::printf("%10s  %12s  %12s  %12s\n", "N", "SPL", "FFTWsub",
              "FFTWsub-est");
  std::printf("%10s  %12s  %12s  %12s\n", "", "(MB)", "(MB, plan+run)",
              "(MB)");

  const double MB = 1024.0 * 1024.0;
  for (int Lg = 7; Lg <= MaxLg; ++Lg) {
    std::int64_t N = std::int64_t(1) << Lg;
    auto Best = Search.best(N);
    if (!Best) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    auto Compiled = Eval->compile(Best->Formula);
    if (!Compiled)
      return 1;
    perf::MemoryUsage SPL = perf::accountProgram(Compiled->Final);

    auto Measured = baseline::plan(N, baseline::PlanMode::Measure);
    auto Estimated = baseline::plan(N, baseline::PlanMode::Estimate);
    double MeasBytes = static_cast<double>(Measured.PlannerPeakBytes);
    double EstBytes = static_cast<double>(Estimated.Best->memoryBytes());

    std::printf("%10lld  %12.3f  %12.3f  %12.3f\n",
                static_cast<long long>(N), SPL.total() / MB, MeasBytes / MB,
                EstBytes / MB);
  }

  std::puts("\npaper's shape: SPL's memory tracks the estimate-mode "
            "baseline;\nmeasured planning needs noticeably more while it "
            "times every candidate.");
  return 0;
}
