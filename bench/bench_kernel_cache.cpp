//===- bench/bench_kernel_cache.cpp - Warm-start planning latency -------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the persistent kernel cache (docs/KERNEL_CACHE.md) buys: a
/// cold plan pays a compiler fork/exec per native kernel; a warm plan with
/// the same cache directory maps the previously compiled artifact. For each
/// size the harness plans cold (fresh cache + wisdom), then warm (fresh
/// process-internal state, same cache files), and reports both latencies,
/// the speedup, and the counter proof: a warm plan performs zero compiler
/// invocations (native.compiles == 0, kernelcache.hits >= 1). Exits
/// nonzero when the warm path ever reaches the compiler — this is the
/// executable form of the PR's acceptance gate.
///
/// Environment knobs (in addition to BenchUtil's):
///   SPL_KC_MAXLG=<k>   largest FFT size 2^k to plan (default 10)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "perf/KernelCache.h"
#include "runtime/Planner.h"
#include "telemetry/Metrics.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

using namespace spl;
using namespace spl::bench;

namespace {

std::uint64_t counterValue(const char *Name) {
  return telemetry::counter(Name).value();
}

} // namespace

int main() {
  printPreamble("Kernel cache: cold vs warm planning",
                "content-addressed .so reuse across processes");

  JsonReport Report("kernel_cache");
  if (!nativeAllowed()) {
    std::puts("skip: no C compiler (or SPL_NO_NATIVE) — the kernel cache "
              "only holds native artifacts");
    Report.boolean("skipped", true);
    Report.write();
    return 0;
  }

  const std::int64_t MaxLg = envInt("SPL_KC_MAXLG", 10);
  const std::string Stem =
      "/tmp/spl-bench-kcache-" + std::to_string(getpid());
  const std::string CacheDir = Stem + ".cache";
  const std::string WisdomPath = Stem + ".wisdom";
  std::filesystem::remove_all(CacheDir);
  std::remove(WisdomPath.c_str());

  telemetry::setMetricsEnabled(true);

  std::printf("%8s  %12s  %12s  %8s  %10s  %8s\n", "N", "cold ms", "warm ms",
              "speedup", "compiles", "hits");

  bool GateFailed = false;
  for (std::int64_t Lg = 4; Lg <= MaxLg; Lg += 2) {
    runtime::PlanSpec Spec;
    Spec.Size = std::int64_t(1) << Lg;

    // Each pass uses a fresh Planner (fresh wisdom object, fresh plan
    // registry) so only the on-disk caches carry state across them —
    // the same isolation a process restart would give.
    auto planOnce = [&](double &MsOut) -> bool {
      Diagnostics Diags;
      runtime::PlannerOptions POpts;
      POpts.WisdomPath = WisdomPath;
      POpts.KernelCacheDir = CacheDir;
      runtime::Planner Planner(Diags, POpts);
      Timer Wall;
      auto Plan = Planner.plan(Spec);
      MsOut = Wall.seconds() * 1e3;
      if (!Plan || Plan->backend() != runtime::Backend::Native) {
        std::fputs(Diags.dump().c_str(), stderr);
        return false;
      }
      Planner.saveWisdom();
      return true;
    };

    double ColdMs = 0, WarmMs = 0;
    if (!planOnce(ColdMs)) {
      std::printf("%8lld  plan did not reach the native tier; skipping\n",
                  static_cast<long long>(Spec.Size));
      continue;
    }

    std::uint64_t Compiles0 = counterValue("native.compiles");
    std::uint64_t Hits0 = counterValue("kernelcache.hits");
    if (!planOnce(WarmMs)) {
      GateFailed = true;
      continue;
    }
    std::uint64_t WarmCompiles = counterValue("native.compiles") - Compiles0;
    std::uint64_t WarmHits = counterValue("kernelcache.hits") - Hits0;

    std::printf("%8lld  %12.3f  %12.3f  %7.1fx  %10llu  %8llu\n",
                static_cast<long long>(Spec.Size), ColdMs, WarmMs,
                WarmMs > 0 ? ColdMs / WarmMs : 0.0,
                static_cast<unsigned long long>(WarmCompiles),
                static_cast<unsigned long long>(WarmHits));
    const std::string Suffix = "_n" + std::to_string(Spec.Size);
    Report.num("cold_ms" + Suffix, ColdMs);
    Report.num("warm_ms" + Suffix, WarmMs);
    Report.num("warm_compiles" + Suffix, static_cast<double>(WarmCompiles));

    // The acceptance gate: warm planning never forks the compiler.
    if (WarmCompiles != 0 || WarmHits < 1) {
      std::printf("GATE FAILED at N=%lld: warm compiles=%llu hits=%llu\n",
                  static_cast<long long>(Spec.Size),
                  static_cast<unsigned long long>(WarmCompiles),
                  static_cast<unsigned long long>(WarmHits));
      GateFailed = true;
    }
  }

  std::filesystem::remove_all(CacheDir);
  std::remove(WisdomPath.c_str());

  Report.boolean("skipped", false);
  Report.boolean("gate_warm_zero_compiles", !GateFailed);
  Report.write();

  if (GateFailed) {
    std::puts("\nresult: FAIL — a warm plan reached the compiler");
    return 1;
  }
  std::puts("\nresult: ok — every warm plan mapped its kernel from the "
            "cache with zero compiler invocations");
  return 0;
}
