//===- bench/bench_table1_platforms.cpp - Table 1 ------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1 of the paper lists the evaluation platforms (UltraSPARC II, MIPS
/// R10000, Pentium II: CPU, clock, caches, memory, OS, compiler). The
/// reproduction runs on one host; this harness probes and prints the same
/// inventory for it, alongside the paper's original entries for context.
///
//===----------------------------------------------------------------------===//

#include "support/HostInfo.h"

#include <cstdio>

using namespace spl;

int main() {
  std::puts("== Table 1: experiment platforms ==");
  std::puts("reproduces: Table 1 (evaluation platform inventory)\n");

  std::puts("this host:");
  std::fputs(HostInfo::detect().table().c_str(), stdout);

  std::puts("\npaper's platforms (2001), for reference:");
  std::puts("  UltraSPARC II  333MHz  L1 16KB/16KB  L2 2MB    128MB  "
            "Solaris 7        Workshop 5.0");
  std::puts("  MIPS R10000    195MHz  L1 32KB/32KB  L2 1MB    384MB  "
            "IRIX64 6.5       MIPSpro 7.3.1.1m");
  std::puts("  Pentium II     400MHz  L1 16KB/16KB  L2 512KB  256MB  "
            "Linux 2.2.18     egcs 1.1.2");
  return 0;
}
