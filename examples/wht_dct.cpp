//===- examples/wht_dct.cpp - Beyond the FFT: WHT and DCT ---------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's generality claim: the same compiler handles any transform
/// expressible as a matrix factorization. This example generates the
/// Walsh-Hadamard factorization and the recursive DCT-II/DCT-IV rules of
/// Section 2.1, compiles them with #datatype real, validates them against
/// the dense definitions, and prints the Fortran the paper's back end
/// would have consumed.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gen/Rules.h"
#include "ir/Builder.h"
#include "ir/Transforms.h"
#include "vm/Executor.h"

#include <cstdio>
#include <random>

using namespace spl;

namespace {

/// Compiles a real-datatype formula and returns max |VM output - dense|.
double validate(driver::Compiler &Compiler, const FormulaRef &F,
                const Matrix &Want, const char *Name,
                driver::CompiledUnit *UnitOut = nullptr) {
  Diagnostics Diags;
  DirectiveState Dirs;
  Dirs.SubName = Name;
  Dirs.Datatype = "real";
  Dirs.Language = "fortran";
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 8;
  auto Unit = Compiler.compileFormula(F, Dirs, Opts);
  if (!Unit) {
    std::fputs(Diags.dump().c_str(), stderr);
    return 1e300;
  }

  vm::Executor VM(Unit->Final);
  std::mt19937 Gen(5);
  std::uniform_real_distribution<double> Dist(-1, 1);
  std::vector<double> X(VM.inputLen()), Y;
  for (auto &V : X)
    V = Dist(Gen);
  VM.runReal(X, Y);

  std::vector<Cplx> XC(X.size());
  for (size_t I = 0; I != X.size(); ++I)
    XC[I] = Cplx(X[I], 0);
  auto Ref = Want.apply(XC);
  double Max = 0;
  for (size_t I = 0; I != Ref.size(); ++I)
    Max = std::max(Max, std::abs(Ref[I] - Cplx(Y[I], 0)));
  if (UnitOut)
    *UnitOut = std::move(*Unit);
  return Max;
}

} // namespace

int main() {
  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  bool Ok = true;

  // Walsh-Hadamard: WHT_16 through the Section 2.1 factorization.
  using FP = std::vector<std::pair<std::int64_t, FormulaRef>>;
  FormulaRef Wht = gen::ruleWHT(
      FP{{2, makeWHT(2)}, {4, makeWHT(4)}, {2, makeWHT(2)}});
  double WhtErr = validate(Compiler, Wht, whtMatrix(16), "wht16");
  std::printf("WHT_16  factorization %-40s  max err %.2e\n",
              "(2 x 4 x 2 split)", WhtErr);
  Ok &= WhtErr < 1e-10;

  // DCT-II and DCT-IV, recursive rules fully expanded to F_2 leaves.
  for (std::int64_t N : {4, 8, 16}) {
    FormulaRef Dct2 = gen::recursiveDCT2(N);
    double E2 = validate(Compiler, Dct2, dct2Matrix(N), "dct2");
    std::printf("DCT2_%-3lld recursive rule%-32s  max err %.2e\n",
                static_cast<long long>(N), "", E2);
    Ok &= E2 < 1e-10;

    FormulaRef Dct4 = gen::recursiveDCT4(N);
    double E4 = validate(Compiler, Dct4, dct4Matrix(N), "dct4");
    std::printf("DCT4_%-3lld via S . DCT2 . D%-29s  max err %.2e\n",
                static_cast<long long>(N), "", E4);
    Ok &= E4 < 1e-10;
  }

  // Show the Fortran for the 8-point DCT-II, as the paper's back end saw it.
  driver::CompiledUnit Unit;
  double E = validate(Compiler, gen::recursiveDCT2(8), dct2Matrix(8),
                      "dct2of8", &Unit);
  Ok &= E < 1e-10;
  std::puts("\n=== DCT2_8, generated Fortran (head) ===");
  std::fputs(Unit.Code.substr(0, 700).c_str(), stdout);
  std::puts("...");

  std::printf("\n%s\n", Ok ? "all transforms validated" : "FAILURES");
  return Ok ? 0 : 1;
}
