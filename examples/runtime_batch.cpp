//===- examples/runtime_batch.cpp - Plan once, execute many -------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime layer quickstart: build a Planner, plan a 256-point FFT once
/// (consulting and then persisting wisdom, so the next run of this program
/// skips the search), and apply the plan to a whole batch of vectors across
/// worker threads. Validates the batch against the dense-matrix oracle and
/// exits nonzero on any mismatch, so the example doubles as an integration
/// test.
///
//===----------------------------------------------------------------------===//

#include "ir/Transforms.h"
#include "runtime/PlanRegistry.h"

#include <cstdio>
#include <random>
#include <vector>

using namespace spl;

int main() {
  const std::int64_t N = 256;   // FFT size.
  const std::int64_t Batch = 64; // Vectors per executeBatch call.

  // One Planner (and usually one PlanRegistry) per process. Wisdom lives in
  // a file; point it somewhere writable so repeated runs plan instantly.
  Diagnostics Diags;
  runtime::PlannerOptions POpts;
  POpts.WisdomPath = "/tmp/spl-example-wisdom";
  runtime::Planner Planner(Diags, POpts);
  runtime::PlanRegistry Registry(Planner);

  // Describe what we want; the planner searches, compiles and picks the
  // fastest available substrate (native C when a compiler exists, the
  // portable VM otherwise).
  runtime::PlanSpec Spec;
  Spec.Transform = "fft";
  Spec.Size = N;

  auto Plan = Registry.acquire(Spec);
  if (!Plan) {
    std::fputs(Diags.dump().c_str(), stderr);
    return 1;
  }
  Planner.saveWisdom(); // Next run finds the winner in the cache.

  std::printf("plan: %s\n", Plan->describe().c_str());
  if (Plan->usedFallback())
    std::printf("note: native backend unavailable (%s)\n",
                Plan->fallbackReason().c_str());

  // Complex data travels as interleaved (re,im) doubles: vectorLen() == 2N.
  const std::int64_t Len = Plan->vectorLen();
  std::vector<double> X(static_cast<size_t>(Batch * Len)),
      Y(static_cast<size_t>(Batch * Len));
  std::mt19937 Gen(42);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  for (double &V : X)
    V = Dist(Gen);

  // The planning cost is paid; executions are cheap and thread-safe.
  Plan->executeBatch(Y.data(), X.data(), Batch, /*Threads=*/4);

  // Check every vector against the dense DFT matrix.
  Matrix F = dftMatrix(N);
  double MaxErr = 0;
  for (std::int64_t B = 0; B != Batch; ++B) {
    std::vector<Cplx> XC(N);
    for (std::int64_t I = 0; I != N; ++I)
      XC[I] = Cplx(X[B * Len + 2 * I], X[B * Len + 2 * I + 1]);
    auto Want = F.apply(XC);
    for (std::int64_t I = 0; I != N; ++I) {
      Cplx Got(Y[B * Len + 2 * I], Y[B * Len + 2 * I + 1]);
      MaxErr = std::max(MaxErr, std::abs(Got - Want[I]));
    }
  }
  std::printf("batch of %lld vectors, max |error| vs dense oracle: %.3g\n",
              static_cast<long long>(Batch), MaxErr);

  // A second acquire is free: the registry hands back the same plan.
  auto Again = Registry.acquire(Spec);
  std::printf("registry reuse: %s (hits=%zu)\n",
              Again.get() == Plan.get() ? "same plan object" : "MISMATCH",
              Registry.stats().Hits);

  return MaxErr < 1e-10 && Again.get() == Plan.get() ? 0 : 1;
}
