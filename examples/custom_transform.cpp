//===- examples/custom_transform.cpp - Extending SPL with templates -----------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The template mechanism as an extension point (paper Section 3.2): add a
/// brand-new parameterized matrix — a cyclic shift (ROT n k) — purely with
/// an SPL template, let the compiler infer its dimensions from the template
/// body, compose it with built-in matrices, and override a built-in
/// template (the compose rule for two shifts) to fuse them, exactly like
/// the paper's loop-fusion example.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "vm/Executor.h"

#include <cstdio>

using namespace spl;

int main() {
  // (ROT n k): y[i] = x[(i + k) mod n], defined only by its template. The
  // wrap-around is expressed as two loops because vector subscripts must be
  // linear in the loop indices (Section 3.2). The second template
  // *overrides* composition of two rotations with a fused rotation by j+k
  // (new templates take precedence over older ones).
  const char *Source = R"(
    (template (ROT n_ k_) [n_ >= 1 && k_ >= 0 && k_ < n_]
      (do $i0 = 0, n_-k_-1
         $out($i0) = $in($i0 + k_)
       end
       do $i0 = 0, k_-1
         $out(n_-k_+$i0) = $in($i0)
       end))

    (template (compose (ROT n_ j_) (ROT n_ k_))
              [j_ >= 0 && k_ >= 0 && j_ + k_ < n_]
      (do $i0 = 0, n_-(j_+k_)-1
         $out($i0) = $in($i0 + j_ + k_)
       end
       do $i0 = 0, j_+k_-1
         $out(n_-(j_+k_)+$i0) = $in($i0)
       end))

    ; Rotate by 1 then by 2: matches the fused template (one loop).
    #subname rot3
    (compose (ROT 8 1) (ROT 8 2))

    ; A rotation feeding the 8-point DFT: templates compose with built-ins.
    #subname rotdft
    (compose (F 8) (ROT 8 3))
  )";

  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  driver::CompilerOptions Opts;
  auto Units = Compiler.compileSource(Source, Opts);
  if (!Units) {
    std::fputs(Diags.dump().c_str(), stderr);
    return 1;
  }

  // First unit: the fused rotation. One loop, no temporary vector.
  const auto &Rot3 = (*Units)[0];
  std::puts("=== fused (ROT 8 1)(ROT 8 2) i-code ===");
  std::fputs(Rot3.Final.print().c_str(), stdout);
  if (!Rot3.Final.TempVecSizes.empty()) {
    std::puts("unexpected temporary: fusion template did not fire");
    return 1;
  }

  vm::Executor VM(Rot3.Final);
  std::vector<double> X(16), Y;
  for (int I = 0; I < 8; ++I)
    X[2 * I] = I; // x[i] = i, purely real.
  VM.runReal(X, Y);
  std::puts("\ny = rotate-by-3 of (0 1 2 3 4 5 6 7):");
  for (int I = 0; I < 8; ++I)
    std::printf("  y[%d] = %g\n", I, Y[2 * I]);
  for (int I = 0; I < 8; ++I) {
    if (Y[2 * I] != (I + 3) % 8) {
      std::puts("rotation is wrong!");
      return 1;
    }
  }

  // Second unit: user matrix composed with a built-in transform.
  const auto &RotDft = (*Units)[1];
  std::puts("\n=== (F 8)(ROT 8 3): generated C (head) ===");
  std::string Head = RotDft.Code.substr(0, 400);
  std::fputs(Head.c_str(), stdout);
  std::puts("...\n\nok: user-defined matrices integrate with the pipeline");
  return 0;
}
