//===- examples/quickstart.cpp - First steps with the SPL compiler ------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: write an SPL program (the paper's F_4 Cooley-Tukey
/// factorization), compile it to C, inspect the generated code, execute the
/// i-code in the bundled VM and check the result against the dense matrix
/// semantics of the formula.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "vm/Executor.h"

#include <cstdio>

using namespace spl;

int main() {
  // An SPL program: Equation 3 of the paper,
  //   F_4 = (F_2 (x) I_2) T^4_2 (I_2 (x) F_2) L^4_2,
  // fully unrolled into straight-line code.
  const char *Source = R"(
    ; Cooley-Tukey factorization of the 4-point DFT
    #subname fft4
    #unroll on
    (compose (tensor (F 2) (I 2))
             (T 4 2)
             (tensor (I 2) (F 2))
             (L 4 2))
  )";

  Diagnostics Diags;
  driver::Compiler Compiler(Diags);
  driver::CompilerOptions Opts;

  auto Units = Compiler.compileSource(Source, Opts);
  if (!Units) {
    std::fputs(Diags.dump().c_str(), stderr);
    return 1;
  }
  const driver::CompiledUnit &Unit = Units->front();

  std::puts("=== formula ===");
  std::puts(Unit.Formula->print().c_str());

  std::puts("\n=== i-code after optimization ===");
  std::fputs(Unit.Final.print().c_str(), stdout);

  std::puts("\n=== generated C ===");
  std::fputs(Unit.Code.c_str(), stdout);

  // Execute the compiled program in the VM on x = (1, i, -1, 2).
  vm::Executor VM(Unit.Final);
  std::vector<Cplx> X = {Cplx(1, 0), Cplx(0, 1), Cplx(-1, 0), Cplx(2, 0)};
  std::vector<double> XR(8), YR;
  for (int I = 0; I < 4; ++I) {
    XR[2 * I] = X[I].real();
    XR[2 * I + 1] = X[I].imag();
  }
  VM.runReal(XR, YR);

  std::puts("\n=== y = F_4 x ===");
  std::vector<Cplx> Want = Unit.Formula->toMatrix().apply(X);
  double MaxErr = 0;
  for (int I = 0; I < 4; ++I) {
    Cplx Y(YR[2 * I], YR[2 * I + 1]);
    std::printf("y[%d] = %+.6f %+.6fi   (dense oracle: %+.6f %+.6fi)\n", I,
                Y.real(), Y.imag(), Want[I].real(), Want[I].imag());
    MaxErr = std::max(MaxErr, std::abs(Y - Want[I]));
  }
  std::printf("\nmax |error| vs dense semantics: %.3g\n", MaxErr);
  return MaxErr < 1e-12 ? 0 : 1;
}
