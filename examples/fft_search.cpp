//===- examples/fft_search.cpp - Searching the FFT algorithm space ------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPIRAL loop in miniature: enumerate FFT factorizations, evaluate
/// each candidate through the compiler, run the dynamic-programming search
/// (keep-3 for large sizes, as in the paper's Section 4.2) and report the
/// winning formulas with their costs.
///
/// Demonstrates the two amortization mechanisms on top of the paper's
/// engine: persistent wisdom (a second run with a warm wisdom file performs
/// zero candidate evaluations for cached sizes) and the parallel candidate
/// evaluator.
///
///   fft_search [--wisdom file] [--no-wisdom] [--search-threads t]
///              (wisdom defaults to ./fft_search.wisdom to keep the demo
///               self-contained; point --wisdom at ~/.spl_wisdom to share)
///
//===----------------------------------------------------------------------===//

#include "perf/Metrics.h"
#include "search/DPSearch.h"
#include "search/PlanCache.h"
#include "support/Timer.h"
#include "vm/Executor.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace spl;

int main(int Argc, char **Argv) {
  std::string WisdomPath = "fft_search.wisdom";
  bool UseWisdom = true;
  int Threads = 1;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--wisdom" && I + 1 < Argc) {
      WisdomPath = Argv[++I];
    } else if (Arg == "--no-wisdom") {
      UseWisdom = false;
    } else if (Arg == "--search-threads" && I + 1 < Argc) {
      Threads = std::atoi(Argv[++I]);
    } else {
      std::fprintf(stderr,
                   "usage: fft_search [--wisdom file] [--no-wisdom] "
                   "[--search-threads t]\n");
      return 1;
    }
  }

  Diagnostics Diags;
  driver::CompilerOptions CompOpts;
  CompOpts.UnrollThreshold = 16;

  // Search by measured VM time (the portable measurement path); swap in
  // search::NativeTimeEvaluator to time natively compiled code instead.
  search::VMTimeEvaluator Eval(Diags, CompOpts, /*Repeats=*/2);

  search::PlanCache Wisdom(Diags);
  if (UseWisdom)
    Wisdom.load(WisdomPath);

  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;
  SOpts.KeepBest = 3;
  SOpts.Threads = Threads;
  search::DPSearch Search(Eval, Diags, SOpts, UseWisdom ? &Wisdom : nullptr);

  Timer Wall;
  std::puts("small sizes (exhaustive over Equation 10 factorizations):");
  auto Small = Search.searchSmall(16);
  for (const auto &[N, Cand] : Small) {
    std::printf("  F_%-3lld  %-60s  %.2f us\n", static_cast<long long>(N),
                Cand.Formula->print().substr(0, 60).c_str(),
                Cand.Cost * 1e6);
  }

  std::puts("\nlarge sizes (right-most binary Cooley-Tukey, keep-3):");
  for (std::int64_t N : {64, 256, 1024}) {
    auto Entries = Search.searchLarge(N);
    if (Entries.empty()) {
      std::fputs(Diags.dump().c_str(), stderr);
      return 1;
    }
    std::printf("  F_%lld: kept %zu candidates\n", static_cast<long long>(N),
                Entries.size());
    for (size_t I = 0; I != Entries.size(); ++I) {
      std::printf("    #%zu  %.2f us  (%.1f pseudo MFlops)\n", I + 1,
                  Entries[I].Cost * 1e6,
                  perf::pseudoMFlops(N, Entries[I].Cost));
    }
  }

  // Show the winner's code shape for N = 256.
  auto Best = Search.best(256);
  if (!Best)
    return 1;
  auto Compiled = Eval.compile(Best->Formula);
  if (!Compiled)
    return 1;
  std::printf("\nwinning F_256 formula:\n  %s\n",
              Best->Formula->print().c_str());
  std::printf("generated program: %zu instructions, %llu flops, "
              "%zu twiddle tables\n",
              Compiled->Final.staticSize(),
              static_cast<unsigned long long>(
                  Compiled->Final.dynamicOpCount()),
              Compiled->Final.Tables.size());

  // Cache hit/miss/timing summary. A warm run reports zero candidate
  // evaluations: every size came straight out of the wisdom file.
  if (UseWisdom) {
    Wisdom.save(WisdomPath);
    Wisdom.reportSummary();
  }
  std::printf("\nsearch took %.2f s, %llu candidate evaluations, "
              "%d worker thread%s\n",
              Wall.seconds(),
              static_cast<unsigned long long>(Eval.evaluations()), Threads,
              Threads == 1 ? "" : "s");
  if (UseWisdom)
    std::printf("%s (%s)\n", Wisdom.summary().c_str(), WisdomPath.c_str());
  return 0;
}
