# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fft_search "/root/repo/build/examples/fft_search")
set_tests_properties(example_fft_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_transform "/root/repo/build/examples/custom_transform")
set_tests_properties(example_custom_transform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wht_dct "/root/repo/build/examples/wht_dct")
set_tests_properties(example_wht_dct PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
