# Empty compiler generated dependencies file for fft_search.
# This may be replaced when dependencies are built.
