file(REMOVE_RECURSE
  "CMakeFiles/fft_search.dir/fft_search.cpp.o"
  "CMakeFiles/fft_search.dir/fft_search.cpp.o.d"
  "fft_search"
  "fft_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
