# Empty dependencies file for wht_dct.
# This may be replaced when dependencies are built.
