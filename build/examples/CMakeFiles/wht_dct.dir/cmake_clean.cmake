file(REMOVE_RECURSE
  "CMakeFiles/wht_dct.dir/wht_dct.cpp.o"
  "CMakeFiles/wht_dct.dir/wht_dct.cpp.o.d"
  "wht_dct"
  "wht_dct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wht_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
