file(REMOVE_RECURSE
  "CMakeFiles/expander_test.dir/ExpanderTest.cpp.o"
  "CMakeFiles/expander_test.dir/ExpanderTest.cpp.o.d"
  "expander_test"
  "expander_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expander_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
