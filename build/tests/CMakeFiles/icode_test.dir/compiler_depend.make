# Empty compiler generated dependencies file for icode_test.
# This may be replaced when dependencies are built.
