file(REMOVE_RECURSE
  "CMakeFiles/icode_test.dir/ICodeTest.cpp.o"
  "CMakeFiles/icode_test.dir/ICodeTest.cpp.o.d"
  "icode_test"
  "icode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
