file(REMOVE_RECURSE
  "CMakeFiles/search_test.dir/SearchTest.cpp.o"
  "CMakeFiles/search_test.dir/SearchTest.cpp.o.d"
  "search_test"
  "search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
