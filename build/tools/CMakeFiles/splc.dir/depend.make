# Empty dependencies file for splc.
# This may be replaced when dependencies are built.
