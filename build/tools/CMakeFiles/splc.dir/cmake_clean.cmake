file(REMOVE_RECURSE
  "CMakeFiles/splc.dir/splc.cpp.o"
  "CMakeFiles/splc.dir/splc.cpp.o.d"
  "splc"
  "splc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
