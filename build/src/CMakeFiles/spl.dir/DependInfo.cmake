
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/Codelets.cpp" "src/CMakeFiles/spl.dir/baseline/Codelets.cpp.o" "gcc" "src/CMakeFiles/spl.dir/baseline/Codelets.cpp.o.d"
  "/root/repo/src/baseline/Kernels.cpp" "src/CMakeFiles/spl.dir/baseline/Kernels.cpp.o" "gcc" "src/CMakeFiles/spl.dir/baseline/Kernels.cpp.o.d"
  "/root/repo/src/baseline/Planner.cpp" "src/CMakeFiles/spl.dir/baseline/Planner.cpp.o" "gcc" "src/CMakeFiles/spl.dir/baseline/Planner.cpp.o.d"
  "/root/repo/src/codegen/CEmitter.cpp" "src/CMakeFiles/spl.dir/codegen/CEmitter.cpp.o" "gcc" "src/CMakeFiles/spl.dir/codegen/CEmitter.cpp.o.d"
  "/root/repo/src/codegen/FortranEmitter.cpp" "src/CMakeFiles/spl.dir/codegen/FortranEmitter.cpp.o" "gcc" "src/CMakeFiles/spl.dir/codegen/FortranEmitter.cpp.o.d"
  "/root/repo/src/driver/Compiler.cpp" "src/CMakeFiles/spl.dir/driver/Compiler.cpp.o" "gcc" "src/CMakeFiles/spl.dir/driver/Compiler.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "src/CMakeFiles/spl.dir/frontend/Lexer.cpp.o" "gcc" "src/CMakeFiles/spl.dir/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/CMakeFiles/spl.dir/frontend/Parser.cpp.o" "gcc" "src/CMakeFiles/spl.dir/frontend/Parser.cpp.o.d"
  "/root/repo/src/frontend/ScalarExpr.cpp" "src/CMakeFiles/spl.dir/frontend/ScalarExpr.cpp.o" "gcc" "src/CMakeFiles/spl.dir/frontend/ScalarExpr.cpp.o.d"
  "/root/repo/src/gen/Enumerate.cpp" "src/CMakeFiles/spl.dir/gen/Enumerate.cpp.o" "gcc" "src/CMakeFiles/spl.dir/gen/Enumerate.cpp.o.d"
  "/root/repo/src/gen/Rules.cpp" "src/CMakeFiles/spl.dir/gen/Rules.cpp.o" "gcc" "src/CMakeFiles/spl.dir/gen/Rules.cpp.o.d"
  "/root/repo/src/icode/ICode.cpp" "src/CMakeFiles/spl.dir/icode/ICode.cpp.o" "gcc" "src/CMakeFiles/spl.dir/icode/ICode.cpp.o.d"
  "/root/repo/src/icode/Intrinsics.cpp" "src/CMakeFiles/spl.dir/icode/Intrinsics.cpp.o" "gcc" "src/CMakeFiles/spl.dir/icode/Intrinsics.cpp.o.d"
  "/root/repo/src/icode/Printer.cpp" "src/CMakeFiles/spl.dir/icode/Printer.cpp.o" "gcc" "src/CMakeFiles/spl.dir/icode/Printer.cpp.o.d"
  "/root/repo/src/ir/Builder.cpp" "src/CMakeFiles/spl.dir/ir/Builder.cpp.o" "gcc" "src/CMakeFiles/spl.dir/ir/Builder.cpp.o.d"
  "/root/repo/src/ir/Formula.cpp" "src/CMakeFiles/spl.dir/ir/Formula.cpp.o" "gcc" "src/CMakeFiles/spl.dir/ir/Formula.cpp.o.d"
  "/root/repo/src/ir/Matrix.cpp" "src/CMakeFiles/spl.dir/ir/Matrix.cpp.o" "gcc" "src/CMakeFiles/spl.dir/ir/Matrix.cpp.o.d"
  "/root/repo/src/ir/Transforms.cpp" "src/CMakeFiles/spl.dir/ir/Transforms.cpp.o" "gcc" "src/CMakeFiles/spl.dir/ir/Transforms.cpp.o.d"
  "/root/repo/src/lower/Expander.cpp" "src/CMakeFiles/spl.dir/lower/Expander.cpp.o" "gcc" "src/CMakeFiles/spl.dir/lower/Expander.cpp.o.d"
  "/root/repo/src/opt/DCE.cpp" "src/CMakeFiles/spl.dir/opt/DCE.cpp.o" "gcc" "src/CMakeFiles/spl.dir/opt/DCE.cpp.o.d"
  "/root/repo/src/opt/Peephole.cpp" "src/CMakeFiles/spl.dir/opt/Peephole.cpp.o" "gcc" "src/CMakeFiles/spl.dir/opt/Peephole.cpp.o.d"
  "/root/repo/src/opt/Pipeline.cpp" "src/CMakeFiles/spl.dir/opt/Pipeline.cpp.o" "gcc" "src/CMakeFiles/spl.dir/opt/Pipeline.cpp.o.d"
  "/root/repo/src/opt/ValueNumbering.cpp" "src/CMakeFiles/spl.dir/opt/ValueNumbering.cpp.o" "gcc" "src/CMakeFiles/spl.dir/opt/ValueNumbering.cpp.o.d"
  "/root/repo/src/perf/Accuracy.cpp" "src/CMakeFiles/spl.dir/perf/Accuracy.cpp.o" "gcc" "src/CMakeFiles/spl.dir/perf/Accuracy.cpp.o.d"
  "/root/repo/src/perf/KernelRunner.cpp" "src/CMakeFiles/spl.dir/perf/KernelRunner.cpp.o" "gcc" "src/CMakeFiles/spl.dir/perf/KernelRunner.cpp.o.d"
  "/root/repo/src/perf/MemoryModel.cpp" "src/CMakeFiles/spl.dir/perf/MemoryModel.cpp.o" "gcc" "src/CMakeFiles/spl.dir/perf/MemoryModel.cpp.o.d"
  "/root/repo/src/perf/Metrics.cpp" "src/CMakeFiles/spl.dir/perf/Metrics.cpp.o" "gcc" "src/CMakeFiles/spl.dir/perf/Metrics.cpp.o.d"
  "/root/repo/src/perf/NativeCompile.cpp" "src/CMakeFiles/spl.dir/perf/NativeCompile.cpp.o" "gcc" "src/CMakeFiles/spl.dir/perf/NativeCompile.cpp.o.d"
  "/root/repo/src/search/DPSearch.cpp" "src/CMakeFiles/spl.dir/search/DPSearch.cpp.o" "gcc" "src/CMakeFiles/spl.dir/search/DPSearch.cpp.o.d"
  "/root/repo/src/search/Evaluator.cpp" "src/CMakeFiles/spl.dir/search/Evaluator.cpp.o" "gcc" "src/CMakeFiles/spl.dir/search/Evaluator.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/spl.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/spl.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/HostInfo.cpp" "src/CMakeFiles/spl.dir/support/HostInfo.cpp.o" "gcc" "src/CMakeFiles/spl.dir/support/HostInfo.cpp.o.d"
  "/root/repo/src/support/StrUtil.cpp" "src/CMakeFiles/spl.dir/support/StrUtil.cpp.o" "gcc" "src/CMakeFiles/spl.dir/support/StrUtil.cpp.o.d"
  "/root/repo/src/support/Timer.cpp" "src/CMakeFiles/spl.dir/support/Timer.cpp.o" "gcc" "src/CMakeFiles/spl.dir/support/Timer.cpp.o.d"
  "/root/repo/src/templates/Builtins.cpp" "src/CMakeFiles/spl.dir/templates/Builtins.cpp.o" "gcc" "src/CMakeFiles/spl.dir/templates/Builtins.cpp.o.d"
  "/root/repo/src/templates/Condition.cpp" "src/CMakeFiles/spl.dir/templates/Condition.cpp.o" "gcc" "src/CMakeFiles/spl.dir/templates/Condition.cpp.o.d"
  "/root/repo/src/templates/Matcher.cpp" "src/CMakeFiles/spl.dir/templates/Matcher.cpp.o" "gcc" "src/CMakeFiles/spl.dir/templates/Matcher.cpp.o.d"
  "/root/repo/src/templates/Registry.cpp" "src/CMakeFiles/spl.dir/templates/Registry.cpp.o" "gcc" "src/CMakeFiles/spl.dir/templates/Registry.cpp.o.d"
  "/root/repo/src/vm/Executor.cpp" "src/CMakeFiles/spl.dir/vm/Executor.cpp.o" "gcc" "src/CMakeFiles/spl.dir/vm/Executor.cpp.o.d"
  "/root/repo/src/xform/Complex2Real.cpp" "src/CMakeFiles/spl.dir/xform/Complex2Real.cpp.o" "gcc" "src/CMakeFiles/spl.dir/xform/Complex2Real.cpp.o.d"
  "/root/repo/src/xform/IntrinEval.cpp" "src/CMakeFiles/spl.dir/xform/IntrinEval.cpp.o" "gcc" "src/CMakeFiles/spl.dir/xform/IntrinEval.cpp.o.d"
  "/root/repo/src/xform/Scalarize.cpp" "src/CMakeFiles/spl.dir/xform/Scalarize.cpp.o" "gcc" "src/CMakeFiles/spl.dir/xform/Scalarize.cpp.o.d"
  "/root/repo/src/xform/Unroll.cpp" "src/CMakeFiles/spl.dir/xform/Unroll.cpp.o" "gcc" "src/CMakeFiles/spl.dir/xform/Unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
