# Empty dependencies file for spl.
# This may be replaced when dependencies are built.
