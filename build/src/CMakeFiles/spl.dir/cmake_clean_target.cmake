file(REMOVE_RECURSE
  "libspl.a"
)
