# Empty dependencies file for bench_abl_vm_vs_native.
# This may be replaced when dependencies are built.
