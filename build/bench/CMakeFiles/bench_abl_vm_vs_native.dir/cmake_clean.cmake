file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_vm_vs_native.dir/bench_abl_vm_vs_native.cpp.o"
  "CMakeFiles/bench_abl_vm_vs_native.dir/bench_abl_vm_vs_native.cpp.o.d"
  "bench_abl_vm_vs_native"
  "bench_abl_vm_vs_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_vm_vs_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
