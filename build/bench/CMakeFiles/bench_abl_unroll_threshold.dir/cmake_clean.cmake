file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_unroll_threshold.dir/bench_abl_unroll_threshold.cpp.o"
  "CMakeFiles/bench_abl_unroll_threshold.dir/bench_abl_unroll_threshold.cpp.o.d"
  "bench_abl_unroll_threshold"
  "bench_abl_unroll_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_unroll_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
