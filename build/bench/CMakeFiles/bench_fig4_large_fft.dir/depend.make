# Empty dependencies file for bench_fig4_large_fft.
# This may be replaced when dependencies are built.
