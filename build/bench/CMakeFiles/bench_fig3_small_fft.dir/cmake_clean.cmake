file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_small_fft.dir/bench_fig3_small_fft.cpp.o"
  "CMakeFiles/bench_fig3_small_fft.dir/bench_fig3_small_fft.cpp.o.d"
  "bench_fig3_small_fft"
  "bench_fig3_small_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_small_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
