# Empty compiler generated dependencies file for bench_fig3_small_fft.
# This may be replaced when dependencies are built.
