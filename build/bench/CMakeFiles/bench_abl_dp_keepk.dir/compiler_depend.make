# Empty compiler generated dependencies file for bench_abl_dp_keepk.
# This may be replaced when dependencies are built.
