file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dp_keepk.dir/bench_abl_dp_keepk.cpp.o"
  "CMakeFiles/bench_abl_dp_keepk.dir/bench_abl_dp_keepk.cpp.o.d"
  "bench_abl_dp_keepk"
  "bench_abl_dp_keepk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dp_keepk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
