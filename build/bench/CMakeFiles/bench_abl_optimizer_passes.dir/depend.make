# Empty dependencies file for bench_abl_optimizer_passes.
# This may be replaced when dependencies are built.
