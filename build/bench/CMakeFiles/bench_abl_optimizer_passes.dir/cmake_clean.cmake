file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_optimizer_passes.dir/bench_abl_optimizer_passes.cpp.o"
  "CMakeFiles/bench_abl_optimizer_passes.dir/bench_abl_optimizer_passes.cpp.o.d"
  "bench_abl_optimizer_passes"
  "bench_abl_optimizer_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_optimizer_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
