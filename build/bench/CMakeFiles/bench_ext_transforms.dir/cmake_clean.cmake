file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_transforms.dir/bench_ext_transforms.cpp.o"
  "CMakeFiles/bench_ext_transforms.dir/bench_ext_transforms.cpp.o.d"
  "bench_ext_transforms"
  "bench_ext_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
