# Empty compiler generated dependencies file for bench_ext_transforms.
# This may be replaced when dependencies are built.
