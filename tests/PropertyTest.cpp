//===- tests/PropertyTest.cpp - Randomized end-to-end properties -----------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based sweep: random formula trees (compose / tensor /
/// direct-sum over the parameterized and explicit matrices) are pushed
/// through every pipeline configuration and executed; the output must match
/// the dense-matrix semantics. One test instantiation per (seed, config)
/// pair via INSTANTIATE_TEST_SUITE_P. Also: printing any generated formula
/// and re-parsing it yields a structurally identical formula.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/Parser.h"
#include "ir/Builder.h"
#include "lower/Expander.h"
#include "opt/Pipeline.h"
#include "templates/Registry.h"
#include "vm/Executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace spl;
using namespace spl::test;

namespace {

/// Random formula generator: bounded depth and size so the dense oracle
/// stays cheap.
class FormulaGen {
public:
  explicit FormulaGen(unsigned Seed) : Gen(Seed) {}

  FormulaRef leaf() {
    switch (pick(7)) {
    case 0:
      return makeIdentity(sizePick());
    case 1:
      return makeDFT(sizePick());
    case 2: {
      std::int64_t N = 1 + pick(3);
      std::int64_t MN = N * (1 + pick(3));
      return makeStride(MN, N);
    }
    case 3: {
      std::int64_t N = 1 + pick(3);
      std::int64_t MN = N * (1 + pick(3));
      return makeTwiddle(MN, N);
    }
    case 4: {
      std::vector<Cplx> D(sizePick());
      for (auto &V : D)
        V = randomScalar();
      return makeDiagonal(std::move(D));
    }
    case 5: {
      std::int64_t N = sizePick();
      std::vector<std::int64_t> T(N);
      for (std::int64_t I = 0; I != N; ++I)
        T[I] = I + 1;
      std::shuffle(T.begin(), T.end(), Gen);
      return makePermutation(std::move(T));
    }
    default: {
      size_t R = sizePick(), C = sizePick();
      std::vector<std::vector<Cplx>> M(R, std::vector<Cplx>(C));
      for (auto &Row : M)
        for (auto &V : Row)
          V = pick(3) == 0 ? Cplx(0, 0) : randomScalar();
      return makeGenMatrix(std::move(M));
    }
    }
  }

  FormulaRef tree(int Depth) {
    if (Depth <= 0 || pick(3) == 0)
      return leaf();
    switch (pick(3)) {
    case 0: {
      FormulaRef B = tree(Depth - 1);
      // Compose needs matching sizes; synthesize a square left operand.
      FormulaRef A = squareOfSize(B->outSize(), Depth - 1);
      return makeCompose(A, B);
    }
    case 1:
      return makeTensor(tree(Depth - 1), tree(Depth - 1));
    default:
      return makeDirectSum(tree(Depth - 1), tree(Depth - 1));
    }
  }

private:
  std::mt19937 Gen;

  std::int64_t pick(std::int64_t N) {
    return std::uniform_int_distribution<std::int64_t>(0, N - 1)(Gen);
  }
  std::int64_t sizePick() { return 1 + pick(4); } // 1..4.
  Cplx randomScalar() {
    std::uniform_real_distribution<double> D(-2, 2);
    return Cplx(D(Gen), D(Gen));
  }

  FormulaRef squareOfSize(std::int64_t N, int Depth) {
    if (Depth > 0 && N > 1 && pick(2) == 0) {
      // Split N into a tensor or direct sum of square pieces.
      for (std::int64_t D = 2; D * D <= N; ++D)
        if (N % D == 0)
          return makeTensor(squareOfSize(D, 0), squareOfSize(N / D, 0));
      if (N > 2)
        return makeDirectSum(squareOfSize(1, 0), squareOfSize(N - 1, 0));
    }
    switch (pick(3)) {
    case 0:
      return makeIdentity(N);
    case 1:
      return makeDFT(N);
    default: {
      std::vector<Cplx> D(N);
      for (auto &V : D)
        V = randomScalar();
      return makeDiagonal(std::move(D));
    }
    }
  }
};

struct Config {
  opt::OptLevel Level;
  bool Lower;
  std::int64_t Threshold;
};

class RandomFormulaTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(RandomFormulaTest, CompiledOutputMatchesDenseSemantics) {
  auto [Seed, ConfigIdx] = GetParam();
  static const Config Configs[] = {
      {opt::OptLevel::None, false, 0},
      {opt::OptLevel::Scalarize, false, 64},
      {opt::OptLevel::Default, false, 0},
      {opt::OptLevel::Default, false, 64},
      {opt::OptLevel::Default, true, 0},
      {opt::OptLevel::Default, true, 64},
  };
  const Config &Cfg = Configs[ConfigIdx];

  FormulaGen G(Seed);
  FormulaRef F = G.tree(3);
  ASSERT_TRUE(F);
  if (F->inSize() > 256)
    GTEST_SKIP() << "oracle too large";

  Diagnostics Diags;
  static auto Registry = tpl::TemplateRegistry::withBuiltins();
  lower::Expander Exp(Registry, Diags);
  lower::ExpandOptions EOpts;
  EOpts.UnrollThreshold = Cfg.Threshold;
  auto P = Exp.expand(F, EOpts);
  ASSERT_TRUE(P) << Diags.dump() << "\n" << F->print();

  opt::PipelineOptions POpts;
  POpts.Level = Cfg.Level;
  POpts.LowerToReal = Cfg.Lower;
  auto Final = opt::runPipeline(*P, POpts);
  ASSERT_EQ(Final.verify(), "");

  std::vector<Cplx> X = randomVector(F->inSize(), Seed * 7 + 1);
  std::vector<Cplx> Want = F->toMatrix().apply(X);

  vm::Executor VM(Final);
  std::vector<Cplx> Got;
  if (Cfg.Lower) {
    std::vector<double> XR(2 * X.size()), YR;
    for (size_t I = 0; I != X.size(); ++I) {
      XR[2 * I] = X[I].real();
      XR[2 * I + 1] = X[I].imag();
    }
    VM.runReal(XR, YR);
    Got.resize(YR.size() / 2);
    for (size_t I = 0; I != Got.size(); ++I)
      Got[I] = Cplx(YR[2 * I], YR[2 * I + 1]);
  } else {
    VM.run(X, Got);
  }
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-9) << F->print();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomFormulaTest,
    ::testing::Combine(::testing::Range(1u, 26u), ::testing::Range(0, 6)),
    [](const auto &Info) {
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_cfg" +
             std::to_string(std::get<1>(Info.param));
    });

class RoundTripTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RoundTripTest, PrintParsePreservesStructure) {
  FormulaGen G(GetParam());
  FormulaRef F = G.tree(3);
  Diagnostics Diags;
  FormulaRef Back = parseFormulaString(F->print(), Diags);
  ASSERT_TRUE(Back) << Diags.dump() << "\n" << F->print();
  EXPECT_TRUE(formulaEqual(F, Back)) << F->print() << "\nvs\n"
                                     << Back->print();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundTripTest, ::testing::Range(100u, 140u));

} // namespace
