//===- tests/MatrixTest.cpp - Dense matrix oracle tests --------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dense-matrix layer is the oracle everything else is judged against,
/// so it gets its own algebraic property tests: the Kronecker mixed-product
/// identity, stride-permutation inversion, DFT unitarity, and the formula
/// identities of Section 2.1 (Equations 1, 3 and 6).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Builder.h"
#include "ir/Transforms.h"

#include <gtest/gtest.h>

using namespace spl;
using namespace spl::test;

namespace {

Matrix randomMatrix(size_t R, size_t C, unsigned Seed) {
  std::mt19937 Gen(Seed);
  std::uniform_real_distribution<double> Dist(-1, 1);
  Matrix M(R, C);
  for (size_t I = 0; I != R; ++I)
    for (size_t J = 0; J != C; ++J)
      M.at(I, J) = Cplx(Dist(Gen), Dist(Gen));
  return M;
}

TEST(Matrix, IdentityAndMultiply) {
  Matrix A = randomMatrix(3, 4, 1);
  EXPECT_LT(Matrix::identity(3).mul(A).maxAbsDiff(A), 1e-15);
  EXPECT_LT(A.mul(Matrix::identity(4)).maxAbsDiff(A), 1e-15);
}

TEST(Matrix, KroneckerMixedProduct) {
  // (A (x) B)(C (x) D) = AC (x) BD for compatible shapes.
  Matrix A = randomMatrix(2, 3, 2), C = randomMatrix(3, 2, 3);
  Matrix B = randomMatrix(4, 2, 4), D = randomMatrix(2, 4, 5);
  Matrix Lhs = A.kron(B).mul(C.kron(D));
  Matrix Rhs = A.mul(C).kron(B.mul(D));
  EXPECT_LT(Lhs.maxAbsDiff(Rhs), 1e-12);
}

TEST(Matrix, DirectSumBlocks) {
  Matrix A = randomMatrix(2, 2, 6), B = randomMatrix(3, 3, 7);
  Matrix S = A.directSum(B);
  EXPECT_EQ(S.rows(), 5u);
  EXPECT_EQ(S.at(0, 0), A.at(0, 0));
  EXPECT_EQ(S.at(2, 2), B.at(0, 0));
  EXPECT_EQ(S.at(0, 2), Cplx(0, 0));
}

TEST(Matrix, ApplyMatchesMultiply) {
  Matrix A = randomMatrix(4, 5, 8);
  auto X = randomVector(5);
  auto Y = A.apply(X);
  for (size_t I = 0; I != 4; ++I) {
    Cplx Acc(0, 0);
    for (size_t J = 0; J != 5; ++J)
      Acc += A.at(I, J) * X[J];
    EXPECT_LT(std::abs(Y[I] - Acc), 1e-13);
  }
}

TEST(Transforms, DFTIsUnitaryUpToScale) {
  // F_n * conj(F_n) = n I.
  for (std::int64_t N : {2, 3, 4, 8}) {
    Matrix F = dftMatrix(N);
    Matrix Conj(N, N);
    for (std::int64_t I = 0; I != N; ++I)
      for (std::int64_t J = 0; J != N; ++J)
        Conj.at(I, J) = std::conj(F.at(I, J));
    Matrix P = F.mul(Conj);
    Matrix Want = Matrix::identity(N);
    for (std::int64_t I = 0; I != N; ++I)
      Want.at(I, I) = Cplx(static_cast<double>(N), 0);
    EXPECT_LT(P.maxAbsDiff(Want), 1e-12) << N;
  }
}

TEST(Transforms, StridePermutationsInvert) {
  // L^{rs}_s . L^{rs}_r = I.
  for (auto [R, S] : {std::pair<std::int64_t, std::int64_t>{2, 2},
                      {2, 4},
                      {3, 4},
                      {4, 4}}) {
    Matrix P = strideMatrix(R * S, S).mul(strideMatrix(R * S, R));
    EXPECT_LT(P.maxAbsDiff(Matrix::identity(R * S)), 1e-15);
  }
}

TEST(Transforms, Equation1PaperFactorizationOfF4) {
  // F_4 = (F_2 (+) F_2 arranged as the butterfly) ... checked via the SPL
  // formula of Equation 3, which Section 2.1 derives from Equation 1.
  Matrix F4 = dftMatrix(4);
  // The paper's explicit 4x4 entries: row 1 = (1, -i, -1, i).
  EXPECT_LT(std::abs(F4.at(1, 1) - Cplx(0, -1)), 1e-15);
  EXPECT_LT(std::abs(F4.at(1, 3) - Cplx(0, 1)), 1e-15);
  EXPECT_LT(std::abs(F4.at(3, 1) - Cplx(0, 1)), 1e-15);

  FormulaRef F = makeCompose(
      {makeTensor(makeDFT(2), makeIdentity(2)), makeTwiddle(4, 2),
       makeTensor(makeIdentity(2), makeDFT(2)), makeStride(4, 2)});
  EXPECT_LT(F->toMatrix().maxAbsDiff(F4), 1e-15);
}

TEST(Transforms, Equation6CommutationIdentity) {
  // A (x) B = L^{mn}_m (B (x) A) L^{mn}_n with A m-by-m, B n-by-n.
  Matrix A = randomMatrix(2, 2, 9), B = randomMatrix(3, 3, 10);
  std::int64_t M = 2, N = 3;
  Matrix Lhs = A.kron(B);
  Matrix Rhs = strideMatrix(M * N, M)
                   .mul(B.kron(A))
                   .mul(strideMatrix(M * N, N));
  EXPECT_LT(Lhs.maxAbsDiff(Rhs), 1e-12);
}

TEST(Transforms, TwiddleIsTheDirectSumOfRootPowers) {
  // T^{rs}_s = (+)_{j<r} diag(w_rs^0, ..., w_rs^{j(s-1)}) (Equation 4).
  std::int64_t R = 3, S = 4;
  Matrix T = twiddleMatrix(R * S, S);
  for (std::int64_t J = 0; J != R; ++J)
    for (std::int64_t K = 0; K != S; ++K)
      EXPECT_LT(std::abs(T.at(J * S + K, J * S + K) - wRoot(R * S, J * K)),
                1e-15);
}

TEST(Transforms, WHTIsSymmetricWithUnitEntries) {
  Matrix W = whtMatrix(8);
  for (int I = 0; I < 8; ++I)
    for (int J = 0; J < 8; ++J) {
      EXPECT_EQ(W.at(I, J), W.at(J, I));
      EXPECT_EQ(std::abs(W.at(I, J)), 1.0);
    }
  // WHT * WHT = n I.
  Matrix P = W.mul(W);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(P.at(I, I), Cplx(8, 0));
}

TEST(Formula, HashAndEqualityAgree) {
  FormulaRef A = makeCompose(makeDFT(4), makeStride(4, 2));
  FormulaRef B = makeCompose(makeDFT(4), makeStride(4, 2));
  FormulaRef C = makeCompose(makeDFT(4), makeStride(4, 4));
  EXPECT_TRUE(formulaEqual(A, B));
  EXPECT_FALSE(formulaEqual(A, C));
  EXPECT_EQ(A->hash(), B->hash());
  EXPECT_NE(A->hash(), C->hash()); // Not guaranteed, but deterministic here.
}

TEST(Formula, SizesPropagate) {
  FormulaRef F = makeTensor(makeDFT(3), makeDirectSum(makeDFT(2),
                                                      makeIdentity(3)));
  EXPECT_EQ(F->inSize(), 15);
  EXPECT_EQ(F->outSize(), 15);
  FormulaRef G = makeGenMatrix({{Cplx(1, 0), Cplx(0, 0), Cplx(0, 0)},
                                {Cplx(0, 0), Cplx(1, 0), Cplx(0, 0)}});
  EXPECT_EQ(G->inSize(), 3);
  EXPECT_EQ(G->outSize(), 2);
  FormulaRef H = makeCompose(G, makeIdentity(3));
  EXPECT_EQ(H->inSize(), 3);
  EXPECT_EQ(H->outSize(), 2);
}

TEST(Formula, PatternsReportUnknownSizes) {
  FormulaRef P = makeDFT(IntArg("n_"));
  EXPECT_TRUE(P->isPattern());
  EXPECT_EQ(P->inSize(), -1);
  FormulaRef Q = makeTensor(makeIdentity(2), makePatFormula("A_"));
  EXPECT_TRUE(Q->isPattern());
  EXPECT_EQ(Q->inSize(), -1);
}

} // namespace
