//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the test suites: random vectors, the dense-matrix
/// oracle check (compile a formula through a chosen pipeline configuration,
/// execute it in the VM, and compare with Formula::toMatrix), and small
/// formula factories.
///
//===----------------------------------------------------------------------===//

#ifndef SPL_TESTS_TESTUTIL_H
#define SPL_TESTS_TESTUTIL_H

#include "ir/Formula.h"
#include "support/FaultInjection.h"

#include <random>
#include <string>
#include <vector>

/// Skips the current test when an externally imposed SPL_FAULT matrix is
/// armed (the CI fault job runs the whole suite that way): tests that
/// assert healthy-path behavior — a native kernel compiling, a trial
/// passing — would otherwise report the injected fault as a failure.
/// Requires <gtest/gtest.h> at the use site.
#define SPL_SKIP_IF_FAULTS_ARMED()                                           \
  do {                                                                       \
    if (::spl::fault::armed())                                               \
      GTEST_SKIP() << "SPL_FAULT is armed; this test asserts healthy-path "  \
                      "behavior";                                            \
  } while (0)

namespace spl {
namespace test {

/// Deterministic random complex vector (unit-scale entries).
inline std::vector<Cplx> randomVector(size_t N, unsigned Seed = 12345) {
  std::mt19937 Gen(Seed);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<Cplx> V(N);
  for (auto &X : V)
    X = Cplx(Dist(Gen), Dist(Gen));
  return V;
}

/// Deterministic random real vector.
inline std::vector<double> randomRealVector(size_t N, unsigned Seed = 54321) {
  std::mt19937 Gen(Seed);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<double> V(N);
  for (auto &X : V)
    X = Dist(Gen);
  return V;
}

/// Largest elementwise |a-b|.
inline double maxAbsDiff(const std::vector<Cplx> &A,
                         const std::vector<Cplx> &B) {
  if (A.size() != B.size())
    return 1e300;
  double M = 0;
  for (size_t I = 0; I != A.size(); ++I)
    M = std::max(M, std::abs(A[I] - B[I]));
  return M;
}

} // namespace test
} // namespace spl

#endif // SPL_TESTS_TESTUTIL_H
