//===- tests/ICodeTest.cpp - I-code data structure tests ------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "icode/ICode.h"
#include "icode/Intrinsics.h"
#include "ir/Transforms.h"

#include <gtest/gtest.h>

using namespace spl;
using namespace spl::icode;

namespace {

TEST(Affine, ArithmeticAndNormalization) {
  Affine A = Affine::var(0, 2).plusConst(3); // 2*i0 + 3.
  Affine B = Affine::var(1).plus(Affine::var(0, -2)); // i1 - 2*i0.
  Affine Sum = A.plus(B);
  EXPECT_EQ(Sum.Base, 3);
  EXPECT_EQ(Sum.coefOf(0), 0); // Cancelled and dropped by normalize().
  EXPECT_EQ(Sum.coefOf(1), 1);
  EXPECT_FALSE(Sum.usesVar(0));
  EXPECT_TRUE(Sum.usesVar(1));
}

TEST(Affine, ScaleAndSubstitute) {
  Affine A = Affine::var(0, 3).plusConst(1);
  Affine S = A.scaled(-2); // -6*i0 - 2.
  EXPECT_EQ(S.Base, -2);
  EXPECT_EQ(S.coefOf(0), -6);
  EXPECT_TRUE(A.scaled(0).isConst());

  // i0 := 4*i1 + 5  =>  3*(4*i1+5) + 1 = 12*i1 + 16.
  Affine T = A.substVar(0, Affine::var(1, 4).plusConst(5));
  EXPECT_EQ(T.Base, 16);
  EXPECT_EQ(T.coefOf(1), 12);
  EXPECT_FALSE(T.usesVar(0));
}

TEST(Affine, Evaluate) {
  Affine A = Affine::var(0, 2).plus(Affine::var(2, -1)).plusConst(7);
  std::vector<std::int64_t> Vars = {3, 99, 4};
  EXPECT_EQ(A.eval(Vars), 2 * 3 - 4 + 7);
}

TEST(IntExpr, ConstantFoldingInBuilder) {
  auto E = IntExpr::mkBin(IntExpr::Mul, IntExpr::mkConst(6),
                          IntExpr::mkConst(7));
  EXPECT_EQ(E->K, IntExpr::Const);
  EXPECT_EQ(E->C, 42);
  auto M = IntExpr::mkBin(IntExpr::Mod, IntExpr::mkConst(10),
                          IntExpr::mkConst(4));
  EXPECT_EQ(M->C, 2);
}

TEST(IntExpr, EvalAndSubstitution) {
  // i0 * i1 + 3.
  auto E = IntExpr::mkBin(
      IntExpr::Add,
      IntExpr::mkBin(IntExpr::Mul, IntExpr::mkVar(0), IntExpr::mkVar(1)),
      IntExpr::mkConst(3));
  std::vector<std::int64_t> Vars = {5, 4};
  EXPECT_EQ(E->eval(Vars), 23);

  auto S = E->substVar(1, IntExpr::mkConst(2));
  EXPECT_EQ(S->eval(Vars), 13);
  std::vector<int> Used;
  S->collectVars(Used);
  EXPECT_EQ(Used.size(), 1u);
  EXPECT_EQ(Used[0], 0);
}

TEST(Operand, EqualityIgnoresIrrelevantFields) {
  EXPECT_TRUE(Operand::fltTemp(3) == Operand::fltTemp(3));
  EXPECT_FALSE(Operand::fltTemp(3) == Operand::fltTemp(4));
  EXPECT_TRUE(Operand::vecElem(VecIn, Affine(2)) ==
              Operand::vecElem(VecIn, Affine(2)));
  EXPECT_FALSE(Operand::vecElem(VecIn, Affine(2)) ==
               Operand::vecElem(VecOut, Affine(2)));
  EXPECT_FALSE(Operand::fltConst(Cplx(1, 0)) == Operand::fltConst(Cplx(1, 1)));
  // Intrinsic calls never compare equal (they are folded before CSE).
  Operand W = Operand::intrinsic("W", {IntExpr::mkConst(2)});
  EXPECT_FALSE(W == W);
}

TEST(Program, DynamicOpCountWeighsLoops) {
  Program P;
  P.InSize = P.OutSize = 4;
  P.NumLoopVars = 2;
  P.NumFltTemps = 1;
  P.Body = {
      Instr::loop(0, 0, 3),
      Instr::loop(1, 0, 1),
      Instr::bin(Op::Add, Operand::fltTemp(0),
                 Operand::vecElem(VecIn, Affine::var(0)),
                 Operand::vecElem(VecIn, Affine::var(1))),
      Instr::end(),
      Instr::copy(Operand::vecElem(VecOut, Affine::var(0)),
                  Operand::fltTemp(0)),
      Instr::end(),
  };
  ASSERT_EQ(P.verify(), "");
  // Add runs 4*2 = 8 times; the Copy is not an arithmetic op.
  EXPECT_EQ(P.dynamicOpCount(), 8u);
}

TEST(Program, VerifyCatchesViolations) {
  Program P;
  P.InSize = P.OutSize = 1;
  P.NumFltTemps = 1;

  // Unbalanced loop.
  P.Body = {Instr::loop(0, 0, 1)};
  P.NumLoopVars = 1;
  EXPECT_NE(P.verify(), "");

  // Subscript uses out-of-scope loop var.
  P.Body = {Instr::copy(Operand::vecElem(VecOut, Affine::var(0)),
                        Operand::fltTemp(0))};
  EXPECT_NE(P.verify(), "");

  // Constant as destination.
  P.Body = {Instr::copy(Operand::fltConst(Cplx(0, 0)), Operand::fltTemp(0))};
  EXPECT_NE(P.verify(), "");

  // Complex constant in a real program.
  P.Type = DataType::Real;
  P.Body = {Instr::copy(Operand::vecElem(VecOut, Affine(0)),
                        Operand::fltConst(Cplx(0, 1)))};
  EXPECT_NE(P.verify(), "");

  // Temp vector id out of range.
  P.Type = DataType::Complex;
  P.Body = {Instr::copy(Operand::vecElem(FirstTempVec, Affine(0)),
                        Operand::fltTemp(0))};
  EXPECT_NE(P.verify(), "");

  // Float temp id out of range.
  P.Body = {Instr::copy(Operand::vecElem(VecOut, Affine(0)),
                        Operand::fltTemp(7))};
  EXPECT_NE(P.verify(), "");
}

TEST(Program, PrintIsReadable) {
  Program P;
  P.SubName = "demo";
  P.InSize = P.OutSize = 2;
  P.NumLoopVars = 1;
  P.Body = {
      Instr::loop(0, 0, 1),
      Instr::copy(Operand::vecElem(VecOut, Affine::var(0)),
                  Operand::vecElem(VecIn, Affine::var(0))),
      Instr::end(),
  };
  std::string S = P.print();
  EXPECT_NE(S.find("do $i0 = 0, 1"), std::string::npos);
  EXPECT_NE(S.find("$out($i0) = $in($i0)"), std::string::npos);
  EXPECT_NE(S.find("end"), std::string::npos);
}

TEST(Intrinsics, BuiltinsMatchTransformDefinitions) {
  const auto &Reg = IntrinsicRegistry::builtins();
  EXPECT_TRUE(Reg.contains("W"));
  EXPECT_TRUE(Reg.contains("TW"));
  EXPECT_TRUE(Reg.contains("WHTE"));
  EXPECT_TRUE(Reg.contains("DCT2E"));
  EXPECT_TRUE(Reg.contains("DCT4E"));
  EXPECT_EQ(Reg.arity("W"), 2u);
  EXPECT_EQ(Reg.arity("TW"), 3u);
  EXPECT_EQ(Reg.eval("W", {8, 2}), wRoot(8, 2));
  EXPECT_EQ(Reg.eval("TW", {8, 4, 5}), twiddleEntry(8, 4, 5));
  EXPECT_EQ(Reg.eval("WHTE", {8, 3, 5}).real(), whtEntry(8, 3, 5));
}

TEST(Intrinsics, UserRegistrationOverrides) {
  IntrinsicRegistry Reg;
  Reg.add("W", 2, [](const std::vector<std::int64_t> &) {
    return Cplx(42, 0);
  });
  EXPECT_EQ(Reg.eval("W", {8, 1}), Cplx(42, 0));
  Reg.add("MINE", 1, [](const std::vector<std::int64_t> &A) {
    return Cplx(static_cast<double>(A[0] * 2), 0);
  });
  EXPECT_EQ(Reg.eval("MINE", {21}), Cplx(42, 0));
}

TEST(Transforms, ExactRootsOnAxesAndEighths) {
  EXPECT_EQ(wRoot(4, 0), Cplx(1, 0));
  EXPECT_EQ(wRoot(4, 1), Cplx(0, -1));
  EXPECT_EQ(wRoot(4, 2), Cplx(-1, 0));
  EXPECT_EQ(wRoot(4, 3), Cplx(0, 1));
  EXPECT_EQ(wRoot(8, 1).real(), -wRoot(8, 3).real());
  EXPECT_EQ(wRoot(8, 1).real(), 0.70710678118654752440084436210485);
  // Negative and wrapping exponents reduce correctly.
  EXPECT_EQ(wRoot(4, -1), Cplx(0, 1));
  EXPECT_EQ(wRoot(4, 5), wRoot(4, 1));
}

TEST(Transforms, StrideIndexIsAPermutationAndInverse) {
  // L^{12}_3 maps output index i to input strideIndex(12,3,i); composing
  // with L^{12}_4 must give the identity.
  std::vector<bool> Seen(12, false);
  for (int I = 0; I < 12; ++I) {
    std::int64_t S = strideIndex(12, 3, I);
    ASSERT_GE(S, 0);
    ASSERT_LT(S, 12);
    EXPECT_FALSE(Seen[S]);
    Seen[S] = true;
    EXPECT_EQ(strideIndex(12, 4, S), I);
  }
}

} // namespace
