//===- tests/SearchTest.cpp - Search engine tests ------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the dynamic-programming search: winners must be correct FFT
/// formulas, cheaper than naive candidates, and the keep-k machinery must
/// behave as Section 4.2 describes.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Builder.h"
#include "ir/Transforms.h"
#include "search/DPSearch.h"
#include "search/PlanCache.h"
#include "support/Deadline.h"
#include "telemetry/Metrics.h"
#include "vm/Executor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace spl;
using namespace spl::test;

namespace {

driver::CompilerOptions searchOptions() {
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 16; // Keep tests fast.
  return Opts;
}

TEST(Search, SmallSearchFindsCorrectWinners) {
  Diagnostics Diags;
  search::OpCountEvaluator Eval(Diags, searchOptions());
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;
  search::DPSearch Search(Eval, Diags, SOpts);

  auto Best = Search.searchSmall(16);
  ASSERT_EQ(Best.size(), 4u) << Diags.dump(); // 2, 4, 8, 16.
  for (auto &[N, Cand] : Best) {
    EXPECT_LT(Cand.Formula->toMatrix().maxAbsDiff(dftMatrix(N)), 1e-9)
        << "N=" << N << ": " << Cand.Formula->print();
    EXPECT_GT(Cand.Cost, 0);
  }
  // The winners beat the DFT by definition on op count for n >= 8.
  Diagnostics D2;
  auto Naive = Eval.cost(makeDFT(8));
  ASSERT_TRUE(Naive);
  EXPECT_LT(Best[8].Cost, *Naive);
}

TEST(Search, LargeSearchKeepsKBest) {
  Diagnostics Diags;
  search::OpCountEvaluator Eval(Diags, searchOptions());
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;
  SOpts.KeepBest = 3;
  search::DPSearch Search(Eval, Diags, SOpts);
  Search.searchSmall(16);

  auto Entries = Search.searchLarge(128);
  ASSERT_GE(Entries.size(), 2u) << Diags.dump();
  ASSERT_LE(Entries.size(), 3u);
  // Sorted by cost.
  for (size_t I = 1; I < Entries.size(); ++I)
    EXPECT_LE(Entries[I - 1].Cost, Entries[I].Cost);
  // All are genuine F_128 formulas (verify via the VM, the dense oracle
  // would be O(n^2) but fine at 128).
  for (const auto &E : Entries)
    EXPECT_LT(E.Formula->toMatrix().maxAbsDiff(dftMatrix(128)), 1e-8)
        << E.Formula->print();
}

TEST(Search, VMEvaluatorProducesPositiveTimes) {
  Diagnostics Diags;
  search::VMTimeEvaluator Eval(Diags, searchOptions(), /*Repeats=*/1);
  auto Cost = Eval.cost(makeDFT(8));
  ASSERT_TRUE(Cost) << Diags.dump();
  EXPECT_GT(*Cost, 0);
}

TEST(Search, BestHandlesSmallAndLargeUniformly) {
  Diagnostics Diags;
  search::OpCountEvaluator Eval(Diags, searchOptions());
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;
  search::DPSearch Search(Eval, Diags, SOpts);
  auto B8 = Search.best(8);
  auto B64 = Search.best(64);
  ASSERT_TRUE(B8);
  ASSERT_TRUE(B64) << Diags.dump();
  EXPECT_LT(B64->Formula->toMatrix().maxAbsDiff(dftMatrix(64)), 1e-9);
}

TEST(Search, MixedRadixSizesAreSearchable) {
  // 12 = 3*4 etc.: factorCompositions handles any composite; primes fall
  // back to the DFT by definition.
  Diagnostics Diags;
  search::OpCountEvaluator Eval(Diags, searchOptions());
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 64;
  search::DPSearch Search(Eval, Diags, SOpts);
  for (std::int64_t N : {6, 12, 24, 15, 7}) {
    auto Best = Search.best(N);
    ASSERT_TRUE(Best) << Diags.dump() << " N=" << N;
    EXPECT_LT(Best->Formula->toMatrix().maxAbsDiff(dftMatrix(N)), 1e-9)
        << Best->Formula->print();
  }
  // Composite sizes beat the definition; 7 is prime so it IS the definition.
  auto B12 = Search.best(12);
  auto Naive12 = Eval.cost(makeDFT(12));
  ASSERT_TRUE(B12 && Naive12);
  EXPECT_LT(B12->Cost, *Naive12);
}

TEST(Search, RealDatatypeEvaluatorForWHT) {
  Diagnostics Diags;
  search::OpCountEvaluator Eval(Diags, searchOptions());
  Eval.setDatatype("real");
  auto Cost = Eval.cost(makeWHT(8));
  ASSERT_TRUE(Cost) << Diags.dump();
  auto C = Eval.compile(makeWHT(8));
  ASSERT_TRUE(C);
  EXPECT_EQ(C->Final.Type, icode::DataType::Real);
  EXPECT_FALSE(C->Final.LoweredToReal);
}

TEST(Search, KeepOneIsNeverBetterThanKeepThree) {
  // Ablation A2's invariant: with a deterministic cost model, enlarging the
  // kept set can only improve (or tie) the final winner.
  Diagnostics Diags;
  search::OpCountEvaluator Eval(Diags, searchOptions());

  search::SearchOptions K1;
  K1.MaxLeaf = 16;
  K1.KeepBest = 1;
  search::DPSearch S1(Eval, Diags, K1);
  auto E1 = S1.searchLarge(256);

  search::SearchOptions K3;
  K3.MaxLeaf = 16;
  K3.KeepBest = 3;
  search::DPSearch S3(Eval, Diags, K3);
  auto E3 = S3.searchLarge(256);

  ASSERT_FALSE(E1.empty());
  ASSERT_FALSE(E3.empty());
  EXPECT_LE(E3.front().Cost, E1.front().Cost * 1.0001);
}

TEST(Search, ExpiredDeadlineReturnsBestEffortAndCounts) {
  telemetry::setMetricsEnabled(true);
  const std::uint64_t Exceeded0 =
      telemetry::counter("search.deadline_exceeded").value();

  Diagnostics Diags;
  search::OpCountEvaluator Eval(Diags, searchOptions());
  support::Deadline Dead = support::Deadline::afterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Eval.setDeadline(Dead);
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;
  SOpts.Deadline = Dead;
  search::DPSearch Search(Eval, Diags, SOpts);

  // Out of budget before the first candidate: the search must still hand
  // back a correct (if unoptimized) formula rather than nothing.
  auto Best = Search.best(64);
  ASSERT_TRUE(Best) << Diags.dump();
  EXPECT_LT(Best->Formula->toMatrix().maxAbsDiff(dftMatrix(64)), 1e-9)
      << Best->Formula->print();
  EXPECT_GT(telemetry::counter("search.deadline_exceeded").value(),
            Exceeded0);
  telemetry::setMetricsEnabled(false);
  telemetry::resetAllMetrics();
}

TEST(Search, TruncatedSearchNeverRecordsWisdom) {
  Diagnostics Diags;
  search::OpCountEvaluator Eval(Diags, searchOptions());
  search::PlanCache Wisdom(Diags);

  {
    support::Deadline Dead = support::Deadline::afterMs(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Eval.setDeadline(Dead);
    search::SearchOptions SOpts;
    SOpts.MaxLeaf = 16;
    SOpts.Deadline = Dead;
    search::DPSearch Search(Eval, Diags, SOpts, &Wisdom);
    ASSERT_TRUE(Search.best(64));
    // A best-effort winner must never be persisted: a warm run would
    // inherit the truncated table as if it were the search's real answer.
    EXPECT_EQ(Wisdom.size(), 0u);
  }

  // The same search with budget records its wisdom as usual.
  Eval.setDeadline(support::Deadline());
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;
  search::DPSearch Search(Eval, Diags, SOpts, &Wisdom);
  ASSERT_TRUE(Search.best(64));
  EXPECT_GT(Wisdom.size(), 0u);
}

} // namespace
