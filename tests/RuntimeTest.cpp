//===- tests/RuntimeTest.cpp - Plan/execute runtime layer tests ---------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the FFTW-style runtime layer: planning against the dense-matrix
/// oracle, plan sharing through the registry, VM-vs-native agreement,
/// thread-count determinism of batched execution, and the typed-error
/// fallback from the native backend to the VM.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "codegen/VectorISA.h"
#include "ir/Transforms.h"
#include "perf/NativeCompile.h"
#include "runtime/AlignedBuffer.h"
#include "runtime/PlanRegistry.h"
#include "support/Diagnostics.h"
#include "support/StrUtil.h"
#include "telemetry/Metrics.h"
#include "transforms/Registry.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace spl;
using namespace spl::test;

namespace {

/// Options every test shares: deterministic cost model, no wisdom file I/O.
runtime::PlannerOptions testOptions() {
  runtime::PlannerOptions Opts;
  Opts.Evaluator = "opcount";
  Opts.UseWisdom = false;
  return Opts;
}

/// Interleaves a complex vector into (re,im) pairs as the lowered plans
/// expect.
std::vector<double> interleave(const std::vector<Cplx> &V) {
  std::vector<double> Out(V.size() * 2);
  for (size_t I = 0; I != V.size(); ++I) {
    Out[2 * I] = V[I].real();
    Out[2 * I + 1] = V[I].imag();
  }
  return Out;
}

std::vector<Cplx> deinterleave(const std::vector<double> &V) {
  std::vector<Cplx> Out(V.size() / 2);
  for (size_t I = 0; I != Out.size(); ++I)
    Out[I] = Cplx(V[2 * I], V[2 * I + 1]);
  return Out;
}

TEST(Plan, FftMatchesDenseOracle) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  for (std::int64_t N : {4, 16, 64}) {
    runtime::PlanSpec Spec;
    Spec.Size = N;
    Spec.Want = runtime::Backend::VM; // Deterministically available.
    auto P = Planner.plan(Spec);
    ASSERT_TRUE(P) << Diags.dump();
    EXPECT_EQ(P->vectorLen(), 2 * N); // Complex data, interleaved.

    auto X = randomVector(N);
    std::vector<double> XR = interleave(X), YR(2 * N);
    P->execute(YR.data(), XR.data());
    EXPECT_LT(maxAbsDiff(deinterleave(YR), dftMatrix(N).apply(X)), 1e-10)
        << "N=" << N;
  }
}

TEST(Plan, WhtMatchesDenseOracle) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Transform = "wht";
  Spec.Size = 32;
  Spec.Want = runtime::Backend::VM;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();
  EXPECT_EQ(P->vectorLen(), 32); // Real data.

  auto XD = randomRealVector(32);
  std::vector<Cplx> X(32);
  for (size_t I = 0; I != 32; ++I)
    X[I] = Cplx(XD[I], 0);
  std::vector<double> Y(32);
  P->execute(Y.data(), XD.data());
  auto Want = whtMatrix(32).apply(X);
  double Max = 0;
  for (size_t I = 0; I != 32; ++I)
    Max = std::max(Max, std::abs(Y[I] - Want[I].real()));
  EXPECT_LT(Max, 1e-10);
}

TEST(Plan, InPlaceExecuteMatchesOutOfPlace) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 16;
  Spec.Want = runtime::Backend::VM;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();

  std::vector<double> X = interleave(randomVector(16));
  std::vector<double> Y(32), InPlace = X;
  P->execute(Y.data(), X.data());
  P->execute(InPlace.data(), InPlace.data()); // Y == X aliasing.
  EXPECT_EQ(std::memcmp(Y.data(), InPlace.data(), 32 * sizeof(double)), 0);
}

TEST(Plan, StatsSnapshotTracksArmedExecutes) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 8;
  Spec.Want = runtime::Backend::VM;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();

  std::vector<double> X(static_cast<size_t>(P->vectorLen() * 4), 0.5);
  std::vector<double> Y(X.size());

  // Disarmed executions leave no trace in the snapshot.
  telemetry::setMetricsEnabled(false);
  P->execute(Y.data(), X.data());
  runtime::ExecStats S0 = P->stats();
  EXPECT_EQ(S0.Executes, 0u);
  EXPECT_EQ(S0.Batches, 0u);

  telemetry::setMetricsEnabled(true);
  P->execute(Y.data(), X.data());
  P->execute(Y.data(), X.data());
  P->executeBatch(Y.data(), X.data(), 4);
  telemetry::setMetricsEnabled(false);
  telemetry::resetAllMetrics(); // Keep the process-global registry clean.

  runtime::ExecStats S = P->stats();
  EXPECT_EQ(S.Executes, 2u);
  EXPECT_EQ(S.Batches, 1u);
  EXPECT_EQ(S.Vectors, 4u);
  EXPECT_EQ(S.ExecuteNs.Count, 2u);
  EXPECT_EQ(S.BatchNs.Count, 1u);
  EXPECT_GE(S.ExecuteNs.Max, S.ExecuteNs.Min);
  EXPECT_GT(S.ExecuteNs.p50(), 0u);
}

TEST(Plan, InvalidSpecsFailWithDiagnostics) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());

  runtime::PlanSpec NonPow2;
  NonPow2.Size = 20; // Not a power of two above MaxLeaf.
  EXPECT_FALSE(Planner.plan(NonPow2));

  runtime::PlanSpec BadTransform;
  BadTransform.Transform = "dct";
  BadTransform.Size = 8;
  EXPECT_FALSE(Planner.plan(BadTransform));

  runtime::PlanSpec RealFft;
  RealFft.Size = 8;
  RealFft.Datatype = "real"; // The FFT needs complex data.
  EXPECT_FALSE(Planner.plan(RealFft));

  EXPECT_GT(Diags.errorCount(), 0u);
}

TEST(PlanRegistry, SharesOnePlanPerSpec) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanRegistry Registry(Planner);

  runtime::PlanSpec Spec;
  Spec.Size = 16;
  Spec.Want = runtime::Backend::VM;
  auto A = Registry.acquire(Spec);
  auto B = Registry.acquire(Spec);
  ASSERT_TRUE(A);
  EXPECT_EQ(A.get(), B.get()); // The very same plan object.

  runtime::PlanSpec Other = Spec;
  Other.Size = 32;
  auto C = Registry.acquire(Other);
  ASSERT_TRUE(C);
  EXPECT_NE(A.get(), C.get());

  auto S = Registry.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(Registry.size(), 2u);

  // Old plans survive a clear; the next acquire re-plans.
  Registry.clear();
  EXPECT_EQ(Registry.size(), 0u);
  auto D = Registry.acquire(Spec);
  ASSERT_TRUE(D);
  EXPECT_NE(A.get(), D.get());
  std::vector<double> X = interleave(randomVector(16)), Y(32);
  A->execute(Y.data(), X.data()); // Still executable after clear().
}

TEST(PlanRegistry, ConcurrentAcquiresSingleFlight) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanRegistry Registry(Planner);

  runtime::PlanSpec Spec;
  Spec.Size = 64;
  Spec.Want = runtime::Backend::VM;

  constexpr int NThreads = 8;
  std::vector<std::shared_ptr<runtime::Plan>> Got(NThreads);
  std::vector<std::thread> Threads;
  for (int I = 0; I != NThreads; ++I)
    Threads.emplace_back([&, I] { Got[I] = Registry.acquire(Spec); });
  for (auto &T : Threads)
    T.join();

  ASSERT_TRUE(Got[0]);
  for (int I = 1; I != NThreads; ++I)
    EXPECT_EQ(Got[I].get(), Got[0].get());
  // Exactly one planning pass ran, however the threads interleaved.
  EXPECT_EQ(Registry.stats().Misses, 1u);
}

TEST(PlanRegistry, ContentionStressMixedKeys) {
  // The spld case: many tenants hammering a mix of hot (identical) and
  // cold (distinct) specs at once. Whatever the interleaving, each
  // distinct key must be searched exactly once (single-flight), every
  // thread must get the same shared plan for its key, and the counters
  // must account for every acquire as a miss, a hit, or a wait.
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanRegistry Registry(Planner);

  constexpr int NThreads = 16;
  constexpr int Rounds = 8;
  const std::int64_t Sizes[] = {8, 16, 32, 64};
  constexpr int NKeys = 4;

  std::atomic<int> Ready{0};
  std::atomic<bool> Go{false};
  std::atomic<int> Failures{0};
  // [key] -> the plan each thread observed last; all must agree per key.
  std::array<std::array<const runtime::Plan *, NKeys>, NThreads> Seen{};

  std::vector<std::thread> Threads;
  for (int T = 0; T != NThreads; ++T)
    Threads.emplace_back([&, T] {
      Ready.fetch_add(1);
      while (!Go.load())
        std::this_thread::yield();
      for (int R = 0; R != Rounds; ++R)
        for (int K = 0; K != NKeys; ++K) {
          runtime::PlanSpec Spec;
          // Stagger the visiting order per thread so every key sees
          // first-acquire races from different threads.
          const int Key = (K + T + R) % NKeys;
          Spec.Size = Sizes[Key];
          Spec.Want = runtime::Backend::VM;
          auto P = Registry.acquire(Spec);
          if (!P) {
            Failures.fetch_add(1);
            return;
          }
          Seen[T][Key] = P.get();
        }
    });
  while (Ready.load() != NThreads)
    std::this_thread::yield();
  Go.store(true);
  for (auto &T : Threads)
    T.join();
  ASSERT_EQ(Failures.load(), 0);

  for (int K = 0; K != NKeys; ++K)
    for (int T = 1; T != NThreads; ++T)
      EXPECT_EQ(Seen[T][K], Seen[0][K]) << "key " << K << " not shared";

  const auto S = Registry.stats();
  EXPECT_EQ(Registry.size(), static_cast<size_t>(NKeys));
  EXPECT_EQ(S.Misses, static_cast<size_t>(NKeys))
      << "a key was planned more than once under contention";
  // Every other acquire either hit the memo or waited on the in-flight
  // search — nothing is lost and nothing is double-counted.
  EXPECT_EQ(S.Hits + S.Waits,
            static_cast<size_t>(NThreads) * Rounds * NKeys - NKeys);
}

TEST(Plan, NativeAgreesWithVmTo1e10) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no working C compiler on this host";
  SPL_SKIP_IF_FAULTS_ARMED();

  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 64;
  Spec.Want = runtime::Backend::Native;
  auto NP = Planner.plan(Spec);
  ASSERT_TRUE(NP) << Diags.dump();
  ASSERT_EQ(NP->backend(), runtime::Backend::Native)
      << NP->fallbackReason();

  Spec.Want = runtime::Backend::VM;
  auto VP = Planner.plan(Spec);
  ASSERT_TRUE(VP) << Diags.dump();

  constexpr std::int64_t Batch = 16;
  const std::int64_t Len = NP->vectorLen();
  std::vector<double> X, YN(Batch * Len), YV(Batch * Len);
  for (std::int64_t I = 0; I != Batch; ++I) {
    auto V = interleave(randomVector(64, 100 + static_cast<unsigned>(I)));
    X.insert(X.end(), V.begin(), V.end());
  }
  NP->executeBatch(YN.data(), X.data(), Batch, 2);
  VP->executeBatch(YV.data(), X.data(), Batch, 2);
  double Max = 0;
  for (size_t I = 0; I != YN.size(); ++I)
    Max = std::max(Max, std::abs(YN[I] - YV[I]));
  EXPECT_LT(Max, 1e-10);
}

TEST(Plan, BatchIsBitIdenticalAcrossThreadCounts) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 16;
  Spec.Want = runtime::Backend::VM; // Works on compiler-less hosts too.
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();

  constexpr std::int64_t Batch = 37; // Not a multiple of any thread count.
  const std::int64_t Len = P->vectorLen();
  std::vector<double> X;
  for (std::int64_t I = 0; I != Batch; ++I) {
    auto V = interleave(randomVector(16, 7 + static_cast<unsigned>(I)));
    X.insert(X.end(), V.begin(), V.end());
  }

  std::vector<double> Y1(Batch * Len);
  P->executeBatch(Y1.data(), X.data(), Batch, 1);
  for (int T : {2, 3, 4, 8}) {
    std::vector<double> YT(Batch * Len, -1.0);
    P->executeBatch(YT.data(), X.data(), Batch, T);
    EXPECT_EQ(std::memcmp(Y1.data(), YT.data(),
                          static_cast<size_t>(Batch * Len) * sizeof(double)),
              0)
        << "threads=" << T;
  }
}

TEST(Plan, StridedBatchTouchesOnlyItsLanes) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 4;
  Spec.Want = runtime::Backend::VM;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();

  const std::int64_t Len = P->vectorLen(), Stride = Len + 3, Batch = 5;
  std::vector<double> X(Batch * Stride, 0.5), Y(Batch * Stride, -7.0);
  P->executeBatch(Y.data(), X.data(), Batch, 2, Stride, Stride);
  for (std::int64_t I = 0; I != Batch; ++I)
    for (std::int64_t J = Len; J != Stride; ++J)
      EXPECT_EQ(Y[I * Stride + J], -7.0) << "pad lane written";
}

TEST(Plan, ForcedNativeFailureFallsBackToVm) {
  Diagnostics Diags;
  auto Opts = testOptions();
  Opts.ForceNativeFail = true;
  runtime::Planner Planner(Diags, Opts);

  runtime::PlanSpec Spec;
  Spec.Size = 16;
  Spec.Want = runtime::Backend::Native;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump(); // Fallback, not failure.
  EXPECT_EQ(P->backend(), runtime::Backend::VM);
  EXPECT_TRUE(P->usedFallback());
  EXPECT_NE(P->fallbackReason().find("compile-failed"), std::string::npos)
      << P->fallbackReason();
  EXPECT_EQ(Diags.errorCount(), 0u); // A note, never an error.

  // The fallback plan still computes the right answer.
  auto X = randomVector(16);
  std::vector<double> XR = interleave(X), YR(32);
  P->execute(YR.data(), XR.data());
  EXPECT_LT(maxAbsDiff(deinterleave(YR), dftMatrix(16).apply(X)), 1e-10);
}

TEST(Plan, DescribeMentionsBackendAndFormula) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 8;
  Spec.Want = runtime::Backend::VM;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();
  auto D = P->describe();
  EXPECT_NE(D.find("fft 8"), std::string::npos) << D;
  EXPECT_NE(D.find("vm"), std::string::npos) << D;
  EXPECT_FALSE(P->formulaText().empty());
  EXPECT_NE(D.find(P->formulaText()), std::string::npos) << D;
}

TEST(Planner, WisdomRoundTripSkipsResearch) {
  std::string Path = "/tmp/spl-runtime-wisdom-" + std::to_string(getpid());
  {
    Diagnostics Diags;
    auto Opts = testOptions();
    Opts.UseWisdom = true;
    Opts.WisdomPath = Path;
    runtime::Planner Planner(Diags, Opts);
    runtime::PlanSpec Spec;
    Spec.Size = 32;
    Spec.Want = runtime::Backend::VM;
    ASSERT_TRUE(Planner.plan(Spec)) << Diags.dump();
    EXPECT_TRUE(Planner.saveWisdom());
  }
  {
    Diagnostics Diags;
    auto Opts = testOptions();
    Opts.UseWisdom = true;
    Opts.WisdomPath = Path;
    runtime::Planner Planner(Diags, Opts);
    runtime::PlanSpec Spec;
    Spec.Size = 32;
    Spec.Want = runtime::Backend::VM;
    auto P = Planner.plan(Spec);
    ASSERT_TRUE(P) << Diags.dump();
    EXPECT_GT(Planner.wisdom().stats().Hits, 0u) << "wisdom not consulted";

    // And the remembered formula still checks out against the oracle.
    auto X = randomVector(32);
    std::vector<double> XR = interleave(X), YR(64);
    P->execute(YR.data(), XR.data());
    EXPECT_LT(maxAbsDiff(deinterleave(YR), dftMatrix(32).apply(X)), 1e-10);
  }
  std::remove(Path.c_str());
}

TEST(Plan, VectorPlanMatchesDenseOracle) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no working C compiler on this host";
  if (!codegen::vectorBackendAvailable())
    GTEST_SKIP() << "no SIMD ISA on this host";
  SPL_SKIP_IF_FAULTS_ARMED();

  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 32;
  Spec.Want = runtime::Backend::Native;
  Spec.Codegen = runtime::CodegenMode::Vector;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();
  ASSERT_EQ(P->backend(), runtime::Backend::Native) << P->fallbackReason();
  ASSERT_EQ(P->codegenVariant(), codegen::CodegenVariant::Vector)
      << P->fallbackReason();
  EXPECT_GT(P->lanes(), 1);

  Matrix Dense = dftMatrix(32);

  // Single execute goes through the one-column lane group (padded lanes).
  auto X0 = randomVector(32);
  std::vector<double> XR = interleave(X0), YR(64);
  P->execute(YR.data(), XR.data());
  EXPECT_LT(maxAbsDiff(deinterleave(YR), Dense.apply(X0)), 1e-10);

  // Batched execute with a count that is neither a lane-group nor a
  // thread-chunk multiple: tail groups are zero-padded, never garbage.
  constexpr std::int64_t Batch = 11;
  const std::int64_t Len = P->vectorLen();
  std::vector<std::vector<Cplx>> Cols;
  std::vector<double> BX, BY(Batch * Len);
  for (std::int64_t I = 0; I != Batch; ++I) {
    Cols.push_back(randomVector(32, 500 + static_cast<unsigned>(I)));
    auto V = interleave(Cols.back());
    BX.insert(BX.end(), V.begin(), V.end());
  }
  P->executeBatch(BY.data(), BX.data(), Batch, 3);
  for (std::int64_t I = 0; I != Batch; ++I) {
    std::vector<double> One(BY.begin() + I * Len,
                            BY.begin() + (I + 1) * Len);
    EXPECT_LT(maxAbsDiff(deinterleave(One), Dense.apply(Cols[I])), 1e-10)
        << "batch column " << I;
  }
}

TEST(Plan, VectorBatchBitIdenticalAcrossThreadCounts) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no working C compiler on this host";
  if (!codegen::vectorBackendAvailable())
    GTEST_SKIP() << "no SIMD ISA on this host";
  SPL_SKIP_IF_FAULTS_ARMED();

  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 16;
  Spec.Want = runtime::Backend::Native;
  Spec.Codegen = runtime::CodegenMode::Vector;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();
  ASSERT_EQ(P->codegenVariant(), codegen::CodegenVariant::Vector)
      << P->fallbackReason();

  // Lane-wise kernels make the group cut invisible: however the batch is
  // chunked across threads, every column's bits are identical.
  constexpr std::int64_t Batch = 37;
  const std::int64_t Len = P->vectorLen();
  std::vector<double> X;
  for (std::int64_t I = 0; I != Batch; ++I) {
    auto V = interleave(randomVector(16, 7 + static_cast<unsigned>(I)));
    X.insert(X.end(), V.begin(), V.end());
  }
  std::vector<double> Y1(Batch * Len);
  P->executeBatch(Y1.data(), X.data(), Batch, 1);
  for (int T : {2, 3, 4, 8}) {
    std::vector<double> YT(Batch * Len, -1.0);
    P->executeBatch(YT.data(), X.data(), Batch, T);
    EXPECT_EQ(std::memcmp(Y1.data(), YT.data(),
                          static_cast<size_t>(Batch * Len) * sizeof(double)),
              0)
        << "threads=" << T;
  }
}

TEST(Plan, VectorCompileFaultDemotesToScalarNative) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no working C compiler on this host";
  if (!codegen::vectorBackendAvailable())
    GTEST_SKIP() << "no SIMD ISA on this host";
  SPL_SKIP_IF_FAULTS_ARMED();

  telemetry::setMetricsEnabled(true);
  std::uint64_t Before = telemetry::counter("runtime.demote.vector").value();

  ::setenv("SPL_FAULT", "vector-compile", 1);
  fault::reset();
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 16;
  Spec.Want = runtime::Backend::Native;
  Spec.Codegen = runtime::CodegenMode::Vector;
  auto P = Planner.plan(Spec);
  ::unsetenv("SPL_FAULT");
  fault::reset();

  // The vector tier dies, the plan does not: scalar native takes over.
  ASSERT_TRUE(P) << Diags.dump();
  EXPECT_EQ(P->backend(), runtime::Backend::Native) << P->fallbackReason();
  EXPECT_EQ(P->codegenVariant(), codegen::CodegenVariant::Scalar);
  EXPECT_TRUE(P->usedFallback());
  EXPECT_NE(P->fallbackReason().find("vector"), std::string::npos)
      << P->fallbackReason();
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_GT(telemetry::counter("runtime.demote.vector").value(), Before);

  auto X = randomVector(16);
  std::vector<double> XR = interleave(X), YR(32);
  P->execute(YR.data(), XR.data());
  EXPECT_LT(maxAbsDiff(deinterleave(YR), dftMatrix(16).apply(X)), 1e-10);
}

TEST(Planner, VectorWinnerWisdomDegradesWithHostISA) {
  SPL_SKIP_IF_FAULTS_ARMED();
  std::string Path = "/tmp/spl-runtime-vwisdom-" + std::to_string(getpid());
  std::remove(Path.c_str());

  // Seed a wisdom file, then rewrite its entries as vector winners (with
  // recomputed checksums) — simulating a file that roamed from a SIMD host.
  {
    Diagnostics Diags;
    auto Opts = testOptions();
    Opts.UseWisdom = true;
    Opts.WisdomPath = Path;
    runtime::Planner Planner(Diags, Opts);
    runtime::PlanSpec Spec;
    Spec.Size = 8;
    Spec.Want = runtime::Backend::VM;
    ASSERT_TRUE(Planner.plan(Spec)) << Diags.dump();
    ASSERT_TRUE(Planner.saveWisdom());
  }
  {
    std::ifstream In(Path);
    ASSERT_TRUE(In.good());
    std::ostringstream Rewritten;
    std::string Line;
    bool SawVector = false;
    while (std::getline(In, Line)) {
      auto Pos = Line.find(" scalar | ");
      if (Line.rfind("plan ", 0) == 0 && Pos != std::string::npos) {
        // Line = "plan <sum> <payload>"; swap the variant token in the
        // payload and restamp the checksum so the loader accepts it.
        std::string Payload = Line.substr(Line.find(' ', 5) + 1);
        auto P2 = Payload.find(" scalar | ");
        ASSERT_NE(P2, std::string::npos);
        Payload.replace(P2, 10, " vector | ");
        Rewritten << "plan " << fnv1aHex(Payload) << ' ' << Payload << '\n';
        SawVector = true;
      } else {
        Rewritten << Line << '\n';
      }
    }
    In.close();
    ASSERT_TRUE(SawVector) << "no wisdom entry to rewrite";
    std::ofstream Out(Path, std::ios::trunc);
    Out << Rewritten.str();
  }
  {
    Diagnostics Diags;
    auto Opts = testOptions();
    Opts.UseWisdom = true;
    Opts.WisdomPath = Path;
    runtime::Planner Planner(Diags, Opts);
    runtime::PlanSpec Spec;
    Spec.Size = 8;
    Spec.Want = runtime::Backend::VM; // Backend tier is irrelevant here.
    auto P = Planner.plan(Spec);
    ASSERT_TRUE(P) << Diags.dump();
    EXPECT_GT(Planner.wisdom().stats().Hits, 0u)
        << "vector-winner wisdom must load, not invalidate";

    // Whatever the host's ISA probe says, the remembered formula still
    // computes the transform (on scalar-only hosts the entry silently
    // degrades to the scalar variant instead of being rejected).
    auto X = randomVector(8);
    std::vector<double> XR = interleave(X), YR(16);
    P->execute(YR.data(), XR.data());
    EXPECT_LT(maxAbsDiff(deinterleave(YR), dftMatrix(8).apply(X)), 1e-10);
  }
  std::remove(Path.c_str());
}

TEST(Plan, ExecuteBatchHonorsDeadlineWithoutTouchingOutput) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 16;
  Spec.Want = runtime::Backend::VM;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();

  const std::int64_t Len = P->vectorLen();
  std::vector<double> X(static_cast<size_t>(8 * Len), 0.25);
  std::vector<double> Y(X.size(), -7.0);

  telemetry::setMetricsEnabled(true);
  const std::uint64_t Rejected0 =
      telemetry::counter("runtime.deadline_exceeded").value();

  support::Deadline Dead = support::Deadline::afterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(P->executeBatch(Y.data(), X.data(), 8, Dead, 1),
            runtime::ExecStatus::DeadlineExceeded);
  for (double V : Y)
    EXPECT_EQ(V, -7.0) << "a rejected batch must not touch the output";

  // Cancellation rides the same token as clock expiry.
  support::Deadline Cancelled = support::Deadline::afterMs(60000);
  Cancelled.cancel();
  EXPECT_EQ(P->execute(Y.data(), X.data(), Cancelled),
            runtime::ExecStatus::DeadlineExceeded);
  EXPECT_GT(telemetry::counter("runtime.deadline_exceeded").value(),
            Rejected0);
  telemetry::setMetricsEnabled(false);
  telemetry::resetAllMetrics();

  // An unbounded deadline behaves exactly like the legacy entry points.
  EXPECT_EQ(P->executeBatch(Y.data(), X.data(), 8, support::Deadline(), 1),
            runtime::ExecStatus::Ok);
  EXPECT_NE(Y[0], -7.0);
}

TEST(Planner, ExpiredDeadlineStillYieldsAWorkingPressuredPlan) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 32;

  support::Deadline Dead = support::Deadline::afterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  runtime::PlanError Err = runtime::PlanError::None;
  auto P = Planner.plan(Spec, Dead, &Err);
  ASSERT_TRUE(P) << Diags.dump();
  EXPECT_TRUE(P->deadlinePressured());
  // The compile slice was spent, so the plan degraded below the native
  // tier rather than forking a compiler it had no budget for.
  EXPECT_NE(P->backend(), runtime::Backend::Native);

  // Pressured does not mean wrong: the answer still matches an unpressured
  // plan of the same spec.
  auto Ref = Planner.plan(Spec);
  ASSERT_TRUE(Ref) << Diags.dump();
  EXPECT_FALSE(Ref->deadlinePressured());
  const std::int64_t Len = P->vectorLen();
  std::vector<double> X(static_cast<size_t>(Len));
  for (std::int64_t I = 0; I != Len; ++I)
    X[static_cast<size_t>(I)] = 0.1 * static_cast<double>(I % 13) - 0.5;
  std::vector<double> Y1(X.size()), Y2(X.size());
  P->execute(Y1.data(), X.data());
  Ref->execute(Y2.data(), X.data());
  for (size_t I = 0; I != X.size(); ++I)
    EXPECT_NEAR(Y1[I], Y2[I], 1e-10);
}

/// Dense-oracle parity for one plan over \p Vectors random vectors.
void expectOracleParity(runtime::Plan &P, std::int64_t Vectors = 4) {
  const transforms::TransformInfo *TI =
      transforms::lookup(P.spec().Transform);
  ASSERT_NE(TI, nullptr) << P.spec().Transform;
  std::vector<std::int64_t> Dims = P.spec().Shape;
  if (Dims.empty())
    Dims.push_back(P.size());
  Matrix M = transforms::oracleMatrix(*TI, Dims);
  const bool Complex = P.layout() == runtime::Plan::Layout::Interleaved;
  const std::int64_t Len = P.vectorLen();
  for (std::int64_t V = 0; V != Vectors; ++V) {
    std::vector<double> X =
        randomRealVector(static_cast<size_t>(Len),
                         1000 + static_cast<unsigned>(V));
    std::vector<double> Y(static_cast<size_t>(Len));
    P.execute(Y.data(), X.data());
    std::vector<Cplx> In(M.cols());
    for (size_t I = 0; I != In.size(); ++I)
      In[I] = Complex ? Cplx(X[2 * I], X[2 * I + 1]) : Cplx(X[I], 0.0);
    std::vector<Cplx> Ref = M.apply(In);
    double Max = 0;
    for (size_t I = 0; I != Ref.size(); ++I) {
      if (Complex) {
        Max = std::max(Max, std::abs(Y[2 * I] - Ref[I].real()));
        Max = std::max(Max, std::abs(Y[2 * I + 1] - Ref[I].imag()));
      } else {
        Max = std::max(Max, std::abs(Y[I] - Ref[I].real()));
      }
    }
    EXPECT_LT(Max, 1e-10) << P.spec().key() << " vector " << V;
  }
}

TEST(Plan, RegistryTransformsMatchDenseOracles) {
  // Every new transform kind, two sizes, VM tier (compiler-less hosts
  // included): 1e-10 parity against the registry oracle.
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  for (const char *Name : {"rdft", "dct2", "dct3", "dct4"}) {
    for (std::int64_t N : {8, 32}) {
      runtime::PlanSpec Spec;
      Spec.Transform = Name;
      Spec.Size = N;
      Spec.Want = runtime::Backend::VM;
      auto P = Planner.plan(Spec);
      ASSERT_TRUE(P) << Name << " " << N << ": " << Diags.dump();
      EXPECT_EQ(P->vectorLen(), N) << Name; // Real/halfcomplex: N doubles.
      EXPECT_EQ(P->layout(), Name == std::string("rdft")
                                 ? runtime::Plan::Layout::HalfComplex
                                 : runtime::Plan::Layout::Real);
      expectOracleParity(*P);
    }
  }
}

TEST(Plan, NDRowColumnMatchesKronOracle) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());

  runtime::PlanSpec Fft;
  Fft.Shape = {4, 8};
  Fft.Want = runtime::Backend::VM;
  auto PF = Planner.plan(Fft);
  ASSERT_TRUE(PF) << Diags.dump();
  EXPECT_EQ(PF->size(), 32);
  EXPECT_EQ(PF->vectorLen(), 64); // 32 complex points interleaved.
  expectOracleParity(*PF);

  runtime::PlanSpec Dct;
  Dct.Transform = "dct2";
  Dct.Shape = {4, 4};
  Dct.Want = runtime::Backend::VM;
  auto PD = Planner.plan(Dct);
  ASSERT_TRUE(PD) << Diags.dump();
  EXPECT_EQ(PD->vectorLen(), 16);
  expectOracleParity(*PD);
}

TEST(Plan, RegistryTransformBatchesAreBitIdenticalAcrossThreads) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  for (const char *Name : {"rdft", "dct3"}) {
    runtime::PlanSpec Spec;
    Spec.Transform = Name;
    Spec.Size = 16;
    Spec.Want = runtime::Backend::VM;
    auto P = Planner.plan(Spec);
    ASSERT_TRUE(P) << Name << ": " << Diags.dump();

    constexpr std::int64_t Batch = 37; // Not a multiple of a thread count.
    const std::int64_t Len = P->vectorLen();
    std::vector<double> X;
    for (std::int64_t I = 0; I != Batch; ++I) {
      auto V = randomRealVector(static_cast<size_t>(Len),
                                40 + static_cast<unsigned>(I));
      X.insert(X.end(), V.begin(), V.end());
    }
    std::vector<double> Y1(static_cast<size_t>(Batch * Len));
    P->executeBatch(Y1.data(), X.data(), Batch, 1);
    for (int T : {2, 3, 8}) {
      std::vector<double> YT(Y1.size(), -1.0);
      P->executeBatch(YT.data(), X.data(), Batch, T);
      EXPECT_EQ(std::memcmp(Y1.data(), YT.data(),
                            Y1.size() * sizeof(double)),
                0)
          << Name << " threads=" << T;
    }
  }
}

TEST(Plan, RegistryTransformsDegradeUnderForcedNativeFailure) {
  // The degradation chain must carry every new transform kind down to a
  // working tier — including the halfcomplex layout adapter — and the
  // demoted plan still matches the oracle.
  Diagnostics Diags;
  auto Opts = testOptions();
  Opts.ForceNativeFail = true;
  runtime::Planner Planner(Diags, Opts);
  for (const char *Name : {"rdft", "dct2", "dct3", "dct4"}) {
    runtime::PlanSpec Spec;
    Spec.Transform = Name;
    Spec.Size = 16;
    Spec.Want = runtime::Backend::Native;
    auto P = Planner.plan(Spec);
    ASSERT_TRUE(P) << Name << ": " << Diags.dump();
    EXPECT_EQ(P->backend(), runtime::Backend::VM) << Name;
    EXPECT_TRUE(P->usedFallback()) << Name;
    expectOracleParity(*P, 2);
  }
}

TEST(Plan, OracleTierServesEveryLayout) {
  // The last tier of the degradation chain is the dense oracle itself; it
  // must speak the halfcomplex and real layouts, not just interleaved.
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  for (const char *Name : {"rdft", "dct2"}) {
    runtime::PlanSpec Spec;
    Spec.Transform = Name;
    Spec.Size = 16;
    Spec.Want = runtime::Backend::Oracle;
    auto P = Planner.plan(Spec);
    ASSERT_TRUE(P) << Name << ": " << Diags.dump();
    EXPECT_EQ(P->backend(), runtime::Backend::Oracle) << Name;
    expectOracleParity(*P, 2);
  }
}

TEST(Plan, StridedBatchLayoutMatchesDenseAndSparesPadding) {
  // FFTW-advanced layout with an odd batch and a non-unit stride: each
  // gathered vector matches a dense execute, and doubles the layout never
  // addresses keep their original bytes.
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  for (const char *Name : {"fft", "rdft"}) {
    runtime::PlanSpec Spec;
    Spec.Transform = Name;
    Spec.Size = 8;
    Spec.Want = runtime::Backend::VM;
    auto P = Planner.plan(Spec);
    ASSERT_TRUE(P) << Name << ": " << Diags.dump();

    runtime::BatchLayout BL;
    BL.HowMany = 7;
    BL.StrideX = BL.StrideY = 3;
    const std::int64_t Len = P->vectorLen();
    const std::int64_t Span = (Len - 1) * 3 + 1;
    const std::int64_t Total = BL.HowMany * Span; // Dist 0 = span-packed.
    std::vector<double> X(static_cast<size_t>(Total));
    for (std::int64_t I = 0; I != Total; ++I)
      X[static_cast<size_t>(I)] = 0.01 * static_cast<double>(I % 97) - 0.3;
    std::vector<double> Y(static_cast<size_t>(Total), -9.0);
    ASSERT_EQ(P->executeBatch(Y.data(), X.data(), BL), runtime::ExecStatus::Ok);

    std::vector<double> DIn(static_cast<size_t>(Len)),
        DOut(static_cast<size_t>(Len));
    for (std::int64_t V = 0; V != BL.HowMany; ++V) {
      for (std::int64_t I = 0; I != Len; ++I)
        DIn[static_cast<size_t>(I)] = X[static_cast<size_t>(V * Span + I * 3)];
      P->execute(DOut.data(), DIn.data());
      for (std::int64_t I = 0; I != Len; ++I)
        EXPECT_EQ(Y[static_cast<size_t>(V * Span + I * 3)],
                  DOut[static_cast<size_t>(I)])
            << Name << " vector " << V << " element " << I;
      // The two pad doubles between consecutive addressed elements.
      for (std::int64_t I = 0; I + 1 != Len; ++I)
        for (std::int64_t Pad = 1; Pad != 3; ++Pad)
          EXPECT_EQ(Y[static_cast<size_t>(V * Span + I * 3 + Pad)], -9.0)
              << Name << " pad written at vector " << V;
    }
  }
}

TEST(Plan, StridedBatchDeadlineLeavesSkippedVectorsUntouched) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 8;
  Spec.Want = runtime::Backend::VM;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();

  runtime::BatchLayout BL;
  BL.HowMany = 5;
  BL.StrideX = BL.StrideY = 2;
  const std::int64_t Span = (P->vectorLen() - 1) * 2 + 1;
  std::vector<double> X(static_cast<size_t>(BL.HowMany * Span), 0.5);
  std::vector<double> Y(X.size(), -3.0);
  support::Deadline Dead = support::Deadline::afterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(P->executeBatch(Y.data(), X.data(), BL, Dead),
            runtime::ExecStatus::DeadlineExceeded);
  for (double V : Y)
    EXPECT_EQ(V, -3.0) << "a rejected strided batch must not touch Y";
}

TEST(Runtime, AlignedBufferStagingIsCacheLineAligned) {
  // Plan::runGroup asserts its staging pointers sit on
  // AlignedBuffer::Alignment; this pins the allocator contract it leans on.
  for (size_t N : {size_t(1), size_t(33), size_t(1024)}) {
    runtime::AlignedBuffer B(N);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(B.data()) %
                  runtime::AlignedBuffer::Alignment,
              0u)
        << "N=" << N;
    B.resize(N * 3 + 7);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(B.data()) %
                  runtime::AlignedBuffer::Alignment,
              0u)
        << "after resize, N=" << N;
  }
}

TEST(Plan, SpecKeysDistinguishTransformsAndShapes) {
  runtime::PlanSpec Fft;
  Fft.Size = 64;
  runtime::PlanSpec Rdft = Fft;
  Rdft.Transform = "rdft";
  // Distinct transforms never share a registry/wisdom slot, and the empty
  // datatype resolves to each transform's natural datatype.
  EXPECT_NE(Fft.key(), Rdft.key());
  EXPECT_EQ(Fft.key().rfind("fft 64 complex", 0), 0u) << Fft.key();
  EXPECT_EQ(Rdft.key().rfind("rdft 64 real", 0), 0u) << Rdft.key();

  runtime::PlanSpec Shaped;
  Shaped.Shape = {8, 8};
  Shaped.Size = 64; // The planner would derive this; keys must differ anyway.
  EXPECT_NE(Shaped.key().find(" S8x8"), std::string::npos) << Shaped.key();
  EXPECT_NE(Shaped.key(), Fft.key());
}

TEST(Planner, WisdomKeysDistinguishRdftFromFft) {
  // rdft searches the same complex-FFT space as fft but records wisdom
  // under its own transform token — a host whose fft wisdom says
  // "radix-8 everywhere" must not silently impose it on rdft and vice
  // versa (regression for the SearchOptions::Transform plumbing).
  std::string Path =
      "/tmp/spl-transforms-wisdom-" + std::to_string(getpid()) + ".tmp";
  ::unlink(Path.c_str());
  Diagnostics Diags;
  auto Opts = testOptions();
  Opts.UseWisdom = true;
  Opts.WisdomPath = Path;
  runtime::Planner Planner(Diags, Opts);
  for (const char *Name : {"fft", "rdft"}) {
    runtime::PlanSpec Spec;
    Spec.Transform = Name;
    Spec.Size = 32;
    Spec.Want = runtime::Backend::VM;
    ASSERT_TRUE(Planner.plan(Spec)) << Name << ": " << Diags.dump();
  }
  Planner.saveWisdom();

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::ostringstream SS;
  SS << In.rdbuf();
  const std::string Text = SS.str();
  // Keys carry the transform token plus search-knob suffix, e.g.
  // "rdft-L16-k3 32 complex ..." — rdft entries never collide with fft's.
  EXPECT_NE(Text.find("rdft-"), std::string::npos) << Text;
  bool SawPlainFft = false;
  std::istringstream Lines(Text);
  for (std::string Line; std::getline(Lines, Line);)
    if (Line.find(" fft-") != std::string::npos &&
        Line.find("rdft") == std::string::npos)
      SawPlainFft = true;
  EXPECT_TRUE(SawPlainFft) << Text;
  ::unlink(Path.c_str());
}

TEST(PlanRegistry, PressuredPlansAreNotMemoized) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, testOptions());
  runtime::PlanRegistry Registry(Planner);
  runtime::PlanSpec Spec;
  Spec.Size = 16;
  Spec.Want = runtime::Backend::VM;

  support::Deadline Dead = support::Deadline::afterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  runtime::PlanError Err = runtime::PlanError::None;
  auto P1 = Registry.acquire(Spec, Dead, &Err);
  ASSERT_TRUE(P1) << Diags.dump();
  EXPECT_TRUE(P1->deadlinePressured());

  // The next unpressured caller must get a fresh full-quality plan, not
  // the degraded one — and THAT plan is the one the registry keeps.
  auto P2 = Registry.acquire(Spec);
  ASSERT_TRUE(P2) << Diags.dump();
  EXPECT_FALSE(P2->deadlinePressured());
  EXPECT_NE(P1.get(), P2.get());
  EXPECT_EQ(P2.get(), Registry.acquire(Spec).get());
}

} // namespace
