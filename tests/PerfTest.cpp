//===- tests/PerfTest.cpp - Performance-evaluation component tests -------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Transforms.h"
#include "perf/Accuracy.h"
#include "perf/MemoryModel.h"
#include "perf/Metrics.h"
#include "support/HostInfo.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace spl;
using namespace spl::test;

namespace {

TEST(Metrics, PseudoMFlops) {
  // 1024-point FFT in 10us: 5*1024*10 flops / 10us = 512 MFlops... compute.
  double Want = 5.0 * 1024 * 10 / 10.0; // = 5120 "ops per us" = MFlops.
  EXPECT_NEAR(perf::pseudoMFlops(1024, 10e-6), Want, 1e-9);
  EXPECT_NEAR(perf::nominalFlops(8), 5.0 * 8 * 3, 1e-12);
}

TEST(Accuracy, ReferenceDFTMatchesOracle) {
  for (std::int64_t N : {4, 8, 16, 12, 7}) {
    auto X = randomVector(N);
    std::vector<perf::CplxL> XL(N);
    for (std::int64_t I = 0; I != N; ++I)
      XL[I] = perf::CplxL(X[I].real(), X[I].imag());
    auto RefL = perf::referenceDFT(XL);
    auto Want = dftMatrix(N).apply(X);
    double Max = 0;
    for (std::int64_t I = 0; I != N; ++I)
      Max = std::max(Max, std::abs(Cplx(static_cast<double>(RefL[I].real()),
                                        static_cast<double>(RefL[I].imag())) -
                                   Want[I]));
    EXPECT_LT(Max, 1e-10) << "N=" << N;
  }
}

TEST(Accuracy, ExactTransformScoresNearMachineEpsilon) {
  double Err = perf::relativeError(16, [](const std::vector<Cplx> &In,
                                          std::vector<Cplx> &Out) {
    Out = dftMatrix(16).apply(In);
  });
  EXPECT_LT(Err, 1e-14);
}

TEST(Accuracy, BrokenTransformScoresBadly) {
  double Err = perf::relativeError(16, [](const std::vector<Cplx> &In,
                                          std::vector<Cplx> &Out) {
    Out.assign(In.size(), Cplx(0, 0));
  });
  EXPECT_NEAR(Err, 1.0, 1e-12); // ||0 - y|| / ||y|| = 1.
}

TEST(MemoryModel, CountsTempsTablesAndCode) {
  using namespace icode;
  Program P;
  P.InSize = 4;
  P.OutSize = 4;
  P.TempVecSizes = {8};
  P.Tables.push_back(std::vector<Cplx>(16));
  P.NumFltTemps = 2;
  P.Body.push_back(Instr::copy(Operand::fltTemp(0),
                               Operand::vecElem(VecIn, Affine(0))));
  auto U = perf::accountProgram(P, /*BytesPerInstr=*/10);
  EXPECT_EQ(U.TempBytes, 8u * 16);  // Complex elements.
  EXPECT_EQ(U.TableBytes, 16u * 16);
  EXPECT_EQ(U.CodeBytes, 10u);
  EXPECT_EQ(U.total(), U.TempBytes + U.TableBytes + U.CodeBytes);
}

TEST(MemoryModel, RealProgramsUseEightBytesPerElement) {
  icode::Program P;
  P.Type = icode::DataType::Real;
  P.TempVecSizes = {4};
  auto U = perf::accountProgram(P);
  EXPECT_EQ(U.TempBytes, 4u * 8);
}

TEST(Timer, BestOfIsPositiveAndStable) {
  volatile double Sink = 0;
  double T = timeBestOf(
      [&] {
        double S = 0;
        for (int I = 0; I < 1000; ++I)
          S += I * 0.5;
        Sink = S;
      },
      2, 1e-4);
  EXPECT_GT(T, 0);
  EXPECT_LT(T, 0.1);
}

TEST(HostInfo, DetectsSomething) {
  auto Info = HostInfo::detect();
  // On Linux we should at least know the OS and memory.
  EXPECT_FALSE(Info.table().empty());
#if defined(__linux__)
  EXPECT_GT(Info.MemoryBytes, 0u);
  EXPECT_FALSE(Info.OSName.empty());
#endif
}

TEST(HostInfo, FormatBytesMatchesTableOneStyle) {
  EXPECT_EQ(formatBytes(16 * 1024), "16KB");
  EXPECT_EQ(formatBytes(512 * 1024), "512KB");
  EXPECT_EQ(formatBytes(2ull << 20), "2MB");
  EXPECT_EQ(formatBytes(384ull << 20), "384MB");
  EXPECT_EQ(formatBytes(1ull << 30), "1GB");
}

} // namespace
