//===- tests/KernelCacheTest.cpp - Persistent kernel cache tests --------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the persistent compiled-kernel cache (docs/KERNEL_CACHE.md):
/// warm hits skip the compiler entirely, corruption (flipped index bytes,
/// flipped or truncated artifacts) degrades to recompilation and the index
/// is rewritten clean, eight concurrent planners compile a cold kernel
/// exactly once, eviction respects the byte budget, a disabled cache
/// leaves no trace on disk, and failed compiles leak no temp artifacts
/// (including under SPL_FAULT=native-compile).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "perf/KernelCache.h"
#include "perf/NativeCompile.h"
#include "telemetry/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace spl;
using namespace spl::perf;

namespace fs = std::filesystem;

namespace {

/// A distinct trivial kernel per tag, so every test owns its cache keys.
std::string kernelSource(const std::string &Tag) {
  return "void spl_kc_" + Tag +
         "(double *Y, const double *X) { Y[0] = X[0] + 1.0; }\n";
}

std::string kernelName(const std::string &Tag) { return "spl_kc_" + Tag; }

/// Runs the compiled kernel once and checks it computes X[0] + 1.
void expectWorks(NativeModule &M) {
  double X[1] = {41.0};
  double Y[1] = {0.0};
  M.fn()(Y, X);
  EXPECT_DOUBLE_EQ(Y[0], 42.0);
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Counter deltas around one test body.
struct Deltas {
  std::uint64_t Compiles = telemetry::counter("native.compiles").value();
  std::uint64_t Hits = telemetry::counter("kernelcache.hits").value();
  std::uint64_t Inserts = telemetry::counter("kernelcache.inserts").value();
  std::uint64_t Evictions =
      telemetry::counter("kernelcache.evictions").value();
  std::uint64_t Corrupt =
      telemetry::counter("kernelcache.corrupt_entries").value();

  std::uint64_t compiles() const {
    return telemetry::counter("native.compiles").value() - Compiles;
  }
  std::uint64_t hits() const {
    return telemetry::counter("kernelcache.hits").value() - Hits;
  }
  std::uint64_t inserts() const {
    return telemetry::counter("kernelcache.inserts").value() - Inserts;
  }
  std::uint64_t evictions() const {
    return telemetry::counter("kernelcache.evictions").value() - Evictions;
  }
  std::uint64_t corrupt() const {
    return telemetry::counter("kernelcache.corrupt_entries").value() -
           Corrupt;
  }
};

/// Each test gets a private cache directory and enabled metrics; the
/// process-wide cache configuration is restored afterwards so suites can
/// interleave.
class KernelCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    Saved = KernelCache::config();
    static std::atomic<unsigned> Seq{0};
    Dir = ::testing::TempDir() + "spl-kctest-" +
          std::to_string(static_cast<unsigned>(::getpid())) + "-" +
          std::to_string(Seq++);
    std::error_code EC;
    fs::remove_all(Dir, EC);
    telemetry::setMetricsEnabled(true);
    KernelCache::Config C;
    C.Enabled = true;
    C.Dir = Dir;
    KernelCache::configure(C);
  }

  void TearDown() override {
    KernelCache::configure(Saved);
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }

  /// Shrinks the byte budget while keeping the test directory.
  void setBudget(std::uint64_t MaxBytes) {
    KernelCache::Config C;
    C.Enabled = true;
    C.Dir = Dir;
    C.MaxBytes = MaxBytes;
    KernelCache::configure(C);
  }

  std::string Dir;
  KernelCache::Config Saved;
};

TEST_F(KernelCacheTest, WarmHitSkipsCompiler) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  Deltas D;
  auto M1 = NativeModule::compile(kernelSource("warm"), kernelName("warm"));
  ASSERT_TRUE(M1);
  expectWorks(*M1);
  EXPECT_EQ(D.compiles(), 1u);
  EXPECT_EQ(D.inserts(), 1u);
  EXPECT_EQ(D.hits(), 0u);

  // Second compile of identical source: mapped from the cache, zero forks.
  auto M2 = NativeModule::compile(kernelSource("warm"), kernelName("warm"));
  ASSERT_TRUE(M2);
  expectWorks(*M2);
  EXPECT_EQ(D.compiles(), 1u);
  EXPECT_EQ(D.hits(), 1u);
}

TEST_F(KernelCacheTest, DisabledCacheLeavesNoTrace) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  KernelCache::setEnabled(false);
  Deltas D;
  auto M = NativeModule::compile(kernelSource("off"), kernelName("off"));
  ASSERT_TRUE(M);
  expectWorks(*M);
  EXPECT_EQ(D.compiles(), 1u);
  EXPECT_EQ(D.hits(), 0u);
  EXPECT_EQ(D.inserts(), 0u);
  EXPECT_FALSE(fs::exists(Dir)) << "a disabled cache must not touch disk";
}

TEST_F(KernelCacheTest, CorruptIndexLineSkippedAndRewrittenClean) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  auto M1 = NativeModule::compile(kernelSource("cidx"), kernelName("cidx"));
  ASSERT_TRUE(M1);

  // Flip a payload byte of the (only) record and append plain garbage:
  // both must fail the per-line checksum and be dropped.
  std::string Index = Dir + "/index";
  std::string Content = slurp(Index);
  ASSERT_NE(Content.find("kernel "), std::string::npos);
  Content[Content.size() - 2] ^= 0x01;
  Content += "kernel deadbeefdeadbeef not-a-real-entry 123\n";
  Content += "total garbage line\n";
  {
    std::ofstream Out(Index, std::ios::trunc | std::ios::binary);
    Out << Content;
  }

  // The tampered record is gone, so this is a miss + recompile; the insert
  // counts the corrupt lines and rewrites the index clean.
  Deltas D;
  auto M2 = NativeModule::compile(kernelSource("cidx"), kernelName("cidx"));
  ASSERT_TRUE(M2);
  expectWorks(*M2);
  EXPECT_EQ(D.compiles(), 1u);
  EXPECT_GE(D.corrupt(), 2u);

  std::string Clean = slurp(Index);
  EXPECT_EQ(Clean.find("garbage"), std::string::npos);
  EXPECT_EQ(Clean.find("deadbeef"), std::string::npos);

  // And the rewritten entry round-trips: the next compile is a pure hit.
  Deltas D2;
  auto M3 = NativeModule::compile(kernelSource("cidx"), kernelName("cidx"));
  ASSERT_TRUE(M3);
  EXPECT_EQ(D2.compiles(), 0u);
  EXPECT_EQ(D2.hits(), 1u);
}

TEST_F(KernelCacheTest, TruncatedArtifactRecompiled) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  auto M1 = NativeModule::compile(kernelSource("trunc"), kernelName("trunc"));
  ASSERT_TRUE(M1);

  std::string So;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".so")
      So = E.path().string();
  ASSERT_FALSE(So.empty());
  std::string Bytes = slurp(So);
  {
    std::ofstream Out(So, std::ios::trunc | std::ios::binary);
    Out << Bytes.substr(0, Bytes.size() / 2);
  }

  Deltas D;
  auto M2 = NativeModule::compile(kernelSource("trunc"), kernelName("trunc"));
  ASSERT_TRUE(M2);
  expectWorks(*M2);
  EXPECT_EQ(D.compiles(), 1u) << "a truncated artifact must be recompiled";
  EXPECT_GE(D.corrupt(), 1u);
  EXPECT_EQ(D.hits(), 0u);
}

TEST_F(KernelCacheTest, FlippedArtifactByteRecompiled) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  auto M1 = NativeModule::compile(kernelSource("flip"), kernelName("flip"));
  ASSERT_TRUE(M1);

  std::string So;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".so")
      So = E.path().string();
  ASSERT_FALSE(So.empty());
  // Same size, different content: only the checksum can catch this.
  std::string Bytes = slurp(So);
  Bytes[Bytes.size() / 2] ^= 0xFF;
  {
    std::ofstream Out(So, std::ios::trunc | std::ios::binary);
    Out << Bytes;
  }

  Deltas D;
  auto M2 = NativeModule::compile(kernelSource("flip"), kernelName("flip"));
  ASSERT_TRUE(M2);
  expectWorks(*M2);
  EXPECT_EQ(D.compiles(), 1u);
  EXPECT_GE(D.corrupt(), 1u);
}

TEST_F(KernelCacheTest, ConcurrentPopulateCompilesOnce) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  Deltas D;
  constexpr int N = 8;
  std::vector<std::unique_ptr<NativeModule>> Modules(N);
  std::vector<std::thread> Threads;
  for (int I = 0; I != N; ++I)
    Threads.emplace_back([&, I] {
      Modules[I] =
          NativeModule::compile(kernelSource("race"), kernelName("race"));
    });
  for (auto &T : Threads)
    T.join();

  for (auto &M : Modules) {
    ASSERT_TRUE(M);
    expectWorks(*M);
  }
  // The population lock serializes the cold key: one thread compiles, the
  // other seven map the winner's artifact.
  EXPECT_EQ(D.compiles(), 1u);
  EXPECT_EQ(D.hits(), static_cast<std::uint64_t>(N - 1));
  EXPECT_EQ(D.inserts(), 1u);
}

TEST_F(KernelCacheTest, EvictionRespectsByteBudget) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  auto M1 = NativeModule::compile(kernelSource("evict_a"),
                                  kernelName("evict_a"));
  ASSERT_TRUE(M1);
  std::uint64_t SoBytes = 0;
  std::string FirstSo;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".so") {
      FirstSo = E.path().string();
      SoBytes = fs::file_size(E.path());
    }
  ASSERT_GT(SoBytes, 0u);

  // Budget for one-and-a-half artifacts: inserting a second (similar-sized)
  // kernel must push the first one out.
  setBudget(SoBytes + SoBytes / 2);
  Deltas D;
  auto M2 = NativeModule::compile(kernelSource("evict_b"),
                                  kernelName("evict_b"));
  ASSERT_TRUE(M2);
  EXPECT_EQ(D.evictions(), 1u);
  EXPECT_FALSE(fs::exists(FirstSo)) << "the LRU artifact must be evicted";

  std::uint64_t Total = 0;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".so")
      Total += fs::file_size(E.path());
  EXPECT_LE(Total, SoBytes + SoBytes / 2);

  // The survivor still hits.
  Deltas D2;
  auto M3 = NativeModule::compile(kernelSource("evict_b"),
                                  kernelName("evict_b"));
  ASSERT_TRUE(M3);
  EXPECT_EQ(D2.compiles(), 0u);
  EXPECT_EQ(D2.hits(), 1u);
}

TEST_F(KernelCacheTest, VariantTagsSeparateScalarAndVectorKernels) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  // Identical source, name and flags under different variant tags must
  // derive different content-addressed keys — a scalar kernel must never
  // shadow a vector one (or vice versa) in a shared cache directory.
  const std::string Src = kernelSource("variant");
  const std::string Fn = kernelName("variant");
  std::string KScalar = KernelCache::key(Src, Fn, "-O2", "");
  std::string KVector = KernelCache::key(Src, Fn, "-O2", "vector:avx2");
  EXPECT_NE(KScalar, KVector);
  EXPECT_NE(KVector, KernelCache::key(Src, Fn, "-O2", "vector:neon"));

  // Both variants populate and warm-map independently end to end.
  Deltas D;
  auto S1 = NativeModule::compile(Src, Fn, nullptr, "-O2", nullptr, "");
  auto V1 = NativeModule::compile(Src, Fn, nullptr, "-O2", nullptr,
                                  "vector:avx2");
  ASSERT_TRUE(S1);
  ASSERT_TRUE(V1);
  expectWorks(*S1);
  expectWorks(*V1);
  EXPECT_EQ(D.compiles(), 2u) << "distinct tags must not share an artifact";
  EXPECT_EQ(D.inserts(), 2u);

  Deltas D2;
  auto S2 = NativeModule::compile(Src, Fn, nullptr, "-O2", nullptr, "");
  auto V2 = NativeModule::compile(Src, Fn, nullptr, "-O2", nullptr,
                                  "vector:avx2");
  ASSERT_TRUE(S2);
  ASSERT_TRUE(V2);
  expectWorks(*S2);
  expectWorks(*V2);
  EXPECT_EQ(D2.compiles(), 0u);
  EXPECT_EQ(D2.hits(), 2u);
}

/// Failed compiles must leave the temp directory spotless — both an honest
/// compiler diagnostic and an injected compiler fault (the cache adds new
/// paths around the compile, so this is the regression net for both).
class TempHygieneTest : public KernelCacheTest {
protected:
  void SetUp() override {
    KernelCacheTest::SetUp();
    TmpDir = ::testing::TempDir() + "spl-kctmp-" +
             std::to_string(static_cast<unsigned>(::getpid()));
    std::error_code EC;
    fs::remove_all(TmpDir, EC);
    fs::create_directories(TmpDir, EC);
    ::setenv("TMPDIR", TmpDir.c_str(), 1);
  }

  void TearDown() override {
    ::unsetenv("TMPDIR");
    ::unsetenv("SPL_FAULT");
    fault::reset();
    std::error_code EC;
    fs::remove_all(TmpDir, EC);
    KernelCacheTest::TearDown();
  }

  std::size_t tmpEntries() const {
    std::size_t N = 0;
    std::error_code EC;
    for (const auto &E : fs::directory_iterator(TmpDir, EC)) {
      (void)E;
      ++N;
    }
    return N;
  }

  std::string TmpDir;
};

TEST_F(TempHygieneTest, CompileFailureLeavesNoTempArtifacts) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  std::string Error;
  auto M = NativeModule::compile("this is not C at all {",
                                 kernelName("bad"), &Error);
  EXPECT_FALSE(M);
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(tmpEntries(), 0u) << "compile failure leaked temp files";

  // The failed compile must not have populated the cache either.
  EXPECT_FALSE(fs::exists(Dir + "/index") &&
               slurp(Dir + "/index").find("kernel ") != std::string::npos);
}

TEST_F(TempHygieneTest, InjectedCompilerFaultLeavesNoTempArtifacts) {
  SPL_SKIP_IF_FAULTS_ARMED();
  if (!NativeModule::available())
    GTEST_SKIP() << "no C compiler";

  ::setenv("SPL_FAULT", "native-compile", 1);
  fault::reset();
  std::string Error;
  auto M = NativeModule::compile(kernelSource("fault"), kernelName("fault"),
                                 &Error);
  EXPECT_FALSE(M);
  EXPECT_NE(Error.find("injected fault"), std::string::npos);
  EXPECT_EQ(tmpEntries(), 0u) << "fault-injected compile leaked temp files";
  ::unsetenv("SPL_FAULT");
  fault::reset();

  // With the fault disarmed the same kernel compiles and caches normally.
  Deltas D;
  auto M2 = NativeModule::compile(kernelSource("fault"), kernelName("fault"));
  ASSERT_TRUE(M2);
  expectWorks(*M2);
  EXPECT_EQ(D.inserts(), 1u);
  // The live module still owns its temp .so; destroying it must reclaim
  // the last temp artifact.
  M2.reset();
  EXPECT_EQ(tmpEntries(), 0u) << "successful compile leaked temp files";
}

} // namespace
