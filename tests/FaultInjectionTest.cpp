//===- tests/FaultInjectionTest.cpp - SPL_FAULT end-to-end tests ---------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives every SPL_FAULT site (support/FaultInjection.h) through the real
/// pipeline: compiler invocations that fail, crash or hang; symbol lookups
/// that vanish; wisdom I/O that breaks; evaluator measurements and trial
/// executions that never return. Each test asserts the corresponding
/// degradation behaves — typed errors, bounded wall-clock, and a plan that
/// still computes the right numbers on whatever tier the chain lands on.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "driver/Compiler.h"
#include "frontend/Parser.h"
#include "ir/Transforms.h"
#include "perf/KernelRunner.h"
#include "perf/NativeCompile.h"
#include "runtime/Planner.h"
#include "search/DPSearch.h"
#include "search/Evaluator.h"
#include "search/PlanCache.h"
#include "support/Diagnostics.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

using namespace spl;
using namespace spl::test;

namespace {

/// Saves and restores the SPL_FAULT environment around every test (and
/// re-parses the budget table), so this suite composes with an externally
/// armed fault matrix instead of leaking arms into later suites.
class FaultTest : public ::testing::Test {
protected:
  void SetUp() override {
    const char *Old = std::getenv("SPL_FAULT");
    HadOld = Old != nullptr;
    if (HadOld)
      OldValue = Old;
    arm(nullptr);
  }

  void TearDown() override {
    if (HadOld)
      setenv("SPL_FAULT", OldValue.c_str(), 1);
    else
      unsetenv("SPL_FAULT");
    fault::reset();
  }

  /// Re-arms SPL_FAULT with \p Spec (null or empty disarms).
  void arm(const char *Spec) {
    if (Spec && *Spec)
      setenv("SPL_FAULT", Spec, 1);
    else
      unsetenv("SPL_FAULT");
    fault::reset();
  }

  /// (F 4) compiled down to a real-typed, kernel-ready i-code program.
  icode::Program smallProgram() {
    Diagnostics Diags;
    driver::Compiler C(Diags);
    driver::CompilerOptions Opts;
    Opts.UnrollThreshold = 16;
    Opts.EmitCode = false;
    DirectiveState Dirs;
    Dirs.SubName = "f4k";
    auto Unit =
        C.compileFormula(parseFormulaString("(F 4)", Diags), Dirs, Opts);
    EXPECT_TRUE(Unit) << Diags.dump();
    return Unit->Final;
  }

  runtime::PlannerOptions chainOptions() {
    runtime::PlannerOptions O;
    O.UseWisdom = false; // Each test plans from scratch, hermetically.
    return O;
  }

  bool HadOld = false;
  std::string OldValue;
};

TEST_F(FaultTest, UnarmedFastPathNeverFires) {
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::at("native-compile"));
  EXPECT_FALSE(fault::at("no-such-site"));
}

TEST_F(FaultTest, BudgetsLimitFirings) {
  arm("native-compile:2,dlsym");
  EXPECT_TRUE(fault::armed());
  EXPECT_TRUE(fault::at("native-compile"));
  EXPECT_TRUE(fault::at("native-compile"));
  EXPECT_FALSE(fault::at("native-compile")) << "budget of 2 must be spent";
  EXPECT_TRUE(fault::at("dlsym"));
  EXPECT_TRUE(fault::at("dlsym")) << "no budget means unlimited";
  EXPECT_FALSE(fault::at("vm-exec")) << "unarmed site must stay quiet";
  EXPECT_NE(fault::describe("dlsym").find("dlsym"), std::string::npos);
}

TEST_F(FaultTest, CompileFaultYieldsTypedError) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  auto P = smallProgram();
  arm("native-compile");
  perf::KernelError Err;
  auto K = perf::CompiledKernel::create(P, &Err);
  EXPECT_FALSE(K);
  EXPECT_EQ(Err.Kind, perf::KernelErrorKind::CompileFailed) << Err.str();
  EXPECT_NE(Err.Message.find("injected fault"), std::string::npos)
      << Err.str();
}

TEST_F(FaultTest, CompilerCrashIsRetriedOnce) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  auto P = smallProgram();
  // Exactly one crashed invocation: the bounded retry must absorb it.
  arm("native-compile-crash:1");
  perf::KernelError Err;
  auto K = perf::CompiledKernel::create(P, &Err);
  EXPECT_TRUE(K) << Err.str();

  // Two crashes exhaust the single retry and surface as a typed failure.
  arm("native-compile-crash:2");
  K = perf::CompiledKernel::create(P, &Err);
  EXPECT_FALSE(K);
  EXPECT_EQ(Err.Kind, perf::KernelErrorKind::CompileFailed) << Err.str();
  EXPECT_NE(Err.Message.find("signal"), std::string::npos) << Err.str();
}

TEST_F(FaultTest, CompileHangIsKilledAtTheDeadline) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  auto P = smallProgram();
  setenv("SPL_CC_TIMEOUT_MS", "300", 1);
  arm("native-compile-hang");
  Timer T;
  perf::KernelError Err;
  auto K = perf::CompiledKernel::create(P, &Err);
  unsetenv("SPL_CC_TIMEOUT_MS");
  EXPECT_FALSE(K);
  EXPECT_EQ(Err.Kind, perf::KernelErrorKind::CompileTimeout) << Err.str();
  // Two bounded attempts at ~0.3 s each, nothing like the 600 s sleep the
  // injected child was put to.
  EXPECT_LT(T.seconds(), 30.0);
}

TEST_F(FaultTest, MissingSymbolIsReported) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  auto P = smallProgram();
  arm("dlsym:1");
  perf::KernelError Err;
  auto K = perf::CompiledKernel::create(P, &Err);
  EXPECT_FALSE(K);
  EXPECT_NE(Err.Message.find("not found"), std::string::npos) << Err.str();
}

TEST_F(FaultTest, WisdomIOFaultsAreSoftFailures) {
  Diagnostics Diags;
  search::PlanCache Cache(Diags);
  search::PlanKey K;
  K.Transform = "fft";
  K.Size = 8;
  K.Datatype = "complex";
  K.UnrollThreshold = 16;
  K.Evaluator = "opcount";
  K.Host = search::PlanCache::hostFingerprint();
  Cache.insert(K, {search::PlanEntry{"(F 8)", 1.0}});

  std::string Path =
      "/tmp/spl-fault-wisdom-" + std::to_string(getpid()) + ".txt";
  arm("wisdom-save");
  EXPECT_FALSE(Cache.save(Path));
  arm("wisdom-load");
  EXPECT_FALSE(Cache.load(Path));
  arm(nullptr);
  EXPECT_TRUE(Cache.save(Path));
  EXPECT_TRUE(Cache.load(Path));
  std::remove(Path.c_str());
  // Soft failures: warnings only, never errors.
  EXPECT_EQ(Diags.errorCount(), 0u) << Diags.dump();
}

TEST_F(FaultTest, EvaluatorHangScoresInfiniteCost) {
  Diagnostics Diags;
  driver::CompilerOptions CO;
  CO.EmitCode = false;
  search::VMTimeEvaluator Eval(Diags, CO, /*Repeats=*/1);
  Eval.setTimingBudget(/*TimeoutSeconds=*/0.2, /*Retries=*/1);
  arm("eval-hang");
  auto F = parseFormulaString("(F 4)", Diags);
  Timer T;
  auto C = Eval.cost(F);
  ASSERT_TRUE(C) << "a timed-out candidate is scored, not dropped";
  EXPECT_TRUE(std::isinf(*C));
  EXPECT_LT(T.seconds(), 10.0) << "two 0.2 s attempts, not a real hang";
  EXPECT_EQ(Diags.errorCount(), 0u) << Diags.dump();
}

TEST_F(FaultTest, SearchSurvivesAHangingCandidate) {
  Diagnostics Diags;
  driver::CompilerOptions CO;
  CO.EmitCode = false;
  search::VMTimeEvaluator Eval(Diags, CO, /*Repeats=*/1);
  Eval.setTimingBudget(/*TimeoutSeconds=*/0.2, /*Retries=*/0);
  arm("eval-hang:1"); // Exactly one measurement hangs mid-search.
  search::SearchOptions SO;
  SO.MaxLeaf = 4;
  search::DPSearch Search(Eval, Diags, SO, nullptr);
  auto Best = Search.best(8);
  ASSERT_TRUE(Best) << Diags.dump();
  EXPECT_TRUE(std::isfinite(Best->Cost))
      << "the infinite-cost candidate must lose, not win";
}

TEST_F(FaultTest, TrialCrashDemotesToVm) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  arm("trial-crash");
  Diagnostics Diags;
  runtime::Planner Planner(Diags, chainOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 8;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();
  EXPECT_EQ(P->backend(), runtime::Backend::VM);
  EXPECT_TRUE(P->usedFallback());
  EXPECT_NE(P->fallbackReason().find("trial-failed"), std::string::npos)
      << P->fallbackReason();
  EXPECT_NE(P->fallbackReason().find("signal"), std::string::npos)
      << P->fallbackReason();
  EXPECT_EQ(Diags.errorCount(), 0u) << Diags.dump();
}

TEST_F(FaultTest, TrialHangIsBoundedByItsDeadline) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  setenv("SPL_TRIAL_TIMEOUT_MS", "300", 1);
  arm("trial-hang");
  Diagnostics Diags;
  runtime::Planner Planner(Diags, chainOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 8;
  Timer T;
  auto P = Planner.plan(Spec);
  unsetenv("SPL_TRIAL_TIMEOUT_MS");
  ASSERT_TRUE(P) << Diags.dump();
  EXPECT_EQ(P->backend(), runtime::Backend::VM);
  EXPECT_NE(P->fallbackReason().find("timed out"), std::string::npos)
      << P->fallbackReason();
  EXPECT_LT(T.seconds(), 30.0) << "the hung trial must be killed, not joined";
}

TEST_F(FaultTest, OracleBackendCanBeRequestedDirectly) {
  Diagnostics Diags;
  runtime::Planner Planner(Diags, chainOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 8;
  Spec.Want = runtime::Backend::Oracle;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();
  EXPECT_EQ(P->backend(), runtime::Backend::Oracle);
  EXPECT_FALSE(P->usedFallback()) << "a direct request is not a demotion";

  auto X = randomVector(8);
  std::vector<double> XR(16), YR(16);
  for (int I = 0; I != 8; ++I) {
    XR[2 * I] = X[I].real();
    XR[2 * I + 1] = X[I].imag();
  }
  P->execute(YR.data(), XR.data());
  auto Want = dftMatrix(8).apply(X);
  double Max = 0;
  for (int I = 0; I != 8; ++I) {
    Max = std::max(Max, std::fabs(YR[2 * I] - Want[I].real()));
    Max = std::max(Max, std::fabs(YR[2 * I + 1] - Want[I].imag()));
  }
  EXPECT_LT(Max, 1e-10);
}

TEST_F(FaultTest, FullChainLandsOnTheOracleAndIsCorrect) {
  // The acceptance scenario: native compilation fails AND the VM tier is
  // faulted, so the chain must walk native -> vm -> oracle and the
  // resulting plan must still match the true DFT to 1e-10.
  arm("native-compile,vm-exec");
  Diagnostics Diags;
  runtime::Planner Planner(Diags, chainOptions());
  runtime::PlanSpec Spec;
  Spec.Size = 16;
  auto P = Planner.plan(Spec);
  ASSERT_TRUE(P) << Diags.dump();
  EXPECT_EQ(P->backend(), runtime::Backend::Oracle);
  EXPECT_TRUE(P->usedFallback());
  EXPECT_NE(P->fallbackReason().find("vm"), std::string::npos)
      << P->fallbackReason();
  EXPECT_EQ(Diags.errorCount(), 0u) << Diags.dump();

  auto X = randomVector(16);
  std::vector<double> XR(32), YR(32);
  for (int I = 0; I != 16; ++I) {
    XR[2 * I] = X[I].real();
    XR[2 * I + 1] = X[I].imag();
  }
  P->execute(YR.data(), XR.data());
  auto Want = dftMatrix(16).apply(X);
  double Max = 0;
  for (int I = 0; I != 16; ++I) {
    Max = std::max(Max, std::fabs(YR[2 * I] - Want[I].real()));
    Max = std::max(Max, std::fabs(YR[2 * I + 1] - Want[I].imag()));
  }
  EXPECT_LT(Max, 1e-10);

  // Batched dispatch works on the oracle tier too, bit-identically across
  // thread counts.
  std::vector<double> XB(4 * 32), Y1(4 * 32), Y4(4 * 32);
  for (int I = 0; I != 4 * 32; ++I)
    XB[static_cast<size_t>(I)] = XR[static_cast<size_t>(I) % 32];
  P->executeBatch(Y1.data(), XB.data(), 4, 1);
  P->executeBatch(Y4.data(), XB.data(), 4, 4);
  EXPECT_EQ(Y1, Y4);
}

} // namespace
