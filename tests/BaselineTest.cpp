//===- tests/BaselineTest.cpp - Baseline FFT library tests ---------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Correctness of the FFTW-substitute baseline: every codelet, every
/// strategy at every size, and the planner in both modes, all checked
/// against the dense DFT oracle.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "baseline/Codelets.h"
#include "baseline/Kernels.h"
#include "baseline/Planner.h"
#include "ir/Transforms.h"

#include <gtest/gtest.h>

using namespace spl;
using namespace spl::test;

namespace {

std::vector<Cplx> oracleDFT(const std::vector<Cplx> &X) {
  return dftMatrix(static_cast<std::int64_t>(X.size())).apply(X);
}

TEST(Codelets, AllSizesUnitStride) {
  for (std::int64_t N : {1, 2, 4, 8, 16, 32}) {
    ASSERT_TRUE(baseline::hasCodelet(N));
    std::vector<Cplx> X = randomVector(N), Y(N);
    baseline::codelet(N, X.data(), 1, Y.data());
    EXPECT_LT(maxAbsDiff(Y, oracleDFT(X)), 1e-11) << "N=" << N;
  }
}

TEST(Codelets, StridedInput) {
  for (std::int64_t N : {2, 4, 8, 16, 32}) {
    for (std::int64_t S : {2, 3}) {
      std::vector<Cplx> Buf = randomVector(N * S);
      std::vector<Cplx> X(N);
      for (std::int64_t I = 0; I != N; ++I)
        X[I] = Buf[I * S];
      std::vector<Cplx> Y(N);
      baseline::codelet(N, Buf.data(), S, Y.data());
      EXPECT_LT(maxAbsDiff(Y, oracleDFT(X)), 1e-11) << "N=" << N;
    }
  }
}

class StrategyTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(StrategyTest, MatchesOracle) {
  auto [N, Idx] = GetParam();
  auto Strategies = baseline::allStrategies(N);
  if (Idx >= static_cast<int>(Strategies.size()))
    GTEST_SKIP() << "strategy index not applicable at this size";
  auto &T = Strategies[Idx];
  std::vector<Cplx> X = randomVector(N), Y(N);
  T->run(X.data(), Y.data());
  EXPECT_LT(maxAbsDiff(Y, oracleDFT(X)), 1e-8 * std::sqrt(double(N)))
      << T->name() << " N=" << N;
  EXPECT_GT(T->memoryBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllSizes, StrategyTest,
    ::testing::Combine(::testing::Values<std::int64_t>(2, 4, 8, 16, 32, 64,
                                                       128, 256, 1024),
                       ::testing::Range(0, 7)),
    [](const auto &Info) {
      return "N" + std::to_string(std::get<0>(Info.param)) + "_S" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(Planner, MeasurePicksAWorkingPlan) {
  auto Result = baseline::plan(256, baseline::PlanMode::Measure);
  ASSERT_TRUE(Result.Best);
  EXPECT_GE(Result.Candidates.size(), 4u);
  EXPECT_GT(Result.PlannerPeakBytes, Result.Best->memoryBytes());

  std::vector<Cplx> X = randomVector(256), Y(256);
  Result.Best->run(X.data(), Y.data());
  EXPECT_LT(maxAbsDiff(Y, oracleDFT(X)), 1e-9);
}

TEST(Planner, EstimateUsesNoPlanningMemory) {
  auto Result = baseline::plan(256, baseline::PlanMode::Estimate);
  ASSERT_TRUE(Result.Best);
  EXPECT_EQ(Result.PlannerPeakBytes, 0u);
  std::vector<Cplx> X = randomVector(256), Y(256);
  Result.Best->run(X.data(), Y.data());
  EXPECT_LT(maxAbsDiff(Y, oracleDFT(X)), 1e-9);
}

TEST(Planner, MeasuredPlanIsNoSlowerThanEstimate) {
  // By construction the measured plan minimizes measured time; re-timing
  // both should rank them consistently (allow generous noise margin).
  auto M = baseline::plan(4096, baseline::PlanMode::Measure);
  ASSERT_TRUE(M.Best);
  double BestMeasured = 1e300;
  for (const auto &C : M.Candidates)
    BestMeasured = std::min(BestMeasured, C.Seconds);
  // The winner's recorded time is the minimum.
  for (const auto &C : M.Candidates) {
    if (C.Name == M.Best->name()) {
      EXPECT_LE(C.Seconds, BestMeasured * 1.0001);
    }
  }
}

TEST(Planner, OddSizesFallBackToDirect) {
  auto Result = baseline::plan(12, baseline::PlanMode::Estimate);
  ASSERT_TRUE(Result.Best);
  std::vector<Cplx> X = randomVector(12), Y(12);
  Result.Best->run(X.data(), Y.data());
  EXPECT_LT(maxAbsDiff(Y, oracleDFT(X)), 1e-10);
}

} // namespace
